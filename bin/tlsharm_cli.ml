(* tlsharm — command-line interface to the reproduction.

     tlsharm world-info                 summarize the simulated population
     tlsharm scan --mode burst          run one scan, emit CSV observations
     tlsharm reproduce                  run the full study, print all
                                        tables/figures (same as bench all)
     tlsharm experiment t1 f8 google    selected experiments
     tlsharm attack-demo                end-to-end stolen-secret decryptions

   Every command accepts --domains/--days/--seed to size the world; the
   scanning commands also accept --fault-profile/--retries/--probe-deadline
   to exercise the fault-injection layer and its retry machinery. *)

open Cmdliner

(* --- Common options ------------------------------------------------------------ *)

let domains_arg =
  Arg.(value & opt int 4000 & info [ "domains" ] ~docv:"N" ~doc:"Sampled world size.")

let days_arg =
  Arg.(value & opt int 63 & info [ "days" ] ~docv:"DAYS" ~doc:"Campaign length in days.")

let seed_arg = Arg.(value & opt string "tlsharm" & info [ "seed" ] ~docv:"SEED" ~doc:"World seed.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Progress on stderr.")

let default_jobs =
  match Sys.getenv_opt "TLSHARM_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let jobs_arg =
  Arg.(
    value
    & opt int default_jobs
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the longitudinal campaign (default \\$(b,TLSHARM_JOBS) or 1). With \
           N > 1 the campaign runs operator-sharded in parallel; results are deterministic for \
           any N but follow a per-shard probe-seed schedule, so they differ from a serial (N=1) \
           run.")

let fault_profile_arg =
  Arg.(
    value
    & opt string "none"
    & info [ "fault-profile" ] ~docv:"PROFILE"
        ~doc:
          "Fault-injection profile for the simulated network: $(b,none) (fault-free legacy \
           behavior, the default), $(b,default) (\u{00a7}3-plausible transient faults and endpoint \
           outage windows), $(b,flaky) (hostile network for stress tests) or $(b,byzantine) \
           (default-profile weather plus peers answering with malformed or protocol-violating \
           bytes). Deterministic in the world and fault seeds.")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Maximum connection attempts per probe (first attempt included). Only injected \
           faults retry; default 3 when a fault profile is active.")

let probe_deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "probe-deadline" ] ~docv:"SECS"
        ~doc:
          "Per-probe retry deadline in virtual seconds on the probe's own backoff clock \
           (default 60).")

(* Resolve the three fault flags into a profile + retry policy, or a
   cmdliner error on an unknown profile name. *)
let fault_setup profile retries deadline =
  match Faults.Profile.of_name profile with
  | None ->
      Error
        (Printf.sprintf "unknown fault profile %S (available: %s)" profile
           (String.concat " " Faults.Profile.names))
  | Some p ->
      let retry = Faults.Retry.default in
      let retry =
        match retries with
        | Some n -> { retry with Faults.Retry.max_attempts = max 1 n }
        | None -> retry
      in
      let retry =
        match deadline with
        | Some d -> { retry with Faults.Retry.deadline = max 1 d }
        | None -> retry
      in
      Ok (p, retry)

(* Argument validation: sizing mistakes should come back as one-line
   usage errors with a nonzero exit, not as an [Invalid_argument]
   backtrace from deep inside the world builder. *)
let validate_sizes ~domains ~days ~jobs =
  if domains < Simnet.World.min_domains then
    Error
      (Printf.sprintf "--domains must be at least %d (got %d)" Simnet.World.min_domains domains)
  else if days < 1 then Error (Printf.sprintf "--days must be at least 1 (got %d)" days)
  else if jobs < 1 then Error (Printf.sprintf "--jobs must be at least 1 (got %d)" jobs)
  else Ok ()

(* Last-resort net for exceptions no specific validation anticipated
   (filesystem errors, corrupt inputs, a checkpoint determinism
   violation): render one line and exit nonzero instead of dumping a
   backtrace. *)
let guard f =
  try f () with
  | Durable.Checkpoint.Mismatch m -> `Error (false, "checkpoint mismatch: " ^ m)
  | Sys_error e -> `Error (false, e)
  | Invalid_argument e | Failure e -> `Error (false, e)
  | Unix.Unix_error (err, fn, arg) ->
      `Error
        ( false,
          Printf.sprintf "%s: %s%s" fn (Unix.error_message err)
            (if arg = "" then "" else " (" ^ arg ^ ")") )

let world_config ~domains ~seed =
  { Simnet.World.default_config with Simnet.World.n_domains = domains; seed }

let study_config ~domains ~days ~seed ~jobs ~verbose ~fault_profile ~retry =
  {
    Tlsharm.Study.world_config = world_config ~domains ~seed;
    campaign_days = days;
    jobs;
    verbose;
    fault_profile;
    retry;
    checkpoint = None;
    obs = None;
  }

(* --- world-info ------------------------------------------------------------------ *)

let world_info domains seed =
  match validate_sizes ~domains ~days:1 ~jobs:1 with
  | Error e -> `Error (false, e)
  | Ok () ->
  let world = Simnet.World.create ~config:(world_config ~domains ~seed) () in
  let ds = Simnet.World.domains world in
  let wsum f =
    Array.fold_left (fun acc d -> if f d then acc +. Simnet.World.domain_weight d else acc) 0.0 ds
  in
  let total = wsum (fun _ -> true) in
  Printf.printf "sampled domains:        %d (representing %.0f)\n" (Array.length ds) total;
  Printf.printf "https:                  %.1f%%\n" (100.0 *. wsum Simnet.World.domain_has_https /. total);
  Printf.printf "browser-trusted https:  %.1f%%\n" (100.0 *. wsum Simnet.World.domain_trusted /. total);
  Printf.printf "stable (always listed): %.1f%%\n" (100.0 *. wsum Simnet.World.domain_stable /. total);
  Printf.printf "mx at google:           %.1f%%\n"
    (100.0 *. wsum Simnet.World.mx_points_to_google /. total);
  let by_op = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let op = Simnet.World.domain_operator d in
      if not (String.length op > 5 && String.sub op 0 5 = "site:") then
        Hashtbl.replace by_op op
          (Simnet.World.domain_weight d +. Option.value ~default:0.0 (Hashtbl.find_opt by_op op)))
    ds;
  let ops =
    Hashtbl.fold (fun op w acc -> (op, w) :: acc) by_op []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  Printf.printf "\nlargest operators (weighted domains):\n";
  List.iteri
    (fun i (op, w) -> if i < 12 && op <> "tail" then Printf.printf "  %-16s %8.0f\n" op w)
    ops;
  Printf.printf "\nnamed case-study domains: %d\n" (List.length Simnet.Notable.all);
  `Ok ()

let world_info_cmd =
  Cmd.v
    (Cmd.info "world-info" ~doc:"Summarize the simulated population.")
    Term.(ret (const world_info $ domains_arg $ seed_arg))

(* --- scan ---------------------------------------------------------------------------- *)

let scan domains seed mode out fault_profile retries deadline =
  match validate_sizes ~domains ~days:1 ~jobs:1 with
  | Error e -> `Error (false, e)
  | Ok () ->
  match fault_setup fault_profile retries deadline with
  | Error e -> `Error (false, e)
  | Ok (profile, retry) ->
  guard @@ fun () ->
  let world = Simnet.World.create ~config:(world_config ~domains ~seed) () in
  let injector =
    if profile.Faults.Profile.name = "none" then None
    else Some (Faults.Injector.create ~profile world)
  in
  let funnel = Faults.Funnel.create () in
  let conns =
    match mode with
    | `Burst ->
        let probe = Scanner.Probe.create ?injector ~retry ~funnel ~seed:"cli-burst" world in
        Scanner.Burst_scan.run probe ~rounds:10 ~gap:30 ()
        |> List.concat_map (fun (r : Scanner.Burst_scan.domain_result) -> r.Scanner.Burst_scan.conns)
    | `Dhe ->
        let probe = Scanner.Probe.dhe_only ?injector ~retry ~funnel world ~seed:"cli-dhe" in
        Scanner.Burst_scan.run probe ~rounds:1 ~gap:0 ()
        |> List.concat_map (fun (r : Scanner.Burst_scan.domain_result) -> r.Scanner.Burst_scan.conns)
    | `Single ->
        let probe = Scanner.Probe.create ?injector ~retry ~funnel ~seed:"cli-single" world in
        Scanner.Burst_scan.run probe ~rounds:1 ~gap:0 ()
        |> List.concat_map (fun (r : Scanner.Burst_scan.domain_result) -> r.Scanner.Burst_scan.conns)
  in
  (match out with
  | Some path ->
      Scanner.Observation.write_csv path conns;
      Printf.printf "wrote %d observations to %s\n" (List.length conns) path
  | None ->
      print_endline Scanner.Observation.csv_header;
      List.iter (fun c -> print_endline (Scanner.Observation.to_csv_row c)) conns);
  if injector <> None then
    print_string (Analysis.Funnel_report.render ~title:"Scan loss funnel" funnel);
  `Ok ()

let scan_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("single", `Single); ("burst", `Burst); ("dhe", `Dhe) ]) `Single
      & info [ "mode" ] ~docv:"MODE" ~doc:"single | burst | dhe")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"CSV output path.")
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Run one scan over the simulated Top Million; emit CSV observations.")
    Term.(
      ret
        (const scan $ domains_arg $ seed_arg $ mode $ out $ fault_profile_arg $ retries_arg
       $ probe_deadline_arg))

(* --- reproduce / experiment ----------------------------------------------------------- *)

let run_experiments ids domains days seed jobs verbose fault_profile retries deadline =
  match validate_sizes ~domains ~days ~jobs with
  | Error e -> `Error (false, e)
  | Ok () ->
  match fault_setup fault_profile retries deadline with
  | Error e -> `Error (false, e)
  | Ok (profile, retry) ->
  guard @@ fun () ->
  let config =
    study_config ~domains ~days ~seed ~jobs ~verbose ~fault_profile:profile ~retry
  in
  let study = Tlsharm.Study.create ~config () in
  let named =
    Tlsharm.Experiments.by_name
    @ [
        ( "google",
          fun st ->
            let a = Tlsharm.Target_analysis.analyze st ~operator:"google" ~flagship:"google.com" in
            Tlsharm.Target_analysis.report a
            ^ "\n"
            ^ Tlsharm.Target_analysis.static_stek_contrast st ~flagship:"yandex.ru" );
        ("ablations", Tlsharm.Mitigations.report);
        ("tls13", Tlsharm.Tls13_projection.report);
      ]
  in
  let selected = match ids with [] -> List.map fst named | ids -> ids in
  let rec go = function
    | [] -> `Ok ()
    | id :: rest -> (
        match List.assoc_opt id named with
        | Some f ->
            print_endline (f study);
            go rest
        | None ->
            `Error
              ( false,
                Printf.sprintf "unknown experiment %S (available: %s)" id
                  (String.concat " " (List.map fst named)) ))
  in
  go selected

let experiment_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (t1..t7, f1..f8, google, ablations, tls13).") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run selected experiments of the study.")
    Term.(
      ret
        (const run_experiments $ ids $ domains_arg $ days_arg $ seed_arg $ jobs_arg $ verbose_arg
       $ fault_profile_arg $ retries_arg $ probe_deadline_arg))

let reproduce_cmd =
  Cmd.v
    (Cmd.info "reproduce" ~doc:"Run the full study and print every table and figure.")
    Term.(
      ret
        (const (run_experiments []) $ domains_arg $ days_arg $ seed_arg $ jobs_arg $ verbose_arg
       $ fault_profile_arg $ retries_arg $ probe_deadline_arg))

(* --- campaign / analyze -------------------------------------------------------------------- *)

(* The campaign runner shared by [campaign] and [resume]: both must
   execute the identical code path for the resumed archive to come out
   byte-identical to an uninterrupted run. Telemetry rides alongside:
   the recorder only reads outcomes, so enabling it cannot change the
   archive, and its metrics are restricted to schedule-determined
   quantities, so the rendered metrics JSON is identical for any
   --jobs within a regime (and across serial/parallel too, since both
   regimes probe the same domain-day schedule). *)
let run_campaign ~domains ~days ~seed ~jobs ~out ~profile ~retry ~checkpoint ~stream_out
    ~metrics_out ~trace_out () =
  let world = Simnet.World.create ~config:(world_config ~domains ~seed) () in
  let injector =
    if profile.Faults.Profile.name = "none" then None
    else Some (Faults.Injector.create ~profile world)
  in
  let funnel = Faults.Funnel.create () in
  let obs =
    if metrics_out <> None || trace_out <> None then Some (Obs.Recorder.create ()) else None
  in
  (* The streaming sink replaces the end-of-run CSV: rows are appended
     per completed day and never held in memory (the scan runs with
     retain_rows:false), which keeps RSS flat at --domains 100000.
     Reassemble with `tlsharm analyze DIR` / Daily_scan.load_stream. *)
  let sink =
    match stream_out with
    | None -> Ok None
    | Some dir ->
        let start_day = Simnet.Clock.now (Simnet.World.clock world) / Simnet.Clock.day in
        Result.map Option.some
          (Scanner.Stream_sink.create ~dir
             ~manifest:
               [ ("start_day", string_of_int start_day); ("n_days", string_of_int days) ])
  in
  match sink with
  | Error e -> `Error (false, e)
  | Ok sink ->
      let retain_rows = sink = None in
      (* Kernel counters are process-global; the snapshot window scopes the
         published [kernel.*] deltas to the campaign itself (excluding world
         construction, which runs before telemetry starts). *)
      let kernel_before = Obs.Kernel.snapshot () in
      let t =
        if jobs > 1 then
          Scanner.Parallel_campaign.run ~jobs ?injector ~retry ~funnel ?checkpoint ?sink
            ~retain_rows ?obs world ~days ()
        else
          Scanner.Daily_scan.run ?injector ~retry ~funnel ?checkpoint ?sink ~retain_rows ?obs
            world ~days ()
      in
      Option.iter
        (fun r ->
          Obs.Kernel.add_to_metrics (Obs.Recorder.metrics r)
            (Obs.Kernel.diff ~before:kernel_before ~after:(Obs.Kernel.snapshot ())))
        obs;
      (match (obs, metrics_out) with
      | Some r, Some path ->
          Durable.Atomic_io.write path (Obs.Recorder.metrics_json_string r);
          Printf.printf "wrote campaign metrics to %s\n" path
      | _ -> ());
      (match (obs, trace_out) with
      | Some r, Some path ->
          Durable.Atomic_io.write path (Obs.Recorder.trace_json_string r);
          Printf.printf "wrote campaign trace spans to %s\n" path
      | _ -> ());
      (match sink with
      | Some s ->
          Printf.printf "streamed %d-day campaign over %d domains to %s (%d rows)%s\n" days
            (Array.length t.Scanner.Daily_scan.series)
            (Scanner.Stream_sink.dir s)
            (Scanner.Stream_sink.rows_written s)
            (if jobs > 1 then Printf.sprintf " (%d jobs)" jobs else "")
      | None ->
          Scanner.Daily_scan.save t out;
          Printf.printf "wrote %d-day campaign over %d domains to %s%s\n" days
            (Array.length t.Scanner.Daily_scan.series)
            out
            (if jobs > 1 then Printf.sprintf " (%d jobs)" jobs else ""));
      if injector <> None then
        print_string
          (Analysis.Funnel_report.render
             ~title:
               (Printf.sprintf "Campaign loss funnel (fault profile: %s)"
                  profile.Faults.Profile.name)
             funnel);
      `Ok ()

(* The manifest pins everything [resume] needs to rebuild the identical
   run: world parameters, campaign shape, the resolved retry policy
   (not the raw flags, so flag defaults can change without orphaning old
   checkpoint directories) and the output path. *)
let campaign_manifest ~domains ~days ~seed ~jobs ~profile ~(retry : Faults.Retry.policy) ~out
    ~stream_out =
  [
    ("mode", "campaign");
    ("seed", seed);
    ("n_domains", string_of_int domains);
    ("days", string_of_int days);
    ("jobs", string_of_int jobs);
    ("fault_profile", profile.Faults.Profile.name);
    ("retries", string_of_int retry.Faults.Retry.max_attempts);
    ("deadline", string_of_int retry.Faults.Retry.deadline);
    ("output", out);
    ("stream_out", Option.value stream_out ~default:"");
  ]

(* The cross-vantage path of [campaign --regions N]: one world per
   region, the same domain-days probed from each, archived as a single
   observation CSV with a region column. Region scans are independent,
   so the archive is byte-identical at any --jobs. *)
let run_cross_vantage ~domains ~days ~seed ~jobs ~regions ~out () =
  let cv =
    Scanner.Cross_vantage.run ~jobs
      {
        Scanner.Cross_vantage.base = world_config ~domains ~seed;
        regions = Simnet.Region.take regions;
        days;
      }
  in
  Scanner.Cross_vantage.save cv out;
  Printf.printf "wrote %d-day cross-vantage scan from %d regions (%s) to %s (%d rows)%s\n" days
    regions
    (String.concat " " (Scanner.Cross_vantage.regions cv))
    out
    (List.length (Scanner.Cross_vantage.rows cv))
    (if jobs > 1 then Printf.sprintf " (%d jobs)" jobs else "");
  `Ok ()

let campaign domains days seed jobs regions out fault_profile retries deadline checkpoint_dir
    stream_out metrics_out trace_out =
  match validate_sizes ~domains ~days ~jobs with
  | Error e -> `Error (false, e)
  | Ok () when regions < 1 || regions > List.length Simnet.Region.all ->
      `Error
        ( false,
          Printf.sprintf "--regions must be between 1 and %d (got %d)"
            (List.length Simnet.Region.all) regions )
  | Ok () when regions > 1 ->
      if
        checkpoint_dir <> None || stream_out <> None || metrics_out <> None || trace_out <> None
        || fault_profile <> "none"
      then
        `Error
          ( false,
            "--regions > 1 runs the cross-vantage scan, which does not support \
             --checkpoint-dir, --stream-out, --metrics-out, --trace-out or --fault-profile" )
      else guard (run_cross_vantage ~domains ~days ~seed ~jobs ~regions ~out)
  | Ok () -> (
  match fault_setup fault_profile retries deadline with
  | Error e -> `Error (false, e)
  | Ok (profile, retry) -> (
      let checkpoint =
        match checkpoint_dir with
        | None -> Ok None
        | Some dir ->
            Result.map Option.some
              (Durable.Checkpoint.init ~dir
                 ~manifest:
                   (campaign_manifest ~domains ~days ~seed ~jobs ~profile ~retry ~out
                      ~stream_out))
      in
      match checkpoint with
      | Error e -> `Error (false, e)
      | Ok checkpoint ->
          guard
            (run_campaign ~domains ~days ~seed ~jobs ~out ~profile ~retry ~checkpoint
               ~stream_out ~metrics_out ~trace_out)))

let stream_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stream-out" ] ~docv:"DIR"
        ~doc:
          "Stream each completed day's rows into $(i,DIR) (one append-only spool per scan \
           stream) instead of holding the full observation matrix in memory for a final CSV \
           save — memory stays flat regardless of --domains. The streamed archive is \
           byte-equivalent to the CSV one: $(b,tlsharm analyze) $(i,DIR) reassembles it, and it \
           is identical at any --jobs and across checkpoint resumes.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write campaign metrics (counters, gauges, histograms) as JSON. Telemetry only reads \
           outcomes — the observation archive is byte-identical with or without it — and the \
           metrics content is schedule-determined, so the JSON is identical for any --jobs. \
           Render with $(b,tlsharm metrics-report).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write aggregated trace spans (handshake phases, scan days, campaign shards) as JSON, \
           timed on the simulated clock. Unlike metrics, spans reflect the execution shape: a \
           parallel campaign has per-shard spans a serial one does not.")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Checkpoint directory for crash recovery: every completed campaign day is snapshotted \
           there (atomic, checksummed), and $(b,tlsharm resume) $(i,DIR) continues a killed \
           campaign from the last valid snapshot — the final archive is byte-identical to an \
           uninterrupted run.")

let regions_arg =
  Arg.(
    value
    & opt int 1
    & info [ "regions" ] ~docv:"N"
        ~doc:
          (Printf.sprintf
             "With N > 1, probe the same domain-days from the first N of the %d modeled vantage \
              regions (%s) instead of running the single-vantage campaign, and archive the \
              per-region observation rows (with a region column) as one CSV. Regions are \
              independent, so the archive is byte-identical at any --jobs."
             (List.length Simnet.Region.all)
             Simnet.Region.names))

let campaign_cmd =
  let out =
    Arg.(
      value
      & opt string "campaign.csv"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Campaign CSV output path.")
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a daily longitudinal campaign and archive it as CSV.")
    Term.(
      ret
        (const campaign $ domains_arg $ days_arg $ seed_arg $ jobs_arg $ regions_arg $ out
       $ fault_profile_arg $ retries_arg $ probe_deadline_arg $ checkpoint_dir_arg
       $ stream_out_arg $ metrics_out_arg $ trace_out_arg))

(* --- resume -------------------------------------------------------------------------------- *)

let resume dir jobs_override metrics_out trace_out =
  match Durable.Checkpoint.attach ~dir with
  | Error e -> `Error (false, e)
  | Ok store -> (
      match Durable.Checkpoint.manifest store with
      | Error e -> `Error (false, dir ^ ": " ^ e)
      | Ok kvs -> (
          let field k = List.assoc_opt k kvs in
          let int_field k = Option.bind (field k) int_of_string_opt in
          match
            ( field "mode",
              field "seed",
              int_field "n_domains",
              int_field "days",
              int_field "jobs",
              field "fault_profile",
              int_field "retries",
              int_field "deadline",
              field "output" )
          with
          | Some "campaign", Some seed, Some domains, Some days, Some jobs, Some profile,
            Some retries, Some deadline, Some out -> (
              (* Optional: absent from checkpoints taken before streaming
                 sinks existed, and recorded as "" when the run did not
                 stream. The resumed run re-creates the sink and replays
                 every completed day into it, so the streamed archive is
                 byte-identical to an uninterrupted run's. *)
              let stream_out =
                match field "stream_out" with None | Some "" -> None | Some dir -> Some dir
              in
              match fault_setup profile (Some retries) (Some deadline) with
              | Error e -> `Error (false, e)
              | Ok (profile, retry) -> (
                  (* A serial and a parallel campaign follow different
                     probe-seed schedules, so resuming across that line
                     can never reproduce the original bytes. Within the
                     parallel regime any worker count yields identical
                     results, so a different [jobs > 1] is fine. *)
                  let jobs_resolved =
                    match jobs_override with
                    | None -> Ok jobs
                    | Some j when j < 1 ->
                        Error (Printf.sprintf "--jobs must be at least 1 (got %d)" j)
                    | Some j when j > 1 = (jobs > 1) -> Ok j
                    | Some j ->
                        Error
                          (Printf.sprintf
                             "cannot resume a %s campaign with --jobs %d: serial and parallel \
                              campaigns follow different probe-seed schedules"
                             (if jobs > 1 then "parallel" else "serial")
                             j)
                  in
                  match jobs_resolved with
                  | Error e -> `Error (false, e)
                  | Ok jobs ->
                      guard
                        (run_campaign ~domains ~days ~seed ~jobs ~out ~profile ~retry
                           ~checkpoint:(Some store) ~stream_out ~metrics_out ~trace_out)))
          | Some mode, _, _, _, _, _, _, _, _ when mode <> "campaign" ->
              `Error (false, Printf.sprintf "%s: cannot resume mode %S" dir mode)
          | _ -> `Error (false, dir ^ ": manifest is missing campaign fields")))

let resume_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Checkpoint directory of the interrupted campaign.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Override the recorded worker count. Serial (1) and parallel (> 1) campaigns cannot \
             be converted into each other; within the parallel regime any N reproduces the same \
             bytes.")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume an interrupted campaign from its checkpoint directory; the final archive is \
          byte-identical to an uninterrupted run. Falls back to the last valid snapshot if the \
          newest is corrupt.")
    Term.(ret (const resume $ dir $ jobs $ metrics_out_arg $ trace_out_arg))

let analyze path =
  guard @@ fun () ->
  let is_dir = Sys.file_exists path && Sys.is_directory path in
  (* A --stream-out directory can hold either archive kind; the manifest
     [mode] key says which, so one command reads both. *)
  let traffic_archive =
    is_dir
    &&
    match Scanner.Stream_sink.manifest ~dir:path with
    | Ok kvs -> List.assoc_opt "mode" kvs = Some "traffic"
    | Error _ -> false
  in
  if traffic_archive then
    match Analysis.Tracking_report.of_sink ~dir:path with
    | Error e -> `Error (false, e)
    | Ok t ->
        print_string (Analysis.Tracking_report.render t);
        `Ok ()
  else
  let load = if is_dir then Scanner.Daily_scan.load_stream else Scanner.Daily_scan.load in
  match load path with
  | Error e -> `Error (false, e)
  | Ok campaign ->
      let report field name paper =
        let spans = Analysis.Lifetime.analyze ~field campaign in
        let s = Analysis.Lifetime.summarize spans in
        let pct v = Analysis.Report.fmt_pct (v /. s.Analysis.Lifetime.population) in
        Printf.printf "%-6s never=%s daily=%s 7d+=%s 30d+=%s   (paper: %s)\n" name
          (pct s.Analysis.Lifetime.never_observed)
          (pct s.Analysis.Lifetime.changed_daily)
          (pct s.Analysis.Lifetime.span_7d_plus)
          (pct s.Analysis.Lifetime.span_30d_plus)
          paper;
        let top = Analysis.Lifetime.top_reusers ~min_days:7 ~limit:5 spans in
        List.iter
          (fun (x : Analysis.Lifetime.domain_spans) ->
            Printf.printf "         r%-7d %-40s %2d days\n" x.Analysis.Lifetime.rank
              x.Analysis.Lifetime.domain x.Analysis.Lifetime.max_span_days)
          top
      in
      Printf.printf "campaign: %d domains, %d days\n\n"
        (Array.length campaign.Scanner.Daily_scan.series)
        campaign.Scanner.Daily_scan.n_days;
      report Analysis.Lifetime.Stek "STEK" "23% never, 41% daily, 22% 7d+, 10% 30d+";
      report Analysis.Lifetime.Dhe "DHE" "1.2% 7d+ of trusted";
      report Analysis.Lifetime.Ecdhe "ECDHE" "3.0% 7d+ of trusted";
      `Ok ()

let analyze_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:"Campaign CSV, or a --stream-out sink directory (campaign or traffic mode).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Re-analyze an archived run from a CSV file or a --stream-out directory: \
          secret-lifetime spans for campaigns, the tracking-exposure table for traffic \
          archives.")
    Term.(ret (const analyze $ path))

(* --- vuln-report ----------------------------------------------------------------------- *)

let vuln_report domains days seed jobs verbose fault_profile retries deadline cross =
  match validate_sizes ~domains ~days ~jobs with
  | Error e -> `Error (false, e)
  | Ok () -> (
      match fault_setup fault_profile retries deadline with
      | Error e -> `Error (false, e)
      | Ok (profile, retry) -> (
          guard @@ fun () ->
          let study =
            Tlsharm.Study.create
              ~config:
                (study_config ~domains ~days ~seed ~jobs ~verbose ~fault_profile:profile ~retry)
              ()
          in
          print_string (Tlsharm.Study.vuln_report study);
          print_newline ();
          match cross with
          | None -> `Ok ()
          | Some path -> (
              match Scanner.Cross_vantage.load path with
              | Error e -> `Error (false, e)
              | Ok rows ->
                  print_string
                    (Analysis.Vuln_report.render_inconsistency
                       (Analysis.Vuln_report.inconsistency ~world:(Tlsharm.Study.world study)
                          ~rows));
                  print_newline ();
                  `Ok ())))

let vuln_report_cmd =
  let cross =
    Arg.(
      value
      & opt (some string) None
      & info [ "cross-vantage" ] ~docv:"FILE"
          ~doc:
            "Also render the cross-regional inconsistency table from an observation CSV written \
             by $(b,campaign --regions) N (HT weights and operator attribution come from the \
             same world the report runs against).")
  in
  Cmd.v
    (Cmd.info "vuln-report"
       ~doc:
         "Rank operators by combined harm — HT-weighted vulnerability-window days scaled by \
          misconfiguration severity — and optionally the cross-regional inconsistency table \
          from a --regions archive.")
    Term.(
      ret
        (const vuln_report $ domains_arg $ days_arg $ seed_arg $ jobs_arg $ verbose_arg
       $ fault_profile_arg $ retries_arg $ probe_deadline_arg $ cross))

(* --- metrics-report -------------------------------------------------------------------- *)

(* Human rendering of the JSON telemetry artifacts written by
   [campaign --metrics-out/--trace-out] (and the bench phases entry).
   Accepts either schema: both files carry a "schema" field, so one
   command serves both rather than making the user remember which file
   holds which. *)
let metrics_report path =
  guard @@ fun () ->
  match Durable.Atomic_io.read_any path with
  | Error e -> `Error (false, Durable.Atomic_io.error_to_string ~what:path e)
  | Ok content -> (
      match Obs.Json.of_string content with
      | Error e -> `Error (false, path ^ ": " ^ e)
      | Ok json -> (
          let obj_section name =
            Option.value ~default:[]
              (Option.bind (Obs.Json.member name json) Obs.Json.to_obj)
          in
          let ints name j =
            Option.value ~default:[]
              (Option.map (List.filter_map Obs.Json.to_int)
                 (Option.bind (Obs.Json.member name j) Obs.Json.to_list))
          in
          match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_str with
          | Some s when String.equal s Obs.Metrics.schema ->
              let counters = obj_section "counters" and gauges = obj_section "gauges" in
              if counters <> [] then print_endline "counters:";
              List.iter
                (fun (name, v) ->
                  Printf.printf "  %-28s %d\n" name (Option.value ~default:0 (Obs.Json.to_int v)))
                counters;
              if gauges <> [] then print_endline "gauges:";
              List.iter
                (fun (name, v) ->
                  Printf.printf "  %-28s %d\n" name (Option.value ~default:0 (Obs.Json.to_int v)))
                gauges;
              let hists = obj_section "histograms" in
              if hists <> [] then print_endline "histograms:";
              List.iter
                (fun (name, h) ->
                  let bounds = ints "bounds" h and counts = ints "counts" h in
                  let sum =
                    Option.value ~default:0 (Option.bind (Obs.Json.member "sum" h) Obs.Json.to_int)
                  in
                  Printf.printf "  %-28s sum=%d\n" name sum;
                  List.iteri
                    (fun i c ->
                      let label =
                        if i < List.length bounds then
                          Printf.sprintf "<= %d" (List.nth bounds i)
                        else
                          Printf.sprintf "> %d"
                            (match List.rev bounds with b :: _ -> b | [] -> 0)
                      in
                      Printf.printf "    %-10s %d\n" label c)
                    counts)
                hists;
              `Ok ()
          | Some s when String.equal s Obs.Trace.schema ->
              let spans =
                Option.value ~default:[]
                  (Option.bind (Obs.Json.member "spans" json) Obs.Json.to_list)
              in
              Printf.printf "%-24s %-32s %8s %12s %10s %10s\n" "span" "attrs" "count"
                "sim_total_s" "sim_min_s" "sim_max_s";
              List.iter
                (fun span ->
                  let str name =
                    Option.value ~default:""
                      (Option.bind (Obs.Json.member name span) Obs.Json.to_str)
                  in
                  let num name =
                    Option.value ~default:0
                      (Option.bind (Obs.Json.member name span) Obs.Json.to_int)
                  in
                  let attrs =
                    Option.value ~default:[]
                      (Option.bind (Obs.Json.member "attrs" span) Obs.Json.to_obj)
                    |> List.map (fun (k, v) ->
                           Printf.sprintf "%s=%s" k
                             (Option.value ~default:"?" (Obs.Json.to_str v)))
                    |> String.concat ","
                  in
                  Printf.printf "%-24s %-32s %8d %12d %10d %10d" (str "name") attrs (num "count")
                    (num "sim_total_s") (num "sim_min_s") (num "sim_max_s");
                  (match
                     Option.bind (Obs.Json.member "wall_ns" span) Obs.Json.to_float
                   with
                  | Some w -> Printf.printf "  wall=%.3fms\n" (w /. 1e6)
                  | None -> print_newline ()))
                spans;
              `Ok ()
          | Some s -> `Error (false, Printf.sprintf "%s: unknown telemetry schema %S" path s)
          | None -> `Error (false, path ^ ": missing schema field (not a telemetry file?)")))

let metrics_report_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Metrics or trace JSON written by campaign/bench telemetry.")
  in
  Cmd.v
    (Cmd.info "metrics-report"
       ~doc:"Render a telemetry artifact (--metrics-out or --trace-out JSON) as a table.")
    Term.(ret (const metrics_report $ path))

(* --- posture --------------------------------------------------------------------------- *)

let posture domains seed targets =
  match validate_sizes ~domains ~days:1 ~jobs:1 with
  | Error e -> `Error (false, e)
  | Ok () ->
  let world = Simnet.World.create ~config:(world_config ~domains ~seed) () in
  let targets =
    match targets with
    | [] -> [ "google.com"; "yahoo.com"; "netflix.com"; "yandex.ru" ]
    | l -> l
  in
  List.iter
    (fun domain ->
      print_endline (Tlsharm.Posture.report (Tlsharm.Posture.assess world ~domain ()));
      print_newline ())
    targets;
  `Ok ()

let posture_cmd =
  let targets = Arg.(value & pos_all string [] & info [] ~docv:"DOMAIN" ~doc:"Domains to assess.") in
  Cmd.v
    (Cmd.info "posture"
       ~doc:
         "Grade domains' forward-secrecy posture (resumption windows, STEK rotation, ephemeral           hygiene) - the per-site view of the study.")
    Term.(ret (const posture $ domains_arg $ seed_arg $ targets))

(* --- attack-demo ------------------------------------------------------------------------ *)

let attack_demo () =
  let env = Tls.Config.sim_env () in
  let rng = Crypto.Drbg.create ~seed:"attack-demo" in
  let ca =
    Tls.Cert.self_signed ~curve:env.Tls.Config.pki_curve ~name:"Demo CA" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:env.Tls.Config.pki_curve ~subject:"victim.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let server ~shortcuts =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites = [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ];
          issue_session_ids = shortcuts;
          session_cache =
            (if shortcuts then Some (Tls.Session_cache.create ~lifetime:36_000 ~capacity:1000)
             else None);
          tickets =
            (if shortcuts then
               Some
                 {
                   Tls.Config.stek_manager =
                     Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"demo" ~now:0;
                   lifetime_hint = 36_000;
                   accept_lifetime = 36_000;
                   reissue_on_resumption = true;
                 }
             else None);
          kex_cache =
            Tls.Kex_cache.uniform
              ~policy:(if shortcuts then Tls.Kex_cache.Reuse_forever else Tls.Kex_cache.Fresh_always);
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"demo-server")
  in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = env;
          offer_suites = Tls.Types.all_cipher_suites;
          offer_ticket = true;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"demo-client") ()
  in
  let run ~shortcuts label =
    let server = server ~shortcuts in
    Printf.printf "== %s ==\n" label;
    match
      Tlsharm.Attack.victim_connection client server ~now:100 ~hostname:"victim.example"
        ~offer:Tls.Client.Fresh
    with
    | Error e -> Printf.printf "victim connection failed: %s\n" e
    | Ok recording ->
        Printf.printf "victim sent (ground truth): %S\n" recording.Tlsharm.Attack.plaintext;
        List.iter
          (fun (name, result) ->
            match result with
            | Ok plain -> Printf.printf "  %-22s -> DECRYPTED: %S\n" name plain
            | Error e -> Printf.printf "  %-22s -> failed (%s)\n" name e)
          (Tlsharm.Attack.attempt_all recording ~server ~env ~now:200)
  in
  run ~shortcuts:true "server with crypto shortcuts (tickets + cache + reused ECDHE)";
  print_newline ();
  run ~shortcuts:false "server with forward secrecy done right (no shortcuts)";
  `Ok ()

let attack_cmd =
  Cmd.v
    (Cmd.info "attack-demo"
       ~doc:"Demonstrate the stolen-STEK / stolen-DH-value / stolen-cache decryptions end to end.")
    Term.(ret (const attack_demo $ const ()))

(* --- traffic ------------------------------------------------------------------------------ *)

(* Pins everything the archive means: population shape, policy, world.
   [Traffic_sink.create] refuses to re-attach when any of these differ,
   and [Analysis.Tracking_report.of_sink] reads the run metadata back
   from here. *)
let traffic_manifest ~(cfg : Traffic.Population.config) ~seed =
  [
    ("mode", "traffic");
    ("seed", seed);
    ("n_domains", string_of_int cfg.Traffic.Population.world.Simnet.World.n_domains);
    ("users", string_of_int cfg.Traffic.Population.users);
    ("days", string_of_int cfg.Traffic.Population.days);
    ("shard_users", string_of_int cfg.Traffic.Population.shard_users);
    ("policy", Traffic.Population.policy_to_string cfg.Traffic.Population.policy);
    ("ticket_lifetime", string_of_int cfg.Traffic.Population.ticket_lifetime_cap);
    ("pages_per_day", Printf.sprintf "%g" cfg.Traffic.Population.pages_per_day);
  ]

let traffic users days domains seed jobs shard_users policy ticket_lifetime pages_per_day
    stream_out metrics_out trace_out =
  match validate_sizes ~domains ~days ~jobs with
  | Error e -> `Error (false, e)
  | Ok () -> (
      if users < 1 then `Error (false, Printf.sprintf "--users must be at least 1 (got %d)" users)
      else if shard_users < 1 then
        `Error (false, Printf.sprintf "--shard-users must be at least 1 (got %d)" shard_users)
      else if ticket_lifetime < 0 then
        `Error
          (false, Printf.sprintf "--ticket-lifetime must be non-negative (got %d)" ticket_lifetime)
      else if not (pages_per_day > 0.0) then
        `Error
          (false, Printf.sprintf "--pages-per-day must be positive (got %g)" pages_per_day)
      else
        match Traffic.Population.policy_of_string policy with
        | Error e -> `Error (false, e)
        | Ok policy ->
            guard @@ fun () ->
            let cfg =
              {
                Traffic.Population.default_config with
                Traffic.Population.users;
                days;
                shard_users;
                policy;
                ticket_lifetime_cap = ticket_lifetime;
                pages_per_day;
                world = world_config ~domains ~seed;
              }
            in
            let obs =
              if metrics_out <> None || trace_out <> None then Some (Obs.Recorder.create ())
              else None
            in
            let sink =
              match stream_out with
              | None -> Ok None
              | Some dir ->
                  Result.map Option.some
                    (Traffic.Traffic_sink.create ~dir ~manifest:(traffic_manifest ~cfg ~seed))
            in
            (match sink with
            | Error e -> `Error (false, e)
            | Ok sink ->
                let retain_rows = sink = None in
                let kernel_before = Obs.Kernel.snapshot () in
                let r = Traffic.Population.run ~jobs ?sink ~retain_rows ?obs cfg in
                Option.iter
                  (fun rec_ ->
                    Obs.Kernel.add_to_metrics (Obs.Recorder.metrics rec_)
                      (Obs.Kernel.diff ~before:kernel_before ~after:(Obs.Kernel.snapshot ())))
                  obs;
                (match (obs, metrics_out) with
                | Some rec_, Some path ->
                    Durable.Atomic_io.write path (Obs.Recorder.metrics_json_string rec_);
                    Printf.printf "wrote traffic metrics to %s\n" path
                | _ -> ());
                (match (obs, trace_out) with
                | Some rec_, Some path ->
                    Durable.Atomic_io.write path (Obs.Recorder.trace_json_string rec_);
                    Printf.printf "wrote traffic trace spans to %s\n" path
                | _ -> ());
                (* A report-assembly failure must surface as a one-line
                   CLI error, not as a raw exception message: routing it
                   through [failwith] happened to be caught by [guard]
                   but printed the bare payload with no context. *)
                let report =
                  match sink with
                  | Some s ->
                      Result.map_error
                        (fun e -> "traffic archive: " ^ e)
                        (Analysis.Tracking_report.of_sink ~dir:(Traffic.Traffic_sink.dir s))
                  | None ->
                      let meta =
                        {
                          Analysis.Tracking_report.policy =
                            Traffic.Population.policy_to_string cfg.Traffic.Population.policy;
                          ticket_lifetime;
                          users;
                          days;
                        }
                      in
                      Ok
                        (Analysis.Tracking_report.of_rows ~meta
                           ~hosts:r.Traffic.Population.hosts
                           (List.concat (Array.to_list r.Traffic.Population.rows)))
                in
                match report with
                | Error e -> `Error (false, e)
                | Ok report ->
                    Printf.printf
                      "simulated %d users over %d days (%d shards%s): %d connections%s\n\n" users
                      days r.Traffic.Population.n_shards
                      (if jobs > 1 then Printf.sprintf ", %d jobs" jobs else "")
                      r.Traffic.Population.total_rows
                      (match sink with
                      | Some s -> " streamed to " ^ Traffic.Traffic_sink.dir s
                      | None -> "");
                    print_string (Analysis.Tracking_report.render report);
                    `Ok ()))

let traffic_cmd =
  let users =
    Arg.(
      value
      & opt int 10_000
      & info [ "users" ] ~docv:"N" ~doc:"Simulated browser-like client population size.")
  in
  let shard_users =
    Arg.(
      value
      & opt int 16_384
      & info [ "shard-users" ] ~docv:"N"
          ~doc:
            "Users per shard. Sharding depends only on this and --users — never on --jobs — so \
             the archive is byte-identical for any worker count. Each shard simulates its own \
             deterministic world replica.")
  in
  let policy =
    Arg.(
      value
      & opt string "strict"
      & info [ "resumption-policy" ] ~docv:"POLICY"
          ~doc:
            "Client resumption scope: $(b,strict) keys cached sessions and tickets by exact \
             hostname; $(b,cross) shares them across all hostnames of one operator — more \
             abbreviated handshakes, one linkable identity per operator.")
  in
  let ticket_lifetime =
    Arg.(
      value
      & opt int 0
      & info [ "ticket-lifetime" ] ~docv:"SECS"
          ~doc:
            "Client-side cap on ticket reuse age, seconds; 0 (default) honors the server's \
             advertised lifetime hint alone. Clients never offer state past its lifetime.")
  in
  let pages_per_day =
    Arg.(
      value
      & opt float 2.0
      & info [ "pages-per-day" ] ~docv:"MEAN"
          ~doc:"Mean page loads per user-day (each page fetches subresource hosts too).")
  in
  let stream_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stream-out" ] ~docv:"DIR"
          ~doc:
            "Stream each completed day's rows into $(i,DIR) (one append-only spool per user \
             shard) instead of retaining them in memory — RSS stays flat into the millions of \
             users. Byte-identical at any --jobs; re-running after a crash skips complete \
             shards and reproduces the identical archive. Reassemble with $(b,tlsharm analyze) \
             $(i,DIR).")
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Simulate a browser-like client population over the campaign window and report the \
          latency-saved vs tracking-exposure tradeoff of session resumption (the client-side \
          view of the study).")
    Term.(
      ret
        (const traffic $ users $ days_arg $ domains_arg $ seed_arg $ jobs_arg $ shard_users
       $ policy $ ticket_lifetime $ pages_per_day $ stream_out $ metrics_out_arg $ trace_out_arg))

(* --- fuzz --------------------------------------------------------------------------------- *)

let fuzz count seed artifact verbose =
  guard (fun () ->
      if count < 1 then `Error (false, "--count must be at least 1")
      else begin
        let progress n =
          if verbose && n mod 10_000 = 0 then Printf.eprintf "fuzz: %d drives\r%!" n
        in
        let report = Faults.Fuzz.run ~seed ~progress ~count () in
        if verbose then prerr_newline ();
        Printf.printf "fuzz: %d drives (seed %S): %d parsed, %d rejected, %d escapes\n"
          report.Faults.Fuzz.executed seed report.Faults.Fuzz.parsed
          report.Faults.Fuzz.rejected
          (List.length report.Faults.Fuzz.escapes);
        List.iter
          (fun (name, n) -> Printf.printf "  %-20s %8d\n" name n)
          report.Faults.Fuzz.by_target;
        match report.Faults.Fuzz.escapes with
        | [] -> `Ok ()
        | escapes ->
            let text =
              String.concat "\n" (List.map Faults.Fuzz.render_escape escapes)
            in
            (match artifact with
            | Some path ->
                Out_channel.with_open_text path (fun oc -> output_string oc text);
                Printf.eprintf "fuzz: reproducers written to %s\n" path
            | None -> prerr_string text);
            `Error (false, Printf.sprintf "fuzz: %d escaped input(s)" (List.length escapes))
      end)

let fuzz_cmd =
  let count =
    Arg.(
      value
      & opt int 100_000
      & info [ "count" ] ~docv:"N" ~doc:"Number of mutated inputs to drive.")
  in
  let seed =
    Arg.(
      value
      & opt string "wire-fuzz"
      & info [ "fuzz-seed" ] ~docv:"SEED"
          ~doc:
            "Fuzzer seed. Inputs are a pure function of (seed, count), so a failing run's \
             arguments are a permanent reproducer.")
  in
  let artifact =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifact" ] ~docv:"PATH"
          ~doc:"Write escaped inputs as hex-dump reproducers to $(i,PATH) instead of stderr.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Drive deterministic structure-aware mutations of valid TLS transcripts through every \
          peer-facing decoder and engine entry point; exit nonzero if any input escapes the \
          typed-error contract (exception or allocation-cap breach).")
    Term.(ret (const fuzz $ count $ seed $ artifact $ verbose_arg))

(* --- main --------------------------------------------------------------------------------- *)

let () =
  let doc = "Measuring the security harm of TLS crypto shortcuts (IMC 2016), reproduced." in
  let info = Cmd.info "tlsharm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            world_info_cmd;
            scan_cmd;
            reproduce_cmd;
            experiment_cmd;
            campaign_cmd;
            traffic_cmd;
            resume_cmd;
            analyze_cmd;
            vuln_report_cmd;
            metrics_report_cmd;
            posture_cmd;
            attack_cmd;
            fuzz_cmd;
          ]))
