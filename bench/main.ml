(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation against a freshly simulated world, prints the
   Section 7.2 target analysis and the Section 8.2 mitigation ablations,
   and runs a bechamel microbenchmark suite over the cryptographic
   operations the crypto shortcuts exist to avoid.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe t1 f3 google    run selected experiments
     bench/main.exe micro           microbenchmarks only (writes BENCH_crypto.json)
     bench/main.exe ablations       section 8.2 what-ifs only
     bench/main.exe parallel        serial vs parallel campaign wall-clock
     bench/main.exe traffic         client-population runner throughput + speedup
     bench/main.exe phases          per-phase campaign telemetry breakdown
     bench/main.exe faults          fault-injected campaign + loss funnel
     bench/main.exe check-baseline  compare BENCH_crypto.json to BENCH_baseline.json

   The `micro`, `parallel`, `traffic` and `phases` entries additionally
   emit machine-readable results to BENCH_crypto.json ("kernels",
   "campaign", "traffic" and "phases" sections respectively; see
   README.md for the format), and `check-baseline` exits nonzero if any
   kernel regressed more than 2x against the committed baseline — the
   CI bench smoke step.

   Environment:
     TLSHARM_DOMAINS   sampled world size (default 4000)
     TLSHARM_DAYS      campaign length in days (default 63)
     TLSHARM_SEED      world seed (default "tlsharm")
     TLSHARM_JOBS      campaign worker domains (default 1 for the study tables;
                       the `parallel` and `traffic` entries gate their scheduled
                       speedup at this worker count, defaulting to
                       max 2 (recommended cores))
     TLSHARM_BENCH_MS  per-kernel timing budget in ms (default 200; CI uses
                       a reduced budget)
     TLSHARM_TRAFFIC_USERS / _SHARD / _DAYS
                       traffic bench population shape (default 1024 users,
                       128-user shards, 3 days) *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  | None -> default

let study_config () =
  {
    Tlsharm.Study.world_config =
      {
        Simnet.World.default_config with
        Simnet.World.n_domains = env_int "TLSHARM_DOMAINS" 4000;
        seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
      };
    campaign_days = env_int "TLSHARM_DAYS" 63;
    jobs = env_int "TLSHARM_JOBS" 1;
    verbose = true;
    (* The bench study stays fault-free so every table and figure is
       byte-identical to the pre-fault harness; the dedicated "faults"
       entry below exercises injection explicitly. *)
    fault_profile = Faults.Profile.none;
    retry = Faults.Retry.default;
    checkpoint = None;
    obs = None;
  }

let study = lazy (Tlsharm.Study.create ~config:(study_config ()) ())

(* --- Section 7.2 ------------------------------------------------------------- *)

let google_analysis () =
  let study = Lazy.force study in
  let a = Tlsharm.Target_analysis.analyze study ~operator:"google" ~flagship:"google.com" in
  Tlsharm.Target_analysis.report a
  ^ "\n"
  ^ Tlsharm.Target_analysis.static_stek_contrast study ~flagship:"yandex.ru"
  ^ "\n"

(* --- Machine-readable bench output ------------------------------------------- *)

let bench_json_path () =
  Option.value (Sys.getenv_opt "TLSHARM_BENCH_OUT") ~default:"BENCH_crypto.json"

(* Replace one top-level section of BENCH_crypto.json, preserving the
   others, so `micro` (kernels) and `parallel` (campaign) can each run
   alone without clobbering the other's results. *)
let update_bench_json section value =
  let path = bench_json_path () in
  let existing =
    match (try Json_io.load path with Json_io.Parse_error _ -> None) with
    | Some (Json_io.Obj fields) -> List.remove_assoc section fields
    | _ -> []
  in
  let fields = ("schema", Json_io.Str "tlsharm-bench/1") :: List.remove_assoc "schema" existing in
  Json_io.save path (Json_io.Obj (fields @ [ (section, value) ]))

(* --- Crypto-kernel benchmarks -------------------------------------------------- *)

(* Hand-rolled timing for the kernel comparison: bechamel's OLS machinery
   is great for the handshake table, but here we need a denominator — the
   retained seed-era kernels — measured under the same loop, and a knob
   (TLSHARM_BENCH_MS) small enough for a CI smoke run. Chunked so the
   clock is read O(log n) times, not per call. *)
let ns_per_op f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let budget = float_of_int (env_int "TLSHARM_BENCH_MS" 200) /. 1000.0 in
  let t0 = Unix.gettimeofday () in
  let total = ref 0 in
  let chunk = ref 1 in
  let elapsed = ref 0.0 in
  while !elapsed < budget do
    for _ = 1 to !chunk do
      ignore (Sys.opaque_identity (f ()))
    done;
    total := !total + !chunk;
    elapsed := Unix.gettimeofday () -. t0;
    if !elapsed < budget /. 8.0 then chunk := !chunk * 2
  done;
  !elapsed /. float_of_int !total *. 1e9

(* RFC 3526 group 14: the 2048-bit MODP prime, the production-sized DHE
   modulus of the study period. *)
let modp2048 =
  Crypto.Bignum.of_hex
    ("FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
   ^ "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
   ^ "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
   ^ "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
   ^ "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
   ^ "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
   ^ "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
   ^ "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF")

(* Each kernel is timed twice under the same loop: the optimized path and
   the verbatim seed-era reference; the ratio is the recorded speedup.
   Inputs are DRBG-derived so runs are reproducible, and each pair is
   checked for agreement before timing — a bench that measures a wrong
   kernel fast is worse than no bench. *)
let kernel_benches () =
  let module B = Crypto.Bignum in
  let module Ec = Crypto.Ec in
  let rng = Crypto.Drbg.create ~seed:"bench-kernels" in
  let ctx2048 = B.mont_of_modulus modp2048 in
  let base2048 = Crypto.Drbg.bignum_below rng modp2048 in
  let e256 = B.of_bytes_be (Crypto.Drbg.generate rng 32) in
  let fb2048 = B.fixed_base ctx2048 B.two ~max_bits:256 in
  let sim_group = Crypto.Dh.generate ~bits:64 ~seed:"bench" in
  let sim_p = Crypto.Dh.group_p sim_group in
  let sim_ctx = B.mont_of_modulus sim_p in
  let sim_base = Crypto.Drbg.bignum_below rng sim_p in
  let sim_e = B.of_bytes_be (Crypto.Drbg.generate rng 8) in
  let k_p256 = Crypto.Drbg.bignum_below rng (Ec.curve_order Ec.p256) in
  let q_p256 = Ec.Reference.scalar_mult_base Ec.p256 (B.of_int 7919) in
  let sim_curve = Ec.generate_small ~bits:61 ~seed:"bench" in
  let k_sim = Crypto.Drbg.bignum_below rng (Ec.curve_order sim_curve) in
  (* 2^31 - 1: the largest modulus the native-word pow_mod fast path
     accepts; exercises the skip-Montgomery-entirely branch. *)
  let m31 = B.of_int 0x7fffffff in
  let ctx31 = B.mont_of_modulus m31 in
  let base31 = Crypto.Drbg.bignum_below rng m31 in
  let e31 = B.of_bytes_be (Crypto.Drbg.generate rng 8) in
  (* Field-level micro-kernels: the specialized P-256 backend against the
     generic Montgomery field on the same operands. *)
  let module P = Crypto.P256_field in
  let fp = B.Field.create P.modulus in
  let fa = Crypto.Drbg.bignum_below rng P.modulus in
  let fb = Crypto.Drbg.bignum_below rng P.modulus in
  let pst = P.create_state () in
  let pa = P.of_bignum fa and pb = P.of_bignum fb and pdst = P.zero () in
  let ga = B.Field.of_bignum fp fa and gb = B.Field.of_bignum fp fb in
  let p_mul () =
    P.mul pst pdst pa pb;
    pdst
  in
  let p_sqr () =
    P.sqr pst pdst pa;
    pdst
  in
  let g_mul () = B.Field.mul fp ga gb in
  let g_sqr () = B.Field.sqr fp ga in
  let bn name f g = (name, (fun () -> ignore (Sys.opaque_identity (f ()))), (fun () -> ignore (Sys.opaque_identity (g ()))), B.equal (f ()) (g ())) in
  let pt name f g = (name, (fun () -> ignore (Sys.opaque_identity (f ()))), (fun () -> ignore (Sys.opaque_identity (g ()))), f () = g ()) in
  let fe name f g =
    ( name,
      (fun () -> ignore (Sys.opaque_identity (f ()))),
      (fun () -> ignore (Sys.opaque_identity (g ()))),
      B.equal (P.to_bignum (f ())) (B.Field.to_bignum fp (g ())) )
  in
  [
    bn "pow_mod-2048"
      (fun () -> B.pow_mod_ctx ctx2048 base2048 e256)
      (fun () -> B.Reference.pow_mod_ctx ctx2048 base2048 e256);
    bn "pow_mod-fixed-base-2048"
      (fun () -> B.pow_mod_fixed fb2048 e256)
      (fun () -> B.Reference.pow_mod_ctx ctx2048 B.two e256);
    bn "pow_mod-sim64"
      (fun () -> B.pow_mod_ctx sim_ctx sim_base sim_e)
      (fun () -> B.Reference.pow_mod_ctx sim_ctx sim_base sim_e);
    bn "pow_mod-native31"
      (fun () -> B.pow_mod_ctx ctx31 base31 e31)
      (fun () -> B.Reference.pow_mod_ctx ctx31 base31 e31);
    fe "field_mul-p256" p_mul g_mul;
    fe "field_sqr-p256" p_sqr g_sqr;
    pt "scalar_mult_base-p256"
      (fun () -> Ec.scalar_mult_base Ec.p256 k_p256)
      (fun () -> Ec.Reference.scalar_mult_base Ec.p256 k_p256);
    pt "scalar_mult-p256"
      (fun () -> Ec.scalar_mult Ec.p256 k_p256 q_p256)
      (fun () -> Ec.Reference.scalar_mult Ec.p256 k_p256 q_p256);
    pt "scalar_mult_base-sim61"
      (fun () -> Ec.scalar_mult_base sim_curve k_sim)
      (fun () -> Ec.Reference.scalar_mult_base sim_curve k_sim);
  ]

let kernel_report () =
  let pretty ns =
    if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
    else if ns < 1_000_000.0 then Printf.sprintf "%.1f us" (ns /. 1e3)
    else Printf.sprintf "%.2f ms" (ns /. 1e6)
  in
  let measured =
    List.map
      (fun (name, opt, reference, agree) ->
        if not agree then failwith (Printf.sprintf "bench: kernel %s disagrees with reference" name);
        let ns_new = ns_per_op opt in
        let ns_ref = ns_per_op reference in
        (name, ns_new, ns_ref))
      (kernel_benches ())
  in
  let json =
    Json_io.List
      (List.map
         (fun (name, ns_new, ns_ref) ->
           Json_io.Obj
             [
               ("name", Json_io.Str name);
               ("ns_per_op", Json_io.Num ns_new);
               ("ops_per_sec", Json_io.Num (1e9 /. ns_new));
               ("seed_ns_per_op", Json_io.Num ns_ref);
               ("speedup_vs_seed", Json_io.Num (ns_ref /. ns_new));
             ])
         measured)
  in
  update_bench_json "kernels" json;
  Analysis.Report.section "Crypto kernels: optimized vs seed-era reference"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Kernel"; "Optimized"; "Seed-era"; "Speedup" ]
      ~rows:
        (List.map
           (fun (name, ns_new, ns_ref) ->
             [ name; pretty ns_new; pretty ns_ref; Printf.sprintf "%.2fx" (ns_ref /. ns_new) ])
           measured)
  ^ Printf.sprintf "\n\nKernel section written to %s.\n" (bench_json_path ())

(* --- Baseline regression check -------------------------------------------------- *)

(* CI smoke: BENCH_crypto.json must exist, parse, and carry a well-formed
   kernel list; every kernel present in the committed baseline must still
   be measured and run no slower than half its baseline ops/sec. When a
   "campaign" section is present (the `parallel` entry ran), it is gated
   too: the run must be jobs-invariant and the scheduled speedup must
   reach 0.8x the effective worker count. *)
let check_baseline () =
  let fail msg =
    prerr_endline ("check-baseline: " ^ msg);
    exit 1
  in
  let load path =
    match (try Json_io.load path with Json_io.Parse_error e -> fail (path ^ ": " ^ e)) with
    | Some v -> v
    | None -> fail (path ^ ": missing")
  in
  let kernels v path =
    match Option.bind (Json_io.member "kernels" v) Json_io.to_list with
    | Some l when l <> [] -> l
    | _ -> fail (path ^ ": no \"kernels\" section")
  in
  let entry k path =
    match
      ( Option.bind (Json_io.member "name" k) Json_io.to_str,
        Option.bind (Json_io.member "ops_per_sec" k) Json_io.to_float )
    with
    | Some name, Some ops when ops > 0.0 -> (name, ops)
    | _ -> fail (path ^ ": malformed kernel entry")
  in
  let current_path = bench_json_path () in
  let baseline_path = "BENCH_baseline.json" in
  let current_json = load current_path in
  let current = List.map (fun k -> entry k current_path) (kernels current_json current_path) in
  let baseline =
    List.map (fun k -> entry k baseline_path) (kernels (load baseline_path) baseline_path)
  in
  (* The parallel-campaign gate, applied whenever the `parallel` entry
     has written its section. Floor: 0.8 x the effective worker count
     (jobs clamped to the shard count — a tiny world cannot occupy more
     workers than it has shards). *)
  let campaign_gate =
    match Json_io.member "campaign" current_json with
    | None ->
        Printf.sprintf
          "No \"campaign\" section in %s; run `bench parallel` to gate the parallel runner.\n"
          current_path
    | Some c ->
        let num key =
          match Option.bind (Json_io.member key c) Json_io.to_float with
          | Some v -> v
          | None -> fail (Printf.sprintf "%s: campaign section lacks %S" current_path key)
        in
        let jobs = int_of_float (num "jobs") in
        let n_shards = int_of_float (num "n_shards") in
        let speedup = num "parallel_speedup" in
        let deterministic =
          match Json_io.member "deterministic" c with
          | Some (Json_io.Bool b) -> b
          | _ -> fail (current_path ^ ": campaign section lacks \"deterministic\"")
        in
        if not deterministic then
          fail "campaign: 1-worker and N-worker series differ (jobs-invariance broken)";
        let effective = min jobs (max 1 n_shards) in
        let floor = 0.8 *. float_of_int effective in
        if speedup < floor then
          fail
            (Printf.sprintf
               "campaign: scheduled speedup %.2fx at %d jobs (%d shards) is below the %.2fx \
                floor (0.8 x %d) — shard packing or scheduling regressed"
               speedup jobs n_shards floor effective);
        Printf.sprintf
          "Campaign: scheduled speedup %.2fx at %d jobs over %d shards (floor %.2fx), \
           jobs-invariant.\n"
          speedup jobs n_shards floor
  in
  (* The traffic-runner gate, same shape: jobs-invariance is mandatory,
     scheduled speedup floors at 0.8 x the effective worker count, and
     throughput must stay within 2x of the committed baseline. *)
  let traffic_gate =
    match Json_io.member "traffic" current_json with
    | None ->
        Printf.sprintf
          "No \"traffic\" section in %s; run `bench traffic` to gate the population runner.\n"
          current_path
    | Some c ->
        let num key =
          match Option.bind (Json_io.member key c) Json_io.to_float with
          | Some v -> v
          | None -> fail (Printf.sprintf "%s: traffic section lacks %S" current_path key)
        in
        let jobs = int_of_float (num "jobs") in
        let n_shards = int_of_float (num "n_shards") in
        let speedup = num "parallel_speedup" in
        let udps = num "user_days_per_sec" in
        let deterministic =
          match Json_io.member "deterministic" c with
          | Some (Json_io.Bool b) -> b
          | _ -> fail (current_path ^ ": traffic section lacks \"deterministic\"")
        in
        if not deterministic then
          fail "traffic: 1-worker and N-worker rows differ (jobs-invariance broken)";
        let effective = min jobs (max 1 n_shards) in
        let floor = 0.8 *. float_of_int effective in
        if speedup < floor then
          fail
            (Printf.sprintf
               "traffic: scheduled speedup %.2fx at %d jobs (%d shards) is below the %.2fx \
                floor (0.8 x %d) — user sharding or scheduling regressed"
               speedup jobs n_shards floor effective);
        (match
           Option.bind
             (Option.bind (Json_io.member "traffic" (load baseline_path)) (Json_io.member "user_days_per_sec"))
             Json_io.to_float
         with
        | Some base when udps < 0.5 *. base ->
            fail
              (Printf.sprintf
                 "traffic: throughput regressed %.2fx (%.0f -> %.0f user-days/s)" (base /. udps)
                 base udps)
        | _ -> ());
        Printf.sprintf
          "Traffic: %.0f user-days/s, scheduled speedup %.2fx at %d jobs over %d shards \
           (floor %.2fx), jobs-invariant.\n"
          udps speedup jobs n_shards floor
  in
  (* The byzantine-overhead gate: fault synthesis runs the real codecs
     on every injected byzantine decision, which must stay a bounded tax
     on probe throughput, and surviving observations must stay
     byte-identical to the clean campaign. *)
  let faults_gate =
    match Json_io.member "faults" current_json with
    | None ->
        Printf.sprintf
          "No \"faults\" section in %s; run `bench faults` to gate byzantine overhead.\n"
          current_path
    | Some c ->
        let num key =
          match Option.bind (Json_io.member key c) Json_io.to_float with
          | Some v -> v
          | None -> fail (Printf.sprintf "%s: faults section lacks %S" current_path key)
        in
        let overhead = num "byzantine_overhead" in
        let deterministic =
          match Json_io.member "deterministic" c with
          | Some (Json_io.Bool b) -> b
          | _ -> fail (current_path ^ ": faults section lacks \"deterministic\"")
        in
        if not deterministic then
          fail "faults: surviving observations differ from the clean campaign (isolation broken)";
        if overhead > 3.0 then
          fail
            (Printf.sprintf
               "faults: byzantine campaign overhead %.2fx exceeds the 3.0x ceiling — fault \
                synthesis or the breaker path regressed"
               overhead);
        Printf.sprintf
          "Faults: byzantine overhead %.2fx of clean (ceiling 3.0x), %.0f byzantine losses, \
           survivors byte-identical.\n"
          overhead (num "byzantine_losses")
  in
  (* The cross-vantage gate: region scans are independent, so the
     parallel rows must be byte-identical to the serial ones. *)
  let regions_gate =
    match Json_io.member "regions" current_json with
    | None ->
        Printf.sprintf
          "No \"regions\" section in %s; run `bench regions` to gate the cross-vantage scan.\n"
          current_path
    | Some c ->
        let num key =
          match Option.bind (Json_io.member key c) Json_io.to_float with
          | Some v -> v
          | None -> fail (Printf.sprintf "%s: regions section lacks %S" current_path key)
        in
        let deterministic =
          match Json_io.member "deterministic" c with
          | Some (Json_io.Bool b) -> b
          | _ -> fail (current_path ^ ": regions section lacks \"deterministic\"")
        in
        if not deterministic then
          fail "regions: serial and parallel cross-vantage rows differ (jobs-invariance broken)";
        Printf.sprintf
          "Regions: %.0f rows from %.0f vantages, %.0f rows/s, jobs-invariant.\n" (num "rows")
          (num "n_regions") (num "rows_per_sec")
  in
  let rows =
    List.map
      (fun (name, base_ops) ->
        match List.assoc_opt name current with
        | None -> fail (Printf.sprintf "kernel %S in baseline but not measured" name)
        | Some ops ->
            let ratio = ops /. base_ops in
            if ratio < 0.5 then
              fail
                (Printf.sprintf "kernel %S regressed %.2fx (%.0f -> %.0f ops/sec)" name
                   (base_ops /. ops) base_ops ops);
            [ name; Printf.sprintf "%.0f" base_ops; Printf.sprintf "%.0f" ops; Printf.sprintf "%.2fx" ratio ])
      baseline
  in
  (* Absolute speedup-vs-seed gates for the headline kernels: both sides
     of each pair are measured in the same run, so the ratio is immune to
     machine-speed drift that the raw ops/sec comparison above tolerates.
     Floors: the P-256 ladder must hold its >= 3x win over the seed-era
     reference, pow_mod-sim64 must never fall back below parity, and the
     specialized field kernels must stay clearly ahead of the generic
     Montgomery field. *)
  let speedup_of name =
    let rec go = function
      | [] -> fail (Printf.sprintf "%s: kernel %S missing for speedup gate" current_path name)
      | k :: rest -> (
          match Option.bind (Json_io.member "name" k) Json_io.to_str with
          | Some n when n = name -> (
              match Option.bind (Json_io.member "speedup_vs_seed" k) Json_io.to_float with
              | Some s -> s
              | None -> fail (Printf.sprintf "%s: kernel %S lacks speedup_vs_seed" current_path name))
          | _ -> go rest)
    in
    go (kernels current_json current_path)
  in
  let gate_speedup (name, floor) =
    let s = speedup_of name in
    if s < floor then
      fail
        (Printf.sprintf "kernel %S speedup %.2fx vs seed is below the %.2fx floor" name s floor);
    Printf.sprintf "%-24s %6.2fx vs seed (floor %.2fx)\n" name s floor
  in
  let speedup_gates =
    String.concat ""
      (List.map gate_speedup
         [
           ("scalar_mult-p256", 3.0);
           ("pow_mod-sim64", 1.0);
           ("field_mul-p256", 2.0);
           ("field_sqr-p256", 2.0);
         ])
  in
  Analysis.Report.section "Baseline check (current vs committed BENCH_baseline.json)"
  ^ "\n"
  ^ Analysis.Report.table ~headers:[ "Kernel"; "Baseline ops/s"; "Current ops/s"; "Ratio" ] ~rows
  ^ "\n\nAll kernels within 2x of baseline.\n" ^ speedup_gates ^ campaign_gate ^ traffic_gate
  ^ faults_gate ^ regions_gate

(* --- Microbenchmarks ----------------------------------------------------------- *)

let microbenches () =
  let open Bechamel in
  let env = Tls.Config.sim_env () in
  let real = Tls.Config.real_env () in
  let rng = Crypto.Drbg.create ~seed:"bench" in
  (* A self-contained client/server pair at simulation parameters. *)
  let ca =
    Tls.Cert.self_signed ~curve:env.Tls.Config.pki_curve ~name:"Bench CA" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:env.Tls.Config.pki_curve ~subject:"bench.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let stek_manager =
    Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"bench" ~now:0
  in
  let make_server ~kex_policy suites =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites;
          issue_session_ids = true;
          session_cache = Some (Tls.Session_cache.create ~lifetime:86_400 ~capacity:100_000);
          tickets =
            Some
              {
                Tls.Config.stek_manager;
                lifetime_hint = 3600;
                accept_lifetime = 86_400;
                reissue_on_resumption = true;
              };
          kex_cache = Tls.Kex_cache.uniform ~policy:kex_policy;
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"bench-server")
  in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = env;
          offer_suites = Tls.Types.all_cipher_suites;
          offer_ticket = true;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"bench-client") ()
  in
  let connect server offer () =
    let o = Tls.Engine.connect client server ~now:1 ~hostname:"bench.example" ~offer in
    assert o.Tls.Engine.ok
  in
  let ecdhe_server =
    make_server ~kex_policy:Tls.Kex_cache.Fresh_always [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ]
  in
  let ecdhe_reuse_server =
    make_server ~kex_policy:Tls.Kex_cache.Reuse_forever [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ]
  in
  let dhe_server =
    make_server ~kex_policy:Tls.Kex_cache.Fresh_always [ Tls.Types.DHE_ECDSA_AES128_SHA256 ]
  in
  let static_server =
    make_server ~kex_policy:Tls.Kex_cache.Fresh_always [ Tls.Types.ECDH_ECDSA_AES128_SHA256 ]
  in
  let resume_offer server =
    let o =
      Tls.Engine.connect client server ~now:1 ~hostname:"bench.example" ~offer:Tls.Client.Fresh
    in
    match (o.Tls.Engine.new_ticket, o.Tls.Engine.session) with
    | Some (_, ticket), Some session ->
        (Tls.Client.Offer_ticket { ticket; session }, Tls.Client.Offer_session_id session)
    | _ -> failwith "bench: no resumption state"
  in
  let ticket_offer, id_offer = resume_offer ecdhe_server in
  (* Raw primitives. *)
  let stek = Tls.Stek_manager.issuing stek_manager ~now:0 in
  let session =
    Tls.Session.make ~id:(String.make 32 'i') ~master_secret:(String.make 48 'm')
      ~cipher_suite:Tls.Types.ECDHE_ECDSA_AES128_SHA256 ~established_at:0
  in
  let sealed = Tls.Ticket.seal stek rng session in
  let find_stek name = if String.equal name (Tls.Stek.key_name stek) then Some stek else None in
  let kb = String.make 1024 'x' in
  let aes = Crypto.Aes.of_key (String.make 16 'k') in
  let block = String.make 16 'b' in
  let p256_kp = Crypto.Ec.gen_keypair Crypto.Ec.p256 rng in
  let p256_pub =
    match Crypto.Ec.point_of_bytes Crypto.Ec.p256 (Crypto.Ec.public_bytes p256_kp) with
    | Ok p -> p
    | Error e -> failwith e
  in
  let oakley_kp = Crypto.Dh.gen_keypair Crypto.Dh.oakley2 rng in
  let oakley_pub = Crypto.Bignum.of_bytes_be (Crypto.Dh.public_bytes oakley_kp) in
  let x_kp = Crypto.X25519.gen_keypair rng in
  let tests =
    [
      (* The shortcuts' cost story: what a full handshake costs versus a
         resumption — the performance motivation the paper weighs against
         the forward-secrecy harm. *)
      Test.make ~name:"handshake/full-ecdhe-fresh"
        (Staged.stage (connect ecdhe_server Tls.Client.Fresh));
      Test.make ~name:"handshake/full-ecdhe-reused-value"
        (Staged.stage (connect ecdhe_reuse_server Tls.Client.Fresh));
      Test.make ~name:"handshake/full-dhe-fresh"
        (Staged.stage (connect dhe_server Tls.Client.Fresh));
      Test.make ~name:"handshake/full-static-ecdh"
        (Staged.stage (connect static_server Tls.Client.Fresh));
      Test.make ~name:"handshake/resume-session-id" (Staged.stage (connect ecdhe_server id_offer));
      Test.make ~name:"handshake/resume-ticket" (Staged.stage (connect ecdhe_server ticket_offer));
      (* Ticket machinery. *)
      Test.make ~name:"ticket/seal"
        (Staged.stage (fun () -> ignore (Tls.Ticket.seal stek rng session)));
      Test.make ~name:"ticket/unseal"
        (Staged.stage (fun () ->
             match Tls.Ticket.unseal ~find_stek sealed with Ok _ -> () | Error _ -> assert false));
      (* Asymmetric primitives, simulation- and production-sized. *)
      Test.make ~name:"kex/ecdhe-keygen-sim"
        (Staged.stage (fun () -> ignore (Crypto.Ec.gen_keypair env.Tls.Config.ecdhe_curve rng)));
      Test.make ~name:"kex/ecdhe-keygen-p256"
        (Staged.stage (fun () -> ignore (Crypto.Ec.gen_keypair Crypto.Ec.p256 rng)));
      Test.make ~name:"kex/ecdh-shared-p256"
        (Staged.stage (fun () ->
             match Crypto.Ec.shared_secret p256_kp ~peer_pub:p256_pub with
             | Ok _ -> ()
             | Error _ -> assert false));
      Test.make ~name:"kex/dhe-keygen-sim"
        (Staged.stage (fun () -> ignore (Crypto.Dh.gen_keypair env.Tls.Config.dh_group rng)));
      Test.make ~name:"kex/dhe-keygen-oakley1024"
        (Staged.stage (fun () -> ignore (Crypto.Dh.gen_keypair real.Tls.Config.dh_group rng)));
      Test.make ~name:"kex/dhe-shared-oakley1024"
        (Staged.stage (fun () ->
             match Crypto.Dh.shared_secret oakley_kp ~peer_pub:oakley_pub with
             | Ok _ -> ()
             | Error _ -> assert false));
      Test.make ~name:"kex/x25519-shared"
        (Staged.stage (fun () ->
             match Crypto.X25519.shared_secret x_kp ~peer_pub:(Crypto.X25519.public_bytes x_kp) with
             | Ok _ -> ()
             | Error _ -> ()));
      (* Symmetric floor. *)
      Test.make ~name:"sym/sha256-1KiB" (Staged.stage (fun () -> ignore (Crypto.Sha256.digest kb)));
      Test.make ~name:"sym/aes128-block"
        (Staged.stage (fun () -> ignore (Crypto.Aes.encrypt_block aes block)));
      Test.make ~name:"sym/hmac-sha256-1KiB"
        (Staged.stage (fun () -> ignore (Crypto.Hmac.sha256 ~key:"k" kb)));
    ]
  in
  let grouped = Test.make_grouped ~name:"tlsharm" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some (t :: _) -> t | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  let pretty ns =
    if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
    else if ns < 1_000_000.0 then Printf.sprintf "%.1f us" (ns /. 1e3)
    else Printf.sprintf "%.2f ms" (ns /. 1e6)
  in
  Analysis.Report.section "Microbenchmarks (bechamel, monotonic clock)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Operation"; "Time/run"; "r^2" ]
      ~rows:(List.map (fun (n, ns, r2) -> [ n; pretty ns; Printf.sprintf "%.3f" r2 ]) rows)
  ^ "\n\nThe gap between full handshakes and resumptions is the performance incentive behind\n\
     the paper's crypto shortcuts; production-sized DHE (Oakley 1024) shows why servers\n\
     cached ephemeral values.\n"
  ^ "\n" ^ kernel_report ()

(* --- Serial vs parallel campaign ----------------------------------------------------- *)

(* Serial daily scan vs the operator-sharded parallel runner, plus the
   determinism check the parallel design promises: a 1-worker and an
   N-worker run of the same world produce identical series. Each run
   gets a fresh world (campaigns mutate server state), sized by
   TLSHARM_DOMAINS/TLSHARM_DAYS with smaller defaults than the full
   study so "bench all" stays quick.

   Run order is serial, then 1 worker, then N workers: the first run
   pays the allocator/page-fault warm-up, and it must not be the
   parallel one — the seed-era ordering timed the parallel run on a
   cold process and biased the ratio against it.

   Two speedups are reported and they answer different questions:

   - [parallel_speedup] (the gated one) is *scheduled* speedup: per-shard
     wall times are measured on the 1-worker run (campaign.shard spans,
     where shards execute sequentially and do not contend), then the
     exact heaviest-first atomic-queue schedule is simulated over [jobs]
     workers; the speedup is total shard work over that makespan. This
     measures what the sharder and scheduler control — balance and
     granularity — and is what regresses if packing degrades.
   - [wall_speedup] is raw end-to-end wall ratio (1 worker / N workers).
     On a host with fewer free cores than [jobs] it measures the host,
     not the scheduler (N OCaml domains time-slicing one core run
     *slower* than one domain), so it is reported but not gated. *)
let parallel_campaign_bench () =
  let n_domains = env_int "TLSHARM_DOMAINS" 2000 in
  let days = env_int "TLSHARM_DAYS" 7 in
  let fresh () =
    Simnet.World.create
      ~config:
        {
          Simnet.World.default_config with
          Simnet.World.n_domains;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        }
      ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs =
    let j = env_int "TLSHARM_JOBS" 0 in
    if j >= 2 then j else max 2 (Domain.recommended_domain_count ())
  in
  let world = fresh () in
  let n_shards = Array.length (Scanner.Parallel_campaign.shards world) in
  let serial, t_serial = time (fun () -> Scanner.Daily_scan.run world ~days ()) in
  let obs = Obs.Recorder.create ~wall:true () in
  let one, t_one =
    time (fun () -> Scanner.Parallel_campaign.run ~jobs:1 ~obs (fresh ()) ~days ())
  in
  let par, t_par = time (fun () -> Scanner.Parallel_campaign.run ~jobs (fresh ()) ~days ()) in
  let deterministic = par.Scanner.Daily_scan.series = one.Scanner.Daily_scan.series in
  (* Per-shard wall times, in shard-id (= queue) order, from the
     1-worker run's campaign.shard spans. *)
  let walls =
    Obs.Trace.stats (Obs.Recorder.trace obs)
    |> List.filter_map (fun (st : Obs.Trace.span_stat) ->
           if String.equal st.Obs.Trace.span_name "campaign.shard" then
             Option.bind (List.assoc_opt "shard" st.Obs.Trace.span_attrs) (fun id ->
                 Option.map
                   (fun id -> (id, st.Obs.Trace.span_wall_ns /. 1e9))
                   (int_of_string_opt id))
           else None)
    |> List.sort compare |> List.map snd |> Array.of_list
  in
  let shard_work = Array.fold_left ( +. ) 0.0 walls in
  let wall_max = Array.fold_left max 0.0 walls in
  let wall_mean = if Array.length walls = 0 then 0.0 else shard_work /. float_of_int (Array.length walls) in
  (* Replay the run-queue schedule: workers claim the next unstarted
     shard (ids are heaviest-first) as they go idle. *)
  let makespan jobs =
    let jobs = max 1 (min jobs (Array.length walls)) in
    let finish = Array.make jobs 0.0 in
    Array.iter
      (fun w ->
        let best = ref 0 in
        for i = 1 to jobs - 1 do
          if finish.(i) < finish.(!best) then best := i
        done;
        finish.(!best) <- finish.(!best) +. w)
      walls;
    Array.fold_left max 0.0 finish
  in
  let scheduled_speedup =
    if Array.length walls = 0 then 1.0 else shard_work /. makespan jobs
  in
  let utilization = scheduled_speedup /. float_of_int (min jobs (max 1 n_shards)) in
  update_bench_json "campaign"
    (Json_io.Obj
       [
         ("n_domains", Json_io.Num (float_of_int n_domains));
         ("days", Json_io.Num (float_of_int days));
         ("jobs", Json_io.Num (float_of_int jobs));
         ("n_shards", Json_io.Num (float_of_int n_shards));
         ("serial_s", Json_io.Num t_serial);
         ("one_worker_s", Json_io.Num t_one);
         ("parallel_s", Json_io.Num t_par);
         ("shard_wall_max_s", Json_io.Num wall_max);
         ("shard_wall_mean_s", Json_io.Num wall_mean);
         ("shard_balance", Json_io.Num (if wall_mean > 0.0 then wall_max /. wall_mean else 1.0));
         ("parallel_speedup", Json_io.Num scheduled_speedup);
         ("parallel_utilization", Json_io.Num utilization);
         ("wall_speedup", Json_io.Num (t_one /. t_par));
         ("deterministic", Json_io.Bool deterministic);
       ]);
  Analysis.Report.section "Campaign runners (wall-clock)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Runner"; "Wall-clock"; "Notes" ]
      ~rows:
        [
          [ "serial Daily_scan.run"; Printf.sprintf "%.2f s" t_serial; "" ];
          [ "Parallel_campaign.run ~jobs:1"; Printf.sprintf "%.2f s" t_one; "" ];
          [
            Printf.sprintf "Parallel_campaign.run ~jobs:%d" jobs;
            Printf.sprintf "%.2f s" t_par;
            Printf.sprintf "%.2fx wall vs 1 worker" (t_one /. t_par);
          ];
        ]
  ^ Printf.sprintf
      "\n\n%d domains, %d days, %d shards, %d core(s) available; %d-worker series %s 1-worker \
       series (%d domains scanned either way).\n\
       Shard walls (1-worker run): max %.3f s, mean %.3f s, balance %.2fx.\n\
       Scheduled speedup at %d jobs: %.2fx (%.0f%% utilization) — heaviest-first queue \
       simulated over measured shard walls; see README for why the wall ratio is not the \
       gated number on shared hosts.\n"
      n_domains days n_shards
      (Domain.recommended_domain_count ())
      jobs
      (if deterministic then "identical to" else "DIFFER FROM (BUG)")
      (Array.length serial.Scanner.Daily_scan.series)
      wall_max wall_mean
      (if wall_mean > 0.0 then wall_max /. wall_mean else 1.0)
      jobs scheduled_speedup (100.0 *. utilization)

(* --- Traffic population runner ------------------------------------------------------- *)

(* The client-side runner under the same two lenses as the campaign
   bench: throughput (user-days simulated per second, the number that
   says whether 10^6 users x 63 days is tractable) and scheduled
   speedup over the measured per-shard walls (what the user sharder
   controls). Determinism is checked the same way: a 1-worker and an
   N-worker run must produce identical rows. *)
let traffic_bench () =
  let users = env_int "TLSHARM_TRAFFIC_USERS" 1024 in
  let shard_users = env_int "TLSHARM_TRAFFIC_SHARD" 128 in
  let days = env_int "TLSHARM_TRAFFIC_DAYS" 3 in
  let cfg =
    {
      Traffic.Population.default_config with
      Traffic.Population.users;
      days;
      shard_users;
      pages_per_day = 1.0;
      world =
        {
          Simnet.World.default_config with
          Simnet.World.n_domains = 1500;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        };
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs =
    let j = env_int "TLSHARM_JOBS" 0 in
    if j >= 2 then j else max 2 (Domain.recommended_domain_count ())
  in
  let n_shards = Array.length (Traffic.Population.shards cfg) in
  let obs = Obs.Recorder.create ~wall:true () in
  let one, t_one = time (fun () -> Traffic.Population.run ~jobs:1 ~obs cfg) in
  let par, t_par = time (fun () -> Traffic.Population.run ~jobs cfg) in
  let deterministic = one.Traffic.Population.rows = par.Traffic.Population.rows in
  let walls =
    Obs.Trace.stats (Obs.Recorder.trace obs)
    |> List.filter_map (fun (st : Obs.Trace.span_stat) ->
           if String.equal st.Obs.Trace.span_name "traffic.shard" then
             Option.bind (List.assoc_opt "shard" st.Obs.Trace.span_attrs) (fun id ->
                 Option.map
                   (fun id -> (id, st.Obs.Trace.span_wall_ns /. 1e9))
                   (int_of_string_opt id))
           else None)
    |> List.sort compare |> List.map snd |> Array.of_list
  in
  let shard_work = Array.fold_left ( +. ) 0.0 walls in
  let makespan jobs =
    let jobs = max 1 (min jobs (Array.length walls)) in
    let finish = Array.make jobs 0.0 in
    Array.iter
      (fun w ->
        let best = ref 0 in
        for i = 1 to jobs - 1 do
          if finish.(i) < finish.(!best) then best := i
        done;
        finish.(!best) <- finish.(!best) +. w)
      walls;
    Array.fold_left max 0.0 finish
  in
  let scheduled_speedup =
    if Array.length walls = 0 then 1.0 else shard_work /. makespan jobs
  in
  let user_days_per_sec = float_of_int (users * days) /. t_one in
  update_bench_json "traffic"
    (Json_io.Obj
       [
         ("users", Json_io.Num (float_of_int users));
         ("days", Json_io.Num (float_of_int days));
         ("shard_users", Json_io.Num (float_of_int shard_users));
         ("n_shards", Json_io.Num (float_of_int n_shards));
         ("jobs", Json_io.Num (float_of_int jobs));
         ("connections", Json_io.Num (float_of_int one.Traffic.Population.total_rows));
         ("one_worker_s", Json_io.Num t_one);
         ("parallel_s", Json_io.Num t_par);
         ("user_days_per_sec", Json_io.Num user_days_per_sec);
         ("parallel_speedup", Json_io.Num scheduled_speedup);
         ("wall_speedup", Json_io.Num (t_one /. t_par));
         ("deterministic", Json_io.Bool deterministic);
       ]);
  Analysis.Report.section "Traffic population runner (wall-clock)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Runner"; "Wall-clock"; "Notes" ]
      ~rows:
        [
          [ "Population.run ~jobs:1"; Printf.sprintf "%.2f s" t_one; "" ];
          [
            Printf.sprintf "Population.run ~jobs:%d" jobs;
            Printf.sprintf "%.2f s" t_par;
            Printf.sprintf "%.2fx wall vs 1 worker" (t_one /. t_par);
          ];
        ]
  ^ Printf.sprintf
      "\n\n%d users x %d days over %d shards (%d connections); %d-worker rows %s 1-worker \
       rows.\n\
       Throughput: %.0f user-days/s single-worker. Scheduled speedup at %d jobs: %.2fx over \
       measured shard walls.\n"
      users days n_shards one.Traffic.Population.total_rows jobs
      (if deterministic then "identical to" else "DIFFER FROM (BUG)")
      user_days_per_sec jobs scheduled_speedup

(* --- Per-phase telemetry breakdown --------------------------------------------------- *)

(* The observability layer over a mini-campaign with host-clock span
   timing enabled: where a campaign's wall-clock actually goes, phase by
   phase, plus the crypto-kernel call counts behind it. Emits a "phases"
   section into BENCH_crypto.json so perf PRs can diff per-phase cost,
   not just end-to-end seconds. *)
let rec json_io_of_obs (j : Obs.Json.t) : Json_io.t =
  match j with
  | Obs.Json.Null -> Json_io.Null
  | Obs.Json.Bool b -> Json_io.Bool b
  | Obs.Json.Num n -> Json_io.Num n
  | Obs.Json.Str s -> Json_io.Str s
  | Obs.Json.List l -> Json_io.List (List.map json_io_of_obs l)
  | Obs.Json.Obj kvs -> Json_io.Obj (List.map (fun (k, v) -> (k, json_io_of_obs v)) kvs)

let phases_bench () =
  let n_domains = env_int "TLSHARM_DOMAINS" 2000 in
  let days = env_int "TLSHARM_DAYS" 7 in
  let world =
    Simnet.World.create
      ~config:
        {
          Simnet.World.default_config with
          Simnet.World.n_domains;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        }
      ()
  in
  let obs = Obs.Recorder.create ~wall:true () in
  let kernel_before = Obs.Kernel.snapshot () in
  let t0 = Unix.gettimeofday () in
  let scan = Scanner.Daily_scan.run ~obs world ~days () in
  let wall_s = Unix.gettimeofday () -. t0 in
  Obs.Kernel.add_to_metrics (Obs.Recorder.metrics obs)
    (Obs.Kernel.diff ~before:kernel_before ~after:(Obs.Kernel.snapshot ()));
  update_bench_json "phases"
    (Json_io.Obj
       [
         ("n_domains", Json_io.Num (float_of_int n_domains));
         ("days", Json_io.Num (float_of_int days));
         ("wall_s", Json_io.Num wall_s);
         ("metrics", json_io_of_obs (Obs.Metrics.to_json (Obs.Recorder.metrics obs)));
         ("trace", json_io_of_obs (Obs.Trace.to_json (Obs.Recorder.trace obs)));
       ]);
  let m = Obs.Recorder.metrics obs in
  let counter name = Obs.Metrics.counter_value m name in
  Analysis.Report.section "Campaign phase breakdown (telemetry, wall clock on)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Metric"; "Count" ]
      ~rows:
        (List.map
           (fun name -> [ name; string_of_int (counter name) ])
           [
             "probe.connects";
             "probe.attempts";
             "probe.successes";
             "probe.failures";
             "probe.tickets.issued";
             "probe.kex.dhe";
             "probe.kex.ecdhe";
             "kernel.pow_mod";
             "kernel.pow_mod_fixed";
             "kernel.ec_scalar_mult";
             "kernel.ec_scalar_mult_base";
             "kernel.x25519_mult";
           ])
  ^ Printf.sprintf
      "\n\n%d domains, %d days, %d series rows; campaign wall-clock %.2f s. Full per-span wall \
       timings are in the \"phases\" section of %s.\n"
      n_domains days
      (Array.length scan.Scanner.Daily_scan.series)
      wall_s (bench_json_path ())

(* --- Fault-injection funnel ---------------------------------------------------------- *)

(* A fault-enabled mini-campaign under the default profile: the same
   world scanned clean and faulty, reporting the measurement-loss funnel
   and the wall-clock overhead of the retry machinery. The fault layer
   promises that observations which succeed under injection are
   byte-identical to the clean run's; this entry checks that promise on
   every scan day. *)
let faults_bench () =
  let n_domains = env_int "TLSHARM_DOMAINS" 2000 in
  let days = env_int "TLSHARM_DAYS" 7 in
  let fresh () =
    Simnet.World.create
      ~config:
        {
          Simnet.World.default_config with
          Simnet.World.n_domains;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        }
      ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let clean, t_clean = time (fun () -> Scanner.Daily_scan.run (fresh ()) ~days ()) in
  let world = fresh () in
  let injector = Faults.Injector.create ~profile:Faults.Profile.default world in
  let funnel = Faults.Funnel.create () in
  let faulty, t_faulty =
    time (fun () -> Scanner.Daily_scan.run ~injector ~retry:Faults.Retry.default ~funnel world ~days ())
  in
  (* Key day records by (domain, day): any day where both sweeps got
     through the fault layer must match the clean run field-for-field. *)
  let index (scan : Scanner.Daily_scan.t) =
    let tbl = Hashtbl.create 4096 in
    Array.iter
      (fun (ds : Scanner.Daily_scan.domain_series) ->
        Array.iter
          (fun (r : Scanner.Daily_scan.day_record) ->
            Hashtbl.replace tbl (ds.Scanner.Daily_scan.domain, r.Scanner.Daily_scan.day) r)
          ds.Scanner.Daily_scan.days)
      scan.Scanner.Daily_scan.series;
    tbl
  in
  let clean_ix = index clean in
  let mismatches = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun key (r : Scanner.Daily_scan.day_record) ->
      if r.Scanner.Daily_scan.default_ok && r.Scanner.Daily_scan.dhe_ok then
        match Hashtbl.find_opt clean_ix key with
        | Some c ->
            incr checked;
            if r <> c then incr mismatches
        | None -> ())
    (index faulty);
  let totals = Faults.Funnel.totals funnel in
  (* The byzantine profile is the expensive one: every injected fault
     synthesizes and decodes hostile bytes through the real codecs, so
     its probe throughput against the clean run is the honest price of
     adversarial robustness — measured here, gated in check-baseline. *)
  let byz_world = fresh () in
  let byz_injector = Faults.Injector.create ~profile:Faults.Profile.byzantine byz_world in
  let byz_funnel = Faults.Funnel.create () in
  let byzantine, t_byz =
    time (fun () ->
        Scanner.Daily_scan.run ~injector:byz_injector ~retry:Faults.Retry.default
          ~funnel:byz_funnel byz_world ~days ())
  in
  let byz_checked = ref 0 and byz_mismatches = ref 0 in
  Hashtbl.iter
    (fun key (r : Scanner.Daily_scan.day_record) ->
      if r.Scanner.Daily_scan.default_ok && r.Scanner.Daily_scan.dhe_ok then
        match Hashtbl.find_opt clean_ix key with
        | Some c ->
            incr byz_checked;
            if r <> c then incr byz_mismatches
        | None -> ())
    (index byzantine);
  let byz_totals = Faults.Funnel.totals byz_funnel in
  let byz_lost_byzantine =
    List.fold_left
      (fun acc (f, n) -> if Faults.Fault.is_byzantine f then acc + n else acc)
      0 byz_totals.Faults.Funnel.t_losses
  in
  let probes = float_of_int byz_totals.Faults.Funnel.t_probes in
  update_bench_json "faults"
    (Json_io.Obj
       [
         ("n_domains", Json_io.Num (float_of_int n_domains));
         ("days", Json_io.Num (float_of_int days));
         ("probes", Json_io.Num probes);
         ("clean_s", Json_io.Num t_clean);
         ("byzantine_s", Json_io.Num t_byz);
         ("clean_probes_per_sec", Json_io.Num (probes /. t_clean));
         ("byzantine_probes_per_sec", Json_io.Num (probes /. t_byz));
         ("byzantine_overhead", Json_io.Num (t_byz /. t_clean));
         ("byzantine_losses", Json_io.Num (float_of_int byz_lost_byzantine));
         ("deterministic", Json_io.Bool (!byz_mismatches = 0 && !mismatches = 0));
       ]);
  Analysis.Funnel_report.render
    ~title:
      (Printf.sprintf "Fault-injection funnel (profile: default, %d domains, %d days)" n_domains
         days)
    funnel
  ^ Printf.sprintf
      "
clean campaign %.2f s, faulty campaign %.2f s (%.2fx); %d surviving observations compared against the clean run, %d mismatch%s%s.
"
      t_clean t_faulty
      (t_faulty /. t_clean)
      !checked !mismatches
      (if !mismatches = 1 then "" else "es")
      (if !mismatches = 0 then "" else " (BUG: fault layer perturbed surviving probes)")
  ^ Printf.sprintf "lost %d of %d probes to injected faults.
"
      (Faults.Funnel.lost totals) totals.Faults.Funnel.t_probes
  ^ Analysis.Funnel_report.render
      ~title:
        (Printf.sprintf "Byzantine funnel (profile: byzantine, %d domains, %d days)" n_domains
           days)
      byz_funnel
  ^ Printf.sprintf
      "
byzantine campaign %.2f s (%.2fx of clean, %.0f probes/s vs %.0f clean); %d surviving observations, %d mismatch%s%s.
%d probes lost to byzantine causes (malformed + protocol violations).
"
      t_byz (t_byz /. t_clean) (probes /. t_byz) (probes /. t_clean) !byz_checked
      !byz_mismatches
      (if !byz_mismatches = 1 then "" else "es")
      (if !byz_mismatches = 0 then "" else " (BUG: byzantine injection perturbed surviving probes)")
      byz_lost_byzantine

(* --- Cross-vantage bench --------------------------------------------------------

   The cross-regional scan: the same domain-days probed from N vantage
   regions, once serially and once with one worker per region. Region
   scans are independent by construction, so the parallel rows must be
   byte-identical to the serial ones — that invariance is what
   check-baseline gates. *)
let regions_bench () =
  let n_domains = env_int "TLSHARM_DOMAINS" 1500 in
  let days = env_int "TLSHARM_DAYS" 1 in
  let n_regions = env_int "TLSHARM_REGIONS" 2 in
  let cfg =
    {
      Scanner.Cross_vantage.base =
        {
          Simnet.World.default_config with
          Simnet.World.n_domains;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        };
      regions = Simnet.Region.take n_regions;
      days;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let one, t_one = time (fun () -> Scanner.Cross_vantage.run ~jobs:1 cfg) in
  let par, t_par = time (fun () -> Scanner.Cross_vantage.run ~jobs:n_regions cfg) in
  let rows_one = Scanner.Cross_vantage.rows one in
  let deterministic = rows_one = Scanner.Cross_vantage.rows par in
  let n_rows = List.length rows_one in
  update_bench_json "regions"
    (Json_io.Obj
       [
         ("n_domains", Json_io.Num (float_of_int n_domains));
         ("days", Json_io.Num (float_of_int days));
         ("n_regions", Json_io.Num (float_of_int n_regions));
         ("rows", Json_io.Num (float_of_int n_rows));
         ("one_worker_s", Json_io.Num t_one);
         ("parallel_s", Json_io.Num t_par);
         ("rows_per_sec", Json_io.Num (float_of_int n_rows /. t_one));
         ("wall_speedup", Json_io.Num (t_one /. t_par));
         ("deterministic", Json_io.Bool deterministic);
       ]);
  Analysis.Report.section "Cross-vantage scan (wall-clock)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Runner"; "Wall-clock"; "Notes" ]
      ~rows:
        [
          [
            "Cross_vantage.run ~jobs:1";
            Printf.sprintf "%.2f s" t_one;
            Printf.sprintf "%d regions, %d rows" n_regions n_rows;
          ];
          [
            Printf.sprintf "Cross_vantage.run ~jobs:%d" n_regions;
            Printf.sprintf "%.2f s" t_par;
            Printf.sprintf "%.2fx wall vs 1 worker" (t_one /. t_par);
          ];
        ]
  ^ Printf.sprintf "\n\njobs-invariant: %b\n" deterministic

(* --- Driver ------------------------------------------------------------------------- *)

let ablations () = Tlsharm.Mitigations.report (Lazy.force study)
let tls13 () = Tlsharm.Tls13_projection.report (Lazy.force study)

let named : (string * (unit -> string)) list =
  List.map (fun (name, f) -> (name, fun () -> f (Lazy.force study))) Tlsharm.Experiments.by_name
  @ [
      ("google", google_analysis);
      ("ablations", ablations);
      ("tls13", tls13);
      ("micro", microbenches);
      ("parallel", parallel_campaign_bench);
      ("traffic", traffic_bench);
      ("phases", phases_bench);
      ("faults", faults_bench);
      ("regions", regions_bench);
      ("check-baseline", check_baseline);
    ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Unix.gettimeofday () in
  let selected =
    match args with [] | [ "all" ] -> List.map fst named | ids -> ids
  in
  List.iter
    (fun id ->
      match List.assoc_opt id named with
      | Some f -> print_endline (f ())
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" id
            (String.concat " " (List.map fst named));
          exit 1)
    selected;
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
