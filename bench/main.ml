(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation against a freshly simulated world, prints the
   Section 7.2 target analysis and the Section 8.2 mitigation ablations,
   and runs a bechamel microbenchmark suite over the cryptographic
   operations the crypto shortcuts exist to avoid.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe t1 f3 google    run selected experiments
     bench/main.exe micro           microbenchmarks only
     bench/main.exe ablations       section 8.2 what-ifs only
     bench/main.exe parallel        serial vs parallel campaign wall-clock
     bench/main.exe faults          fault-injected campaign + loss funnel

   Environment:
     TLSHARM_DOMAINS  sampled world size (default 4000)
     TLSHARM_DAYS     campaign length in days (default 63)
     TLSHARM_SEED     world seed (default "tlsharm")
     TLSHARM_JOBS     campaign worker domains (default 1) *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  | None -> default

let study_config () =
  {
    Tlsharm.Study.world_config =
      {
        Simnet.World.default_config with
        Simnet.World.n_domains = env_int "TLSHARM_DOMAINS" 4000;
        seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
      };
    campaign_days = env_int "TLSHARM_DAYS" 63;
    jobs = env_int "TLSHARM_JOBS" 1;
    verbose = true;
    (* The bench study stays fault-free so every table and figure is
       byte-identical to the pre-fault harness; the dedicated "faults"
       entry below exercises injection explicitly. *)
    fault_profile = Faults.Profile.none;
    retry = Faults.Retry.default;
  }

let study = lazy (Tlsharm.Study.create ~config:(study_config ()) ())

(* --- Section 7.2 ------------------------------------------------------------- *)

let google_analysis () =
  let study = Lazy.force study in
  let a = Tlsharm.Target_analysis.analyze study ~operator:"google" ~flagship:"google.com" in
  Tlsharm.Target_analysis.report a
  ^ "\n"
  ^ Tlsharm.Target_analysis.static_stek_contrast study ~flagship:"yandex.ru"
  ^ "\n"

(* --- Microbenchmarks ----------------------------------------------------------- *)

let microbenches () =
  let open Bechamel in
  let env = Tls.Config.sim_env () in
  let real = Tls.Config.real_env () in
  let rng = Crypto.Drbg.create ~seed:"bench" in
  (* A self-contained client/server pair at simulation parameters. *)
  let ca =
    Tls.Cert.self_signed ~curve:env.Tls.Config.pki_curve ~name:"Bench CA" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:env.Tls.Config.pki_curve ~subject:"bench.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let stek_manager =
    Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"bench" ~now:0
  in
  let make_server ~kex_policy suites =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites;
          issue_session_ids = true;
          session_cache = Some (Tls.Session_cache.create ~lifetime:86_400 ~capacity:100_000);
          tickets =
            Some
              {
                Tls.Config.stek_manager;
                lifetime_hint = 3600;
                accept_lifetime = 86_400;
                reissue_on_resumption = true;
              };
          kex_cache = Tls.Kex_cache.uniform ~policy:kex_policy;
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"bench-server")
  in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = env;
          offer_suites = Tls.Types.all_cipher_suites;
          offer_ticket = true;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"bench-client") ()
  in
  let connect server offer () =
    let o = Tls.Engine.connect client server ~now:1 ~hostname:"bench.example" ~offer in
    assert o.Tls.Engine.ok
  in
  let ecdhe_server =
    make_server ~kex_policy:Tls.Kex_cache.Fresh_always [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ]
  in
  let ecdhe_reuse_server =
    make_server ~kex_policy:Tls.Kex_cache.Reuse_forever [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ]
  in
  let dhe_server =
    make_server ~kex_policy:Tls.Kex_cache.Fresh_always [ Tls.Types.DHE_ECDSA_AES128_SHA256 ]
  in
  let static_server =
    make_server ~kex_policy:Tls.Kex_cache.Fresh_always [ Tls.Types.ECDH_ECDSA_AES128_SHA256 ]
  in
  let resume_offer server =
    let o =
      Tls.Engine.connect client server ~now:1 ~hostname:"bench.example" ~offer:Tls.Client.Fresh
    in
    match (o.Tls.Engine.new_ticket, o.Tls.Engine.session) with
    | Some (_, ticket), Some session ->
        (Tls.Client.Offer_ticket { ticket; session }, Tls.Client.Offer_session_id session)
    | _ -> failwith "bench: no resumption state"
  in
  let ticket_offer, id_offer = resume_offer ecdhe_server in
  (* Raw primitives. *)
  let stek = Tls.Stek_manager.issuing stek_manager ~now:0 in
  let session =
    Tls.Session.make ~id:(String.make 32 'i') ~master_secret:(String.make 48 'm')
      ~cipher_suite:Tls.Types.ECDHE_ECDSA_AES128_SHA256 ~established_at:0
  in
  let sealed = Tls.Ticket.seal stek rng session in
  let find_stek name = if String.equal name (Tls.Stek.key_name stek) then Some stek else None in
  let kb = String.make 1024 'x' in
  let aes = Crypto.Aes.of_key (String.make 16 'k') in
  let block = String.make 16 'b' in
  let p256_kp = Crypto.Ec.gen_keypair Crypto.Ec.p256 rng in
  let p256_pub =
    match Crypto.Ec.point_of_bytes Crypto.Ec.p256 (Crypto.Ec.public_bytes p256_kp) with
    | Ok p -> p
    | Error e -> failwith e
  in
  let oakley_kp = Crypto.Dh.gen_keypair Crypto.Dh.oakley2 rng in
  let oakley_pub = Crypto.Bignum.of_bytes_be (Crypto.Dh.public_bytes oakley_kp) in
  let x_kp = Crypto.X25519.gen_keypair rng in
  let tests =
    [
      (* The shortcuts' cost story: what a full handshake costs versus a
         resumption — the performance motivation the paper weighs against
         the forward-secrecy harm. *)
      Test.make ~name:"handshake/full-ecdhe-fresh"
        (Staged.stage (connect ecdhe_server Tls.Client.Fresh));
      Test.make ~name:"handshake/full-ecdhe-reused-value"
        (Staged.stage (connect ecdhe_reuse_server Tls.Client.Fresh));
      Test.make ~name:"handshake/full-dhe-fresh"
        (Staged.stage (connect dhe_server Tls.Client.Fresh));
      Test.make ~name:"handshake/full-static-ecdh"
        (Staged.stage (connect static_server Tls.Client.Fresh));
      Test.make ~name:"handshake/resume-session-id" (Staged.stage (connect ecdhe_server id_offer));
      Test.make ~name:"handshake/resume-ticket" (Staged.stage (connect ecdhe_server ticket_offer));
      (* Ticket machinery. *)
      Test.make ~name:"ticket/seal"
        (Staged.stage (fun () -> ignore (Tls.Ticket.seal stek rng session)));
      Test.make ~name:"ticket/unseal"
        (Staged.stage (fun () ->
             match Tls.Ticket.unseal ~find_stek sealed with Ok _ -> () | Error _ -> assert false));
      (* Asymmetric primitives, simulation- and production-sized. *)
      Test.make ~name:"kex/ecdhe-keygen-sim"
        (Staged.stage (fun () -> ignore (Crypto.Ec.gen_keypair env.Tls.Config.ecdhe_curve rng)));
      Test.make ~name:"kex/ecdhe-keygen-p256"
        (Staged.stage (fun () -> ignore (Crypto.Ec.gen_keypair Crypto.Ec.p256 rng)));
      Test.make ~name:"kex/ecdh-shared-p256"
        (Staged.stage (fun () ->
             match Crypto.Ec.shared_secret p256_kp ~peer_pub:p256_pub with
             | Ok _ -> ()
             | Error _ -> assert false));
      Test.make ~name:"kex/dhe-keygen-sim"
        (Staged.stage (fun () -> ignore (Crypto.Dh.gen_keypair env.Tls.Config.dh_group rng)));
      Test.make ~name:"kex/dhe-keygen-oakley1024"
        (Staged.stage (fun () -> ignore (Crypto.Dh.gen_keypair real.Tls.Config.dh_group rng)));
      Test.make ~name:"kex/dhe-shared-oakley1024"
        (Staged.stage (fun () ->
             match Crypto.Dh.shared_secret oakley_kp ~peer_pub:oakley_pub with
             | Ok _ -> ()
             | Error _ -> assert false));
      Test.make ~name:"kex/x25519-shared"
        (Staged.stage (fun () ->
             match Crypto.X25519.shared_secret x_kp ~peer_pub:(Crypto.X25519.public_bytes x_kp) with
             | Ok _ -> ()
             | Error _ -> ()));
      (* Symmetric floor. *)
      Test.make ~name:"sym/sha256-1KiB" (Staged.stage (fun () -> ignore (Crypto.Sha256.digest kb)));
      Test.make ~name:"sym/aes128-block"
        (Staged.stage (fun () -> ignore (Crypto.Aes.encrypt_block aes block)));
      Test.make ~name:"sym/hmac-sha256-1KiB"
        (Staged.stage (fun () -> ignore (Crypto.Hmac.sha256 ~key:"k" kb)));
    ]
  in
  let grouped = Test.make_grouped ~name:"tlsharm" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some (t :: _) -> t | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  let pretty ns =
    if ns < 1_000.0 then Printf.sprintf "%.0f ns" ns
    else if ns < 1_000_000.0 then Printf.sprintf "%.1f us" (ns /. 1e3)
    else Printf.sprintf "%.2f ms" (ns /. 1e6)
  in
  Analysis.Report.section "Microbenchmarks (bechamel, monotonic clock)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Operation"; "Time/run"; "r^2" ]
      ~rows:(List.map (fun (n, ns, r2) -> [ n; pretty ns; Printf.sprintf "%.3f" r2 ]) rows)
  ^ "\n\nThe gap between full handshakes and resumptions is the performance incentive behind\n\
     the paper's crypto shortcuts; production-sized DHE (Oakley 1024) shows why servers\n\
     cached ephemeral values.\n"

(* --- Serial vs parallel campaign ----------------------------------------------------- *)

(* Wall-clock comparison of the serial daily scan against the
   operator-sharded parallel runner, plus the determinism check the
   parallel design promises: a 1-worker and an N-worker run of the same
   world produce identical series. Each run gets a fresh world (campaigns
   mutate server state), sized by TLSHARM_DOMAINS/TLSHARM_DAYS with
   smaller defaults than the full study so "bench all" stays quick. *)
let parallel_campaign_bench () =
  let n_domains = env_int "TLSHARM_DOMAINS" 2000 in
  let days = env_int "TLSHARM_DAYS" 7 in
  let fresh () =
    Simnet.World.create
      ~config:
        {
          Simnet.World.default_config with
          Simnet.World.n_domains;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        }
      ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs = max 2 (Domain.recommended_domain_count ()) in
  let world = fresh () in
  let n_shards = Array.length (Scanner.Parallel_campaign.shards world) in
  let serial, t_serial = time (fun () -> Scanner.Daily_scan.run world ~days ()) in
  let par, t_par = time (fun () -> Scanner.Parallel_campaign.run ~jobs (fresh ()) ~days ()) in
  let one, t_one = time (fun () -> Scanner.Parallel_campaign.run ~jobs:1 (fresh ()) ~days ()) in
  let deterministic = par.Scanner.Daily_scan.series = one.Scanner.Daily_scan.series in
  Analysis.Report.section "Campaign runners (wall-clock)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Runner"; "Wall-clock"; "Notes" ]
      ~rows:
        [
          [ "serial Daily_scan.run"; Printf.sprintf "%.2f s" t_serial; "" ];
          [
            Printf.sprintf "Parallel_campaign.run ~jobs:%d" jobs;
            Printf.sprintf "%.2f s" t_par;
            Printf.sprintf "%.2fx vs 1 worker" (t_one /. t_par);
          ];
          [ "Parallel_campaign.run ~jobs:1"; Printf.sprintf "%.2f s" t_one; "" ];
        ]
  ^ Printf.sprintf
      "\n\n%d domains, %d days, %d shards, %d core(s) available; %d-worker series %s 1-worker \
       series (%d domains scanned either way).\n"
      n_domains days n_shards
      (Domain.recommended_domain_count ())
      jobs
      (if deterministic then "identical to" else "DIFFER FROM (BUG)")
      (Array.length serial.Scanner.Daily_scan.series)

(* --- Fault-injection funnel ---------------------------------------------------------- *)

(* A fault-enabled mini-campaign under the default profile: the same
   world scanned clean and faulty, reporting the measurement-loss funnel
   and the wall-clock overhead of the retry machinery. The fault layer
   promises that observations which succeed under injection are
   byte-identical to the clean run's; this entry checks that promise on
   every scan day. *)
let faults_bench () =
  let n_domains = env_int "TLSHARM_DOMAINS" 2000 in
  let days = env_int "TLSHARM_DAYS" 7 in
  let fresh () =
    Simnet.World.create
      ~config:
        {
          Simnet.World.default_config with
          Simnet.World.n_domains;
          seed = Option.value (Sys.getenv_opt "TLSHARM_SEED") ~default:"tlsharm";
        }
      ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let clean, t_clean = time (fun () -> Scanner.Daily_scan.run (fresh ()) ~days ()) in
  let world = fresh () in
  let injector = Faults.Injector.create ~profile:Faults.Profile.default world in
  let funnel = Faults.Funnel.create () in
  let faulty, t_faulty =
    time (fun () -> Scanner.Daily_scan.run ~injector ~retry:Faults.Retry.default ~funnel world ~days ())
  in
  (* Key day records by (domain, day): any day where both sweeps got
     through the fault layer must match the clean run field-for-field. *)
  let index (scan : Scanner.Daily_scan.t) =
    let tbl = Hashtbl.create 4096 in
    Array.iter
      (fun (ds : Scanner.Daily_scan.domain_series) ->
        Array.iter
          (fun (r : Scanner.Daily_scan.day_record) ->
            Hashtbl.replace tbl (ds.Scanner.Daily_scan.domain, r.Scanner.Daily_scan.day) r)
          ds.Scanner.Daily_scan.days)
      scan.Scanner.Daily_scan.series;
    tbl
  in
  let clean_ix = index clean in
  let mismatches = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun key (r : Scanner.Daily_scan.day_record) ->
      if r.Scanner.Daily_scan.default_ok && r.Scanner.Daily_scan.dhe_ok then
        match Hashtbl.find_opt clean_ix key with
        | Some c ->
            incr checked;
            if r <> c then incr mismatches
        | None -> ())
    (index faulty);
  let totals = Faults.Funnel.totals funnel in
  Analysis.Funnel_report.render
    ~title:
      (Printf.sprintf "Fault-injection funnel (profile: default, %d domains, %d days)" n_domains
         days)
    funnel
  ^ Printf.sprintf
      "
clean campaign %.2f s, faulty campaign %.2f s (%.2fx); %d surviving observations compared against the clean run, %d mismatch%s%s.
"
      t_clean t_faulty
      (t_faulty /. t_clean)
      !checked !mismatches
      (if !mismatches = 1 then "" else "es")
      (if !mismatches = 0 then "" else " (BUG: fault layer perturbed surviving probes)")
  ^ Printf.sprintf "lost %d of %d probes to injected faults.
"
      (Faults.Funnel.lost totals) totals.Faults.Funnel.t_probes

(* --- Driver ------------------------------------------------------------------------- *)

let ablations () = Tlsharm.Mitigations.report (Lazy.force study)
let tls13 () = Tlsharm.Tls13_projection.report (Lazy.force study)

let named : (string * (unit -> string)) list =
  List.map (fun (name, f) -> (name, fun () -> f (Lazy.force study))) Tlsharm.Experiments.by_name
  @ [
      ("google", google_analysis);
      ("ablations", ablations);
      ("tls13", tls13);
      ("micro", microbenches);
      ("parallel", parallel_campaign_bench);
      ("faults", faults_bench);
    ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Unix.gettimeofday () in
  let selected =
    match args with [] | [ "all" ] -> List.map fst named | ids -> ids
  in
  List.iter
    (fun id ->
      match List.assoc_opt id named with
      | Some f -> print_endline (f ())
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" id
            (String.concat " " (List.map fst named));
          exit 1)
    selected;
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
