(* Minimal JSON emitter and parser for the bench harness's machine-readable
   output (BENCH_crypto.json / BENCH_baseline.json). The container has no
   yojson, and the harness needs only objects, arrays, strings, numbers and
   booleans — so this is a small, strict, recursive-descent implementation
   rather than a dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Emitting ------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* Pretty-printed with two-space indentation, so the committed baseline
   diffs readably. *)
let to_string v =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            escape_string b k;
            Buffer.add_string b ": ";
            go (indent + 2) item)
          fields;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- Parsing -------------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* Basic-multilingual-plane only; enough for ASCII keys. *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else fail "non-ASCII \\u escape unsupported";
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char b c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* --- Accessors ------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None

(* --- Files ----------------------------------------------------------------

   Baselines are written through the durable layer (atomic rename plus a
   checksummed footer) so a crash mid-save cannot corrupt the committed
   baseline a regression gate compares against. [read_any] still accepts
   headerless files, keeping pre-durable baselines loadable. *)

let load path =
  if Sys.file_exists path then
    match Durable.Atomic_io.read_any path with
    | Ok contents -> Some (of_string contents)
    | Error e ->
        Printf.eprintf "bench: ignoring baseline %s: %s\n%!" path
          (Durable.Atomic_io.error_to_string ~what:"baseline" e);
        None
  else None

let save path v = Durable.Atomic_io.write path (to_string v)
