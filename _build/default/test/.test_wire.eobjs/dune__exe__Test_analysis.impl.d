test/test_analysis.ml: Alcotest Analysis Array List Printf QCheck2 QCheck_alcotest Scanner String
