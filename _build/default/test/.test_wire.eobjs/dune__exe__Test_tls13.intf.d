test/test_tls13.mli:
