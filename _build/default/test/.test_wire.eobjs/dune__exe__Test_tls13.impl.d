test/test_tls13.ml: Alcotest Crypto List Option Printf QCheck2 QCheck_alcotest String Tls Wire
