test/test_crypto.ml: Alcotest Bytes Char Crypto Hashtbl List Option Printf QCheck2 QCheck_alcotest String Wire
