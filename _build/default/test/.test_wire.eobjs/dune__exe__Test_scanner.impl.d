test/test_scanner.ml: Alcotest Analysis Array Filename Fun Lazy List Printf QCheck2 QCheck_alcotest Scanner Simnet String Sys Tls
