test/test_tls.ml: Alcotest Bytes Char Crypto Format List Option Printf QCheck2 QCheck_alcotest Result String Tls Wire
