test/test_tls.mli:
