test/test_wire.ml: Alcotest List QCheck2 QCheck_alcotest String Wire
