test/test_simnet.ml: Alcotest Array Crypto Hashtbl Lazy List Option Printf Simnet String Tls
