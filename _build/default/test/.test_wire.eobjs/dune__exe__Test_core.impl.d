test/test_core.ml: Alcotest Analysis Array Crypto Lazy List Simnet String Tls Tlsharm
