test/test_fuzz.ml: Alcotest Bytes Char Crypto List Printexc QCheck2 QCheck_alcotest Scanner String Tls
