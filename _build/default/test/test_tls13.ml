(* Tests for the TLS 1.3 resumption model (the paper's section 2.4 made
   executable): HKDF known-answer vectors, key-schedule agreement,
   psk_ke vs psk_dhe_ke resumption, 0-RTT, binder and expiry checks, and
   the stolen-STEK attack split the modes imply. *)

let hex = Wire.Hex.decode

let check_hex msg expected actual =
  Alcotest.(check string) msg expected (Wire.Hex.encode actual)

(* --- HKDF (RFC 5869) ---------------------------------------------------------- *)

let test_hkdf_case1 () =
  let ikm = String.make 22 '\x0b' in
  let salt = hex "000102030405060708090a0b0c" in
  let info = hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Crypto.Hkdf.extract ~salt ikm in
  check_hex "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  check_hex "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Crypto.Hkdf.expand ~prk ~info 42)

let test_hkdf_case3 () =
  (* Empty salt and info. *)
  let ikm = String.make 22 '\x0b' in
  let prk = Crypto.Hkdf.extract ikm in
  check_hex "prk" "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04" prk;
  check_hex "okm"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (Crypto.Hkdf.expand ~prk ~info:"" 42)

let test_expand_label_shape () =
  let s = Crypto.Hkdf.expand_label ~secret:(String.make 32 's') ~label:"key" ~context:"" 16 in
  Alcotest.(check int) "length honored" 16 (String.length s);
  let s2 = Crypto.Hkdf.expand_label ~secret:(String.make 32 's') ~label:"iv" ~context:"" 16 in
  Alcotest.(check bool) "labels separate" false (String.equal s s2)

(* --- Fixture -------------------------------------------------------------------- *)

let env = Tls.Config.sim_env ()
let curve = env.Tls.Config.ecdhe_curve
let day = 86_400

let make_server ?(modes = [ Tls.Tls13.Psk_ke; Tls.Tls13.Psk_dhe_ke ]) ?(max_early_data = 16384)
    ?(psk_lifetime = 7 * day) ?(stek_policy = Tls.Stek_manager.Static) () =
  Tls.Tls13.server
    ~config:
      {
        Tls.Tls13.curve;
        stek_manager = Tls.Stek_manager.create ~policy:stek_policy ~secret:"t13" ~now:0;
        psk_lifetime;
        allowed_modes = modes;
        max_early_data;
      }
    ~rng:(Crypto.Drbg.create ~seed:"t13-server")

let crng () = Crypto.Drbg.create ~seed:"t13-client"

let expect_ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* --- Handshakes ------------------------------------------------------------------ *)

let test_fresh_handshake () =
  let server = make_server () in
  let rng = crng () in
  let sr, cl = expect_ok (Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13) in
  Alcotest.(check bool) "not resumed" false cl.Tls.Tls13.cl_resumed;
  Alcotest.(check bool) "ticket issued" true (cl.Tls.Tls13.cl_new_ticket <> None);
  (* Both sides agree on traffic secrets. *)
  Alcotest.(check string) "client app traffic agrees"
    (Wire.Hex.encode sr.Tls.Tls13.sr_secrets.Tls.Tls13.client_app_traffic)
    (Wire.Hex.encode cl.Tls.Tls13.cl_secrets.Tls.Tls13.client_app_traffic)

let resume ?early_data ~mode server rng ~now =
  let _, cl1 = expect_ok (Tls.Tls13.connect ~client_rng:rng server ~now:(now - 60) ~offer:Tls.Tls13.Fresh13) in
  let ticket, state = Option.get cl1.Tls.Tls13.cl_new_ticket in
  Tls.Tls13.connect ~client_rng:rng server ~now
    ~offer:(Tls.Tls13.Resume13 { ticket; state; mode; early_data })

let test_psk_ke_resumption () =
  let server = make_server () in
  let sr, cl = expect_ok (resume ~mode:Tls.Tls13.Psk_ke server (crng ()) ~now:1000) in
  Alcotest.(check bool) "resumed" true cl.Tls.Tls13.cl_resumed;
  Alcotest.(check bool) "no server key share in psk_ke" true
    (sr.Tls.Tls13.sr_hello.Tls.Tls13.sh_key_share = None);
  Alcotest.(check bool) "fresh ticket for next time" true (cl.Tls.Tls13.cl_new_ticket <> None)

let test_psk_dhe_ke_resumption () =
  let server = make_server () in
  let sr, cl = expect_ok (resume ~mode:Tls.Tls13.Psk_dhe_ke server (crng ()) ~now:1000) in
  Alcotest.(check bool) "resumed" true cl.Tls.Tls13.cl_resumed;
  Alcotest.(check bool) "server sends a key share" true
    (sr.Tls.Tls13.sr_hello.Tls.Tls13.sh_key_share <> None)

let test_zero_rtt () =
  let server = make_server () in
  let sr, _ =
    expect_ok (resume ~early_data:"GET /fast" ~mode:Tls.Tls13.Psk_dhe_ke server (crng ()) ~now:1000)
  in
  match sr.Tls.Tls13.sr_early_data with
  | Some (Ok data) -> Alcotest.(check string) "early data decrypted by server" "GET /fast" data
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no early data seen"

let test_zero_rtt_disabled () =
  let server = make_server ~max_early_data:0 () in
  let sr, _ =
    expect_ok (resume ~early_data:"GET /fast" ~mode:Tls.Tls13.Psk_ke server (crng ()) ~now:1000)
  in
  match sr.Tls.Tls13.sr_early_data with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "early data accepted though disabled"
  | None -> Alcotest.fail "early data not observed"

let test_psk_expiry () =
  let server = make_server ~psk_lifetime:(7 * day) () in
  (* Ticket issued at t=100; resume 8 days later: the PSK is expired, so
     a full handshake runs (the psk_dhe_ke offer still has a key share). *)
  let rng = crng () in
  let _, cl1 = expect_ok (Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13) in
  let ticket, state = Option.get cl1.Tls.Tls13.cl_new_ticket in
  let sr, cl =
    expect_ok
      (Tls.Tls13.connect ~client_rng:rng server ~now:(8 * day)
         ~offer:
           (Tls.Tls13.Resume13 { ticket; state; mode = Tls.Tls13.Psk_dhe_ke; early_data = None }))
  in
  Alcotest.(check bool) "not resumed" false cl.Tls.Tls13.cl_resumed;
  Alcotest.(check bool) "psk rejected" false sr.Tls.Tls13.sr_hello.Tls.Tls13.sh_psk_accepted

let test_mode_restriction () =
  (* A server allowing only psk_dhe_ke rejects psk_ke offers. *)
  let server = make_server ~modes:[ Tls.Tls13.Psk_dhe_ke ] () in
  match resume ~mode:Tls.Tls13.Psk_ke server (crng ()) ~now:1000 with
  | Ok (_, cl) -> Alcotest.(check bool) "psk_ke refused" false cl.Tls.Tls13.cl_resumed
  | Error _ -> () (* pure psk_ke offer carries no key share: failure is also correct *)

let test_binder_required () =
  let server = make_server () in
  let rng = crng () in
  let _, cl1 = expect_ok (Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13) in
  let ticket, state = Option.get cl1.Tls.Tls13.cl_new_ticket in
  (* Wrong PSK state (hence wrong binder): the server must fall back. *)
  let bogus = { state with Tls.Tls13.psk = String.make 32 'x' } in
  let sr, cl =
    expect_ok
      (Tls.Tls13.connect ~client_rng:rng server ~now:200
         ~offer:(Tls.Tls13.Resume13 { ticket; state = bogus; mode = Tls.Tls13.Psk_dhe_ke; early_data = None }))
  in
  Alcotest.(check bool) "binder mismatch rejected" false sr.Tls.Tls13.sr_hello.Tls.Tls13.sh_psk_accepted;
  Alcotest.(check bool) "fell back to full handshake" false cl.Tls.Tls13.cl_resumed

(* --- The attack split --------------------------------------------------------------- *)

let test_attack_psk_ke () =
  let server = make_server () in
  let rng = crng () in
  let _, cl1 = expect_ok (Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13) in
  let ticket, state = Option.get cl1.Tls.Tls13.cl_new_ticket in
  (* Build the exact wire messages by hand (psk_ke: no key share). *)
  let early_secret = Crypto.Hkdf.extract ~salt:(String.make 32 '\x00') state.Tls.Tls13.psk in
  let binder_key =
    Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"res binder"
      ~transcript_hash:(Crypto.Sha256.digest "")
  in
  let ch0 =
    {
      Tls.Tls13.ch_random = Crypto.Drbg.generate rng 32;
      ch_key_share = None;
      ch_psk_identity = Some ticket;
      ch_psk_mode = Tls.Tls13.Psk_ke;
      ch_binder = "";
      ch_early_data = None;
    }
  in
  let truncated = Crypto.Sha256.digest (Tls.Tls13.ch_bytes ~with_binder:false ch0) in
  let ch =
    { ch0 with Tls.Tls13.ch_binder = Tls.Tls13.binder_for ~binder_key ~truncated_ch_hash:truncated }
  in
  let sr = expect_ok (Tls.Tls13.handle_client_hello server ~now:1000 ch) in
  Alcotest.(check bool) "resumed" true sr.Tls.Tls13.sr_hello.Tls.Tls13.sh_psk_accepted;
  let recorded_app =
    Tls.Tls13.protect
      ~traffic_secret:sr.Tls.Tls13.sr_secrets.Tls.Tls13.client_app_traffic
      "password=123"
  in
  (* The compromise: the server's STEK manager. *)
  let find_stek name =
    Tls.Stek_manager.find_for_decrypt server.Tls.Tls13.sc.Tls.Tls13.stek_manager ~now:2000 name
  in
  let outcome =
    Tls.Tls13.attack ~find_stek ~ch ~sh:sr.Tls.Tls13.sr_hello ~recorded_app
  in
  match outcome.Tls.Tls13.app_data with
  | Ok plain -> Alcotest.(check string) "psk_ke app data falls" "password=123" plain
  | Error e -> Alcotest.fail e

let test_attack_psk_dhe_ke () =
  let server = make_server () in
  let rng = crng () in
  let _, cl1 = expect_ok (Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13) in
  let ticket, state = Option.get cl1.Tls.Tls13.cl_new_ticket in
  let kp = Crypto.Ec.gen_keypair curve rng in
  let early_secret = Crypto.Hkdf.extract ~salt:(String.make 32 '\x00') state.Tls.Tls13.psk in
  let binder_key =
    Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"res binder"
      ~transcript_hash:(Crypto.Sha256.digest "")
  in
  let ch0 =
    {
      Tls.Tls13.ch_random = Crypto.Drbg.generate rng 32;
      ch_key_share = Some (Crypto.Ec.public_bytes kp);
      ch_psk_identity = Some ticket;
      ch_psk_mode = Tls.Tls13.Psk_dhe_ke;
      ch_binder = "";
      ch_early_data = None;
    }
  in
  let truncated = Crypto.Sha256.digest (Tls.Tls13.ch_bytes ~with_binder:false ch0) in
  let ch1 =
    { ch0 with Tls.Tls13.ch_binder = Tls.Tls13.binder_for ~binder_key ~truncated_ch_hash:truncated }
  in
  (* Attach 0-RTT early data, keyed from the PSK alone. *)
  let ch_hash = Crypto.Sha256.digest (Tls.Tls13.ch_bytes ch1) in
  let cet =
    Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"c e traffic" ~transcript_hash:ch_hash
  in
  let ch = { ch1 with Tls.Tls13.ch_early_data = Some (Tls.Tls13.protect ~traffic_secret:cet "early!") } in
  let sr = expect_ok (Tls.Tls13.handle_client_hello server ~now:1000 ch) in
  Alcotest.(check bool) "resumed" true sr.Tls.Tls13.sr_hello.Tls.Tls13.sh_psk_accepted;
  let recorded_app =
    Tls.Tls13.protect
      ~traffic_secret:sr.Tls.Tls13.sr_secrets.Tls.Tls13.client_app_traffic
      "password=456"
  in
  let find_stek name =
    Tls.Stek_manager.find_for_decrypt server.Tls.Tls13.sc.Tls.Tls13.stek_manager ~now:2000 name
  in
  let outcome = Tls.Tls13.attack ~find_stek ~ch ~sh:sr.Tls.Tls13.sr_hello ~recorded_app in
  (* Early data falls in both modes... *)
  (match outcome.Tls.Tls13.early_data with
  | Some (Ok plain) -> Alcotest.(check string) "0-RTT falls" "early!" plain
  | Some (Error e) -> Alcotest.fail ("early data should decrypt: " ^ e)
  | None -> Alcotest.fail "no early data in capture");
  (* ...but the resumed connection's application data survives psk_dhe_ke. *)
  match outcome.Tls.Tls13.app_data with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "psk_dhe_ke app data must not decrypt from the STEK alone"

(* Property: arbitrary chains of resumption (modes drawn at random, each
   leg reusing the previous leg's fresh ticket) keep both sides agreed on
   every traffic secret. *)
let prop_resumption_chains =
  QCheck2.Test.make ~name:"resumption chains stay consistent" ~count:40
    QCheck2.Gen.(pair small_int (list_size (int_range 1 6) bool))
    (fun (salt, modes) ->
      let server = make_server () in
      let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "chain-%d" salt) in
      match Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13 with
      | Error _ -> false
      | Ok (_, first) ->
          let now = ref 200 in
          let rec go (prev : Tls.Tls13.client_result) = function
            | [] -> true
            | dhe :: rest -> (
                match prev.Tls.Tls13.cl_new_ticket with
                | None -> false
                | Some (ticket, state) -> (
                    now := !now + 600;
                    let mode = if dhe then Tls.Tls13.Psk_dhe_ke else Tls.Tls13.Psk_ke in
                    match
                      Tls.Tls13.connect ~client_rng:rng server ~now:!now
                        ~offer:(Tls.Tls13.Resume13 { ticket; state; mode; early_data = None })
                    with
                    | Error _ -> false
                    | Ok (sr, cl) ->
                        cl.Tls.Tls13.cl_resumed
                        && String.equal
                             sr.Tls.Tls13.sr_secrets.Tls.Tls13.server_app_traffic
                             cl.Tls.Tls13.cl_secrets.Tls.Tls13.server_app_traffic
                        && go cl rest))
          in
          go first modes)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "tls13"
    [
      ( "hkdf",
        [
          Alcotest.test_case "rfc5869 case 1" `Quick test_hkdf_case1;
          Alcotest.test_case "rfc5869 case 3" `Quick test_hkdf_case3;
          Alcotest.test_case "expand_label" `Quick test_expand_label_shape;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "fresh" `Quick test_fresh_handshake;
          Alcotest.test_case "psk_ke resumption" `Quick test_psk_ke_resumption;
          Alcotest.test_case "psk_dhe_ke resumption" `Quick test_psk_dhe_ke_resumption;
          Alcotest.test_case "0-rtt" `Quick test_zero_rtt;
          Alcotest.test_case "0-rtt disabled" `Quick test_zero_rtt_disabled;
          Alcotest.test_case "psk expiry" `Quick test_psk_expiry;
          Alcotest.test_case "mode restriction" `Quick test_mode_restriction;
          Alcotest.test_case "binder required" `Quick test_binder_required;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "psk_ke falls to stolen stek" `Quick test_attack_psk_ke;
          Alcotest.test_case "psk_dhe_ke protects app data" `Quick test_attack_psk_dhe_ke;
        ] );
      qsuite "properties" [ prop_resumption_chains ];
    ]
