examples/operator_hardening.ml: Analysis Hashtbl List Option Printf Simnet Tlsharm
