examples/tls13_migration.ml: Crypto Option Printf Simnet String Tls Tlsharm
