examples/operator_hardening.mli:
