examples/handshake_demo.mli:
