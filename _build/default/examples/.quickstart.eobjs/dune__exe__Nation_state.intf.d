examples/nation_state.mli:
