examples/quickstart.mli:
