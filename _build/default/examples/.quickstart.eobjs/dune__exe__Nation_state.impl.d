examples/nation_state.ml: Array Crypto Format Option Printf Simnet String Tls Tlsharm Wire
