examples/quickstart.ml: Analysis List Printf Simnet Tlsharm
