examples/handshake_demo.ml: Crypto Format List Option Printf String Tls Tlsharm Wire
