examples/tls13_migration.mli:
