(* Drive the TLS engine directly: full handshake over the record layer,
   ticket issuance and resumption, then the passive-recording attack of
   the paper played out byte by byte.

     dune exec examples/handshake_demo.exe *)

let hex_prefix s n = Wire.Hex.encode (String.sub s 0 (min n (String.length s)))

let () =
  let env = Tls.Config.sim_env () in
  let rng = Crypto.Drbg.create ~seed:"demo" in

  (* A one-domain PKI. *)
  let ca =
    Tls.Cert.self_signed ~curve:env.Tls.Config.pki_curve ~name:"Demo Root" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:env.Tls.Config.pki_curve ~subject:"demo.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let stek_manager =
    Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"demo-stek" ~now:0
  in
  let server =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites = [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ];
          issue_session_ids = true;
          session_cache = Some (Tls.Session_cache.create ~lifetime:300 ~capacity:100);
          tickets =
            Some
              {
                Tls.Config.stek_manager;
                lifetime_hint = 3600;
                accept_lifetime = 3600;
                reissue_on_resumption = true;
              };
          kex_cache = Tls.Kex_cache.create ();
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"demo-server")
  in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = env;
          offer_suites = Tls.Types.all_cipher_suites;
          offer_ticket = true;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = true;
          evaluate_trust = true;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"demo-client") ()
  in

  (* 1. Full handshake, with a wiretap printing the flights. *)
  print_endline "=== Full handshake (wiretapped) ===";
  let wiretap direction bytes =
    let arrow =
      match direction with
      | Tls.Engine.Client_to_server -> "C -> S"
      | Tls.Engine.Server_to_client -> "S -> C"
    in
    let names =
      match Tls.Handshake_msg.read_all bytes with
      | Ok msgs -> String.concat ", " (List.map Tls.Handshake_msg.message_name msgs)
      | Error _ -> "<unparseable>"
    in
    Printf.printf "  %s  %4d bytes  [%s]\n" arrow (String.length bytes) names
  in
  let o1 = Tls.Engine.connect ~wiretap client server ~now:100 ~hostname:"demo.example" ~offer:Tls.Client.Fresh in
  assert o1.Tls.Engine.ok;
  let session = Option.get o1.Tls.Engine.session in
  Printf.printf "negotiated %s, session id %s..., master secret %s...\n"
    (Format.asprintf "%a" Tls.Types.pp_cipher_suite (Option.get o1.Tls.Engine.cipher))
    (hex_prefix o1.Tls.Engine.session_id 6)
    (hex_prefix (Tls.Session.master_secret session) 6);
  (match o1.Tls.Engine.new_ticket with
  | Some (hint, ticket) ->
      Printf.printf "ticket issued: %d bytes, lifetime hint %ds, STEK key name %s...\n"
        (String.length ticket) hint
        (hex_prefix (Option.get (Tls.Ticket.peek_key_name ticket)) 6)
  | None -> ());

  (* 2. Resume by session ID, then by ticket. *)
  print_endline "\n=== Abbreviated handshakes ===";
  let o2 =
    Tls.Engine.connect client server ~now:150 ~hostname:"demo.example"
      ~offer:(Tls.Client.Offer_session_id session)
  in
  Printf.printf "session-ID resumption: resumed=%b\n" (o2.Tls.Engine.resumed = `Via_session_id);
  let o3 =
    match o1.Tls.Engine.new_ticket with
    | Some (_, ticket) ->
        Tls.Engine.connect client server ~now:200 ~hostname:"demo.example"
          ~offer:(Tls.Client.Offer_ticket { ticket; session })
    | None -> failwith "no ticket"
  in
  Printf.printf "ticket resumption:     resumed=%b (fresh ticket reissued: %b)\n"
    (o3.Tls.Engine.resumed = `Via_ticket)
    (o3.Tls.Engine.new_ticket <> None);

  (* 3. Application data over the record layer. *)
  print_endline "\n=== Application data over the record layer ===";
  (* Both sides derive the same key block from the session. In this demo
     we know the randoms from the wiretap; here we just derive both ends
     locally to show the record layer. *)
  let keys =
    Tls.Record.derive_keys
      ~master:(Tls.Session.master_secret session)
      ~client_random:(String.make 32 'c') ~server_random:(String.make 32 's')
  in
  let tx = Tls.Record.cipher_state keys.Tls.Record.client_write in
  let rx = Tls.Record.cipher_state keys.Tls.Record.client_write in
  let records = Tls.Record.seal_application_data tx "GET /inbox HTTP/1.1" in
  List.iter
    (fun r -> Printf.printf "  record: %d bytes ciphertext+tag\n" (String.length (Tls.Record.payload r)))
    records;
  (match Tls.Record.open_application_data rx records with
  | Ok plain -> Printf.printf "  peer decrypts: %S\n" plain
  | Error a -> Format.printf "  decrypt error: %a@." Tls.Types.pp_alert a);

  (* 4. The paper's attack, end to end: record a victim, steal the STEK,
     decrypt. *)
  print_endline "\n=== Passive recording + stolen STEK ===";
  match
    Tlsharm.Attack.victim_connection ~plaintext:"PUT /diary entry=saw-nothing" client server
      ~now:300 ~hostname:"demo.example" ~offer:Tls.Client.Fresh
  with
  | Error e -> print_endline e
  | Ok recording -> (
      Printf.printf "recorded %d encrypted record(s) from the wire\n"
        (List.length recording.Tlsharm.Attack.encrypted_records);
      match Tlsharm.Attack.steal_stek_and_decrypt recording ~server ~now:9999 with
      | Ok plain -> Printf.printf "attacker decrypts with stolen STEK: %S\n" plain
      | Error e -> Printf.printf "attack failed: %s\n" e)
