(** A per-domain forward-secrecy posture assessment — the operator-facing
    scanner the paper's Section 8 calls for: probe one domain's crypto
    shortcuts cheaply (cipher support, ephemeral hygiene, resumption
    windows via an exponential probe ladder, STEK stability over a
    horizon) and grade the residual harm. *)

type grade = A | B | C | D | F

val grade_to_string : grade -> string

type assessment = {
  domain : string;
  https : bool;
  trusted : bool;
  forward_secret : bool;
  kex_reused : bool;
  session_id_window : int option;  (** seconds; None = no ID resumption *)
  ticket_window : int option;
  distinct_steks_over_horizon : int;  (** 0 = no tickets *)
  stek_static_over_horizon : bool;
  grade : grade;
  notes : string list;
}

val assess : Simnet.World.t -> domain:string -> ?horizon:int -> unit -> assessment
(** Probes advance the world's virtual clock (by roughly two ladder walks
    plus the horizon). *)

val report : assessment -> string
