(** Concrete end-to-end demonstrations of the attacks whose surface the
    study quantifies: a passive wiretap records a victim's handshake and
    encrypted application records; later one piece of server-side state
    leaks (STEK, cached DH private value, or session cache) and the
    recording decrypts. Nothing beyond the stolen server secret is used
    that was not visible on the wire. *)

type capture = {
  mutable client_random : string;
  mutable server_random : string;
  mutable ticket : string option;
  mutable client_kex_public : string option;
  mutable server_session_id : string;
}

type recording = {
  capture : capture;
  outcome : Tls.Engine.outcome;
  encrypted_records : Tls.Record.t list;
  plaintext : string;  (** ground truth, for verification *)
}

val victim_connection :
  ?plaintext:string ->
  Tls.Client.t ->
  Tls.Server.t ->
  now:int ->
  hostname:string ->
  offer:Tls.Client.offer ->
  (recording, string) result
(** Handshake under the wiretap, then application data protected with the
    negotiated keys and recorded as ciphertext. *)

val decrypt_with_master : recording -> master:string -> (string, string) result
(** Re-derive the key block exactly as the endpoints did. *)

val steal_stek_and_decrypt :
  recording -> server:Tls.Server.t -> now:int -> (string, string) result
(** Section 6.1: recorded ticket + stolen STEK -> plaintext. *)

val steal_kex_value_and_decrypt :
  recording -> server:Tls.Server.t -> env:Tls.Config.env -> (string, string) result
(** Section 6.3: stolen cached (EC)DHE private value -> plaintext. *)

val steal_session_cache_and_decrypt :
  recording -> server:Tls.Server.t -> (string, string) result
(** Section 6.2: stolen session-cache contents -> plaintext. *)

val attempt_all :
  recording ->
  server:Tls.Server.t ->
  env:Tls.Config.env ->
  now:int ->
  (string * (string, string) result) list
(** All three attacks; against a server without the shortcuts every one
    fails — the negative control. *)
