(* The Section 8.2 operator recommendations, quantified: re-evaluate the
   vulnerability-window distribution under each mitigation, applied as a
   transformation of the measured per-domain exposure components. This is
   the "what would the Figure 8 CDF look like if operators followed the
   advice" analysis. *)

type scenario = {
  name : string;
  description : string;
  mitigate : Analysis.Vuln_window.components -> Analysis.Vuln_window.components;
}

let hour = 3600
let minute = 60

let scenarios =
  [
    {
      name = "measured";
      description = "the ecosystem as observed";
      mitigate = (fun c -> c);
    };
    {
      name = "rotate STEKs daily";
      description = "every deployment rotates its ticket key at least daily (\"Rotate STEKs frequently\")";
      mitigate =
        (fun c ->
          {
            c with
            Analysis.Vuln_window.stek_span_days = min 1 c.Analysis.Vuln_window.stek_span_days;
            ticket_honored = min (24 * hour) c.Analysis.Vuln_window.ticket_honored;
          });
    };
    {
      name = "5-minute session caches";
      description = "cache lifetimes trimmed to one typical visit (\"Reduce session cache lifetimes\")";
      mitigate =
        (fun c ->
          {
            c with
            Analysis.Vuln_window.session_id_honored =
              min (5 * minute) c.Analysis.Vuln_window.session_id_honored;
          });
    };
    {
      name = "no (EC)DHE reuse";
      description = "fresh ephemeral values per handshake (RFC 5246's instruction)";
      mitigate =
        (fun c ->
          { c with Analysis.Vuln_window.dhe_span_days = 0; ecdhe_span_days = 0 });
    };
    {
      name = "all three";
      description = "daily STEKs + short caches + no ephemeral reuse";
      mitigate =
        (fun c ->
          {
            Analysis.Vuln_window.session_id_honored =
              min (5 * minute) c.Analysis.Vuln_window.session_id_honored;
            ticket_honored = min (24 * hour) c.Analysis.Vuln_window.ticket_honored;
            stek_span_days = min 1 c.Analysis.Vuln_window.stek_span_days;
            dhe_span_days = 0;
            ecdhe_span_days = 0;
          });
    };
    {
      name = "shortcuts disabled";
      description = "no resumption, no reuse: the maximum-security configuration";
      mitigate =
        (fun _ ->
          {
            Analysis.Vuln_window.session_id_honored = 0;
            ticket_honored = 0;
            stek_span_days = 0;
            dhe_span_days = 0;
            ecdhe_span_days = 0;
          });
    };
  ]

(* The remaining Section 8.2 recommendation — "use different STEKs for
   different regions" — changes the blast radius rather than the window:
   an R-way regional split divides every STEK service group by R, and an
   attacker needs R keys (plus collection in R jurisdictions) for the
   same coverage. *)
let regional_partitioning study =
  let groups = Study.stek_service_groups study in
  let largest =
    match groups with g :: _ -> g.Analysis.Service_groups.weighted_size | [] -> 0.0
  in
  let rows =
    List.map
      (fun regions ->
        [
          string_of_int regions;
          Analysis.Report.fmt_count (largest /. float_of_int regions);
          string_of_int regions;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Analysis.Report.section "Section 8.2: Regional STEK Partitioning (blast radius)"
  ^ "\n"
  ^ Analysis.Report.table
      ~headers:[ "Regions"; "Largest group per key (weighted domains)"; "Keys needed for full coverage" ]
      ~rows
  ^ "\n\n(The largest measured STEK group; the paper's CloudFlare group held 62,176\n\
     domains under one key. Partitioning also confines legally compelled disclosure\n\
     to one jurisdiction's connections.)\n"

let report study =
  let components = Study.vulnerability_components study in
  let rows =
    List.map
      (fun s ->
        let windows =
          Analysis.Vuln_window.windows_of_components ~mitigate:s.mitigate components
        in
        let sum = Analysis.Vuln_window.summarize windows in
        let pct v = Analysis.Report.fmt_pct (v /. sum.Analysis.Vuln_window.population) in
        [
          s.name;
          pct sum.Analysis.Vuln_window.over_1h;
          pct sum.Analysis.Vuln_window.over_24h;
          pct sum.Analysis.Vuln_window.over_7d;
          pct sum.Analysis.Vuln_window.over_30d;
        ])
      scenarios
  in
  Analysis.Report.section "Section 8.2: Operator Recommendations, Quantified"
  ^ "\n"
  ^ Analysis.Report.table ~headers:[ "Scenario"; ">1h"; ">24h"; ">7d"; ">30d" ] ~rows
  ^ "\n\n(Windows above thresholds, weighted share of participating domains. The paper's\n\
     measured ecosystem: 38% > 24h, 22% > 7d, 10% > 30d.)\n"
  ^ regional_partitioning study
