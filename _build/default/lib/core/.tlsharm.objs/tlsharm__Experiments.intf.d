lib/core/experiments.mli: Study
