lib/core/mitigations.mli: Analysis Study
