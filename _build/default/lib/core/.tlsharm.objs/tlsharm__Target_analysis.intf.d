lib/core/target_analysis.mli: Simnet Study
