lib/core/experiments.ml: Analysis Array Buffer Float Hashtbl List Option Printf Scanner Simnet String Study
