lib/core/study.ml: Analysis Format List Scanner Simnet
