lib/core/target_analysis.ml: Analysis Array List Option Printf Scanner Simnet String Study Tls Wire
