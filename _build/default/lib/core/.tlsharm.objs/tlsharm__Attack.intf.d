lib/core/attack.mli: Tls
