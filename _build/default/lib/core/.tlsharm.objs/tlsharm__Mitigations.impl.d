lib/core/mitigations.ml: Analysis List Study
