lib/core/tls13_projection.ml: Analysis List Study
