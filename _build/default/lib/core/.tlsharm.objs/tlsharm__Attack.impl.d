lib/core/attack.ml: Crypto Format List String Tls
