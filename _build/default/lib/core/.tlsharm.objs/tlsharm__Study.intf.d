lib/core/study.mli: Analysis Scanner Simnet
