lib/core/posture.ml: Analysis Hashtbl List Option Printf Scanner Simnet String Tls
