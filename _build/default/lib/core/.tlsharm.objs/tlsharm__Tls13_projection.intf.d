lib/core/tls13_projection.mli: Analysis Study
