lib/core/posture.mli: Simnet
