(* Section 7.2: the nation-state attacker's target analysis of a single
   high-value operator (Google in the paper). Measures, from the outside:

   - the STEK rollover cadence (connect periodically, watch the key name
     change) and the acceptance window for old tickets;
   - the weighted number of domains whose tickets a single stolen STEK
     opens (the operator's Table 6 STEK service group);
   - the mail coverage: domains whose MX records point at the operator,
     whose inbound mail a STEK-holding observer could decrypt;
   - the contrast case (Yandex in the paper): an operator whose STEK
     never rotates, where one theft decrypts months of traffic. *)

type rollover = {
  observed_keys : string list; (* distinct key names, in order of appearance *)
  rollover_seconds : int option; (* measured issue-period *)
  accept_window_seconds : int option; (* how long an old ticket still resumed *)
}

type t = {
  operator : string;
  flagship : string;
  rollover : rollover;
  stek_group_weight : float; (* weighted domains sharing the STEK *)
  stek_group_sampled : int;
  mx_coverage_weight : float; (* weighted domains with MX at the operator *)
  mx_coverage_fraction : float;
  steks_per_week : float; (* thefts needed for continuous decryption *)
  mail_shares_stek : bool option;
      (* do the operator's TLS mail front-ends use the web STEK?
         (section 7.2: Google does, across SMTP/IMAPS/POP3S);
         None when no mail host is modeled *)
}

(* Watch the flagship's STEK identifier over [horizon] seconds, probing
   every [step]. *)
let measure_rollover world ~flagship ?(horizon = 48 * Simnet.Clock.hour)
    ?(step = Simnet.Clock.hour) () =
  let probe = Scanner.Probe.create ~seed:("rollover:" ^ flagship) world in
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  let keys = ref [] in
  let changes = ref [] in
  let t = ref 0 in
  while !t <= horizon do
    Simnet.Clock.set clock (start + !t);
    let obs, _ = Scanner.Probe.connect probe ~domain:flagship in
    (match obs.Scanner.Observation.stek_id with
    | Some key -> (
        match !keys with
        | last :: _ when String.equal last key -> ()
        | _ ->
            keys := key :: !keys;
            changes := !t :: !changes)
    | None -> ());
    t := !t + step
  done;
  let rollover_seconds =
    (* Gaps between consecutive key *changes*; the first sighting is not
       a change (the key was already in service), so it is dropped. *)
    match List.rev !changes with
    | _first_sighting :: (_ :: _ :: _ as boundaries) ->
        let rec gaps = function
          | a :: (b :: _ as rest) -> (b - a) :: gaps rest
          | _ -> []
        in
        let gaps = gaps boundaries in
        Some (List.fold_left ( + ) 0 gaps / List.length gaps)
    | _ -> None
  in
  (* Acceptance window: how old a ticket can get and still resume. The
     answer depends on where in the rotation period the ticket was
     issued, so sample issuance phases across one period and take the
     maximum — the paper's "accepted for up to 28 hours". *)
  let accept_window =
    let period = Option.value rollover_seconds ~default:(12 * Simnet.Clock.hour) in
    let phases = 6 in
    let best = ref None in
    (* The virtual clock cannot rewind, so each phase is sampled at the
       first moment with the desired period offset after the previous
       walk finished. *)
    let cursor = ref (start + horizon) in
    for i = 0 to phases - 1 do
      let desired = i * period / phases in
      let offset = (desired - (!cursor mod period) mod period + (2 * period)) mod period in
      let issued = !cursor + offset in
      cursor := issued + (4 * Simnet.Clock.day);
      Simnet.Clock.set clock issued;
      let _, outcome = Scanner.Probe.connect probe ~domain:flagship in
      match Scanner.Probe.resumable_of_outcome outcome |> Scanner.Probe.offer_ticket with
      | None -> ()
      | Some offer ->
          let rec walk last age =
            if age > 3 * Simnet.Clock.day then last
            else begin
              Simnet.Clock.set clock (issued + age);
              let obs, _ = Scanner.Probe.connect probe ~domain:flagship ~offer in
              if obs.Scanner.Observation.resumed = Scanner.Observation.By_ticket then
                walk (Some age) (age + Simnet.Clock.hour)
              else last
            end
          in
          (match walk None Simnet.Clock.hour with
          | Some age when Option.value !best ~default:(-1) < age -> best := Some age
          | _ -> ())
    done;
    !best
  in
  { observed_keys = List.rev !keys; rollover_seconds; accept_window_seconds = accept_window }

let analyze study ~operator ~flagship =
  let world = Study.world study in
  let rollover = measure_rollover world ~flagship () in
  (* The operator's STEK service group from the Table 6 scan. *)
  let groups = Study.stek_service_groups study in
  let group =
    List.find_opt (fun (g : Analysis.Service_groups.group) -> String.equal g.Analysis.Service_groups.label operator) groups
  in
  let stek_group_weight =
    match group with Some g -> g.Analysis.Service_groups.weighted_size | None -> 0.0
  in
  let stek_group_sampled =
    match group with Some g -> g.Analysis.Service_groups.sampled_size | None -> 0
  in
  (* MX coverage across the whole population. *)
  let domains = Simnet.World.domains world in
  let total_weight = Array.fold_left (fun acc d -> acc +. Simnet.World.domain_weight d) 0.0 domains in
  let mx_weight =
    Array.fold_left
      (fun acc d ->
        if Simnet.World.mx_points_to_google d then acc +. Simnet.World.domain_weight d else acc)
      0.0 domains
  in
  let steks_per_week =
    match rollover.rollover_seconds with
    | Some s when s > 0 -> float_of_int (7 * Simnet.Clock.day) /. float_of_int s
    | _ -> 0.0
  in
  (* Cross-protocol check: handshake with the operator's mail front-end
     and compare the ticket's STEK key name with the flagship's. *)
  let mail_shares_stek =
    let probe = Scanner.Probe.create ~seed:("mail:" ^ operator) world in
    let mail_host =
      Array.to_list domains
      |> List.find_map (fun d ->
             if Simnet.World.mx_points_to_google d then Simnet.World.mx_host world d else None)
    in
    match mail_host with
    | None -> None
    | Some host -> (
        let web_obs, _ = Scanner.Probe.connect probe ~domain:flagship in
        match
          Simnet.World.connect_service_host world ~client:probe.Scanner.Probe.client
            ~hostname:host ~offer:Tls.Client.Fresh
        with
        | Ok mail_outcome ->
            let mail_stek = Option.map Wire.Hex.encode mail_outcome.Tls.Engine.stek_key_name in
            Some (mail_stek <> None && mail_stek = web_obs.Scanner.Observation.stek_id)
        | Error _ -> None)
  in
  {
    operator;
    flagship;
    rollover;
    stek_group_weight;
    stek_group_sampled;
    mx_coverage_weight = mx_weight;
    mx_coverage_fraction = (if total_weight > 0.0 then mx_weight /. total_weight else 0.0);
    steks_per_week;
    mail_shares_stek;
  }

let report (a : t) =
  let r = Analysis.Report.section (Printf.sprintf "Section 7.2: Target Analysis (%s)" a.operator) in
  let dur = function
    | Some s when s >= 3600 && s < 3 * 86_400 ->
        (* Hour precision matters here (14h vs 28h). *)
        Printf.sprintf "%dh" (s / 3600)
    | Some s -> Analysis.Stats.duration_to_string (float_of_int s)
    | None -> "not observed"
  in
  r
  ^ Printf.sprintf
      "\nFlagship probed: %s\n\
       Distinct STEKs observed over 48h: %d\n\
       Measured STEK rollover period: %s   (paper, Google: 14h)\n\
       Old tickets still accepted for:  %s   (paper, Google: 28h)\n\
       STEKs an attacker must steal per week for continuous decryption: %.1f\n\
       Weighted domains opened by one stolen STEK: %.0f (sampled members: %d; paper: 8,973)\n\
       Domains whose MX points at the operator: %.0f weighted = %s of the Top Million\n\
       (paper: over 90,000 domains, 9.1%%)\n\
       Mail front-ends (SMTP/IMAPS) use the same STEK as the web properties: %s\n\
       (paper: yes - one 16-byte key covers web, mail and API traffic alike)\n"
      a.flagship
      (List.length a.rollover.observed_keys)
      (dur a.rollover.rollover_seconds)
      (dur a.rollover.accept_window_seconds)
      a.steks_per_week a.stek_group_weight a.stek_group_sampled a.mx_coverage_weight
      (Analysis.Report.fmt_pct a.mx_coverage_fraction)
      (match a.mail_shares_stek with
      | Some true -> "yes"
      | Some false -> "no"
      | None -> "no modeled mail host")

(* The Yandex contrast: a flagship whose STEK never changes. *)
let static_stek_contrast study ~flagship =
  let spans = Study.stek_spans study in
  match List.find_opt (fun (s : Analysis.Lifetime.domain_spans) -> String.equal s.Analysis.Lifetime.domain flagship) spans with
  | None -> Printf.sprintf "%s: no STEK observations" flagship
  | Some s ->
      Printf.sprintf
        "Contrast (%s): one STEK spanned the entire %d-day observation (paper: Yandex's STEK\n\
         in continuous use for at least 8 months); a single theft decrypts months of traffic."
        flagship s.Analysis.Lifetime.max_span_days
