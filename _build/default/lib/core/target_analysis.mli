(** Section 7.2: the nation-state attacker's target analysis of one
    high-value operator — STEK rollover cadence measured from outside,
    ticket-acceptance window, the blast radius of one stolen key, and
    mail (MX) coverage. *)

type rollover = {
  observed_keys : string list;
  rollover_seconds : int option;
  accept_window_seconds : int option;
}

type t = {
  operator : string;
  flagship : string;
  rollover : rollover;
  stek_group_weight : float;
  stek_group_sampled : int;
  mx_coverage_weight : float;
  mx_coverage_fraction : float;
  steks_per_week : float;  (** thefts needed for continuous decryption *)
  mail_shares_stek : bool option;
      (** the operator's mail front-ends use the web STEK (Google: yes) *)
}

val measure_rollover :
  Simnet.World.t -> flagship:string -> ?horizon:int -> ?step:int -> unit -> rollover

val analyze : Study.t -> operator:string -> flagship:string -> t
val report : t -> string

val static_stek_contrast : Study.t -> flagship:string -> string
(** The Yandex case: one STEK spanning the whole observation. *)
