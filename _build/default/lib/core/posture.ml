(* A per-domain forward-secrecy posture assessment — the operator-facing
   tool the paper's Section 8 calls for and that (per the paper) no
   scanner of the time provided: given one domain, probe its crypto
   shortcuts cheaply and grade the residual forward-secrecy harm.

   The probes are a condensed version of the study's experiments:

   - cipher support: does a forward-secret suite negotiate at all?
   - ephemeral hygiene: does a 5-connection burst repeat a server
     (EC)DHE value?
   - resumption windows: an exponential probe ladder (1 s, 1 m, 5 m,
     30 m, 1 h, 6 h, 24 h, 48 h) bounds how long session IDs and tickets
     keep resuming — coarse, but enough to grade;
   - STEK stability: does the ticket key name change across the probe
     horizon?

   Grades (worst failing criterion wins):
     F  no forward secrecy at all (static key exchange only)
     D  ephemeral values reused, or the STEK never changed across 48 h
     C  resumption honored beyond 24 h
     B  resumption honored beyond 1 h, or STEK lifetime over a day
     A  fresh ephemerals, short resumption windows, rotating STEK *)

type grade = A | B | C | D | F

let grade_to_string = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | F -> "F"

type assessment = {
  domain : string;
  https : bool;
  trusted : bool;
  forward_secret : bool;
  kex_reused : bool;
  session_id_window : int option; (* seconds; None = no ID resumption *)
  ticket_window : int option;
  distinct_steks_over_horizon : int; (* 0 = no tickets *)
  stek_static_over_horizon : bool;
  grade : grade;
  notes : string list;
}

(* The probe ladder: delays after the initial handshake at which we retry
   a resumption. *)
let ladder = [ 1; 60; 300; 1800; 3600; 6 * 3600; 24 * 3600; 48 * 3600 ]

let probe_window probe ~domain ~offer_of =
  (* Fresh handshake, then walk the ladder with the captured state;
     [offer_of] builds the resumption offer from the initial outcome. *)
  let clock = Simnet.World.clock probe.Scanner.Probe.world in
  let start = Simnet.Clock.now clock in
  let _, outcome = Scanner.Probe.connect probe ~domain in
  match offer_of (Scanner.Probe.resumable_of_outcome outcome) with
  | None -> None
  | Some offer ->
      let best = ref None in
      List.iter
        (fun delay ->
          Simnet.Clock.set clock (start + delay);
          let obs, _ = Scanner.Probe.connect probe ~domain ~offer in
          match obs.Scanner.Observation.resumed with
          | Scanner.Observation.By_session_id | Scanner.Observation.By_ticket ->
              best := Some delay
          | Scanner.Observation.No_resumption -> ())
        ladder;
      !best

let assess world ~domain ?(horizon = 48 * 3600) () =
  let probe = Scanner.Probe.create ~seed:("posture:" ^ domain) world in
  let clock = Simnet.World.clock world in
  (* 1. Support and trust. *)
  let first, _ = Scanner.Probe.connect probe ~domain in
  let https = first.Scanner.Observation.ok in
  if not https then
    {
      domain;
      https = false;
      trusted = false;
      forward_secret = false;
      kex_reused = false;
      session_id_window = None;
      ticket_window = None;
      distinct_steks_over_horizon = 0;
      stek_static_over_horizon = false;
      grade = F;
      notes = [ "no HTTPS reachable" ];
    }
  else begin
    let trusted = first.Scanner.Observation.trusted in
    let forward_secret =
      match first.Scanner.Observation.cipher with
      | Some suite -> Tls.Types.suite_forward_secret suite
      | None -> false
    in
    (* 2. Ephemeral hygiene: a short burst. *)
    let burst =
      List.init 5 (fun _ -> fst (Scanner.Probe.connect probe ~domain))
      |> List.filter_map (fun (o : Scanner.Observation.conn) ->
             match (o.Scanner.Observation.dhe_value, o.Scanner.Observation.ecdhe_value) with
             | Some v, _ | _, Some v -> Some v
             | None, None -> None)
    in
    let kex_reused = fst (Scanner.Burst_scan.repeats burst) in
    (* 3. Resumption windows. *)
    let session_id_window = probe_window probe ~domain ~offer_of:Scanner.Probe.offer_session_id in
    let ticket_window = probe_window probe ~domain ~offer_of:Scanner.Probe.offer_ticket in
    (* 4. STEK stability across the horizon (probe every 6 hours),
       starting from wherever the ladder walks left the clock. *)
    let steks = Hashtbl.create 8 in
    let stek_start = Simnet.Clock.now clock in
    let t = ref 0 in
    while !t <= horizon do
      Simnet.Clock.set clock (stek_start + !t);
      let obs, _ = Scanner.Probe.connect probe ~domain in
      Option.iter (fun k -> Hashtbl.replace steks k ()) obs.Scanner.Observation.stek_id;
      t := !t + (6 * 3600)
    done;
    let distinct = Hashtbl.length steks in
    let stek_static = distinct = 1 in
    (* 5. Grade: worst failing criterion. *)
    let over w limit = match w with Some s -> s >= limit | None -> false in
    let notes = ref [] in
    let note s = notes := s :: !notes in
    let grade =
      if not forward_secret then begin
        note "no forward-secret key exchange offered";
        F
      end
      else if kex_reused then begin
        note "server repeats (EC)DHE values across connections";
        D
      end
      else if stek_static && distinct > 0 && horizon >= 24 * 3600 then begin
        note (Printf.sprintf "one STEK across the whole %dh horizon" (horizon / 3600));
        D
      end
      else if over session_id_window (24 * 3600) || over ticket_window (24 * 3600) then begin
        note "resumption honored beyond 24 hours";
        C
      end
      else if over session_id_window 3600 || over ticket_window 3600 || distinct = 2 && horizon <= 24 * 3600
      then begin
        note "resumption honored beyond one hour";
        B
      end
      else begin
        note "short resumption windows and rotating ticket keys";
        A
      end
    in
    {
      domain;
      https;
      trusted;
      forward_secret;
      kex_reused;
      session_id_window;
      ticket_window;
      distinct_steks_over_horizon = distinct;
      stek_static_over_horizon = stek_static && distinct > 0;
      grade;
      notes = List.rev !notes;
    }
  end

let report a =
  let window = function
    | Some s -> Analysis.Stats.duration_to_string (float_of_int s)
    | None -> "none"
  in
  String.concat "\n"
    ([
       Printf.sprintf "posture of %s: grade %s" a.domain (grade_to_string a.grade);
       Printf.sprintf "  https: %b   browser-trusted: %b   forward-secret suite: %b" a.https
         a.trusted a.forward_secret;
       Printf.sprintf "  ephemeral values: %s"
         (if a.kex_reused then "REUSED across connections" else "fresh per connection");
       Printf.sprintf "  session-ID resumption honored: >= %s" (window a.session_id_window);
       Printf.sprintf "  ticket resumption honored:     >= %s" (window a.ticket_window);
       Printf.sprintf "  distinct STEKs over the probe horizon: %d%s" a.distinct_steks_over_horizon
         (if a.stek_static_over_horizon then " (never rotated)" else "");
     ]
    @ List.map (fun n -> "  note: " ^ n) a.notes)
