(* Section 2.4 / 8.1, quantified: what the measured ecosystem's
   vulnerability windows become if every deployment moves to TLS 1.3's
   PSK resumption, under each of the draft's modes.

   The projection keeps each domain's *operational* behaviour fixed — its
   measured STEK lifetime and ephemeral-reuse habits — and changes only
   the protocol semantics:

   - psk_ke: the PSK-encrypting ticket rides the wire like a 1.2 ticket,
     so a stolen STEK still decrypts everything. Draft-15's 7-day PSK
     lifetime caps *resumption*, not retrospective decryption — the
     paper's section 8.1 point.
   - psk_dhe_ke: the resumed connection runs a fresh (EC)DHE, so its
     1-RTT application data leaves the STEK's blast radius entirely;
     what remains is ephemeral-value reuse (still possible in 1.3).
   - 0-RTT early data is keyed from the PSK alone, so in either mode it
     inherits the full STEK window.

   Session-ID caches disappear in 1.3 (the database-lookup PSK variant is
   operationally a server-side cache, but its exposure is already counted
   by the PSK/STEK path). *)

module V = Analysis.Vuln_window

let no_cache c = { c with V.session_id_honored = 0 }

let projections =
  [
    ("TLS 1.2 as measured (all data)", fun c -> c);
    ("TLS 1.3 psk_ke (all data)", no_cache);
    ( "TLS 1.3 psk_dhe_ke (1-RTT app data)",
      fun c -> { (no_cache c) with V.ticket_honored = 0; stek_span_days = 0 } );
    ( "TLS 1.3 psk_dhe_ke (0-RTT early data)",
      fun c ->
        {
          V.session_id_honored = 0;
          ticket_honored = c.V.ticket_honored;
          stek_span_days = c.V.stek_span_days;
          dhe_span_days = 0;
          ecdhe_span_days = 0;
        } );
  ]

let report study =
  let components = Study.vulnerability_components study in
  let rows =
    List.map
      (fun (name, mitigate) ->
        let windows = V.windows_of_components ~mitigate components in
        let s = V.summarize windows in
        let pct v = Analysis.Report.fmt_pct (v /. s.V.population) in
        [ name; pct s.V.over_1h; pct s.V.over_24h; pct s.V.over_7d; pct s.V.over_30d ])
      projections
  in
  Analysis.Report.section "TLS 1.3 Projection (Sections 2.4 and 8.1)"
  ^ "\n"
  ^ Analysis.Report.table ~headers:[ "Protocol / data class"; ">1h"; ">24h"; ">7d"; ">30d" ] ~rows
  ^ "\n\nReading: moving the ecosystem to psk_ke changes almost nothing — the STEK\n\
     windows the paper measured carry over wholesale, and the draft's 7-day PSK\n\
     lifetime bounds resumption, not retrospective decryption. psk_dhe_ke ends the\n\
     STEK exposure for 1-RTT data (ephemeral reuse remains), but any 0-RTT early\n\
     data re-inherits the entire STEK window. The Tls.Tls13 module implements these\n\
     semantics with the real RFC 8446 key schedule; see test/test_tls13.ml for the\n\
     attack split demonstrated concretely.\n"
