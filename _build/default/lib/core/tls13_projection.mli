(** Sections 2.4 / 8.1 quantified: the measured ecosystem's vulnerability
    windows re-evaluated under TLS 1.3 PSK-resumption semantics —
    [psk_ke] (1.2-ticket equivalence), [psk_dhe_ke] 1-RTT data (STEK
    exposure gone, ephemeral reuse remains), and 0-RTT early data (full
    STEK window again). *)

val projections : (string * (Analysis.Vuln_window.components -> Analysis.Vuln_window.components)) list
val report : Study.t -> string
