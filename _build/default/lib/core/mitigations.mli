(** The Section 8.2 operator recommendations, quantified: the measured
    vulnerability-window distribution re-evaluated under each mitigation,
    plus the regional-STEK blast-radius table. *)

type scenario = {
  name : string;
  description : string;
  mitigate : Analysis.Vuln_window.components -> Analysis.Vuln_window.components;
}

val scenarios : scenario list
(** Measured baseline, daily STEK rotation, 5-minute caches, no (EC)DHE
    reuse, all three combined, and shortcuts disabled. *)

val regional_partitioning : Study.t -> string
val report : Study.t -> string
