(** HKDF (RFC 5869) over HMAC-SHA256, with the TLS 1.3 labeled variants
    (RFC 8446, section 7.1). *)

val hash_len : int
(** 32. *)

val extract : ?salt:string -> string -> string
(** [extract ~salt ikm] is the PRK; an empty salt means a zeroed one. *)

val expand : prk:string -> info:string -> int -> string

val expand_label : secret:string -> label:string -> context:string -> int -> string
(** TLS 1.3 HKDF-Expand-Label (the ["tls13 "] prefix is added here). *)

val derive_secret : secret:string -> label:string -> transcript_hash:string -> string
