(** Block-cipher modes over {!Aes}: CBC with PKCS#7 padding and CTR. *)

val pkcs7_pad : string -> string
val pkcs7_unpad : string -> (string, string) result

val cbc_encrypt : Aes.t -> iv:string -> string -> string
(** PKCS#7-pads and encrypts. The IV must be 16 bytes. *)

val cbc_decrypt : Aes.t -> iv:string -> string -> (string, string) result
(** Decrypts and strips PKCS#7 padding. *)

val ctr_encrypt : Aes.t -> nonce:string -> string -> string
(** Counter mode keystream XOR; [nonce] is at most 8 bytes and occupies the
    front of the counter block. Encryption and decryption coincide. *)

val ctr_decrypt : Aes.t -> nonce:string -> string -> string
