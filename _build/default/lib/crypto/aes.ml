(* AES (FIPS 197) block cipher: 128/192/256-bit keys, encrypt and decrypt.

   The S-box is computed from its definition (GF(2^8) inversion followed by
   the affine transform) rather than transcribed, and the whole cipher is
   checked against the FIPS 197 known-answer vectors in the test suite. *)

(* --- GF(2^8) arithmetic, reduction polynomial x^8+x^4+x^3+x+1 (0x11b) --- *)

let xtime b =
  let b' = b lsl 1 in
  if b' land 0x100 <> 0 then (b' lxor 0x1b) land 0xff else b'

let gf_mul a b =
  let acc = ref 0 in
  let a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc land 0xff

(* --- S-box ------------------------------------------------------------- *)

let sbox, inv_sbox =
  let gf_inv x =
    if x = 0 then 0
    else begin
      (* Brute-force inverse: 255 candidates, done once at module init. *)
      let rec find y = if gf_mul x y = 1 then y else find (y + 1) in
      find 1
    end
  in
  let rotl8 v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
  let s = Array.make 256 0 in
  let si = Array.make 256 0 in
  for x = 0 to 255 do
    let b = gf_inv x in
    let v = b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63 in
    s.(x) <- v
  done;
  for x = 0 to 255 do
    si.(s.(x)) <- x
  done;
  (s, si)

(* Precomputed GF(2^8) multiplication tables for the MixColumns
   coefficients; one lookup instead of a shift-and-xor loop per byte. *)
let mul_table c = Array.init 256 (fun x -> gf_mul c x)

let m2 = mul_table 2
let m3 = mul_table 3
let m9 = mul_table 9
let m11 = mul_table 11
let m13 = mul_table 13
let m14 = mul_table 14

let rcon =
  (* Round constants: successive powers of x in GF(2^8). *)
  let r = Array.make 15 0 in
  let v = ref 1 in
  for i = 1 to 14 do
    r.(i) <- !v;
    v := xtime !v
  done;
  r

(* --- Key schedule ------------------------------------------------------- *)

type t = {
  round_keys : int array; (* (nr+1) * 16 bytes *)
  nr : int;
}

let expand_key key =
  let nk =
    match String.length key with
    | 16 -> 4
    | 24 -> 6
    | 32 -> 8
    | n -> invalid_arg (Printf.sprintf "Aes.of_key: bad key length %d" n)
  in
  let nr = nk + 6 in
  let words = Array.make (4 * (nr + 1)) 0 in
  for i = 0 to nk - 1 do
    words.(i) <-
      (Char.code key.[4 * i] lsl 24)
      lor (Char.code key.[(4 * i) + 1] lsl 16)
      lor (Char.code key.[(4 * i) + 2] lsl 8)
      lor Char.code key.[(4 * i) + 3]
  done;
  let sub_word w =
    (sbox.((w lsr 24) land 0xff) lsl 24)
    lor (sbox.((w lsr 16) land 0xff) lsl 16)
    lor (sbox.((w lsr 8) land 0xff) lsl 8)
    lor sbox.(w land 0xff)
  in
  let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xffffffff in
  for i = nk to (4 * (nr + 1)) - 1 do
    let temp = ref words.(i - 1) in
    if i mod nk = 0 then temp := sub_word (rot_word !temp) lxor (rcon.(i / nk) lsl 24)
    else if nk > 6 && i mod nk = 4 then temp := sub_word !temp;
    words.(i) <- words.(i - nk) lxor !temp
  done;
  (* Flatten to a byte array: round_keys.(16*r + 4*c + row). *)
  let rk = Array.make (16 * (nr + 1)) 0 in
  Array.iteri
    (fun i w ->
      rk.(4 * i) <- (w lsr 24) land 0xff;
      rk.((4 * i) + 1) <- (w lsr 16) land 0xff;
      rk.((4 * i) + 2) <- (w lsr 8) land 0xff;
      rk.((4 * i) + 3) <- w land 0xff)
    words;
  { round_keys = rk; nr }

let of_key = expand_key

(* --- Block operations ---------------------------------------------------
   State layout: state.(4*col + row), matching the byte order of the input
   block read column-major as in FIPS 197. *)

let add_round_key t state round =
  let off = 16 * round in
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor t.round_keys.(off + i)
  done

let sub_bytes state = Array.iteri (fun i v -> state.(i) <- sbox.(v)) state
let inv_sub_bytes state = Array.iteri (fun i v -> state.(i) <- inv_sbox.(v)) state

(* Row [r] lives at indices r, r+4, r+8, r+12; ShiftRows rotates row r left
   by r positions. *)
let shift_rows state =
  let tmp = Array.copy state in
  for r = 1 to 3 do
    for c = 0 to 3 do
      state.((4 * c) + r) <- tmp.((4 * ((c + r) mod 4)) + r)
    done
  done

let inv_shift_rows state =
  let tmp = Array.copy state in
  for r = 1 to 3 do
    for c = 0 to 3 do
      state.((4 * ((c + r) mod 4)) + r) <- tmp.((4 * c) + r)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let s0 = state.(4 * c)
    and s1 = state.((4 * c) + 1)
    and s2 = state.((4 * c) + 2)
    and s3 = state.((4 * c) + 3) in
    state.(4 * c) <- m2.(s0) lxor m3.(s1) lxor s2 lxor s3;
    state.((4 * c) + 1) <- s0 lxor m2.(s1) lxor m3.(s2) lxor s3;
    state.((4 * c) + 2) <- s0 lxor s1 lxor m2.(s2) lxor m3.(s3);
    state.((4 * c) + 3) <- m3.(s0) lxor s1 lxor s2 lxor m2.(s3)
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let s0 = state.(4 * c)
    and s1 = state.((4 * c) + 1)
    and s2 = state.((4 * c) + 2)
    and s3 = state.((4 * c) + 3) in
    state.(4 * c) <- m14.(s0) lxor m11.(s1) lxor m13.(s2) lxor m9.(s3);
    state.((4 * c) + 1) <- m9.(s0) lxor m14.(s1) lxor m11.(s2) lxor m13.(s3);
    state.((4 * c) + 2) <- m13.(s0) lxor m9.(s1) lxor m14.(s2) lxor m11.(s3);
    state.((4 * c) + 3) <- m11.(s0) lxor m13.(s1) lxor m9.(s2) lxor m14.(s3)
  done

let block_size = 16

let check_block name s =
  if String.length s <> block_size then
    invalid_arg (name ^ ": block must be 16 bytes")

let state_of_block s = Array.init 16 (fun i -> Char.code s.[i])
let block_of_state st = String.init 16 (fun i -> Char.chr st.(i))

let encrypt_block t block =
  check_block "Aes.encrypt_block" block;
  let state = state_of_block block in
  add_round_key t state 0;
  for round = 1 to t.nr - 1 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key t state round
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key t state t.nr;
  block_of_state state

let decrypt_block t block =
  check_block "Aes.decrypt_block" block;
  let state = state_of_block block in
  add_round_key t state t.nr;
  for round = t.nr - 1 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key t state round;
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key t state 0;
  block_of_state state
