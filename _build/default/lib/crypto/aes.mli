(** AES (FIPS 197) block cipher with 128/192/256-bit keys. *)

type t
(** An expanded key schedule, usable for both directions. *)

val of_key : string -> t
(** Raises [Invalid_argument] unless the key is 16, 24 or 32 bytes. *)

val block_size : int
(** 16. *)

val encrypt_block : t -> string -> string
val decrypt_block : t -> string -> string
