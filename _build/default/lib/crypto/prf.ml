(* The TLS 1.2 pseudorandom function (RFC 5246 section 5): P_SHA256 over
   HMAC-SHA256, plus the two standard derivations the handshake needs. *)

let p_sha256 ~secret ~seed n =
  let buf = Buffer.create n in
  let a = ref (Hmac.sha256 ~key:secret seed) in
  while Buffer.length buf < n do
    Buffer.add_string buf (Hmac.sha256 ~key:secret (!a ^ seed));
    a := Hmac.sha256 ~key:secret !a
  done;
  Buffer.sub buf 0 n

let prf ~secret ~label ~seed n = p_sha256 ~secret ~seed:(label ^ seed) n

let master_secret_len = 48

let master_secret ~pre_master ~client_random ~server_random =
  prf ~secret:pre_master ~label:"master secret"
    ~seed:(client_random ^ server_random)
    master_secret_len

let key_block ~master ~client_random ~server_random n =
  (* Note the reversed random order relative to the master secret
     derivation, as specified in RFC 5246 section 6.3. *)
  prf ~secret:master ~label:"key expansion" ~seed:(server_random ^ client_random) n

let verify_data_len = 12

let finished_verify_data ~master ~label ~handshake_hash =
  prf ~secret:master ~label ~seed:handshake_hash verify_data_len

let client_finished ~master ~handshake_hash =
  finished_verify_data ~master ~label:"client finished" ~handshake_hash

let server_finished ~master ~handshake_hash =
  finished_verify_data ~master ~label:"server finished" ~handshake_hash
