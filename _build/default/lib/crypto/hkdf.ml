(* HKDF (RFC 5869) over HMAC-SHA256, plus the TLS 1.3 labeled variants
   (RFC 8446 section 7.1). This is the key-schedule substrate for the
   TLS 1.3 resumption model that projects the paper's findings onto the
   (then-draft) protocol's PSK mechanisms. *)

let hash_len = 32

let extract ?(salt = "") ikm =
  let salt = if salt = "" then String.make hash_len '\x00' else salt in
  Hmac.sha256 ~key:salt ikm

let expand ~prk ~info len =
  if len > 255 * hash_len then invalid_arg "Hkdf.expand: length too large";
  let buf = Buffer.create len in
  let t = ref "" in
  let i = ref 1 in
  while Buffer.length buf < len do
    t := Hmac.sha256 ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string buf !t;
    incr i
  done;
  Buffer.sub buf 0 len

(* TLS 1.3 HkdfLabel: u16 length, "tls13 " ^ label as a u8-vector, then
   the context as a u8-vector. *)
let expand_label ~secret ~label ~context len =
  let info =
    Wire.Writer.build (fun w ->
        Wire.Writer.u16 w len;
        Wire.Writer.vec8 w ("tls13 " ^ label);
        Wire.Writer.vec8 w context)
  in
  expand ~prk:secret ~info len

(* Derive-Secret(secret, label, messages) = Expand-Label with the
   transcript hash as context and the hash length as output size. *)
let derive_secret ~secret ~label ~transcript_hash =
  expand_label ~secret ~label ~context:transcript_hash hash_len
