(* Block-cipher modes of operation over {!Aes}: CBC with PKCS#7 padding
   (the RFC 5077 recommended ticket construction) and CTR (used by the
   record layer's toy AEAD). *)

let bs = Aes.block_size

let xor_block a b =
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* --- PKCS#7 padding ------------------------------------------------------ *)

let pkcs7_pad s =
  let pad = bs - (String.length s mod bs) in
  s ^ String.make pad (Char.chr pad)

let pkcs7_unpad s =
  let n = String.length s in
  if n = 0 || n mod bs <> 0 then Error "pkcs7: bad length"
  else
    let pad = Char.code s.[n - 1] in
    if pad = 0 || pad > bs then Error "pkcs7: bad padding byte"
    else
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code s.[i] <> pad then ok := false
      done;
      if !ok then Ok (String.sub s 0 (n - pad)) else Error "pkcs7: inconsistent padding"

(* --- CBC ----------------------------------------------------------------- *)

let cbc_encrypt key ~iv plaintext =
  if String.length iv <> bs then invalid_arg "Block_mode.cbc_encrypt: bad IV";
  let padded = pkcs7_pad plaintext in
  let nblocks = String.length padded / bs in
  let out = Buffer.create (String.length padded) in
  let prev = ref iv in
  for i = 0 to nblocks - 1 do
    let block = String.sub padded (i * bs) bs in
    let c = Aes.encrypt_block key (xor_block block !prev) in
    Buffer.add_string out c;
    prev := c
  done;
  Buffer.contents out

let cbc_decrypt key ~iv ciphertext =
  if String.length iv <> bs then invalid_arg "Block_mode.cbc_decrypt: bad IV";
  let n = String.length ciphertext in
  if n = 0 || n mod bs <> 0 then Error "cbc: ciphertext not block-aligned"
  else begin
    let out = Buffer.create n in
    let prev = ref iv in
    for i = 0 to (n / bs) - 1 do
      let block = String.sub ciphertext (i * bs) bs in
      Buffer.add_string out (xor_block (Aes.decrypt_block key block) !prev);
      prev := block
    done;
    pkcs7_unpad (Buffer.contents out)
  end

(* --- CTR ----------------------------------------------------------------- *)

(* The counter occupies the last 8 bytes of the 16-byte block, big-endian. *)
let ctr_block nonce counter =
  let b = Bytes.make bs '\000' in
  Bytes.blit_string nonce 0 b 0 (min (String.length nonce) 8);
  for i = 0 to 7 do
    Bytes.set b (8 + i) (Char.chr ((counter lsr (8 * (7 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let ctr_transform key ~nonce data =
  if String.length nonce > 8 then invalid_arg "Block_mode.ctr: nonce too long";
  let n = String.length data in
  let out = Bytes.create n in
  let i = ref 0 in
  let counter = ref 0 in
  while !i < n do
    let keystream = Aes.encrypt_block key (ctr_block nonce !counter) in
    let chunk = min bs (n - !i) in
    for j = 0 to chunk - 1 do
      Bytes.set out (!i + j) (Char.chr (Char.code data.[!i + j] lxor Char.code keystream.[j]))
    done;
    i := !i + chunk;
    incr counter
  done;
  Bytes.unsafe_to_string out

let ctr_encrypt = ctr_transform
let ctr_decrypt = ctr_transform
