lib/crypto/prf.ml: Buffer Hmac
