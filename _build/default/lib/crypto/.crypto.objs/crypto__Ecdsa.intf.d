lib/crypto/ecdsa.mli: Drbg Ec
