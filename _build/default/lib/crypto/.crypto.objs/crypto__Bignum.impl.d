lib/crypto/bignum.ml: Array Buffer Char Format Stdlib String Wire
