lib/crypto/x25519.ml: Bignum Bytes Char Drbg String
