lib/crypto/drbg.ml: Array Bignum Buffer Bytes Char Hmac List Printf String
