lib/crypto/hkdf.mli:
