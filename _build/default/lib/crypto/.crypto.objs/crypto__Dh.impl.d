lib/crypto/dh.ml: Bignum Drbg Hashtbl List Printf
