lib/crypto/ecdsa.ml: Bignum Drbg Ec Sha256 String
