lib/crypto/block_mode.mli: Aes
