lib/crypto/aes.mli:
