lib/crypto/ec.mli: Bignum Drbg
