lib/crypto/ec.ml: Bignum Dh Drbg Hashtbl Lazy Printf String
