lib/crypto/prf.mli:
