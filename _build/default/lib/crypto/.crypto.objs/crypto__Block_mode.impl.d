lib/crypto/block_mode.ml: Aes Buffer Bytes Char String
