lib/crypto/aes.ml: Array Char Printf String
