lib/crypto/hmac.mli:
