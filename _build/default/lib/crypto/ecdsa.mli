(** ECDSA over any {!Ec} curve, hashing with SHA-256. *)

type keypair
type signature

val gen_keypair : Ec.curve -> Drbg.t -> keypair
val public_key : keypair -> Ec.point
val curve : keypair -> Ec.curve

val ecdh : keypair -> peer_pub:Ec.point -> (string, string) result
(** Static ECDH using the signing key, as in the TLS ECDH_ECDSA suites. *)

val sign : keypair -> Drbg.t -> string -> signature
val verify : curve:Ec.curve -> pub:Ec.point -> msg:string -> signature -> bool

val signature_bytes : Ec.curve -> signature -> string
(** Fixed-width [r || s] encoding. *)

val signature_of_bytes : Ec.curve -> string -> (signature, string) result
