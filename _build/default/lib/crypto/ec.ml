(* Elliptic-curve groups in short Weierstrass form y^2 = x^3 + ax + b over
   a prime field, with Jacobian-coordinate point arithmetic.

   Two kinds of curves are provided, mirroring {!Dh}: [p256] is the real
   NIST P-256 curve (the dominant TLS ECDHE curve in 2016), used by tests,
   examples and benches; [generate_small ~bits ~seed] deterministically
   builds a small supersingular curve (y^2 = x^3 + x over p = 4q - 1 with
   q prime, group order 4q) so simulation sweeps can run millions of
   handshakes. Both are real EC groups exercising the same code path; the
   small curves' cryptographic weakness (MOV) is irrelevant to the
   measurements, as discussed in DESIGN.md.

   Arithmetic is not constant-time; this library measures protocol
   behaviour, it does not defend live traffic. *)

module F = Bignum.Field

type curve = {
  name : string;
  fctx : F.ctx;
  a : F.fe;
  b : F.fe;
  a_is_minus3 : bool;
  gx : Bignum.t;
  gy : Bignum.t;
  n : Bignum.t; (* order of the base point *)
  h : int; (* cofactor *)
  n_mont : Bignum.mont Lazy.t; (* cached context for mod-n arithmetic (ECDSA) *)
}

type point = Inf | Affine of Bignum.t * Bignum.t

let curve_name c = c.name
let curve_p c = F.modulus c.fctx
let curve_order c = c.n
let base_point c = Affine (c.gx, c.gy)

let make_curve ~name ~p ~a ~b ~gx ~gy ~n ~h =
  let fctx = F.create p in
  let a_fe = F.of_bignum fctx a in
  {
    name;
    fctx;
    a = a_fe;
    b = F.of_bignum fctx b;
    a_is_minus3 = Bignum.equal a (Bignum.sub_int p 3);
    gx;
    gy;
    n;
    h;
    n_mont = lazy (Bignum.mont_of_modulus n);
  }

(* Inverse modulo the (prime) group order, with a cached Montgomery
   context — ECDSA calls this once per signature and verification. *)
let mod_order_inverse c (a : Bignum.t) =
  let a = Bignum.rem a c.n in
  if Bignum.is_zero a then invalid_arg "Ec.mod_order_inverse: zero";
  Bignum.pow_mod_ctx (Lazy.force c.n_mont) a (Bignum.sub c.n Bignum.two)

(* NIST P-256 (secp256r1) domain parameters; the test suite validates them
   structurally (base point on curve, n * G = infinity, p and n prime). *)
let p256 =
  let p = Bignum.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff" in
  make_curve ~name:"secp256r1" ~p
    ~a:(Bignum.sub_int p 3)
    ~b:(Bignum.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
    ~gx:(Bignum.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
    ~gy:(Bignum.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
    ~n:(Bignum.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
    ~h:1

let on_curve c = function
  | Inf -> true
  | Affine (x, y) ->
      let fctx = c.fctx in
      let xf = F.of_bignum fctx x and yf = F.of_bignum fctx y in
      let lhs = F.sqr fctx yf in
      let rhs = F.add fctx (F.mul fctx (F.sqr fctx xf) xf) (F.add fctx (F.mul fctx c.a xf) c.b) in
      F.equal lhs rhs

(* --- Jacobian arithmetic -------------------------------------------------
   (X, Y, Z) represents affine (X/Z^2, Y/Z^3); Z = 0 is infinity. *)

type jac = { x : F.fe; y : F.fe; z : F.fe }

let jac_inf c = { x = F.one c.fctx; y = F.one c.fctx; z = F.zero c.fctx }
let jac_is_inf j = F.is_zero j.z

let to_jac c = function
  | Inf -> jac_inf c
  | Affine (x, y) ->
      { x = F.of_bignum c.fctx x; y = F.of_bignum c.fctx y; z = F.one c.fctx }

let of_jac c j =
  if jac_is_inf j then Inf
  else begin
    let f = c.fctx in
    let zinv = F.inv f j.z in
    let zinv2 = F.sqr f zinv in
    let x = F.mul f j.x zinv2 in
    let y = F.mul f j.y (F.mul f zinv2 zinv) in
    Affine (F.to_bignum f x, F.to_bignum f y)
  end

let jac_double c j =
  if jac_is_inf j || F.is_zero j.y then jac_inf c
  else begin
    let f = c.fctx in
    let y2 = F.sqr f j.y in
    let s = F.mul_small f (F.mul f j.x y2) 4 in
    let m =
      if c.a_is_minus3 then begin
        (* 3(X - Z^2)(X + Z^2) *)
        let z2 = F.sqr f j.z in
        F.mul_small f (F.mul f (F.sub f j.x z2) (F.add f j.x z2)) 3
      end
      else begin
        let x2 = F.sqr f j.x in
        let z4 = F.sqr f (F.sqr f j.z) in
        F.add f (F.mul_small f x2 3) (F.mul f c.a z4)
      end
    in
    let x' = F.sub f (F.sqr f m) (F.mul_small f s 2) in
    let y' = F.sub f (F.mul f m (F.sub f s x')) (F.mul_small f (F.sqr f y2) 8) in
    let z' = F.mul_small f (F.mul f j.y j.z) 2 in
    { x = x'; y = y'; z = z' }
  end

let jac_add c p q =
  if jac_is_inf p then q
  else if jac_is_inf q then p
  else begin
    let f = c.fctx in
    let z12 = F.sqr f p.z and z2'2 = F.sqr f q.z in
    let u1 = F.mul f p.x z2'2 and u2 = F.mul f q.x z12 in
    let s1 = F.mul f p.y (F.mul f z2'2 q.z) and s2 = F.mul f q.y (F.mul f z12 p.z) in
    if F.equal u1 u2 then
      if F.equal s1 s2 then jac_double c p else jac_inf c
    else begin
      let h = F.sub f u2 u1 in
      let r = F.sub f s2 s1 in
      let h2 = F.sqr f h in
      let h3 = F.mul f h2 h in
      let u1h2 = F.mul f u1 h2 in
      let x3 = F.sub f (F.sub f (F.sqr f r) h3) (F.mul_small f u1h2 2) in
      let y3 = F.sub f (F.mul f r (F.sub f u1h2 x3)) (F.mul f s1 h3) in
      let z3 = F.mul f h (F.mul f p.z q.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

let add c p q = of_jac c (jac_add c (to_jac c p) (to_jac c q))
let double c p = of_jac c (jac_double c (to_jac c p))

let neg _c = function Inf -> Inf | Affine (x, y) -> Affine (x, y)
[@@warning "-32"]

let scalar_mult c k p =
  if Bignum.is_zero k then Inf
  else begin
    let base = to_jac c p in
    let acc = ref (jac_inf c) in
    for i = Bignum.num_bits k - 1 downto 0 do
      acc := jac_double c !acc;
      if Bignum.test_bit k i then acc := jac_add c !acc base
    done;
    of_jac c !acc
  end

let scalar_mult_base c k = scalar_mult c k (base_point c)

(* --- Small-curve generation ----------------------------------------------
   For p = 4q - 1 with p, q prime (so p = 3 mod 4), the curve
   y^2 = x^3 + x over F_p is supersingular with exactly p + 1 = 4q points.
   Clearing the cofactor 4 from any point lands in a subgroup of prime
   order q. Square roots use z^((p+1)/4), valid because p = 3 mod 4. *)
let generate_small_cache : (int * string, curve) Hashtbl.t = Hashtbl.create 8

let generate_small_uncached ~bits ~seed =
  if bits < 24 || bits > 128 then invalid_arg "Ec.generate_small: bits out of range";
  let rng = Drbg.create ~seed:(Printf.sprintf "ec-curve:%s:%d" seed bits) in
  let rec find_p () =
    let raw = Bignum.of_bytes_be (Drbg.generate rng ((bits + 7) / 8)) in
    let q =
      Bignum.add
        (Bignum.rem raw (Bignum.shift_left Bignum.one (bits - 3)))
        (Bignum.shift_left Bignum.one (bits - 3))
    in
    let q = if Bignum.is_even q then Bignum.add_int q 1 else q in
    if not (Dh.is_probably_prime ~rounds:16 ~rng q) then find_p ()
    else
      let p = Bignum.sub_int (Bignum.shift_left q 2) 1 in
      if Dh.is_probably_prime ~rounds:16 ~rng p then (p, q) else find_p ()
  in
  let p, q = find_p () in
  let fctx = F.create p in
  let sqrt_exp = Bignum.shift_right (Bignum.add_int p 1) 2 in
  let legendre_exp = Bignum.shift_right (Bignum.sub_int p 1) 1 in
  let curve_rhs xf = F.add fctx (F.mul fctx (F.sqr fctx xf) xf) xf in
  let rec find_g () =
    let x = Drbg.bignum_below rng p in
    let xf = F.of_bignum fctx x in
    let z = curve_rhs xf in
    if F.is_zero z then find_g ()
    else if not (F.equal (F.pow fctx z legendre_exp) (F.one fctx)) then find_g ()
    else begin
      let yf = F.pow fctx z sqrt_exp in
      let y = F.to_bignum fctx yf in
      let c =
        make_curve
          ~name:(Printf.sprintf "sim-ss%d(%s)" bits seed)
          ~p ~a:Bignum.one ~b:Bignum.zero ~gx:(F.to_bignum fctx xf) ~gy:y ~n:q ~h:4
      in
      (* Clear the cofactor to land in the order-q subgroup. *)
      match scalar_mult c (Bignum.of_int 4) (Affine (F.to_bignum fctx xf, y)) with
      | Inf -> find_g ()
      | Affine (gx, gy) -> { c with gx; gy }
    end
  in
  find_g ()

let generate_small ~bits ~seed =
  match Hashtbl.find_opt generate_small_cache (bits, seed) with
  | Some c -> c
  | None ->
      let c = generate_small_uncached ~bits ~seed in
      Hashtbl.replace generate_small_cache (bits, seed) c;
      c

(* --- Key exchange --------------------------------------------------------- *)

type keypair = { curve : curve; priv : Bignum.t; pub : point }

let gen_keypair curve rng =
  let priv = Drbg.bignum_in_group rng curve.n in
  { curve; priv; pub = scalar_mult_base curve priv }

let field_len c = (Bignum.num_bits (curve_p c) + 7) / 8

(* Uncompressed SEC1 point encoding: 0x04 || X || Y. *)
let point_bytes c = function
  | Inf -> "\x00"
  | Affine (x, y) ->
      let l = field_len c in
      "\x04" ^ Bignum.to_bytes_be ~len:l x ^ Bignum.to_bytes_be ~len:l y

let point_of_bytes c s =
  if s = "\x00" then Ok Inf
  else
    let l = field_len c in
    if String.length s <> 1 + (2 * l) || s.[0] <> '\x04' then Error "ec: bad point encoding"
    else
      let x = Bignum.of_bytes_be (String.sub s 1 l) in
      let y = Bignum.of_bytes_be (String.sub s (1 + l) l) in
      let pt = Affine (x, y) in
      if on_curve c pt then Ok pt else Error "ec: point not on curve"

let public_bytes kp = point_bytes kp.curve kp.pub

let shared_secret kp ~peer_pub =
  match peer_pub with
  | Inf -> Error "ec: peer public is infinity"
  | Affine _ when not (on_curve kp.curve peer_pub) -> Error "ec: peer point not on curve"
  | Affine _ -> (
      (* Clear the cofactor: rejects small-subgroup confinement. *)
      let shared = scalar_mult kp.curve kp.priv peer_pub in
      match shared with
      | Inf -> Error "ec: degenerate shared point"
      | Affine (x, _) ->
          (* TLS uses the x-coordinate of the shared point. *)
          Ok (Bignum.to_bytes_be ~len:(field_len kp.curve) x))
