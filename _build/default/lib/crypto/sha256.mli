(** SHA-256 (FIPS 180-4). *)

type t
(** Streaming hash state. *)

val init : unit -> t
val update : t -> string -> unit

val finalize : t -> string
(** Returns the 32-byte digest. The state must not be reused afterwards. *)

val digest : string -> string
(** One-shot digest. *)

val digest_list : string list -> string
(** Digest of the concatenation of the parts, without building it. *)

val digest_size : int
val block_size : int
