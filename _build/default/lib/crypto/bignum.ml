(* Arbitrary-precision unsigned integers ("naturals") built from scratch:
   the container has no zarith, and the (EC)DHE substrate needs modular
   exponentiation over 64..2048-bit moduli.

   Representation: little-endian [int array] of 26-bit limbs with no leading
   zero limbs ([zero] is the empty array). 26-bit limbs keep every
   intermediate product of the schoolbook and Montgomery multipliers within
   53 bits, comfortably inside OCaml's 63-bit native ints.

   The one performance-sensitive operation is [pow_mod], which uses
   Montgomery (CIOS) multiplication for odd moduli; everything else is
   simple and obviously-correct schoolbook code. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

(* Strip leading (high-order) zero limbs to restore canonical form. *)
let norm (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) =
  (* Fits when it has at most two limbs plus 11 low bits of a third. *)
  let n = Array.length a in
  if n > 3 then None
  else
    let v = ref 0 in
    let ok = ref true in
    for i = n - 1 downto 0 do
      if !v > max_int lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None

let to_int_exn a =
  match to_int_opt a with
  | Some v -> v
  | None -> invalid_arg "Bignum.to_int_exn: does not fit"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0
let is_one a = equal a one

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

let test_bit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_even a = not (test_bit a 0)

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    out.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  norm out

(* [sub a b] requires [a >= b]. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  norm out

let add_int a v = add a (of_int v)
let sub_int a v = sub a (of_int v)

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- s land mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry; it can span several limbs because the
         target slot may already hold accumulated value. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = out.(!k) + !carry in
        out.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    norm out
  end

let mul_int a v = mul a (of_int v)

let shift_left (a : t) bits : t =
  if bits < 0 then invalid_arg "Bignum.shift_left: negative";
  if is_zero a || bits = 0 then a
  else
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      out.(i + limbs) <- out.(i + limbs) lor (v land mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    norm out

let shift_right (a : t) bits : t =
  if bits < 0 then invalid_arg "Bignum.shift_right: negative";
  if is_zero a || bits = 0 then a
  else
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else
      let n = la - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi =
          if off = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - off)) land mask
        in
        out.(i) <- lo lor hi
      done;
      norm out

(* Binary long division: not fast, but it only runs during setup
   (Montgomery context construction, conversions) and in tests, never in
   the per-handshake hot path. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let bits = num_bits a in
    let q = Array.make (Array.length a) 0 in
    (* Remainder kept as a mutable window at most one limb longer than b. *)
    let rlen = Array.length b + 1 in
    let r = Array.make rlen 0 in
    let r_ge_b () =
      let rec go i =
        if i < 0 then true
        else
          let bv = if i < Array.length b then b.(i) else 0 in
          if r.(i) <> bv then r.(i) > bv else go (i - 1)
      in
      go (rlen - 1)
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to rlen - 1 do
        let bv = if i < Array.length b then b.(i) else 0 in
        let d = r.(i) - bv - !borrow in
        if d < 0 then begin
          r.(i) <- d + base;
          borrow := 1
        end
        else begin
          r.(i) <- d;
          borrow := 0
        end
      done;
      assert (!borrow = 0)
    in
    let r_shl1_or bit =
      let carry = ref bit in
      for i = 0 to rlen - 1 do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land mask;
        carry := v lsr limb_bits
      done;
      (* The remainder never outgrows b by more than one bit before the
         conditional subtraction below, so the final carry is always 0. *)
      assert (!carry = 0)
    in
    for i = bits - 1 downto 0 do
      r_shl1_or (if test_bit a i then 1 else 0);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (norm q, norm r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* --- Montgomery arithmetic (odd modulus) ------------------------------- *)

type mont = {
  m : int array; (* modulus, padded to [n] limbs *)
  modulus : t; (* canonical copy, for reductions *)
  n : int; (* limb count *)
  n0' : int; (* -m^-1 mod 2^26 *)
  r2 : int array; (* R^2 mod m, padded, R = 2^(26n) *)
}

let mont_of_modulus (m : t) : mont =
  if is_zero m || is_even m then invalid_arg "Bignum.mont_of_modulus: modulus must be odd";
  let n = Array.length m in
  let padded = Array.make n 0 in
  Array.blit m 0 padded 0 n;
  (* n0' = -m0^-1 mod 2^26 via Newton iteration (5 steps reach 32 bits). *)
  let m0 = m.(0) in
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := !inv * (2 - (m0 * !inv)) land mask
  done;
  let n0' = base - !inv land mask in
  let n0' = n0' land mask in
  let r_mod_m = rem (shift_left one (n * limb_bits)) m in
  let r2 = rem (mul r_mod_m r_mod_m) m in
  let r2p = Array.make n 0 in
  Array.blit r2 0 r2p 0 (Array.length r2);
  { m = padded; modulus = m; n; n0' = n0'; r2 = r2p }

(* CIOS Montgomery multiplication: out = a * b * R^-1 mod m.
   [a], [b] and the result are n-limb arrays (not necessarily canonical). *)
let mont_mul ctx (a : int array) (b : int array) : int array =
  let n = ctx.n in
  let m = ctx.m in
  let t = Array.make (n + 2) 0 in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    let carry = ref 0 in
    for j = 0 to n - 1 do
      let s = t.(j) + (ai * b.(j)) + !carry in
      t.(j) <- s land mask;
      carry := s lsr limb_bits
    done;
    let s = t.(n) + !carry in
    t.(n) <- s land mask;
    t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
    let mi = t.(0) * ctx.n0' land mask in
    let s = t.(0) + (mi * m.(0)) in
    let carry = ref (s lsr limb_bits) in
    for j = 1 to n - 1 do
      let s = t.(j) + (mi * m.(j)) + !carry in
      t.(j - 1) <- s land mask;
      carry := s lsr limb_bits
    done;
    let s = t.(n) + !carry in
    t.(n - 1) <- s land mask;
    t.(n) <- t.(n + 1) + (s lsr limb_bits);
    t.(n + 1) <- 0
  done;
  let out = Array.sub t 0 n in
  (* Conditional final subtraction: t may be in [0, 2m). *)
  let ge =
    if t.(n) > 0 then true
    else begin
      let rec go i =
        if i < 0 then true else if out.(i) <> m.(i) then out.(i) > m.(i) else go (i - 1)
      in
      go (n - 1)
    end
  in
  if ge then begin
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = out.(i) - m.(i) - !borrow in
      if d < 0 then begin
        out.(i) <- d + base;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done
  end;
  out

let pad_to n (a : t) =
  let out = Array.make n 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

(* a^e mod m. Montgomery square-and-multiply for odd m; generic
   square-and-multiply with binary reduction otherwise. *)
let rec pow_mod (a : t) (e : t) (m : t) : t =
  if is_zero m then raise Division_by_zero;
  if is_one m then zero
  else if is_zero e then rem one m
  else if is_even m then begin
    (* Right-to-left square and multiply with explicit reduction; even
       moduli never occur on hot paths. *)
    let e_bits = num_bits e in
    let acc = ref (rem one m) in
    let b = ref (rem a m) in
    for i = 0 to e_bits - 1 do
      if test_bit e i then acc := rem (mul !acc !b) m;
      if i < e_bits - 1 then b := rem (mul !b !b) m
    done;
    !acc
  end
  else pow_mod_ctx (mont_of_modulus m) a e

and pow_mod_ctx (ctx : mont) (a : t) (e : t) : t =
  if is_zero e then rem one ctx.modulus
  else begin
    let n = ctx.n in
    let am = mont_mul ctx (pad_to n (rem a ctx.modulus)) ctx.r2 in
    let acc = ref (mont_mul ctx (pad_to n one) ctx.r2) in
    for i = num_bits e - 1 downto 0 do
      acc := mont_mul ctx !acc !acc;
      if test_bit e i then acc := mont_mul ctx !acc am
    done;
    norm (mont_mul ctx !acc (pad_to n one))
  end

(* Modular inverse for prime modulus via Fermat's little theorem. Every
   modulus we invert under (EC field primes) is prime. *)
let mod_inverse_prime (a : t) (p : t) : t =
  let a = rem a p in
  if is_zero a then invalid_arg "Bignum.mod_inverse_prime: zero has no inverse";
  pow_mod a (sub p two) p

(* --- Prime-field elements in Montgomery form ----------------------------
   Elliptic-curve point arithmetic performs long chains of modular
   multiplications; keeping operands in Montgomery form makes each one a
   single CIOS pass instead of a multiply followed by binary division. *)

module Field = struct
  type ctx = mont
  type fe = int array (* n-limb, Montgomery form, < m *)

  (* Aliases for whole-number operations shadowed by the field ops below. *)
  let bignum_sub = sub

  let create (m : t) : ctx = mont_of_modulus m
  let modulus (c : ctx) = c.modulus

  let of_bignum (c : ctx) (a : t) : fe = mont_mul c (pad_to c.n (rem a c.modulus)) c.r2
  let to_bignum (c : ctx) (a : fe) : t = norm (mont_mul c a (pad_to c.n one))

  let zero (c : ctx) : fe = Array.make c.n 0
  let one (c : ctx) : fe = of_bignum c one

  let is_zero (a : fe) = Array.for_all (fun v -> v = 0) a
  let equal (a : fe) (b : fe) = a = b

  let add (c : ctx) (a : fe) (b : fe) : fe =
    let n = c.n in
    let out = Array.make n 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = a.(i) + b.(i) + !carry in
      out.(i) <- s land mask;
      carry := s lsr limb_bits
    done;
    (* Reduce once if out >= m (sum < 2m so one subtraction suffices). *)
    let ge =
      !carry > 0
      ||
      let rec go i =
        if i < 0 then true
        else if out.(i) <> c.m.(i) then out.(i) > c.m.(i)
        else go (i - 1)
      in
      go (n - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let d = out.(i) - c.m.(i) - !borrow in
        if d < 0 then begin
          out.(i) <- d + base;
          borrow := 1
        end
        else begin
          out.(i) <- d;
          borrow := 0
        end
      done
    end;
    out

  let sub (c : ctx) (a : fe) (b : fe) : fe =
    let n = c.n in
    let out = Array.make n 0 in
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        out.(i) <- d + base;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done;
    if !borrow = 1 then begin
      (* Underflow: add the modulus back. *)
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = out.(i) + c.m.(i) + !carry in
        out.(i) <- s land mask;
        carry := s lsr limb_bits
      done
    end;
    out

  let mul (c : ctx) (a : fe) (b : fe) : fe = mont_mul c a b
  let sqr (c : ctx) (a : fe) : fe = mont_mul c a a

  let mul_small (c : ctx) (a : fe) k =
    (* k is a small non-negative int (<= 8 in practice); double-and-add
       keeps this logarithmic — it sits on the EC hot path. *)
    if k = 0 then zero c
    else begin
      let rec go k = if k = 1 then a else
        let half = go (k / 2) in
        let dbl = add c half half in
        if k land 1 = 1 then add c dbl a else dbl
      in
      go k
    end

  let neg (c : ctx) (a : fe) : fe = sub c (zero c) a

  let inv (c : ctx) (a : fe) : fe =
    (* Fermat inversion; modulus is prime for every caller. *)
    let av = to_bignum c a in
    if is_zero av then invalid_arg "Field.inv: zero";
    of_bignum c (pow_mod_ctx c av (bignum_sub c.modulus two))

  let pow (c : ctx) (a : fe) (e : t) : fe =
    let acc = ref (one c) in
    for i = num_bits e - 1 downto 0 do
      acc := sqr c !acc;
      if test_bit e i then acc := mul c !acc a
    done;
    !acc
end

(* --- Conversions -------------------------------------------------------- *)

let of_bytes_be (s : string) : t =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?len (a : t) : string =
  let nbytes = (num_bits a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let width = match len with None -> nbytes | Some l -> l in
  if nbytes > width then invalid_arg "Bignum.to_bytes_be: value too wide";
  String.init width (fun i ->
      let byte_index = width - 1 - i in
      let bit = byte_index * 8 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      if limb >= Array.length a then '\000'
      else
        let lo = a.(limb) lsr off in
        let hi =
          if limb + 1 < Array.length a && off > limb_bits - 8 then
            a.(limb + 1) lsl (limb_bits - off)
          else 0
        in
        Char.chr ((lo lor hi) land 0xff))

let of_hex h = of_bytes_be (Wire.Hex.decode h)

let to_hex a = Wire.Hex.encode (to_bytes_be a)

let pp ppf a = Format.fprintf ppf "0x%s" (to_hex a)

(* Decimal rendering, for human-readable sizes in reports. *)
let to_decimal (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let ten = of_int 10 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod a ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int_exn r))
      end
    in
    go a;
    Buffer.contents buf
  end

let of_decimal (s : string) : t =
  if s = "" then invalid_arg "Bignum.of_decimal: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Bignum.of_decimal: bad digit")
    s;
  !acc
