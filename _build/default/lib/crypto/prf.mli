(** TLS 1.2 pseudorandom function (RFC 5246, section 5) and the standard
    handshake derivations built on it. *)

val p_sha256 : secret:string -> seed:string -> int -> string
val prf : secret:string -> label:string -> seed:string -> int -> string

val master_secret_len : int
(** 48 bytes. *)

val master_secret :
  pre_master:string -> client_random:string -> server_random:string -> string

val key_block : master:string -> client_random:string -> server_random:string -> int -> string

val verify_data_len : int
(** 12 bytes. *)

val client_finished : master:string -> handshake_hash:string -> string
val server_finished : master:string -> handshake_hash:string -> string
