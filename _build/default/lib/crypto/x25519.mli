(** X25519 Diffie-Hellman (RFC 7748). *)

val key_len : int
(** 32. *)

val scalar_mult : scalar:string -> u:string -> string
(** [scalar_mult ~scalar ~u] clamps [scalar] (32 bytes) and evaluates the
    Montgomery ladder at the u-coordinate [u] (32 bytes, little-endian). *)

val base_point : string
val public_of_private : string -> string

type keypair

val gen_keypair : Drbg.t -> keypair
val public_bytes : keypair -> string

val shared_secret : keypair -> peer_pub:string -> (string, string) result
(** Rejects low-order peer points (all-zero shared secret). *)
