(** Finite-field Diffie-Hellman key exchange, Miller-Rabin primality, and
    deterministic safe-prime group generation. *)

type group
(** A (p, g) group with a cached Montgomery context. *)

val make_group : name:string -> p:Bignum.t -> g:Bignum.t -> q_bits:int -> group
val group_name : group -> string
val group_p : group -> Bignum.t
val group_g : group -> Bignum.t

val oakley2 : group
(** The real 1024-bit MODP group (RFC 2409 Second Oakley Group),
    generator 2 — the group production DHE deployments shipped. *)

val is_probably_prime : ?rounds:int -> ?rng:Drbg.t -> Bignum.t -> bool
(** Miller-Rabin with trial division by small primes. *)

val generate : bits:int -> seed:string -> group
(** Deterministically generate a safe-prime group (p = 2q + 1, generator 4)
    of the given size, 16..256 bits. Small groups keep simulation sweeps
    tractable while exercising the same DH code path as {!oakley2}. *)

type keypair

val gen_keypair : group -> Drbg.t -> keypair
val public_bytes : keypair -> string
(** Fixed-width big-endian encoding of the public value, the bytes a TLS
    ServerKeyExchange carries (and the scanner compares for reuse). *)

val valid_public : group -> Bignum.t -> bool
(** Rejects 0, 1, p-1 and out-of-range values. *)

val shared_secret : keypair -> peer_pub:Bignum.t -> (string, string) result
val shared_secret_exn : keypair -> peer_pub:Bignum.t -> string
