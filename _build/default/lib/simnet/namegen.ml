(* Deterministic synthetic domain names for the long tail and for
   operator customer domains ("shop-kalora.example-cdn.net" style). Names
   only need to be unique, plausible and stable across runs. *)

let stems =
  [|
    "alpha"; "nova"; "kalora"; "vertex"; "lumen"; "orbit"; "pixel"; "quanta"; "raven";
    "solis"; "tundra"; "umbra"; "vela"; "willow"; "xenon"; "yonder"; "zephyr"; "arbor";
    "breeze"; "cinder"; "delta"; "ember"; "fjord"; "grove"; "harbor"; "isle"; "juniper";
    "krait"; "lotus"; "meadow"; "nimbus"; "onyx"; "prairie"; "quill"; "ridge"; "summit";
    "thicket"; "upland"; "vista"; "wharf";
  |]

let kinds =
  [|
    "shop"; "news"; "blog"; "mail"; "cloud"; "media"; "games"; "travel"; "bank"; "forum";
    "photo"; "video"; "music"; "store"; "tech"; "labs"; "app"; "web"; "data"; "net";
  |]

let tlds = [| "com"; "net"; "org"; "io"; "co"; "info"; "biz"; "ru"; "de"; "jp"; "fr"; "br" |]

(* [domain i] is unique for each non-negative [i]. *)
let domain i =
  let stem = stems.(i mod Array.length stems) in
  let kind = kinds.(i / Array.length stems mod Array.length kinds) in
  let tld = tlds.(i / (Array.length stems * Array.length kinds) mod Array.length tlds) in
  Printf.sprintf "%s-%s%d.%s" stem kind i tld

(* Customer domains of a named operator, e.g. "nova-shop83.cf-customer.example". *)
let operator_domain ~operator i =
  let stem = stems.(i mod Array.length stems) in
  let kind = kinds.((i / Array.length stems) mod Array.length kinds) in
  Printf.sprintf "%s-%s%d.%s-hosted.example" stem kind i operator
