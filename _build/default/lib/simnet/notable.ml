(* Case-study domains seeded to the behaviour the paper observed, so the
   "top domains with prolonged reuse" tables (Tables 2-4) reproduce
   nominally, not just statistically. Spans are in days over the 63-day
   study; a STEK/kex span of 63 means the same secret was seen on both the
   first and last day (and was likely in use before and after).

   The giant shared-infrastructure operators (CloudFlare, Google,
   Fastly, ...) live in {!Operators}; the entries here are individually
   operated domains. *)

type t = {
  name : string;
  rank : int; (* average Alexa rank over the study *)
  stek : [ `Span of int | `Daily | `No_tickets ];
  dhe_span : int option; (* Reuse_forever until a restart at this day *)
  ecdhe_span : int option;
  supports_dhe : bool;
  hint_override : int option; (* advertised ticket lifetime hint, seconds *)
  shared_stek : string option; (* domains with the same label share a STEK *)
}

let entry ?(stek = `Daily) ?dhe ?ecdhe ?(supports_dhe = true) ?hint ?stek_group name rank =
  {
    name;
    rank;
    stek;
    dhe_span = dhe;
    ecdhe_span = ecdhe;
    supports_dhe;
    hint_override = hint;
    shared_stek = stek_group;
  }

(* A domain's process-restart day: the maximum of its kex spans (one
   restart schedule per server process; the paper's per-domain DHE and
   ECDHE spans agree wherever both appear). *)
let kex_restart_day t =
  match (t.dhe_span, t.ecdhe_span) with
  | None, None -> None
  | Some a, None -> Some a
  | None, Some b -> Some b
  | Some a, Some b -> Some (max a b)

let all =
  [
    (* Table 2: prolonged STEK reuse among top domains. *)
    entry "yahoo.com" 5 ~stek:(`Span 63);
    entry "qq.com" 19 ~stek:(`Span 56);
    entry "taobao.com" 20 ~stek:(`Span 63);
    entry "pinterest.com" 21 ~stek:(`Span 63);
    entry "yandex.ru" 28 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "netflix.com" 31 ~stek:(`Span 54) ~dhe:59 ~ecdhe:59;
    entry "imgur.com" 35 ~stek:(`Span 63);
    entry "tmall.com" 41 ~stek:(`Span 63);
    entry "fc2.com" 53 ~stek:(`Span 18) ~dhe:18;
    entry "pornhub.com" 55 ~stek:(`Span 29);
    entry "mail.ru" 40 ~stek:(`Span 63);
    entry "slack.com" 152 ~stek:(`Span 18);
    (* The other seven yandex.[tld] properties, sharing yandex.ru's STEK
       schedule (all showed 63 days of reuse). *)
    entry "yandex.com.tr" 480 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "yandex.ua" 510 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "yandex.by" 710 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "yandex.kz" 820 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "yandex.com" 890 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "yandex.net" 1350 ~stek:(`Span 63) ~stek_group:"yandex";
    entry "yandex.st" 1600 ~stek:(`Span 63) ~stek_group:"yandex";
    (* Table 3: prolonged DHE reuse. *)
    entry "ebay.in" 392 ~dhe:7;
    entry "ebay.it" 456 ~dhe:8;
    entry "bleacherreport.com" 528 ~dhe:24 ~ecdhe:24;
    entry "kayak.com" 580 ~dhe:13;
    entry "cbssports.com" 592 ~dhe:60;
    entry "gamefaqs.com" 626 ~dhe:12;
    entry "overstock.com" 633 ~dhe:17;
    entry "cookpad.com" 730 ~dhe:63;
    entry "commsec.com.au" 2100 ~dhe:36;
    (* A sample of the 32 kayak.[tld] domains (6-18 days of DHE reuse). *)
    entry "kayak.co.uk" 4100 ~dhe:18;
    entry "kayak.de" 4900 ~dhe:14;
    entry "kayak.fr" 6200 ~dhe:11;
    entry "kayak.it" 8400 ~dhe:9;
    entry "kayak.es" 9000 ~dhe:6;
    (* Table 4: prolonged ECDHE reuse. *)
    entry "whatsapp.com" 74 ~ecdhe:62 ~supports_dhe:false;
    entry "vice.com" 158 ~ecdhe:26;
    entry "9gag.com" 221 ~ecdhe:31 ~supports_dhe:false;
    entry "liputan6.com" 322 ~ecdhe:28;
    entry "paytm.com" 353 ~ecdhe:27;
    entry "playstation.com" 464 ~ecdhe:11;
    entry "woot.com" 527 ~ecdhe:62 ~supports_dhe:false;
    entry "leagueoflegends.com" 615 ~ecdhe:27;
    entry "betterment.com" 21_000 ~ecdhe:62;
    entry "mint.com" 940 ~ecdhe:62;
    entry "symantec.com" 1230 ~ecdhe:41;
    entry "symanteccloud.com" 14_000 ~ecdhe:16;
    entry "norton.com" 3800 ~ecdhe:19;
    (* Section 4.2: the two domains advertising a 90-day lifetime hint. *)
    entry "fantabobworld.com" 310_000 ~hint:(90 * 86_400);
    entry "fantabobshow.com" 410_000 ~hint:(90 * 86_400);
  ]
