lib/simnet/namegen.ml: Array Printf
