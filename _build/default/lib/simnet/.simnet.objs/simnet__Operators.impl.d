lib/simnet/operators.ml: List Tls
