lib/simnet/clock.ml: Format
