lib/simnet/world.mli: Clock Tls
