lib/simnet/notable.ml:
