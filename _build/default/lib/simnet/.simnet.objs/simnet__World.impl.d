lib/simnet/world.ml: Array Char Clock Crypto Float Hashtbl List Namegen Notable Operators Option Printf Profile String Tls
