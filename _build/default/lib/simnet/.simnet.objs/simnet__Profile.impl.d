lib/simnet/profile.ml: Crypto Tls
