lib/simnet/clock.mli: Format
