(* A virtual clock. The whole stack reads time from here, which is what
   lets a nine-week measurement campaign run in seconds and remain
   deterministic. Time is integer seconds from the simulation epoch. *)

type t = { mutable now : int }

let create ?(start = 0) () =
  if start < 0 then invalid_arg "Clock.create: negative start";
  { now = start }

let now t = t.now

let advance t seconds =
  if seconds < 0 then invalid_arg "Clock.advance: cannot go backwards";
  t.now <- t.now + seconds

let set t time =
  if time < t.now then invalid_arg "Clock.set: cannot go backwards";
  t.now <- time

(* Conversions used throughout the experiments. *)
let second = 1
let minute = 60
let hour = 3600
let day = 86_400
let week = 7 * day

let day_of t = t.now / day

let pp ppf t =
  let d = t.now / day and rest = t.now mod day in
  Format.fprintf ppf "day %d %02d:%02d:%02d" d (rest / hour) (rest mod hour / minute)
    (rest mod minute)
