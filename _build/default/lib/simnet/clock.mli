(** The virtual clock the whole stack reads: a nine-week campaign runs in
    seconds and stays deterministic. Integer seconds; time never goes
    backwards. *)

type t

val create : ?start:int -> unit -> t
val now : t -> int

val advance : t -> int -> unit
(** Raises [Invalid_argument] on negative amounts. *)

val set : t -> int -> unit
(** Raises [Invalid_argument] if the target is in the past. *)

val second : int
val minute : int
val hour : int
val day : int
val week : int

val day_of : t -> int
val pp : Format.formatter -> t -> unit
