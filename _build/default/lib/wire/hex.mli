(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of the bytes of [s]. *)

val decode : string -> string
(** [decode h] parses hex back to raw bytes. Whitespace is ignored, so
    RFC test vectors can be pasted verbatim. Raises [Invalid_argument]
    on odd length or non-hex characters. *)

val decode_opt : string -> string option
(** Like {!decode} but returning [None] on malformed input. *)

val pp : Format.formatter -> string -> unit
(** Pretty-print a byte string as hex. *)
