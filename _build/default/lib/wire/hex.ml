(* Hexadecimal encoding and decoding of byte strings. *)

let hex_digit n =
  if n < 10 then Char.chr (Char.code '0' + n)
  else Char.chr (Char.code 'a' + n - 10)

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) (hex_digit (b lsr 4));
    Bytes.set out ((2 * i) + 1) (hex_digit (b land 0xf))
  done;
  Bytes.unsafe_to_string out

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode s =
  (* Accept embedded spaces and newlines so test vectors can be pasted
     verbatim from RFCs. *)
  let filtered = String.to_seq s |> Seq.filter (fun c -> c <> ' ' && c <> '\n' && c <> '\t') in
  let compact = String.of_seq filtered in
  let n = String.length compact in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((digit_value compact.[2 * i] lsl 4) lor digit_value compact.[(2 * i) + 1]))

let decode_opt s = try Some (decode s) with Invalid_argument _ -> None

let pp ppf s = Format.pp_print_string ppf (encode s)
