(** A growable byte-string builder with big-endian primitives matching the
    TLS presentation language (RFC 5246, section 4). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val to_string : t -> string

val u8 : t -> int -> unit
val u16 : t -> int -> unit
val u24 : t -> int -> unit
val u32 : t -> int -> unit

val u64 : t -> int -> unit
(** Writes the low 63 bits of a non-negative OCaml int as 8 bytes. *)

val bytes : t -> string -> unit

val vec8 : t -> string -> unit
(** Opaque vector with a one-byte length prefix. *)

val vec16 : t -> string -> unit
(** Opaque vector with a two-byte length prefix. *)

val vec24 : t -> string -> unit
(** Opaque vector with a three-byte length prefix. *)

val build : (t -> unit) -> string
(** [build f] runs [f] on a fresh writer and returns the accumulated bytes. *)

val u16_string : int -> string
val u24_string : int -> string
val u32_string : int -> string
val u64_string : int -> string
