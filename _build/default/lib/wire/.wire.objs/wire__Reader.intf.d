lib/wire/reader.mli:
