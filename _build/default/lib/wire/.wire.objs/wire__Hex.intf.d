lib/wire/hex.mli: Format
