lib/wire/writer.ml: Buffer Char String
