lib/wire/writer.mli:
