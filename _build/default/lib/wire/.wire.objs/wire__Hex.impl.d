lib/wire/hex.ml: Bytes Char Format Seq String
