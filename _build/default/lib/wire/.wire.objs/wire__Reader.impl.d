lib/wire/reader.ml: Char Format String
