(** Data behind Figures 6-7: service groups sized by weighted domain
    count and classed by secret longevity, rendered as a table plus a
    proportional ASCII mosaic. *)

type longevity_class = Under_1d | D1_to_7 | D7_to_30 | Over_30d

val classify_days : float -> longevity_class
val class_label : longevity_class -> string
val class_glyph : longevity_class -> char

type cell = {
  label : string;
  weighted_size : float;
  sampled_size : int;
  median_longevity_days : float;
  longevity : longevity_class;
}

val cells : longevity_days:(string -> float option) -> Service_groups.group list -> cell list
(** [longevity_days] looks up a member domain's measured secret lifetime. *)

val render : ?width:int -> ?max_cells:int -> cell list -> string
