(* The Section 6 vulnerability-window model.

   A domain's vulnerability window is the span of time around a
   forward-secret connection during which an attacker who obtains the
   server's stored secrets can decrypt it. Each mechanism contributes a
   lower bound, and the domain's overall window is the maximum
   (Section 6.4 / Figure 8):

   - session IDs: how long the server still resumed the session
     (Figure 1 measurement) — the state provably sat in the cache;
   - session tickets: how long the *STEK* lived. Cross-day STEK reuse
     (Figure 3 span) dominates; for daily rotators the bound falls back
     to the measured ticket-acceptance window (Figure 2);
   - (EC)DHE reuse: how long one server value was observed (Figure 5
     spans); same-burst repetition bounds at least the burst gap.

   All bounds are lower bounds: a server that stops *resuming* may still
   hold recoverable state (the paper makes the same caveat). *)

type components = {
  session_id_honored : int; (* seconds; 0 = none *)
  ticket_honored : int;
  stek_span_days : int; (* 0 = no tickets observed *)
  dhe_span_days : int;
  ecdhe_span_days : int;
}

type window = {
  domain : string;
  rank : int;
  weight : float;
  seconds : int; (* the combined window *)
  dominant : string; (* which mechanism set it *)
}

let day = 86_400

let mechanism_windows (c : components) =
  let ticket_window =
    if c.stek_span_days >= 2 then c.stek_span_days * day else c.ticket_honored
  in
  [
    ("session-cache", c.session_id_honored);
    ("session-ticket", ticket_window);
    ("dhe-reuse", if c.dhe_span_days >= 2 then c.dhe_span_days * day else 0);
    ("ecdhe-reuse", if c.ecdhe_span_days >= 2 then c.ecdhe_span_days * day else 0);
  ]

let combine ~domain ~rank ~weight c =
  let mechanisms = mechanism_windows c in
  let dominant, seconds =
    List.fold_left
      (fun (bm, bs) (m, s) -> if s > bs then (m, s) else (bm, bs))
      ("none", 0) mechanisms
  in
  { domain; rank; weight; seconds; dominant }

(* Assemble per-domain components from the experiment outputs, keyed by
   domain name. Domains must have participated in at least one mechanism
   (the paper's 288,252-domain population). *)
let assemble_components ~session_results ~ticket_results ~stek_spans ~dhe_spans ~ecdhe_spans =
  let honored tbl_of results =
    let tbl = Hashtbl.create 4096 in
    List.iter
      (fun (r : Scanner.Resumption_scan.domain_result) ->
        match tbl_of r with
        | Some delay -> Hashtbl.replace tbl r.Scanner.Resumption_scan.domain delay
        | None -> ())
      results;
    tbl
  in
  let id_honored = honored (fun r -> r.Scanner.Resumption_scan.max_honored) session_results in
  let ticket_honored = honored (fun r -> r.Scanner.Resumption_scan.max_honored) ticket_results in
  let span_tbl spans =
    let tbl = Hashtbl.create 4096 in
    List.iter
      (fun (s : Lifetime.domain_spans) ->
        Hashtbl.replace tbl s.Lifetime.domain (s.Lifetime.max_span_days, s.Lifetime.rank, s.Lifetime.weight))
      spans;
    tbl
  in
  let stek_tbl = span_tbl stek_spans in
  let dhe_tbl = span_tbl dhe_spans in
  let ecdhe_tbl = span_tbl ecdhe_spans in
  (* The domain universe: anything appearing in any input. *)
  let names = Hashtbl.create 4096 in
  let note_rank name rank weight = Hashtbl.replace names name (rank, weight) in
  Hashtbl.iter (fun name (_, r, w) -> note_rank name r w) stek_tbl;
  Hashtbl.iter (fun name (_, r, w) -> note_rank name r w) dhe_tbl;
  Hashtbl.iter (fun name (_, r, w) -> note_rank name r w) ecdhe_tbl;
  List.iter
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      if r.Scanner.Resumption_scan.https then
        note_rank r.Scanner.Resumption_scan.domain r.Scanner.Resumption_scan.rank
          r.Scanner.Resumption_scan.weight)
    (session_results @ ticket_results);
  Hashtbl.fold
    (fun name (rank, weight) acc ->
      let get0 tbl = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
      let span tbl =
        match Hashtbl.find_opt tbl name with Some (s, _, _) -> s | None -> 0
      in
      let c =
        {
          session_id_honored = get0 id_honored;
          ticket_honored = get0 ticket_honored;
          stek_span_days = span stek_tbl;
          dhe_span_days = span dhe_tbl;
          ecdhe_span_days = span ecdhe_tbl;
        }
      in
      (name, rank, weight, c) :: acc)
    names []

(* [mitigate] transforms components before combining — the Section 8.2
   what-if analyses (cap STEK spans at daily rotation, shorten caches,
   stop reusing ephemerals, ...). *)
let windows_of_components ?(mitigate = fun c -> c) components =
  List.map
    (fun (domain, rank, weight, c) -> combine ~domain ~rank ~weight (mitigate c))
    components

let assemble ~session_results ~ticket_results ~stek_spans ~dhe_spans ~ecdhe_spans =
  windows_of_components
    (assemble_components ~session_results ~ticket_results ~stek_spans ~dhe_spans ~ecdhe_spans)

(* Headline shares (Section 6.4): fractions of the population with
   windows above the paper's thresholds. *)
type summary = {
  population : float;
  over_1h : float;
  over_24h : float;
  over_7d : float;
  over_30d : float;
}

let summarize windows =
  let w f = List.fold_left (fun acc x -> if f x then acc +. x.weight else acc) 0.0 windows in
  {
    population = w (fun _ -> true);
    over_1h = w (fun x -> x.seconds > 3600);
    over_24h = w (fun x -> x.seconds > day);
    over_7d = w (fun x -> x.seconds > 7 * day);
    over_30d = w (fun x -> x.seconds > 30 * day);
  }

let cdf_points windows =
  List.map (fun x -> { Stats.value = float_of_int x.seconds; weight = x.weight }) windows
