lib/analysis/treemap.mli: Service_groups
