lib/analysis/union_find.ml: Hashtbl List Option String
