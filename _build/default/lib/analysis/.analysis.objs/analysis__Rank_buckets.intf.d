lib/analysis/rank_buckets.mli: Lifetime
