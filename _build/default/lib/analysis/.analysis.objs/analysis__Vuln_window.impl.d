lib/analysis/vuln_window.ml: Hashtbl Lifetime List Option Scanner Stats
