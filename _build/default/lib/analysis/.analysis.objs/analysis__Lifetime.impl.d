lib/analysis/lifetime.ml: Array Hashtbl List Scanner Stats
