lib/analysis/service_groups.ml: Hashtbl List Option Printf Scanner Simnet String Union_find
