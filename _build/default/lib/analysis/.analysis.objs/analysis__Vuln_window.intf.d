lib/analysis/vuln_window.mli: Lifetime Scanner Stats
