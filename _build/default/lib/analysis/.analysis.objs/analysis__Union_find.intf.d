lib/analysis/union_find.mli:
