lib/analysis/service_groups.mli: Hashtbl Scanner Simnet
