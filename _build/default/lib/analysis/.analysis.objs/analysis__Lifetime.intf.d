lib/analysis/lifetime.mli: Scanner Stats
