lib/analysis/treemap.ml: Buffer Float List Option Service_groups Stats String
