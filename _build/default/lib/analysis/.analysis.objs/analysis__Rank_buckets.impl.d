lib/analysis/rank_buckets.ml: Lifetime List Stats
