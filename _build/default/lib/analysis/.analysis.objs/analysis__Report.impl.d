lib/analysis/report.ml: Buffer List Printf Stats String
