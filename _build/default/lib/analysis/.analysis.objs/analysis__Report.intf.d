lib/analysis/report.mli: Stats
