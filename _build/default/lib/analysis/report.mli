(** Plain-text rendering: aligned tables and ASCII CDF plots, used by the
    bench harness to print every table and figure. *)

val pad : int -> string -> string
val pad_left : int -> string -> string

val table : headers:string list -> rows:string list list -> string
(** Aligned columns; numeric-looking cells right-aligned. *)

val fmt_pct : float -> string
(** [0.385] -> ["38.5%"]. *)

val fmt_count : float -> string
val fmt_float : ?digits:int -> float -> string

val ascii_cdf : ?height:int -> ticks:(float * string) list -> Stats.cdf -> string
(** The cumulative fraction at each labeled tick, drawn as columns. *)

val compare_line : label:string -> paper:string -> measured:string -> string
val section : string -> string
