(* Secret-lifetime estimation from the daily campaign (Sections 4.3-4.4).

   Following the paper, the lifetime of an identifier (a STEK key name or
   a server (EC)DHE value) at a domain is the span between the first and
   the last day the (identifier, domain) pair was observed — which
   absorbs the jitter of load-balanced fleets and transient failures: an
   identifier reappearing after a gap was evidently alive in between. *)

type field = Stek | Dhe | Ecdhe

let field_of_day (r : Scanner.Daily_scan.day_record) = function
  | Stek -> r.Scanner.Daily_scan.stek_id
  | Dhe -> r.Scanner.Daily_scan.dhe_value
  | Ecdhe -> r.Scanner.Daily_scan.ecdhe_value

type domain_spans = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;
  stable : bool;
  observed_days : int; (* days with a successful observation of the field *)
  distinct_values : int;
  max_span_days : int; (* 0 when the field was never observed *)
}

(* Max identifier span for [field] at one domain. *)
let spans_of_series ~field (s : Scanner.Daily_scan.domain_series) =
  let first_seen = Hashtbl.create 8 and last_seen = Hashtbl.create 8 in
  let observed = ref 0 in
  Array.iter
    (fun (r : Scanner.Daily_scan.day_record) ->
      match field_of_day r field with
      | None -> ()
      | Some v ->
          incr observed;
          if not (Hashtbl.mem first_seen v) then Hashtbl.replace first_seen v r.Scanner.Daily_scan.day;
          Hashtbl.replace last_seen v r.Scanner.Daily_scan.day)
    s.Scanner.Daily_scan.days;
  let max_span =
    Hashtbl.fold
      (fun v first acc -> max acc (Hashtbl.find last_seen v - first + 1))
      first_seen 0
  in
  {
    domain = s.Scanner.Daily_scan.domain;
    rank = s.Scanner.Daily_scan.rank;
    weight = s.Scanner.Daily_scan.weight;
    trusted = s.Scanner.Daily_scan.trusted;
    stable = s.Scanner.Daily_scan.stable;
    observed_days = !observed;
    distinct_values = Hashtbl.length first_seen;
    max_span_days = max_span;
  }

(* Spans for every (stable, trusted) domain in a campaign — the paper's
   analysis population. *)
let analyze ?(restrict_stable_trusted = true) ~field (campaign : Scanner.Daily_scan.t) =
  Array.to_list campaign.Scanner.Daily_scan.series
  |> List.filter_map (fun s ->
         if
           (not restrict_stable_trusted)
           || (s.Scanner.Daily_scan.stable && s.Scanner.Daily_scan.trusted)
         then Some (spans_of_series ~field s)
         else None)

(* Aggregate shares, weighted: the headline Section 4.3 / 4.4 numbers. *)
type summary = {
  population : float; (* weighted domain count considered *)
  never_observed : float;
  changed_daily : float; (* observed, max span = 1 day *)
  span_1d_plus : float; (* span of at least 2 calendar days *)
  span_7d_plus : float;
  span_30d_plus : float;
}

let summarize spans =
  let w f = List.fold_left (fun acc s -> if f s then acc +. s.weight else acc) 0.0 spans in
  {
    population = w (fun _ -> true);
    never_observed = w (fun s -> s.max_span_days = 0);
    changed_daily = w (fun s -> s.max_span_days = 1);
    span_1d_plus = w (fun s -> s.max_span_days >= 2);
    span_7d_plus = w (fun s -> s.max_span_days >= 7);
    span_30d_plus = w (fun s -> s.max_span_days >= 30);
  }

(* CDF input for Figures 3 and 5. *)
let span_points ?(include_unobserved = false) spans =
  List.filter_map
    (fun s ->
      if s.max_span_days = 0 && not include_unobserved then None
      else Some { Stats.value = float_of_int s.max_span_days; weight = s.weight })
    spans

(* Top reusers table (Tables 2-4): domains with span >= [min_days],
   ordered by Alexa rank. *)
let top_reusers ?(min_days = 7) ?(limit = 10) spans =
  List.filter (fun s -> s.max_span_days >= min_days) spans
  |> List.sort (fun a b -> compare a.rank b.rank)
  |> List.filteri (fun i _ -> i < limit)
