(* Weighted descriptive statistics for the analyses: empirical CDFs,
   percentiles and share-of-population counts. Weights are the sampling
   weights the world assigns (how many real Top Million domains a sampled
   domain represents), so weighted fractions estimate the fractions the
   paper reports. *)

type weighted = { value : float; weight : float }

let total_weight points = List.fold_left (fun acc p -> acc +. p.weight) 0.0 points

(* Weighted fraction of points satisfying a predicate. *)
let fraction points pred =
  let total = total_weight points in
  if total <= 0.0 then 0.0
  else
    List.fold_left (fun acc p -> if pred p.value then acc +. p.weight else acc) 0.0 points
    /. total

(* An empirical CDF: sorted (value, cumulative fraction) steps. *)
type cdf = (float * float) list

let cdf points : cdf =
  let sorted = List.sort (fun a b -> compare a.value b.value) points in
  let total = total_weight sorted in
  if total <= 0.0 then []
  else begin
    let acc = ref 0.0 in
    (* Collapse duplicate values to their final cumulative height. *)
    let steps =
      List.map
        (fun p ->
          acc := !acc +. p.weight;
          (p.value, !acc /. total))
        sorted
    in
    let rec dedup = function
      | (v1, _) :: ((v2, _) :: _ as rest) when v1 = v2 -> dedup rest
      | step :: rest -> step :: dedup rest
      | [] -> []
    in
    dedup steps
  end

(* Fraction of mass at or below [x]. *)
let cdf_at (c : cdf) x =
  let rec go last = function
    | [] -> last
    | (v, f) :: rest -> if v <= x then go f rest else last
  in
  go 0.0 c

let percentile points q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let sorted = List.sort (fun a b -> compare a.value b.value) points in
  let total = total_weight sorted in
  if total <= 0.0 then nan
  else begin
    let target = q *. total in
    let rec go acc = function
      | [] -> nan
      | [ p ] -> p.value
      | p :: rest -> if acc +. p.weight >= target then p.value else go (acc +. p.weight) rest
    in
    go 0.0 sorted
  end

let median points = percentile points 0.5

let mean points =
  let total = total_weight points in
  if total <= 0.0 then nan
  else List.fold_left (fun acc p -> acc +. (p.value *. p.weight)) 0.0 points /. total

(* Weighted histogram over explicit bucket upper bounds (ascending); the
   final bucket is open-ended. Returns per-bucket weight. *)
let histogram ~bounds points =
  let n = List.length bounds + 1 in
  let buckets = Array.make n 0.0 in
  let bounds_arr = Array.of_list bounds in
  List.iter
    (fun p ->
      let rec find i =
        if i >= Array.length bounds_arr then Array.length bounds_arr
        else if p.value <= bounds_arr.(i) then i
        else find (i + 1)
      in
      let i = find 0 in
      buckets.(i) <- buckets.(i) +. p.weight)
    points;
  buckets

(* Human-readable durations for axis labels. *)
let pp_duration ppf seconds =
  let s = int_of_float seconds in
  if s < 60 then Format.fprintf ppf "%ds" s
  else if s < 3600 then Format.fprintf ppf "%dm" (s / 60)
  else if s < 86_400 then Format.fprintf ppf "%dh" (s / 3600)
  else Format.fprintf ppf "%dd" (s / 86_400)

let duration_to_string seconds = Format.asprintf "%a" pp_duration seconds
