(** Service groups: sets of domains sharing TLS secret state (Section 5),
    built per mechanism — session caches from cross-probe edges (Table 5),
    STEKs from shared key names (Table 6), Diffie-Hellman values from
    shared server values (Table 7). Sizes are reported sampled and
    weighted (estimating real Top Million counts). *)

type group = {
  members : string list;
  sampled_size : int;
  weighted_size : float;
  label : string;  (** dominant operator *)
}

val build_groups : world:Simnet.World.t -> (string, string list) Hashtbl.t -> group list
(** Transitive closure over a key -> members index; singletons included.
    Sorted by weighted size, largest first. *)

val stek_groups : world:Simnet.World.t -> Scanner.Burst_scan.domain_result list -> group list
val dh_groups : world:Simnet.World.t -> Scanner.Burst_scan.domain_result list -> group list
val session_cache_groups : world:Simnet.World.t -> Scanner.Cross_probe.result -> group list

val top_coverage : ?k:int -> group list -> population_weight:float -> float
(** Weighted share of a population covered by the [k] largest groups
    (Section 6's concentration-of-secrets measure). *)

type summary = {
  n_groups : int;
  n_singletons : int;
  largest : group option;
  multi_domain_weight : float;
}

val summarize : group list -> summary
