(** Figure 4: STEK lifetime by Alexa rank, bucketed in cumulative tiers
    (Top 100 / 1K / 10K / 100K / 1M). *)

type tier = { upper_rank : int; label : string }

val tiers : tier list

type tier_summary = {
  t : tier;
  issuers : float;  (** weighted ticket-issuing domains in the tier *)
  sampled_issuers : int;
  share_1d : float;
  share_2_6d : float;
  share_7_29d : float;
  share_30d_plus : float;
  median_days : float;
}

val analyze : Lifetime.domain_spans list -> tier_summary list
