(* Plain-text rendering: aligned tables and ASCII CDF plots, used by the
   bench harness to print every table and figure of the paper. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(* [table ~headers rows] renders an aligned table; numeric-looking cells
   are right-aligned. *)
let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let cell r i = match List.nth_opt r i with Some c -> c | None -> "" in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (cell r i))) 0 all)
  in
  let numeric s =
    s <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || List.mem c [ '.'; ','; '%'; '-'; '+' ]) s
  in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun i w ->
           let c = cell r i in
           if numeric c then pad_left w c else pad w c)
         widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row headers :: sep :: List.map render_row rows)

let fmt_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let fmt_count f = Printf.sprintf "%.0f" f
let fmt_float ?(digits = 1) f = Printf.sprintf "%.*f" digits f

(* ASCII CDF: x positions are the given labeled ticks (log-ish axes in
   the paper), the curve is the cumulative fraction at each tick. *)
let ascii_cdf ?(height = 12) ~ticks (c : Stats.cdf) =
  let fractions = List.map (fun (x, _) -> Stats.cdf_at c x) ticks in
  let buf = Buffer.create 1024 in
  for row = height downto 1 do
    let level = float_of_int row /. float_of_int height in
    let prev_level = float_of_int (row - 1) /. float_of_int height in
    Buffer.add_string buf (Printf.sprintf "%3.0f%% |" (100.0 *. level));
    List.iter
      (fun f ->
        let ch = if f >= level then '#' else if f > prev_level then ':' else ' ' in
        Buffer.add_string buf (Printf.sprintf "  %c  " ch))
      fractions;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "     +";
  List.iter (fun _ -> Buffer.add_string buf "-----") ticks;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "      ";
  List.iter (fun (_, label) -> Buffer.add_string buf (pad 5 label)) ticks;
  Buffer.contents buf

(* A one-line comparison row for EXPERIMENTS.md-style summaries. *)
let compare_line ~label ~paper ~measured =
  Printf.sprintf "  %-42s paper: %-12s measured: %s" label paper measured

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "\n%s\n= %s =\n%s" bar title bar
