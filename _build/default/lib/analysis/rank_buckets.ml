(* Figure 4: STEK lifetime as a function of Alexa rank. Domains are
   bucketed by rank tier (Top 100 / 1K / 10K / 100K / 1M, cumulative like
   the paper's axis) and each tier reports its STEK-span distribution. *)

type tier = { upper_rank : int; label : string }

let tiers =
  [
    { upper_rank = 100; label = "Top 100" };
    { upper_rank = 1_000; label = "Top 1K" };
    { upper_rank = 10_000; label = "Top 10K" };
    { upper_rank = 100_000; label = "Top 100K" };
    { upper_rank = 1_000_000; label = "Top 1M" };
  ]

type tier_summary = {
  t : tier;
  issuers : float; (* weighted ticket-issuing domains in the tier *)
  sampled_issuers : int;
  share_1d : float; (* STEK changed daily *)
  share_2_6d : float;
  share_7_29d : float;
  share_30d_plus : float;
  median_days : float;
}

(* [spans] must already be restricted to the analysis population; only
   domains that ever issued a ticket (span >= 1) count as issuers. *)
let analyze (spans : Lifetime.domain_spans list) =
  List.map
    (fun t ->
      let members =
        List.filter
          (fun (s : Lifetime.domain_spans) ->
            s.Lifetime.rank <= t.upper_rank && s.Lifetime.max_span_days >= 1)
          spans
      in
      let total = List.fold_left (fun acc s -> acc +. s.Lifetime.weight) 0.0 members in
      let share f =
        if total <= 0.0 then 0.0
        else
          List.fold_left (fun acc s -> if f s then acc +. s.Lifetime.weight else acc) 0.0 members
          /. total
      in
      let points =
        List.map
          (fun (s : Lifetime.domain_spans) ->
            { Stats.value = float_of_int s.Lifetime.max_span_days; weight = s.Lifetime.weight })
          members
      in
      {
        t;
        issuers = total;
        sampled_issuers = List.length members;
        share_1d = share (fun s -> s.Lifetime.max_span_days = 1);
        share_2_6d = share (fun s -> s.Lifetime.max_span_days >= 2 && s.Lifetime.max_span_days <= 6);
        share_7_29d = share (fun s -> s.Lifetime.max_span_days >= 7 && s.Lifetime.max_span_days <= 29);
        share_30d_plus = share (fun s -> s.Lifetime.max_span_days >= 30);
        median_days = Stats.median points;
      })
    tiers
