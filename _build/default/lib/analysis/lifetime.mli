(** Secret-lifetime estimation from the daily campaign (Sections 4.3-4.4):
    the lifetime of a STEK or server (EC)DHE value at a domain is the span
    between the first and last day the (identifier, domain) pair was
    observed, which absorbs load-balancer jitter. *)

type field = Stek | Dhe | Ecdhe

type domain_spans = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;
  stable : bool;
  observed_days : int;
  distinct_values : int;
  max_span_days : int;  (** 0 when the field was never observed *)
}

val spans_of_series : field:field -> Scanner.Daily_scan.domain_series -> domain_spans

val analyze :
  ?restrict_stable_trusted:bool -> field:field -> Scanner.Daily_scan.t -> domain_spans list
(** Defaults to the paper's analysis population (stable and trusted). *)

type summary = {
  population : float;
  never_observed : float;
  changed_daily : float;  (** observed, max span one day *)
  span_1d_plus : float;  (** span of at least two calendar days *)
  span_7d_plus : float;
  span_30d_plus : float;
}

val summarize : domain_spans list -> summary

val span_points : ?include_unobserved:bool -> domain_spans list -> Stats.weighted list
(** CDF input for Figures 3 and 5. *)

val top_reusers : ?min_days:int -> ?limit:int -> domain_spans list -> domain_spans list
(** Tables 2-4: longest reusers ordered by Alexa rank. *)
