(* Data behind Figures 6 and 7: service groups sized by (weighted) domain
   count and colored by secret longevity. The rendering is textual — a
   table plus a proportional ASCII mosaic — but carries the same
   information as the paper's treemaps: which groups are big, and which
   big groups hold their secrets dangerously long. *)

type longevity_class = Under_1d | D1_to_7 | D7_to_30 | Over_30d

let classify_days d =
  if d < 2.0 then Under_1d else if d < 7.0 then D1_to_7 else if d < 30.0 then D7_to_30 else Over_30d

let class_label = function
  | Under_1d -> "<1d"
  | D1_to_7 -> "1-7d"
  | D7_to_30 -> "7-30d"
  | Over_30d -> ">=30d"

(* The mosaic glyph encodes the longevity class: benign groups are light,
   long-lived ones solid (the paper's red). *)
let class_glyph = function
  | Under_1d -> '.'
  | D1_to_7 -> '+'
  | D7_to_30 -> 'x'
  | Over_30d -> '#'

type cell = {
  label : string;
  weighted_size : float;
  sampled_size : int;
  median_longevity_days : float;
  longevity : longevity_class;
}

(* Build cells from service groups and a per-domain longevity lookup
   (days). Groups whose members have no measured longevity get 0. *)
let cells ~longevity_days (groups : Service_groups.group list) =
  List.map
    (fun (g : Service_groups.group) ->
      let values =
        List.filter_map
          (fun m ->
            Option.map
              (fun d -> { Stats.value = d; weight = 1.0 })
              (longevity_days m))
          g.Service_groups.members
      in
      let median = if values = [] then 0.0 else Stats.median values in
      {
        label = g.Service_groups.label;
        weighted_size = g.Service_groups.weighted_size;
        sampled_size = g.Service_groups.sampled_size;
        median_longevity_days = median;
        longevity = classify_days median;
      })
    groups

(* One proportional-width mosaic row per size tier, largest first. *)
let render ?(width = 72) ?(max_cells = 40) cells =
  let cells =
    List.sort (fun a b -> compare b.weighted_size a.weighted_size) cells
    |> List.filteri (fun i _ -> i < max_cells)
  in
  let total = List.fold_left (fun acc c -> acc +. c.weighted_size) 0.0 cells in
  if total <= 0.0 then "(no groups)"
  else begin
    let buf = Buffer.create 1024 in
    List.iter
      (fun c ->
        let w = max 1 (int_of_float (Float.round (c.weighted_size /. total *. float_of_int width))) in
        Buffer.add_string buf (String.make w (class_glyph c.longevity));
        Buffer.add_char buf '|')
      cells;
    Buffer.add_string buf "\n  legend: . <1d   + 1-7d   x 7-30d   # >=30d  (width ~ weighted domains)";
    Buffer.contents buf
  end
