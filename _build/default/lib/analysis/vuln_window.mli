(** The Section 6 vulnerability-window model: per-domain lower bounds on
    how long an attacker who later obtains the server's stored secrets
    can decrypt a recorded "forward secret" connection, combined across
    mechanisms (max wins, Section 6.4 / Figure 8). *)

type components = {
  session_id_honored : int;  (** measured resumption window, seconds *)
  ticket_honored : int;
  stek_span_days : int;
  dhe_span_days : int;
  ecdhe_span_days : int;
}

type window = {
  domain : string;
  rank : int;
  weight : float;
  seconds : int;
  dominant : string;  (** which mechanism set the window *)
}

val mechanism_windows : components -> (string * int) list
val combine : domain:string -> rank:int -> weight:float -> components -> window

val assemble_components :
  session_results:Scanner.Resumption_scan.domain_result list ->
  ticket_results:Scanner.Resumption_scan.domain_result list ->
  stek_spans:Lifetime.domain_spans list ->
  dhe_spans:Lifetime.domain_spans list ->
  ecdhe_spans:Lifetime.domain_spans list ->
  (string * int * float * components) list
(** Per-domain components over the union of all inputs'
    (name, rank, weight). *)

val windows_of_components :
  ?mitigate:(components -> components) -> (string * int * float * components) list -> window list
(** [mitigate] transforms components first — the Section 8.2 what-ifs. *)

val assemble :
  session_results:Scanner.Resumption_scan.domain_result list ->
  ticket_results:Scanner.Resumption_scan.domain_result list ->
  stek_spans:Lifetime.domain_spans list ->
  dhe_spans:Lifetime.domain_spans list ->
  ecdhe_spans:Lifetime.domain_spans list ->
  window list

type summary = {
  population : float;
  over_1h : float;
  over_24h : float;
  over_7d : float;
  over_30d : float;
}

val summarize : window list -> summary
val cdf_points : window list -> Stats.weighted list
