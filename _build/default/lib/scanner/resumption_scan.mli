(** The resumption-lifetime experiments of Sections 4.1-4.2 (Figures 1
    and 2): initial handshake, resume at +1 s, then every 5 minutes until
    the server declines or 24 hours pass. Ticket mode keeps offering the
    first ticket even when the server reissues, as the paper does. *)

type mode = Session_ids | Tickets

type domain_result = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;
  stable : bool;
  https : bool;  (** initial connection succeeded *)
  supports : bool;  (** set a session ID / issued a ticket *)
  resumed_at_1s : bool;
  max_honored : int option;  (** largest delay (seconds) that still resumed *)
  hint : int option;  (** advertised ticket lifetime hint *)
}

val interval : int
(** 5 minutes. *)

val run :
  Probe.t ->
  mode:mode ->
  ?max_delay:int ->
  ?domains:Simnet.World.domain list option ->
  unit ->
  domain_result list
