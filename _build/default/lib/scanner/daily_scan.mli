(** The longitudinal campaign of Sections 4.3-4.4: daily scans over nine
    weeks recording STEK identifiers and (EC)DHE server values — a
    default (all-suites, tickets-on) sweep and a DHE-only sweep per day.
    Domains absent from that day's list are skipped, so churn shows up in
    the data. Campaigns serialize to CSV (the scans.io analog). *)

type day_record = {
  day : int;  (** day index from campaign start *)
  present : bool;
  default_ok : bool;
  stek_id : string option;
  ticket_hint : int option;
  ecdhe_value : string option;
  dhe_ok : bool;
  dhe_value : string option;
}

type domain_series = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;  (** ever presented a trusted chain *)
  stable : bool;
  days : day_record array;
}

type t = { start_day : int; n_days : int; series : domain_series array }

val run : Simnet.World.t -> days:int -> ?progress:(int -> unit) -> unit -> t
(** Runs the campaign, advancing the world's clock day by day; leaves the
    clock at the campaign's end. *)

val csv_header : string
val save : t -> string -> unit
val load : string -> (t, string) result
