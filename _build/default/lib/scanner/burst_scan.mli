(** Burst scans: several connections per domain in (or spread over) a
    window — the Table 1 experiment ("10 connections in quick
    succession") and the service-group scans of Sections 5.2-5.3. *)

type domain_result = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;
  attempts : int;
  successes : int;
  conns : Observation.conn list;  (** oldest first *)
}

val result_values : field:[ `Stek | `Dhe | `Ecdhe ] -> domain_result -> string list
(** The observed identifiers of one kind, in connection order. *)

val repeats : string list -> bool * bool
(** [(some value seen >= 2x, all sightings identical)] — the Table 1
    reuse columns. Both are false for fewer than two sightings. *)

val run :
  Probe.t ->
  ?domains:Simnet.World.domain list option ->
  rounds:int ->
  gap:int ->
  unit ->
  domain_result list
(** [rounds] sweeps over the target list, advancing the virtual clock by
    [gap] seconds between sweeps. *)
