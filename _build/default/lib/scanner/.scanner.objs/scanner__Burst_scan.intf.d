lib/scanner/burst_scan.mli: Observation Probe Simnet
