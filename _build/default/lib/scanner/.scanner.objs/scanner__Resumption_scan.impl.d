lib/scanner/resumption_scan.ml: Array Hashtbl List Observation Probe Simnet Tls
