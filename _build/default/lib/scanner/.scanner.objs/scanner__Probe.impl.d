lib/scanner/probe.ml: Crypto Hashtbl Observation Option Result Simnet String Tls Wire
