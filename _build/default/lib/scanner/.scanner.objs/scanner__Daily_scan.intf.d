lib/scanner/daily_scan.mli: Simnet
