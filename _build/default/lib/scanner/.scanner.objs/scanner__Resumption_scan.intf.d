lib/scanner/resumption_scan.mli: Probe Simnet
