lib/scanner/burst_scan.ml: Array Hashtbl List Observation Option Probe Simnet String
