lib/scanner/observation.mli: Tls
