lib/scanner/daily_scan.ml: Array Fun Hashtbl List Observation Option Printf Probe Result Simnet String
