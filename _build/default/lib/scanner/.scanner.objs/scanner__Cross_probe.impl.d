lib/scanner/cross_probe.ml: Array Crypto List Observation Probe Simnet String
