lib/scanner/cross_probe.mli: Simnet
