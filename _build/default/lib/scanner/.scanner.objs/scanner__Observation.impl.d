lib/scanner/observation.ml: Fun List Option Printf String Tls
