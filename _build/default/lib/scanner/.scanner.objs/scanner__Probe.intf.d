lib/scanner/probe.mli: Hashtbl Observation Simnet Tls
