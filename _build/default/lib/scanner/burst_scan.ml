(* Burst scans: several connections to each domain in quick succession,
   the experiment behind Table 1 (support for forward secrecy and
   resumption; "N connections, >= 2x same server KEX value / STEK ID")
   and behind the service-group scans of Sections 5.2-5.3 (connections
   spread over a multi-hour window).

   The probes walk the whole domain list once per round so the global
   clock can advance between rounds, exactly like a ZMap sweep. *)

type domain_result = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;
  attempts : int;
  successes : int;
  conns : Observation.conn list; (* most recent last *)
}

let result_values ~field r =
  List.filter_map
    (fun (c : Observation.conn) ->
      match field with
      | `Stek -> c.Observation.stek_id
      | `Dhe -> c.Observation.dhe_value
      | `Ecdhe -> c.Observation.ecdhe_value)
    r.conns

(* Did at least two connections present the same value? all of them? *)
let repeats values =
  match values with
  | [] -> (false, false)
  | first :: _ ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun v -> Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
        values;
      let any_repeat = Hashtbl.fold (fun _ n acc -> acc || n >= 2) tbl false in
      let all_same = List.for_all (String.equal first) values in
      (any_repeat && List.length values >= 2, all_same && List.length values >= 2)

(* [run] performs [rounds] sweeps, advancing the clock by [gap] seconds
   between sweeps (paper: 10 connections in quick succession for Table 1;
   10 over six hours for STEK groups; 10 over five hours for DH groups). *)
let run probe ?(domains = None) ~rounds ~gap () =
  let world = probe.Probe.world in
  let clock = Simnet.World.clock world in
  let targets =
    match domains with
    | Some l -> l
    | None -> Array.to_list (Simnet.World.domains world)
  in
  let acc =
    List.map
      (fun d ->
        ( d,
          {
            domain = Simnet.World.domain_name d;
            rank = Simnet.World.domain_rank d;
            weight = Simnet.World.domain_weight d;
            trusted = false;
            attempts = 0;
            successes = 0;
            conns = [];
          } ))
      targets
  in
  let acc = ref acc in
  for round = 1 to rounds do
    acc :=
      List.map
        (fun (d, r) ->
          let obs, _ = Probe.connect probe ~domain:r.domain in
          ( d,
            {
              r with
              trusted = r.trusted || obs.Observation.trusted;
              attempts = r.attempts + 1;
              successes = (r.successes + if obs.Observation.ok then 1 else 0);
              conns = r.conns @ [ obs ];
            } ))
        !acc;
    if round < rounds then Simnet.Clock.advance clock gap
  done;
  List.map snd !acc
