(* RFC 5077 session tickets: the server's session state, sealed under a
   STEK and handed to the client.

       struct {
           opaque key_name[16];
           opaque iv[16];
           opaque encrypted_state<0..2^16-1>;
           opaque mac[32];
       } ticket;

   Encryption is AES-128-CBC and the MAC is HMAC-SHA256 over
   key_name || iv || encrypted_state, exactly the construction the RFC
   recommends. Anyone holding the STEK can open every ticket sealed with
   it — which is the paper's central attack (Section 6.1). *)

let iv_len = 16
let mac_len = 32

let seal stek rng (session : Session.t) =
  let iv = Crypto.Drbg.generate rng iv_len in
  let encrypted = Crypto.Block_mode.cbc_encrypt (Stek.aes_key stek) ~iv (Session.to_bytes session) in
  let body =
    Wire.Writer.build (fun w ->
        Wire.Writer.bytes w (Stek.key_name stek);
        Wire.Writer.bytes w iv;
        Wire.Writer.vec16 w encrypted)
  in
  body ^ Crypto.Hmac.sha256 ~key:(Stek.hmac_key stek) body

(* The key name is visible to anyone holding the ticket (it rides outside
   the encryption); the scanner uses it to track STEK lifetimes. *)
let peek_key_name ticket =
  if String.length ticket < Stek.key_name_len then None
  else Some (String.sub ticket 0 Stek.key_name_len)

type unseal_error =
  | Too_short
  | Unknown_key_name of string
  | Bad_mac
  | Corrupt_state of string

let pp_unseal_error ppf = function
  | Too_short -> Format.fprintf ppf "ticket too short"
  | Unknown_key_name n -> Format.fprintf ppf "unknown STEK key name %s" (Wire.Hex.encode n)
  | Bad_mac -> Format.fprintf ppf "ticket MAC check failed"
  | Corrupt_state e -> Format.fprintf ppf "corrupt ticket state: %s" e

(* [unseal ~find_stek ticket] resolves the STEK by key name (a server may
   accept tickets from several recent STEKs while issuing with the newest
   one, as Google's 14h-issue / 28h-accept schedule does). *)
let unseal ~find_stek ticket =
  let n = String.length ticket in
  if n < Stek.key_name_len + iv_len + 2 + mac_len then Error Too_short
  else begin
    let key_name = String.sub ticket 0 Stek.key_name_len in
    match find_stek key_name with
    | None -> Error (Unknown_key_name key_name)
    | Some stek ->
        let body = String.sub ticket 0 (n - mac_len) in
        let mac = String.sub ticket (n - mac_len) mac_len in
        if not (Crypto.Hmac.verify ~key:(Stek.hmac_key stek) ~msg:body ~tag:mac) then Error Bad_mac
        else begin
          let parse r =
            let _key_name = Wire.Reader.take r Stek.key_name_len in
            let iv = Wire.Reader.take r iv_len in
            let encrypted = Wire.Reader.vec16 r in
            (iv, encrypted)
          in
          match Wire.Reader.parse_result body parse with
          | Error e -> Error (Corrupt_state e)
          | Ok (iv, encrypted) -> (
              match Crypto.Block_mode.cbc_decrypt (Stek.aes_key stek) ~iv encrypted with
              | Error e -> Error (Corrupt_state e)
              | Ok plain -> (
                  match Session.of_bytes plain with
                  | Error e -> Error (Corrupt_state e)
                  | Ok session -> Ok session))
        end
  end

(* The passive attack the paper quantifies: given a recorded ticket and a
   stolen STEK, recover the session (and with it every session key). *)
let decrypt_with_stolen_stek = unseal
