(** A deliberately small X.509 stand-in with real ECDSA signatures: the
    measurements need working trust evaluation (is the chain
    browser-trusted, valid at scan time, covering the hostname?), not
    DER/ASN.1 fidelity. See DESIGN.md on this substitution. *)

type t

val subject : t -> string
val issuer : t -> string
val public_key : t -> string
(** SEC1 point bytes on the PKI curve. *)

val is_ca : t -> bool
val validity : t -> int * int

val tbs_bytes : t -> string
(** The to-be-signed encoding the signature covers. *)

val to_bytes : t -> string
val of_bytes : string -> (t, string) result
val read : Wire.Reader.t -> t

(** {2 Authorities} *)

type authority

val authority_cert : authority -> t
val authority_keypair : authority -> Crypto.Ecdsa.keypair

val authority_of : cert:t -> keypair:Crypto.Ecdsa.keypair -> authority
(** Wrap an issued CA certificate (e.g. an intermediate) so it can issue
    further certificates. *)

val self_signed :
  curve:Crypto.Ec.curve ->
  name:string ->
  not_before:int ->
  not_after:int ->
  serial:int ->
  Crypto.Drbg.t ->
  authority

val issue :
  authority ->
  curve:Crypto.Ec.curve ->
  subject:string ->
  ?sans:string list ->
  ?is_ca:bool ->
  not_before:int ->
  not_after:int ->
  serial:int ->
  pub:string ->
  Crypto.Drbg.t ->
  t

(** {2 Validation} *)

type validation_error =
  | Expired of string
  | Not_yet_valid of string
  | Bad_signature of string
  | Untrusted_root of string
  | Name_mismatch of { hostname : string; cert : string }
  | Empty_chain
  | Not_a_ca of string
  | Not_evaluated  (** the client was configured not to evaluate trust *)

val pp_validation_error : Format.formatter -> validation_error -> unit

type root_store
(** Trusted root names and keys — the moral equivalent of the NSS store
    the paper validates against. *)

val empty_store : unit -> root_store
val add_root : root_store -> t -> unit
val store_of_list : t list -> root_store

val name_matches : hostname:string -> string -> bool
(** Wildcard matching: ["*.example.com"] covers exactly one extra label;
    case-insensitive. *)

val covers_hostname : t -> hostname:string -> bool

val validate :
  curve:Crypto.Ec.curve ->
  store:root_store ->
  now:int ->
  hostname:string ->
  t list ->
  (t, validation_error) result
(** Validate a chain (leaf first) at time [now] for [hostname]; returns
    the leaf on success. *)
