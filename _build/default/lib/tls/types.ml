(* Core TLS protocol types and constants (RFC 5246 subset) shared across
   the handshake, record and resumption machinery. *)

type version = TLS_1_0 | TLS_1_1 | TLS_1_2

let version_to_int = function TLS_1_0 -> 0x0301 | TLS_1_1 -> 0x0302 | TLS_1_2 -> 0x0303

let version_of_int = function
  | 0x0301 -> Some TLS_1_0
  | 0x0302 -> Some TLS_1_1
  | 0x0303 -> Some TLS_1_2
  | _ -> None

let pp_version ppf v =
  Format.pp_print_string ppf
    (match v with TLS_1_0 -> "TLS1.0" | TLS_1_1 -> "TLS1.1" | TLS_1_2 -> "TLS1.2")

(* Key exchange families. [Static_ecdh] stands in for the non-forward-secret
   key exchanges (RSA key transport in the paper): the client computes a DH
   share against the *certificate's* long-term key, so compromising the
   long-term key retroactively decrypts everything — exactly the property
   the paper contrasts (EC)DHE against. *)
type key_exchange = Dhe | Ecdhe | Static_ecdh

let pp_key_exchange ppf k =
  Format.pp_print_string ppf
    (match k with Dhe -> "DHE" | Ecdhe -> "ECDHE" | Static_ecdh -> "ECDH-static")

(* Cipher suites: the study cares about the key exchange; symmetric
   protection is uniformly AES-128-CTR + HMAC-SHA256 in this
   implementation. Code points are from the private-use range. *)
type cipher_suite =
  | ECDHE_ECDSA_AES128_SHA256
  | DHE_ECDSA_AES128_SHA256
  | ECDH_ECDSA_AES128_SHA256

let all_cipher_suites =
  [ ECDHE_ECDSA_AES128_SHA256; DHE_ECDSA_AES128_SHA256; ECDH_ECDSA_AES128_SHA256 ]

let suite_to_int = function
  | ECDHE_ECDSA_AES128_SHA256 -> 0xffa1
  | DHE_ECDSA_AES128_SHA256 -> 0xffa2
  | ECDH_ECDSA_AES128_SHA256 -> 0xffa3

let suite_of_int = function
  | 0xffa1 -> Some ECDHE_ECDSA_AES128_SHA256
  | 0xffa2 -> Some DHE_ECDSA_AES128_SHA256
  | 0xffa3 -> Some ECDH_ECDSA_AES128_SHA256
  | _ -> None

let suite_kex = function
  | ECDHE_ECDSA_AES128_SHA256 -> Ecdhe
  | DHE_ECDSA_AES128_SHA256 -> Dhe
  | ECDH_ECDSA_AES128_SHA256 -> Static_ecdh

let suite_forward_secret s = match suite_kex s with Dhe | Ecdhe -> true | Static_ecdh -> false

let pp_cipher_suite ppf s =
  Format.pp_print_string ppf
    (match s with
    | ECDHE_ECDSA_AES128_SHA256 -> "ECDHE-ECDSA-AES128-SHA256"
    | DHE_ECDSA_AES128_SHA256 -> "DHE-ECDSA-AES128-SHA256"
    | ECDH_ECDSA_AES128_SHA256 -> "ECDH-ECDSA-AES128-SHA256")

(* Alerts: the subset of RFC 5246 alert descriptions the engines emit. *)
type alert =
  | Close_notify
  | Unexpected_message
  | Bad_record_mac
  | Handshake_failure
  | Bad_certificate
  | Certificate_expired
  | Certificate_unknown
  | Unknown_ca
  | Decode_error
  | Decrypt_error
  | Protocol_version
  | Illegal_parameter

let alert_to_int = function
  | Close_notify -> 0
  | Unexpected_message -> 10
  | Bad_record_mac -> 20
  | Handshake_failure -> 40
  | Bad_certificate -> 42
  | Certificate_expired -> 45
  | Certificate_unknown -> 46
  | Unknown_ca -> 48
  | Decode_error -> 50
  | Decrypt_error -> 51
  | Protocol_version -> 70
  | Illegal_parameter -> 47

let alert_of_int = function
  | 0 -> Some Close_notify
  | 10 -> Some Unexpected_message
  | 20 -> Some Bad_record_mac
  | 40 -> Some Handshake_failure
  | 42 -> Some Bad_certificate
  | 45 -> Some Certificate_expired
  | 46 -> Some Certificate_unknown
  | 48 -> Some Unknown_ca
  | 50 -> Some Decode_error
  | 51 -> Some Decrypt_error
  | 70 -> Some Protocol_version
  | 47 -> Some Illegal_parameter
  | _ -> None

let pp_alert ppf a =
  Format.pp_print_string ppf
    (match a with
    | Close_notify -> "close_notify"
    | Unexpected_message -> "unexpected_message"
    | Bad_record_mac -> "bad_record_mac"
    | Handshake_failure -> "handshake_failure"
    | Bad_certificate -> "bad_certificate"
    | Certificate_expired -> "certificate_expired"
    | Certificate_unknown -> "certificate_unknown"
    | Unknown_ca -> "unknown_ca"
    | Decode_error -> "decode_error"
    | Decrypt_error -> "decrypt_error"
    | Protocol_version -> "protocol_version"
    | Illegal_parameter -> "illegal_parameter")

type content_type = Change_cipher_spec | Alert_ct | Handshake_ct | Application_data

let content_type_to_int = function
  | Change_cipher_spec -> 20
  | Alert_ct -> 21
  | Handshake_ct -> 22
  | Application_data -> 23

let content_type_of_int = function
  | 20 -> Some Change_cipher_spec
  | 21 -> Some Alert_ct
  | 22 -> Some Handshake_ct
  | 23 -> Some Application_data
  | _ -> None

(* Byte widths fixed by the protocol. *)
let random_len = 32
let session_id_max = 32
let verify_data_len = 12
