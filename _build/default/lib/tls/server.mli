(** The server half of the handshake engine. Performs real cryptography
    end to end: (EC)DHE with the configured reuse policy, ECDSA-signed
    key-exchange parameters, RFC 5077 ticket sealing, session caching,
    and Finished verification over the running transcript hash.

    Full handshake:    hello -> [handle_client_hello] = [Negotiating],
    then the client's [CKE; Finished] -> [handle_client_flight].
    Abbreviated:       [handle_client_hello] = [Resuming] (server Finished
    already in the flight), then [handle_client_finished]. *)

type t

val create : config:Config.server_config -> rng:Crypto.Drbg.t -> t
val config : t -> Config.server_config

val restart : t -> now:int -> unit
(** Simulated process restart: per-process STEKs and cached ephemeral
    values die; static key files and external session caches survive. *)

type pending
(** A full handshake awaiting the client's second flight. *)

type resuming
(** An abbreviated handshake awaiting the client Finished. *)

type hello_result =
  | Negotiating of Handshake_msg.t list * pending
      (** [SH; Certificate; (SKE); SHD] *)
  | Resuming of
      Handshake_msg.t list * resuming * [ `Via_session_id | `Via_ticket ]
      (** [SH; (NST); Finished] *)

val handle_client_hello : t -> now:int -> Handshake_msg.t -> (hello_result, Types.alert) result

val resuming_session : resuming -> Session.t
(** The session being resumed; wire-level drivers derive record keys
    from its master secret. *)

val master_of_cke : pending -> cke_public:string -> (string, Types.alert) result
(** The master secret this ClientKeyExchange leads to (pure; the later
    {!handle_client_flight} recomputes it). *)

val handle_client_flight :
  pending -> now:int -> Handshake_msg.t list -> (Handshake_msg.t list * Session.t, Types.alert) result
(** Takes [\[ClientKeyExchange; Finished\]]; returns [(NST); Finished]
    and the freshly established (and cached) session. *)

val handle_client_finished : resuming -> Handshake_msg.t -> (Session.t, Types.alert) result

val ske_params_bytes : Handshake_msg.ske_params -> string
(** The byte encoding of key-exchange parameters covered by the server's
    signature (exposed for the client's verification). *)
