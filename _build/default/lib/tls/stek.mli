(** Session Ticket Encryption Keys (STEKs): the key material sealing
    RFC 5077 tickets. The 16-byte key name travels in the clear inside
    every ticket — the identifier the paper's scanner tracks across days
    to bound STEK lifetimes (Section 4.3). *)

type t

val key_name_len : int (** 16 *)

val aes_key_len : int (** 16 *)

val hmac_key_len : int (** 32 *)

val raw_len : int
(** 64: name || AES key || HMAC key, the shape of the key files Apache
    2.4 / Nginx 1.5.7+ load to synchronize STEKs across servers. *)

val of_raw : created_at:int -> string -> t
(** Raises [Invalid_argument] unless the input is {!raw_len} bytes. *)

val generate : Crypto.Drbg.t -> now:int -> t

val derive : secret:string -> period:int -> now:int -> t
(** Deterministic derivation for epoch-aligned rotation: the STEK for
    period [k] of a secret is a pure function of both, which is how a
    synchronized fleet agrees on the current key without coordination. *)

val key_name : t -> string
val aes_key : t -> Crypto.Aes.t
val hmac_key : t -> string
val created_at : t -> int
val key_name_hex : t -> string
