(* Session Ticket Encryption Keys (STEKs): the key material a server uses
   to seal RFC 5077 session tickets. The 16-byte key name travels inside
   every ticket in the clear — it is the identifier the paper's scanner
   tracks across days to bound STEK lifetimes (Section 4.3). *)

type t = {
  key_name : string; (* 16 bytes, public, embedded in tickets *)
  aes_key : Crypto.Aes.t; (* AES-128-CBC key, per RFC 5077's recommendation *)
  hmac_key : string; (* 32 bytes for HMAC-SHA256 *)
  created_at : int; (* epoch seconds *)
}

let key_name_len = 16
let aes_key_len = 16
let hmac_key_len = 32

(* 64 raw bytes: name || AES key || HMAC key — the shape of the key files
   Apache 2.4 / Nginx 1.5.7+ load from disk to synchronize STEKs across
   servers (the synchronization the paper flags as an attack surface). *)
let raw_len = key_name_len + aes_key_len + hmac_key_len

let of_raw ~created_at raw =
  if String.length raw <> raw_len then
    invalid_arg (Printf.sprintf "Stek.of_raw: need %d bytes" raw_len);
  {
    key_name = String.sub raw 0 key_name_len;
    aes_key = Crypto.Aes.of_key (String.sub raw key_name_len aes_key_len);
    hmac_key = String.sub raw (key_name_len + aes_key_len) hmac_key_len;
    created_at;
  }

let generate rng ~now = of_raw ~created_at:now (Crypto.Drbg.generate rng raw_len)

(* Deterministic derivation, used for epoch-aligned rotation schedules:
   the STEK for period [k] of a given secret is a pure function of both. *)
let derive ~secret ~period ~now =
  let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "stek:%s:%d" secret period) in
  of_raw ~created_at:now (Crypto.Drbg.generate rng raw_len)

let key_name t = t.key_name
let aes_key t = t.aes_key
let hmac_key t = t.hmac_key
let created_at t = t.created_at

let key_name_hex t = Wire.Hex.encode t.key_name
