(* TLS hello extensions (the subset this study exercises), with the
   RFC 5246 / RFC 6066 / RFC 5077 wire encoding: u16 type, u16-length body. *)

type t =
  | Server_name of string (* RFC 6066 SNI, single host_name entry *)
  | Session_ticket of string (* RFC 5077; "" is the empty offer *)
  | Supported_groups of int list (* RFC 4492 named groups *)
  | Renegotiation_info
  | Unknown of int * string

let type_code = function
  | Server_name _ -> 0
  | Supported_groups _ -> 10
  | Session_ticket _ -> 35
  | Renegotiation_info -> 0xff01
  | Unknown (c, _) -> c

let body = function
  | Server_name host ->
      (* ServerNameList with one host_name (type 0) entry. *)
      Wire.Writer.build (fun w ->
          let entry =
            Wire.Writer.build (fun w' ->
                Wire.Writer.u8 w' 0;
                Wire.Writer.vec16 w' host)
          in
          Wire.Writer.vec16 w entry)
  | Session_ticket ticket -> ticket
  | Supported_groups groups ->
      Wire.Writer.build (fun w ->
          Wire.Writer.vec16 w
            (Wire.Writer.build (fun w' -> List.iter (Wire.Writer.u16 w') groups)))
  | Renegotiation_info -> "\x00"
  | Unknown (_, data) -> data

let write w ext =
  Wire.Writer.u16 w (type_code ext);
  Wire.Writer.vec16 w (body ext)

let parse_body code data =
  match code with
  | 0 ->
      Wire.Reader.parse data (fun r ->
          let entries = Wire.Reader.sub r (Wire.Reader.u16 r) in
          let ty = Wire.Reader.u8 entries in
          let host = Wire.Reader.vec16 entries in
          Wire.Reader.expect_end entries;
          if ty <> 0 then Unknown (0, data) else Server_name host)
  | 10 ->
      Wire.Reader.parse data (fun r ->
          let groups = Wire.Reader.sub r (Wire.Reader.u16 r) in
          let rec go acc =
            if Wire.Reader.is_empty groups then List.rev acc
            else go (Wire.Reader.u16 groups :: acc)
          in
          Supported_groups (go []))
  | 35 -> Session_ticket data
  | 0xff01 -> Renegotiation_info
  | c -> Unknown (c, data)

let read r =
  let code = Wire.Reader.u16 r in
  let data = Wire.Reader.vec16 r in
  try parse_body code data with Wire.Reader.Error _ -> Unknown (code, data)

(* Extension blocks: u16 total length followed by the extensions; an absent
   block (old clients) encodes as nothing at all. *)
let write_block w exts =
  match exts with
  | [] -> ()
  | _ ->
      let payload = Wire.Writer.build (fun w' -> List.iter (write w') exts) in
      Wire.Writer.vec16 w payload

let read_block r =
  if Wire.Reader.is_empty r then []
  else begin
    let block = Wire.Reader.sub r (Wire.Reader.u16 r) in
    let rec go acc = if Wire.Reader.is_empty block then List.rev acc else go (read block :: acc) in
    go []
  end

let find_session_ticket exts =
  List.find_map (function Session_ticket t -> Some t | _ -> None) exts

let find_server_name exts =
  List.find_map (function Server_name h -> Some h | _ -> None) exts

let has_session_ticket exts =
  List.exists (function Session_ticket _ -> true | _ -> false) exts
