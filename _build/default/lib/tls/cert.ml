(* A deliberately small X.509 stand-in: enough structure for the
   measurements (is the chain browser-trusted? is it valid at scan time?
   does it cover this hostname?) with real ECDSA signatures over a real
   TBS byte encoding. The paper restricts every analysis to domains
   presenting browser-trusted certificates, so trust evaluation must
   actually work; DER/ASN.1 fidelity is irrelevant and skipped
   (documented in DESIGN.md). *)

type t = {
  subject : string; (* common name *)
  sans : string list; (* additional dns names *)
  issuer : string;
  serial : int;
  not_before : int; (* epoch seconds *)
  not_after : int;
  pub : string; (* SEC1 point bytes on the PKI curve *)
  is_ca : bool;
  signature : string;
}

let subject c = c.subject
let issuer c = c.issuer
let public_key c = c.pub
let is_ca c = c.is_ca
let validity c = (c.not_before, c.not_after)

(* --- Encoding ------------------------------------------------------------- *)

let write_tbs w c =
  let open Wire.Writer in
  vec8 w c.subject;
  u8 w (List.length c.sans);
  List.iter (vec8 w) c.sans;
  vec8 w c.issuer;
  u32 w c.serial;
  u64 w c.not_before;
  u64 w c.not_after;
  vec8 w c.pub;
  u8 w (if c.is_ca then 1 else 0)

let tbs_bytes c = Wire.Writer.build (fun w -> write_tbs w c)

let to_bytes c =
  Wire.Writer.build (fun w ->
      write_tbs w c;
      Wire.Writer.vec16 w c.signature)

let read (r : Wire.Reader.t) =
  let open Wire.Reader in
  let subject = vec8 r in
  let nsans = u8 r in
  let sans = List.init nsans (fun _ -> vec8 r) in
  let issuer = vec8 r in
  let serial = u32 r in
  let not_before = u64 r in
  let not_after = u64 r in
  let pub = vec8 r in
  let is_ca = u8 r = 1 in
  let signature = vec16 r in
  { subject; sans; issuer; serial; not_before; not_after; pub; is_ca; signature }

let of_bytes s = Wire.Reader.parse_result s read

(* --- Authorities ------------------------------------------------------------ *)

type authority = { cert : t; keypair : Crypto.Ecdsa.keypair }

let authority_cert a = a.cert
let authority_keypair a = a.keypair

(* Wrap an already-issued CA certificate (e.g. an intermediate) so it can
   issue further certificates. *)
let authority_of ~cert ~keypair = { cert; keypair }

let self_signed ~curve ~name ~not_before ~not_after ~serial rng =
  let keypair = Crypto.Ecdsa.gen_keypair curve rng in
  let unsigned =
    {
      subject = name;
      sans = [];
      issuer = name;
      serial;
      not_before;
      not_after;
      pub = Crypto.Ec.point_bytes curve (Crypto.Ecdsa.public_key keypair);
      is_ca = true;
      signature = "";
    }
  in
  let signature =
    Crypto.Ecdsa.signature_bytes curve (Crypto.Ecdsa.sign keypair rng (tbs_bytes unsigned))
  in
  { cert = { unsigned with signature }; keypair }

let issue (a : authority) ~curve ~subject ?(sans = []) ?(is_ca = false) ~not_before ~not_after
    ~serial ~pub rng =
  let unsigned =
    {
      subject;
      sans;
      issuer = a.cert.subject;
      serial;
      not_before;
      not_after;
      pub;
      is_ca;
      signature = "";
    }
  in
  let signature =
    Crypto.Ecdsa.signature_bytes curve (Crypto.Ecdsa.sign a.keypair rng (tbs_bytes unsigned))
  in
  { unsigned with signature }

(* --- Validation -------------------------------------------------------------- *)

type validation_error =
  | Expired of string
  | Not_yet_valid of string
  | Bad_signature of string
  | Untrusted_root of string
  | Name_mismatch of { hostname : string; cert : string }
  | Empty_chain
  | Not_a_ca of string
  | Not_evaluated

let pp_validation_error ppf = function
  | Expired s -> Format.fprintf ppf "certificate expired: %s" s
  | Not_yet_valid s -> Format.fprintf ppf "certificate not yet valid: %s" s
  | Bad_signature s -> Format.fprintf ppf "bad signature on: %s" s
  | Untrusted_root s -> Format.fprintf ppf "chain does not reach a trusted root: %s" s
  | Name_mismatch { hostname; cert } ->
      Format.fprintf ppf "hostname %s not covered by certificate for %s" hostname cert
  | Empty_chain -> Format.fprintf ppf "empty certificate chain"
  | Not_a_ca s -> Format.fprintf ppf "intermediate is not a CA: %s" s
  | Not_evaluated -> Format.fprintf ppf "trust not evaluated"

(* The root store maps issuer names to trusted public keys, the moral
   equivalent of the NSS store the paper validates against. *)
type root_store = (string, string) Hashtbl.t

let empty_store () : root_store = Hashtbl.create 16
let add_root store cert = Hashtbl.replace store cert.subject cert.pub
let store_of_list certs =
  let s = empty_store () in
  List.iter (add_root s) certs;
  s

(* Wildcard matching: "*.example.com" covers exactly one extra label. *)
let name_matches ~hostname pattern =
  let pattern = String.lowercase_ascii pattern and hostname = String.lowercase_ascii hostname in
  if String.equal pattern hostname then true
  else
    match String.index_opt pattern '*' with
    | Some 0 when String.length pattern > 1 && pattern.[1] = '.' ->
        let suffix = String.sub pattern 1 (String.length pattern - 1) in
        (* hostname must be <label> ^ suffix with a non-empty, dot-free label *)
        String.length hostname > String.length suffix
        && String.equal suffix
             (String.sub hostname
                (String.length hostname - String.length suffix)
                (String.length suffix))
        &&
        let label = String.sub hostname 0 (String.length hostname - String.length suffix) in
        label <> "" && not (String.contains label '.')
    | _ -> false

let covers_hostname cert ~hostname =
  List.exists (name_matches ~hostname) (cert.subject :: cert.sans)

let check_validity ~now cert =
  if now < cert.not_before then Error (Not_yet_valid cert.subject)
  else if now > cert.not_after then Error (Expired cert.subject)
  else Ok ()

let verify_signature ~curve ~signer_pub cert =
  match Crypto.Ec.point_of_bytes curve signer_pub with
  | Error _ -> false
  | Ok pub -> (
      match Crypto.Ecdsa.signature_of_bytes curve cert.signature with
      | Error _ -> false
      | Ok sg -> Crypto.Ecdsa.verify ~curve ~pub ~msg:(tbs_bytes cert) sg)

(* Validate [chain] (leaf first) against the store at time [now] for
   [hostname]. Returns the leaf on success. *)
let validate ~curve ~store ~now ~hostname chain =
  let ( let* ) = Result.bind in
  match chain with
  | [] -> Error Empty_chain
  | leaf :: rest ->
      let* () = check_validity ~now leaf in
      let* () =
        if covers_hostname leaf ~hostname then Ok ()
        else Error (Name_mismatch { hostname; cert = leaf.subject })
      in
      let rec walk cert = function
        | [] -> (
            (* Must be signed by a root in the store. *)
            match Hashtbl.find_opt store cert.issuer with
            | Some root_pub ->
                if verify_signature ~curve ~signer_pub:root_pub cert then Ok leaf
                else Error (Bad_signature cert.subject)
            | None -> Error (Untrusted_root cert.issuer))
        | intermediate :: rest ->
            let* () = check_validity ~now intermediate in
            let* () =
              if intermediate.is_ca then Ok () else Error (Not_a_ca intermediate.subject)
            in
            if verify_signature ~curve ~signer_pub:intermediate.pub cert then
              walk intermediate rest
            else Error (Bad_signature cert.subject)
      in
      walk leaf rest
