(** Resumable TLS session state: what a server caches against a session
    ID and what a session ticket carries under the STEK. Holding this
    state beyond the connection is the forward-secrecy erosion the paper
    measures. *)

type t

val make :
  id:string -> master_secret:string -> cipher_suite:Types.cipher_suite -> established_at:int -> t
(** Raises [Invalid_argument] unless the master secret is 48 bytes and
    the ID is at most 32. An empty [id] means ticket-only state. *)

val id : t -> string
val master_secret : t -> string
val cipher_suite : t -> Types.cipher_suite

val established_at : t -> int
(** Epoch seconds of the original full handshake. *)

val with_id : t -> id:string -> t
val to_bytes : t -> string
val of_bytes : string -> (t, string) result
val write : Wire.Writer.t -> t -> unit
val read : Wire.Reader.t -> t
val equal : t -> t -> bool
