lib/tls/connection.ml: Buffer Client Engine Format Handshake_msg Lazy List Record Result Server Session String Types
