lib/tls/stek.ml: Crypto Printf String Wire
