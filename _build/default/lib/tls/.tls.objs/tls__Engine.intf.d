lib/tls/engine.mli: Cert Client Server Session Types
