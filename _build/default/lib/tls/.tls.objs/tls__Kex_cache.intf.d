lib/tls/kex_cache.mli: Crypto
