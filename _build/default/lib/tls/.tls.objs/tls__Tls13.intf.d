lib/tls/tls13.mli: Crypto Format Stek Stek_manager
