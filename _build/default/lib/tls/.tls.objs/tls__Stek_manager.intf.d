lib/tls/stek_manager.mli: Stek
