lib/tls/kex_cache.ml: Crypto Option
