lib/tls/record.ml: Char Crypto List String Types Wire
