lib/tls/stek.mli: Crypto
