lib/tls/ticket.mli: Crypto Format Session Stek
