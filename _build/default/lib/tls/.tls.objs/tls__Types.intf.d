lib/tls/types.mli: Format
