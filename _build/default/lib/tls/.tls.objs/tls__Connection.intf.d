lib/tls/connection.mli: Client Engine Record Server Session
