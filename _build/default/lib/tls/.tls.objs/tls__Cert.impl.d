lib/tls/cert.ml: Crypto Format Hashtbl List Result String Wire
