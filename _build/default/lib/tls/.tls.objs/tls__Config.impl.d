lib/tls/config.ml: Cert Crypto Kex_cache Session_cache Stek_manager Types
