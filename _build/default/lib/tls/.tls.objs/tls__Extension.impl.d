lib/tls/extension.ml: List Wire
