lib/tls/cert.mli: Crypto Format Wire
