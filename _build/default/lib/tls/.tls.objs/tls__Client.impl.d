lib/tls/client.ml: Buffer Cert Config Crypto Extension Handshake_msg List Option Result Server Session String Types
