lib/tls/types.ml: Format
