lib/tls/ticket.ml: Crypto Format Session Stek String Wire
