lib/tls/client.mli: Cert Config Crypto Handshake_msg Session
