lib/tls/record.mli: Types
