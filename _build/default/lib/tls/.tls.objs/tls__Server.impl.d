lib/tls/server.ml: Buffer Cert Config Crypto Extension Handshake_msg Kex_cache List Option Session Session_cache Stek_manager String Ticket Types Wire
