lib/tls/session_cache.ml: Hashtbl Queue Session String
