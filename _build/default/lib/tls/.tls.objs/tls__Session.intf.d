lib/tls/session.mli: Types Wire
