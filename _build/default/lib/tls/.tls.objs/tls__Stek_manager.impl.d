lib/tls/stek_manager.ml: List Printf Stek String
