lib/tls/session_cache.mli: Session
