lib/tls/handshake_msg.ml: Extension List Printf String Types Wire
