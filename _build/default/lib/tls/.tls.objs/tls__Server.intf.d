lib/tls/server.mli: Config Crypto Handshake_msg Session Types
