lib/tls/session.ml: Crypto String Types Wire
