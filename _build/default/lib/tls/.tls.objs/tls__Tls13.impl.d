lib/tls/tls13.ml: Crypto Format List Option Result Stek Stek_manager String Wire
