lib/tls/engine.ml: Cert Client Handshake_msg List Option Result Server Session String Ticket Types
