lib/tls/extension.mli: Wire
