(** A byte-level connection driver: the {!Engine} handshakes carried over
    the record layer as TLS frames them — handshake records, a
    ChangeCipherSpec before each side's Finished, the Finished records
    encrypted under the derived keys — plus protected application data
    afterwards. For wire-level fidelity in examples, attacks and tests;
    the bulk scanner uses {!Engine} directly. *)

type established = {
  session : Session.t;
  new_ticket : (int * string) option;
  resumed : [ `No | `Via_session_id | `Via_ticket ];
  client_tx : Record.cipher_state;
  client_rx : Record.cipher_state;
  server_tx : Record.cipher_state;
  server_rx : Record.cipher_state;
  wire_log : (Engine.direction * Record.t) list;
      (** every record that crossed, oldest first — the passive
          observer's capture *)
}

val establish :
  Client.t ->
  Server.t ->
  now:int ->
  hostname:string ->
  offer:Client.offer ->
  (established, string) result

val send : established -> from:[ `Client | `Server ] -> string -> Record.t list
(** Protect application bytes into wire records. *)

val recv : established -> at:[ `Client | `Server ] -> Record.t list -> (string, string) result
