(* Configuration for the TLS engines.

   [env] fixes the cryptographic environment — which DH group, ECDHE curve
   and PKI curve a deployment uses. [sim_env] instantiates small-parameter
   groups for large sweeps; [real_env] uses the production-sized Oakley-2
   group and P-256 (see DESIGN.md on this substitution). *)

type env = {
  dh_group : Crypto.Dh.group;
  ecdhe_curve : Crypto.Ec.curve;
  ecdhe_curve_id : int; (* named-curve code point carried in SKE *)
  pki_curve : Crypto.Ec.curve; (* certificate / signature curve *)
}

(* Small-curve sizes: 52/53-bit primes keep field elements at two 26-bit
   limbs (the arithmetic sweet spot) while leaving public-value collision
   probability across a full study negligible (~10^6 values in a ~2^50
   group: < 10^-3 expected accidental collisions). *)
let sim_env ?(seed = "tlsharm") () =
  {
    dh_group = Crypto.Dh.generate ~bits:64 ~seed;
    ecdhe_curve = Crypto.Ec.generate_small ~bits:52 ~seed;
    ecdhe_curve_id = 0xfe00;
    pki_curve = Crypto.Ec.generate_small ~bits:53 ~seed:(seed ^ "-pki");
  }

let real_env () =
  {
    dh_group = Crypto.Dh.oakley2;
    ecdhe_curve = Crypto.Ec.p256;
    ecdhe_curve_id = 23 (* secp256r1 *);
    pki_curve = Crypto.Ec.p256;
  }

(* --- Server-side ------------------------------------------------------------ *)

type ticket_config = {
  stek_manager : Stek_manager.t;
  lifetime_hint : int; (* advertised in NewSessionTicket, seconds; 0 = unspecified *)
  accept_lifetime : int; (* how old a ticket may be and still resume, seconds *)
  reissue_on_resumption : bool; (* hand out a fresh ticket on abbreviated handshakes *)
}

type server_config = {
  env : env;
  suites : Types.cipher_suite list; (* server preference order *)
  issue_session_ids : bool; (* set a session ID in ServerHello at all *)
  session_cache : Session_cache.t option; (* None = never resumes by ID *)
  tickets : ticket_config option; (* None = no session ticket support *)
  kex_cache : Kex_cache.t;
  cert_chain : Cert.t list; (* leaf first *)
  cert_key : Crypto.Ecdsa.keypair;
}

(* --- Client-side ------------------------------------------------------------ *)

type client_config = {
  cl_env : env;
  offer_suites : Types.cipher_suite list;
  offer_ticket : bool; (* include the session-ticket extension *)
  root_store : Cert.root_store;
  check_certs : bool; (* abort the handshake on an untrusted chain *)
  evaluate_trust : bool;
      (* run chain validation at all; bulk scanners turn this off and
         validate once per domain from the recorded chain instead *)
  verify_ske : bool; (* check the ServerKeyExchange signature *)
}

let default_client ~env ~root_store =
  {
    cl_env = env;
    offer_suites = Types.all_cipher_suites;
    offer_ticket = true;
    root_store;
    check_certs = true;
    evaluate_trust = true;
    verify_ske = true;
  }
