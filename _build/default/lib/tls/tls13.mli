(** A TLS 1.3 resumption model (RFC 8446 semantics; the paper's
    section 2.4): PSKs sealed under the same STEK machinery as 1.2
    tickets, [psk_ke] vs [psk_dhe_ke] modes, 0-RTT early data, and the
    attack split they imply. The key schedule is the real RFC 8446 one
    (HKDF, binders, traffic secrets); the handshake is condensed to the
    resumption-relevant core. *)

type psk_mode = Psk_ke | Psk_dhe_ke

val pp_psk_mode : Format.formatter -> psk_mode -> unit

(** {2 PSK state and tickets} *)

type psk_state = {
  psk : string;
  issued_at : int;
  lifetime : int;  (** draft-15 caps this at 7 days *)
  max_early_data : int;
}

val seal_psk : Stek.t -> Crypto.Drbg.t -> psk_state -> string
val unseal_psk : find_stek:(string -> Stek.t option) -> string -> (psk_state, string) result

(** {2 Key schedule} *)

type secrets = {
  early_secret : string;
  binder_key : string;
  client_early_traffic : string;
  handshake_secret : string;
  master_secret : string;
  client_app_traffic : string;
  server_app_traffic : string;
  resumption_master : string;
}

val key_schedule :
  ?psk:string -> ?dh_shared:string -> ch_hash:string -> full_hash:string -> unit -> secrets

val psk_of_resumption_master : resumption_master:string -> nonce:string -> string

val protect : traffic_secret:string -> string -> string
(** Traffic protection with keys expanded from the secret (a stand-in
    AEAD: AES-128-CTR + HMAC with the real "key"/"iv" derivations). *)

val unprotect : traffic_secret:string -> string -> (string, string) result

(** {2 Messages} *)

type client_hello = {
  ch_random : string;
  ch_key_share : string option;
  ch_psk_identity : string option;  (** the opaque ticket *)
  ch_psk_mode : psk_mode;
  ch_binder : string;
  ch_early_data : string option;  (** protected 0-RTT payload *)
}

type server_hello = {
  sh_random : string;
  sh_key_share : string option;
  sh_psk_accepted : bool;
  sh_new_ticket : (string * string) option;  (** nonce, sealed ticket *)
}

val ch_bytes : ?with_binder:bool -> client_hello -> string
val sh_bytes : server_hello -> string
val binder_for : binder_key:string -> truncated_ch_hash:string -> string

(** {2 Server} *)

type server_config = {
  curve : Crypto.Ec.curve;
  stek_manager : Stek_manager.t;
  psk_lifetime : int;
  allowed_modes : psk_mode list;
  max_early_data : int;
}

type server = { sc : server_config; srng : Crypto.Drbg.t }

val server : config:server_config -> rng:Crypto.Drbg.t -> server

type server_result = {
  sr_hello : server_hello;
  sr_secrets : secrets;
  sr_early_data : (string, string) result option;
  sr_resumed : bool;
}

val handle_client_hello : server -> now:int -> client_hello -> (server_result, string) result

(** {2 Client / driver} *)

type client_offer =
  | Fresh13
  | Resume13 of { ticket : string; state : psk_state; mode : psk_mode; early_data : string option }

type client_result = {
  cl_secrets : secrets;
  cl_resumed : bool;
  cl_new_ticket : (string * psk_state) option;
}

val connect :
  client_rng:Crypto.Drbg.t ->
  server ->
  now:int ->
  offer:client_offer ->
  (server_result * client_result, string) result
(** One condensed exchange; both ends' views are returned (and checked
    to agree on the master secret). *)

(** {2 The attacker's view} *)

type attack_outcome = {
  early_data : (string, string) result option;
  app_data : (string, string) result;
}

val attack :
  find_stek:(string -> Stek.t option) ->
  ch:client_hello ->
  sh:server_hello ->
  recorded_app:string ->
  attack_outcome
(** Given recorded wire messages and a stolen STEK: 0-RTT data always
    falls; [Psk_ke] application data falls; [Psk_dhe_ke] application data
    survives (the fresh DH output is missing). *)
