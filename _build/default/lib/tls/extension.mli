(** TLS hello extensions (the subset this study exercises), with the
    standard wire encoding: u16 type, u16-length body. *)

type t =
  | Server_name of string  (** RFC 6066 SNI, one host_name entry *)
  | Session_ticket of string  (** RFC 5077; [""] is the empty offer *)
  | Supported_groups of int list
  | Renegotiation_info
  | Unknown of int * string

val type_code : t -> int
val write : Wire.Writer.t -> t -> unit
val read : Wire.Reader.t -> t

val write_block : Wire.Writer.t -> t list -> unit
(** The hello extensions block; an empty list encodes as nothing at all
    (old-client style). *)

val read_block : Wire.Reader.t -> t list

val find_session_ticket : t list -> string option
val find_server_name : t list -> string option
val has_session_ticket : t list -> bool
