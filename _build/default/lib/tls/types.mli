(** Core TLS protocol types and constants (RFC 5246 subset). *)

type version = TLS_1_0 | TLS_1_1 | TLS_1_2

val version_to_int : version -> int
val version_of_int : int -> version option
val pp_version : Format.formatter -> version -> unit

(** Key-exchange families. [Static_ecdh] is the non-forward-secret
    exchange (the role RSA key transport plays in the paper): the
    certificate's long-term key is used directly for key agreement, so a
    later key compromise retroactively decrypts every recorded
    connection. *)
type key_exchange = Dhe | Ecdhe | Static_ecdh

val pp_key_exchange : Format.formatter -> key_exchange -> unit

(** Cipher suites. The measurements only care about the key exchange;
    symmetric protection is uniformly AES-128-CTR + HMAC-SHA256. *)
type cipher_suite =
  | ECDHE_ECDSA_AES128_SHA256
  | DHE_ECDSA_AES128_SHA256
  | ECDH_ECDSA_AES128_SHA256

val all_cipher_suites : cipher_suite list
val suite_to_int : cipher_suite -> int
val suite_of_int : int -> cipher_suite option
val suite_kex : cipher_suite -> key_exchange
val suite_forward_secret : cipher_suite -> bool
val pp_cipher_suite : Format.formatter -> cipher_suite -> unit

(** RFC 5246 alert descriptions (the subset the engines emit). *)
type alert =
  | Close_notify
  | Unexpected_message
  | Bad_record_mac
  | Handshake_failure
  | Bad_certificate
  | Certificate_expired
  | Certificate_unknown
  | Unknown_ca
  | Decode_error
  | Decrypt_error
  | Protocol_version
  | Illegal_parameter

val alert_to_int : alert -> int
val alert_of_int : int -> alert option
val pp_alert : Format.formatter -> alert -> unit

type content_type = Change_cipher_spec | Alert_ct | Handshake_ct | Application_data

val content_type_to_int : content_type -> int
val content_type_of_int : int -> content_type option

val random_len : int
(** 32: hello random width. *)

val session_id_max : int
(** 32. *)

val verify_data_len : int
(** 12: Finished verify_data width. *)
