(** End-to-end handshake driver: runs a client against a server instance,
    exchanging serialized flights (every message crosses a bytes
    boundary), and distills the exchange into the observation record the
    scanner consumes. *)

type outcome = {
  ok : bool;
  alert : Types.alert option;  (** server-side failure *)
  error : string option;  (** client-side failure *)
  cipher : Types.cipher_suite option;
  resumed : [ `No | `Via_session_id | `Via_ticket ];
  session : Session.t option;  (** the client's resulting session state *)
  session_id : string;  (** from ServerHello; [""] if none *)
  new_ticket : (int * string) option;  (** lifetime hint, ticket bytes *)
  stek_key_name : string option;  (** peeked from the ticket *)
  server_kex_public : string option;  (** (EC)DHE server value, wire bytes *)
  cert_chain : Cert.t list;
  trusted : bool;
}

type direction = Client_to_server | Server_to_client

val connect :
  ?wiretap:(direction -> string -> unit) ->
  Client.t ->
  Server.t ->
  now:int ->
  hostname:string ->
  offer:Client.offer ->
  outcome
(** One TLS connection attempt, fresh or resuming. [wiretap] sees every
    flight's bytes — the paper's passive adversary. *)
