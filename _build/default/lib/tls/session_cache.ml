(* The server-side session cache backing session-ID resumption.

   One cache instance may be shared by many servers and many domains
   (an SSL terminator); that sharing is what Section 5.1 of the paper
   measures. Entries expire after [lifetime] seconds — RFC 5246 suggests
   at most 24 hours, Apache defaults to 5 minutes, Nginx to 5 minutes
   when enabled, IIS to 10 hours — and the cache enforces a capacity
   bound with FIFO eviction like the fixed-size caches in production
   servers. *)

type entry = { session : Session.t; expires_at : int }

type t = {
  lifetime : int; (* seconds an entry is honored *)
  capacity : int;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t; (* FIFO eviction order *)
}

let create ~lifetime ~capacity =
  if lifetime < 0 then invalid_arg "Session_cache.create: negative lifetime";
  if capacity <= 0 then invalid_arg "Session_cache.create: capacity must be positive";
  { lifetime; capacity; table = Hashtbl.create 64; order = Queue.create () }

let lifetime t = t.lifetime
let size t = Hashtbl.length t.table

let evict_if_full t =
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let victim = Queue.pop t.order in
    Hashtbl.remove t.table victim
  done

let store t ~now session =
  let id = Session.id session in
  if String.length id = 0 then invalid_arg "Session_cache.store: empty session ID";
  if t.lifetime = 0 then () (* caching disabled: state is dropped immediately *)
  else begin
    if not (Hashtbl.mem t.table id) then begin
      evict_if_full t;
      Queue.push id t.order
    end;
    Hashtbl.replace t.table id { session; expires_at = now + t.lifetime }
  end

let lookup t ~now id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some entry ->
      if now <= entry.expires_at then Some entry.session
      else begin
        (* Lazy expiry: the implementations the paper inspects also drop
           entries on access rather than with a timer. *)
        Hashtbl.remove t.table id;
        None
      end

let remove t id = Hashtbl.remove t.table id

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order

(* The earliest moment at which no currently cached secret remains alive:
   used by the analysis to reason about vulnerability windows. *)
let latest_expiry t = Hashtbl.fold (fun _ e acc -> max acc e.expires_at) t.table 0

(* Compromise accessor: everything an attacker who reads the cache memory
   obtains. Used by the Attack demonstrations. *)
let dump t = Hashtbl.fold (fun _ e acc -> e.session :: acc) t.table []
