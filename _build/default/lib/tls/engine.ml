(* End-to-end handshake driver: runs a client against a server instance,
   exchanging *serialized* handshake flights (every message crosses a
   bytes boundary, so the codecs are always exercised), and distills the
   exchange into the observation record the scanner consumes. *)

module Msg = Handshake_msg

type outcome = {
  ok : bool;
  alert : Types.alert option;
  error : string option; (* client-side failure description *)
  cipher : Types.cipher_suite option;
  resumed : [ `No | `Via_session_id | `Via_ticket ];
  session : Session.t option; (* client's resulting session state *)
  session_id : string; (* ID from ServerHello; "" if none *)
  new_ticket : (int * string) option; (* lifetime hint, ticket bytes *)
  stek_key_name : string option; (* peeked from the ticket *)
  server_kex_public : string option; (* (EC)DHE server value, wire bytes *)
  cert_chain : Cert.t list;
  trusted : bool;
}

let failed ?alert ?error () =
  {
    ok = false;
    alert;
    error;
    cipher = None;
    resumed = `No;
    session = None;
    session_id = "";
    new_ticket = None;
    stek_key_name = None;
    server_kex_public = None;
    cert_chain = [];
    trusted = false;
  }

(* Serialize and reparse a flight, as the wire would. A wiretap — the
   paper's passive adversary — sees every flight's bytes. *)
type direction = Client_to_server | Server_to_client

let over_the_wire ?wiretap ~direction msgs =
  let bytes = String.concat "" (List.map Msg.to_bytes msgs) in
  (match wiretap with Some tap -> tap direction bytes | None -> ());
  Msg.read_all bytes

let ( let* ) = Result.bind

let run_exchange ?wiretap client server ~now ~hostname ~offer =
  let over_the_wire ~direction msgs = over_the_wire ?wiretap ~direction msgs in
  let ch, state = Client.hello client ~now ~hostname ~offer in
  let* ch =
    match over_the_wire ~direction:Client_to_server [ ch ] with
    | Ok [ ch ] -> Ok ch
    | Ok _ | Error _ -> Error (failed ~error:"client hello serialization failed" ())
  in
  let* server_result =
    match Server.handle_client_hello server ~now ch with
    | Ok r -> Ok r
    | Error alert -> Error (failed ~alert ())
  in
  match server_result with
  | Server.Resuming (flight, resuming, how) -> (
      let* flight =
        match over_the_wire ~direction:Server_to_client flight with
        | Ok f -> Ok f
        | Error e -> Error (failed ~error:("server flight corrupt: " ^ e) ())
      in
      match Client.handle_server_flight state flight with
      | Error e -> Error (failed ~error:e ())
      | Ok (Client.Abbreviated { client_finished; session; new_ticket; session_id }) -> (
          let* fin =
            match over_the_wire ~direction:Client_to_server [ client_finished ] with
            | Ok [ f ] -> Ok f
            | Ok _ | Error _ -> Error (failed ~error:"client finished corrupt" ())
          in
          match Server.handle_client_finished resuming fin with
          | Error alert -> Error (failed ~alert ())
          | Ok _server_session ->
              Ok
                {
                  ok = true;
                  alert = None;
                  error = None;
                  cipher = Some (Session.cipher_suite session);
                  resumed = (how :> [ `No | `Via_session_id | `Via_ticket ]);
                  session = Some session;
                  session_id;
                  new_ticket;
                  stek_key_name =
                    Option.bind new_ticket (fun (_, t) -> Ticket.peek_key_name t);
                  server_kex_public = None;
                  cert_chain = [];
                  trusted = true (* unchanged from the original handshake *);
                })
      | Ok (Client.Continue_full _) ->
          Error (failed ~error:"server answered resumption with a full flight shape" ()))
  | Server.Negotiating (flight, pending) -> (
      let* flight =
        match over_the_wire ~direction:Server_to_client flight with
        | Ok f -> Ok f
        | Error e -> Error (failed ~error:("server flight corrupt: " ^ e) ())
      in
      match Client.handle_server_flight state flight with
      | Error e -> Error (failed ~error:e ())
      | Ok (Client.Abbreviated _) ->
          Error (failed ~error:"unexpected abbreviated flight" ())
      | Ok
          (Client.Continue_full
             { to_send; continuation; cert_chain; trust; server_kex_public; session_id }) -> (
          let* to_send =
            match over_the_wire ~direction:Client_to_server to_send with
            | Ok f -> Ok f
            | Error e -> Error (failed ~error:("client flight corrupt: " ^ e) ())
          in
          match Server.handle_client_flight pending ~now to_send with
          | Error alert -> Error (failed ~alert ())
          | Ok (closing, _server_session) -> (
              let* closing =
                match over_the_wire ~direction:Server_to_client closing with
                | Ok f -> Ok f
                | Error e -> Error (failed ~error:("server closing flight corrupt: " ^ e) ())
              in
              match Client.finish_full continuation ~now closing with
              | Error e -> Error (failed ~error:e ())
              | Ok (session, new_ticket) ->
                  Ok
                    {
                      ok = true;
                      alert = None;
                      error = None;
                      cipher = Some (Session.cipher_suite session);
                      resumed = `No;
                      session = Some session;
                      session_id;
                      new_ticket;
                      stek_key_name =
                        Option.bind new_ticket (fun (_, t) -> Ticket.peek_key_name t);
                      server_kex_public;
                      cert_chain;
                      trusted = Result.is_ok trust;
                    })))

(* [connect] is the scanner's single entry point: one TLS connection
   attempt, fresh or resuming. *)
let connect ?wiretap client server ~now ~hostname ~offer =
  match run_exchange ?wiretap client server ~now ~hostname ~offer with Ok o -> o | Error o -> o
