(** RFC 5077 session tickets: session state sealed under a STEK
    (AES-128-CBC + HMAC-SHA256, the construction the RFC recommends) and
    handed to the client. Anyone holding the STEK can open every ticket
    sealed with it — the paper's central attack (Section 6.1). *)

val seal : Stek.t -> Crypto.Drbg.t -> Session.t -> string

val peek_key_name : string -> string option
(** The STEK key name rides outside the encryption; this is what the
    scanner reads to track STEK lifetimes. *)

type unseal_error =
  | Too_short
  | Unknown_key_name of string
  | Bad_mac
  | Corrupt_state of string

val pp_unseal_error : Format.formatter -> unseal_error -> unit

val unseal : find_stek:(string -> Stek.t option) -> string -> (Session.t, unseal_error) result
(** [find_stek] resolves key names: a server may accept tickets from
    several recent STEKs while issuing with the newest (Google's
    14h-issue / 28h-accept schedule). *)

val decrypt_with_stolen_stek :
  find_stek:(string -> Stek.t option) -> string -> (Session.t, unseal_error) result
(** The passive attack the paper quantifies, spelled out: a recorded
    ticket plus a stolen STEK yields the session master secret. (Alias
    of {!unseal}; the operation is identical, which is the point.) *)
