(* A TLS 1.3 resumption model (RFC 8446 / draft-ietf-tls-tls13-15
   semantics), built to make Section 2.4 of the paper executable: session
   IDs and tickets are nominally obsoleted, but the mechanisms persist as
   pre-shared keys, and the forward-secrecy story splits three ways:

   - "psk_ke": resumption without a new key exchange. Exactly like a
     1.2 ticket, the connection decrypts retroactively while the PSK (and
     the STEK sealing it) exists.
   - "psk_dhe_ke": the PSK only authenticates; a fresh (EC)DHE runs.
     Application data of the *resumed* connection stays forward secret
     even if the PSK later leaks.
   - 0-RTT early data: encrypted directly under the PSK in both modes, so
     it inherits the full PSK/STEK vulnerability window regardless.

   The key schedule is the real RFC 8446 one (HKDF-Extract/Expand-Label
   over SHA-256, including the binder), tickets are sealed under the same
   {!Stek} machinery as 1.2 tickets, and the attack functions reconstruct
   secrets exactly as a STEK-holding adversary would. The handshake
   itself is condensed to the resumption-relevant core: one ClientHello
   and one ServerHello carrying key shares, PSK offers and binders. *)

let hash_len = Crypto.Hkdf.hash_len
let zeros = String.make hash_len '\x00'

type psk_mode = Psk_ke | Psk_dhe_ke

let pp_psk_mode ppf m =
  Format.pp_print_string ppf (match m with Psk_ke -> "psk_ke" | Psk_dhe_ke -> "psk_dhe_ke")

(* --- The PSK state a ticket carries -------------------------------------------- *)

(* What the client stores next to the opaque ticket, and what the server
   recovers by unsealing it. *)
type psk_state = {
  psk : string; (* 32 bytes, derived from the resumption master secret *)
  issued_at : int;
  lifetime : int; (* seconds; draft-15 caps this at 7 days *)
  max_early_data : int;
}

let write_psk_state w s =
  Wire.Writer.vec8 w s.psk;
  Wire.Writer.u64 w s.issued_at;
  Wire.Writer.u32 w s.lifetime;
  Wire.Writer.u32 w s.max_early_data

let read_psk_state r =
  let psk = Wire.Reader.vec8 r in
  let issued_at = Wire.Reader.u64 r in
  let lifetime = Wire.Reader.u32 r in
  let max_early_data = Wire.Reader.u32 r in
  { psk; issued_at; lifetime; max_early_data }

(* Seal under the STEK with the same CBC+HMAC construction as 1.2
   tickets: the 1.3 draft changed the protocol, not the operational
   practice the paper worries about. *)
let seal_psk stek rng state =
  let iv = Crypto.Drbg.generate rng 16 in
  let plain = Wire.Writer.build (fun w -> write_psk_state w state) in
  let encrypted = Crypto.Block_mode.cbc_encrypt (Stek.aes_key stek) ~iv plain in
  let body =
    Wire.Writer.build (fun w ->
        Wire.Writer.bytes w (Stek.key_name stek);
        Wire.Writer.bytes w iv;
        Wire.Writer.vec16 w encrypted)
  in
  body ^ Crypto.Hmac.sha256 ~key:(Stek.hmac_key stek) body

let unseal_psk ~find_stek ticket =
  let n = String.length ticket in
  if n < Stek.key_name_len + 16 + 2 + 32 then Error "tls13: ticket too short"
  else begin
    let key_name = String.sub ticket 0 Stek.key_name_len in
    match find_stek key_name with
    | None -> Error "tls13: unknown STEK"
    | Some stek ->
        let body = String.sub ticket 0 (n - 32) in
        let mac = String.sub ticket (n - 32) 32 in
        if not (Crypto.Hmac.verify ~key:(Stek.hmac_key stek) ~msg:body ~tag:mac) then
          Error "tls13: bad ticket MAC"
        else begin
          let parse r =
            let _name = Wire.Reader.take r Stek.key_name_len in
            let iv = Wire.Reader.take r 16 in
            let encrypted = Wire.Reader.vec16 r in
            (iv, encrypted)
          in
          match Wire.Reader.parse_result body parse with
          | Error e -> Error e
          | Ok (iv, encrypted) -> (
              match Crypto.Block_mode.cbc_decrypt (Stek.aes_key stek) ~iv encrypted with
              | Error e -> Error e
              | Ok plain -> Wire.Reader.parse_result plain read_psk_state)
        end
  end

(* --- Key schedule (RFC 8446 section 7.1) ----------------------------------------- *)

type secrets = {
  early_secret : string;
  binder_key : string;
  client_early_traffic : string; (* protects 0-RTT data *)
  handshake_secret : string;
  master_secret : string;
  client_app_traffic : string;
  server_app_traffic : string;
  resumption_master : string;
}

let empty_hash = Crypto.Sha256.digest ""

(* [psk] and [dh_shared] default to zeros when absent, per the RFC. *)
let key_schedule ?(psk = zeros) ?(dh_shared = zeros) ~ch_hash ~full_hash () =
  let early_secret = Crypto.Hkdf.extract ~salt:zeros psk in
  let binder_key =
    Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"res binder" ~transcript_hash:empty_hash
  in
  let client_early_traffic =
    Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"c e traffic" ~transcript_hash:ch_hash
  in
  let derived1 =
    Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"derived" ~transcript_hash:empty_hash
  in
  let handshake_secret = Crypto.Hkdf.extract ~salt:derived1 dh_shared in
  let derived2 =
    Crypto.Hkdf.derive_secret ~secret:handshake_secret ~label:"derived" ~transcript_hash:empty_hash
  in
  let master_secret = Crypto.Hkdf.extract ~salt:derived2 zeros in
  {
    early_secret;
    binder_key;
    client_early_traffic;
    handshake_secret;
    master_secret;
    client_app_traffic =
      Crypto.Hkdf.derive_secret ~secret:master_secret ~label:"c ap traffic" ~transcript_hash:full_hash;
    server_app_traffic =
      Crypto.Hkdf.derive_secret ~secret:master_secret ~label:"s ap traffic" ~transcript_hash:full_hash;
    resumption_master =
      Crypto.Hkdf.derive_secret ~secret:master_secret ~label:"res master" ~transcript_hash:full_hash;
  }

let psk_of_resumption_master ~resumption_master ~nonce =
  Crypto.Hkdf.expand_label ~secret:resumption_master ~label:"resumption" ~context:nonce hash_len

(* --- Traffic protection ------------------------------------------------------------ *)

(* AES-128-CTR + HMAC keyed from a traffic secret: a stand-in AEAD with
   the real key derivation (expand-label "key" / "iv"). *)
let protect ~traffic_secret data =
  let key =
    Crypto.Aes.of_key (Crypto.Hkdf.expand_label ~secret:traffic_secret ~label:"key" ~context:"" 16)
  in
  let nonce = Crypto.Hkdf.expand_label ~secret:traffic_secret ~label:"iv" ~context:"" 8 in
  let mac_key = Crypto.Hkdf.expand_label ~secret:traffic_secret ~label:"mac" ~context:"" 32 in
  let ct = Crypto.Block_mode.ctr_encrypt key ~nonce data in
  ct ^ Crypto.Hmac.sha256 ~key:mac_key ct

let unprotect ~traffic_secret data =
  let n = String.length data in
  if n < 32 then Error "tls13: protected record too short"
  else begin
    let ct = String.sub data 0 (n - 32) in
    let tag = String.sub data (n - 32) 32 in
    let key =
      Crypto.Aes.of_key (Crypto.Hkdf.expand_label ~secret:traffic_secret ~label:"key" ~context:"" 16)
    in
    let nonce = Crypto.Hkdf.expand_label ~secret:traffic_secret ~label:"iv" ~context:"" 8 in
    let mac_key = Crypto.Hkdf.expand_label ~secret:traffic_secret ~label:"mac" ~context:"" 32 in
    if not (Crypto.Hmac.verify ~key:mac_key ~msg:ct ~tag) then Error "tls13: bad record MAC"
    else Ok (Crypto.Block_mode.ctr_decrypt key ~nonce ct)
  end

(* --- Messages ------------------------------------------------------------------------ *)

type client_hello = {
  ch_random : string;
  ch_key_share : string option; (* ECDHE public point; absent in pure psk_ke *)
  ch_psk_identity : string option; (* the opaque ticket *)
  ch_psk_mode : psk_mode;
  ch_binder : string; (* "" when no PSK offered *)
  ch_early_data : string option; (* protected 0-RTT payload *)
}

type server_hello = {
  sh_random : string;
  sh_key_share : string option;
  sh_psk_accepted : bool;
  sh_new_ticket : (string * string) option; (* nonce, sealed ticket *)
}

(* Transcript bytes for hashing; the binder covers the CH *without* the
   binder itself (the RFC's truncated transcript). *)
let ch_bytes ?(with_binder = true) ch =
  Wire.Writer.build (fun w ->
      Wire.Writer.bytes w ch.ch_random;
      Wire.Writer.vec16 w (Option.value ch.ch_key_share ~default:"");
      Wire.Writer.vec16 w (Option.value ch.ch_psk_identity ~default:"");
      Wire.Writer.u8 w (match ch.ch_psk_mode with Psk_ke -> 0 | Psk_dhe_ke -> 1);
      if with_binder then Wire.Writer.vec8 w ch.ch_binder)

let sh_bytes sh =
  Wire.Writer.build (fun w ->
      Wire.Writer.bytes w sh.sh_random;
      Wire.Writer.vec16 w (Option.value sh.sh_key_share ~default:"");
      Wire.Writer.u8 w (if sh.sh_psk_accepted then 1 else 0))

let binder_for ~binder_key ~truncated_ch_hash = Crypto.Hmac.sha256 ~key:binder_key truncated_ch_hash

(* --- Server --------------------------------------------------------------------------- *)

type server_config = {
  curve : Crypto.Ec.curve;
  stek_manager : Stek_manager.t;
  psk_lifetime : int; (* draft-15: at most 7 days *)
  allowed_modes : psk_mode list;
  max_early_data : int; (* 0 = no 0-RTT *)
}

type server = { sc : server_config; srng : Crypto.Drbg.t }

let server ~config ~rng = { sc = config; srng = rng }

type server_result = {
  sr_hello : server_hello;
  sr_secrets : secrets;
  sr_early_data : (string, string) result option;
      (* decrypted 0-RTT payload, if the client sent any and the PSK was
         accepted; None when no early data *)
  sr_resumed : bool;
}

let handle_client_hello server ~now (ch : client_hello) =
  let sc = server.sc in
  let truncated_hash = Crypto.Sha256.digest (ch_bytes ~with_binder:false ch) in
  (* 1. PSK acceptance. *)
  let accepted_psk =
    match ch.ch_psk_identity with
    | None -> None
    | Some ticket -> (
        if not (List.mem ch.ch_psk_mode sc.allowed_modes) then None
        else
          let find_stek name = Stek_manager.find_for_decrypt sc.stek_manager ~now name in
          match unseal_psk ~find_stek ticket with
          | Error _ -> None
          | Ok state ->
              let age = now - state.issued_at in
              if age < 0 || age > min state.lifetime sc.psk_lifetime then None
              else begin
                (* Verify the binder before accepting. *)
                let early = Crypto.Hkdf.extract ~salt:zeros state.psk in
                let binder_key =
                  Crypto.Hkdf.derive_secret ~secret:early ~label:"res binder"
                    ~transcript_hash:empty_hash
                in
                if
                  Crypto.Hmac.equal_ct ch.ch_binder
                    (binder_for ~binder_key ~truncated_ch_hash:truncated_hash)
                then Some state
                else None
              end)
  in
  (* 2. Key exchange, per mode. *)
  let needs_dh =
    match (accepted_psk, ch.ch_psk_mode) with
    | Some _, Psk_ke -> false
    | Some _, Psk_dhe_ke | None, _ -> true
  in
  let dh_result =
    if not needs_dh then Ok (None, None)
    else
      match ch.ch_key_share with
      | None -> Error "tls13: key share required"
      | Some share -> (
          match Crypto.Ec.point_of_bytes sc.curve share with
          | Error e -> Error e
          | Ok peer -> (
              let kp = Crypto.Ec.gen_keypair sc.curve server.srng in
              match Crypto.Ec.shared_secret kp ~peer_pub:peer with
              | Error e -> Error e
              | Ok z -> Ok (Some (Crypto.Ec.public_bytes kp), Some z)))
  in
  match dh_result with
  | Error e -> Error e
  | Ok (server_share, dh_shared) when accepted_psk <> None || dh_shared <> None ->
      let psk = Option.map (fun s -> s.psk) accepted_psk in
      let ch_hash = Crypto.Sha256.digest (ch_bytes ch) in
      let sh0 =
        {
          sh_random = Crypto.Drbg.generate server.srng 32;
          sh_key_share = server_share;
          sh_psk_accepted = accepted_psk <> None;
          sh_new_ticket = None;
        }
      in
      let full_hash = Crypto.Sha256.digest (ch_bytes ch ^ sh_bytes sh0) in
      let secrets = key_schedule ?psk ?dh_shared ~ch_hash ~full_hash () in
      (* 3. 0-RTT: only valid when the PSK was accepted and allowed. *)
      let early =
        match (ch.ch_early_data, accepted_psk) with
        | None, _ -> None
        | Some _, None -> Some (Error "tls13: early data rejected (no PSK)")
        | Some _, Some state when state.max_early_data = 0 ->
            Some (Error "tls13: early data rejected (not permitted)")
        | Some data, Some _ ->
            Some (unprotect ~traffic_secret:secrets.client_early_traffic data)
      in
      (* 4. Issue a fresh ticket for the *next* resumption. *)
      let nonce = Crypto.Drbg.generate server.srng 8 in
      let new_psk = psk_of_resumption_master ~resumption_master:secrets.resumption_master ~nonce in
      let new_state =
        {
          psk = new_psk;
          issued_at = now;
          lifetime = sc.psk_lifetime;
          max_early_data = sc.max_early_data;
        }
      in
      let ticket = seal_psk (Stek_manager.issuing sc.stek_manager ~now) server.srng new_state in
      Ok
        {
          sr_hello = { sh0 with sh_new_ticket = Some (nonce, ticket) };
          sr_secrets = secrets;
          sr_early_data = early;
          sr_resumed = accepted_psk <> None;
        }
  | Ok _ -> Error "tls13: nothing to key the connection with"

(* --- Client --------------------------------------------------------------------------- *)

type client_offer =
  | Fresh13
  | Resume13 of { ticket : string; state : psk_state; mode : psk_mode; early_data : string option }

type client_result = {
  cl_secrets : secrets;
  cl_resumed : bool;
  cl_new_ticket : (string * psk_state) option; (* sealed ticket + client copy *)
}

(* Run one connection against a server — the condensed two-flight
   exchange. Returns both ends' views so tests can compare. *)
let connect ~client_rng server ~now ~offer =
  let sc = server.sc in
  let kp =
    match offer with
    | Resume13 { mode = Psk_ke; _ } -> None
    | Fresh13 | Resume13 _ -> Some (Crypto.Ec.gen_keypair sc.curve client_rng)
  in
  let psk_identity, psk_state, mode, early_plain =
    match offer with
    | Fresh13 -> (None, None, Psk_dhe_ke, None)
    | Resume13 { ticket; state; mode; early_data } -> (Some ticket, Some state, mode, early_data)
  in
  let ch0 =
    {
      ch_random = Crypto.Drbg.generate client_rng 32;
      ch_key_share = Option.map Crypto.Ec.public_bytes kp;
      ch_psk_identity = psk_identity;
      ch_psk_mode = mode;
      ch_binder = "";
      ch_early_data = None;
    }
  in
  (* Binder over the truncated CH. *)
  let ch1 =
    match psk_state with
    | None -> ch0
    | Some state ->
        let early = Crypto.Hkdf.extract ~salt:zeros state.psk in
        let binder_key =
          Crypto.Hkdf.derive_secret ~secret:early ~label:"res binder" ~transcript_hash:empty_hash
        in
        let truncated = Crypto.Sha256.digest (ch_bytes ~with_binder:false ch0) in
        { ch0 with ch_binder = binder_for ~binder_key ~truncated_ch_hash:truncated }
  in
  (* 0-RTT data under the client early traffic secret. *)
  let ch2 =
    match (early_plain, psk_state) with
    | Some plain, Some state ->
        let ch_hash = Crypto.Sha256.digest (ch_bytes ch1) in
        let early_secret = Crypto.Hkdf.extract ~salt:zeros state.psk in
        let cet =
          Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"c e traffic"
            ~transcript_hash:ch_hash
        in
        { ch1 with ch_early_data = Some (protect ~traffic_secret:cet plain) }
    | _ -> ch1
  in
  match handle_client_hello server ~now ch2 with
  | Error e -> Error e
  | Ok sr -> (
      (* Client-side key schedule must agree. *)
      let dh_shared =
        match (kp, sr.sr_hello.sh_key_share) with
        | Some kp, Some share -> (
            match Crypto.Ec.point_of_bytes sc.curve share with
            | Error _ -> None
            | Ok peer -> Result.to_option (Crypto.Ec.shared_secret kp ~peer_pub:peer))
        | _ -> None
      in
      let psk = if sr.sr_hello.sh_psk_accepted then Option.map (fun s -> s.psk) psk_state else None in
      let ch_hash = Crypto.Sha256.digest (ch_bytes ch2) in
      let full_hash =
        Crypto.Sha256.digest (ch_bytes ch2 ^ sh_bytes { sr.sr_hello with sh_new_ticket = None })
      in
      let cl_secrets = key_schedule ?psk ?dh_shared ~ch_hash ~full_hash () in
      if not (String.equal cl_secrets.master_secret sr.sr_secrets.master_secret) then
        Error "tls13: key schedule mismatch"
      else
        let cl_new_ticket =
          Option.map
            (fun (nonce, ticket) ->
              ( ticket,
                {
                  psk =
                    psk_of_resumption_master ~resumption_master:cl_secrets.resumption_master ~nonce;
                  issued_at = now;
                  lifetime = sc.psk_lifetime;
                  max_early_data = sc.max_early_data;
                } ))
            sr.sr_hello.sh_new_ticket
        in
        Ok (sr, { cl_secrets; cl_resumed = sr.sr_resumed; cl_new_ticket }))

(* --- The attacker's view (Section 2.4 meets Section 6.1) ---------------------------- *)

(* Given a recorded exchange (CH/SH bytes are public; protected data is
   recorded) and a stolen STEK, reconstruct what decrypts:

   - the 0-RTT early data always falls (it is keyed from the PSK alone);
   - with [Psk_ke], the whole connection falls (no DH entered the
     schedule);
   - with [Psk_dhe_ke], application data survives: the attacker lacks
     the ephemeral DH output. *)
type attack_outcome = {
  early_data : (string, string) result option;
  app_data : (string, string) result;
}

let attack ~find_stek ~(ch : client_hello) ~(sh : server_hello) ~recorded_app =
  match ch.ch_psk_identity with
  | None -> { early_data = None; app_data = Error "no PSK in this connection" }
  | Some ticket -> (
      match unseal_psk ~find_stek ticket with
      | Error e -> { early_data = None; app_data = Error e }
      | Ok state ->
          let ch_hash = Crypto.Sha256.digest (ch_bytes ch) in
          let full_hash =
            Crypto.Sha256.digest (ch_bytes ch ^ sh_bytes { sh with sh_new_ticket = None })
          in
          let early_data =
            Option.map
              (fun protected_early ->
                let early_secret = Crypto.Hkdf.extract ~salt:zeros state.psk in
                let cet =
                  Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"c e traffic"
                    ~transcript_hash:ch_hash
                in
                unprotect ~traffic_secret:cet protected_early)
              ch.ch_early_data
          in
          let app_data =
            match ch.ch_psk_mode with
            | Psk_dhe_ke -> Error "psk_dhe_ke: fresh DH protects the resumed connection"
            | Psk_ke ->
                let secrets = key_schedule ~psk:state.psk ~ch_hash ~full_hash () in
                unprotect ~traffic_secret:secrets.client_app_traffic recorded_app
          in
          { early_data; app_data })
