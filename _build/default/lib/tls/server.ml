(* The server half of the handshake engine.

   Flow for a full handshake (TLS 1.2 message order):

     C -> S   ClientHello                         [handle_client_hello]
     S -> C   ServerHello Certificate
              (ServerKeyExchange) ServerHelloDone
     C -> S   ClientKeyExchange Finished          [handle_client_flight]
     S -> C   (NewSessionTicket) Finished

   and for an abbreviated (resumed) handshake:

     C -> S   ClientHello (session ID or ticket)  [handle_client_hello]
     S -> C   ServerHello (NewSessionTicket) Finished
     C -> S   Finished                            [handle_client_finished]

   The engine performs the real cryptography end to end: (EC)DHE key
   exchange with the configured reuse policy, ECDSA signatures over the
   key-exchange parameters, RFC 5077 ticket sealing under the managed
   STEK, session caching, and Finished verification over the running
   transcript hash. *)

module Msg = Handshake_msg

type t = { config : Config.server_config; rng : Crypto.Drbg.t }

let create ~config ~rng = { config; rng }
let config t = t.config

(* Simulated process restart: per-process STEKs and cached ephemeral
   values die; a static key file and the session cache (often an external
   memcache) survive. Shared state managers are restarted through the
   config so that co-located domains restart together. *)
let restart t ~now =
  (match t.config.Config.tickets with
  | Some tc -> Stek_manager.restart tc.Config.stek_manager ~now
  | None -> ());
  Kex_cache.restart t.config.Config.kex_cache

(* --- Transcript -------------------------------------------------------------- *)

let add transcript msg = Buffer.add_string transcript (Msg.to_bytes msg)
let transcript_hash transcript = Crypto.Sha256.digest (Buffer.contents transcript)

(* --- Negotiation -------------------------------------------------------------- *)

let select_suite t (offered : int list) =
  List.find_opt (fun s -> List.mem (Types.suite_to_int s) offered) t.config.Config.suites

type kex_secret =
  | Dhe_secret of Crypto.Dh.keypair
  | Ecdhe_secret of Crypto.Ec.keypair
  | X25519_secret of Crypto.X25519.keypair
  | Static_secret

(* Named-group code point for X25519 (RFC 8422). *)
let x25519_group_id = 29

type pending = {
  p_server : t;
  p_transcript : Buffer.t;
  p_client_random : string;
  p_server_random : string;
  p_suite : Types.cipher_suite;
  p_session_id : string; (* ID the new session will get; "" if none *)
  p_ticket_negotiated : bool;
  p_kex : kex_secret;
}

type resuming = {
  r_server : t;
  r_transcript : Buffer.t;
  r_session : Session.t;
  r_expected_verify : string; (* client Finished we await *)
}

type hello_result =
  | Negotiating of Msg.t list * pending
  | Resuming of Msg.t list * resuming * [ `Via_session_id | `Via_ticket ]

let signed_params ~client_random ~server_random params_bytes =
  client_random ^ server_random ^ params_bytes

let ske_params_bytes = function
  | Msg.Ske_dhe { dh_p; dh_g; dh_ys } ->
      Wire.Writer.build (fun w ->
          Wire.Writer.vec16 w dh_p;
          Wire.Writer.vec16 w dh_g;
          Wire.Writer.vec16 w dh_ys)
  | Msg.Ske_ecdhe { curve_id; point } ->
      Wire.Writer.build (fun w ->
          Wire.Writer.u16 w curve_id;
          Wire.Writer.vec16 w point)

(* Pick the ECDHE group: X25519 when the client ranks group 29 above the
   environment's Weierstrass curve in its supported_groups extension. *)
let client_prefers_x25519 ~env exts =
  match
    List.find_map (function Extension.Supported_groups g -> Some g | _ -> None) exts
  with
  | None -> false
  | Some groups ->
      let rec first = function
        | [] -> false
        | g :: _ when g = x25519_group_id -> true
        | g :: _ when g = env.Config.ecdhe_curve_id -> false
        | _ :: rest -> first rest
      in
      first groups

let make_server_key_exchange t ~now ~client_random ~server_random ~client_exts suite =
  let env = t.config.Config.env in
  match Types.suite_kex suite with
  | Types.Static_ecdh -> (None, Static_secret)
  | Types.Ecdhe when client_prefers_x25519 ~env client_exts ->
      let kp = Kex_cache.x25519_keypair t.config.Config.kex_cache ~now t.rng in
      let params =
        Msg.Ske_ecdhe { curve_id = x25519_group_id; point = Crypto.X25519.public_bytes kp }
      in
      let signature =
        Crypto.Ecdsa.signature_bytes env.Config.pki_curve
          (Crypto.Ecdsa.sign t.config.Config.cert_key t.rng
             (signed_params ~client_random ~server_random (ske_params_bytes params)))
      in
      ( Some (Msg.Server_key_exchange { ske_params = params; ske_signature = signature }),
        X25519_secret kp )
  | Types.Dhe ->
      let kp = Kex_cache.dhe_keypair t.config.Config.kex_cache ~now ~group:env.Config.dh_group t.rng in
      let p = Crypto.Dh.group_p env.Config.dh_group in
      let g = Crypto.Dh.group_g env.Config.dh_group in
      let params =
        Msg.Ske_dhe
          {
            dh_p = Crypto.Bignum.to_bytes_be p;
            dh_g = Crypto.Bignum.to_bytes_be g;
            dh_ys = Crypto.Dh.public_bytes kp;
          }
      in
      let signature =
        Crypto.Ecdsa.signature_bytes env.Config.pki_curve
          (Crypto.Ecdsa.sign t.config.Config.cert_key t.rng
             (signed_params ~client_random ~server_random (ske_params_bytes params)))
      in
      ( Some (Msg.Server_key_exchange { ske_params = params; ske_signature = signature }),
        Dhe_secret kp )
  | Types.Ecdhe ->
      let kp =
        Kex_cache.ecdhe_keypair t.config.Config.kex_cache ~now ~curve:env.Config.ecdhe_curve t.rng
      in
      let params =
        Msg.Ske_ecdhe
          { curve_id = env.Config.ecdhe_curve_id; point = Crypto.Ec.public_bytes kp }
      in
      let signature =
        Crypto.Ecdsa.signature_bytes env.Config.pki_curve
          (Crypto.Ecdsa.sign t.config.Config.cert_key t.rng
             (signed_params ~client_random ~server_random (ske_params_bytes params)))
      in
      ( Some (Msg.Server_key_exchange { ske_params = params; ske_signature = signature }),
        Ecdhe_secret kp )

(* Issue a NewSessionTicket for [session] under the current STEK. *)
let make_ticket t ~now (tc : Config.ticket_config) session =
  let stek = Stek_manager.issuing tc.Config.stek_manager ~now in
  Msg.New_session_ticket
    {
      nst_lifetime_hint = tc.Config.lifetime_hint;
      nst_ticket = Ticket.seal stek t.rng session;
    }

(* Attempt ticket resumption; returns the recovered session on success. *)
let try_ticket_resumption t ~now ~offered_suites exts =
  match (t.config.Config.tickets, Extension.find_session_ticket exts) with
  | Some tc, Some ticket when String.length ticket > 0 -> (
      let find_stek key_name =
        Stek_manager.find_for_decrypt tc.Config.stek_manager ~now key_name
      in
      match Ticket.unseal ~find_stek ticket with
      | Error _ -> None
      | Ok session ->
          let age = now - Session.established_at session in
          let suite_code = Types.suite_to_int (Session.cipher_suite session) in
          if age >= 0 && age <= tc.Config.accept_lifetime && List.mem suite_code offered_suites
          then Some (session, tc)
          else None)
  | _ -> None

let try_id_resumption t ~now ~offered_suites session_id =
  match t.config.Config.session_cache with
  | None -> None
  | Some cache when String.length session_id > 0 -> (
      match Session_cache.lookup cache ~now session_id with
      | Some session
        when List.mem (Types.suite_to_int (Session.cipher_suite session)) offered_suites ->
          Some session
      | Some _ | None -> None)
  | Some _ -> None

let fresh_session_id t = if t.config.Config.issue_session_ids then Crypto.Drbg.generate t.rng 32 else ""

let handle_client_hello t ~now msg =
  match msg with
  | Msg.Client_hello ch -> (
      if ch.Msg.ch_version <> Types.TLS_1_2 then Error Types.Protocol_version
      else begin
        let offered = ch.Msg.ch_cipher_suites in
        let client_offers_ticket_ext = Extension.has_session_ticket ch.Msg.ch_extensions in
        let ticket_negotiated = client_offers_ticket_ext && t.config.Config.tickets <> None in
        let server_random = Crypto.Drbg.generate t.rng Types.random_len in
        let transcript = Buffer.create 1024 in
        add transcript msg;
        (* 1. Ticket resumption takes precedence (RFC 5077 section 3.4). *)
        match try_ticket_resumption t ~now ~offered_suites:offered ch.Msg.ch_extensions with
        | Some (session, tc) ->
            let sh =
              Msg.Server_hello
                {
                  sh_version = Types.TLS_1_2;
                  sh_random = server_random;
                  (* Echo the client's offered ID if any, per RFC 5077. *)
                  sh_session_id = ch.Msg.ch_session_id;
                  sh_cipher_suite = Session.cipher_suite session;
                  sh_extensions = [ Extension.Session_ticket "" ];
                }
            in
            add transcript sh;
            let reissue =
              if tc.Config.reissue_on_resumption then begin
                let nst = make_ticket t ~now tc session in
                add transcript nst;
                [ nst ]
              end
              else []
            in
            let master = Session.master_secret session in
            let server_fin =
              Msg.Finished
                (Crypto.Prf.server_finished ~master ~handshake_hash:(transcript_hash transcript))
            in
            add transcript server_fin;
            let expected =
              Crypto.Prf.client_finished ~master ~handshake_hash:(transcript_hash transcript)
            in
            Ok
              (Resuming
                 ( (sh :: reissue) @ [ server_fin ],
                   {
                     r_server = t;
                     r_transcript = transcript;
                     r_session = session;
                     r_expected_verify = expected;
                   },
                   `Via_ticket ))
        | None -> (
            (* 2. Session-ID resumption. *)
            match try_id_resumption t ~now ~offered_suites:offered ch.Msg.ch_session_id with
            | Some session ->
                let sh =
                  Msg.Server_hello
                    {
                      sh_version = Types.TLS_1_2;
                      sh_random = server_random;
                      sh_session_id = ch.Msg.ch_session_id;
                      sh_cipher_suite = Session.cipher_suite session;
                      sh_extensions =
                        (if ticket_negotiated then [ Extension.Session_ticket "" ] else []);
                    }
                in
                add transcript sh;
                let master = Session.master_secret session in
                let server_fin =
                  Msg.Finished
                    (Crypto.Prf.server_finished ~master
                       ~handshake_hash:(transcript_hash transcript))
                in
                add transcript server_fin;
                let expected =
                  Crypto.Prf.client_finished ~master ~handshake_hash:(transcript_hash transcript)
                in
                Ok
                  (Resuming
                     ( [ sh; server_fin ],
                       {
                         r_server = t;
                         r_transcript = transcript;
                         r_session = session;
                         r_expected_verify = expected;
                       },
                       `Via_session_id ))
            | None -> (
                (* 3. Full handshake. *)
                match select_suite t offered with
                | None -> Error Types.Handshake_failure
                | Some suite ->
                    let session_id = fresh_session_id t in
                    let sh =
                      Msg.Server_hello
                        {
                          sh_version = Types.TLS_1_2;
                          sh_random = server_random;
                          sh_session_id = session_id;
                          sh_cipher_suite = suite;
                          sh_extensions =
                            (if ticket_negotiated then [ Extension.Session_ticket "" ] else []);
                        }
                    in
                    add transcript sh;
                    let cert_msg =
                      Msg.Certificate (List.map Cert.to_bytes t.config.Config.cert_chain)
                    in
                    add transcript cert_msg;
                    let ske, kex =
                      make_server_key_exchange t ~now ~client_random:ch.Msg.ch_random
                        ~server_random ~client_exts:ch.Msg.ch_extensions suite
                    in
                    Option.iter (add transcript) ske;
                    add transcript Msg.Server_hello_done;
                    let flight =
                      [ sh; cert_msg ] @ Option.to_list ske @ [ Msg.Server_hello_done ]
                    in
                    Ok
                      (Negotiating
                         ( flight,
                           {
                             p_server = t;
                             p_transcript = transcript;
                             p_client_random = ch.Msg.ch_random;
                             p_server_random = server_random;
                             p_suite = suite;
                             p_session_id = session_id;
                             p_ticket_negotiated = ticket_negotiated;
                             p_kex = kex;
                           } ))))
      end)
  | _ -> Error Types.Unexpected_message

(* Accessors for wire-level drivers ({!Connection}). *)
let resuming_session r = r.r_session

(* Compute the premaster secret from the ClientKeyExchange payload. *)
let premaster_of_cke pending cke_public =
  let env = pending.p_server.config.Config.env in
  match pending.p_kex with
  | Dhe_secret kp ->
      Crypto.Dh.shared_secret kp ~peer_pub:(Crypto.Bignum.of_bytes_be cke_public)
  | Ecdhe_secret kp -> (
      match Crypto.Ec.point_of_bytes env.Config.ecdhe_curve cke_public with
      | Error e -> Error e
      | Ok peer -> Crypto.Ec.shared_secret kp ~peer_pub:peer)
  | X25519_secret kp ->
      if String.length cke_public <> Crypto.X25519.key_len then Error "x25519: bad public length"
      else Crypto.X25519.shared_secret kp ~peer_pub:cke_public
  | Static_secret -> (
      match Crypto.Ec.point_of_bytes env.Config.pki_curve cke_public with
      | Error e -> Error e
      | Ok peer -> Crypto.Ecdsa.ecdh pending.p_server.config.Config.cert_key ~peer_pub:peer)

(* The master secret a pending handshake reaches with this CKE — what a
   wire-level driver needs to decrypt the client's Finished record before
   handing the flight to [handle_client_flight] (which recomputes it). *)
let master_of_cke pending ~cke_public =
  match premaster_of_cke pending cke_public with
  | Error _ -> Error Types.Illegal_parameter
  | Ok pre_master ->
      Ok
        (Crypto.Prf.master_secret ~pre_master ~client_random:pending.p_client_random
           ~server_random:pending.p_server_random)

(* Handle the client's [ClientKeyExchange; Finished] flight, completing a
   full handshake. Returns the server's closing flight and the freshly
   established session. *)
let handle_client_flight pending ~now msgs =
  match msgs with
  | [ Msg.Client_key_exchange cke_public; Msg.Finished client_verify ] -> (
      match premaster_of_cke pending cke_public with
      | Error _ -> Error Types.Illegal_parameter
      | Ok pre_master ->
          let t = pending.p_server in
          add pending.p_transcript (Msg.Client_key_exchange cke_public);
          let master =
            Crypto.Prf.master_secret ~pre_master ~client_random:pending.p_client_random
              ~server_random:pending.p_server_random
          in
          let expected =
            Crypto.Prf.client_finished ~master
              ~handshake_hash:(transcript_hash pending.p_transcript)
          in
          if not (Crypto.Hmac.equal_ct expected client_verify) then Error Types.Decrypt_error
          else begin
            add pending.p_transcript (Msg.Finished client_verify);
            let session =
              Session.make ~id:pending.p_session_id ~master_secret:master
                ~cipher_suite:pending.p_suite ~established_at:now
            in
            (* Cache for session-ID resumption. *)
            (match t.config.Config.session_cache with
            | Some cache when String.length pending.p_session_id > 0 ->
                Session_cache.store cache ~now session
            | Some _ | None -> ());
            (* Issue a ticket if negotiated. *)
            let nst =
              match (pending.p_ticket_negotiated, t.config.Config.tickets) with
              | true, Some tc -> Some (make_ticket t ~now tc session)
              | _ -> None
            in
            Option.iter (add pending.p_transcript) nst;
            let server_fin =
              Msg.Finished
                (Crypto.Prf.server_finished ~master
                   ~handshake_hash:(transcript_hash pending.p_transcript))
            in
            add pending.p_transcript server_fin;
            Ok (Option.to_list nst @ [ server_fin ], session)
          end)
  | _ -> Error Types.Unexpected_message

(* Verify the client Finished that closes an abbreviated handshake. *)
let handle_client_finished resuming msg =
  match msg with
  | Msg.Finished verify ->
      if Crypto.Hmac.equal_ct resuming.r_expected_verify verify then Ok resuming.r_session
      else Error Types.Decrypt_error
  | _ -> Error Types.Unexpected_message
