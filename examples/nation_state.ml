(* Section 7.2 reproduced: a nation-state attacker's target analysis.

   The attacker already records TLS ciphertext in bulk; the question is
   which single secret, stolen from which operator, decrypts the most
   traffic. The paper works through Google (one STEK for everything,
   rotated every 14h, accepted 28h, fronting 9% of the Top Million's
   mail) and contrasts Yandex (one STEK, never rotated for months).

     dune exec examples/nation_state.exe *)

let () =
  let config =
    {
      Tlsharm.Study.default_config with
      Tlsharm.Study.world_config =
        { Simnet.World.default_config with Simnet.World.n_domains = 2500 };
      campaign_days = 14;
      verbose = true;
    }
  in
  let study = Tlsharm.Study.create ~config () in

  (* The external measurements an attacker would make against the
     flagship: STEK rollover cadence, acceptance window, blast radius. *)
  let analysis =
    Tlsharm.Target_analysis.analyze study ~operator:"google" ~flagship:"google.com"
  in
  print_endline (Tlsharm.Target_analysis.report analysis);

  (* The contrast case: an operator that never rotates. *)
  print_endline (Tlsharm.Target_analysis.static_stek_contrast study ~flagship:"yandex.ru");

  (* Make the decryption concrete: record a victim's connection to the
     flagship, then open it with the operator's (stolen) STEK. *)
  let world = Tlsharm.Study.world study in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = Simnet.World.env world;
          offer_suites = Tls.Types.all_cipher_suites;
          offer_ticket = true;
          root_store = Simnet.World.root_store world;
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"victim") ()
  in
  (* Reach the flagship's server instance through the normal resolution
     path, then wiretap a victim connection to it. *)
  let domain = Option.get (Simnet.World.find_domain world "google.com") in
  ignore domain;
  let now = Simnet.Clock.now (Simnet.World.clock world) in
  (* We need the server object itself to model the compromise; the world
     hides it, so this demo rebuilds the scenario against the shared
     Google STEK manager — which is exactly what the attacker steals. *)
  match Simnet.World.operator_stek world "google" with
  | None -> print_endline "no google STEK manager in this world?"
  | Some manager ->
      let probe_outcome =
        Simnet.World.connect world ~client ~hostname:"google.com" ~offer:Tls.Client.Fresh
      in
      (match probe_outcome with
      | Ok o when o.Tls.Engine.ok -> (
          match o.Tls.Engine.new_ticket with
          | Some (_, ticket) -> (
              (* The recorded ticket + the stolen STEK manager. *)
              let find_stek key_name =
                Tls.Stek_manager.find_for_decrypt manager ~now key_name
              in
              match Tls.Ticket.decrypt_with_stolen_stek ~find_stek ticket with
              | Ok session ->
                  Printf.printf
                    "\nStolen-STEK check against google.com: recovered the master secret of a\n\
                     recorded session (%s...) — every Google-property connection using the\n\
                     ticket extension in this key's lifetime decrypts the same way.\n"
                    (Wire.Hex.encode (String.sub (Tls.Session.master_secret session) 0 8))
              | Error e ->
                  Format.printf "unseal failed: %a@." Tls.Ticket.pp_unseal_error e)
          | None -> print_endline "google.com issued no ticket?")
      | _ -> print_endline "could not connect to google.com");
      (* How many domains' mail transits the same STEK? *)
      let ds = Simnet.World.domains world in
      let mx =
        Array.fold_left
          (fun acc d ->
            if Simnet.World.mx_points_to_google d then acc +. Simnet.World.domain_weight d
            else acc)
          0.0 ds
      in
      Printf.printf
        "\nMail blast radius: %.0f weighted Top Million domains route mail through the\n\
         operator (paper: >90,000 domains, 9.1%%) — their inbound mail sessions ride the\n\
         same stolen key.\n"
        mx
