(* Section 8.2: what the operator recommendations buy.

   Runs the measurement study once, then re-evaluates the combined
   vulnerability-window distribution (Figure 8) under each recommended
   mitigation — frequent STEK rotation, short session caches, no
   ephemeral reuse — and under the maximum-security "no shortcuts"
   configuration.

     dune exec examples/operator_hardening.exe *)

let () =
  let config =
    {
      Tlsharm.Study.default_config with
      Tlsharm.Study.world_config =
        { Simnet.World.default_config with Simnet.World.n_domains = 2000 };
      campaign_days = 21;
      verbose = true;
    }
  in
  let study = Tlsharm.Study.create ~config () in
  print_endline (Tlsharm.Mitigations.report study);

  (* Drill into one mitigation: what dominates the residual exposure once
     STEKs rotate daily? *)
  let components = Tlsharm.Study.vulnerability_components study in
  let rotated =
    Analysis.Vuln_window.windows_of_components
      ~mitigate:(fun c ->
        { c with Analysis.Vuln_window.stek_span_days = min 1 c.Analysis.Vuln_window.stek_span_days })
      components
  in
  let day = 86_400 in
  let still_exposed =
    List.filter (fun w -> w.Analysis.Vuln_window.seconds > day) rotated
  in
  let by_mechanism = Hashtbl.create 8 in
  List.iter
    (fun w ->
      let m = w.Analysis.Vuln_window.dominant in
      Hashtbl.replace by_mechanism m
        (w.Analysis.Vuln_window.weight
        +. Option.value ~default:0.0 (Hashtbl.find_opt by_mechanism m)))
    still_exposed;
  print_endline "\nResidual >24h exposure after daily STEK rotation, by dominant mechanism:";
  Hashtbl.iter
    (fun m w -> Printf.printf "  %-16s %8.0f weighted domains\n" m w)
    by_mechanism;
  print_endline
    "\n(Reading: once tickets rotate, what remains is long session caches and (EC)DHE\n\
     value reuse — each recommendation closes a different hole, which is why the paper\n\
     lists all of them.)"
