(* What TLS 1.3 changes — and doesn't — about the paper's findings
   (sections 2.4 and 8.1), demonstrated concretely with the real RFC 8446
   key schedule:

   1. a psk_ke resumption is recorded; the STEK leaks; everything
      decrypts, exactly like a 1.2 ticket;
   2. a psk_dhe_ke resumption is recorded; the STEK leaks; the 1-RTT
      application data survives — but the 0-RTT early data still falls;
   3. the ecosystem-level projection of the measured study under both
      modes.

     dune exec examples/tls13_migration.exe *)

let day = 86_400

let () =
  let env = Tls.Config.sim_env () in
  let curve = env.Tls.Config.ecdhe_curve in
  let stek_manager =
    (* The operational sin under study: a never-rotated ticket key. *)
    Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"prod-key-file" ~now:0
  in
  let server =
    Tls.Tls13.server
      ~config:
        {
          Tls.Tls13.curve;
          stek_manager;
          psk_lifetime = 7 * day (* the draft-15 cap the paper critiques *);
          allowed_modes = [ Tls.Tls13.Psk_ke; Tls.Tls13.Psk_dhe_ke ];
          max_early_data = 16_384;
        }
      ~rng:(Crypto.Drbg.create ~seed:"t13-server")
  in
  let rng = Crypto.Drbg.create ~seed:"t13-client" in

  (* Bootstrap: a fresh handshake yields the first PSK ticket. *)
  let _, first =
    match Tls.Tls13.connect ~client_rng:rng server ~now:100 ~offer:Tls.Tls13.Fresh13 with
    | Ok r -> r
    | Error e -> failwith e
  in
  let ticket, state = Option.get first.Tls.Tls13.cl_new_ticket in
  let find_stek name = Tls.Stek_manager.find_for_decrypt stek_manager ~now:999_999 name in

  let run_mode mode label =
    Printf.printf "== %s ==\n" label;
    (* Build the wire messages the passive observer records. *)
    let kp = if mode = Tls.Tls13.Psk_ke then None else Some (Crypto.Ec.gen_keypair curve rng) in
    let early_secret = Crypto.Hkdf.extract ~salt:(String.make 32 '\x00') state.Tls.Tls13.psk in
    let binder_key =
      Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"res binder"
        ~transcript_hash:(Crypto.Sha256.digest "")
    in
    let ch0 =
      {
        Tls.Tls13.ch_random = Crypto.Drbg.generate rng 32;
        ch_key_share = Option.map Crypto.Ec.public_bytes kp;
        ch_psk_identity = Some ticket;
        ch_psk_mode = mode;
        ch_binder = "";
        ch_early_data = None;
      }
    in
    let truncated = Crypto.Sha256.digest (Tls.Tls13.ch_bytes ~with_binder:false ch0) in
    let ch1 =
      { ch0 with Tls.Tls13.ch_binder = Tls.Tls13.binder_for ~binder_key ~truncated_ch_hash:truncated }
    in
    (* 0-RTT: the user's first request rides before the handshake ends. *)
    let ch_hash = Crypto.Sha256.digest (Tls.Tls13.ch_bytes ch1) in
    let cet =
      Crypto.Hkdf.derive_secret ~secret:early_secret ~label:"c e traffic" ~transcript_hash:ch_hash
    in
    let ch =
      {
        ch1 with
        Tls.Tls13.ch_early_data =
          Some (Tls.Tls13.protect ~traffic_secret:cet "GET /inbox (0-RTT)");
      }
    in
    match Tls.Tls13.handle_client_hello server ~now:500 ch with
    | Error e -> Printf.printf "handshake failed: %s\n" e
    | Ok sr ->
        let recorded_app =
          Tls.Tls13.protect
            ~traffic_secret:sr.Tls.Tls13.sr_secrets.Tls.Tls13.client_app_traffic
            "POST /password-change new=hunter3"
        in
        Printf.printf "resumed: %b; observer recorded CH, SH, 0-RTT and 1-RTT ciphertext\n"
          sr.Tls.Tls13.sr_resumed;
        let outcome = Tls.Tls13.attack ~find_stek ~ch ~sh:sr.Tls.Tls13.sr_hello ~recorded_app in
        (match outcome.Tls.Tls13.early_data with
        | Some (Ok plain) -> Printf.printf "  stolen STEK vs 0-RTT data:  DECRYPTED %S\n" plain
        | Some (Error e) -> Printf.printf "  stolen STEK vs 0-RTT data:  failed (%s)\n" e
        | None -> ());
        (match outcome.Tls.Tls13.app_data with
        | Ok plain -> Printf.printf "  stolen STEK vs 1-RTT data:  DECRYPTED %S\n" plain
        | Error e -> Printf.printf "  stolen STEK vs 1-RTT data:  safe (%s)\n" e);
        print_newline ()
  in
  run_mode Tls.Tls13.Psk_ke "psk_ke resumption (the 1.2-ticket semantics carried forward)";
  run_mode Tls.Tls13.Psk_dhe_ke "psk_dhe_ke resumption (fresh DH under the PSK)";

  (* The ecosystem projection: run a small study and re-evaluate Figure 8
     under 1.3 semantics. *)
  print_endline "Running a small measurement study for the ecosystem projection...";
  let study =
    Tlsharm.Study.create
      ~config:
        {
          Tlsharm.Study.default_config with
          Tlsharm.Study.world_config =
            { Simnet.World.default_config with Simnet.World.n_domains = 2000 };
          campaign_days = 21;
          verbose = true;
        }
      ()
  in
  print_endline (Tlsharm.Tls13_projection.report study)
