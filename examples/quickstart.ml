(* Quickstart: build a small simulated Internet, scan it, and print a
   compact "security harm" summary — the library's core loop in ~60
   lines.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A world: a sampled Top Million with calibrated operator
     behaviour. Small and fast here; scale [n_domains] up for fidelity. *)
  let config =
    {
      Tlsharm.Study.default_config with
      Tlsharm.Study.world_config =
        { Simnet.World.default_config with Simnet.World.n_domains = 2000 };
      campaign_days = 21 (* three weeks instead of nine, for speed *);
      verbose = true;
    }
  in
  let study = Tlsharm.Study.create ~config () in

  (* 2. One figure: how long do servers keep honoring session tickets? *)
  print_endline (Tlsharm.Experiments.fig2 study);

  (* 3. The longitudinal campaign: STEK lifetimes (the paper's headline
     per-mechanism result). *)
  print_endline (Tlsharm.Experiments.fig3 study);

  (* 4. Who shares secrets with whom: the biggest STEK service groups. *)
  print_endline (Tlsharm.Experiments.table6 study);

  (* 5. The bottom line: combined vulnerability windows (Figure 8). *)
  print_endline (Tlsharm.Experiments.fig8 study);

  (* 6. Programmatic access to the same results. *)
  let windows = Tlsharm.Study.vulnerability_windows study in
  let summary = Analysis.Vuln_window.summarize windows in
  Printf.printf
    "\nProgrammatic summary: %.0f weighted domains participated; %.1f%% are exposed for\n\
     more than a day after a 'forward secret' connection ends.\n\n"
    summary.Analysis.Vuln_window.population
    (100.0
    *. summary.Analysis.Vuln_window.over_24h
    /. summary.Analysis.Vuln_window.population);

  (* 7. The per-domain view: grade individual sites' shortcut posture. *)
  let world = Tlsharm.Study.world study in
  List.iter
    (fun domain -> print_endline (Tlsharm.Posture.report (Tlsharm.Posture.assess world ~domain ())))
    [ "yahoo.com"; "google.com" ]
