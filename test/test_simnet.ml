(* Tests for the simulated Internet: population invariants, sampling
   weights, seeded case studies, operator state sharing, churn, and the
   connect path. One shared small world keeps the suite fast. *)

let world_config = { Simnet.World.default_config with Simnet.World.n_domains = 1600 }
let world = lazy (Simnet.World.create ~config:world_config ())

let mk_client ?(offer_ticket = true) ?(suites = Tls.Types.all_cipher_suites) () =
  let w = Lazy.force world in
  Tls.Client.create
    ~config:
      {
        Tls.Config.cl_env = Simnet.World.env w;
        offer_suites = suites;
        offer_ticket;
        root_store = Simnet.World.root_store w;
        check_certs = false;
        evaluate_trust = true;
        verify_ske = true;
      }
    ~rng:(Crypto.Drbg.create ~seed:"simnet-test-client") ()

let connect ?offer hostname =
  let w = Lazy.force world in
  Simnet.World.connect w ~client:(mk_client ()) ~hostname
    ~offer:(Option.value offer ~default:Tls.Client.Fresh)

let expect_outcome hostname =
  match connect hostname with
  | Ok o when o.Tls.Engine.ok -> o
  | Ok o ->
      Alcotest.fail
        (Printf.sprintf "handshake with %s failed: %s" hostname
           (Option.value ~default:"?" o.Tls.Engine.error))
  | Error _ -> Alcotest.fail (Printf.sprintf "could not connect to %s" hostname)

(* --- Population ----------------------------------------------------------- *)

let test_population_shape () =
  let w = Lazy.force world in
  let ds = Simnet.World.domains w in
  Alcotest.(check int) "population size" world_config.Simnet.World.n_domains (Array.length ds);
  (* Ranks are unique, positive, and sorted. *)
  let seen = Hashtbl.create 2048 in
  Array.iter
    (fun d ->
      let r = Simnet.World.domain_rank d in
      Alcotest.(check bool) "rank positive" true (r >= 1);
      Alcotest.(check bool) "rank unique" false (Hashtbl.mem seen r);
      Hashtbl.replace seen r ())
    ds;
  let sorted = Array.for_all (fun _ -> true) ds in
  ignore sorted;
  let ranks = Array.map Simnet.World.domain_rank ds in
  let is_sorted = ref true in
  Array.iteri (fun i r -> if i > 0 && r < ranks.(i - 1) then is_sorted := false) ranks;
  Alcotest.(check bool) "sorted by rank" true !is_sorted;
  (* Ranks 1..1000 are fully sampled. *)
  let top1000 = Array.fold_left (fun acc d -> if Simnet.World.domain_rank d <= 1000 then acc + 1 else acc) 0 ds in
  Alcotest.(check int) "top 1000 dense" 1000 top1000

let test_weights () =
  let w = Lazy.force world in
  let ds = Simnet.World.domains w in
  let total = Array.fold_left (fun acc d -> acc +. Simnet.World.domain_weight d) 0.0 ds in
  Alcotest.(check bool) "weights sum to ~1M" true (abs_float (total -. 1_000_000.0) < 20_000.0);
  Array.iter
    (fun d ->
      if Simnet.World.domain_rank d <= 1000 then
        Alcotest.(check (float 0.001)) "top-1000 weight 1" 1.0 (Simnet.World.domain_weight d))
    ds

let test_https_trusted_fractions () =
  let w = Lazy.force world in
  let ds = Simnet.World.domains w in
  let wsum f = Array.fold_left (fun acc d -> if f d then acc +. Simnet.World.domain_weight d else acc) 0.0 ds in
  let total = wsum (fun _ -> true) in
  let https = wsum Simnet.World.domain_has_https /. total in
  let trusted = wsum Simnet.World.domain_trusted /. total in
  (* Table 1 funnel: ~68% HTTPS, ~45% browser-trusted. *)
  Alcotest.(check bool) "https share plausible" true (https > 0.60 && https < 0.80);
  Alcotest.(check bool) "trusted share plausible" true (trusted > 0.38 && trusted < 0.55)

let test_mx_fraction () =
  let w = Lazy.force world in
  let ds = Simnet.World.domains w in
  let wsum f = Array.fold_left (fun acc d -> if f d then acc +. Simnet.World.domain_weight d else acc) 0.0 ds in
  let frac = wsum Simnet.World.mx_points_to_google /. wsum (fun _ -> true) in
  Alcotest.(check bool) "google MX ~9%" true (frac > 0.05 && frac < 0.14)

(* --- Case studies ------------------------------------------------------------ *)

let test_notables_present () =
  let w = Lazy.force world in
  List.iter
    (fun (name, rank) ->
      match Simnet.World.find_domain w name with
      | None -> Alcotest.fail (name ^ " missing")
      | Some d ->
          Alcotest.(check int) (name ^ " rank") rank (Simnet.World.domain_rank d);
          Alcotest.(check bool) (name ^ " https") true (Simnet.World.domain_has_https d);
          Alcotest.(check bool) (name ^ " trusted") true (Simnet.World.domain_trusted d))
    [
      ("google.com", 1);
      ("youtube.com", 2);
      ("facebook.com", 3);
      ("yahoo.com", 5);
      ("netflix.com", 31);
      ("yandex.ru", 28);
      ("fantabobworld.com", 310_000);
    ]

let test_yandex_shared_stek () =
  let o1 = expect_outcome "yandex.ru" in
  let o2 = expect_outcome "yandex.com" in
  Alcotest.(check bool) "both issued tickets" true
    (o1.Tls.Engine.stek_key_name <> None && o2.Tls.Engine.stek_key_name <> None);
  Alcotest.(check bool) "same STEK across yandex domains" true
    (o1.Tls.Engine.stek_key_name = o2.Tls.Engine.stek_key_name)

let test_fantabob_hint () =
  let o = expect_outcome "fantabobworld.com" in
  match o.Tls.Engine.new_ticket with
  | Some (hint, _) -> Alcotest.(check int) "90-day hint" (90 * 86_400) hint
  | None -> Alcotest.fail "fantabobworld issued no ticket"

let test_whatsapp_no_dhe () =
  let w = Lazy.force world in
  let client = mk_client ~suites:[ Tls.Types.DHE_ECDSA_AES128_SHA256 ] ~offer_ticket:false () in
  match Simnet.World.connect w ~client ~hostname:"whatsapp.com" ~offer:Tls.Client.Fresh with
  | Ok o -> Alcotest.(check bool) "whatsapp refuses DHE" false o.Tls.Engine.ok
  | Error _ -> Alcotest.fail "connection error"

(* --- Operator behaviour -------------------------------------------------------- *)

let find_by_operator op =
  let w = Lazy.force world in
  Array.to_list (Simnet.World.domains w)
  |> List.filter (fun d -> String.equal (Simnet.World.domain_operator d) op)

let test_google_long_session_ids () =
  let o1 = expect_outcome "google.com" in
  let session = Option.get o1.Tls.Engine.session in
  (* Google honors session IDs for more than 24 hours (section 4.1). *)
  let w = Lazy.force world in
  Simnet.Clock.advance (Simnet.World.clock w) (25 * 3600);
  let o2 =
    match connect ~offer:(Tls.Client.Offer_session_id session) "google.com" with
    | Ok o -> o
    | Error _ -> Alcotest.fail "reconnect failed"
  in
  Alcotest.(check bool) "resumed after 25h" true (o2.Tls.Engine.resumed = `Via_session_id)

let test_cloudflare_group_shares_stek () =
  match find_by_operator "cloudflare" with
  | a :: b :: _ ->
      let oa = expect_outcome (Simnet.World.domain_name a) in
      let ob = expect_outcome (Simnet.World.domain_name b) in
      Alcotest.(check bool) "cloudflare customers share a STEK" true
        (oa.Tls.Engine.stek_key_name <> None
        && oa.Tls.Engine.stek_key_name = ob.Tls.Engine.stek_key_name)
  | _ -> Alcotest.fail "not enough cloudflare customers sampled"

let test_google_mail_shares_stek () =
  (* Section 7.2: Google's SMTP/IMAPS front-ends use the same STEK as
     the web properties. *)
  let w = Lazy.force world in
  let web = expect_outcome "google.com" in
  let mx =
    Array.to_list (Simnet.World.domains w)
    |> List.find_map (fun d ->
           if Simnet.World.mx_points_to_google d then Simnet.World.mx_host w d else None)
  in
  match mx with
  | None -> Alcotest.fail "no domain with google MX sampled"
  | Some host -> (
      match
        Simnet.World.connect_service_host w ~client:(mk_client ()) ~hostname:host
          ~offer:Tls.Client.Fresh
      with
      | Ok mail when mail.Tls.Engine.ok ->
          Alcotest.(check bool) "mail issues tickets" true (mail.Tls.Engine.stek_key_name <> None);
          Alcotest.(check bool) "same STEK as web" true
            (mail.Tls.Engine.stek_key_name = web.Tls.Engine.stek_key_name)
      | Ok _ | Error _ -> Alcotest.fail "mail host handshake failed")

let test_operator_sizes_ordered () =
  (* CloudFlare must dominate the sampled operator populations. *)
  let size op = List.length (find_by_operator op) in
  Alcotest.(check bool) "cloudflare > google" true (size "cloudflare" > size "google");
  Alcotest.(check bool) "google > fastly" true (size "google" >= size "fastly");
  Alcotest.(check bool) "jackhenry sampled" true (size "jackhenry" >= 1)

(* --- Churn / presence ------------------------------------------------------------ *)

let test_presence () =
  let w = Lazy.force world in
  let ds = Simnet.World.domains w in
  Array.iter
    (fun d ->
      if Simnet.World.domain_stable d then
        for day = 0 to 5 do
          Alcotest.(check bool) "stable domains always present" true
            (Simnet.World.in_list_on_day d ~day)
        done)
    ds;
  (* Determinism: the same (domain, day) always answers the same. *)
  let d = ds.(Array.length ds - 1) in
  for day = 0 to 20 do
    Alcotest.(check bool) "presence deterministic"
      (Simnet.World.in_list_on_day d ~day)
      (Simnet.World.in_list_on_day d ~day)
  done;
  (* Churn exists: some domain is absent on some day. *)
  let any_absent = ref false in
  Array.iter
    (fun d ->
      for day = 0 to 10 do
        if not (Simnet.World.in_list_on_day d ~day) then any_absent := true
      done)
    ds;
  Alcotest.(check bool) "churn exists" true !any_absent

(* --- Connect path ------------------------------------------------------------------ *)

let test_connect_errors () =
  let w = Lazy.force world in
  (match Simnet.World.connect w ~client:(mk_client ()) ~hostname:"no-such-domain.test" ~offer:Tls.Client.Fresh with
  | Error Simnet.World.No_such_domain -> ()
  | _ -> Alcotest.fail "expected No_such_domain");
  let no_https =
    Array.to_list (Simnet.World.domains w)
    |> List.find_opt (fun d -> not (Simnet.World.domain_has_https d))
  in
  match no_https with
  | None -> Alcotest.fail "world has no HTTP-only domain"
  | Some d -> (
      match
        Simnet.World.connect w ~client:(mk_client ()) ~hostname:(Simnet.World.domain_name d)
          ~offer:Tls.Client.Fresh
      with
      | Error Simnet.World.No_https -> ()
      | _ -> Alcotest.fail "expected No_https")

let test_asn_ip_indexes () =
  let w = Lazy.force world in
  let d =
    Array.to_list (Simnet.World.domains w)
    |> List.find (fun d -> Simnet.World.domain_has_https d)
  in
  let mates = Simnet.World.domains_in_asn w (Simnet.World.domain_asn d) in
  Alcotest.(check bool) "domain indexed under its ASN" true
    (List.exists (String.equal (Simnet.World.domain_name d)) mates);
  let ipmates = Simnet.World.domains_on_ip w (Simnet.World.domain_ip d) in
  Alcotest.(check bool) "domain indexed under its IP" true
    (List.exists (String.equal (Simnet.World.domain_name d)) ipmates)

let test_determinism () =
  (* Two worlds from the same seed agree on a sample of behaviour. *)
  let w2 = Simnet.World.create ~config:world_config () in
  let w1 = Lazy.force world in
  let names w = Array.map Simnet.World.domain_name (Simnet.World.domains w) in
  Alcotest.(check bool) "same domain list" true (names w1 = names w2)

(* --- Profiles ------------------------------------------------------------------------ *)

let test_profile_sampler () =
  let rng = Crypto.Drbg.create ~seed:"profile-test" in
  let n = 3000 in
  let https = ref 0 and trusted = ref 0 and tickets = ref 0 and dhe_reuse = ref 0 in
  for _ = 1 to n do
    let p = Simnet.Profile.sample_tail rng in
    if p.Simnet.Profile.https then begin
      incr https;
      if p.Simnet.Profile.trusted then incr trusted;
      if p.Simnet.Profile.ticket <> None then incr tickets;
      if p.Simnet.Profile.dhe_policy <> Tls.Kex_cache.Fresh_always then incr dhe_reuse
    end
  done;
  let frac a b = float_of_int a /. float_of_int b in
  Alcotest.(check bool) "https ~66%" true (abs_float (frac !https n -. 0.66) < 0.04);
  Alcotest.(check bool) "trusted ~60% of https" true (abs_float (frac !trusted !https -. 0.60) < 0.05);
  Alcotest.(check bool) "tickets ~72% of https" true (abs_float (frac !tickets !https -. 0.72) < 0.05);
  Alcotest.(check bool) "dhe reuse ~7%" true (abs_float (frac !dhe_reuse !https -. 0.072) < 0.03)

(* --- Regions --------------------------------------------------------------------------- *)

(* A world is a pure function of (config, region): every region serves
   the identical population (names, ranks, weights, operators), and any
   non-default region differs from the default vantage only in the
   misconfigurations of regionally-inconsistent operators. *)
let region_base =
  { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "region-test" }

let population w =
  Array.map
    (fun d ->
      ( Simnet.World.domain_name d,
        Simnet.World.domain_rank d,
        Simnet.World.domain_weight d,
        Simnet.World.domain_operator d ))
    (Simnet.World.domains w)

let misconfigs w =
  Array.map (fun d -> Simnet.World.domain_misconfig d) (Simnet.World.domains w)

let test_region_overrides () =
  let wd = Simnet.World.create ~config:region_base () in
  let base_pop = population wd and base_mis = misconfigs wd in
  let overridden = ref 0 in
  List.iter
    (fun r ->
      let wr =
        Simnet.World.create ~config:{ region_base with Simnet.World.region = r } ()
      in
      Alcotest.(check bool)
        (r ^ " serves the same population")
        true
        (population wr = base_pop);
      let mis = misconfigs wr in
      if r = Simnet.Region.default_name then
        Alcotest.(check bool) "default region is the paper's world" true (mis = base_mis)
      else begin
        let differing = ref 0 in
        Array.iteri (fun i m -> if m <> base_mis.(i) then incr differing) mis;
        if !differing > 0 then incr overridden;
        (* Overrides are the calibrated minority, not a rewrite. *)
        Alcotest.(check bool)
          (r ^ " overrides stay a minority")
          true
          (float_of_int !differing < 0.3 *. float_of_int (Array.length mis))
      end)
    Simnet.Region.all;
  Alcotest.(check bool) "some region applies overrides" true (!overridden > 0)

let test_region_validation () =
  Alcotest.(check bool) "known regions valid" true
    (List.for_all Simnet.Region.is_valid Simnet.Region.all);
  Alcotest.(check bool) "unknown region invalid" false (Simnet.Region.is_valid "mars-base");
  match
    Simnet.World.create
      ~config:{ region_base with Simnet.World.region = "mars-base" }
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "world accepted an unknown region"

let prop_region_replica_identity =
  QCheck2.Test.make ~name:"multi-region replica identity" ~count:3
    QCheck2.Gen.(pair (oneofl Simnet.Region.all) (int_range 0 999))
    (fun (region, n) ->
      let cfg =
        {
          region_base with
          Simnet.World.seed = Printf.sprintf "region-prop-%d" n;
          region;
        }
      in
      let w1 = Simnet.World.create ~config:cfg () in
      let w2 = Simnet.World.create ~config:cfg () in
      population w1 = population w2 && misconfigs w1 = misconfigs w2)

let test_misconfig_taxonomy () =
  let open Simnet.Profile in
  Alcotest.(check int) "clean severity" 0 (misconfig_severity well_configured);
  Alcotest.(check string) "clean label" "clean" (misconfig_label well_configured);
  let export = { well_configured with weak_dh = Some Export_grade } in
  let legacy = { well_configured with weak_dh = Some Legacy } in
  let stale = { well_configured with stale_order = true } in
  Alcotest.(check bool) "export worse than legacy" true
    (misconfig_severity export > misconfig_severity legacy);
  let combined = misconfig_combine legacy { export with static_only = true } in
  Alcotest.(check bool) "combine keeps worst weak_dh" true
    (combined.weak_dh = Some Export_grade);
  Alcotest.(check bool) "combine ORs flags" true combined.static_only;
  Alcotest.(check string) "label joins parts" "export-dh+static-only"
    (misconfig_label combined);
  (* Menu shaping: static-only collapses to the static suite, stale
     orders only filter, and an empty menu (no HTTPS) stays empty. *)
  let all = Tls.Types.all_cipher_suites in
  Alcotest.(check bool) "static-only menu" true
    (misconfig_suites { well_configured with static_only = true } all
    = [ Tls.Types.ECDH_ECDSA_AES128_SHA256 ]);
  Alcotest.(check bool) "stale order filters, never invents" true
    (List.for_all (fun s -> List.mem s all) (misconfig_suites stale all));
  Alcotest.(check bool) "empty menu stays empty" true (misconfig_suites export [] = [])

(* --- Clock ----------------------------------------------------------------------------- *)

let test_clock () =
  let c = Simnet.Clock.create ~start:100 () in
  Alcotest.(check int) "start" 100 (Simnet.Clock.now c);
  Simnet.Clock.advance c 50;
  Alcotest.(check int) "advance" 150 (Simnet.Clock.now c);
  Simnet.Clock.set c 1000;
  Alcotest.(check int) "set" 1000 (Simnet.Clock.now c);
  Alcotest.check_raises "no time travel" (Invalid_argument "Clock.set: cannot go backwards")
    (fun () -> Simnet.Clock.set c 10);
  Alcotest.(check int) "day_of" 0 (Simnet.Clock.day_of c)

let () =
  Alcotest.run "simnet"
    [
      ( "population",
        [
          Alcotest.test_case "shape" `Quick test_population_shape;
          Alcotest.test_case "weights" `Quick test_weights;
          Alcotest.test_case "https/trusted fractions" `Quick test_https_trusted_fractions;
          Alcotest.test_case "mx fraction" `Quick test_mx_fraction;
        ] );
      ( "case-studies",
        [
          Alcotest.test_case "notables present" `Quick test_notables_present;
          Alcotest.test_case "yandex shared stek" `Quick test_yandex_shared_stek;
          Alcotest.test_case "fantabob hint" `Quick test_fantabob_hint;
          Alcotest.test_case "whatsapp no dhe" `Quick test_whatsapp_no_dhe;
        ] );
      ( "operators",
        [
          Alcotest.test_case "google long session ids" `Quick test_google_long_session_ids;
          Alcotest.test_case "cloudflare shared stek" `Quick test_cloudflare_group_shares_stek;
          Alcotest.test_case "google mail shares stek" `Quick test_google_mail_shares_stek;
          Alcotest.test_case "operator sizes ordered" `Quick test_operator_sizes_ordered;
        ] );
      ( "churn",
        [ Alcotest.test_case "presence" `Quick test_presence ] );
      ( "connect",
        [
          Alcotest.test_case "errors" `Quick test_connect_errors;
          Alcotest.test_case "asn/ip indexes" `Quick test_asn_ip_indexes;
          Alcotest.test_case "determinism" `Slow test_determinism;
        ] );
      ( "profiles",
        [ Alcotest.test_case "tail sampler calibration" `Quick test_profile_sampler ] );
      ( "regions",
        [
          Alcotest.test_case "regional overrides" `Slow test_region_overrides;
          Alcotest.test_case "region validation" `Quick test_region_validation;
          Alcotest.test_case "misconfig taxonomy" `Quick test_misconfig_taxonomy;
          QCheck_alcotest.to_alcotest prop_region_replica_identity;
        ] );
      ("clock", [ Alcotest.test_case "basics" `Quick test_clock ]);
    ]
