(* Tests for the analysis library: statistics, union-find, lifetime
   spans, service grouping, the vulnerability-window model, rank tiers,
   and the text renderers — mostly on synthetic inputs with known
   answers. *)

module St = Analysis.Stats

let pt ?(w = 1.0) v = { St.value = v; weight = w }

(* --- Stats ----------------------------------------------------------------- *)

let test_fraction () =
  let points = [ pt 1.0; pt 2.0; pt ~w:2.0 3.0 ] in
  Alcotest.(check (float 1e-9)) "weighted fraction" 0.75 (St.fraction points (fun v -> v >= 2.0));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (St.fraction [] (fun _ -> true))

let test_cdf () =
  let c = St.cdf [ pt 1.0; pt 2.0; pt 2.0; pt 4.0 ] in
  Alcotest.(check (float 1e-9)) "below all" 0.0 (St.cdf_at c 0.5);
  Alcotest.(check (float 1e-9)) "at 1" 0.25 (St.cdf_at c 1.0);
  Alcotest.(check (float 1e-9)) "at 2" 0.75 (St.cdf_at c 2.0);
  Alcotest.(check (float 1e-9)) "at max" 1.0 (St.cdf_at c 4.0);
  Alcotest.(check (float 1e-9)) "beyond" 1.0 (St.cdf_at c 100.0)

let test_percentile_median () =
  let points = List.init 100 (fun i -> pt (float_of_int (i + 1))) in
  Alcotest.(check (float 1.0)) "median" 50.0 (St.median points);
  Alcotest.(check (float 1.0)) "p90" 90.0 (St.percentile points 0.9);
  (* Weighted: one heavy point dominates. *)
  Alcotest.(check (float 1e-9)) "weighted median" 7.0 (St.median [ pt 1.0; pt ~w:10.0 7.0 ])

let test_histogram () =
  let buckets = St.histogram ~bounds:[ 1.0; 5.0 ] [ pt 0.5; pt 1.0; pt 3.0; pt 10.0; pt 6.0 ] in
  Alcotest.(check (float 1e-9)) "first" 2.0 buckets.(0);
  Alcotest.(check (float 1e-9)) "second" 1.0 buckets.(1);
  Alcotest.(check (float 1e-9)) "overflow" 2.0 buckets.(2)

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"cdf is monotone and ends at 1" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range 0.0 1000.0))
    (fun values ->
      let c = St.cdf (List.map pt values) in
      let fractions = List.map snd c in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone fractions
      && abs_float (List.fold_left (fun _ f -> f) 0.0 fractions -. 1.0) < 1e-9)

let test_duration_format () =
  Alcotest.(check string) "seconds" "45s" (St.duration_to_string 45.0);
  Alcotest.(check string) "minutes" "5m" (St.duration_to_string 300.0);
  Alcotest.(check string) "hours" "18h" (St.duration_to_string (18.0 *. 3600.0));
  Alcotest.(check string) "days" "63d" (St.duration_to_string (63.0 *. 86400.0))

(* --- Union-find ----------------------------------------------------------------- *)

let test_union_find () =
  let uf = Scanner.Union_find.create () in
  Scanner.Union_find.union uf "a" "b";
  Scanner.Union_find.union uf "b" "c";
  Scanner.Union_find.union uf "x" "y";
  Scanner.Union_find.add uf "lonely";
  Alcotest.(check bool) "transitive" true (Scanner.Union_find.connected uf "a" "c");
  Alcotest.(check bool) "separate" false (Scanner.Union_find.connected uf "a" "x");
  let groups = Scanner.Union_find.groups uf in
  Alcotest.(check int) "three groups" 3 (List.length groups);
  Alcotest.(check int) "largest first" 3 (List.length (List.hd groups))

let prop_union_find_partition =
  QCheck2.Test.make ~name:"union-find groups partition the elements" ~count:100
    QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 0 15) (int_range 0 15)))
    (fun pairs ->
      let uf = Scanner.Union_find.create () in
      List.iter
        (fun (a, b) ->
          Scanner.Union_find.union uf (string_of_int a) (string_of_int b))
        pairs;
      let groups = Scanner.Union_find.groups uf in
      let all = List.concat groups in
      List.length all = List.length (List.sort_uniq compare all))

(* --- Lifetime spans -------------------------------------------------------------- *)

let mk_day ~day ?stek ?dhe ?ecdhe () =
  {
    Scanner.Daily_scan.day;
    present = true;
    default_ok = true;
    stek_id = stek;
    ticket_hint = None;
    ecdhe_value = ecdhe;
    dhe_ok = dhe <> None;
    dhe_value = dhe;
  }

let mk_series ~domain days =
  {
    Scanner.Daily_scan.domain;
    rank = 10;
    weight = 1.0;
    trusted = true;
    stable = true;
    days = Array.of_list days;
  }

let test_spans_basic () =
  (* The same STEK seen on days 0, 2 and 5 (with a gap) spans 6 days. *)
  let series =
    mk_series ~domain:"gap.example"
      [
        mk_day ~day:0 ~stek:"k1" ();
        mk_day ~day:1 ();
        mk_day ~day:2 ~stek:"k1" ();
        mk_day ~day:3 ~stek:"other" ();
        mk_day ~day:4 ();
        mk_day ~day:5 ~stek:"k1" ();
      ]
  in
  let s = Analysis.Lifetime.spans_of_series ~field:Analysis.Lifetime.Stek series in
  Alcotest.(check int) "span absorbs jitter" 6 s.Analysis.Lifetime.max_span_days;
  Alcotest.(check int) "distinct values" 2 s.Analysis.Lifetime.distinct_values;
  Alcotest.(check int) "observed days" 4 s.Analysis.Lifetime.observed_days

let test_spans_daily_change () =
  let series =
    mk_series ~domain:"rotate.example"
      (List.init 5 (fun i -> mk_day ~day:i ~stek:(Printf.sprintf "k%d" i) ()))
  in
  let s = Analysis.Lifetime.spans_of_series ~field:Analysis.Lifetime.Stek series in
  Alcotest.(check int) "daily change" 1 s.Analysis.Lifetime.max_span_days

let test_spans_never () =
  let series = mk_series ~domain:"never.example" [ mk_day ~day:0 (); mk_day ~day:1 () ] in
  let s = Analysis.Lifetime.spans_of_series ~field:Analysis.Lifetime.Stek series in
  Alcotest.(check int) "never observed" 0 s.Analysis.Lifetime.max_span_days

let test_summarize_and_top () =
  let spans =
    [
      { Analysis.Lifetime.domain = "a"; rank = 500; weight = 2.0; trusted = true; stable = true; observed_days = 9; distinct_values = 1; max_span_days = 63 };
      { Analysis.Lifetime.domain = "b"; rank = 3; weight = 1.0; trusted = true; stable = true; observed_days = 9; distinct_values = 9; max_span_days = 1 };
      { Analysis.Lifetime.domain = "c"; rank = 90; weight = 1.0; trusted = true; stable = true; observed_days = 9; distinct_values = 2; max_span_days = 8 };
      { Analysis.Lifetime.domain = "d"; rank = 7; weight = 1.0; trusted = true; stable = true; observed_days = 0; distinct_values = 0; max_span_days = 0 };
    ]
  in
  let s = Analysis.Lifetime.summarize spans in
  Alcotest.(check (float 1e-9)) "population" 5.0 s.Analysis.Lifetime.population;
  Alcotest.(check (float 1e-9)) "never" 1.0 s.Analysis.Lifetime.never_observed;
  Alcotest.(check (float 1e-9)) "7d+" 3.0 s.Analysis.Lifetime.span_7d_plus;
  Alcotest.(check (float 1e-9)) "30d+" 2.0 s.Analysis.Lifetime.span_30d_plus;
  let top = Analysis.Lifetime.top_reusers ~min_days:7 ~limit:10 spans in
  Alcotest.(check (list string)) "ordered by rank" [ "c"; "a" ]
    (List.map (fun (x : Analysis.Lifetime.domain_spans) -> x.Analysis.Lifetime.domain) top)

(* --- Vulnerability windows --------------------------------------------------------- *)

let test_window_combination () =
  let day = 86_400 in
  let mk c = Analysis.Vuln_window.combine ~domain:"x" ~rank:1 ~weight:1.0 c in
  (* Ticket STEK span dominates. *)
  let w =
    mk
      {
        Analysis.Vuln_window.session_id_honored = 300;
        ticket_honored = 180;
        stek_span_days = 30;
        dhe_span_days = 0;
        ecdhe_span_days = 3;
      }
  in
  Alcotest.(check int) "stek window" (30 * day) w.Analysis.Vuln_window.seconds;
  Alcotest.(check string) "dominant mechanism" "session-ticket" w.Analysis.Vuln_window.dominant;
  (* Daily STEK rotation: the ticket window falls back to the honored
     acceptance time, and the session cache wins. *)
  let w =
    mk
      {
        Analysis.Vuln_window.session_id_honored = 36_000;
        ticket_honored = 180;
        stek_span_days = 1;
        dhe_span_days = 0;
        ecdhe_span_days = 0;
      }
  in
  Alcotest.(check int) "cache window" 36_000 w.Analysis.Vuln_window.seconds;
  Alcotest.(check string) "cache dominant" "session-cache" w.Analysis.Vuln_window.dominant;
  (* Nothing held: window 0. *)
  let w =
    mk
      {
        Analysis.Vuln_window.session_id_honored = 0;
        ticket_honored = 0;
        stek_span_days = 0;
        dhe_span_days = 0;
        ecdhe_span_days = 0;
      }
  in
  Alcotest.(check int) "no exposure" 0 w.Analysis.Vuln_window.seconds

let test_window_summary () =
  let day = 86_400 in
  let mk seconds weight =
    { Analysis.Vuln_window.domain = "x"; rank = 1; weight; seconds; dominant = "m" }
  in
  let windows = [ mk 300 5.0; mk (2 * day) 3.0; mk (10 * day) 1.0; mk (40 * day) 1.0 ] in
  let s = Analysis.Vuln_window.summarize windows in
  Alcotest.(check (float 1e-9)) "population" 10.0 s.Analysis.Vuln_window.population;
  Alcotest.(check (float 1e-9)) "over 24h" 5.0 s.Analysis.Vuln_window.over_24h;
  Alcotest.(check (float 1e-9)) "over 7d" 2.0 s.Analysis.Vuln_window.over_7d;
  Alcotest.(check (float 1e-9)) "over 30d" 1.0 s.Analysis.Vuln_window.over_30d

(* --- Rank buckets --------------------------------------------------------------------- *)

let test_rank_buckets () =
  let mk rank span =
    { Analysis.Lifetime.domain = Printf.sprintf "r%d" rank; rank; weight = 1.0; trusted = true; stable = true; observed_days = 5; distinct_values = 1; max_span_days = span }
  in
  let spans = [ mk 50 1; mk 80 40; mk 5000 1; mk 500_000 8 ] in
  let tiers = Analysis.Rank_buckets.analyze spans in
  let top100 = List.hd tiers in
  Alcotest.(check int) "top100 issuers" 2 top100.Analysis.Rank_buckets.sampled_issuers;
  Alcotest.(check (float 1e-9)) "top100 30d share" 0.5 top100.Analysis.Rank_buckets.share_30d_plus;
  let top1m = List.nth tiers 4 in
  Alcotest.(check int) "top1m cumulative" 4 top1m.Analysis.Rank_buckets.sampled_issuers

(* --- Treemap / report -------------------------------------------------------------------- *)

let test_treemap_classes () =
  Alcotest.(check string) "under 1d" "<1d"
    (Analysis.Treemap.class_label (Analysis.Treemap.classify_days 1.0));
  Alcotest.(check string) "week" "1-7d"
    (Analysis.Treemap.class_label (Analysis.Treemap.classify_days 3.0));
  Alcotest.(check string) "month" "7-30d"
    (Analysis.Treemap.class_label (Analysis.Treemap.classify_days 10.0));
  Alcotest.(check string) "long" ">=30d"
    (Analysis.Treemap.class_label (Analysis.Treemap.classify_days 63.0))

let test_report_table () =
  let text =
    Analysis.Report.table ~headers:[ "name"; "n" ] ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check int) "header + separator + rows" 4 (List.length lines);
  (* Every line has equal width. *)
  match lines with
  | first :: rest ->
      List.iter
        (fun l -> Alcotest.(check int) "aligned" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "empty table"

let test_ascii_cdf_smoke () =
  let c = St.cdf [ pt 1.0; pt 10.0; pt 100.0 ] in
  let text = Analysis.Report.ascii_cdf ~ticks:[ (1.0, "1"); (10.0, "10"); (100.0, "100") ] c in
  Alcotest.(check bool) "mentions full height" true
    (String.length text > 0 && String.sub text 0 4 = "100%")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "fraction" `Quick test_fraction;
          Alcotest.test_case "cdf" `Quick test_cdf;
          Alcotest.test_case "percentile/median" `Quick test_percentile_median;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "duration format" `Quick test_duration_format;
        ] );
      qsuite "stats-properties" [ prop_cdf_monotone ];
      ( "union-find",
        [ Alcotest.test_case "basics" `Quick test_union_find ] );
      qsuite "union-find-properties" [ prop_union_find_partition ];
      ( "lifetime",
        [
          Alcotest.test_case "span absorbs jitter" `Quick test_spans_basic;
          Alcotest.test_case "daily change" `Quick test_spans_daily_change;
          Alcotest.test_case "never observed" `Quick test_spans_never;
          Alcotest.test_case "summary and top reusers" `Quick test_summarize_and_top;
        ] );
      ( "vuln-window",
        [
          Alcotest.test_case "combination" `Quick test_window_combination;
          Alcotest.test_case "summary" `Quick test_window_summary;
        ] );
      ( "rank-buckets",
        [ Alcotest.test_case "tiers" `Quick test_rank_buckets ] );
      ( "render",
        [
          Alcotest.test_case "treemap classes" `Quick test_treemap_classes;
          Alcotest.test_case "table alignment" `Quick test_report_table;
          Alcotest.test_case "ascii cdf" `Quick test_ascii_cdf_smoke;
        ] );
    ]
