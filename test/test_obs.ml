(* Tests for the observability layer: metrics registry semantics, the
   order-independence of shard merges (the property that makes campaign
   telemetry identical at any --jobs), and the guarantee that turning
   telemetry on never perturbs the observation archive. *)

(* --- Metrics basics --------------------------------------------------------------- *)

let bounds = [| 1; 2; 4; 8 |]

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "c.connects";
  Obs.Metrics.add m "c.connects" 2;
  Obs.Metrics.gauge_max m "g.days" 3;
  Obs.Metrics.gauge_max m "g.days" 7;
  Obs.Metrics.gauge_max m "g.days" 5;
  Obs.Metrics.observe m "h.attempts" ~bounds 1;
  Obs.Metrics.observe m "h.attempts" ~bounds 9;
  Alcotest.(check int) "counter accumulates" 3 (Obs.Metrics.counter_value m "c.connects");
  Alcotest.(check int) "absent counter reads zero" 0 (Obs.Metrics.counter_value m "c.nope");
  Alcotest.(check (option int)) "gauge keeps max" (Some 7) (Obs.Metrics.gauge_value m "g.days");
  let s = Obs.Metrics.to_json_string m in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.fail ("metrics JSON does not parse back: " ^ e)
  | Ok j ->
      Alcotest.(check (option string)) "schema stamped" (Some Obs.Metrics.schema)
        (Option.bind (Obs.Json.member "schema" j) Obs.Json.to_str)

let test_metrics_kind_clash () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "x";
  Alcotest.check_raises "gauge on a counter name rejected"
    (Invalid_argument "Obs.Metrics: \"x\" is a counter, not a gauge") (fun () ->
      Obs.Metrics.gauge_max m "x" 1)

let test_merge_with_empty_is_identity () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "c.a" 5;
  Obs.Metrics.gauge_max m "g.b" 2;
  Obs.Metrics.observe m "h.c" ~bounds 3;
  let before = Obs.Metrics.to_json_string m in
  Obs.Metrics.merge m (Obs.Metrics.create ());
  Alcotest.(check string) "merging an empty registry changes nothing" before
    (Obs.Metrics.to_json_string m)

(* --- Merge is commutative and associative ----------------------------------------- *)

(* Random registries are built from op lists; the name prefixes keep each
   name on a single kind, and every histogram shares one bounds array,
   mirroring how the scanner only ever registers fixed-layout series. *)

type op = Incr of string * int | Gauge of string * int | Observe of string * int

let apply m = function
  | Incr (n, v) -> Obs.Metrics.add m n v
  | Gauge (n, v) -> Obs.Metrics.gauge_max m n v
  | Observe (n, v) -> Obs.Metrics.observe m n ~bounds v

let registry_of ops =
  let m = Obs.Metrics.create () in
  List.iter (apply m) ops;
  m

let op_gen =
  QCheck2.Gen.(
    let name tag = map (fun i -> Printf.sprintf "%s.%d" tag i) (int_range 0 4) in
    let* v = int_range 0 20 in
    oneof
      [
        map (fun n -> Incr (n, v)) (name "c");
        map (fun n -> Gauge (n, v)) (name "g");
        map (fun n -> Observe (n, v)) (name "h");
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 30) op_gen)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"metrics merge is commutative" ~count:300
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (a, b) ->
      let ab = registry_of a in
      Obs.Metrics.merge ab (registry_of b);
      let ba = registry_of b in
      Obs.Metrics.merge ba (registry_of a);
      Obs.Metrics.equal ab ba)

let prop_merge_associative =
  QCheck2.Test.make ~name:"metrics merge is associative" ~count:300
    QCheck2.Gen.(triple ops_gen ops_gen ops_gen)
    (fun (a, b, c) ->
      (* ((a+b)+c) vs (a+(b+c)) — built from fresh registries each side
         because merge mutates its destination. *)
      let left = registry_of a in
      Obs.Metrics.merge left (registry_of b);
      Obs.Metrics.merge left (registry_of c);
      let bc = registry_of b in
      Obs.Metrics.merge bc (registry_of c);
      let right = registry_of a in
      Obs.Metrics.merge right bc;
      Obs.Metrics.equal left right)

let test_trace_merge_order_independent () =
  let span t ~name ~s ~e = Obs.Trace.record t ~name ~sim_start:s ~sim_end:e () in
  let a () =
    let t = Obs.Trace.create () in
    span t ~name:"scan.day" ~s:0 ~e:90;
    span t ~name:"campaign.shard" ~s:0 ~e:1000;
    t
  in
  let b () =
    let t = Obs.Trace.create () in
    span t ~name:"scan.day" ~s:100 ~e:250;
    t
  in
  let ab = a () in
  Obs.Trace.merge ab (b ());
  let ba = b () in
  Obs.Trace.merge ba (a ());
  Alcotest.(check string) "span aggregation ignores merge order"
    (Obs.Trace.to_json_string ab) (Obs.Trace.to_json_string ba)

(* --- Worker count cannot change the metrics --------------------------------------- *)

let world_config =
  { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "obs-test" }

let fresh_world () = Simnet.World.create ~config:world_config ()

let test_metrics_equal_across_jobs () =
  let days = 2 in
  let parallel jobs =
    let obs = Obs.Recorder.create () in
    ignore (Scanner.Parallel_campaign.run ~jobs (fresh_world ()) ~days ~obs ());
    obs
  in
  let serial =
    (* The CLI's --jobs 1 path goes through Daily_scan.run, not the shard
       runner, so the serial recorder must also match. *)
    let obs = Obs.Recorder.create () in
    ignore (Scanner.Daily_scan.run ~obs (fresh_world ()) ~days ());
    obs
  in
  let one = parallel 1 in
  let four = parallel 4 in
  Alcotest.(check bool) "metrics are non-trivial" true
    (Obs.Metrics.counter_value (Obs.Recorder.metrics four) "probe.connects" > 0);
  Alcotest.(check string) "1-worker and 4-worker metrics JSON identical"
    (Obs.Recorder.metrics_json_string one)
    (Obs.Recorder.metrics_json_string four);
  Alcotest.(check string) "serial scan metrics JSON identical to 4-worker"
    (Obs.Recorder.metrics_json_string serial)
    (Obs.Recorder.metrics_json_string four)

(* --- Telemetry never perturbs the archive ----------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_archive_bytes_unchanged_by_telemetry () =
  let days = 2 in
  let run ?obs () =
    let t = Scanner.Daily_scan.run ?obs (fresh_world ()) ~days () in
    let path = Filename.temp_file "tlsharm-obs" ".csv" in
    Scanner.Daily_scan.save t path;
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> read_file path)
  in
  let plain = run () in
  let traced = run ~obs:(Obs.Recorder.create ~wall:true ()) () in
  Alcotest.(check bool) "archive is non-empty" true (String.length plain > 0);
  Alcotest.(check bool) "telemetry on/off archives byte-identical" true
    (String.equal plain traced)

(* --- Kernel counters --------------------------------------------------------------- *)

let test_kernel_snapshot_diff () =
  let before = Obs.Kernel.snapshot () in
  ignore (Crypto.Dh.gen_keypair Crypto.Dh.oakley2 (Crypto.Drbg.create ~seed:"obs-kernel-test"));
  let after = Obs.Kernel.snapshot () in
  let diff = Obs.Kernel.diff ~before ~after in
  Alcotest.(check bool) "fixed-base pow advanced" true
    (match List.assoc_opt "pow_mod_fixed" diff with Some n -> n > 0 | None -> false);
  let m = Obs.Metrics.create () in
  Obs.Kernel.add_to_metrics m diff;
  Alcotest.(check bool) "published under kernel.*" true
    (Obs.Metrics.counter_value m "kernel.pow_mod_fixed" > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "kind clash rejected" `Quick test_metrics_kind_clash;
          Alcotest.test_case "empty merge is identity" `Quick test_merge_with_empty_is_identity;
          Alcotest.test_case "trace merge order independent" `Quick
            test_trace_merge_order_independent;
        ] );
      qsuite "merge-laws" [ prop_merge_commutative; prop_merge_associative ];
      ( "campaign",
        [
          Alcotest.test_case "metrics equal across jobs" `Slow test_metrics_equal_across_jobs;
          Alcotest.test_case "archive bytes unchanged by telemetry" `Slow
            test_archive_bytes_unchanged_by_telemetry;
        ] );
      ("kernel", [ Alcotest.test_case "snapshot diff" `Quick test_kernel_snapshot_diff ]);
    ]
