(* Tests for the TLS engine: handshake round-trips (full, session-ID
   resumption, ticket resumption), expiry and rotation behaviour, wire
   codecs, certificate validation, the record layer, and the
   stolen-secret attacks the paper is about. *)

module T = Tls.Types
module Msg = Tls.Handshake_msg

let env = Tls.Config.sim_env ()
let rng () = Crypto.Drbg.create ~seed:"test-tls"

(* --- A tiny PKI ------------------------------------------------------------- *)

let day = 86_400

let ca =
  Tls.Cert.self_signed ~curve:env.Tls.Config.pki_curve ~name:"Test Root CA" ~not_before:0
    ~not_after:(3650 * day) ~serial:1
    (Crypto.Drbg.create ~seed:"test-ca")

let issue_leaf ?(hostname = "example.com") ?(sans = []) ?(not_before = 0)
    ?(not_after = 3650 * day) ?(serial = 42) () =
  let r = Crypto.Drbg.create ~seed:("leaf-" ^ hostname) in
  let keypair = Crypto.Ecdsa.gen_keypair env.Tls.Config.pki_curve r in
  let pub = Crypto.Ec.point_bytes env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key keypair) in
  let cert =
    Tls.Cert.issue ca ~curve:env.Tls.Config.pki_curve ~subject:hostname ~sans ~not_before
      ~not_after ~serial ~pub r
  in
  (cert, keypair)

let root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ]

(* --- Server / client builders ------------------------------------------------ *)

type server_opts = {
  suites : T.cipher_suite list;
  cache_lifetime : int option; (* None = no ID resumption *)
  issue_ids : bool;
  tickets : Tls.Config.ticket_config option;
  kex_policy : Tls.Kex_cache.policy;
}

let default_ticket_config ?(lifetime_hint = 300) ?(accept_lifetime = 300)
    ?(policy = Tls.Stek_manager.Per_process) ?(reissue = true) ?(secret = "stek-secret") ~now () =
  {
    Tls.Config.stek_manager = Tls.Stek_manager.create ~policy ~secret ~now;
    lifetime_hint;
    accept_lifetime;
    reissue_on_resumption = reissue;
  }

let default_opts ~now =
  {
    suites = T.all_cipher_suites;
    cache_lifetime = Some 300;
    issue_ids = true;
    tickets = Some (default_ticket_config ~now ());
    kex_policy = Tls.Kex_cache.Fresh_always;
  }

let make_server ?(hostname = "example.com") ~now:_ opts =
  let cert, key = issue_leaf ~hostname () in
  let config =
    {
      Tls.Config.env;
      suites = opts.suites;
      issue_session_ids = opts.issue_ids;
      session_cache =
        Option.map (fun lt -> Tls.Session_cache.create ~lifetime:lt ~capacity:1000) opts.cache_lifetime;
      tickets = opts.tickets;
      kex_cache = Tls.Kex_cache.uniform ~policy:opts.kex_policy;
      cert_chain = [ cert ];
      cert_key = key;
    }
  in
  Tls.Server.create ~config ~rng:(Crypto.Drbg.create ~seed:("server-" ^ hostname))

let make_client ?(offer_ticket = true) ?(suites = T.all_cipher_suites) ?(check = false) () =
  Tls.Client.create
    ~config:
      {
        Tls.Config.cl_env = env;
        offer_suites = suites;
        offer_ticket;
        root_store;
        check_certs = check;
        evaluate_trust = true;
        verify_ske = true;
      }
    ~rng:(rng ()) ()

let connect ?(hostname = "example.com") ?(offer = Tls.Client.Fresh) client server ~now =
  Tls.Engine.connect client server ~now ~hostname ~offer

let expect_ok what (o : Tls.Engine.outcome) =
  if not o.Tls.Engine.ok then
    Alcotest.fail
      (Printf.sprintf "%s failed: %s" what
         (match (o.Tls.Engine.error, o.Tls.Engine.alert) with
         | Some e, _ -> e
         | None, Some a -> Format.asprintf "%a" T.pp_alert a
         | None, None -> "unknown"))

(* --- Full handshake ----------------------------------------------------------- *)

let test_full_handshake () =
  let now = 1000 in
  let server = make_server ~now (default_opts ~now) in
  let client = make_client () in
  let o = connect client server ~now in
  expect_ok "full handshake" o;
  Alcotest.(check bool) "not resumed" true (o.Tls.Engine.resumed = `No);
  Alcotest.(check bool) "trusted chain" true o.Tls.Engine.trusted;
  Alcotest.(check int) "session id issued" 32 (String.length o.Tls.Engine.session_id);
  Alcotest.(check bool) "ticket issued" true (o.Tls.Engine.new_ticket <> None);
  Alcotest.(check bool) "stek key name visible" true (o.Tls.Engine.stek_key_name <> None);
  Alcotest.(check bool) "kex value recorded" true (o.Tls.Engine.server_kex_public <> None);
  match o.Tls.Engine.session with
  | None -> Alcotest.fail "no session"
  | Some s -> Alcotest.(check int) "established time" now (Tls.Session.established_at s)

let test_each_suite () =
  List.iter
    (fun suite ->
      let now = 1000 in
      let server = make_server ~now { (default_opts ~now) with suites = [ suite ] } in
      let client = make_client () in
      let o = connect client server ~now in
      expect_ok (Format.asprintf "handshake with %a" T.pp_cipher_suite suite) o;
      Alcotest.(check bool) "negotiated requested suite" true
        (o.Tls.Engine.cipher = Some suite);
      (* Static ECDH sends no ServerKeyExchange. *)
      Alcotest.(check bool) "kex value presence matches suite"
        (T.suite_forward_secret suite)
        (o.Tls.Engine.server_kex_public <> None))
    T.all_cipher_suites

let test_no_common_suite () =
  let now = 1000 in
  let server = make_server ~now { (default_opts ~now) with suites = [ T.DHE_ECDSA_AES128_SHA256 ] } in
  let client = make_client ~suites:[ T.ECDHE_ECDSA_AES128_SHA256 ] () in
  let o = connect client server ~now in
  Alcotest.(check bool) "handshake fails" false o.Tls.Engine.ok;
  Alcotest.(check bool) "handshake_failure alert" true
    (o.Tls.Engine.alert = Some T.Handshake_failure)

(* --- Session-ID resumption ------------------------------------------------------ *)

let test_session_id_resumption () =
  let now = 1000 in
  let server = make_server ~now { (default_opts ~now) with tickets = None } in
  let client = make_client ~offer_ticket:false () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  let session = Option.get o1.Tls.Engine.session in
  let o2 =
    connect client server ~now:(now + 60) ~offer:(Tls.Client.Offer_session_id session)
  in
  expect_ok "resumption" o2;
  Alcotest.(check bool) "resumed via ID" true (o2.Tls.Engine.resumed = `Via_session_id);
  Alcotest.(check string) "same session id" (Tls.Session.id session) o2.Tls.Engine.session_id;
  (* Master secret is carried over: same session state on both sides. *)
  Alcotest.(check bool) "same master secret" true
    (Tls.Session.equal session (Option.get o2.Tls.Engine.session))

let test_session_id_expiry () =
  let now = 1000 in
  let server = make_server ~now { (default_opts ~now) with cache_lifetime = Some 300; tickets = None } in
  let client = make_client ~offer_ticket:false () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  let session = Option.get o1.Tls.Engine.session in
  (* Within lifetime: resumes. *)
  let o2 = connect client server ~now:(now + 299) ~offer:(Tls.Client.Offer_session_id session) in
  Alcotest.(check bool) "resumes before expiry" true (o2.Tls.Engine.resumed = `Via_session_id);
  (* After expiry: full handshake with a fresh ID. *)
  let o3 = connect client server ~now:(now + 301) ~offer:(Tls.Client.Offer_session_id session) in
  expect_ok "post-expiry" o3;
  Alcotest.(check bool) "full handshake after expiry" true (o3.Tls.Engine.resumed = `No);
  Alcotest.(check bool) "fresh id" false
    (String.equal o3.Tls.Engine.session_id (Tls.Session.id session))

let test_no_cache_never_resumes () =
  let now = 1000 in
  let server =
    make_server ~now { (default_opts ~now) with cache_lifetime = None; tickets = None }
  in
  let client = make_client ~offer_ticket:false () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  (* Server issues an ID (nginx-style) but will not resume it. *)
  Alcotest.(check int) "id issued anyway" 32 (String.length o1.Tls.Engine.session_id);
  let session = Option.get o1.Tls.Engine.session in
  let o2 = connect client server ~now:(now + 1) ~offer:(Tls.Client.Offer_session_id session) in
  expect_ok "second" o2;
  Alcotest.(check bool) "not resumed" true (o2.Tls.Engine.resumed = `No)

let test_shared_session_cache () =
  (* Two domains behind one terminator share a cache: a session from a
     resumes on b — the Section 5.1 cross-domain measurement. *)
  let now = 1000 in
  let shared_cache = Tls.Session_cache.create ~lifetime:3600 ~capacity:1000 in
  let mk hostname =
    let cert, key = issue_leaf ~hostname () in
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites = T.all_cipher_suites;
          issue_session_ids = true;
          session_cache = Some shared_cache;
          tickets = None;
          kex_cache = Tls.Kex_cache.uniform ~policy:Tls.Kex_cache.Fresh_always;
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:("shared-" ^ hostname))
  in
  let server_a = mk "a.example" and server_b = mk "b.example" in
  let client = make_client ~offer_ticket:false () in
  let o1 = connect ~hostname:"a.example" client server_a ~now in
  expect_ok "initial on a" o1;
  let session = Option.get o1.Tls.Engine.session in
  let o2 =
    connect ~hostname:"b.example" client server_b ~now:(now + 10)
      ~offer:(Tls.Client.Offer_session_id session)
  in
  expect_ok "cross-domain resumption" o2;
  Alcotest.(check bool) "b resumed a's session" true (o2.Tls.Engine.resumed = `Via_session_id)

let test_cache_capacity_eviction () =
  let cache = Tls.Session_cache.create ~lifetime:3600 ~capacity:2 in
  let mk i =
    Tls.Session.make
      ~id:(Printf.sprintf "%32d" i)
      ~master_secret:(String.make 48 (Char.chr (65 + i)))
      ~cipher_suite:T.ECDHE_ECDSA_AES128_SHA256 ~established_at:0
  in
  let s1 = mk 1 and s2 = mk 2 and s3 = mk 3 in
  Tls.Session_cache.store cache ~now:0 s1;
  Tls.Session_cache.store cache ~now:0 s2;
  Tls.Session_cache.store cache ~now:0 s3;
  Alcotest.(check int) "bounded size" 2 (Tls.Session_cache.size cache);
  Alcotest.(check bool) "oldest evicted" true
    (Tls.Session_cache.lookup cache ~now:1 (Tls.Session.id s1) = None);
  Alcotest.(check bool) "newest kept" true
    (Tls.Session_cache.lookup cache ~now:1 (Tls.Session.id s3) <> None)

let test_cache_queue_bounded () =
  (* Regression: expiring lookups and removals used to leave their queue
     entries behind forever, so a long-lived cache under churn grew an
     unbounded FIFO even while the table stayed tiny. The queue must stay
     within a small multiple of capacity (ghost entries are compacted). *)
  let capacity = 16 in
  let cache = Tls.Session_cache.create ~lifetime:10 ~capacity in
  let mk i =
    Tls.Session.make
      ~id:(Printf.sprintf "%32d" i)
      ~master_secret:(String.make 48 'x') ~cipher_suite:T.ECDHE_ECDSA_AES128_SHA256
      ~established_at:0
  in
  for i = 0 to 999 do
    let s = mk i in
    let now = i * 100 in
    Tls.Session_cache.store cache ~now s;
    (* Expiring lookup: the entry is past its lifetime by the next tick. *)
    ignore (Tls.Session_cache.lookup cache ~now:(now + 50) (Tls.Session.id s));
    (* And half the time an explicit removal of an already-gone id. *)
    if i mod 2 = 0 then Tls.Session_cache.remove cache (Tls.Session.id s)
  done;
  Alcotest.(check bool) "table bounded" true (Tls.Session_cache.size cache <= capacity);
  Alcotest.(check bool)
    (Printf.sprintf "queue bounded (%d <= %d)" (Tls.Session_cache.queue_length cache)
       (2 * capacity))
    true
    (Tls.Session_cache.queue_length cache <= 2 * capacity)

let test_scheduled_stek_created_at () =
  (* Regression: a [Scheduled] manager used to stamp the issuing STEK
     with the query time instead of the start of its schedule interval,
     so the same key appeared "fresh" on every connection. *)
  let m =
    Tls.Stek_manager.create
      ~policy:(Tls.Stek_manager.Scheduled [ 100; 200 ])
      ~secret:"sched-secret" ~now:0
  in
  let check ~now ~expect_created =
    let stek = Tls.Stek_manager.issuing m ~now in
    Alcotest.(check int)
      (Printf.sprintf "created_at at now=%d" now)
      expect_created (Tls.Stek.created_at stek)
  in
  check ~now:50 ~expect_created:0;
  check ~now:150 ~expect_created:100;
  check ~now:250 ~expect_created:200;
  (* Same interval, later query: key material and stamp both stable. *)
  let a = Tls.Stek_manager.issuing m ~now:150 in
  let b = Tls.Stek_manager.issuing m ~now:199 in
  Alcotest.(check string) "same key in one interval" (Tls.Stek.key_name a) (Tls.Stek.key_name b);
  Alcotest.(check int) "same stamp in one interval" (Tls.Stek.created_at a)
    (Tls.Stek.created_at b)

let test_stek_created_at_issue_decrypt_agree () =
  (* Regression: under every policy, resolving a key for decryption must
     return the same [created_at] the issuing path stamped — the decrypt
     path used to re-derive with the query time, so exposure windows
     measured from whenever a ticket happened to come back. *)
  List.iter
    (fun (label, policy) ->
      let m = Tls.Stek_manager.create ~policy ~secret:("agree-" ^ label) ~now:0 in
      List.iter
        (fun issue_now ->
          let issued = Tls.Stek_manager.issuing m ~now:issue_now in
          List.iter
            (fun decrypt_now ->
              match
                Tls.Stek_manager.find_for_decrypt m ~now:decrypt_now (Tls.Stek.key_name issued)
              with
              | None -> () (* outside the accept window; nothing to compare *)
              | Some found ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s: created_at issued@%d decrypted@%d" label issue_now
                       decrypt_now)
                    (Tls.Stek.created_at issued) (Tls.Stek.created_at found))
            [ issue_now; issue_now + 50; issue_now + 150 ])
        [ 10; 120; 260 ])
    [
      ("static", Tls.Stek_manager.Static);
      ("per-process", Tls.Stek_manager.Per_process);
      ("rotate", Tls.Stek_manager.Rotate_every { period = 100; accept_window = 150 });
      ("scheduled", Tls.Stek_manager.Scheduled [ 100; 200 ]);
    ]

let test_rotate_decrypt_window_created_at () =
  (* Regression: a [Rotate_every] accept-window key found one period back
     must carry its own period's start as [created_at], exactly as the
     issuing path stamped it — not the decrypt time. *)
  let m =
    Tls.Stek_manager.create
      ~policy:(Tls.Stek_manager.Rotate_every { period = 100; accept_window = 150 })
      ~secret:"rotate-window" ~now:0
  in
  let issued = Tls.Stek_manager.issuing m ~now:50 in
  Alcotest.(check int) "issued stamp is period start" 0 (Tls.Stek.created_at issued);
  (* One period later the key no longer issues but still decrypts. *)
  let current = Tls.Stek_manager.issuing m ~now:130 in
  Alcotest.(check bool) "rotation happened" false
    (String.equal (Tls.Stek.key_name issued) (Tls.Stek.key_name current));
  match Tls.Stek_manager.find_for_decrypt m ~now:130 (Tls.Stek.key_name issued) with
  | None -> Alcotest.fail "key inside accept window not found"
  | Some found ->
      Alcotest.(check string) "same key material" (Tls.Stek.key_name issued)
        (Tls.Stek.key_name found);
      Alcotest.(check int) "window key keeps its period-start stamp" 0
        (Tls.Stek.created_at found)

let test_per_process_stek_created_at () =
  (* Regression: a [Per_process] STEK conceptually exists from process
     start; stamping it with whichever probe first touched it inflated
     its apparent freshness by the idle time before the first ticket. *)
  let m = Tls.Stek_manager.create ~policy:Tls.Stek_manager.Per_process ~secret:"pp" ~now:0 in
  let first_use = Tls.Stek_manager.issuing m ~now:500 in
  Alcotest.(check int) "stamped with process start, not first use" 0
    (Tls.Stek.created_at first_use);
  (* Restart at 1000, first post-restart use at 1700: the fresh key dates
     from the restart. *)
  Tls.Stek_manager.restart m ~now:1000;
  let after_restart = Tls.Stek_manager.issuing m ~now:1700 in
  Alcotest.(check bool) "restart rotated the key" false
    (String.equal (Tls.Stek.key_name first_use) (Tls.Stek.key_name after_restart));
  Alcotest.(check int) "stamped with restart time" 1000 (Tls.Stek.created_at after_restart)

(* --- Ticket resumption ------------------------------------------------------------ *)

let ticket_offer (o : Tls.Engine.outcome) =
  match (o.Tls.Engine.new_ticket, o.Tls.Engine.session) with
  | Some (_, ticket), Some session -> Tls.Client.Offer_ticket { ticket; session }
  | _ -> Alcotest.fail "no ticket/session to offer"

let test_ticket_resumption () =
  let now = 1000 in
  let server = make_server ~now { (default_opts ~now) with cache_lifetime = None } in
  let client = make_client () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  let o2 = connect client server ~now:(now + 60) ~offer:(ticket_offer o1) in
  expect_ok "ticket resumption" o2;
  Alcotest.(check bool) "resumed via ticket" true (o2.Tls.Engine.resumed = `Via_ticket);
  Alcotest.(check bool) "ticket reissued" true (o2.Tls.Engine.new_ticket <> None);
  (* Session keys remain constant across ticket resumption. *)
  Alcotest.(check bool) "same master secret" true
    (String.equal
       (Tls.Session.master_secret (Option.get o1.Tls.Engine.session))
       (Tls.Session.master_secret (Option.get o2.Tls.Engine.session)))

let test_ticket_expiry () =
  let now = 1000 in
  let tc = default_ticket_config ~accept_lifetime:300 ~now () in
  let server = make_server ~now { (default_opts ~now) with tickets = Some tc } in
  let client = make_client () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  let o2 = connect client server ~now:(now + 299) ~offer:(ticket_offer o1) in
  Alcotest.(check bool) "honored before expiry" true (o2.Tls.Engine.resumed = `Via_ticket);
  let o3 = connect client server ~now:(now + 301) ~offer:(ticket_offer o1) in
  expect_ok "after expiry" o3;
  Alcotest.(check bool) "full handshake after expiry" true (o3.Tls.Engine.resumed = `No)

let test_ticket_no_reissue () =
  let now = 1000 in
  let tc = default_ticket_config ~reissue:false ~now () in
  let server = make_server ~now { (default_opts ~now) with tickets = Some tc } in
  let client = make_client () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  let o2 = connect client server ~now:(now + 10) ~offer:(ticket_offer o1) in
  Alcotest.(check bool) "resumed" true (o2.Tls.Engine.resumed = `Via_ticket);
  Alcotest.(check bool) "no reissue" true (o2.Tls.Engine.new_ticket = None)

let test_client_without_ticket_ext () =
  let now = 1000 in
  let server = make_server ~now (default_opts ~now) in
  let client = make_client ~offer_ticket:false () in
  let o = connect client server ~now in
  expect_ok "handshake" o;
  Alcotest.(check bool) "no ticket without the extension" true (o.Tls.Engine.new_ticket = None)

let test_stek_rotation () =
  let now = 0 in
  let period = 3600 in
  let tc =
    default_ticket_config
      ~policy:(Tls.Stek_manager.Rotate_every { period; accept_window = period })
      ~accept_lifetime:(4 * period) ~now ()
  in
  let server = make_server ~now { (default_opts ~now) with tickets = Some tc } in
  let client = make_client () in
  let o1 = connect client server ~now:100 in
  expect_ok "first" o1;
  let key1 = Option.get o1.Tls.Engine.stek_key_name in
  (* Same period: same STEK. *)
  let o2 = connect client server ~now:200 in
  Alcotest.(check string) "same period, same STEK" key1
    (Option.get o2.Tls.Engine.stek_key_name);
  (* Next period: rotated. *)
  let o3 = connect client server ~now:(period + 100) in
  Alcotest.(check bool) "rotated" false
    (String.equal key1 (Option.get o3.Tls.Engine.stek_key_name));
  (* Old ticket still accepted within the accept window... *)
  let o4 = connect client server ~now:(period + 100) ~offer:(ticket_offer o1) in
  Alcotest.(check bool) "old ticket accepted in window" true
    (o4.Tls.Engine.resumed = `Via_ticket);
  (* ...but not once the issuing key left the window. *)
  let o5 = connect client server ~now:(3 * period) ~offer:(ticket_offer o1) in
  expect_ok "beyond window" o5;
  Alcotest.(check bool) "old ticket rejected beyond window" true (o5.Tls.Engine.resumed = `No)

let test_static_stek_never_rotates () =
  let now = 0 in
  let tc =
    default_ticket_config ~policy:Tls.Stek_manager.Static ~accept_lifetime:(365 * day) ~now ()
  in
  let server = make_server ~now { (default_opts ~now) with tickets = Some tc } in
  let client = make_client () in
  let o1 = connect client server ~now:0 in
  let o2 = connect client server ~now:(63 * day) in
  Alcotest.(check string) "same STEK 63 days apart"
    (Option.get o1.Tls.Engine.stek_key_name)
    (Option.get o2.Tls.Engine.stek_key_name)

let test_per_process_stek_restart () =
  let now = 0 in
  let tc = default_ticket_config ~policy:Tls.Stek_manager.Per_process ~now () in
  let server = make_server ~now { (default_opts ~now) with tickets = Some tc } in
  let client = make_client () in
  let o1 = connect client server ~now:0 in
  let o2 = connect client server ~now:100 in
  Alcotest.(check string) "stable across connections"
    (Option.get o1.Tls.Engine.stek_key_name)
    (Option.get o2.Tls.Engine.stek_key_name);
  Tls.Server.restart server ~now:200;
  let o3 = connect client server ~now:300 in
  Alcotest.(check bool) "fresh STEK after restart" false
    (String.equal
       (Option.get o1.Tls.Engine.stek_key_name)
       (Option.get o3.Tls.Engine.stek_key_name))

let test_shared_stek_cross_domain () =
  (* Two domains sharing a STEK manager: a ticket issued by one resumes on
     the other — the Section 5.2 measurement and the Google case study. *)
  let now = 1000 in
  let manager =
    Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"shared" ~now
  in
  let mk hostname =
    let cert, key = issue_leaf ~hostname () in
    Tls.Server.create
      ~config:
        {
          Tls.Config.env;
          suites = T.all_cipher_suites;
          issue_session_ids = true;
          session_cache = None;
          tickets =
            Some
              {
                Tls.Config.stek_manager = manager;
                lifetime_hint = 3600;
                accept_lifetime = 3600;
                reissue_on_resumption = true;
              };
          kex_cache = Tls.Kex_cache.uniform ~policy:Tls.Kex_cache.Fresh_always;
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:("stek-shared-" ^ hostname))
  in
  let server_a = mk "mail.example" and server_b = mk "docs.example" in
  let client = make_client () in
  let o1 = connect ~hostname:"mail.example" client server_a ~now in
  expect_ok "initial" o1;
  let o2 =
    connect ~hostname:"docs.example" client server_b ~now:(now + 10) ~offer:(ticket_offer o1)
  in
  expect_ok "cross-domain ticket" o2;
  Alcotest.(check bool) "docs resumed mail's ticket" true (o2.Tls.Engine.resumed = `Via_ticket)

(* --- Ephemeral value reuse ---------------------------------------------------------- *)

let kex_of o = Option.get o.Tls.Engine.server_kex_public

let test_kex_fresh_policy () =
  let now = 1000 in
  let server =
    make_server ~now { (default_opts ~now) with kex_policy = Tls.Kex_cache.Fresh_always }
  in
  let client = make_client () in
  let o1 = connect client server ~now and o2 = connect client server ~now in
  Alcotest.(check bool) "fresh values differ" false (String.equal (kex_of o1) (kex_of o2))

let test_kex_reuse_policy () =
  let now = 1000 in
  let server =
    make_server ~now { (default_opts ~now) with kex_policy = Tls.Kex_cache.Reuse_for 60 }
  in
  let client = make_client () in
  let o1 = connect client server ~now in
  let o2 = connect client server ~now:(now + 59) in
  Alcotest.(check string) "value reused within ttl" (kex_of o1) (kex_of o2);
  let o3 = connect client server ~now:(now + 61) in
  Alcotest.(check bool) "rotated after ttl" false (String.equal (kex_of o1) (kex_of o3));
  (* Sessions still differ (client contribution is fresh). *)
  Alcotest.(check bool) "master secrets differ despite reuse" false
    (String.equal
       (Tls.Session.master_secret (Option.get o1.Tls.Engine.session))
       (Tls.Session.master_secret (Option.get o2.Tls.Engine.session)))

let test_kex_reuse_forever_until_restart () =
  let now = 1000 in
  let server =
    make_server ~now { (default_opts ~now) with kex_policy = Tls.Kex_cache.Reuse_forever }
  in
  let client = make_client () in
  let o1 = connect client server ~now in
  let o2 = connect client server ~now:(now + 100 * day) in
  Alcotest.(check string) "reused indefinitely" (kex_of o1) (kex_of o2);
  Tls.Server.restart server ~now:(now + 100 * day);
  let o3 = connect client server ~now:(now + 100 * day + 1) in
  Alcotest.(check bool) "fresh after restart" false (String.equal (kex_of o1) (kex_of o3))

(* --- X25519 group negotiation ----------------------------------------------------- *)

let make_x25519_client () =
  Tls.Client.create ~prefer_x25519:true
    ~config:
      {
        Tls.Config.cl_env = env;
        offer_suites = [ T.ECDHE_ECDSA_AES128_SHA256 ];
        offer_ticket = true;
        root_store;
        check_certs = false;
        evaluate_trust = true;
        verify_ske = true;
      }
    ~rng:(Crypto.Drbg.create ~seed:"x25519-client") ()

let test_x25519_negotiation () =
  let now = 1000 in
  let server = make_server ~now (default_opts ~now) in
  (* A client ranking X25519 first gets a 32-byte Montgomery share. *)
  let o = connect (make_x25519_client ()) server ~now in
  expect_ok "x25519 handshake" o;
  (match o.Tls.Engine.server_kex_public with
  | Some v -> Alcotest.(check int) "x25519 share width" 32 (String.length v)
  | None -> Alcotest.fail "no kex value");
  (* The default client still gets the Weierstrass curve (SEC1 point,
     leading 0x04). *)
  let o2 = connect (make_client ()) server ~now in
  expect_ok "weierstrass handshake" o2;
  match o2.Tls.Engine.server_kex_public with
  | Some v ->
      (* SEC1 uncompressed encoding: 0x04 prefix, odd length (1 + 2*field). *)
      Alcotest.(check bool) "sec1 point" true (v.[0] = '\x04' && String.length v mod 2 = 1)
  | None -> Alcotest.fail "no kex value"

let test_x25519_reuse_policy () =
  (* The ECDHE reuse policy governs X25519 shares too. *)
  let now = 1000 in
  let server =
    make_server ~now { (default_opts ~now) with kex_policy = Tls.Kex_cache.Reuse_forever }
  in
  let client = make_x25519_client () in
  let o1 = connect client server ~now and o2 = connect client server ~now:(now + 3600) in
  Alcotest.(check string) "x25519 value reused" (kex_of o1) (kex_of o2);
  Tls.Server.restart server ~now:(now + 7200);
  let o3 = connect client server ~now:(now + 7201) in
  Alcotest.(check bool) "fresh after restart" false (String.equal (kex_of o1) (kex_of o3))

let test_x25519_resumption () =
  let now = 1000 in
  let server = make_server ~now (default_opts ~now) in
  let client = make_x25519_client () in
  let o1 = connect client server ~now in
  expect_ok "initial" o1;
  let o2 = connect client server ~now:(now + 30) ~offer:(ticket_offer o1) in
  Alcotest.(check bool) "ticket resumption over x25519 session" true
    (o2.Tls.Engine.resumed = `Via_ticket)

(* --- Certificates --------------------------------------------------------------------- *)

let test_cert_validation () =
  let now = 1000 in
  let curve = env.Tls.Config.pki_curve in
  let cert, _ = issue_leaf ~hostname:"example.com" ~sans:[ "www.example.com" ] () in
  let ok host = Tls.Cert.validate ~curve ~store:root_store ~now ~hostname:host [ cert ] in
  Alcotest.(check bool) "subject matches" true (Result.is_ok (ok "example.com"));
  Alcotest.(check bool) "san matches" true (Result.is_ok (ok "www.example.com"));
  Alcotest.(check bool) "other host rejected" false (Result.is_ok (ok "evil.com"))

let test_cert_wildcards () =
  Alcotest.(check bool) "wildcard one label" true
    (Tls.Cert.name_matches ~hostname:"a.example.com" "*.example.com");
  Alcotest.(check bool) "wildcard not two labels" false
    (Tls.Cert.name_matches ~hostname:"a.b.example.com" "*.example.com");
  Alcotest.(check bool) "wildcard not bare domain" false
    (Tls.Cert.name_matches ~hostname:"example.com" "*.example.com");
  Alcotest.(check bool) "case insensitive" true
    (Tls.Cert.name_matches ~hostname:"EXAMPLE.com" "example.COM")

let test_cert_expiry () =
  let curve = env.Tls.Config.pki_curve in
  let cert, _ = issue_leaf ~not_before:100 ~not_after:200 () in
  let validate now =
    Tls.Cert.validate ~curve ~store:root_store ~now ~hostname:"example.com" [ cert ]
  in
  Alcotest.(check bool) "valid inside window" true (Result.is_ok (validate 150));
  Alcotest.(check bool) "not yet valid" false (Result.is_ok (validate 50));
  Alcotest.(check bool) "expired" false (Result.is_ok (validate 250))

let test_cert_untrusted_root () =
  let curve = env.Tls.Config.pki_curve in
  let rogue =
    Tls.Cert.self_signed ~curve ~name:"Rogue CA" ~not_before:0 ~not_after:(3650 * day) ~serial:666
      (Crypto.Drbg.create ~seed:"rogue")
  in
  let r = Crypto.Drbg.create ~seed:"rogue-leaf" in
  let keypair = Crypto.Ecdsa.gen_keypair curve r in
  let cert =
    Tls.Cert.issue rogue ~curve ~subject:"example.com" ~not_before:0 ~not_after:(3650 * day)
      ~serial:1
      ~pub:(Crypto.Ec.point_bytes curve (Crypto.Ecdsa.public_key keypair))
      r
  in
  match Tls.Cert.validate ~curve ~store:root_store ~now:1000 ~hostname:"example.com" [ cert ] with
  | Error (Tls.Cert.Untrusted_root _) -> ()
  | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Tls.Cert.pp_validation_error e)
  | Ok _ -> Alcotest.fail "rogue chain accepted"

let test_cert_chain_with_intermediate () =
  let curve = env.Tls.Config.pki_curve in
  let r = Crypto.Drbg.create ~seed:"intermediate" in
  let int_key = Crypto.Ecdsa.gen_keypair curve r in
  let intermediate =
    Tls.Cert.issue ca ~curve ~subject:"Test Intermediate CA" ~is_ca:true ~not_before:0
      ~not_after:(3650 * day) ~serial:2
      ~pub:(Crypto.Ec.point_bytes curve (Crypto.Ecdsa.public_key int_key))
      r
  in
  let int_authority = Tls.Cert.authority_of ~cert:intermediate ~keypair:int_key in
  let leaf_key = Crypto.Ecdsa.gen_keypair curve r in
  let leaf =
    Tls.Cert.issue int_authority ~curve ~subject:"deep.example.com" ~not_before:0
      ~not_after:(3650 * day) ~serial:3
      ~pub:(Crypto.Ec.point_bytes curve (Crypto.Ecdsa.public_key leaf_key))
      r
  in
  Alcotest.(check bool) "chain through intermediate" true
    (Result.is_ok
       (Tls.Cert.validate ~curve ~store:root_store ~now:1000 ~hostname:"deep.example.com"
          [ leaf; intermediate ]))

let test_cert_codec_roundtrip () =
  let cert, _ = issue_leaf ~sans:[ "www.example.com"; "api.example.com" ] () in
  match Tls.Cert.of_bytes (Tls.Cert.to_bytes cert) with
  | Error e -> Alcotest.fail e
  | Ok cert' ->
      Alcotest.(check string) "subject" (Tls.Cert.subject cert) (Tls.Cert.subject cert');
      Alcotest.(check string) "issuer" (Tls.Cert.issuer cert) (Tls.Cert.issuer cert');
      Alcotest.(check bool) "pub preserved" true
        (String.equal (Tls.Cert.public_key cert) (Tls.Cert.public_key cert'))

(* --- Wire codecs ------------------------------------------------------------------------ *)

let roundtrip_msg msg =
  match Msg.of_bytes (Msg.to_bytes msg) with
  | Ok m -> m
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let test_handshake_codec () =
  let ch =
    Msg.Client_hello
      {
        ch_version = T.TLS_1_2;
        ch_random = String.init 32 Char.chr;
        ch_session_id = "0123456789abcdef";
        ch_cipher_suites = [ 0xffa1; 0xffa2; 0x1301 ];
        ch_extensions =
          [ Tls.Extension.Server_name "example.com"; Tls.Extension.Session_ticket "" ];
      }
  in
  Alcotest.(check bool) "client hello" true (roundtrip_msg ch = ch);
  let sh =
    Msg.Server_hello
      {
        sh_version = T.TLS_1_2;
        sh_random = String.make 32 'r';
        sh_session_id = "";
        sh_cipher_suite = T.DHE_ECDSA_AES128_SHA256;
        sh_extensions = [ Tls.Extension.Session_ticket "" ];
      }
  in
  Alcotest.(check bool) "server hello" true (roundtrip_msg sh = sh);
  let ske =
    Msg.Server_key_exchange
      {
        ske_params = Msg.Ske_dhe { dh_p = "\xff\x01"; dh_g = "\x04"; dh_ys = "\x12\x34" };
        ske_signature = String.make 16 's';
      }
  in
  Alcotest.(check bool) "server key exchange" true (roundtrip_msg ske = ske);
  let nst = Msg.New_session_ticket { nst_lifetime_hint = 7200; nst_ticket = "opaque" } in
  Alcotest.(check bool) "new session ticket" true (roundtrip_msg nst = nst);
  Alcotest.(check bool) "hello done" true (roundtrip_msg Msg.Server_hello_done = Msg.Server_hello_done);
  Alcotest.(check bool) "finished" true
    (roundtrip_msg (Msg.Finished (String.make 12 'v')) = Msg.Finished (String.make 12 'v'))

let test_codec_rejects_garbage () =
  (match Msg.of_bytes "\x99\x00\x00\x01x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown message type");
  match Msg.of_bytes "\x01\x00\x00\x05hello-too-short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated client hello"

let prop_extension_roundtrip =
  QCheck2.Test.make ~name:"extension block roundtrip" ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 5)
        (oneof
           [
             map (fun s -> Tls.Extension.Server_name s) (string_size (int_range 1 30));
             map (fun s -> Tls.Extension.Session_ticket s) (string_size (int_range 0 100));
             map (fun l -> Tls.Extension.Supported_groups l) (list_size (int_range 0 5) (int_range 0 0xffff));
             return Tls.Extension.Renegotiation_info;
           ]))
    (fun exts ->
      let bytes = Wire.Writer.build (fun w -> Tls.Extension.write_block w exts) in
      let decoded = Wire.Reader.parse bytes Tls.Extension.read_block in
      decoded = exts)

(* --- Hostile wire input ------------------------------------------------------------------- *)

let test_oversized_session_id_rejected () =
  let sh id =
    Msg.to_bytes
      (Msg.Server_hello
         {
           sh_version = T.TLS_1_2;
           sh_random = String.make 32 'r';
           sh_session_id = id;
           sh_cipher_suite = T.ECDHE_ECDSA_AES128_SHA256;
           sh_extensions = [];
         })
  in
  (match Msg.of_bytes (sh (String.make 32 'x')) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "32-byte session ID rejected: %s" e);
  match Msg.of_bytes (sh (String.make 33 'x')) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "33-byte session ID accepted"

let test_hostile_session_blob_rejected () =
  (* A session blob with a 33-byte ID: the length check fires before any
     downstream field is interpreted. *)
  (match Tls.Session.of_bytes ("\x21" ^ String.make 33 'i') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized session ID in blob accepted");
  (* And one whose master secret is not the TLS-mandated 48 bytes. *)
  match Tls.Session.of_bytes ("\x00" ^ "\x03abc") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "3-byte master secret accepted"

let test_hostile_ske_params_rejected () =
  (* Peer-supplied DHE parameters are attacker-controlled bytes; every
     hostile shape must come back as a typed [Error], never an exception
     from the bignum layer, and never a completed key exchange. *)
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = env;
          offer_suites = T.all_cipher_suites;
          offer_ticket = false;
          root_store;
          check_certs = false;
          evaluate_trust = false;
          verify_ske = false;
        }
      ~rng:(Crypto.Drbg.create ~seed:"hostile-ske") ()
  in
  let cert, _ = issue_leaf () in
  let flight ~dh_p ~dh_g ~dh_ys =
    [
      Msg.Server_hello
        {
          sh_version = T.TLS_1_2;
          sh_random = String.make 32 'r';
          sh_session_id = "";
          sh_cipher_suite = T.DHE_ECDSA_AES128_SHA256;
          sh_extensions = [];
        };
      Msg.Certificate [ Tls.Cert.to_bytes cert ];
      Msg.Server_key_exchange
        { ske_params = Msg.Ske_dhe { dh_p; dh_g; dh_ys }; ske_signature = "sig" };
      Msg.Server_hello_done;
    ]
  in
  let drive ~dh_p ~dh_g ~dh_ys =
    let _hello, state =
      Tls.Client.hello client ~now:1000 ~hostname:"example.com" ~offer:Tls.Client.Fresh
    in
    match Tls.Client.handle_server_flight state (flight ~dh_p ~dh_g ~dh_ys) with
    | Ok _ -> `Completed
    | Error _ -> `Rejected
    | exception e -> Alcotest.failf "engine raised %s" (Printexc.to_string e)
  in
  (* Control: the environment's own group must still negotiate. *)
  let group = env.Tls.Config.dh_group in
  let p = Crypto.Bignum.to_bytes_be (Crypto.Dh.group_p group) in
  let g = Crypto.Bignum.to_bytes_be (Crypto.Dh.group_g group) in
  (match drive ~dh_p:p ~dh_g:g ~dh_ys:"\x02\xab\xcd\xef" with
  | `Completed -> ()
  | `Rejected -> Alcotest.fail "legitimate DHE params rejected");
  let hostile =
    [
      ("even modulus", String.make 256 '\xfe', "\x02");
      ("tiny modulus", "\x05", "\x02");
      ("huge modulus", String.make 1025 '\xff', "\x02");
      ("generator one", String.make 255 '\xff', "\x01");
      ("generator = p", String.make 255 '\xff', String.make 255 '\xff');
      ("zero modulus", "\x00", "\x02");
    ]
  in
  List.iter
    (fun (what, dh_p, dh_g) ->
      match drive ~dh_p ~dh_g ~dh_ys:"\x02" with
      | `Rejected -> ()
      | `Completed -> Alcotest.failf "%s completed the key exchange" what)
    hostile

(* --- Tickets: tampering and theft --------------------------------------------------------- *)

let test_ticket_tamper_rejected () =
  let now = 1000 in
  let rng = Crypto.Drbg.create ~seed:"tamper" in
  let stek = Tls.Stek.generate rng ~now in
  let session =
    Tls.Session.make ~id:"" ~master_secret:(String.make 48 'm')
      ~cipher_suite:T.ECDHE_ECDSA_AES128_SHA256 ~established_at:now
  in
  let ticket = Tls.Ticket.seal stek rng session in
  let find_stek name = if String.equal name (Tls.Stek.key_name stek) then Some stek else None in
  (match Tls.Ticket.unseal ~find_stek ticket with
  | Ok s -> Alcotest.(check bool) "roundtrip" true (Tls.Session.equal s session)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Tls.Ticket.pp_unseal_error e));
  (* Flip one ciphertext byte: the MAC must catch it. *)
  let tampered = Bytes.of_string ticket in
  let mid = String.length ticket / 2 in
  Bytes.set tampered mid (Char.chr (Char.code (Bytes.get tampered mid) lxor 1));
  (match Tls.Ticket.unseal ~find_stek (Bytes.to_string tampered) with
  | Error Tls.Ticket.Bad_mac -> ()
  | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Tls.Ticket.pp_unseal_error e)
  | Ok _ -> Alcotest.fail "tampered ticket accepted");
  (* Unknown STEK. *)
  match Tls.Ticket.unseal ~find_stek:(fun _ -> None) ticket with
  | Error (Tls.Ticket.Unknown_key_name _) -> ()
  | _ -> Alcotest.fail "expected unknown key name"

let test_stolen_stek_attack () =
  (* The paper's core attack: a passive observer records the ticket from
     the wire; later the STEK leaks; the session state (and master
     secret) falls out. *)
  let now = 1000 in
  let server = make_server ~now (default_opts ~now) in
  let client = make_client () in
  let o = connect client server ~now in
  expect_ok "victim connection" o;
  let _, recorded_ticket = Option.get o.Tls.Engine.new_ticket in
  (* The attacker later compromises the server's STEK manager. *)
  let tc = Option.get (Tls.Server.config server).Tls.Config.tickets in
  let stolen key_name =
    Tls.Stek_manager.find_for_decrypt tc.Tls.Config.stek_manager ~now key_name
  in
  match Tls.Ticket.decrypt_with_stolen_stek ~find_stek:stolen recorded_ticket with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Tls.Ticket.pp_unseal_error e)
  | Ok recovered ->
      Alcotest.(check string) "master secret recovered"
        (Tls.Session.master_secret (Option.get o.Tls.Engine.session))
        (Tls.Session.master_secret recovered)

(* --- Record layer --------------------------------------------------------------------------- *)

let test_record_roundtrip () =
  let keys =
    Tls.Record.derive_keys ~master:(String.make 48 'M') ~client_random:(String.make 32 'c')
      ~server_random:(String.make 32 's')
  in
  let tx = Tls.Record.cipher_state keys.Tls.Record.client_write in
  let rx = Tls.Record.cipher_state keys.Tls.Record.client_write in
  let msg = String.concat "" (List.init 100 (fun i -> Printf.sprintf "record %d;" i)) in
  let records = Tls.Record.seal_application_data tx msg in
  (match Tls.Record.open_application_data rx records with
  | Ok plain -> Alcotest.(check string) "roundtrip" msg plain
  | Error a -> Alcotest.fail (Format.asprintf "%a" T.pp_alert a));
  (* Replay (wrong sequence number) is rejected. *)
  let rx2 = Tls.Record.cipher_state keys.Tls.Record.client_write in
  let r = List.hd records in
  match (Tls.Record.open_ rx2 r, Tls.Record.open_ rx2 r) with
  | Ok _, Error T.Bad_record_mac -> ()
  | _ -> Alcotest.fail "replayed record not rejected"

let test_record_tamper () =
  let keys =
    Tls.Record.derive_keys ~master:(String.make 48 'K') ~client_random:(String.make 32 'c')
      ~server_random:(String.make 32 's')
  in
  let tx = Tls.Record.cipher_state keys.Tls.Record.server_write in
  let rx = Tls.Record.cipher_state keys.Tls.Record.server_write in
  let sealed = Tls.Record.seal tx (Tls.Record.make ~content_type:T.Application_data "secret") in
  let bytes = Bytes.of_string (Tls.Record.payload sealed) in
  Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 0xff));
  let forged = Tls.Record.make ~content_type:T.Application_data (Bytes.to_string bytes) in
  match Tls.Record.open_ rx forged with
  | Error T.Bad_record_mac -> ()
  | _ -> Alcotest.fail "tampered record accepted"

let test_record_codec () =
  let r = Tls.Record.make ~content_type:T.Handshake_ct "payload bytes" in
  match Tls.Record.of_bytes (Tls.Record.to_bytes r) with
  | Ok r' ->
      Alcotest.(check bool) "roundtrip" true
        (Tls.Record.content_type r' = T.Handshake_ct
        && String.equal (Tls.Record.payload r') "payload bytes")
  | Error e -> Alcotest.fail e

let test_record_codec_reuse () =
  (* The buffer-reuse encode/decode pair frames identically to the
     string codec and tolerates offsets into a shared buffer. *)
  let r = Tls.Record.make ~content_type:T.Handshake_ct "payload bytes" in
  let len = Tls.Record.encoded_len r in
  Alcotest.(check int) "encoded_len" (String.length (Tls.Record.to_bytes r)) len;
  let buf = Bytes.make (len + 6) '\xee' in
  let written = Tls.Record.to_bytes_into buf ~pos:4 r in
  Alcotest.(check int) "written" len written;
  Alcotest.(check string) "same framing" (Tls.Record.to_bytes r) (Bytes.sub_string buf 4 len);
  (match Tls.Record.of_bytes_sub buf ~pos:4 ~len with
  | Ok r' ->
      Alcotest.(check bool) "decode from buffer" true
        (Tls.Record.content_type r' = T.Handshake_ct
        && String.equal (Tls.Record.payload r') "payload bytes")
  | Error e -> Alcotest.fail e);
  (* The decoded payload must survive the buffer being refilled. *)
  (match Tls.Record.of_bytes_sub buf ~pos:4 ~len with
  | Ok r' ->
      Bytes.fill buf 0 (Bytes.length buf) '\x00';
      Alcotest.(check string) "payload is a copy" "payload bytes" (Tls.Record.payload r')
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "does not fit"
    (Invalid_argument "Record.to_bytes_into: range out of bounds") (fun () ->
      ignore (Tls.Record.to_bytes_into (Bytes.create (len - 1)) ~pos:0 r))

(* --- Wire-level connections (record layer + CCS + encrypted Finished) ------------------------ *)

let establish_conn ?(offer = Tls.Client.Fresh) ?(now = 1000) () =
  let server = make_server ~now (default_opts ~now) in
  let client = make_client () in
  (server, client, Tls.Connection.establish client server ~now ~hostname:"example.com" ~offer)

let test_connection_full () =
  let _, _, result = establish_conn () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      Alcotest.(check bool) "full handshake" true (conn.Tls.Connection.resumed = `No);
      Alcotest.(check bool) "ticket issued" true (conn.Tls.Connection.new_ticket <> None);
      (* The wire shows two CCS records and encrypted Finished records. *)
      let records = List.map snd conn.Tls.Connection.wire_log in
      let ccs =
        List.length
          (List.filter (fun r -> Tls.Record.content_type r = T.Change_cipher_spec) records)
      in
      Alcotest.(check int) "two CCS on the wire" 2 ccs;
      (* No plaintext Finished anywhere on the wire. *)
      List.iter
        (fun r ->
          if Tls.Record.content_type r = T.Handshake_ct then
            match Msg.read_all (Tls.Record.payload r) with
            | Ok msgs ->
                Alcotest.(check bool) "no plaintext Finished" false
                  (List.exists (function Msg.Finished _ -> true | _ -> false) msgs)
            | Error _ -> () (* ciphertext record: unparseable, good *))
        records

let test_connection_app_data () =
  let _, _, result = establish_conn () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      let msg = "GET / HTTP/1.1\r\nHost: example.com\r\n\r\n" in
      let records = Tls.Connection.send conn ~from:`Client msg in
      (match Tls.Connection.recv conn ~at:`Server records with
      | Ok plain -> Alcotest.(check string) "server reads client data" msg plain
      | Error e -> Alcotest.fail e);
      let reply = "HTTP/1.1 200 OK\r\n\r\nhello" in
      let records = Tls.Connection.send conn ~from:`Server reply in
      match Tls.Connection.recv conn ~at:`Client records with
      | Ok plain -> Alcotest.(check string) "client reads server data" reply plain
      | Error e -> Alcotest.fail e

let test_connection_resumption () =
  let now = 1000 in
  let server = make_server ~now (default_opts ~now) in
  let client = make_client () in
  match
    Tls.Connection.establish client server ~now ~hostname:"example.com" ~offer:Tls.Client.Fresh
  with
  | Error e -> Alcotest.fail e
  | Ok conn1 -> (
      let offer =
        match (conn1.Tls.Connection.new_ticket, conn1.Tls.Connection.session) with
        | Some (_, ticket), session -> Tls.Client.Offer_ticket { ticket; session }
        | None, _ -> Alcotest.fail "no ticket"
      in
      match
        Tls.Connection.establish client server ~now:(now + 60) ~hostname:"example.com" ~offer
      with
      | Error e -> Alcotest.fail e
      | Ok conn2 ->
          Alcotest.(check bool) "resumed over the wire" true
            (conn2.Tls.Connection.resumed = `Via_ticket);
          Alcotest.(check bool) "abbreviated is shorter" true
            (List.length conn2.Tls.Connection.wire_log < List.length conn1.Tls.Connection.wire_log))

(* --- Property: many randomized handshake schedules ------------------------------------------- *)

let prop_handshake_schedules =
  QCheck2.Test.make ~name:"randomized resumption schedules stay consistent" ~count:40
    QCheck2.Gen.(pair small_int (list_size (int_range 1 8) (int_range 0 600)))
    (fun (salt, delays) ->
      let now = 10_000 in
      let server = make_server ~now (default_opts ~now) in
      let client =
        Tls.Client.create
          ~config:
            {
              Tls.Config.cl_env = env;
              offer_suites = T.all_cipher_suites;
              offer_ticket = true;
              root_store;
              check_certs = false;
              evaluate_trust = true;
              verify_ske = true;
            }
          ~rng:(Crypto.Drbg.create ~seed:(Printf.sprintf "sched-%d" salt)) ()
      in
      let o0 = connect client server ~now in
      if not o0.Tls.Engine.ok then false
      else begin
        let t = ref now in
        let last = ref o0 in
        List.for_all
          (fun delay ->
            t := !t + delay;
            let offer =
              match (!last).Tls.Engine.new_ticket, (!last).Tls.Engine.session with
              | Some (_, ticket), Some session -> Tls.Client.Offer_ticket { ticket; session }
              | _, Some session when Tls.Session.id session <> "" ->
                  Tls.Client.Offer_session_id session
              | _ -> Tls.Client.Fresh
            in
            let o = connect client server ~now:!t ~offer in
            if o.Tls.Engine.ok then begin
              last := o;
              true
            end
            else false)
          delays
      end)

(* --- Suite ------------------------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "tls"
    [
      ( "handshake",
        [
          Alcotest.test_case "full handshake" `Quick test_full_handshake;
          Alcotest.test_case "every cipher suite" `Quick test_each_suite;
          Alcotest.test_case "no common suite" `Quick test_no_common_suite;
        ] );
      ( "session-id-resumption",
        [
          Alcotest.test_case "resume" `Quick test_session_id_resumption;
          Alcotest.test_case "expiry" `Quick test_session_id_expiry;
          Alcotest.test_case "no cache never resumes" `Quick test_no_cache_never_resumes;
          Alcotest.test_case "shared cache cross-domain" `Quick test_shared_session_cache;
          Alcotest.test_case "capacity eviction" `Quick test_cache_capacity_eviction;
          Alcotest.test_case "queue stays bounded under churn" `Quick test_cache_queue_bounded;
        ] );
      ( "ticket-resumption",
        [
          Alcotest.test_case "resume" `Quick test_ticket_resumption;
          Alcotest.test_case "expiry" `Quick test_ticket_expiry;
          Alcotest.test_case "no reissue" `Quick test_ticket_no_reissue;
          Alcotest.test_case "client without extension" `Quick test_client_without_ticket_ext;
          Alcotest.test_case "stek rotation" `Quick test_stek_rotation;
          Alcotest.test_case "static stek" `Quick test_static_stek_never_rotates;
          Alcotest.test_case "per-process stek restart" `Quick test_per_process_stek_restart;
          Alcotest.test_case "shared stek cross-domain" `Quick test_shared_stek_cross_domain;
          Alcotest.test_case "scheduled stek created_at" `Quick test_scheduled_stek_created_at;
          Alcotest.test_case "created_at agrees on issue and decrypt" `Quick
            test_stek_created_at_issue_decrypt_agree;
          Alcotest.test_case "rotate window key keeps period stamp" `Quick
            test_rotate_decrypt_window_created_at;
          Alcotest.test_case "per-process stek dates from process start" `Quick
            test_per_process_stek_created_at;
        ] );
      ( "kex-reuse",
        [
          Alcotest.test_case "fresh policy" `Quick test_kex_fresh_policy;
          Alcotest.test_case "reuse for ttl" `Quick test_kex_reuse_policy;
          Alcotest.test_case "reuse forever until restart" `Quick test_kex_reuse_forever_until_restart;
        ] );
      ( "x25519",
        [
          Alcotest.test_case "group negotiation" `Quick test_x25519_negotiation;
          Alcotest.test_case "reuse policy applies" `Quick test_x25519_reuse_policy;
          Alcotest.test_case "resumption" `Quick test_x25519_resumption;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "validation" `Quick test_cert_validation;
          Alcotest.test_case "wildcards" `Quick test_cert_wildcards;
          Alcotest.test_case "expiry" `Quick test_cert_expiry;
          Alcotest.test_case "untrusted root" `Quick test_cert_untrusted_root;
          Alcotest.test_case "intermediate chain" `Quick test_cert_chain_with_intermediate;
          Alcotest.test_case "codec roundtrip" `Quick test_cert_codec_roundtrip;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "handshake messages" `Quick test_handshake_codec;
          Alcotest.test_case "garbage rejection" `Quick test_codec_rejects_garbage;
        ] );
      qsuite "codec-properties" [ prop_extension_roundtrip ];
      ( "hostile-wire",
        [
          Alcotest.test_case "oversized session ID" `Quick test_oversized_session_id_rejected;
          Alcotest.test_case "hostile session blob" `Quick test_hostile_session_blob_rejected;
          Alcotest.test_case "hostile SKE params" `Quick test_hostile_ske_params_rejected;
        ] );
      ( "tickets",
        [
          Alcotest.test_case "tamper rejected" `Quick test_ticket_tamper_rejected;
          Alcotest.test_case "stolen stek attack" `Quick test_stolen_stek_attack;
        ] );
      ( "connection",
        [
          Alcotest.test_case "full handshake over records" `Quick test_connection_full;
          Alcotest.test_case "application data" `Quick test_connection_app_data;
          Alcotest.test_case "resumption over records" `Quick test_connection_resumption;
        ] );
      ( "record-layer",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "tamper" `Quick test_record_tamper;
          Alcotest.test_case "codec" `Quick test_record_codec;
          Alcotest.test_case "codec buffer reuse" `Quick test_record_codec_reuse;
        ] );
      qsuite "handshake-properties" [ prop_handshake_schedules ];
    ]
