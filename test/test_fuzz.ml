(* Robustness ("fuzz-lite") tests: random and mutated byte strings thrown
   at every parser in the system must produce clean [Error]s — never
   uncaught exceptions, never crashes. A scanner that falls over on a
   malformed ServerHello is useless on the real Internet, so these
   invariants matter beyond tidiness. *)

let rng = Crypto.Drbg.create ~seed:"fuzz"

let random_bytes_gen =
  QCheck2.Gen.(string_size ~gen:(char_range '\x00' '\xff') (int_range 0 300))

(* A parser is "total" if it returns a result (never raises) on arbitrary
   bytes. *)
let total name parse =
  QCheck2.Test.make ~name ~count:500 random_bytes_gen (fun s ->
      match parse s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck2.Test.fail_reportf "%s raised %s" name (Printexc.to_string e))

let prop_handshake_total = total "handshake parser total" Tls.Handshake_msg.of_bytes
let prop_flight_total = total "flight parser total" Tls.Handshake_msg.read_all
let prop_record_total = total "record parser total" Tls.Record.of_bytes
let prop_records_total = total "record stream parser total" Tls.Record.read_all
let prop_cert_total = total "certificate parser total" Tls.Cert.of_bytes
let prop_session_total = total "session parser total" Tls.Session.of_bytes

let prop_ticket_total =
  let stek = Tls.Stek.generate rng ~now:0 in
  let find_stek name = if String.equal name (Tls.Stek.key_name stek) then Some stek else None in
  total "ticket unsealer total" (fun s ->
      match Tls.Ticket.unseal ~find_stek s with Ok v -> Ok v | Error e -> Error e)

let prop_psk_total =
  let stek = Tls.Stek.generate rng ~now:0 in
  let find_stek name = if String.equal name (Tls.Stek.key_name stek) then Some stek else None in
  total "tls13 psk unsealer total" (Tls.Tls13.unseal_psk ~find_stek)

let prop_campaign_row_total =
  QCheck2.Test.make ~name:"campaign CSV row parser total" ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))
    (fun s ->
      match Scanner.Observation.of_csv_row s with
      | Some _ | None -> true
      | exception e -> QCheck2.Test.fail_reportf "csv raised %s" (Printexc.to_string e))

(* --- Mutation fuzzing: valid messages with bytes flipped -------------------- *)

let valid_client_hello =
  Tls.Handshake_msg.to_bytes
    (Tls.Handshake_msg.Client_hello
       {
         ch_version = Tls.Types.TLS_1_2;
         ch_random = Crypto.Drbg.generate rng 32;
         ch_session_id = Crypto.Drbg.generate rng 16;
         ch_cipher_suites = [ 0xffa1; 0xffa2 ];
         ch_extensions =
           [ Tls.Extension.Server_name "fuzz.example"; Tls.Extension.Session_ticket "" ];
       })

let mutate base (pos, value) =
  let b = Bytes.of_string base in
  if Bytes.length b = 0 then base
  else begin
    Bytes.set b (pos mod Bytes.length b) (Char.chr (value land 0xff));
    Bytes.to_string b
  end

let prop_mutated_hello_total =
  QCheck2.Test.make ~name:"mutated ClientHello never crashes the parser" ~count:1000
    QCheck2.Gen.(pair small_nat (int_range 0 255))
    (fun mutation ->
      match Tls.Handshake_msg.of_bytes (mutate valid_client_hello mutation) with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck2.Test.fail_reportf "mutated hello raised %s" (Printexc.to_string e))

(* Mutated hellos also must not crash the *server engine*. *)
let fuzz_env = Tls.Config.sim_env ()

let fuzz_server =
  let r = Crypto.Drbg.create ~seed:"fuzz-server" in
  let ca =
    Tls.Cert.self_signed ~curve:fuzz_env.Tls.Config.pki_curve ~name:"Fuzz CA" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 r
  in
  let key = Crypto.Ecdsa.gen_keypair fuzz_env.Tls.Config.pki_curve r in
  let cert =
    Tls.Cert.issue ca ~curve:fuzz_env.Tls.Config.pki_curve ~subject:"fuzz.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes fuzz_env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      r
  in
  Tls.Server.create
    ~config:
      {
        Tls.Config.env = fuzz_env;
        suites = Tls.Types.all_cipher_suites;
        issue_session_ids = true;
        session_cache = Some (Tls.Session_cache.create ~lifetime:300 ~capacity:100);
        tickets =
          Some
            {
              Tls.Config.stek_manager =
                Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"f" ~now:0;
              lifetime_hint = 300;
              accept_lifetime = 300;
              reissue_on_resumption = true;
            };
        kex_cache = Tls.Kex_cache.create ();
        cert_chain = [ cert ];
        cert_key = key;
      }
    ~rng:(Crypto.Drbg.create ~seed:"fuzz-server-rng")

let prop_server_survives_mutated_hello =
  QCheck2.Test.make ~name:"server engine survives mutated hellos" ~count:300
    QCheck2.Gen.(pair small_nat (int_range 0 255))
    (fun mutation ->
      match Tls.Handshake_msg.of_bytes (mutate valid_client_hello mutation) with
      | Error _ -> true (* parser rejected it before the engine saw it *)
      | Ok msg -> (
          match Tls.Server.handle_client_hello fuzz_server ~now:100 msg with
          | Ok _ | Error _ -> true
          | exception e ->
              QCheck2.Test.fail_reportf "server raised %s" (Printexc.to_string e)))

(* Garbage client key exchanges against a live pending handshake. *)
let prop_server_survives_garbage_cke =
  QCheck2.Test.make ~name:"server engine survives garbage CKE flights" ~count:200
    random_bytes_gen
    (fun garbage ->
      let client =
        Tls.Client.create
          ~config:
            {
              Tls.Config.cl_env = fuzz_env;
              offer_suites = Tls.Types.all_cipher_suites;
              offer_ticket = true;
              root_store = Tls.Cert.empty_store ();
              check_certs = false;
              evaluate_trust = false;
              verify_ske = false;
            }
          ~rng:(Crypto.Drbg.create ~seed:"fuzz-client") ()
      in
      let ch, _state = Tls.Client.hello client ~now:100 ~hostname:"fuzz.example" ~offer:Tls.Client.Fresh in
      match Tls.Server.handle_client_hello fuzz_server ~now:100 ch with
      | Error _ -> true
      | Ok (Tls.Server.Resuming _) -> true
      | Ok (Tls.Server.Negotiating (_, pending)) -> (
          let flight =
            [ Tls.Handshake_msg.Client_key_exchange garbage;
              Tls.Handshake_msg.Finished (String.make 12 'x') ]
          in
          match Tls.Server.handle_client_flight pending ~now:100 flight with
          | Ok _ -> false (* a garbage CKE must never complete a handshake *)
          | Error _ -> true
          | exception e ->
              QCheck2.Test.fail_reportf "server raised %s" (Printexc.to_string e)))

(* --- The structure-aware wire fuzzer (Faults.Fuzz) -------------------- *)

(* A scaled-down run of the CI fuzz gate: every drive must end in a
   typed verdict with bounded allocation. The full 100k-input run lives
   in `tlsharm fuzz`; this keeps the invariant under `dune runtest`. *)
let test_fuzz_run_clean () =
  let r = Faults.Fuzz.run ~seed:"test-fuzz" ~count:3000 () in
  Alcotest.(check int) "executed all drives" 3000 r.Faults.Fuzz.executed;
  Alcotest.(check int)
    "every drive got a verdict" 3000
    (r.Faults.Fuzz.parsed + r.Faults.Fuzz.rejected);
  (match r.Faults.Fuzz.escapes with
  | [] -> ()
  | e :: _ -> Alcotest.failf "escaped input:\n%s" (Faults.Fuzz.render_escape e));
  Alcotest.(check bool)
    "both verdicts occur" true
    (r.Faults.Fuzz.parsed > 0 && r.Faults.Fuzz.rejected > 0);
  List.iter
    (fun (name, n) ->
      if n = 0 then Alcotest.failf "target %s never driven" name)
    r.Faults.Fuzz.by_target

let test_fuzz_deterministic () =
  let a = Faults.Fuzz.run ~seed:"det-check" ~count:400 () in
  let b = Faults.Fuzz.run ~seed:"det-check" ~count:400 () in
  Alcotest.(check int) "parsed stable" a.Faults.Fuzz.parsed b.Faults.Fuzz.parsed;
  Alcotest.(check (list (pair string int)))
    "per-target counts stable" a.Faults.Fuzz.by_target b.Faults.Fuzz.by_target;
  let c = Faults.Fuzz.run ~seed:"det-check-2" ~count:400 () in
  Alcotest.(check bool)
    "seed changes the schedule" true
    (c.Faults.Fuzz.parsed <> a.Faults.Fuzz.parsed
    || c.Faults.Fuzz.by_target <> a.Faults.Fuzz.by_target)

let test_hex_dump_roundtrippable () =
  let s = "\x00\x01ab\xff\x7f" in
  let dump = Faults.Fuzz.hex_dump s in
  (* Offset, every byte in hex, printable ASCII gutter. *)
  Alcotest.(check bool) "has offset" true (String.length dump > 0);
  List.iter
    (fun hexpair ->
      if
        not
          (let re = hexpair in
           let rec find i =
             i + String.length re <= String.length dump
             && (String.sub dump i (String.length re) = re || find (i + 1))
           in
           find 0)
      then Alcotest.failf "hex dump missing %s:\n%s" hexpair dump)
    [ "00"; "01"; "61"; "62"; "ff"; "7f" ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "fuzz"
    [
      qsuite "parsers-total"
        [
          prop_handshake_total;
          prop_flight_total;
          prop_record_total;
          prop_records_total;
          prop_cert_total;
          prop_session_total;
          prop_ticket_total;
          prop_psk_total;
          prop_campaign_row_total;
        ];
      qsuite "mutation"
        [
          prop_mutated_hello_total;
          prop_server_survives_mutated_hello;
          prop_server_survives_garbage_cke;
        ];
      ( "wire-fuzzer",
        [
          Alcotest.test_case "no escapes on a 3k-drive run" `Quick test_fuzz_run_clean;
          Alcotest.test_case "same seed, same report" `Quick test_fuzz_deterministic;
          Alcotest.test_case "hex dump covers every byte" `Quick
            test_hex_dump_roundtrippable;
        ] );
    ]
