(* Tests for the durability layer: atomic checksummed archives, campaign
   checkpointing with byte-identical resume, and worker supervision.

   The headline invariant under test: kill a campaign after day k, resume
   it, and the final archive is byte-for-byte identical to the archive an
   uninterrupted run would have produced — for serial and parallel
   campaigns, at any worker count. *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spew path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "tlsharm-durable" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let with_temp_file f =
  let path = Filename.temp_file "tlsharm-durable" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let flip_byte path ~pos =
  let contents = Bytes.of_string (slurp path) in
  Bytes.set contents pos (Char.chr (Char.code (Bytes.get contents pos) lxor 0xff));
  spew path (Bytes.to_string contents)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Atomic_io -------------------------------------------------------------- *)

(* Deterministic multi-block content: long enough to span three checksum
   blocks so corruption offsets are meaningful. *)
let big_content =
  String.init ((2 * Durable.Atomic_io.block_size) + 12345) (fun i -> Char.chr (((i * 131) + (i / 997)) land 0xff))

let test_atomic_roundtrip () =
  with_temp_file (fun path ->
      Durable.Atomic_io.write path big_content;
      (match Durable.Atomic_io.read path with
      | Ok c -> Alcotest.(check bool) "multi-block content survives" true (String.equal c big_content)
      | Error e -> Alcotest.fail (Durable.Atomic_io.error_to_string e));
      Durable.Atomic_io.write path "";
      match Durable.Atomic_io.read path with
      | Ok c -> Alcotest.(check string) "empty content survives" "" c
      | Error e -> Alcotest.fail (Durable.Atomic_io.error_to_string e))

let test_atomic_legacy_passthrough () =
  with_temp_file (fun path ->
      spew path "plain,legacy\nrows\n";
      (match Durable.Atomic_io.read path with
      | Error Durable.Atomic_io.Not_durable -> ()
      | Ok _ -> Alcotest.fail "read must reject a headerless file"
      | Error e -> Alcotest.fail ("wrong error: " ^ Durable.Atomic_io.error_to_string e));
      match Durable.Atomic_io.read_any path with
      | Ok c -> Alcotest.(check string) "read_any passes legacy through" "plain,legacy\nrows\n" c
      | Error e -> Alcotest.fail (Durable.Atomic_io.error_to_string e))

let test_atomic_missing_and_empty () =
  (match Durable.Atomic_io.read "/nonexistent/tlsharm/path" with
  | Error (Durable.Atomic_io.Io _) -> ()
  | Ok _ -> Alcotest.fail "missing file cannot read"
  | Error e -> Alcotest.fail ("wrong error: " ^ Durable.Atomic_io.error_to_string e));
  with_temp_file (fun path ->
      spew path "";
      (match Durable.Atomic_io.read path with
      | Error Durable.Atomic_io.Not_durable -> ()
      | Ok _ -> Alcotest.fail "empty file is not durable"
      | Error e -> Alcotest.fail ("wrong error: " ^ Durable.Atomic_io.error_to_string e));
      match Durable.Atomic_io.read_any path with
      | Ok "" -> ()
      | Ok _ -> Alcotest.fail "empty legacy file reads as empty"
      | Error e -> Alcotest.fail (Durable.Atomic_io.error_to_string e))

let test_atomic_detects_truncation () =
  with_temp_file (fun path ->
      Durable.Atomic_io.write path big_content;
      let full = slurp path in
      (* Chop the footer off entirely: a write that died mid-stream. *)
      spew path (String.sub full 0 (String.length full - 200));
      (match Durable.Atomic_io.read path with
      | Error (Durable.Atomic_io.Missing_footer _) -> ()
      | Ok _ -> Alcotest.fail "footer-less truncation must not read"
      | Error e -> Alcotest.fail ("wrong error: " ^ Durable.Atomic_io.error_to_string e));
      (* Keep the footer but drop content bytes: footer and body disagree.
         The byte at [footer_start - 1] is the frame's separator newline;
         re-add it after shortening the content. *)
      let footer_start =
        match String.rindex_opt (String.sub full 0 (String.length full - 1)) '\n' with
        | Some i -> i + 1
        | None -> Alcotest.fail "durable file has no footer line"
      in
      spew path
        (String.sub full 0 (footer_start - 101)
        ^ "\n"
        ^ String.sub full footer_start (String.length full - footer_start));
      match Durable.Atomic_io.read path with
      | Error (Durable.Atomic_io.Truncated { expected_bytes; actual_bytes }) ->
          Alcotest.(check int) "expected bytes" (String.length big_content) expected_bytes;
          Alcotest.(check bool) "actual below expected" true (actual_bytes < expected_bytes)
      | Ok _ -> Alcotest.fail "short body must not read"
      | Error e -> Alcotest.fail ("wrong error: " ^ Durable.Atomic_io.error_to_string e))

let test_atomic_detects_bit_flip () =
  with_temp_file (fun path ->
      Durable.Atomic_io.write path big_content;
      let header_len =
        let full = slurp path in
        1 + (match String.index_opt full '\n' with Some i -> i | None -> 0)
      in
      (* Damage a byte in the second content block; the error must name
         that block's starting offset. *)
      flip_byte path ~pos:(header_len + Durable.Atomic_io.block_size + 17);
      match Durable.Atomic_io.read path with
      | Error (Durable.Atomic_io.Corrupt { offset }) ->
          Alcotest.(check int) "corruption offset names the damaged block"
            Durable.Atomic_io.block_size offset
      | Ok _ -> Alcotest.fail "bit flip must not read"
      | Error e -> Alcotest.fail ("wrong error: " ^ Durable.Atomic_io.error_to_string e))

let test_atomic_failed_write_leaves_no_trace () =
  with_temp_file (fun path ->
      spew path "precious";
      (try
         Durable.Atomic_io.with_writer path (fun w ->
             Durable.Atomic_io.add w "half a file";
             failwith "simulated crash mid-write")
       with Failure _ -> ());
      Alcotest.(check bool) "no temp file left" false (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check string) "original untouched" "precious" (slurp path))

let prop_atomic_roundtrip =
  QCheck2.Test.make ~name:"atomic write/read roundtrip" ~count:100
    QCheck2.Gen.(string_size (int_range 0 1000))
    (fun content ->
      with_temp_file (fun path ->
          Durable.Atomic_io.write path content;
          match Durable.Atomic_io.read path with
          | Ok c -> String.equal c content
          | Error _ -> false))

(* --- Random corruption corpus ------------------------------------------------ *)

(* Byzantine-storage analog of the wire fuzzer: arbitrary single-byte
   damage and truncation against the durable readers must always come
   back as a typed [error] — never an exception, never silently-wrong
   content. *)

let prop_atomic_flip_detected =
  QCheck2.Test.make ~name:"atomic read total+typed under byte flips" ~count:300
    QCheck2.Gen.(triple (string_size (int_range 0 2000)) small_nat (int_range 1 255))
    (fun (content, pos, x) ->
      with_temp_file (fun path ->
          Durable.Atomic_io.write path content;
          let raw = Bytes.of_string (slurp path) in
          let p = pos mod Bytes.length raw in
          Bytes.set raw p (Char.chr (Char.code (Bytes.get raw p) lxor x));
          spew path (Bytes.to_string raw);
          match Durable.Atomic_io.read path with
          | Error _ -> true
          | Ok c ->
              QCheck2.Test.fail_reportf
                "flip at byte %d (xor %#x) read back Ok with %d bytes" p x
                (String.length c)
          | exception e ->
              QCheck2.Test.fail_reportf "read raised %s" (Printexc.to_string e)))

let prop_atomic_truncation_detected =
  QCheck2.Test.make ~name:"atomic read total+typed under truncation" ~count:300
    QCheck2.Gen.(pair (string_size (int_range 0 2000)) small_nat)
    (fun (content, cut) ->
      with_temp_file (fun path ->
          Durable.Atomic_io.write path content;
          let raw = slurp path in
          let keep = cut mod String.length raw in
          spew path (String.sub raw 0 keep);
          match Durable.Atomic_io.read path with
          | Error _ -> true
          | Ok c ->
              QCheck2.Test.fail_reportf "file cut to %d bytes read back Ok with %d bytes"
                keep (String.length c)
          | exception e ->
              QCheck2.Test.fail_reportf "read raised %s" (Printexc.to_string e)))

let prop_spool_flip_total =
  (* The spool's contract under damage is weaker (it frames against
     tearing, not bit rot — payload integrity belongs to the CSV layer
     above), but the reader must stay total: a typed result whose block
     list never exceeds what was written, with every block of a complete
     read bounded by its frame. *)
  QCheck2.Test.make ~name:"spool read total under byte flips" ~count:300
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 6) (string_size (int_range 0 200)))
        small_nat (int_range 1 255))
    (fun (payloads, pos, x) ->
      with_temp_file (fun path ->
          let w = Durable.Spool.create path in
          List.iter (Durable.Spool.add_block w) payloads;
          Durable.Spool.close w;
          let raw = Bytes.of_string (slurp path) in
          let p = pos mod Bytes.length raw in
          Bytes.set raw p (Char.chr (Char.code (Bytes.get raw p) lxor x));
          spew path (Bytes.to_string raw);
          match Durable.Spool.read path with
          | Error _ -> true
          | Ok (blocks, _complete) -> List.length blocks <= List.length payloads
          | exception e ->
              QCheck2.Test.fail_reportf "spool read raised %s" (Printexc.to_string e)))

let prop_spool_truncation_total =
  QCheck2.Test.make ~name:"spool read total under truncation" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 1 6) (string_size (int_range 0 200))) small_nat)
    (fun (payloads, cut) ->
      with_temp_file (fun path ->
          let w = Durable.Spool.create path in
          List.iter (Durable.Spool.add_block w) payloads;
          Durable.Spool.close w;
          let raw = slurp path in
          let keep = cut mod String.length raw in
          spew path (String.sub raw 0 keep);
          match Durable.Spool.read path with
          | Error _ -> true
          | Ok (blocks, complete) ->
              (* A truncated spool can never read back complete with every
                 block intact unless nothing after the header was lost. *)
              List.length blocks <= List.length payloads
              && ((not complete) || List.length blocks < List.length payloads
                 || keep >= String.length raw)
          | exception e ->
              QCheck2.Test.fail_reportf "spool read raised %s" (Printexc.to_string e)))

(* --- Campaign archive damage ------------------------------------------------- *)

let small_campaign =
  lazy
    (let w =
       Simnet.World.create
         ~config:
           { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "durable-archive" }
         ()
     in
     Scanner.Daily_scan.run w ~days:2 ())

let test_campaign_load_rejects_damage () =
  with_temp_file (fun path ->
      Scanner.Daily_scan.save (Lazy.force small_campaign) path;
      let pristine = slurp path in
      (* Truncation. *)
      spew path (String.sub pristine 0 (String.length pristine / 2));
      (match Scanner.Daily_scan.load path with
      | Error e -> Alcotest.(check bool) "truncation is a campaign error" true (contains e "campaign")
      | Ok _ -> Alcotest.fail "truncated archive must not load");
      (* Bit flip in the body. *)
      spew path pristine;
      flip_byte path ~pos:(String.length pristine / 2);
      (match Scanner.Daily_scan.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bit-flipped archive must not load");
      (* Empty file. *)
      spew path "";
      match Scanner.Daily_scan.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "empty archive must not load")

(* --- Checkpoint stores -------------------------------------------------------- *)

let manifest_fixture = [ ("mode", "campaign"); ("seed", "s"); ("days", "63") ]

let test_checkpoint_manifest_roundtrip () =
  with_temp_dir (fun dir ->
      let dir = Filename.concat dir "ckpt" in
      (match Durable.Checkpoint.init ~dir ~manifest:manifest_fixture with
      | Error e -> Alcotest.fail e
      | Ok store -> (
          Alcotest.(check (option string)) "find" (Some "63") (Durable.Checkpoint.find store "days");
          match Durable.Checkpoint.manifest store with
          | Error e -> Alcotest.fail e
          | Ok kvs ->
              Alcotest.(check (option string)) "version recorded"
                (Some (string_of_int Durable.Checkpoint.version))
                (List.assoc_opt "version" kvs)));
      (* Re-init with identical parameters re-attaches... *)
      (match Durable.Checkpoint.init ~dir ~manifest:manifest_fixture with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("re-init must be idempotent: " ^ e));
      (* ...but a different campaign is refused. *)
      (match Durable.Checkpoint.init ~dir ~manifest:[ ("mode", "other") ] with
      | Error e -> Alcotest.(check bool) "mentions mismatch" true (contains e "different campaign")
      | Ok _ -> Alcotest.fail "different manifest must be refused");
      match Durable.Checkpoint.attach ~dir with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("attach must succeed: " ^ e))

let test_checkpoint_attach_errors () =
  with_temp_dir (fun dir ->
      (match Durable.Checkpoint.attach ~dir:(Filename.concat dir "missing") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "attach to a store-less directory must fail");
      let cdir = Filename.concat dir "ckpt" in
      (match Durable.Checkpoint.init ~dir:cdir ~manifest:manifest_fixture with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let mpath = Filename.concat cdir "manifest" in
      let pristine = slurp mpath in
      (* Truncated manifest: typed error, no exception. *)
      spew mpath (String.sub pristine 0 (String.length pristine - 5));
      (match Durable.Checkpoint.attach ~dir:cdir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated manifest must not attach");
      (* Bit-flipped manifest. *)
      spew mpath pristine;
      flip_byte mpath ~pos:(String.length pristine / 2);
      (match Durable.Checkpoint.attach ~dir:cdir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bit-flipped manifest must not attach");
      (* Raw headerless manifest (foreign file). *)
      spew mpath "version=1\n";
      match Durable.Checkpoint.attach ~dir:cdir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "headerless manifest must not attach")

let test_checkpoint_valid_prefix () =
  with_temp_dir (fun dir ->
      let store =
        match Durable.Checkpoint.init ~dir:(Filename.concat dir "ckpt") ~manifest:manifest_fixture with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let stream = Durable.Checkpoint.stream store "serial" in
      Alcotest.(check int) "empty stream" 0 (Durable.Checkpoint.valid_prefix stream ~days:5);
      for day = 0 to 3 do
        Durable.Checkpoint.write_day stream ~day (Printf.sprintf "payload for day %d" day)
      done;
      Alcotest.(check int) "four days" 4 (Durable.Checkpoint.valid_prefix stream ~days:5);
      Alcotest.(check int) "capped by days" 2 (Durable.Checkpoint.valid_prefix stream ~days:2);
      (match Durable.Checkpoint.read_day stream ~day:2 with
      | Ok p -> Alcotest.(check string) "payload round-trips" "payload for day 2" p
      | Error e -> Alcotest.fail (Durable.Atomic_io.error_to_string e));
      (match Durable.Checkpoint.read_day stream ~day:9 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "missing day must not read");
      (* A decoder veto ends the prefix. *)
      Alcotest.(check int) "decode veto"
        1
        (Durable.Checkpoint.valid_prefix
           ~decode:(fun ~day _ -> day < 1)
           stream ~days:5);
      (* Corrupting day 1 limits resume to day 1 even though days 2-3 are
         fine: later days build on earlier state. *)
      let day1 = Filename.concat (Filename.concat (Durable.Checkpoint.dir store) "serial") "day-0001.ckpt" in
      flip_byte day1 ~pos:(String.length (slurp day1) / 2);
      Alcotest.(check int) "corrupt day ends prefix" 1 (Durable.Checkpoint.valid_prefix stream ~days:5))

(* --- Supervisor ---------------------------------------------------------------- *)

let test_supervisor_first_try () =
  let crashes = ref 0 in
  match
    Durable.Supervisor.supervised
      ~on_crash:(fun ~attempt:_ _ -> incr crashes)
      Durable.Supervisor.default ~attempt:(fun a -> a * 10)
  with
  | Ok 0 -> Alcotest.(check int) "no crashes" 0 !crashes
  | Ok _ -> Alcotest.fail "first attempt is attempt 0"
  | Error _ -> Alcotest.fail "must succeed"

let test_supervisor_retries_then_succeeds () =
  let seen = ref [] in
  match
    Durable.Supervisor.supervised
      ~on_crash:(fun ~attempt e -> seen := (attempt, Printexc.to_string e) :: !seen)
      { Durable.Supervisor.max_restarts = 2 }
      ~attempt:(fun a -> if a < 2 then failwith "flaky" else a)
  with
  | Ok 2 ->
      Alcotest.(check (list int)) "crashed on attempts 0 and 1" [ 0; 1 ]
        (List.rev_map fst !seen)
  | Ok _ -> Alcotest.fail "succeeds on attempt 2"
  | Error _ -> Alcotest.fail "two restarts cover two failures"

let test_supervisor_exhaustion () =
  let attempts = ref 0 in
  match
    Durable.Supervisor.supervised { Durable.Supervisor.max_restarts = 2 }
      ~attempt:(fun _ ->
        incr attempts;
        failwith "always down")
  with
  | Error (Failure _) -> Alcotest.(check int) "three attempts total" 3 !attempts
  | Error _ -> Alcotest.fail "last exception is returned"
  | Ok _ -> Alcotest.fail "must exhaust"

let test_supervisor_reraises_kill_and_mismatch () =
  let attempts = ref 0 in
  (try
     ignore
       (Durable.Supervisor.supervised Durable.Supervisor.default ~attempt:(fun _ ->
            incr attempts;
            raise Durable.Supervisor.Killed));
     Alcotest.fail "Killed must escape the supervisor"
   with Durable.Supervisor.Killed -> ());
  Alcotest.(check int) "a kill is not retried" 1 !attempts;
  attempts := 0;
  (try
     ignore
       (Durable.Supervisor.supervised Durable.Supervisor.default ~attempt:(fun _ ->
            incr attempts;
            Durable.Checkpoint.mismatch "divergence"));
     Alcotest.fail "Mismatch must escape the supervisor"
   with Durable.Checkpoint.Mismatch _ -> ());
  Alcotest.(check int) "a mismatch is not retried" 1 !attempts

(* --- Serialization properties --------------------------------------------------
   The checkpoint payload codec is exercised end-to-end by the resume
   tests below; these cover its two stateful ingredients directly. *)

let prop_funnel_lines_roundtrip =
  QCheck2.Test.make ~name:"funnel to_lines/of_lines roundtrip" ~count:200
    QCheck2.Gen.(
      let op =
        let* day = int_range 0 5 in
        let* attempts = int_range 1 4 in
        let* success = bool in
        let* slow = bool in
        let* fault = oneofl Faults.Fault.all in
        return (day, attempts, success, slow, fault)
      in
      list_size (int_range 0 50) op)
    (fun ops ->
      let f = Faults.Funnel.create () in
      List.iter
        (fun (day, attempts, success, slow, fault) ->
          if success then Faults.Funnel.record_success f ~day ~attempts ~slow
          else Faults.Funnel.record_failure f ~day ~attempts fault)
        ops;
      let lines = Faults.Funnel.to_lines f in
      match Faults.Funnel.of_lines lines with
      | Error _ -> false
      | Ok f' -> Faults.Funnel.to_lines f' = lines)

let test_funnel_of_lines_rejects_garbage () =
  (match Faults.Funnel.of_lines [ "not a funnel line" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse");
  match Faults.Funnel.of_lines [ "cell 1 2 3" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short cell line must not parse"

let prop_drbg_state_roundtrip =
  QCheck2.Test.make ~name:"drbg state/restore continues the stream" ~count:100
    QCheck2.Gen.(pair (string_size (int_range 1 32)) (int_range 1 120))
    (fun (seed, n) ->
      let d = Crypto.Drbg.create ~seed in
      ignore (Crypto.Drbg.generate d n);
      let d' = Crypto.Drbg.restore ~state:(Crypto.Drbg.state d) in
      String.equal (Crypto.Drbg.generate d 48) (Crypto.Drbg.generate d' 48))

let test_drbg_restore_rejects_bad_state () =
  match Crypto.Drbg.restore ~state:("short", String.make 32 'v') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a non-32-byte state must be rejected"

(* --- Serial kill-and-resume ------------------------------------------------------

   Simulated kill: [progress] fires at the start of day d, after days
   0..d-1 checkpointed — raising {!Durable.Supervisor.Killed} there is a
   process death with exactly k completed days on disk. *)

let serial_config =
  { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "durable-serial" }

let serial_days = 4

let archive_bytes campaign =
  with_temp_file (fun path ->
      Scanner.Daily_scan.save campaign path;
      slurp path)

let serial_reference =
  lazy
    (let w = Simnet.World.create ~config:serial_config () in
     archive_bytes (Scanner.Daily_scan.run w ~days:serial_days ()))

let init_store dir =
  match Durable.Checkpoint.init ~dir ~manifest:manifest_fixture with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let kill_serial_after store ~k =
  let w = Simnet.World.create ~config:serial_config () in
  match
    Scanner.Daily_scan.run ~checkpoint:store w ~days:serial_days
      ~progress:(fun d -> if d = k then raise Durable.Supervisor.Killed)
      ()
  with
  | _ -> Alcotest.fail "the kill must fire"
  | exception Durable.Supervisor.Killed -> ()

let test_serial_kill_resume_identity () =
  let reference = Lazy.force serial_reference in
  (* k = 1, mid, last-1. *)
  List.iter
    (fun k ->
      with_temp_dir (fun dir ->
          let store = init_store (Filename.concat dir "ckpt") in
          kill_serial_after store ~k;
          let stream = Durable.Checkpoint.stream store "serial" in
          Alcotest.(check int)
            (Printf.sprintf "k=%d days survive the kill" k)
            k
            (Durable.Checkpoint.valid_prefix stream ~days:serial_days);
          let w = Simnet.World.create ~config:serial_config () in
          let resumed = Scanner.Daily_scan.run ~checkpoint:store w ~days:serial_days () in
          Alcotest.(check bool)
            (Printf.sprintf "resume after day %d is byte-identical" k)
            true
            (String.equal (archive_bytes resumed) reference);
          (* The completed store now restores without scanning. *)
          let w = Simnet.World.create ~config:serial_config () in
          let restored = Scanner.Daily_scan.run ~checkpoint:store w ~days:serial_days () in
          Alcotest.(check bool) "full restore is byte-identical" true
            (String.equal (archive_bytes restored) reference)))
    [ 1; 2; serial_days - 1 ]

let test_serial_corrupt_newest_falls_back () =
  let reference = Lazy.force serial_reference in
  with_temp_dir (fun dir ->
      let store = init_store (Filename.concat dir "ckpt") in
      let w = Simnet.World.create ~config:serial_config () in
      ignore (Scanner.Daily_scan.run ~checkpoint:store w ~days:serial_days ());
      (* Damage the newest snapshot: resume must fall back to the last
         valid day and still converge on the same archive. *)
      let newest =
        Filename.concat
          (Filename.concat (Durable.Checkpoint.dir store) "serial")
          (Printf.sprintf "day-%04d.ckpt" (serial_days - 1))
      in
      flip_byte newest ~pos:(String.length (slurp newest) / 2);
      let stream = Durable.Checkpoint.stream store "serial" in
      Alcotest.(check int) "prefix stops at the damage" (serial_days - 1)
        (Durable.Checkpoint.valid_prefix stream ~days:serial_days);
      let w = Simnet.World.create ~config:serial_config () in
      let resumed = Scanner.Daily_scan.run ~checkpoint:store w ~days:serial_days () in
      Alcotest.(check bool) "resume past corruption is byte-identical" true
        (String.equal (archive_bytes resumed) reference))

let test_resume_wrong_world_mismatches () =
  with_temp_dir (fun dir ->
      let store = init_store (Filename.concat dir "ckpt") in
      let w = Simnet.World.create ~config:serial_config () in
      ignore (Scanner.Daily_scan.run ~checkpoint:store w ~days:2 ());
      (* Same store, different world: the replay byte-compare must refuse
         to graft this run onto the recorded checkpoints. *)
      let other =
        Simnet.World.create ~config:{ serial_config with Simnet.World.seed = "other-world" } ()
      in
      match Scanner.Daily_scan.run ~checkpoint:store other ~days:serial_days () with
      | _ -> Alcotest.fail "a different world must not resume"
      | exception Durable.Checkpoint.Mismatch _ -> ())

(* --- Parallel kill-and-resume ----------------------------------------------------- *)

let parallel_config =
  { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "durable-parallel" }

let parallel_days = 3

let parallel_reference =
  lazy
    (let w = Simnet.World.create ~config:parallel_config () in
     archive_bytes (Scanner.Parallel_campaign.run ~jobs:1 w ~days:parallel_days ()))

let test_parallel_kill_resume_identity () =
  let reference = Lazy.force parallel_reference in
  with_temp_dir (fun dir ->
      let store = init_store (Filename.concat dir "ckpt") in
      let w = Simnet.World.create ~config:parallel_config () in
      (* Kill the worker mid-shard: shard 1, start of day 1. *)
      (match
         Scanner.Parallel_campaign.run ~jobs:1 ~checkpoint:store
           ~chaos:(fun ~shard ~attempt:_ ~day ->
             if shard = 1 && day = 1 then raise Durable.Supervisor.Killed)
           w ~days:parallel_days ()
       with
      | _ -> Alcotest.fail "the kill must fire"
      | exception Durable.Supervisor.Killed -> ());
      (* Resume at a different worker count than the killed run. *)
      let w = Simnet.World.create ~config:parallel_config () in
      let resumed =
        Scanner.Parallel_campaign.run ~jobs:4 ~checkpoint:store w ~days:parallel_days ()
      in
      Alcotest.(check bool) "resume with jobs=4 is byte-identical" true
        (String.equal (archive_bytes resumed) reference);
      (* Every shard is now fully checkpointed: a further resume (back at
         jobs=1) restores without scanning and still matches. *)
      let w = Simnet.World.create ~config:parallel_config () in
      let restored =
        Scanner.Parallel_campaign.run ~jobs:1 ~checkpoint:store w ~days:parallel_days ()
      in
      Alcotest.(check bool) "full restore with jobs=1 is byte-identical" true
        (String.equal (archive_bytes restored) reference))

(* --- Spool framing ------------------------------------------------------------------ *)

let test_spool_roundtrip () =
  with_temp_file (fun path ->
      let w = Durable.Spool.create path in
      Durable.Spool.add_block w "alpha";
      Durable.Spool.add_block w "two\nlines\n";
      Durable.Spool.add_block w "";
      Durable.Spool.close w;
      match Durable.Spool.read path with
      | Ok (blocks, complete) ->
          Alcotest.(check bool) "footer seen" true complete;
          Alcotest.(check (list string)) "blocks survive" [ "alpha"; "two\nlines\n"; "" ] blocks
      | Error e -> Alcotest.fail e)

let test_spool_torn_tail_is_valid_prefix () =
  (* A crash mid-append must cost at most the torn block: the reader
     returns the complete prefix and flags the spool as unfinished. *)
  with_temp_file (fun path ->
      let w = Durable.Spool.create path in
      Durable.Spool.add_block w "first";
      Durable.Spool.add_block w "second";
      Durable.Spool.close w;
      let bytes = slurp path in
      (* Cut inside the last block's payload, dropping the footer too. *)
      spew path (String.sub bytes 0 (String.length bytes - 30));
      match Durable.Spool.read path with
      | Ok (blocks, complete) ->
          Alcotest.(check bool) "flagged incomplete" false complete;
          Alcotest.(check (list string)) "valid prefix survives" [ "first" ] blocks
      | Error e -> Alcotest.fail e)

let test_spool_bad_header_rejected () =
  with_temp_file (fun path ->
      spew path "not a spool\n#block 0 bytes=1\nx\n";
      match Durable.Spool.read path with
      | Ok _ -> Alcotest.fail "a foreign file must not parse as a spool"
      | Error e -> Alcotest.(check bool) "error names the file" true (contains e path))

(* --- Streamed kill-and-resume ------------------------------------------------------- *)

let test_streamed_kill_resume_identity () =
  (* The streaming sink obeys the same headline invariant as the CSV
     path: kill mid-campaign, resume (at a different worker count), and
     the reassembled streamed archive is byte-identical to an
     uninterrupted in-memory run. *)
  let reference = Lazy.force parallel_reference in
  with_temp_dir (fun dir ->
      let store = init_store (Filename.concat dir "ckpt") in
      let sink_dir = Filename.concat dir "stream" in
      let make_sink w =
        let start_day = Simnet.Clock.now (Simnet.World.clock w) / Simnet.Clock.day in
        match
          Scanner.Stream_sink.create ~dir:sink_dir
            ~manifest:
              [
                ("start_day", string_of_int start_day);
                ("n_days", string_of_int parallel_days);
              ]
        with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let w = Simnet.World.create ~config:parallel_config () in
      (match
         Scanner.Parallel_campaign.run ~jobs:1 ~checkpoint:store ~sink:(make_sink w)
           ~retain_rows:false
           ~chaos:(fun ~shard ~attempt:_ ~day ->
             if shard = 1 && day = 1 then raise Durable.Supervisor.Killed)
           w ~days:parallel_days ()
       with
      | _ -> Alcotest.fail "the kill must fire"
      | exception Durable.Supervisor.Killed -> ());
      (* The killed run leaves footer-less spools behind; the loader must
         refuse them rather than serve a partial archive. *)
      (match Scanner.Daily_scan.load_stream sink_dir with
      | Ok _ -> Alcotest.fail "interrupted streamed archive must not load"
      | Error _ -> ());
      (* Resume at a different worker count, streaming into the same
         directory: spools are truncated on open and every completed day
         replayed, converging on the uninterrupted bytes. *)
      let w = Simnet.World.create ~config:parallel_config () in
      ignore
        (Scanner.Parallel_campaign.run ~jobs:4 ~checkpoint:store ~sink:(make_sink w)
           ~retain_rows:false w ~days:parallel_days ());
      match Scanner.Daily_scan.load_stream sink_dir with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check bool) "streamed resume is byte-identical" true
            (String.equal (archive_bytes loaded) reference))

(* --- Worker supervision ------------------------------------------------------------ *)

let test_supervised_retry_recovers () =
  (* One crash at the very start of shard 0's first attempt: the retry
     starts from pristine world state, so the campaign must equal an
     uncrashed run exactly. *)
  let run ~chaos () =
    let w = Simnet.World.create ~config:parallel_config () in
    Scanner.Parallel_campaign.run ~jobs:1 ?chaos w ~days:2 ()
  in
  let plain = run ~chaos:None () in
  let crashed_once = ref false in
  let chaotic =
    run
      ~chaos:
        (Some
           (fun ~shard ~attempt ~day ->
             if shard = 0 && attempt = 0 && day = 0 then begin
               crashed_once := true;
               failwith "injected worker crash"
             end))
      ()
  in
  Alcotest.(check bool) "chaos fired" true !crashed_once;
  Alcotest.(check bool) "retried shard converges with the clean run" true
    (plain.Scanner.Daily_scan.series = chaotic.Scanner.Daily_scan.series)

let test_abandoned_shard_degrades () =
  let w = Simnet.World.create ~config:parallel_config () in
  let shard0 = (Scanner.Parallel_campaign.shards w).(0) in
  let days = 2 in
  let expected_losses =
    (* Two probes (default + DHE) booked per present domain-day. *)
    2
    * Array.fold_left
        (fun acc d ->
          let p = ref 0 in
          for day = 0 to days - 1 do
            if Simnet.World.in_list_on_day d ~day then incr p
          done;
          acc + !p)
        0 shard0.Scanner.Parallel_campaign.members
  in
  let funnel = Faults.Funnel.create () in
  let campaign =
    Scanner.Parallel_campaign.run ~jobs:1 ~funnel
      ~supervise:{ Durable.Supervisor.max_restarts = 1 }
      ~chaos:(fun ~shard ~attempt:_ ~day:_ -> if shard = 0 then failwith "shard 0 always dies")
      w ~days ()
  in
  (* The campaign completes; shard 0's domains keep list-presence ground
     truth but no probe-derived data. *)
  let member0 = Simnet.World.domain_name shard0.Scanner.Parallel_campaign.members.(0) in
  let series =
    Array.to_list campaign.Scanner.Daily_scan.series
    |> List.find (fun (s : Scanner.Daily_scan.domain_series) ->
           String.equal s.Scanner.Daily_scan.domain member0)
  in
  Alcotest.(check bool) "abandoned domain never probed" true
    (Array.for_all
       (fun (r : Scanner.Daily_scan.day_record) ->
         (not r.Scanner.Daily_scan.default_ok) && r.Scanner.Daily_scan.stek_id = None)
       series.Scanner.Daily_scan.days);
  let totals = Faults.Funnel.totals funnel in
  Alcotest.(check (option int)) "losses booked under worker crash" (Some expected_losses)
    (List.assoc_opt Faults.Fault.Worker_crash totals.Faults.Funnel.t_losses);
  (* And the funnel report names them. *)
  let report = Analysis.Funnel_report.render funnel in
  Alcotest.(check bool) "report has a supervised-failures row" true
    (contains report "supervised shard failures")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "durable"
    [
      ( "atomic-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_atomic_roundtrip;
          Alcotest.test_case "legacy passthrough" `Quick test_atomic_legacy_passthrough;
          Alcotest.test_case "missing and empty" `Quick test_atomic_missing_and_empty;
          Alcotest.test_case "detects truncation" `Quick test_atomic_detects_truncation;
          Alcotest.test_case "detects bit flips" `Quick test_atomic_detects_bit_flip;
          Alcotest.test_case "failed write leaves no trace" `Quick
            test_atomic_failed_write_leaves_no_trace;
        ] );
      qsuite "atomic-io-properties" [ prop_atomic_roundtrip ];
      qsuite "corruption-corpus"
        [
          prop_atomic_flip_detected;
          prop_atomic_truncation_detected;
          prop_spool_flip_total;
          prop_spool_truncation_total;
        ];
      ( "campaign-archive",
        [ Alcotest.test_case "load rejects damage" `Slow test_campaign_load_rejects_damage ] );
      ( "checkpoint",
        [
          Alcotest.test_case "manifest roundtrip" `Quick test_checkpoint_manifest_roundtrip;
          Alcotest.test_case "attach errors" `Quick test_checkpoint_attach_errors;
          Alcotest.test_case "valid prefix" `Quick test_checkpoint_valid_prefix;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "first try" `Quick test_supervisor_first_try;
          Alcotest.test_case "retries then succeeds" `Quick test_supervisor_retries_then_succeeds;
          Alcotest.test_case "exhaustion" `Quick test_supervisor_exhaustion;
          Alcotest.test_case "reraises kill and mismatch" `Quick
            test_supervisor_reraises_kill_and_mismatch;
        ] );
      qsuite "serialization-properties"
        [ prop_funnel_lines_roundtrip; prop_drbg_state_roundtrip ];
      ( "serialization",
        [
          Alcotest.test_case "funnel rejects garbage" `Quick test_funnel_of_lines_rejects_garbage;
          Alcotest.test_case "drbg rejects bad state" `Quick test_drbg_restore_rejects_bad_state;
        ] );
      ( "serial-resume",
        [
          Alcotest.test_case "kill/resume byte identity" `Slow test_serial_kill_resume_identity;
          Alcotest.test_case "corrupt newest falls back" `Slow
            test_serial_corrupt_newest_falls_back;
          Alcotest.test_case "wrong world mismatches" `Slow test_resume_wrong_world_mismatches;
        ] );
      ( "spool",
        [
          Alcotest.test_case "roundtrip" `Quick test_spool_roundtrip;
          Alcotest.test_case "torn tail is valid prefix" `Quick
            test_spool_torn_tail_is_valid_prefix;
          Alcotest.test_case "bad header rejected" `Quick test_spool_bad_header_rejected;
        ] );
      ( "parallel-resume",
        [
          Alcotest.test_case "kill/resume across worker counts" `Slow
            test_parallel_kill_resume_identity;
          Alcotest.test_case "streamed kill/resume byte identity" `Slow
            test_streamed_kill_resume_identity;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "retry recovers" `Slow test_supervised_retry_recovers;
          Alcotest.test_case "abandoned shard degrades" `Slow test_abandoned_shard_degrades;
        ] );
    ]
