(* Byte-identity guard for the crypto kernels.

   The optimized kernels (windowed Montgomery exponentiation, wNAF and
   fixed-base comb scalar multiplication) must be *observably equivalent*
   to the seed-era ones: same public values, same handshake bytes, same
   campaign CSV. This test replays a small fault-free campaign and asserts
   the observation CSV is byte-for-byte identical to a golden file that
   was produced by the pre-optimization build (see golden/README.md). A
   kernel change that alters any measured byte fails here, loudly, before
   it can silently shift results. *)

(* Under `dune runtest` the glob_files dep in test/dune copies the golden
   file next to this executable; resolve it from there so the test also
   works when cwd is the workspace root. *)
let golden_path name =
  let beside_exe = Filename.concat (Filename.dirname Sys.executable_name) (Filename.concat "golden" name) in
  if Sys.file_exists beside_exe then beside_exe else Filename.concat "golden" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_campaign_byte_identity () =
  let config =
    { Simnet.World.default_config with n_domains = 1500; seed = "golden-kernels" }
  in
  let world = Simnet.World.create ~config () in
  let obs = Scanner.Daily_scan.run world ~days:2 () in
  let tmp = Filename.temp_file "tlsharm-golden" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Scanner.Daily_scan.save obs tmp;
      let got = read_file tmp in
      let want = read_file (golden_path "campaign_seed.csv") in
      (* Compare lengths first for a readable failure; the string check
         would drown the terminal with 300 KB of CSV. *)
      Alcotest.(check int) "csv length" (String.length want) (String.length got);
      Alcotest.(check bool) "csv bytes identical" true (String.equal want got))

let () =
  Alcotest.run "golden"
    [
      ( "campaign",
        [ Alcotest.test_case "byte-identical to seed-era kernels" `Quick test_campaign_byte_identity ] );
    ]
