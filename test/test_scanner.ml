(* Tests for the scanner: observation records (CSV round-trip), burst
   scans, the resumption-delay walks, the daily campaign, and the
   cross-domain probe — all against one small shared world. *)

let world_config =
  { Simnet.World.default_config with Simnet.World.n_domains = 1600; seed = "scanner-test" }

let world = lazy (Simnet.World.create ~config:world_config ())

let subset_domains names =
  let w = Lazy.force world in
  Some
    (List.filter_map (fun n -> Simnet.World.find_domain w n) names)

(* --- Observations ---------------------------------------------------------------- *)

let sample_conn =
  {
    Scanner.Observation.time = 12345;
    domain = "example.com";
    ok = true;
    resumed = Scanner.Observation.By_ticket;
    cipher = Some Tls.Types.ECDHE_ECDSA_AES128_SHA256;
    session_id_set = true;
    session_id = "aabb";
    trusted = true;
    stek_id = Some "deadbeef";
    ticket_hint = Some 300;
    dhe_value = None;
    ecdhe_value = Some "0011";
    failure = None;
    attempts = 1;
    region = Simnet.Region.default_name;
  }

let test_csv_roundtrip () =
  let row = Scanner.Observation.to_csv_row sample_conn in
  match Scanner.Observation.of_csv_row row with
  | Some c -> Alcotest.(check bool) "roundtrip" true (c = sample_conn)
  | None -> Alcotest.fail "row did not parse"

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "tlsharm" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let conns =
        [ sample_conn; Scanner.Observation.failed_conn ~time:1 ~domain:"down.example" () ]
      in
      Scanner.Observation.write_csv path conns;
      match Scanner.Observation.read_csv path with
      | Ok read -> Alcotest.(check bool) "file roundtrip" true (read = conns)
      | Error e -> Alcotest.fail e)

let prop_csv_roundtrip =
  QCheck2.Test.make ~name:"conn CSV roundtrip" ~count:200
    QCheck2.Gen.(
      let hexstr = map (fun n -> Printf.sprintf "%x" (abs n)) big_nat in
      let* time = int_range 0 1_000_000_000 in
      let* ok = bool in
      let* trusted = bool in
      let* id_set = bool in
      let* stek = option hexstr in
      let* hint = option (int_range 0 10_000_000) in
      let* dhe = option hexstr in
      let* ecdhe = option hexstr in
      let* attempts = int_range 1 5 in
      let* failure =
        if ok then return None
        else map Option.some (oneofl Faults.Fault.all)
      in
      return
        {
          Scanner.Observation.time;
          domain = "a.example";
          ok;
          resumed = Scanner.Observation.No_resumption;
          cipher = Some Tls.Types.DHE_ECDSA_AES128_SHA256;
          session_id_set = id_set;
          session_id = "00ff";
          trusted;
          stek_id = stek;
          ticket_hint = hint;
          dhe_value = dhe;
          ecdhe_value = ecdhe;
          failure;
          attempts;
          region = Simnet.Region.default_name;
        })
    (fun conn ->
      match Scanner.Observation.of_csv_row (Scanner.Observation.to_csv_row conn) with
      | Some c -> c = conn
      | None -> false)

(* --- Burst scans -------------------------------------------------------------------- *)

let test_repeats () =
  Alcotest.(check (pair bool bool)) "empty" (false, false) (Scanner.Burst_scan.repeats []);
  Alcotest.(check (pair bool bool)) "single" (false, false) (Scanner.Burst_scan.repeats [ "a" ]);
  Alcotest.(check (pair bool bool)) "all same" (true, true) (Scanner.Burst_scan.repeats [ "a"; "a"; "a" ]);
  Alcotest.(check (pair bool bool)) "some repeat" (true, false)
    (Scanner.Burst_scan.repeats [ "a"; "b"; "a" ]);
  Alcotest.(check (pair bool bool)) "all distinct" (false, false)
    (Scanner.Burst_scan.repeats [ "a"; "b"; "c" ])

let test_burst_scan () =
  let w = Lazy.force world in
  let probe = Scanner.Probe.create ~seed:"burst-test" w in
  let domains = subset_domains [ "google.com"; "yahoo.com"; "netflix.com" ] in
  let results = Scanner.Burst_scan.run probe ~domains ~rounds:5 ~gap:10 () in
  Alcotest.(check int) "three results" 3 (List.length results);
  List.iter
    (fun (r : Scanner.Burst_scan.domain_result) ->
      Alcotest.(check int) "five attempts" 5 r.Scanner.Burst_scan.attempts;
      Alcotest.(check bool) "mostly successful" true (r.Scanner.Burst_scan.successes >= 4);
      Alcotest.(check bool) "trusted" true r.Scanner.Burst_scan.trusted;
      (* All three notables issue tickets. *)
      Alcotest.(check bool) "stek ids seen" true
        (Scanner.Burst_scan.result_values ~field:`Stek r <> []))
    results

let test_burst_detects_static_stek () =
  let w = Lazy.force world in
  let probe = Scanner.Probe.create ~seed:"burst-static" w in
  let results = Scanner.Burst_scan.run probe ~domains:(subset_domains [ "yahoo.com" ]) ~rounds:6 ~gap:10 () in
  match results with
  | [ r ] ->
      let any2, all = Scanner.Burst_scan.repeats (Scanner.Burst_scan.result_values ~field:`Stek r) in
      Alcotest.(check bool) "static STEK repeats" true (any2 && all)
  | _ -> Alcotest.fail "expected one result"

(* --- Resumption scans ------------------------------------------------------------------ *)

let test_resumption_scan_sessions () =
  let w = Lazy.force world in
  let probe = Scanner.Probe.create ~offer_ticket:false ~seed:"resume-test" w in
  let domains = subset_domains [ "yahoo.com"; "netflix.com" ] in
  let results =
    Scanner.Resumption_scan.run probe ~mode:Scanner.Resumption_scan.Session_ids
      ~max_delay:(30 * 60) ~domains ()
  in
  Alcotest.(check int) "two results" 2 (List.length results);
  List.iter
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      Alcotest.(check bool) "https" true r.Scanner.Resumption_scan.https;
      Alcotest.(check bool) "supports ids" true r.Scanner.Resumption_scan.supports;
      Alcotest.(check bool) "resumed at 1s" true r.Scanner.Resumption_scan.resumed_at_1s;
      match r.Scanner.Resumption_scan.max_honored with
      | Some h ->
          (* Notables cache sessions for 5 minutes. *)
          Alcotest.(check bool) "bounded by cache lifetime" true (h <= 10 * 60)
      | None -> Alcotest.fail "no honored delay recorded")
    results

let test_resumption_scan_tickets () =
  let w = Lazy.force world in
  let probe = Scanner.Probe.create ~seed:"resume-ticket-test" w in
  let domains = subset_domains [ "google.com" ] in
  let results =
    Scanner.Resumption_scan.run probe ~mode:Scanner.Resumption_scan.Tickets
      ~max_delay:(50 * 60) ~domains ()
  in
  match results with
  | [ r ] ->
      Alcotest.(check bool) "issued ticket" true r.Scanner.Resumption_scan.supports;
      Alcotest.(check bool) "hint recorded" true
        (r.Scanner.Resumption_scan.hint = Some (28 * 3600));
      (* Google accepts far beyond our truncated walk. *)
      Alcotest.(check bool) "honored through the walk" true
        (match r.Scanner.Resumption_scan.max_honored with Some h -> h >= 45 * 60 | None -> false)
  | _ -> Alcotest.fail "expected one result"

(* --- Daily scan --------------------------------------------------------------------------- *)

let test_daily_scan () =
  (* A private world: the campaign moves the clock by days. *)
  let w =
    Simnet.World.create
      ~config:{ world_config with Simnet.World.seed = "daily-test"; n_domains = 1500 }
      ()
  in
  let days = 4 in
  let campaign = Scanner.Daily_scan.run w ~days () in
  Alcotest.(check int) "day count" days campaign.Scanner.Daily_scan.n_days;
  Alcotest.(check int) "series per domain" 1500 (Array.length campaign.Scanner.Daily_scan.series);
  (* yahoo: static STEK, same id on every present day. *)
  let yahoo =
    Array.to_list campaign.Scanner.Daily_scan.series
    |> List.find (fun (s : Scanner.Daily_scan.domain_series) ->
           String.equal s.Scanner.Daily_scan.domain "yahoo.com")
  in
  let yahoo_steks =
    Array.to_list yahoo.Scanner.Daily_scan.days
    |> List.filter_map (fun (r : Scanner.Daily_scan.day_record) -> r.Scanner.Daily_scan.stek_id)
  in
  Alcotest.(check int) "yahoo scanned daily" days (List.length yahoo_steks);
  Alcotest.(check bool) "yahoo STEK constant" true
    (match yahoo_steks with
    | first :: rest -> List.for_all (String.equal first) rest
    | [] -> false);
  Alcotest.(check bool) "yahoo trusted" true yahoo.Scanner.Daily_scan.trusted;
  (* google: 14h rotation, so 4 days must show several STEKs. *)
  let google =
    Array.to_list campaign.Scanner.Daily_scan.series
    |> List.find (fun (s : Scanner.Daily_scan.domain_series) ->
           String.equal s.Scanner.Daily_scan.domain "google.com")
  in
  let google_steks =
    Array.to_list google.Scanner.Daily_scan.days
    |> List.filter_map (fun (r : Scanner.Daily_scan.day_record) -> r.Scanner.Daily_scan.stek_id)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "google STEK rotates" true (List.length google_steks >= 3)

let test_campaign_save_load () =
  let w =
    Simnet.World.create
      ~config:{ world_config with Simnet.World.seed = "persist-test"; n_domains = 1500 }
      ()
  in
  let campaign = Scanner.Daily_scan.run w ~days:3 () in
  let path = Filename.temp_file "tlsharm" ".campaign.csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scanner.Daily_scan.save campaign path;
      match Scanner.Daily_scan.load path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check int) "days preserved" campaign.Scanner.Daily_scan.n_days
            loaded.Scanner.Daily_scan.n_days;
          Alcotest.(check int) "series preserved"
            (Array.length campaign.Scanner.Daily_scan.series)
            (Array.length loaded.Scanner.Daily_scan.series);
          (* Analyses agree on the round-tripped data. *)
          let spans t = Analysis.Lifetime.analyze ~field:Analysis.Lifetime.Stek t in
          let summarize t = Analysis.Lifetime.summarize (spans t) in
          let a = summarize campaign and b = summarize loaded in
          Alcotest.(check (float 1e-3)) "population" a.Analysis.Lifetime.population
            b.Analysis.Lifetime.population;
          Alcotest.(check (float 1e-3)) "never" a.Analysis.Lifetime.never_observed
            b.Analysis.Lifetime.never_observed;
          Alcotest.(check bool) "per-series records equal" true
            (Array.for_all2
               (fun (x : Scanner.Daily_scan.domain_series) (y : Scanner.Daily_scan.domain_series) ->
                 x.Scanner.Daily_scan.domain = y.Scanner.Daily_scan.domain
                 && x.Scanner.Daily_scan.days = y.Scanner.Daily_scan.days)
               campaign.Scanner.Daily_scan.series loaded.Scanner.Daily_scan.series))

(* A property over the campaign archive: any well-formed campaign value
   survives save/load exactly — including weights like 1000/7 that the
   old %.6f formatting truncated. *)
let campaign_gen =
  QCheck2.Gen.(
    let hex = map (fun n -> Printf.sprintf "%x" (abs n + 1)) big_nat in
    let* n_days = int_range 1 4 in
    let* start_day = int_range 0 20_000 in
    let day_record day =
      let* present = bool in
      let* default_ok = bool in
      let* stek_id = option hex in
      let* ticket_hint = option (int_range 0 1_000_000) in
      let* ecdhe_value = option hex in
      let* dhe_ok = bool in
      let* dhe_value = option hex in
      return
        {
          Scanner.Daily_scan.day;
          present;
          default_ok;
          stek_id;
          ticket_hint;
          ecdhe_value;
          dhe_ok;
          dhe_value;
        }
    in
    let series i =
      let* rank = int_range 1 1_000_000 in
      let* num = int_range 1 100_000 in
      let* den = int_range 1 13 in
      let* trusted = bool in
      let* stable = bool in
      let* days = flatten_l (List.init n_days day_record) in
      return
        {
          Scanner.Daily_scan.domain = Printf.sprintf "d%d.example" i;
          rank;
          weight = float_of_int num /. float_of_int den;
          trusted;
          stable;
          days = Array.of_list days;
        }
    in
    let* n_series = int_range 1 5 in
    let* series = flatten_l (List.init n_series series) in
    return { Scanner.Daily_scan.start_day; n_days; series = Array.of_list series })

let prop_campaign_roundtrip =
  QCheck2.Test.make ~name:"campaign save/load roundtrip" ~count:100 campaign_gen (fun t ->
      let path = Filename.temp_file "tlsharm" ".campaign.csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Scanner.Daily_scan.save t path;
          match Scanner.Daily_scan.load path with Ok t' -> t' = t | Error _ -> false))

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let test_load_rejects_bad_metadata () =
  let path = Filename.temp_file "tlsharm" ".campaign.csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path ("#tlsharm-campaign,start_day=3,n_days=0\n" ^ Scanner.Daily_scan.csv_header ^ "\n");
      (match Scanner.Daily_scan.load path with
      | Ok _ -> Alcotest.fail "n_days=0 must be rejected"
      | Error e -> Alcotest.(check bool) "mentions n_days" true (String.length e > 0));
      write_file path
        ("#tlsharm-campaign,start_day=-1,n_days=2\n" ^ Scanner.Daily_scan.csv_header ^ "\n");
      match Scanner.Daily_scan.load path with
      | Ok _ -> Alcotest.fail "negative start_day must be rejected"
      | Error _ -> ())

let test_load_rejects_out_of_range_day () =
  let path = Filename.temp_file "tlsharm" ".campaign.csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path
        ("#tlsharm-campaign,start_day=0,n_days=2\n" ^ Scanner.Daily_scan.csv_header ^ "\n"
       ^ "a.example,1,1,true,true,5,true,true,,,,false,\n");
      match Scanner.Daily_scan.load path with
      | Ok _ -> Alcotest.fail "day 5 of a 2-day campaign must be rejected"
      | Error e -> Alcotest.(check bool) "error mentions range" true (String.length e > 0))

(* --- Parallel campaign ------------------------------------------------------------------------ *)

let parallel_world_config =
  { world_config with Simnet.World.seed = "parallel-test"; n_domains = 1500 }

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_dir f =
  let dir = Filename.temp_file "tlsharm" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let archive_bytes campaign =
  let path = Filename.temp_file "tlsharm" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scanner.Daily_scan.save campaign path;
      slurp path)

let test_shards_partition () =
  let w = Simnet.World.create ~config:parallel_world_config () in
  let shards = Scanner.Parallel_campaign.shards w in
  let total = Array.fold_left (fun acc s -> acc + Array.length s.Scanner.Parallel_campaign.members) 0 shards in
  Alcotest.(check int) "every domain in exactly one shard (by count)"
    (Array.length (Simnet.World.domains w))
    total;
  let seen = Hashtbl.create 2048 in
  Array.iter
    (fun (s : Scanner.Parallel_campaign.shard) ->
      Array.iter
        (fun d ->
          let name = Simnet.World.domain_name d in
          Alcotest.(check bool) ("domain appears once: " ^ name) false (Hashtbl.mem seen name);
          Hashtbl.replace seen name ())
        s.Scanner.Parallel_campaign.members)
    shards;
  (* Connectivity: a shared-state key never spans two shards. *)
  let key_shard = Hashtbl.create 2048 in
  Array.iter
    (fun (s : Scanner.Parallel_campaign.shard) ->
      Array.iter
        (fun d ->
          List.iter
            (fun k ->
              match Hashtbl.find_opt key_shard k with
              | Some owner ->
                  Alcotest.(check int) ("key stays in one shard: " ^ k) owner
                    s.Scanner.Parallel_campaign.shard_id
              | None -> Hashtbl.replace key_shard k s.Scanner.Parallel_campaign.shard_id)
            (Simnet.World.domain_shard_keys w d))
        s.Scanner.Parallel_campaign.members)
    shards

let test_parallel_deterministic_in_jobs () =
  (* The tentpole guarantee: worker count cannot change the result. Fresh
     worlds per run — campaigns mutate server state. *)
  let days = 2 in
  let run jobs =
    let w = Simnet.World.create ~config:parallel_world_config () in
    Scanner.Parallel_campaign.run ~jobs w ~days ()
  in
  let one = run 1 in
  let four = run 4 in
  Alcotest.(check int) "day count" days one.Scanner.Daily_scan.n_days;
  Alcotest.(check int) "all domains scanned"
    (Array.length (Simnet.World.domains (Simnet.World.create ~config:parallel_world_config ())))
    (Array.length one.Scanner.Daily_scan.series);
  Alcotest.(check bool) "1-worker and 4-worker series identical" true
    (one.Scanner.Daily_scan.series = four.Scanner.Daily_scan.series
    && one.Scanner.Daily_scan.start_day = four.Scanner.Daily_scan.start_day);
  (* Down to the archived bytes, not just structural equality. *)
  Alcotest.(check bool) "1-worker and 4-worker archives byte-identical" true
    (String.equal (archive_bytes one) (archive_bytes four))

let prop_shard_balance =
  (* The LPT packing bound: a shard can exceed twice the mean weight only
     by holding a single unsplittable component that is itself heavier
     than the mean — shared-state components cannot be split across
     shards, so that case is irreducible. *)
  QCheck2.Test.make ~name:"no shard exceeds 2x mean weight (unsplittable giants exempt)"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1500 2200))
    (fun (seed, n_domains) ->
      let config =
        {
          Simnet.World.default_config with
          Simnet.World.seed = Printf.sprintf "balance-%d" seed;
          n_domains;
        }
      in
      let w = Simnet.World.create ~config () in
      let shards = Scanner.Parallel_campaign.shards w in
      let total =
        Array.fold_left (fun acc s -> acc +. s.Scanner.Parallel_campaign.weight) 0.0 shards
      in
      let mean = total /. float (max 1 (Array.length shards)) in
      Array.for_all
        (fun (s : Scanner.Parallel_campaign.shard) ->
          s.Scanner.Parallel_campaign.weight <= (2.0 *. mean) +. 1e-6
          || s.Scanner.Parallel_campaign.max_component > mean)
        shards)

(* --- Streaming sink ------------------------------------------------------------------------- *)

let make_sink w dir ~days =
  let start_day = Simnet.Clock.now (Simnet.World.clock w) / Simnet.Clock.day in
  match
    Scanner.Stream_sink.create ~dir
      ~manifest:[ ("start_day", string_of_int start_day); ("n_days", string_of_int days) ]
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let test_stream_matches_archive () =
  (* A streamed serial campaign reassembles to the byte-identical CSV the
     in-memory path would have saved. *)
  with_temp_dir (fun dir ->
      let days = 2 in
      let w = Simnet.World.create ~config:parallel_world_config () in
      let sink = make_sink w dir ~days in
      let t = Scanner.Daily_scan.run ~sink w ~days () in
      let direct = archive_bytes t in
      Alcotest.(check bool) "rows streamed" true (Scanner.Stream_sink.rows_written sink > 0);
      match Scanner.Daily_scan.load_stream dir with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check bool) "streamed archive is byte-identical" true
            (String.equal (archive_bytes loaded) direct))

let test_stream_jobs_invariant () =
  (* Worker count must not leak into the streamed bytes: every per-shard
     spool is byte-identical between jobs=1 and jobs=4, and with
     retain_rows:false nothing row-shaped stays in memory. *)
  let days = 2 in
  let run_streamed jobs dir =
    let w = Simnet.World.create ~config:parallel_world_config () in
    let sink = make_sink w dir ~days in
    let t = Scanner.Parallel_campaign.run ~jobs ~sink ~retain_rows:false w ~days () in
    Alcotest.(check int) "retain_rows:false keeps no day rows" 0
      (Array.fold_left
         (fun acc (s : Scanner.Daily_scan.domain_series) ->
           acc + Array.length s.Scanner.Daily_scan.days)
         0 t.Scanner.Daily_scan.series)
  in
  with_temp_dir (fun dir1 ->
      with_temp_dir (fun dir4 ->
          run_streamed 1 dir1;
          run_streamed 4 dir4;
          let names d =
            match Scanner.Stream_sink.stream_names ~dir:d with
            | Ok n -> n
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check (list string)) "same stream names" (names dir1) (names dir4);
          Alcotest.(check bool) "one spool per shard" true (List.length (names dir1) > 1);
          List.iter
            (fun n ->
              Alcotest.(check bool)
                ("spool bytes identical across jobs: " ^ n)
                true
                (String.equal
                   (slurp (Filename.concat dir1 ("rows-" ^ n)))
                   (slurp (Filename.concat dir4 ("rows-" ^ n)))))
            (names dir1);
          (* And the reassembled archive equals a non-streamed parallel run. *)
          let w = Simnet.World.create ~config:parallel_world_config () in
          let reference = archive_bytes (Scanner.Parallel_campaign.run ~jobs:1 w ~days ()) in
          match Scanner.Daily_scan.load_stream dir4 with
          | Error e -> Alcotest.fail e
          | Ok loaded ->
              Alcotest.(check bool) "streamed parallel archive byte-identical" true
                (String.equal (archive_bytes loaded) reference)))

let test_stream_incomplete_rejected () =
  (* A footer-less spool is an interrupted run: the loader must refuse it
     and point at the checkpoint resume, never load a partial archive. *)
  with_temp_dir (fun dir ->
      let w = Simnet.World.create ~config:parallel_world_config () in
      let sink = make_sink w dir ~days:3 in
      let s = Scanner.Stream_sink.stream sink "serial" in
      Scanner.Stream_sink.append_day s ~rows:0 "day=0\nrows=0\n";
      (* no [finish]: simulates a crash between days *)
      match Scanner.Daily_scan.load_stream dir with
      | Ok _ -> Alcotest.fail "an interrupted stream must not load"
      | Error e ->
          let contains hay needle =
            let lh = String.length hay and ln = String.length needle in
            let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "error directs to resume" true (contains e "resume"))

(* --- Cross-domain probe --------------------------------------------------------------------- *)

let test_cross_probe () =
  let w =
    Simnet.World.create
      ~config:{ world_config with Simnet.World.seed = "cross-test"; n_domains = 1500 }
      ()
  in
  let cloudflare =
    Array.to_list (Simnet.World.domains w)
    |> List.filter (fun d -> String.equal (Simnet.World.domain_operator d) "cloudflare")
  in
  Alcotest.(check bool) "several cloudflare domains" true (List.length cloudflare >= 4);
  let result = Scanner.Cross_probe.run w ~domains:(Some cloudflare) () in
  Alcotest.(check bool) "participants resumed" true
    (List.length result.Scanner.Cross_probe.participants >= 2);
  (* Domains behind the same pod share a cache, so edges must appear. *)
  Alcotest.(check bool) "cross-domain edges found" true
    (result.Scanner.Cross_probe.edges <> []);
  (* And the edges must stay inside the operator. *)
  List.iter
    (fun (e : Scanner.Cross_probe.edge) ->
      let op n =
        match Simnet.World.find_domain w n with
        | Some d -> Simnet.World.domain_operator d
        | None -> "?"
      in
      Alcotest.(check string) "edge within operator" (op e.Scanner.Cross_probe.from_domain)
        (op e.Scanner.Cross_probe.to_domain))
    result.Scanner.Cross_probe.edges

(* --- Cross-vantage ----------------------------------------------------------------- *)

let test_cross_vantage_jobs_invariant () =
  let cfg =
    {
      Scanner.Cross_vantage.base = world_config;
      regions = Simnet.Region.take 2;
      days = 1;
    }
  in
  let one = Scanner.Cross_vantage.run ~jobs:1 cfg in
  let four = Scanner.Cross_vantage.run ~jobs:4 cfg in
  Alcotest.(check bool) "jobs 1 and 4 byte-identical" true
    (Scanner.Cross_vantage.rows one = Scanner.Cross_vantage.rows four);
  (* Every configured region appears, and rows carry their vantage. *)
  let rows = Scanner.Cross_vantage.rows one in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " observed") true
        (List.exists (fun (c : Scanner.Observation.conn) -> c.Scanner.Observation.region = r) rows))
    (Scanner.Cross_vantage.regions one);
  (* And the archive round-trips through the observation CSV. *)
  let path = Filename.temp_file "tlsharm-cv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scanner.Cross_vantage.save one path;
      match Scanner.Cross_vantage.load path with
      | Ok read -> Alcotest.(check bool) "save/load roundtrip" true (read = rows)
      | Error e -> Alcotest.fail e)

let test_cross_vantage_rejects_bad_config () =
  let base = world_config in
  (match
     Scanner.Cross_vantage.run
       { Scanner.Cross_vantage.base; regions = [ "mars-base" ]; days = 1 }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown region accepted");
  match
    Scanner.Cross_vantage.run { Scanner.Cross_vantage.base; regions = []; days = 1 }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty region list accepted"

(* A pre-region archive (14-column header, no region column) loads with
   every row attributed to the default vantage. *)
let test_pre_region_csv_loads () =
  let row14 =
    String.concat ","
      (List.filteri
         (fun i _ -> i < 14)
         (String.split_on_char ',' (Scanner.Observation.to_csv_row sample_conn)))
  in
  (match Scanner.Observation.of_csv_row row14 with
  | Some c ->
      Alcotest.(check string) "default region" Simnet.Region.default_name
        c.Scanner.Observation.region;
      Alcotest.(check bool) "rest of the row intact" true
        (c = { sample_conn with Scanner.Observation.region = Simnet.Region.default_name })
  | None -> Alcotest.fail "14-column row did not parse");
  let path = Filename.temp_file "tlsharm-v14" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Scanner.Observation.csv_header_v14 ^ "\n" ^ row14 ^ "\n");
      close_out oc;
      match Scanner.Observation.read_csv path with
      | Ok [ c ] ->
          Alcotest.(check string) "file row gets default region" Simnet.Region.default_name
            c.Scanner.Observation.region
      | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l))
      | Error e -> Alcotest.fail e)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "scanner"
    [
      ( "observations",
        [
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
        ] );
      qsuite "observation-properties" [ prop_csv_roundtrip ];
      ( "burst",
        [
          Alcotest.test_case "repeats" `Quick test_repeats;
          Alcotest.test_case "scan" `Quick test_burst_scan;
          Alcotest.test_case "static stek detection" `Quick test_burst_detects_static_stek;
        ] );
      ( "resumption",
        [
          Alcotest.test_case "session ids" `Quick test_resumption_scan_sessions;
          Alcotest.test_case "tickets" `Quick test_resumption_scan_tickets;
        ] );
      ( "daily",
        [
          Alcotest.test_case "campaign" `Slow test_daily_scan;
          Alcotest.test_case "save/load" `Slow test_campaign_save_load;
          Alcotest.test_case "load rejects bad metadata" `Quick test_load_rejects_bad_metadata;
          Alcotest.test_case "load rejects out-of-range day" `Quick
            test_load_rejects_out_of_range_day;
        ] );
      qsuite "campaign-properties" [ prop_campaign_roundtrip ];
      ( "parallel",
        [
          Alcotest.test_case "shards partition the world" `Slow test_shards_partition;
          Alcotest.test_case "deterministic in worker count" `Slow
            test_parallel_deterministic_in_jobs;
        ] );
      qsuite "shard-properties" [ prop_shard_balance ];
      ( "streaming",
        [
          Alcotest.test_case "streamed serial matches archive" `Slow test_stream_matches_archive;
          Alcotest.test_case "spool bytes invariant in worker count" `Slow
            test_stream_jobs_invariant;
          Alcotest.test_case "incomplete stream rejected" `Quick test_stream_incomplete_rejected;
        ] );
      ("cross-probe", [ Alcotest.test_case "cloudflare" `Slow test_cross_probe ]);
      ( "cross-vantage",
        [
          Alcotest.test_case "jobs invariant + roundtrip" `Slow
            test_cross_vantage_jobs_invariant;
          Alcotest.test_case "rejects bad config" `Quick test_cross_vantage_rejects_bad_config;
          Alcotest.test_case "pre-region csv loads" `Quick test_pre_region_csv_loads;
        ] );
    ]
