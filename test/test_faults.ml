(* Tests for the fault-injection layer: schedule determinism, retry
   exhaustion vs. outage recovery, the stream-isolation invariant
   (enabling faults leaves surviving observations byte-identical),
   worker-count invariance of faulty parallel campaigns, funnel
   arithmetic, and legacy CSV compatibility. *)

let world_config =
  { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "faults-test" }

let world = lazy (Simnet.World.create ~config:world_config ())

(* Hostnames that resolve to an endpoint — the only ones the injector
   ever faults. *)
let hosted_names w =
  Array.to_list (Simnet.World.domains w)
  |> List.map Simnet.World.domain_name
  |> List.filter (fun n -> Simnet.World.endpoint_info w n <> None)

(* An outage-only profile makes the recovery test crisp: the sole
   possible fault is [Endpoint_outage], so any probe outside a window
   must succeed on the first attempt. *)
let outage_only =
  {
    Faults.Profile.name = "outage-only";
    default_rates =
      { Faults.Profile.zero_rates with outage_p = 0.5; outage_duration = (1200, 7200) };
    per_operator = [];
  }

(* --- Deterministic schedule ---------------------------------------------------------- *)

let decision_fingerprint inj ~hostnames =
  List.concat_map
    (fun h ->
      List.concat_map
        (fun time ->
          List.map
            (fun attempt ->
              match Faults.Injector.decide inj ~hostname:h ~time ~attempt with
              | Faults.Injector.Pass -> "pass"
              | Faults.Injector.Slow s -> Printf.sprintf "slow:%d" s
              | Faults.Injector.Fault f -> Faults.Fault.to_string f)
            [ 0; 1; 2 ])
        [ 0; 3600; 86_400; 86_401; 7 * 86_400 ])
    hostnames

let test_schedule_deterministic () =
  let w = Lazy.force world in
  let hostnames = hosted_names w in
  let fp seed =
    decision_fingerprint
      (Faults.Injector.create ~seed ~profile:Faults.Profile.flaky w)
      ~hostnames
  in
  Alcotest.(check (list string)) "same seed, same timeline" (fp "faults") (fp "faults");
  Alcotest.(check bool) "different seed, different timeline" true (fp "faults" <> fp "other");
  (* The flaky profile must actually fire on a 1500-domain world. *)
  let faulted = List.filter (fun d -> d <> "pass") (fp "faults") in
  Alcotest.(check bool) "flaky profile injects something" true (faulted <> [])

let test_none_profile_never_fires () =
  let w = Lazy.force world in
  let inj = Faults.Injector.create ~profile:Faults.Profile.none w in
  List.iter
    (fun d -> Alcotest.(check string) "none profile passes" "pass" d)
    (decision_fingerprint inj ~hostnames:(hosted_names w))

(* --- Retry exhaustion vs. outage recovery -------------------------------------------- *)

(* Find a hostname with one epoch inside a scheduled window and another
   in the clear: the within-window probe must exhaust its retries on
   [Endpoint_outage]; the clear-sky probe (same net, same injector) must
   succeed first try — the daily-scan recovery story in miniature. *)
let find_outage inj ~hostnames =
  let epoch = Faults.Injector.outage_epoch in
  let mid e = (e * epoch) + (epoch / 2) in
  let down h t =
    Faults.Injector.endpoint_outage_at inj ~hostname:h ~time:t
    && Faults.Injector.endpoint_outage_at inj ~hostname:h ~time:(t + 120)
  in
  let up h t =
    (not (Faults.Injector.endpoint_outage_at inj ~hostname:h ~time:t))
    && not (Faults.Injector.endpoint_outage_at inj ~hostname:h ~time:(t + 120))
  in
  let epochs = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let rec scan = function
    | [] -> Alcotest.fail "no outage window found (outage_p too low?)"
    | h :: rest -> (
        match
          ( List.find_opt (fun e -> down h (mid e)) epochs,
            List.find_opt (fun e -> up h (mid e)) epochs )
        with
        | Some e_down, Some e_up -> (h, mid e_down, mid e_up)
        | _ -> scan rest)
  in
  scan hostnames

let test_retry_exhaustion_and_recovery () =
  let w = Lazy.force world in
  let inj = Faults.Injector.create ~profile:outage_only w in
  let host, t_out, t_clear = find_outage inj ~hostnames:(hosted_names w) in
  let policy = Faults.Retry.default in
  let net = Faults.Net.create ~injector:inj ~policy () in
  let calls = ref 0 in
  let connect () =
    incr calls;
    Ok "hello"
  in
  (match Faults.Net.attempt net ~hostname:host ~now:t_out ~connect with
  | Error (f, attempts) ->
      Alcotest.(check string) "lost to the outage" "outage" (Faults.Fault.to_string f);
      Alcotest.(check int) "all attempts spent" policy.Faults.Retry.max_attempts attempts
  | Ok _ -> Alcotest.fail "probe inside an outage window succeeded");
  Alcotest.(check int) "exactly one (shadow) world call on exhaustion" 1 !calls;
  calls := 0;
  (match Faults.Net.attempt net ~hostname:host ~now:t_clear ~connect with
  | Ok (v, attempts) ->
      Alcotest.(check string) "real result returned" "hello" v;
      Alcotest.(check int) "clear sky needs one attempt" 1 attempts
  | Error (f, _) -> Alcotest.failf "clear-sky probe failed: %s" (Faults.Fault.to_string f));
  Alcotest.(check int) "exactly one real world call on success" 1 !calls;
  let totals = Faults.Funnel.totals (Faults.Net.funnel net) in
  Alcotest.(check int) "funnel saw both probes" 2 totals.Faults.Funnel.t_probes;
  Alcotest.(check int) "funnel counted the retries"
    (policy.Faults.Retry.max_attempts - 1)
    totals.Faults.Funnel.t_retries;
  Alcotest.(check (list (pair string int)))
    "loss attributed to the outage"
    [ ("outage", 1) ]
    (List.map (fun (f, n) -> (Faults.Fault.to_string f, n)) totals.Faults.Funnel.t_losses)

let test_world_errors_are_final () =
  (* Genuine world errors (NXDOMAIN etc.) are not injector noise:
     retrying them would desync RNG streams, so they fail on attempt 1
     even with retries configured. *)
  let w = Lazy.force world in
  let inj = Faults.Injector.create ~profile:Faults.Profile.none w in
  let net = Faults.Net.create ~injector:inj ~policy:Faults.Retry.default () in
  let calls = ref 0 in
  let connect () =
    incr calls;
    Error Simnet.World.No_such_domain
  in
  (match Faults.Net.attempt net ~hostname:"ghost.example" ~now:0 ~connect with
  | Error (Faults.Fault.No_such_domain, 1) -> ()
  | Error (f, n) ->
      Alcotest.failf "expected nxdomain after 1 attempt, got %s after %d"
        (Faults.Fault.to_string f) n
  | Ok _ -> Alcotest.fail "nxdomain succeeded");
  Alcotest.(check int) "single world call" 1 !calls

let test_backoff_deterministic_and_bounded () =
  let p = Faults.Retry.default in
  List.iter
    (fun attempt ->
      let b = Faults.Retry.backoff p ~key:"probe|example.com|0" ~attempt in
      Alcotest.(check int) "backoff is a pure function" b
        (Faults.Retry.backoff p ~key:"probe|example.com|0" ~attempt);
      Alcotest.(check bool) "at least a second" true (b >= 1);
      Alcotest.(check bool) "never above 1.5x max_backoff" true
        (float_of_int b <= (1.5 *. float_of_int p.Faults.Retry.max_backoff) +. 1.))
    [ 0; 1; 2; 3; 10 ]

(* --- Stream isolation ----------------------------------------------------------------- *)

let campaign_config seed = { world_config with Simnet.World.seed }

let test_fault_rng_isolation () =
  (* The tentpole invariant: enabling faults must not perturb any probe
     that gets through. Run the same world clean and faulty; every
     (domain, day) record whose faulty sweeps both succeeded must be
     field-identical to the clean run's. *)
  let days = 2 in
  let fresh () = Simnet.World.create ~config:(campaign_config "isolation-test") () in
  let clean = Scanner.Daily_scan.run (fresh ()) ~days () in
  let w = fresh () in
  let injector = Faults.Injector.create ~profile:Faults.Profile.flaky w in
  let funnel = Faults.Funnel.create () in
  let faulty =
    Scanner.Daily_scan.run ~injector ~retry:Faults.Retry.default ~funnel w ~days ()
  in
  let index (scan : Scanner.Daily_scan.t) =
    let tbl = Hashtbl.create 4096 in
    Array.iter
      (fun (ds : Scanner.Daily_scan.domain_series) ->
        Array.iter
          (fun (r : Scanner.Daily_scan.day_record) ->
            Hashtbl.replace tbl (ds.Scanner.Daily_scan.domain, r.Scanner.Daily_scan.day) r)
          ds.Scanner.Daily_scan.days)
      scan.Scanner.Daily_scan.series;
    tbl
  in
  let clean_ix = index clean in
  let checked = ref 0 and mismatched = ref 0 in
  Hashtbl.iter
    (fun key (r : Scanner.Daily_scan.day_record) ->
      if r.Scanner.Daily_scan.default_ok && r.Scanner.Daily_scan.dhe_ok then (
        incr checked;
        match Hashtbl.find_opt clean_ix key with
        | Some c when c = r -> ()
        | _ -> incr mismatched))
    (index faulty);
  Alcotest.(check bool) "some probes survived injection" true (!checked > 0);
  Alcotest.(check int) "surviving records identical to clean run" 0 !mismatched;
  let totals = Faults.Funnel.totals funnel in
  Alcotest.(check bool) "flaky profile lost probes" true (Faults.Funnel.lost totals > 0);
  Alcotest.(check bool) "flaky profile retried probes" true (totals.Faults.Funnel.t_retries > 0)

let test_faulty_parallel_campaign_worker_invariant () =
  let days = 2 in
  let run jobs =
    let w = Simnet.World.create ~config:(campaign_config "faulty-parallel-test") () in
    let injector = Faults.Injector.create ~profile:Faults.Profile.default w in
    let funnel = Faults.Funnel.create () in
    let t =
      Scanner.Parallel_campaign.run ~jobs ~injector ~retry:Faults.Retry.default ~funnel w
        ~days ()
    in
    (t, funnel)
  in
  let one, f_one = run 1 in
  let four, f_four = run 4 in
  Alcotest.(check bool) "1- and 4-worker faulty series identical" true
    (one.Scanner.Daily_scan.series = four.Scanner.Daily_scan.series);
  Alcotest.(check bool) "funnel totals worker-invariant" true
    (Faults.Funnel.totals f_one = Faults.Funnel.totals f_four);
  Alcotest.(check (list int)) "funnel days worker-invariant" (Faults.Funnel.days f_one)
    (Faults.Funnel.days f_four);
  List.iter
    (fun day ->
      Alcotest.(check bool)
        (Printf.sprintf "day %d totals worker-invariant" day)
        true
        (Faults.Funnel.day_totals f_one ~day = Faults.Funnel.day_totals f_four ~day))
    (Faults.Funnel.days f_one);
  (* The default profile on 1500 domains over 2 days should lose
     something; otherwise this test exercises nothing. *)
  Alcotest.(check bool) "default profile lost probes" true
    (Faults.Funnel.lost (Faults.Funnel.totals f_one) > 0)

(* --- Byzantine faults ------------------------------------------------------------------ *)

let test_byzantine_classify_deterministic () =
  let keys = List.init 400 (Printf.sprintf "byz-key-%d") in
  let verdicts = List.map (fun key -> Faults.Byzantine.classify ~key) keys in
  Alcotest.(check bool) "pure function of key" true
    (List.for_all2
       (fun key v -> Faults.Byzantine.classify ~key = v)
       keys verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool) "always a byzantine cause" true (Faults.Fault.is_byzantine v))
    verdicts;
  (* Both classes must occur: mutations that break framing and mutations
     that survive the parsers are both realistic, and the classifier is
     only honest if the real codecs see both. *)
  let malformed = List.filter (( = ) Faults.Fault.Malformed_response) verdicts in
  Alcotest.(check bool) "some mutations break parsing" true (malformed <> []);
  Alcotest.(check bool) "some mutations parse as nonsense" true
    (List.length malformed < List.length verdicts)

let test_byzantine_mutate_bounded () =
  Array.iter
    (fun (name, _, template) ->
      List.iter
        (fun i ->
          let key = Printf.sprintf "mutate-%s-%d" name i in
          let m = Faults.Byzantine.mutate ~key template in
          Alcotest.(check string)
            "mutation is a pure function of key" m
            (Faults.Byzantine.mutate ~key template);
          Alcotest.(check bool) "output bounded by input + 32" true
            (String.length m <= String.length template + 32))
        [ 0; 1; 2; 3; 4 ])
    Faults.Byzantine.templates

let test_byzantine_profile_campaign () =
  (* The byzantine profile plays by the same rules as every other one:
     worker-count invariant, and surviving probes byte-identical to the
     clean run. New loss causes must actually show up in the funnel. *)
  let days = 2 in
  let config = campaign_config "byzantine-campaign-test" in
  let run jobs =
    let w = Simnet.World.create ~config () in
    let injector = Faults.Injector.create ~profile:Faults.Profile.byzantine w in
    let funnel = Faults.Funnel.create () in
    let t =
      Scanner.Parallel_campaign.run ~jobs ~injector ~retry:Faults.Retry.default ~funnel w
        ~days ()
    in
    (t, funnel)
  in
  let one, f_one = run 1 in
  let four, f_four = run 4 in
  Alcotest.(check bool) "1- and 4-worker byzantine series identical" true
    (one.Scanner.Daily_scan.series = four.Scanner.Daily_scan.series);
  Alcotest.(check bool) "funnel totals worker-invariant" true
    (Faults.Funnel.totals f_one = Faults.Funnel.totals f_four);
  let losses = (Faults.Funnel.totals f_one).Faults.Funnel.t_losses in
  Alcotest.(check bool) "byzantine causes recorded" true
    (List.exists (fun (f, n) -> Faults.Fault.is_byzantine f && n > 0) losses);
  (* Surviving observations must match a clean run byte-for-byte. *)
  let clean = Scanner.Daily_scan.run (Simnet.World.create ~config ()) ~days () in
  let index (scan : Scanner.Daily_scan.t) =
    let tbl = Hashtbl.create 4096 in
    Array.iter
      (fun (ds : Scanner.Daily_scan.domain_series) ->
        Array.iter
          (fun (r : Scanner.Daily_scan.day_record) ->
            Hashtbl.replace tbl (ds.Scanner.Daily_scan.domain, r.Scanner.Daily_scan.day) r)
          ds.Scanner.Daily_scan.days)
      scan.Scanner.Daily_scan.series;
    tbl
  in
  let clean_ix = index clean in
  let mismatched = ref 0 and checked = ref 0 in
  Hashtbl.iter
    (fun key (r : Scanner.Daily_scan.day_record) ->
      if r.Scanner.Daily_scan.default_ok && r.Scanner.Daily_scan.dhe_ok then (
        incr checked;
        match Hashtbl.find_opt clean_ix key with
        | Some c when c = r -> ()
        | _ -> incr mismatched))
    (index one);
  Alcotest.(check bool) "some probes survived byzantine peers" true (!checked > 0);
  Alcotest.(check int) "survivors identical to clean run" 0 !mismatched

(* --- Circuit breaker ------------------------------------------------------------------- *)

let test_breaker_opens_and_cools () =
  let b = Faults.Breaker.create ~threshold:3 ~cooldown:2 () in
  let op = "operator-a" in
  Alcotest.(check int) "closed breaker allows full retries" 5
    (Faults.Breaker.attempts_allowed b ~operator:op ~max_attempts:5);
  Faults.Breaker.record b ~operator:op (Error Faults.Fault.Connect_timeout);
  Faults.Breaker.record b ~operator:op (Error Faults.Fault.Tcp_reset);
  Alcotest.(check bool) "below threshold stays closed" false
    (Faults.Breaker.is_open b ~operator:op);
  Faults.Breaker.record b ~operator:op (Error (Faults.Fault.Malformed_response));
  Alcotest.(check bool) "threshold opens the breaker" true
    (Faults.Breaker.is_open b ~operator:op);
  (* While open, probes get exactly one attempt for [cooldown] probes. *)
  Alcotest.(check int) "open breaker caps to one attempt" 1
    (Faults.Breaker.attempts_allowed b ~operator:op ~max_attempts:5);
  Alcotest.(check int) "still open for the second probe" 1
    (Faults.Breaker.attempts_allowed b ~operator:op ~max_attempts:5);
  Alcotest.(check int) "cooldown expired, retries restored" 5
    (Faults.Breaker.attempts_allowed b ~operator:op ~max_attempts:5);
  (* A success closes everything. *)
  Faults.Breaker.record b ~operator:op (Ok ());
  Alcotest.(check bool) "success resets" false (Faults.Breaker.is_open b ~operator:op);
  (* Operators are independent. *)
  Alcotest.(check int) "other operators unaffected" 5
    (Faults.Breaker.attempts_allowed b ~operator:"operator-b" ~max_attempts:5)

let test_breaker_ignores_world_errors () =
  (* Ground-truth failures (NXDOMAIN, no TLS) say nothing about operator
     health; only injected faults count toward the trip threshold. *)
  let b = Faults.Breaker.create ~threshold:2 ~cooldown:5 () in
  let op = "operator-c" in
  Faults.Breaker.record b ~operator:op (Error Faults.Fault.Connect_timeout);
  Faults.Breaker.record b ~operator:op (Error Faults.Fault.No_such_domain);
  Faults.Breaker.record b ~operator:op (Error Faults.Fault.Connect_timeout);
  Alcotest.(check bool) "world errors reset the streak" false
    (Faults.Breaker.is_open b ~operator:op);
  Faults.Breaker.record b ~operator:op (Error Faults.Fault.Protocol_violation);
  Alcotest.(check bool) "two consecutive injected faults trip it" true
    (Faults.Breaker.is_open b ~operator:op)

(* --- Funnel arithmetic ---------------------------------------------------------------- *)

let test_funnel_accounting () =
  let f = Faults.Funnel.create () in
  Faults.Funnel.record_success f ~day:3 ~attempts:1 ~slow:false;
  Faults.Funnel.record_success f ~day:3 ~attempts:3 ~slow:true;
  Faults.Funnel.record_failure f ~day:4 ~attempts:3 Faults.Fault.Tcp_reset;
  Faults.Funnel.record_failure f ~day:4 ~attempts:3 Faults.Fault.Tcp_reset;
  Faults.Funnel.record_failure f ~day:4 ~attempts:1 Faults.Fault.No_such_domain;
  let other = Faults.Funnel.create () in
  Faults.Funnel.record_success other ~day:4 ~attempts:2 ~slow:false;
  Faults.Funnel.absorb f other;
  let t = Faults.Funnel.totals f in
  Alcotest.(check int) "probes" 6 t.Faults.Funnel.t_probes;
  Alcotest.(check int) "attempts" 13 t.Faults.Funnel.t_attempts;
  Alcotest.(check int) "retries" 7 t.Faults.Funnel.t_retries;
  Alcotest.(check int) "successes" 3 t.Faults.Funnel.t_successes;
  Alcotest.(check int) "recovered" 2 t.Faults.Funnel.t_recovered;
  Alcotest.(check int) "slow" 1 t.Faults.Funnel.t_slow;
  Alcotest.(check int) "lost" 3 (Faults.Funnel.lost t);
  Alcotest.(check (list (pair string int)))
    "per-cause losses in Fault.all order"
    [ ("nxdomain", 1); ("reset", 2) ]
    (List.map (fun (f, n) -> (Faults.Fault.to_string f, n)) t.Faults.Funnel.t_losses);
  Alcotest.(check (list int)) "days" [ 3; 4 ] (Faults.Funnel.days f);
  let d4 = Faults.Funnel.day_totals f ~day:4 in
  Alcotest.(check int) "day-4 probes" 4 d4.Faults.Funnel.t_probes;
  Alcotest.(check int) "day-4 losses" 3 (Faults.Funnel.lost d4)

(* --- CSV compatibility ----------------------------------------------------------------- *)

(* A 12-column row as the pre-fault scanner wrote it. *)
let legacy_row obs =
  String.concat ","
    (List.filteri (fun i _ -> i < 12) (String.split_on_char ',' (Scanner.Observation.to_csv_row obs)))

let test_legacy_csv_rows () =
  let ok_obs =
    {
      Scanner.Observation.time = 77;
      domain = "legacy.example";
      ok = true;
      resumed = Scanner.Observation.No_resumption;
      cipher = Some Tls.Types.ECDHE_ECDSA_AES128_SHA256;
      session_id_set = false;
      session_id = "";
      trusted = true;
      stek_id = None;
      ticket_hint = None;
      dhe_value = None;
      ecdhe_value = Some "0a0b";
      failure = None;
      attempts = 1;
      region = Simnet.Region.default_name;
    }
  in
  let failed_obs = Scanner.Observation.failed_conn ~time:9 ~domain:"down.example" () in
  (match Scanner.Observation.of_csv_row (legacy_row ok_obs) with
  | Some c -> Alcotest.(check bool) "legacy ok row loads unchanged" true (c = ok_obs)
  | None -> Alcotest.fail "legacy ok row did not parse");
  (match Scanner.Observation.of_csv_row (legacy_row failed_obs) with
  | Some c ->
      Alcotest.(check bool) "legacy failed row maps to Unknown" true
        (c.Scanner.Observation.failure = Some Faults.Fault.Unknown);
      Alcotest.(check int) "legacy rows imply one attempt" 1 c.Scanner.Observation.attempts
  | None -> Alcotest.fail "legacy failed row did not parse");
  (* And the new schema round-trips the fault fields. *)
  let faulted =
    Scanner.Observation.failed_conn ~failure:Faults.Fault.Endpoint_outage ~attempts:3 ~time:9
      ~domain:"down.example" ()
  in
  match Scanner.Observation.of_csv_row (Scanner.Observation.to_csv_row faulted) with
  | Some c -> Alcotest.(check bool) "fault fields round-trip" true (c = faulted)
  | None -> Alcotest.fail "faulted row did not parse"

let test_forward_compat_unknown_cause () =
  (* An archive written by a future build with a cause this build has
     never heard of must still load — as [Unknown] — rather than
     poisoning the whole campaign file. *)
  let faulted =
    Scanner.Observation.failed_conn ~failure:Faults.Fault.Tcp_reset ~attempts:2 ~time:5
      ~domain:"future.example" ()
  in
  let row = Scanner.Observation.to_csv_row faulted in
  let futuristic =
    String.concat ","
      (List.mapi
         (fun i field -> if i = 12 then "quantum-desync" else field)
         (String.split_on_char ',' row))
  in
  match Scanner.Observation.of_csv_row futuristic with
  | Some c ->
      Alcotest.(check bool) "unknown cause maps to Unknown" true
        (c.Scanner.Observation.failure = Some Faults.Fault.Unknown);
      Alcotest.(check int) "rest of the row intact" 2 c.Scanner.Observation.attempts
  | None -> Alcotest.fail "row with unknown cause token rejected"

let test_fault_token_roundtrip () =
  List.iter
    (fun f ->
      match Faults.Fault.of_string (Faults.Fault.to_string f) with
      | Some f' -> Alcotest.(check bool) "token round-trips" true (f = f')
      | None -> Alcotest.failf "token %s did not parse" (Faults.Fault.to_string f))
    Faults.Fault.all;
  Alcotest.(check bool) "unknown token rejected" true (Faults.Fault.of_string "bogus" = None)

let () =
  Alcotest.run "faults"
    [
      ( "schedule",
        [
          Alcotest.test_case "deterministic in seed" `Quick test_schedule_deterministic;
          Alcotest.test_case "none profile inert" `Quick test_none_profile_never_fires;
        ] );
      ( "retry",
        [
          Alcotest.test_case "exhaustion vs outage recovery" `Quick
            test_retry_exhaustion_and_recovery;
          Alcotest.test_case "world errors final" `Quick test_world_errors_are_final;
          Alcotest.test_case "backoff deterministic+bounded" `Quick
            test_backoff_deterministic_and_bounded;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "surviving probes identical to clean run" `Quick
            test_fault_rng_isolation;
          Alcotest.test_case "faulty parallel worker-invariant" `Quick
            test_faulty_parallel_campaign_worker_invariant;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "classify deterministic, both classes" `Quick
            test_byzantine_classify_deterministic;
          Alcotest.test_case "mutate pure and bounded" `Quick test_byzantine_mutate_bounded;
          Alcotest.test_case "byzantine campaign invariants" `Quick
            test_byzantine_profile_campaign;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens at threshold, cools down" `Quick
            test_breaker_opens_and_cools;
          Alcotest.test_case "world errors don't trip it" `Quick
            test_breaker_ignores_world_errors;
        ] );
      ( "funnel", [ Alcotest.test_case "accounting" `Quick test_funnel_accounting ] );
      ( "csv",
        [
          Alcotest.test_case "legacy rows" `Quick test_legacy_csv_rows;
          Alcotest.test_case "unknown cause forward-compat" `Quick
            test_forward_compat_unknown_cause;
          Alcotest.test_case "fault tokens" `Quick test_fault_token_roundtrip;
        ] );
    ]
