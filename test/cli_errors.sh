#!/bin/sh
# Bad input must come back as a one-line, friendly CLI error with a
# nonzero exit — never a backtrace or a raw exception dump.
set -u
exe="$1"
fails=0

check() {
  desc="$1"
  needle="$2"
  shift 2
  if out=$("$@" 2>&1); then
    echo "FAIL: $desc: expected nonzero exit, got success"
    fails=$((fails + 1))
    return
  fi
  case "$out" in
  *"Raised at"* | *"Raised by"* | *"Fatal error"*)
    echo "FAIL: $desc: backtrace leaked: $out"
    fails=$((fails + 1))
    return
    ;;
  esac
  case "$out" in
  *"$needle"*) ;;
  *)
    echo "FAIL: $desc: wanted \"$needle\" in: $out"
    fails=$((fails + 1))
    return
    ;;
  esac
  echo "ok: $desc"
}

check "regions out of range" "--regions must be between 1 and" \
  "$exe" campaign --regions 9 --domains 1500 --days 1
check "world too small" "--domains must be at least" \
  "$exe" campaign --domains 10 --days 1
check "cross-vantage flag conflicts" "does not support" \
  "$exe" campaign --regions 2 --domains 1500 --days 1 --stream-out /tmp/never-used
check "missing archive" "No such file" \
  "$exe" analyze /nonexistent/archive.csv
check "bad fault profile" "unknown fault profile" \
  "$exe" campaign --domains 1500 --days 1 --fault-profile warp
check "traffic bad users" "--users must be at least 1" \
  "$exe" traffic --users 0 --domains 1500 --days 1

corrupt=$(mktemp /tmp/tlsharm-corrupt-XXXXXX.csv)
printf 'not,a,campaign\n' >"$corrupt"
check "corrupt archive" "campaign:" "$exe" analyze "$corrupt"
rm -f "$corrupt"

exit "$fails"
