(* Tests for the crypto substrate: known-answer vectors for SHA-256, HMAC,
   AES and X25519; structural self-checks for the DH/EC domain parameters;
   and qcheck properties for the bignum and mode-of-operation layers. *)

let hex = Wire.Hex.decode

let check_hex msg expected actual =
  Alcotest.(check string) msg expected (Wire.Hex.encode actual)

(* --- Hex ------------------------------------------------------------------ *)

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff binary" in
  Alcotest.(check string) "roundtrip" s (Wire.Hex.decode (Wire.Hex.encode s));
  Alcotest.(check string) "whitespace tolerated" "\xde\xad\xbe\xef"
    (Wire.Hex.decode "de ad\nbe\tef");
  Alcotest.(check (option string)) "odd length rejected" None (Wire.Hex.decode_opt "abc")

(* --- SHA-256 -------------------------------------------------------------- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Crypto.Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Crypto.Sha256.digest "abc");
  check_hex "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Crypto.Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_streaming () =
  (* Incremental updates across block boundaries agree with one-shot. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let t = Crypto.Sha256.init () in
  let pos = ref 0 in
  let chunks = [ 1; 3; 63; 64; 65; 200; 604 ] in
  List.iter
    (fun n ->
      Crypto.Sha256.update t (String.sub msg !pos n);
      pos := !pos + n)
    chunks;
  Alcotest.(check int) "consumed all" 1000 !pos;
  Alcotest.(check string) "streaming = one-shot" (Crypto.Sha256.digest msg)
    (Crypto.Sha256.finalize t)

(* --- HMAC (RFC 4231) ------------------------------------------------------ *)

let test_hmac_vectors () =
  (* RFC 4231 test case 1. *)
  check_hex "tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Crypto.Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There");
  (* RFC 4231 test case 2. *)
  check_hex "tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?");
  (* RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data. *)
  check_hex "tc3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Crypto.Hmac.sha256 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_ct_equal () =
  Alcotest.(check bool) "equal" true (Crypto.Hmac.equal_ct "same-bytes" "same-bytes");
  Alcotest.(check bool) "different" false (Crypto.Hmac.equal_ct "same-bytes" "same-bytez");
  Alcotest.(check bool) "length mismatch" false (Crypto.Hmac.equal_ct "abc" "abcd")

(* --- AES (FIPS 197) ------------------------------------------------------- *)

let test_aes_vectors () =
  let pt = hex "00112233445566778899aabbccddeeff" in
  let k128 = Crypto.Aes.of_key (hex "000102030405060708090a0b0c0d0e0f") in
  check_hex "aes-128 encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" (Crypto.Aes.encrypt_block k128 pt);
  let k192 = Crypto.Aes.of_key (hex "000102030405060708090a0b0c0d0e0f1011121314151617") in
  check_hex "aes-192 encrypt" "dda97ca4864cdfe06eaf70a0ec0d7191" (Crypto.Aes.encrypt_block k192 pt);
  let k256 =
    Crypto.Aes.of_key (hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
  in
  check_hex "aes-256 encrypt" "8ea2b7ca516745bfeafc49904b496089" (Crypto.Aes.encrypt_block k256 pt);
  Alcotest.(check string) "aes-128 decrypt" pt
    (Crypto.Aes.decrypt_block k128 (Crypto.Aes.encrypt_block k128 pt))

let test_aes_bad_key () =
  Alcotest.check_raises "bad key length" (Invalid_argument "Aes.of_key: bad key length 10")
    (fun () -> ignore (Crypto.Aes.of_key "0123456789"))

(* --- Block modes ----------------------------------------------------------- *)

let cbc_key = Crypto.Aes.of_key (String.init 16 (fun i -> Char.chr (17 * i land 0xff)))

let test_cbc_roundtrip () =
  let iv = String.make 16 '\x42' in
  List.iter
    (fun msg ->
      let ct = Crypto.Block_mode.cbc_encrypt cbc_key ~iv msg in
      Alcotest.(check int) "block aligned" 0 (String.length ct mod 16);
      match Crypto.Block_mode.cbc_decrypt cbc_key ~iv ct with
      | Ok pt -> Alcotest.(check string) "roundtrip" msg pt
      | Error e -> Alcotest.fail e)
    [ ""; "x"; String.make 15 'a'; String.make 16 'b'; String.make 17 'c'; String.make 100 'z' ]

let test_cbc_tamper () =
  let iv = String.make 16 '\x00' in
  let ct = Crypto.Block_mode.cbc_encrypt cbc_key ~iv "attack at dawn" in
  let bad = Bytes.of_string ct in
  Bytes.set bad (Bytes.length bad - 1) '\xff';
  (match Crypto.Block_mode.cbc_decrypt cbc_key ~iv (Bytes.to_string bad) with
  | Ok pt when pt = "attack at dawn" -> Alcotest.fail "tampering unnoticed"
  | Ok _ | Error _ -> ());
  match Crypto.Block_mode.cbc_decrypt cbc_key ~iv "short" with
  | Ok _ -> Alcotest.fail "accepted non-aligned ciphertext"
  | Error _ -> ()

let test_ctr_roundtrip () =
  let msg = "counter mode keystream exercise, more than one block long" in
  let ct = Crypto.Block_mode.ctr_encrypt cbc_key ~nonce:"nonce!" msg in
  Alcotest.(check int) "length preserved" (String.length msg) (String.length ct);
  Alcotest.(check bool) "actually encrypted" false (String.equal ct msg);
  Alcotest.(check string) "roundtrip" msg (Crypto.Block_mode.ctr_decrypt cbc_key ~nonce:"nonce!" ct)

(* --- Bignum ---------------------------------------------------------------- *)

module B = Crypto.Bignum

let bn = B.of_decimal

let test_bignum_basics () =
  Alcotest.(check string) "decimal roundtrip" "123456789012345678901234567890"
    (B.to_decimal (bn "123456789012345678901234567890"));
  Alcotest.(check int) "to_int" 123456 (B.to_int_exn (B.of_int 123456));
  Alcotest.(check bool) "zero" true (B.is_zero B.zero);
  Alcotest.(check int) "num_bits 255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "num_bits 256" 9 (B.num_bits (B.of_int 256));
  let a = bn "340282366920938463463374607431768211456" (* 2^128 *) in
  Alcotest.(check int) "num_bits 2^128" 129 (B.num_bits a);
  Alcotest.(check string) "mul" "340282366920938463426481119284349108225"
    (B.to_decimal (B.mul (bn "18446744073709551615") (bn "18446744073709551615")))

let test_bignum_divmod () =
  let a = bn "123456789123456789123456789" and b = bn "987654321987" in
  let q, r = B.divmod a b in
  Alcotest.(check string) "recompose" (B.to_decimal a)
    (B.to_decimal (B.add (B.mul q b) r));
  Alcotest.(check bool) "r < b" true (B.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod a B.zero))

let test_bignum_pow_mod () =
  (* 5^3 mod 13 = 8; also a Fermat check: a^(p-1) = 1 mod p. *)
  Alcotest.(check int) "5^3 mod 13" 8 (B.to_int_exn (B.pow_mod (B.of_int 5) (B.of_int 3) (B.of_int 13)));
  let p = bn "115792089237316195423570985008687907853269984665640564039457584007913129639747" in
  (* Not necessarily prime; use a known prime instead: 2^127 - 1. *)
  ignore p;
  let m127 = B.sub_int (B.shift_left B.one 127) 1 in
  let a = bn "12345678901234567890" in
  Alcotest.(check string) "fermat 2^127-1" "1"
    (B.to_decimal (B.pow_mod a (B.sub_int m127 1) m127));
  (* Even modulus path. *)
  Alcotest.(check int) "3^4 mod 10" 1 (B.to_int_exn (B.pow_mod (B.of_int 3) (B.of_int 4) (B.of_int 10)))

let test_bignum_mod_inverse () =
  let p = B.of_int 101 in
  for a = 1 to 100 do
    let inv = B.mod_inverse_prime (B.of_int a) p in
    Alcotest.(check int) (Printf.sprintf "inv %d" a) 1
      (B.to_int_exn (B.rem (B.mul (B.of_int a) inv) p))
  done

let test_bignum_bytes () =
  let v = bn "65280" in
  Alcotest.(check string) "to_bytes_be" "\x00\xff\x00" (B.to_bytes_be ~len:3 v);
  Alcotest.(check string) "of_bytes_be inverse" (B.to_decimal v)
    (B.to_decimal (B.of_bytes_be "\xff\x00"));
  Alcotest.check_raises "too wide" (Invalid_argument "Bignum.to_bytes_be: value too wide")
    (fun () -> ignore (B.to_bytes_be ~len:1 v))

let test_bignum_to_int_boundary () =
  (* max_int itself is representable; the first value past it is not. *)
  let maxi = B.sub_int (B.shift_left B.one 62) 1 in
  (* 2^62 - 1 = max_int on 64-bit OCaml *)
  Alcotest.(check int) "native max_int" max_int ((1 lsl 62) - 1);
  Alcotest.(check (option int)) "max_int" (Some max_int) (B.to_int_opt maxi);
  Alcotest.(check (option int)) "max_int - 1" (Some (max_int - 1)) (B.to_int_opt (B.sub_int maxi 1));
  Alcotest.(check (option int)) "max_int + 1" None (B.to_int_opt (B.add_int maxi 1));
  Alcotest.(check (option int)) "2^62" None (B.to_int_opt (B.shift_left B.one 62));
  Alcotest.(check (option int)) "2^100" None (B.to_int_opt (B.shift_left B.one 100));
  (* Values whose top limb alone passes but whose shifted total overflows. *)
  Alcotest.(check (option int)) "2^61" (Some (1 lsl 61)) (B.to_int_opt (B.shift_left B.one 61));
  Alcotest.(check (option int)) "zero" (Some 0) (B.to_int_opt B.zero)

let test_pow_mod_edge_exponents () =
  let m = B.sub_int (B.shift_left B.one 127) 1 in
  let ctx = B.mont_of_modulus m in
  let a = bn "987654321234567898765432123456789" in
  let check_e label e =
    Alcotest.(check string) label
      (B.to_decimal (B.Reference.pow_mod_ctx ctx a e))
      (B.to_decimal (B.pow_mod_ctx ctx a e))
  in
  check_e "e = 0" B.zero;
  check_e "e = 1" B.one;
  check_e "e = 2" B.two;
  check_e "e = m - 1" (B.sub_int m 1);
  (* Long zero runs: a window walker must not mis-skip them. *)
  check_e "e = 2^96" (B.shift_left B.one 96);
  check_e "e = 2^96 + 1" (B.add_int (B.shift_left B.one 96) 1);
  check_e "e = 2^126 + 2^5" (B.add (B.shift_left B.one 126) (B.of_int 32))

let test_pow_mod_native_word () =
  (* Moduli around the native-word fast-path cutoff (31 bits) agree with
     the seed reference through both entry points, odd and even. *)
  let rng = Crypto.Drbg.create ~seed:"native-pow" in
  let moduli =
    [
      B.of_int 3;
      B.of_int 255;
      B.of_int 0x40000001;
      B.of_int 0x7ffffffe;
      B.of_int 0x7fffffff;
      (* Just past the cutoff: still the Montgomery path. *)
      B.add_int (B.shift_left B.one 31) 1;
    ]
  in
  List.iter
    (fun m ->
      for _ = 1 to 10 do
        let a = Crypto.Drbg.bignum_below rng (B.shift_left B.one 40) in
        let e = Crypto.Drbg.bignum_below rng (B.shift_left B.one 40) in
        Alcotest.(check string)
          (Printf.sprintf "m = %s" (B.to_decimal m))
          (B.to_decimal (B.Reference.pow_mod a e m))
          (B.to_decimal (B.pow_mod a e m));
        if not (B.is_even m) then
          let ctx = B.mont_of_modulus m in
          Alcotest.(check string)
            (Printf.sprintf "ctx m = %s" (B.to_decimal m))
            (B.to_decimal (B.Reference.pow_mod_ctx ctx a e))
            (B.to_decimal (B.pow_mod_ctx ctx a e))
      done)
    moduli

let test_pow_mod_fixed_base () =
  let m = B.sub_int (B.shift_left B.one 127) 1 in
  let ctx = B.mont_of_modulus m in
  let g = B.of_int 4 in
  let fb = B.fixed_base ctx g ~max_bits:64 in
  let check_e label e =
    Alcotest.(check string) label
      (B.to_decimal (B.pow_mod_ctx ctx g e))
      (B.to_decimal (B.pow_mod_fixed fb e))
  in
  check_e "e = 0" B.zero;
  check_e "e = 1" B.one;
  check_e "e = 2^63 + 17" (B.add_int (B.shift_left B.one 63) 17);
  (* Wider than the table: falls back to the generic path. *)
  check_e "e = 2^90 + 3" (B.add_int (B.shift_left B.one 90) 3);
  (* The cache returns the same table for the same (base, geometry). *)
  let fb' = B.fixed_base ctx g ~max_bits:64 in
  check_e "cached table" (B.of_int 123456789);
  ignore fb'

(* qcheck generators: random bignums via decimal strings of bounded size. *)
let gen_bignum =
  QCheck2.Gen.(
    let* n = int_range 1 40 in
    let* digits = string_size ~gen:(char_range '0' '9') (return n) in
    return (B.of_decimal digits))

let prop_add_sub =
  QCheck2.Test.make ~name:"bignum add/sub roundtrip" ~count:500
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) -> B.equal a (B.sub (B.add a b) b))

let prop_mul_comm =
  QCheck2.Test.make ~name:"bignum mul commutative" ~count:300
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) -> B.equal (B.mul a b) (B.mul b a))

let prop_mul_distrib =
  QCheck2.Test.make ~name:"bignum mul distributes over add" ~count:300
    QCheck2.Gen.(triple gen_bignum gen_bignum gen_bignum)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod =
  QCheck2.Test.make ~name:"bignum divmod invariant" ~count:500
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) ->
      if B.is_zero b then QCheck2.assume_fail ()
      else
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let prop_bytes_roundtrip =
  QCheck2.Test.make ~name:"bignum bytes roundtrip" ~count:300 gen_bignum (fun a ->
      B.equal a (B.of_bytes_be (B.to_bytes_be a)))

let prop_shift =
  QCheck2.Test.make ~name:"bignum shift left/right" ~count:300
    QCheck2.Gen.(pair gen_bignum (int_range 0 100))
    (fun (a, k) -> B.equal a (B.shift_right (B.shift_left a k) k))

let prop_pow_mod_matches_naive =
  QCheck2.Test.make ~name:"pow_mod matches naive small cases" ~count:200
    QCheck2.Gen.(triple (int_range 0 50) (int_range 0 12) (int_range 3 1001))
    (fun (a, e, m) ->
      let m = if m mod 2 = 0 then m + 1 else m in
      let rec naive acc k = if k = 0 then acc else naive (acc * a mod m) (k - 1) in
      B.to_int_exn (B.pow_mod (B.of_int a) (B.of_int e) (B.of_int m)) = naive 1 e)

(* The windowed Montgomery exponentiation agrees with the retained seed-era
   square-and-multiply kernel on random (a, e, m) with odd m. *)
let prop_pow_mod_matches_reference =
  QCheck2.Test.make ~name:"windowed pow_mod matches seed reference" ~count:150
    QCheck2.Gen.(triple gen_bignum gen_bignum gen_bignum)
    (fun (a, e, m) ->
      let m = B.add_int (if B.is_even m then B.add_int m 1 else m) 2 in
      (* odd, >= 3 *)
      B.equal (B.pow_mod a e m) (B.Reference.pow_mod a e m))

(* Montgomery field ops agree with direct modular arithmetic. *)
let prop_field_ops =
  QCheck2.Test.make ~name:"field ops match modular arithmetic" ~count:200
    QCheck2.Gen.(pair gen_bignum gen_bignum)
    (fun (a, b) ->
      let p = B.sub_int (B.shift_left B.one 127) 1 in
      let ctx = B.Field.create p in
      let fa = B.Field.of_bignum ctx a and fb = B.Field.of_bignum ctx b in
      let via_field op = B.Field.to_bignum ctx op in
      B.equal (via_field (B.Field.mul ctx fa fb)) (B.rem (B.mul a b) p)
      && B.equal (via_field (B.Field.add ctx fa fb)) (B.rem (B.add a b) p)
      && B.equal
           (via_field (B.Field.sub ctx fa fb))
           (let am = B.rem a p and bm = B.rem b p in
            if B.compare am bm >= 0 then B.sub am bm else B.sub (B.add am p) bm))

(* --- Specialized P-256 field ----------------------------------------------- *)

module P256 = Crypto.P256_field

let p256_fctx = lazy (B.Field.create P256.modulus)

(* Every public field op of the specialized backend against the generic
   Montgomery field on the same operands (values are reduced mod p on
   entry, matching [of_bignum]). *)
let p256_pair_agrees a b =
  let ctx = Lazy.force p256_fctx in
  let st = P256.create_state () in
  let pa = P256.of_bignum a and pb = P256.of_bignum b in
  let ga = B.Field.of_bignum ctx a and gb = B.Field.of_bignum ctx b in
  let dst = P256.zero () in
  let agree op gv =
    op dst;
    B.equal (P256.to_bignum dst) (B.Field.to_bignum ctx gv)
  in
  agree (fun d -> P256.mul st d pa pb) (B.Field.mul ctx ga gb)
  && agree (fun d -> P256.sqr st d pa) (B.Field.sqr ctx ga)
  && agree (fun d -> P256.add d pa pb) (B.Field.add ctx ga gb)
  && agree (fun d -> P256.sub d pa pb) (B.Field.sub ctx ga gb)
  && agree (fun d -> P256.neg d pa) (B.Field.neg ctx ga)
  && agree (fun d -> P256.mul_small d pa 8) (B.Field.mul_small ctx ga 8)
  && agree (fun d -> P256.mul_small d pa 3) (B.Field.mul_small ctx ga 3)
  && (P256.is_zero pa || agree (fun d -> P256.inv st d pa) (B.Field.inv ctx ga))

(* Adversarial corners: zero, one, p-1, the Solinas term boundaries
   2^96 / 2^192 / 2^224, and all-ones values that drive the fast-path
   carry fold to its extremes in both directions. *)
let p256_edge_values =
  let p = P256.modulus in
  [
    B.zero;
    B.one;
    B.two;
    B.sub_int p 1;
    B.sub_int p 2;
    B.shift_left B.one 96;
    B.sub_int (B.shift_left B.one 96) 1;
    B.shift_left B.one 192;
    B.shift_left B.one 224;
    B.sub_int (B.shift_left B.one 224) 1;
    B.sub_int (B.shift_left B.one 255) 1;
    B.sub_int (B.shift_left B.one 256) 1;
  ]

let test_p256_field_edges () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (p256_pair_agrees a b) then
            Alcotest.failf "p256 field mismatch on edge pair (%s, %s)" (B.to_hex a) (B.to_hex b))
        p256_edge_values)
    p256_edge_values

let test_p256_field_roundtrip () =
  let v = B.sub_int P256.modulus 12345 in
  Alcotest.(check bool) "bignum roundtrip" true (B.equal v (P256.to_bignum (P256.of_bignum v)));
  Alcotest.(check string) "bytes roundtrip" (B.to_bytes_be ~len:32 v)
    (P256.to_bytes_be (P256.of_bytes_be (B.to_bytes_be ~len:32 v)))

let gen_bignum_256 =
  QCheck2.Gen.(
    let* bytes = string_size ~gen:(char_range '\000' '\255') (return 32) in
    return (B.of_bytes_be bytes))

let prop_p256_field_matches_generic =
  QCheck2.Test.make ~name:"p256 backend matches Bignum.Field" ~count:120
    QCheck2.Gen.(pair gen_bignum_256 gen_bignum_256)
    (fun (a, b) -> p256_pair_agrees a b)

(* --- DRBG ------------------------------------------------------------------ *)

let test_drbg_determinism () =
  let a = Crypto.Drbg.create ~seed:"fixed" and b = Crypto.Drbg.create ~seed:"fixed" in
  Alcotest.(check string) "same seed, same stream"
    (Crypto.Drbg.generate a 64) (Crypto.Drbg.generate b 64);
  let c = Crypto.Drbg.create ~seed:"other" in
  Alcotest.(check bool) "different seed, different stream" false
    (String.equal (Crypto.Drbg.generate b 64) (Crypto.Drbg.generate c 64))

let test_drbg_fork () =
  let parent1 = Crypto.Drbg.create ~seed:"p" in
  let parent2 = Crypto.Drbg.create ~seed:"p" in
  let c1 = Crypto.Drbg.fork parent1 ~label:"a" in
  let c2 = Crypto.Drbg.fork parent2 ~label:"a" in
  Alcotest.(check string) "same fork label, same stream"
    (Crypto.Drbg.generate c1 32) (Crypto.Drbg.generate c2 32);
  let d1 = Crypto.Drbg.fork parent1 ~label:"x" in
  let d2 = Crypto.Drbg.fork parent1 ~label:"y" in
  Alcotest.(check bool) "distinct labels diverge" false
    (String.equal (Crypto.Drbg.generate d1 32) (Crypto.Drbg.generate d2 32))

let test_drbg_generate_into () =
  (* generate_into is stream-identical to generate: same bytes out, same
     state advance, for lengths on both sides of the 32-byte block. *)
  let a = Crypto.Drbg.create ~seed:"gi" in
  let b = Crypto.Drbg.create ~seed:"gi" in
  List.iter
    (fun n ->
      let s = Crypto.Drbg.generate a n in
      let buf = Bytes.make (n + 7) 'Z' in
      Crypto.Drbg.generate_into b buf ~pos:3 ~len:n;
      Alcotest.(check string) (Printf.sprintf "chunk of %d" n) s (Bytes.sub_string buf 3 n);
      Alcotest.(check string) "prefix untouched" "ZZZ" (Bytes.sub_string buf 0 3);
      Alcotest.(check string) "suffix untouched" "ZZZZ" (Bytes.sub_string buf (3 + n) 4))
    [ 1; 31; 32; 33; 0; 64; 100 ];
  Alcotest.(check (pair string string)) "states still aligned"
    (Crypto.Drbg.state a) (Crypto.Drbg.state b);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Drbg.generate_into: range out of bounds") (fun () ->
      Crypto.Drbg.generate_into a (Bytes.create 4) ~pos:2 ~len:3)

let prop_drbg_int_below =
  QCheck2.Test.make ~name:"int_below stays in range" ~count:300
    QCheck2.Gen.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, salt) ->
      let rng = Crypto.Drbg.create ~seed:(string_of_int salt) in
      let v = Crypto.Drbg.int_below rng bound in
      v >= 0 && v < bound)

let test_drbg_weighted () =
  let rng = Crypto.Drbg.create ~seed:"weighted" in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Crypto.Drbg.weighted rng [ (0.7, "a"); (0.2, "b"); (0.1, "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "a dominates" true (get "a" > get "b" && get "b" > get "c");
  Alcotest.(check bool) "roughly calibrated" true
    (abs (get "a" - 2100) < 300 && abs (get "c" - 300) < 150)

(* --- PRF -------------------------------------------------------------------- *)

let test_prf_shapes () =
  let ms =
    Crypto.Prf.master_secret ~pre_master:(String.make 48 'p')
      ~client_random:(String.make 32 'c') ~server_random:(String.make 32 's')
  in
  Alcotest.(check int) "master secret is 48 bytes" 48 (String.length ms);
  let kb = Crypto.Prf.key_block ~master:ms ~client_random:"c" ~server_random:"s" 104 in
  Alcotest.(check int) "key block length honored" 104 (String.length kb);
  let fin = Crypto.Prf.client_finished ~master:ms ~handshake_hash:(String.make 32 'h') in
  Alcotest.(check int) "verify_data is 12 bytes" 12 (String.length fin);
  Alcotest.(check bool) "client and server finished differ" false
    (String.equal fin (Crypto.Prf.server_finished ~master:ms ~handshake_hash:(String.make 32 'h')))

(* --- DH --------------------------------------------------------------------- *)

let test_primality () =
  let prime_cases = [ 2; 3; 5; 7; 97; 7919; 104729 ] in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "%d prime" n) true
        (Crypto.Dh.is_probably_prime (B.of_int n)))
    prime_cases;
  let composite_cases = [ 1; 4; 100; 561 (* Carmichael *); 7917; 104731 ] in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "%d composite" n) false
        (Crypto.Dh.is_probably_prime (B.of_int n)))
    composite_cases;
  (* 2^127 - 1 is a Mersenne prime. *)
  Alcotest.(check bool) "2^127-1 prime" true
    (Crypto.Dh.is_probably_prime (B.sub_int (B.shift_left B.one 127) 1))

let test_oakley2_structure () =
  let p = Crypto.Dh.group_p Crypto.Dh.oakley2 in
  Alcotest.(check int) "1024 bits" 1024 (B.num_bits p);
  Alcotest.(check bool) "p prime" true (Crypto.Dh.is_probably_prime ~rounds:8 p);
  (* Oakley groups are safe primes: (p-1)/2 is prime too. *)
  Alcotest.(check bool) "(p-1)/2 prime" true
    (Crypto.Dh.is_probably_prime ~rounds:8 (B.shift_right (B.sub_int p 1) 1))

let sim_group = Crypto.Dh.generate ~bits:64 ~seed:"test"

let test_generated_group () =
  let p = Crypto.Dh.group_p sim_group in
  let g = Crypto.Dh.group_g sim_group in
  Alcotest.(check bool) "p prime" true (Crypto.Dh.is_probably_prime p);
  let q = B.shift_right (B.sub_int p 1) 1 in
  Alcotest.(check bool) "safe prime" true (Crypto.Dh.is_probably_prime q);
  (* g = 4 generates the order-q subgroup: g^q = 1. *)
  Alcotest.(check bool) "g^q = 1" true (B.is_one (B.pow_mod g q p));
  Alcotest.(check bool) "g^2 <> 1" false (B.is_one (B.pow_mod g B.two p))

let test_dh_agreement () =
  let rng = Crypto.Drbg.create ~seed:"dh-agree" in
  for i = 1 to 10 do
    let alice = Crypto.Dh.gen_keypair sim_group rng in
    let bob = Crypto.Dh.gen_keypair sim_group rng in
    let za =
      Crypto.Dh.shared_secret_exn alice ~peer_pub:(B.of_bytes_be (Crypto.Dh.public_bytes bob))
    in
    let zb =
      Crypto.Dh.shared_secret_exn bob ~peer_pub:(B.of_bytes_be (Crypto.Dh.public_bytes alice))
    in
    Alcotest.(check string) (Printf.sprintf "agreement %d" i) za zb
  done

let test_dh_rejects_degenerate () =
  let rng = Crypto.Drbg.create ~seed:"dh-degenerate" in
  let kp = Crypto.Dh.gen_keypair sim_group rng in
  let p = Crypto.Dh.group_p sim_group in
  List.iter
    (fun (label, v) ->
      match Crypto.Dh.shared_secret kp ~peer_pub:v with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (label ^ " accepted"))
    [ ("zero", B.zero); ("one", B.one); ("p-1", B.sub_int p 1); ("p", p) ]

let test_dh_generate_race () =
  (* [Dh.generate] memoizes into a process-global cache; a parallel
     campaign's workers all derive the same weak groups from the world
     seed, so concurrent first calls must agree on one group object
     (LOGJAM realism: weak endpoints share their group) rather than
     racing the hashtable. Hammer several fresh (bits, seed) keys from
     four domains at once. *)
  let combos =
    Array.init 8 (fun i -> (24 + (8 * (i mod 4)), Printf.sprintf "race-seed-%d" (i / 4)))
  in
  let worker () =
    Array.map (fun (bits, seed) -> Crypto.Dh.generate ~bits ~seed) combos
  in
  let results =
    Array.init 4 (fun _ -> Domain.spawn worker) |> Array.map Domain.join
  in
  Array.iteri
    (fun j (bits, seed) ->
      Array.iteri
        (fun k r ->
          Alcotest.(check bool)
            (Printf.sprintf "worker %d shares group (%d bits, %s)" k bits seed)
            true
            (r.(j) == results.(0).(j)))
        results)
    combos;
  (* And the cached object is what a later caller sees. *)
  let bits, seed = combos.(0) in
  Alcotest.(check bool) "later call hits the cache" true
    (Crypto.Dh.generate ~bits ~seed == results.(0).(0))

let test_dh_oakley_agreement () =
  let rng = Crypto.Drbg.create ~seed:"dh-oakley" in
  let alice = Crypto.Dh.gen_keypair Crypto.Dh.oakley2 rng in
  let bob = Crypto.Dh.gen_keypair Crypto.Dh.oakley2 rng in
  let za = Crypto.Dh.shared_secret_exn alice ~peer_pub:(B.of_bytes_be (Crypto.Dh.public_bytes bob)) in
  let zb = Crypto.Dh.shared_secret_exn bob ~peer_pub:(B.of_bytes_be (Crypto.Dh.public_bytes alice)) in
  Alcotest.(check string) "1024-bit agreement" za zb;
  Alcotest.(check int) "public width" 128 (String.length (Crypto.Dh.public_bytes alice))

(* --- EC --------------------------------------------------------------------- *)

module Ec = Crypto.Ec

let test_p256_structure () =
  Alcotest.(check bool) "G on curve" true (Ec.on_curve Ec.p256 (Ec.base_point Ec.p256));
  Alcotest.(check bool) "p prime" true
    (Crypto.Dh.is_probably_prime ~rounds:8 (Ec.curve_p Ec.p256));
  Alcotest.(check bool) "n prime" true
    (Crypto.Dh.is_probably_prime ~rounds:8 (Ec.curve_order Ec.p256));
  (match Ec.scalar_mult_base Ec.p256 (Ec.curve_order Ec.p256) with
  | Ec.Inf -> ()
  | Ec.Affine _ -> Alcotest.fail "n * G should be infinity");
  match Ec.scalar_mult_base Ec.p256 (B.sub_int (Ec.curve_order Ec.p256) 1) with
  | Ec.Inf -> Alcotest.fail "(n-1) * G should not be infinity"
  | Ec.Affine _ -> ()

let small_curve = Ec.generate_small ~bits:61 ~seed:"test"

let test_small_curve_structure () =
  let g = Ec.base_point small_curve in
  Alcotest.(check bool) "G on curve" true (Ec.on_curve small_curve g);
  Alcotest.(check bool) "order prime" true
    (Crypto.Dh.is_probably_prime (Ec.curve_order small_curve));
  (match Ec.scalar_mult_base small_curve (Ec.curve_order small_curve) with
  | Ec.Inf -> ()
  | Ec.Affine _ -> Alcotest.fail "q * G should be infinity");
  (* p = 4q - 1. *)
  Alcotest.(check bool) "p = 4q - 1" true
    (B.equal (Ec.curve_p small_curve)
       (B.sub_int (B.shift_left (Ec.curve_order small_curve) 2) 1))

let test_ec_group_laws () =
  let c = small_curve in
  let g = Ec.base_point c in
  let p2 = Ec.double c g in
  Alcotest.(check bool) "2G = G + G" true (Ec.add c g g = p2);
  let p3_a = Ec.add c p2 g in
  let p3_b = Ec.scalar_mult c (B.of_int 3) g in
  Alcotest.(check bool) "2G + G = 3G" true (p3_a = p3_b);
  (* Associativity sample: (2G + 3G) + 5G = 2G + (3G + 5G) = 10G. *)
  let p5 = Ec.scalar_mult c (B.of_int 5) g in
  let lhs = Ec.add c (Ec.add c p2 p3_a) p5 in
  let rhs = Ec.add c p2 (Ec.add c p3_a p5) in
  Alcotest.(check bool) "associativity" true (lhs = rhs);
  Alcotest.(check bool) "matches 10G" true (lhs = Ec.scalar_mult c (B.of_int 10) g);
  Alcotest.(check bool) "identity" true (Ec.add c g Ec.Inf = g)

let test_ec_neg () =
  List.iter
    (fun c ->
      let label = Ec.curve_name c in
      let g = Ec.base_point c in
      let ng = Ec.neg c g in
      Alcotest.(check bool) (label ^ ": neg G on curve") true (Ec.on_curve c ng);
      Alcotest.(check bool) (label ^ ": G + neg G = Inf") true (Ec.add c g ng = Ec.Inf);
      Alcotest.(check bool) (label ^ ": neg is an involution") true (Ec.neg c ng = g);
      Alcotest.(check bool) (label ^ ": neg Inf = Inf") true (Ec.neg c Ec.Inf = Ec.Inf);
      (* neg (kG) = (n - k) G *)
      let k = B.of_int 7 in
      let p = Ec.scalar_mult_base c k in
      Alcotest.(check bool) (label ^ ": neg 7G = (n-7)G") true
        (Ec.neg c p = Ec.scalar_mult_base c (B.sub (Ec.curve_order c) k)))
    [ small_curve; Ec.p256 ]

let test_ec_scalar_mult_edge_cases () =
  let c = small_curve in
  let n = Ec.curve_order c in
  let g = Ec.base_point c in
  let scalars =
    [
      ("0", B.zero);
      ("1", B.one);
      ("2", B.two);
      ("n - 1", B.sub_int n 1);
      ("n", n);
      ("n + 1", B.add_int n 1);
      ("2^40 (long zero run)", B.shift_left B.one 40);
      ("2^40 + 1", B.add_int (B.shift_left B.one 40) 1);
      ("2n + 3", B.add_int (B.shift_left n 1) 3);
    ]
  in
  List.iter
    (fun (label, k) ->
      let expect = Ec.Reference.scalar_mult c k g in
      Alcotest.(check bool) ("scalar_mult " ^ label) true (Ec.scalar_mult c k g = expect);
      Alcotest.(check bool) ("scalar_mult_base " ^ label) true (Ec.scalar_mult_base c k = expect))
    scalars

(* wNAF scalar_mult and the fixed-base comb agree with the retained seed-era
   double-and-add kernel on random scalars, including beyond the order. *)
let prop_scalar_mult_matches_reference =
  QCheck2.Test.make ~name:"wNAF/comb scalar_mult matches seed reference" ~count:60 gen_bignum
    (fun k ->
      let c = small_curve in
      let expect = Ec.Reference.scalar_mult c k (Ec.base_point c) in
      Ec.scalar_mult c k (Ec.base_point c) = expect && Ec.scalar_mult_base c k = expect)

(* u1*G + u2*Q formed in Jacobian coordinates matches the affine composition. *)
let prop_scalar_mult_base_add =
  QCheck2.Test.make ~name:"scalar_mult_base_add matches add of parts" ~count:40
    QCheck2.Gen.(triple gen_bignum gen_bignum (int_range 2 1000))
    (fun (u1, u2, kq) ->
      let c = small_curve in
      let q = Ec.Reference.scalar_mult_base c (B.of_int kq) in
      Ec.scalar_mult_base_add c u1 u2 q
      = Ec.add c (Ec.Reference.scalar_mult_base c u1) (Ec.Reference.scalar_mult c u2 q))

let test_ec_agreement () =
  let rng = Crypto.Drbg.create ~seed:"ec-agree" in
  for i = 1 to 10 do
    let alice = Ec.gen_keypair small_curve rng in
    let bob = Ec.gen_keypair small_curve rng in
    let pub_of kp =
      match Ec.point_of_bytes small_curve (Ec.public_bytes kp) with
      | Ok p -> p
      | Error e -> Alcotest.fail e
    in
    match
      (Ec.shared_secret alice ~peer_pub:(pub_of bob), Ec.shared_secret bob ~peer_pub:(pub_of alice))
    with
    | Ok za, Ok zb -> Alcotest.(check string) (Printf.sprintf "agreement %d" i) za zb
    | Error e, _ | _, Error e -> Alcotest.fail e
  done

let test_ec_rejects_off_curve () =
  let c = small_curve in
  let bogus = Ec.Affine (B.of_int 12345, B.of_int 678) in
  if Ec.on_curve c bogus then ()
  else begin
    let rng = Crypto.Drbg.create ~seed:"ec-reject" in
    let kp = Ec.gen_keypair c rng in
    (match Ec.shared_secret kp ~peer_pub:bogus with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "off-curve point accepted");
    match Ec.point_of_bytes c (Ec.point_bytes c bogus) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "off-curve encoding accepted"
  end

let test_p256_agreement () =
  let rng = Crypto.Drbg.create ~seed:"p256-agree" in
  let alice = Ec.gen_keypair Ec.p256 rng in
  let bob = Ec.gen_keypair Ec.p256 rng in
  let pub kp =
    match Ec.point_of_bytes Ec.p256 (Ec.public_bytes kp) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  match (Ec.shared_secret alice ~peer_pub:(pub bob), Ec.shared_secret bob ~peer_pub:(pub alice)) with
  | Ok za, Ok zb ->
      Alcotest.(check string) "p256 agreement" za zb;
      Alcotest.(check int) "x-coordinate width" 32 (String.length za)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* --- ECDSA ------------------------------------------------------------------- *)

let ecdsa_curve = Ec.generate_small ~bits:53 ~seed:"ecdsa-test"

let test_ecdsa_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"ecdsa" in
  let kp = Crypto.Ecdsa.gen_keypair ecdsa_curve rng in
  let msg = "to be signed" in
  let sg = Crypto.Ecdsa.sign kp rng msg in
  Alcotest.(check bool) "verifies" true
    (Crypto.Ecdsa.verify ~curve:ecdsa_curve ~pub:(Crypto.Ecdsa.public_key kp) ~msg sg);
  Alcotest.(check bool) "wrong message rejected" false
    (Crypto.Ecdsa.verify ~curve:ecdsa_curve ~pub:(Crypto.Ecdsa.public_key kp) ~msg:"tampered" sg);
  (* Wrong key rejected. *)
  let other = Crypto.Ecdsa.gen_keypair ecdsa_curve rng in
  Alcotest.(check bool) "wrong key rejected" false
    (Crypto.Ecdsa.verify ~curve:ecdsa_curve ~pub:(Crypto.Ecdsa.public_key other) ~msg sg)

let test_ecdsa_signature_codec () =
  let rng = Crypto.Drbg.create ~seed:"ecdsa-codec" in
  let kp = Crypto.Ecdsa.gen_keypair ecdsa_curve rng in
  let sg = Crypto.Ecdsa.sign kp rng "payload" in
  let bytes = Crypto.Ecdsa.signature_bytes ecdsa_curve sg in
  (match Crypto.Ecdsa.signature_of_bytes ecdsa_curve bytes with
  | Ok sg' ->
      Alcotest.(check bool) "decoded signature verifies" true
        (Crypto.Ecdsa.verify ~curve:ecdsa_curve ~pub:(Crypto.Ecdsa.public_key kp) ~msg:"payload" sg')
  | Error e -> Alcotest.fail e);
  match Crypto.Ecdsa.signature_of_bytes ecdsa_curve "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad length accepted"

let test_ecdsa_static_ecdh () =
  let rng = Crypto.Drbg.create ~seed:"ecdsa-ecdh" in
  let a = Crypto.Ecdsa.gen_keypair ecdsa_curve rng in
  let b = Crypto.Ecdsa.gen_keypair ecdsa_curve rng in
  match
    ( Crypto.Ecdsa.ecdh a ~peer_pub:(Crypto.Ecdsa.public_key b),
      Crypto.Ecdsa.ecdh b ~peer_pub:(Crypto.Ecdsa.public_key a) )
  with
  | Ok za, Ok zb -> Alcotest.(check string) "static ecdh agreement" za zb
  | Error e, _ | _, Error e -> Alcotest.fail e

let prop_ecdsa_sign_verify =
  QCheck2.Test.make ~name:"ecdsa sign/verify" ~count:50
    QCheck2.Gen.(pair small_int (string_size (int_range 0 100)))
    (fun (salt, msg) ->
      let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "e-%d" salt) in
      let kp = Crypto.Ecdsa.gen_keypair ecdsa_curve rng in
      let sg = Crypto.Ecdsa.sign kp rng msg in
      Crypto.Ecdsa.verify ~curve:ecdsa_curve ~pub:(Crypto.Ecdsa.public_key kp) ~msg sg)

(* --- X25519 (RFC 7748) ------------------------------------------------------- *)

let test_x25519_vector () =
  let scalar = hex "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4" in
  let u = hex "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c" in
  check_hex "rfc7748 vector 1" "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
    (Crypto.X25519.scalar_mult ~scalar ~u)

let test_x25519_dh_vectors () =
  (* Self-consistency: independently generated keypairs agree on the
     shared secret, and the base point behaves. *)
  Alcotest.(check int) "base point length" 32 (String.length Crypto.X25519.base_point);
  let rng = Crypto.Drbg.create ~seed:"x25519" in
  let kp1 = Crypto.X25519.gen_keypair rng in
  let kp2 = Crypto.X25519.gen_keypair rng in
  match
    ( Crypto.X25519.shared_secret kp1 ~peer_pub:(Crypto.X25519.public_bytes kp2),
      Crypto.X25519.shared_secret kp2 ~peer_pub:(Crypto.X25519.public_bytes kp1) )
  with
  | Ok za, Ok zb -> Alcotest.(check string) "agreement" za zb
  | Error e, _ | _, Error e -> Alcotest.fail e

let prop_x25519_agreement =
  QCheck2.Test.make ~name:"x25519 agreement" ~count:20 QCheck2.Gen.small_int (fun salt ->
      let rng = Crypto.Drbg.create ~seed:(Printf.sprintf "x-%d" salt) in
      let kp1 = Crypto.X25519.gen_keypair rng in
      let kp2 = Crypto.X25519.gen_keypair rng in
      match
        ( Crypto.X25519.shared_secret kp1 ~peer_pub:(Crypto.X25519.public_bytes kp2),
          Crypto.X25519.shared_secret kp2 ~peer_pub:(Crypto.X25519.public_bytes kp1) )
      with
      | Ok za, Ok zb -> String.equal za zb
      | _ -> false)

(* --- Suite -------------------------------------------------------------------- *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "crypto"
    [
      ( "hex",
        [ Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_vectors;
          Alcotest.test_case "constant-time equal" `Quick test_hmac_ct_equal;
        ] );
      ( "aes",
        [
          Alcotest.test_case "FIPS 197 vectors" `Quick test_aes_vectors;
          Alcotest.test_case "bad key" `Quick test_aes_bad_key;
        ] );
      ( "block-mode",
        [
          Alcotest.test_case "cbc roundtrip" `Quick test_cbc_roundtrip;
          Alcotest.test_case "cbc tamper" `Quick test_cbc_tamper;
          Alcotest.test_case "ctr roundtrip" `Quick test_ctr_roundtrip;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "basics" `Quick test_bignum_basics;
          Alcotest.test_case "divmod" `Quick test_bignum_divmod;
          Alcotest.test_case "pow_mod" `Quick test_bignum_pow_mod;
          Alcotest.test_case "mod inverse" `Quick test_bignum_mod_inverse;
          Alcotest.test_case "byte conversions" `Quick test_bignum_bytes;
          Alcotest.test_case "to_int boundary" `Quick test_bignum_to_int_boundary;
          Alcotest.test_case "pow_mod edge exponents" `Quick test_pow_mod_edge_exponents;
          Alcotest.test_case "pow_mod native word" `Quick test_pow_mod_native_word;
          Alcotest.test_case "fixed-base exponentiation" `Quick test_pow_mod_fixed_base;
        ] );
      qsuite "bignum-properties"
        [
          prop_add_sub;
          prop_mul_comm;
          prop_mul_distrib;
          prop_divmod;
          prop_bytes_roundtrip;
          prop_shift;
          prop_pow_mod_matches_naive;
          prop_pow_mod_matches_reference;
          prop_field_ops;
        ];
      ( "p256-field",
        [
          Alcotest.test_case "adversarial edges" `Quick test_p256_field_edges;
          Alcotest.test_case "roundtrips" `Quick test_p256_field_roundtrip;
        ] );
      qsuite "p256-field-properties" [ prop_p256_field_matches_generic ];
      ( "drbg",
        [
          Alcotest.test_case "determinism" `Quick test_drbg_determinism;
          Alcotest.test_case "fork" `Quick test_drbg_fork;
          Alcotest.test_case "generate_into" `Quick test_drbg_generate_into;
          Alcotest.test_case "weighted" `Quick test_drbg_weighted;
        ] );
      qsuite "drbg-properties" [ prop_drbg_int_below ];
      ("prf", [ Alcotest.test_case "shapes" `Quick test_prf_shapes ]);
      ( "dh",
        [
          Alcotest.test_case "primality" `Quick test_primality;
          Alcotest.test_case "oakley2 structure" `Slow test_oakley2_structure;
          Alcotest.test_case "generated group" `Quick test_generated_group;
          Alcotest.test_case "agreement" `Quick test_dh_agreement;
          Alcotest.test_case "degenerate rejection" `Quick test_dh_rejects_degenerate;
          Alcotest.test_case "generate race" `Quick test_dh_generate_race;
          Alcotest.test_case "oakley2 agreement" `Slow test_dh_oakley_agreement;
        ] );
      ( "ec",
        [
          Alcotest.test_case "p256 structure" `Slow test_p256_structure;
          Alcotest.test_case "small curve structure" `Quick test_small_curve_structure;
          Alcotest.test_case "group laws" `Quick test_ec_group_laws;
          Alcotest.test_case "negation" `Quick test_ec_neg;
          Alcotest.test_case "scalar mult edge cases" `Quick test_ec_scalar_mult_edge_cases;
          Alcotest.test_case "agreement" `Quick test_ec_agreement;
          Alcotest.test_case "off-curve rejection" `Quick test_ec_rejects_off_curve;
          Alcotest.test_case "p256 agreement" `Slow test_p256_agreement;
        ] );
      qsuite "ec-properties" [ prop_scalar_mult_matches_reference; prop_scalar_mult_base_add ];
      ( "ecdsa",
        [
          Alcotest.test_case "sign/verify" `Quick test_ecdsa_roundtrip;
          Alcotest.test_case "signature codec" `Quick test_ecdsa_signature_codec;
          Alcotest.test_case "static ecdh" `Quick test_ecdsa_static_ecdh;
        ] );
      qsuite "ecdsa-properties" [ prop_ecdsa_sign_verify ];
      ( "x25519",
        [
          Alcotest.test_case "rfc7748 vector" `Quick test_x25519_vector;
          Alcotest.test_case "dh self-consistency" `Quick test_x25519_dh_vectors;
        ] );
      qsuite "x25519-properties" [ prop_x25519_agreement ];
    ]
