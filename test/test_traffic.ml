(* Tests for the client-side traffic subsystem: the lifetime-aware
   client store (boundary-day expiry, the capacity bound), the row
   codec, the multi-quantile helper, and the population runner's two
   contracts — byte-identical archives at any worker count and across a
   crash-and-rerun. *)

let session ?(id = String.make 32 'i') () =
  Tls.Session.make ~id ~master_secret:(String.make 48 'm')
    ~cipher_suite:Tls.Types.ECDHE_ECDSA_AES128_SHA256 ~established_at:0

let is_ticket = function Tls.Client.Offer_ticket _ -> true | _ -> false
let is_session_id = function Tls.Client.Offer_session_id _ -> true | _ -> false
let is_fresh o = o = Tls.Client.Fresh

(* --- Client store: lifetime boundaries ---------------------------------------- *)

(* The regression the lifetime satellite pins down: state is offerable
   at exactly [stored_at + lifetime] and Fresh one second later, for
   every way the effective lifetime can arise. *)

let test_ticket_hint_boundary () =
  let store = Tls.Client_store.create ~capacity:4 () in
  Tls.Client_store.note store ~now:1000 ~scope:"a.example" ~session:(Some (session ~id:"" ()))
    ~ticket:(Some (100, "tkt"));
  Alcotest.(check bool)
    "live at deadline" true
    (is_ticket (Tls.Client_store.offer store ~now:1100 ~scope:"a.example"));
  Alcotest.(check bool)
    "dead one second past" true
    (is_fresh (Tls.Client_store.offer store ~now:1101 ~scope:"a.example"));
  Alcotest.(check int) "expiration counted" 1 (Tls.Client_store.expirations store)

let test_ticket_cap_tightens_hint () =
  let store = Tls.Client_store.create ~ticket_lifetime_cap:50 ~capacity:4 () in
  Tls.Client_store.note store ~now:0 ~scope:"a" ~session:(Some (session ~id:"" ()))
    ~ticket:(Some (100, "tkt"));
  Alcotest.(check bool)
    "live at min(hint,cap)" true
    (is_ticket (Tls.Client_store.offer store ~now:50 ~scope:"a"));
  Alcotest.(check bool)
    "cap wins over hint" true
    (is_fresh (Tls.Client_store.offer store ~now:51 ~scope:"a"))

let test_ticket_unspecified_hint_uses_cap () =
  (* RFC 5077: a hint of 0 means unspecified — the client cap alone
     bounds reuse. *)
  let store = Tls.Client_store.create ~ticket_lifetime_cap:50 ~capacity:4 () in
  Tls.Client_store.note store ~now:0 ~scope:"a" ~session:(Some (session ~id:"" ()))
    ~ticket:(Some (0, "tkt"));
  Alcotest.(check bool)
    "live at cap" true
    (is_ticket (Tls.Client_store.offer store ~now:50 ~scope:"a"));
  Alcotest.(check bool)
    "dead past cap" true
    (is_fresh (Tls.Client_store.offer store ~now:51 ~scope:"a"))

let test_ticket_no_bound_never_self_expires () =
  let store = Tls.Client_store.create ~capacity:4 () in
  Tls.Client_store.note store ~now:0 ~scope:"a" ~session:(Some (session ~id:"" ()))
    ~ticket:(Some (0, "tkt"));
  Alcotest.(check bool)
    "still offered years later" true
    (is_ticket (Tls.Client_store.offer store ~now:(400 * 86_400) ~scope:"a"))

let test_session_id_boundary () =
  let store = Tls.Client_store.create ~session_lifetime:86_400 ~capacity:4 () in
  Tls.Client_store.note store ~now:0 ~scope:"a" ~session:(Some (session ())) ~ticket:None;
  Alcotest.(check bool)
    "live at session_lifetime" true
    (is_session_id (Tls.Client_store.offer store ~now:86_400 ~scope:"a"));
  Alcotest.(check bool)
    "dead one second past" true
    (is_fresh (Tls.Client_store.offer store ~now:86_401 ~scope:"a"))

let test_empty_session_id_never_offered () =
  let store = Tls.Client_store.create ~capacity:4 () in
  Tls.Client_store.note store ~now:0 ~scope:"a" ~session:(Some (session ~id:"" ()))
    ~ticket:None;
  Alcotest.(check bool)
    "no id, no offer" true
    (is_fresh (Tls.Client_store.offer store ~now:1 ~scope:"a"))

(* Boundary-day regression at campaign granularity: a ticket with a
   one-day hint survives to the next simulated day's same second and no
   further — the exact situation a 63-day browsing history exercises
   daily. *)
let test_boundary_day_regression () =
  let day = 86_400 in
  let store = Tls.Client_store.create ~capacity:4 () in
  Tls.Client_store.note store ~now:(3 * day) ~scope:"s" ~session:(Some (session ()))
    ~ticket:(Some (day, "tkt"));
  Alcotest.(check bool)
    "offerable on day 4" true
    (Tls.Client_store.holds store ~now:(4 * day) ~scope:"s");
  Alcotest.(check bool)
    "gone on day 4 + 1s" false
    (Tls.Client_store.holds store ~now:((4 * day) + 1) ~scope:"s")

(* --- Client store: capacity bound --------------------------------------------- *)

let test_lru_eviction () =
  let store = Tls.Client_store.create ~capacity:3 () in
  let note ~now scope =
    Tls.Client_store.note store ~now ~scope ~session:(Some (session ()))
      ~ticket:(Some (0, "tkt-" ^ scope))
  in
  note ~now:0 "a";
  note ~now:1 "b";
  note ~now:2 "c";
  (* Touch [a]: [b] becomes least recently used. *)
  ignore (Tls.Client_store.offer store ~now:3 ~scope:"a");
  note ~now:4 "d";
  Alcotest.(check int) "size bounded" 3 (Tls.Client_store.size store);
  Alcotest.(check int) "one eviction" 1 (Tls.Client_store.evictions store);
  Alcotest.(check bool) "LRU scope gone" false (Tls.Client_store.holds store ~now:5 ~scope:"b");
  List.iter
    (fun s ->
      Alcotest.(check bool) ("retained " ^ s) true
        (Tls.Client_store.holds store ~now:5 ~scope:s))
    [ "a"; "c"; "d" ]

(* The bounded-memory guarantee the million-user population rests on:
   63 days of browsing over arbitrarily many scopes never holds more
   than [capacity] scopes. *)
let prop_store_bounded =
  QCheck2.Test.make ~name:"client store never exceeds capacity over 63 days" ~count:50
    QCheck2.Gen.(
      let* capacity = int_range 1 16 in
      let* visits = list_size (int_range 1 400) (pair (int_range 0 500) (int_range 0 62)) in
      return (capacity, visits))
    (fun (capacity, visits) ->
      let store = Tls.Client_store.create ~capacity () in
      List.for_all
        (fun (site, day) ->
          let now = (day * 86_400) + site in
          let scope = Printf.sprintf "site-%d.example" site in
          ignore (Tls.Client_store.offer store ~now ~scope);
          Tls.Client_store.note store ~now ~scope ~session:(Some (session ()))
            ~ticket:(Some (3600, "tkt"));
          Tls.Client_store.size store <= capacity)
        visits)

(* --- Row codec ----------------------------------------------------------------- *)

let hostname_gen =
  QCheck2.Gen.(
    let seg = string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '9'; '-' ]) (int_range 1 8) in
    map2 (fun a b -> a ^ "." ^ b) seg seg)

let row_gen =
  QCheck2.Gen.(
    let* time = int_range 0 10_000_000 in
    let* user = int_range 0 1_000_000 in
    let* page = int_range 0 10_000 in
    let* hostname = hostname_gen in
    let* page_host = hostname_gen in
    let* primary = bool in
    let* ok = bool in
    let* offered = oneofl [ Traffic.Row.O_fresh; O_session_id; O_ticket ] in
    let* resumed = oneofl [ Traffic.Row.R_no; R_session_id; R_ticket ] in
    let* new_ticket = bool in
    let* chain = int_range 0 100_000 in
    return
      {
        Traffic.Row.time;
        user;
        page;
        hostname;
        page_host;
        primary;
        ok;
        offered;
        resumed;
        new_ticket;
        chain;
      })

let prop_row_roundtrip =
  QCheck2.Test.make ~name:"row line roundtrip" ~count:500 row_gen (fun r ->
      Traffic.Row.of_line (Traffic.Row.to_line r) = Ok r)

let prop_day_roundtrip =
  QCheck2.Test.make ~name:"day block roundtrip" ~count:100
    QCheck2.Gen.(pair (int_range 0 100) (list_size (int_range 0 40) row_gen))
    (fun (day, rows) ->
      Traffic.Row.decode_day (Traffic.Row.day_payload ~day rows) = Ok (day, rows))

let test_trailer_roundtrip () =
  let hosts =
    [
      ("a.example", { Traffic.Row.h_rank = 1; h_weight = 1.0; h_operator = "google" });
      ("b.example", { Traffic.Row.h_rank = 17; h_weight = 0.1 /. 3.0; h_operator = "site:b" });
    ]
  in
  Alcotest.(check bool)
    "roundtrip" true
    (Traffic.Row.decode_trailer (Traffic.Row.trailer ~users_lo:32 ~users_hi:64 hosts)
    = Ok (32, 64, hosts))

(* --- Stats.quantiles ----------------------------------------------------------- *)

(* The single-pass implementation must agree exactly — same float
   accumulation, bit for bit — with calling [percentile] per quantile. *)
let prop_quantiles_match_percentile =
  QCheck2.Test.make ~name:"quantiles = repeated percentile (exact)" ~count:300
    QCheck2.Gen.(
      let point =
        let* value = map float_of_int (int_range (-1000) 1000) in
        let* weight = map (fun w -> float_of_int w /. 16.0) (int_range 0 64) in
        return { Analysis.Stats.value; weight }
      in
      let* pts = list_size (int_range 0 50) point in
      let* qs = list_size (int_range 1 8) (map (fun q -> float_of_int q /. 20.0) (int_range 0 20)) in
      return (pts, qs))
    (fun (pts, qs) ->
      let same a b = (Float.is_nan a && Float.is_nan b) || a = b in
      List.for_all2 same (Analysis.Stats.quantiles pts qs)
        (List.map (Analysis.Stats.percentile pts) qs))

let test_quantiles_rejects_bad_q () =
  Alcotest.check_raises "q > 1" (Invalid_argument "Stats.quantiles: q out of range")
    (fun () -> ignore (Analysis.Stats.quantiles [] [ 1.5 ]))

(* --- Population runner --------------------------------------------------------- *)

let traffic_config =
  {
    Traffic.Population.default_config with
    Traffic.Population.users = 45;
    days = 3;
    shard_users = 16;
    pages_per_day = 1.5;
    store_capacity = 8;
    world =
      { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "traffic-test" };
  }

let with_tmp_dir f =
  let dir = Filename.temp_file "tlsharm-traffic" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let dir_contents dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun n -> (n, read_file (Filename.concat dir n)))

let make_sink dir =
  match
    Traffic.Traffic_sink.create ~dir
      ~manifest:
        [
          ("mode", "traffic");
          ("users", string_of_int traffic_config.Traffic.Population.users);
          ("days", string_of_int traffic_config.Traffic.Population.days);
          ("policy", "strict");
          ("ticket_lifetime", "0");
        ]
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* One deterministic reference run, shared by the tests below. *)
let reference =
  lazy
    (with_tmp_dir (fun dir ->
         let sink = make_sink dir in
         let r = Traffic.Population.run ~jobs:1 ~sink traffic_config in
         (r, dir_contents dir)))

let test_jobs_invariance () =
  let r1, bytes1 = Lazy.force reference in
  with_tmp_dir (fun dir ->
      let sink = make_sink dir in
      let r4 = Traffic.Population.run ~jobs:4 ~sink traffic_config in
      Alcotest.(check bool)
        "retained rows identical" true
        (r1.Traffic.Population.rows = r4.Traffic.Population.rows);
      Alcotest.(check int)
        "row count" r1.Traffic.Population.total_rows r4.Traffic.Population.total_rows;
      Alcotest.(check (list (pair string string)))
        "archive byte-identical at jobs 1 vs 4" bytes1 (dir_contents dir))

let test_crash_rerun_identical () =
  let _, reference_bytes = Lazy.force reference in
  with_tmp_dir (fun dir ->
      let armed = ref true in
      let chaos ~shard ~day =
        if !armed && shard = 2 && day = 1 then begin
          armed := false;
          failwith "injected crash"
        end
      in
      (try ignore (Traffic.Population.run ~jobs:1 ~sink:(make_sink dir) ~chaos traffic_config)
       with Failure _ -> ());
      (* The interrupted archive must differ (a shard is incomplete)... *)
      Alcotest.(check bool)
        "crashed archive incomplete" false
        (dir_contents dir = reference_bytes);
      (* ...and a plain re-run into the same directory must complete it
         to the exact uninterrupted bytes, skipping finished shards. *)
      ignore (Traffic.Population.run ~jobs:1 ~sink:(make_sink dir) traffic_config);
      Alcotest.(check (list (pair string string)))
        "re-run archive byte-identical to uninterrupted" reference_bytes (dir_contents dir))

let test_sink_refuses_mismatched_manifest () =
  with_tmp_dir (fun dir ->
      (match Traffic.Traffic_sink.create ~dir ~manifest:[ ("mode", "traffic"); ("users", "45") ] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      match Traffic.Traffic_sink.create ~dir ~manifest:[ ("mode", "traffic"); ("users", "46") ] with
      | Ok _ -> Alcotest.fail "mismatched manifest accepted"
      | Error _ -> ())

let test_obs_and_store_bound () =
  let obs = Obs.Recorder.create () in
  let r = Traffic.Population.run ~jobs:1 ~obs traffic_config in
  let m = Obs.Recorder.metrics obs in
  Alcotest.(check int)
    "connects counter = rows" r.Traffic.Population.total_rows
    (Obs.Metrics.counter_value m "traffic.connects");
  let offers =
    Obs.Metrics.counter_value m "traffic.offer.fresh"
    + Obs.Metrics.counter_value m "traffic.offer.session_id"
    + Obs.Metrics.counter_value m "traffic.offer.ticket"
  in
  Alcotest.(check int) "offer counters partition connects" r.Traffic.Population.total_rows offers;
  match Obs.Metrics.gauge_value m "traffic.store.size" with
  | None -> Alcotest.fail "no store.size gauge"
  | Some peak ->
      Alcotest.(check bool)
        (Printf.sprintf "store peak %d within capacity" peak)
        true
        (peak <= traffic_config.Traffic.Population.store_capacity)

let test_tracking_report_renders () =
  let r, _ = Lazy.force reference in
  let meta =
    { Analysis.Tracking_report.policy = "strict"; ticket_lifetime = 0; users = 45; days = 3 }
  in
  let t =
    Analysis.Tracking_report.of_rows ~meta ~hosts:r.Traffic.Population.hosts
      (List.concat (Array.to_list r.Traffic.Population.rows))
  in
  let all = List.find (fun row -> row.Analysis.Tracking_report.cls = "(all)") t.rows in
  Alcotest.(check int)
    "(all) row covers every connection" r.Traffic.Population.total_rows
    all.Analysis.Tracking_report.conns;
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let rendered = Analysis.Tracking_report.render t in
  Alcotest.(check bool) "table mentions policy" true (contains ~needle:"policy=strict" rendered);
  Alcotest.(check bool) "table has (all) row" true (contains ~needle:"(all)" rendered)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "traffic"
    [
      ( "client-store",
        [
          Alcotest.test_case "ticket hint boundary" `Quick test_ticket_hint_boundary;
          Alcotest.test_case "cap tightens hint" `Quick test_ticket_cap_tightens_hint;
          Alcotest.test_case "unspecified hint uses cap" `Quick
            test_ticket_unspecified_hint_uses_cap;
          Alcotest.test_case "no bound never self-expires" `Quick
            test_ticket_no_bound_never_self_expires;
          Alcotest.test_case "session-id boundary" `Quick test_session_id_boundary;
          Alcotest.test_case "empty session id never offered" `Quick
            test_empty_session_id_never_offered;
          Alcotest.test_case "boundary-day regression" `Quick test_boundary_day_regression;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          q prop_store_bounded;
        ] );
      ( "row-codec",
        [
          q prop_row_roundtrip;
          q prop_day_roundtrip;
          Alcotest.test_case "trailer roundtrip" `Quick test_trailer_roundtrip;
        ] );
      ( "quantiles",
        [ q prop_quantiles_match_percentile;
          Alcotest.test_case "rejects q outside [0,1]" `Quick test_quantiles_rejects_bad_q;
        ] );
      ( "population",
        [
          Alcotest.test_case "jobs invariance" `Slow test_jobs_invariance;
          Alcotest.test_case "crash + rerun byte-identical" `Slow test_crash_rerun_identical;
          Alcotest.test_case "sink refuses mismatched manifest" `Quick
            test_sink_refuses_mismatched_manifest;
          Alcotest.test_case "obs counters + store bound" `Slow test_obs_and_store_bound;
          Alcotest.test_case "tracking report totals" `Slow test_tracking_report_renders;
        ] );
    ]
