(* Tests for the wire layer: big-endian primitives, TLS-style
   length-prefixed vectors, sub-readers, and failure modes. *)

module W = Wire.Writer
module R = Wire.Reader

let test_integers () =
  let bytes =
    W.build (fun w ->
        W.u8 w 0xab;
        W.u16 w 0x1234;
        W.u24 w 0x56789a;
        W.u32 w 0xdeadbeef;
        W.u64 w 0x0123456789abcd)
  in
  Alcotest.(check int) "length" (1 + 2 + 3 + 4 + 8) (String.length bytes);
  R.parse bytes (fun r ->
      Alcotest.(check int) "u8" 0xab (R.u8 r);
      Alcotest.(check int) "u16" 0x1234 (R.u16 r);
      Alcotest.(check int) "u24" 0x56789a (R.u24 r);
      Alcotest.(check int) "u32" 0xdeadbeef (R.u32 r);
      Alcotest.(check int) "u64" 0x0123456789abcd (R.u64 r))

let test_big_endian () =
  Alcotest.(check string) "u16 order" "\x12\x34" (W.u16_string 0x1234);
  Alcotest.(check string) "u32 order" "\x00\x00\x01\x00" (W.u32_string 256)

let test_range_checks () =
  let w = W.create () in
  Alcotest.check_raises "u8 too big" (Invalid_argument "Writer.u8: out of range") (fun () ->
      W.u8 w 256);
  Alcotest.check_raises "u16 negative" (Invalid_argument "Writer.u16: out of range") (fun () ->
      W.u16 w (-1));
  Alcotest.check_raises "u64 negative" (Invalid_argument "Writer.u64: negative") (fun () ->
      W.u64 w (-5))

let test_vectors () =
  let bytes =
    W.build (fun w ->
        W.vec8 w "abc";
        W.vec16 w "";
        W.vec24 w "hello world")
  in
  R.parse bytes (fun r ->
      Alcotest.(check string) "vec8" "abc" (R.vec8 r);
      Alcotest.(check string) "vec16 empty" "" (R.vec16 r);
      Alcotest.(check string) "vec24" "hello world" (R.vec24 r))

let test_vector_limits () =
  let w = W.create () in
  Alcotest.check_raises "vec8 overflow" (Invalid_argument "Writer.vec8: too long") (fun () ->
      W.vec8 w (String.make 256 'x'));
  (* 255 is fine. *)
  W.vec8 w (String.make 255 'x');
  Alcotest.(check int) "255 fits" 256 (W.length w)

let test_short_reads () =
  (match R.parse_result "\x01" (fun r -> R.u16 r) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short u16 accepted");
  (match R.parse_result "\x05abc" (fun r -> R.vec8 r) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated vector accepted");
  match R.parse_result "\x01\x02" (fun r -> R.u8 r) with
  | Error _ -> () (* trailing garbage *)
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

let test_sub_reader () =
  let bytes = W.build (fun w -> W.bytes w "abcdef") in
  R.parse bytes (fun r ->
      let sub = R.sub r 3 in
      Alcotest.(check string) "sub content" "abc" (R.take_rest sub);
      Alcotest.(check string) "parent continues" "def" (R.take_rest r))

let test_direct_stores () =
  (* The set_* stores produce exactly the streaming writers' encoding. *)
  let streamed =
    W.build (fun w ->
        W.u8 w 0xab;
        W.u16 w 0x1234;
        W.u24 w 0x56789a;
        W.u32 w 0xdeadbeef;
        W.u64 w 0x0123456789abcd)
  in
  let buf = Bytes.create (String.length streamed) in
  W.set_u8 buf 0 0xab;
  W.set_u16 buf 1 0x1234;
  W.set_u24 buf 3 0x56789a;
  W.set_u32 buf 6 0xdeadbeef;
  W.set_u64 buf 10 0x0123456789abcd;
  Alcotest.(check string) "same encoding" streamed (Bytes.to_string buf);
  Alcotest.check_raises "set_u8 too big" (Invalid_argument "Writer.set_u8: out of range")
    (fun () -> W.set_u8 buf 0 256);
  Alcotest.check_raises "set_u64 negative" (Invalid_argument "Writer.set_u64: negative")
    (fun () -> W.set_u64 buf 0 (-1))

let test_of_bytes () =
  let buf = Bytes.of_string "\x12\x34\x02ab" in
  let r = R.of_bytes buf in
  Alcotest.(check int) "u16" 0x1234 (R.u16 r);
  Alcotest.(check string) "vec8" "ab" (R.vec8 r);
  R.expect_end r;
  (* Windowed view. *)
  let r = R.of_bytes ~pos:1 ~len:2 buf in
  Alcotest.(check int) "windowed u16" 0x3402 (R.u16 r);
  Alcotest.(check bool) "windowed end" true (R.is_empty r)

let test_writer_clear () =
  let w = W.create () in
  W.u16 w 0xbeef;
  W.clear w;
  W.vec8 w "xy";
  Alcotest.(check string) "only post-clear content" "\x02xy" (W.to_string w)

let prop_vec_roundtrip =
  QCheck2.Test.make ~name:"vector roundtrips" ~count:300
    QCheck2.Gen.(string_size (int_range 0 300))
    (fun s ->
      let bytes = W.build (fun w -> W.vec16 w s) in
      R.parse bytes R.vec16 = s)

let prop_int_roundtrip =
  QCheck2.Test.make ~name:"u32 roundtrips" ~count:300
    QCheck2.Gen.(int_range 0 0xffffffff)
    (fun v -> R.parse (W.u32_string v) R.u32 = v)

let prop_concat_roundtrip =
  QCheck2.Test.make ~name:"mixed sequences roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_range 0 20) (pair (int_range 0 0xffff) (string_size (int_range 0 50))))
    (fun items ->
      let bytes =
        W.build (fun w ->
            List.iter
              (fun (n, s) ->
                W.u16 w n;
                W.vec16 w s)
              items)
      in
      let decoded =
        R.parse bytes (fun r ->
            let rec go acc =
              if R.is_empty r then List.rev acc
              else begin
                let n = R.u16 r in
                let s = R.vec16 r in
                go ((n, s) :: acc)
              end
            in
            go [])
      in
      decoded = items)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "wire"
    [
      ( "writer-reader",
        [
          Alcotest.test_case "integers" `Quick test_integers;
          Alcotest.test_case "big-endian order" `Quick test_big_endian;
          Alcotest.test_case "range checks" `Quick test_range_checks;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "vector limits" `Quick test_vector_limits;
          Alcotest.test_case "short reads" `Quick test_short_reads;
          Alcotest.test_case "sub reader" `Quick test_sub_reader;
          Alcotest.test_case "direct stores" `Quick test_direct_stores;
          Alcotest.test_case "reader over bytes" `Quick test_of_bytes;
          Alcotest.test_case "writer clear" `Quick test_writer_clear;
        ] );
      qsuite "properties" [ prop_vec_roundtrip; prop_int_roundtrip; prop_concat_roundtrip ];
    ]
