(* Integration tests for the core library: a miniature end-to-end study
   (every experiment runs and reports), the stolen-secret attack
   demonstrations with their negative control, the mitigation ablations,
   and the Section 7.2 target analysis. *)

let study =
  lazy
    (let config =
       {
         Tlsharm.Study.default_config with
         Tlsharm.Study.world_config =
           { Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "core-test" };
         campaign_days = 8;
         verbose = false;
       }
     in
     let s = Tlsharm.Study.create ~config () in
     Tlsharm.Study.run_all s;
     s)

(* --- Experiments produce sane reports ------------------------------------------ *)

let test_all_experiments_report () =
  let s = Lazy.force study in
  List.iter
    (fun (id, f) ->
      let text = f s in
      Alcotest.(check bool) (id ^ " non-empty") true (String.length text > 100);
      Alcotest.(check bool)
        (id ^ " mentions measured data or paper")
        true
        (let lower = String.lowercase_ascii text in
         let contains needle =
           let n = String.length needle and l = String.length lower in
           let rec go i = i + n <= l && (String.sub lower i n = needle || go (i + 1)) in
           go 0
         in
         contains "paper" || contains "cdf"))
    Tlsharm.Experiments.by_name

let test_table1_shape () =
  let s = Lazy.force study in
  let r_dhe, r_ecdhe, r_ticket = Tlsharm.Study.table1_bursts s in
  Alcotest.(check int) "dhe results" 1500 (List.length r_dhe);
  Alcotest.(check int) "ecdhe results" 1500 (List.length r_ecdhe);
  Alcotest.(check int) "ticket results" 1500 (List.length r_ticket)

let test_study_invariants () =
  let s = Lazy.force study in
  (* STEK spans: bounded by the campaign length. *)
  let spans = Tlsharm.Study.stek_spans s in
  List.iter
    (fun (x : Analysis.Lifetime.domain_spans) ->
      Alcotest.(check bool) "span bounded" true
        (x.Analysis.Lifetime.max_span_days >= 0 && x.Analysis.Lifetime.max_span_days <= 8))
    spans;
  (* yahoo.com: static STEK, full-campaign span. *)
  (match
     List.find_opt
       (fun (x : Analysis.Lifetime.domain_spans) ->
         String.equal x.Analysis.Lifetime.domain "yahoo.com")
       spans
   with
  | Some x -> Alcotest.(check int) "yahoo full span" 8 x.Analysis.Lifetime.max_span_days
  | None -> Alcotest.fail "yahoo.com missing from spans");
  (* google.com: rotates within a day. *)
  match
    List.find_opt
      (fun (x : Analysis.Lifetime.domain_spans) ->
        String.equal x.Analysis.Lifetime.domain "google.com")
      spans
  with
  | Some x -> Alcotest.(check bool) "google rotates" true (x.Analysis.Lifetime.max_span_days <= 2)
  | None -> Alcotest.fail "google.com missing from spans"

let test_vuln_windows () =
  let s = Lazy.force study in
  let windows = Tlsharm.Study.vulnerability_windows s in
  Alcotest.(check bool) "non-empty" true (windows <> []);
  let summary = Analysis.Vuln_window.summarize windows in
  Alcotest.(check bool) "population positive" true (summary.Analysis.Vuln_window.population > 0.0);
  (* Monotone thresholds. *)
  Alcotest.(check bool) "monotone" true
    (summary.Analysis.Vuln_window.over_24h >= summary.Analysis.Vuln_window.over_7d
    && summary.Analysis.Vuln_window.over_7d >= summary.Analysis.Vuln_window.over_30d);
  (* yahoo (static STEK) must exceed the campaign-long window. *)
  match
    List.find_opt (fun w -> String.equal w.Analysis.Vuln_window.domain "yahoo.com") windows
  with
  | Some w ->
      Alcotest.(check bool) "yahoo window ~campaign length" true
        (w.Analysis.Vuln_window.seconds >= 7 * 86_400)
  | None -> Alcotest.fail "yahoo.com missing from windows"

let test_service_groups () =
  let s = Lazy.force study in
  let stek_groups = Tlsharm.Study.stek_service_groups s in
  Alcotest.(check bool) "stek groups exist" true (stek_groups <> []);
  let largest = List.hd stek_groups in
  Alcotest.(check string) "cloudflare is the largest STEK group" "cloudflare"
    largest.Analysis.Service_groups.label;
  let cache_groups = Tlsharm.Study.session_cache_groups s in
  let summary = Analysis.Service_groups.summarize cache_groups in
  Alcotest.(check bool) "most cache groups are singletons" true
    (float_of_int summary.Analysis.Service_groups.n_singletons
     /. float_of_int summary.Analysis.Service_groups.n_groups
    > 0.5)

let test_mitigations_monotone () =
  let s = Lazy.force study in
  let components = Tlsharm.Study.vulnerability_components s in
  let share mitigate =
    let windows = Analysis.Vuln_window.windows_of_components ~mitigate components in
    let summary = Analysis.Vuln_window.summarize windows in
    summary.Analysis.Vuln_window.over_24h /. summary.Analysis.Vuln_window.population
  in
  let baseline = share (fun c -> c) in
  let scenario name =
    (List.find (fun (x : Tlsharm.Mitigations.scenario) -> x.Tlsharm.Mitigations.name = name)
       Tlsharm.Mitigations.scenarios)
      .Tlsharm.Mitigations.mitigate
  in
  Alcotest.(check bool) "rotation helps" true (share (scenario "rotate STEKs daily") <= baseline);
  Alcotest.(check bool) "all three helps more" true
    (share (scenario "all three") <= share (scenario "rotate STEKs daily"));
  Alcotest.(check (float 1e-9)) "no shortcuts = no exposure" 0.0
    (share (scenario "shortcuts disabled"));
  Alcotest.(check bool) "report renders" true
    (String.length (Tlsharm.Mitigations.report s) > 200)

let test_target_analysis () =
  let s = Lazy.force study in
  let a = Tlsharm.Target_analysis.analyze s ~operator:"google" ~flagship:"google.com" in
  (* Google rotates every 14 hours; over 48h the probe sees 4-5 keys. *)
  Alcotest.(check bool) "several STEKs observed" true
    (List.length a.Tlsharm.Target_analysis.rollover.Tlsharm.Target_analysis.observed_keys >= 3);
  (match a.Tlsharm.Target_analysis.rollover.Tlsharm.Target_analysis.rollover_seconds with
  | Some s -> Alcotest.(check bool) "rollover ~14h" true (s >= 10 * 3600 && s <= 18 * 3600)
  | None -> Alcotest.fail "no rollover measured");
  Alcotest.(check bool) "blast radius positive" true (a.Tlsharm.Target_analysis.stek_group_weight > 0.0);
  Alcotest.(check bool) "mx coverage ~9%" true
    (a.Tlsharm.Target_analysis.mx_coverage_fraction > 0.04
    && a.Tlsharm.Target_analysis.mx_coverage_fraction < 0.15);
  Alcotest.(check bool) "mail shares the web STEK" true
    (a.Tlsharm.Target_analysis.mail_shares_stek = Some true);
  Alcotest.(check bool) "report renders" true
    (String.length (Tlsharm.Target_analysis.report a) > 100)

(* --- Posture grading ---------------------------------------------------------------- *)

let test_posture_grades () =
  (* A private world: posture probes advance the clock by days. *)
  let world =
    Simnet.World.create
      ~config:{ Simnet.World.default_config with Simnet.World.n_domains = 1500; seed = "posture-test" }
      ()
  in
  let assess d = Tlsharm.Posture.assess world ~domain:d () in
  (* yahoo.com: static STEK -> D. *)
  let yahoo = assess "yahoo.com" in
  Alcotest.(check string) "yahoo grade" "D" (Tlsharm.Posture.grade_to_string yahoo.Tlsharm.Posture.grade);
  Alcotest.(check bool) "yahoo static stek flagged" true yahoo.Tlsharm.Posture.stek_static_over_horizon;
  (* netflix.com: reused ephemerals -> D with the kex note. *)
  let netflix = assess "netflix.com" in
  Alcotest.(check bool) "netflix kex reuse flagged" true netflix.Tlsharm.Posture.kex_reused;
  Alcotest.(check string) "netflix grade" "D"
    (Tlsharm.Posture.grade_to_string netflix.Tlsharm.Posture.grade);
  (* google.com: rotating STEK but >24h resumption -> C. *)
  let google = assess "google.com" in
  Alcotest.(check bool) "google rotates" true
    (google.Tlsharm.Posture.distinct_steks_over_horizon >= 2);
  Alcotest.(check string) "google grade" "C"
    (Tlsharm.Posture.grade_to_string google.Tlsharm.Posture.grade);
  (* A domain with no HTTPS -> F. *)
  let plain =
    Array.to_list (Simnet.World.domains world)
    |> List.find (fun d -> not (Simnet.World.domain_has_https d))
  in
  let off = assess (Simnet.World.domain_name plain) in
  Alcotest.(check string) "no-https grade" "F" (Tlsharm.Posture.grade_to_string off.Tlsharm.Posture.grade);
  (* Reports render. *)
  Alcotest.(check bool) "report renders" true
    (String.length (Tlsharm.Posture.report yahoo) > 50)

(* --- Attacks --------------------------------------------------------------------- *)

let attack_env = Tls.Config.sim_env ()

let attack_fixture ~shortcuts =
  let rng = Crypto.Drbg.create ~seed:"attack-fixture" in
  let ca =
    Tls.Cert.self_signed ~curve:attack_env.Tls.Config.pki_curve ~name:"Attack CA" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair attack_env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:attack_env.Tls.Config.pki_curve ~subject:"victim.example"
      ~not_before:0 ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes attack_env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let server =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env = attack_env;
          suites = [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ];
          issue_session_ids = shortcuts;
          session_cache =
            (if shortcuts then Some (Tls.Session_cache.create ~lifetime:36_000 ~capacity:100)
             else None);
          tickets =
            (if shortcuts then
               Some
                 {
                   Tls.Config.stek_manager =
                     Tls.Stek_manager.create ~policy:Tls.Stek_manager.Static ~secret:"atk" ~now:0;
                   lifetime_hint = 36_000;
                   accept_lifetime = 36_000;
                   reissue_on_resumption = true;
                 }
             else None);
          kex_cache =
            Tls.Kex_cache.uniform
              ~policy:
                (if shortcuts then Tls.Kex_cache.Reuse_forever else Tls.Kex_cache.Fresh_always);
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"attack-server")
  in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = attack_env;
          offer_suites = Tls.Types.all_cipher_suites;
          offer_ticket = true;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"attack-client") ()
  in
  (client, server)

let test_attacks_succeed_with_shortcuts () =
  let client, server = attack_fixture ~shortcuts:true in
  let secret = "the secret payload nobody should read" in
  match
    Tlsharm.Attack.victim_connection ~plaintext:secret client server ~now:100
      ~hostname:"victim.example" ~offer:Tls.Client.Fresh
  with
  | Error e -> Alcotest.fail e
  | Ok recording ->
      List.iter
        (fun (name, result) ->
          match result with
          | Ok plain -> Alcotest.(check string) name secret plain
          | Error e -> Alcotest.fail (name ^ ": " ^ e))
        (Tlsharm.Attack.attempt_all recording ~server ~env:attack_env ~now:200)

let test_attacks_fail_without_shortcuts () =
  let client, server = attack_fixture ~shortcuts:false in
  match
    Tlsharm.Attack.victim_connection client server ~now:100 ~hostname:"victim.example"
      ~offer:Tls.Client.Fresh
  with
  | Error e -> Alcotest.fail e
  | Ok recording ->
      List.iter
        (fun (name, result) ->
          match result with
          | Ok _ -> Alcotest.fail (name ^ " decrypted against a hardened server")
          | Error _ -> ())
        (Tlsharm.Attack.attempt_all recording ~server ~env:attack_env ~now:200)

let test_attack_dhe_variant () =
  (* Same theft against a DHE-only reusing server. *)
  let rng = Crypto.Drbg.create ~seed:"dhe-attack" in
  let ca =
    Tls.Cert.self_signed ~curve:attack_env.Tls.Config.pki_curve ~name:"CA2" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair attack_env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:attack_env.Tls.Config.pki_curve ~subject:"dhe.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes attack_env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let server =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env = attack_env;
          suites = [ Tls.Types.DHE_ECDSA_AES128_SHA256 ];
          issue_session_ids = false;
          session_cache = None;
          tickets = None;
          kex_cache = Tls.Kex_cache.create ~dhe:Tls.Kex_cache.Reuse_forever ();
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"dhe-attack-server")
  in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = attack_env;
          offer_suites = [ Tls.Types.DHE_ECDSA_AES128_SHA256 ];
          offer_ticket = false;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"dhe-attack-client") ()
  in
  match
    Tlsharm.Attack.victim_connection ~plaintext:"dhe secret" client server ~now:100
      ~hostname:"dhe.example" ~offer:Tls.Client.Fresh
  with
  | Error e -> Alcotest.fail e
  | Ok recording -> (
      match Tlsharm.Attack.steal_kex_value_and_decrypt recording ~server ~env:attack_env with
      | Ok plain -> Alcotest.(check string) "dhe theft decrypts" "dhe secret" plain
      | Error e -> Alcotest.fail e)

let test_attack_x25519_variant () =
  (* Theft of the cached X25519 share: an X25519-preferring client makes
     the reusing server negotiate group 29, and the attack must resolve
     the 32-byte ClientKeyExchange against the cached X25519 private
     value (regression: the cache had no accessor for it, so this theft
     was invisible to the demos). *)
  let rng = Crypto.Drbg.create ~seed:"x25519-attack" in
  let ca =
    Tls.Cert.self_signed ~curve:attack_env.Tls.Config.pki_curve ~name:"CA3" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:1 rng
  in
  let key = Crypto.Ecdsa.gen_keypair attack_env.Tls.Config.pki_curve rng in
  let cert =
    Tls.Cert.issue ca ~curve:attack_env.Tls.Config.pki_curve ~subject:"x.example" ~not_before:0
      ~not_after:(1 lsl 40) ~serial:2
      ~pub:(Crypto.Ec.point_bytes attack_env.Tls.Config.pki_curve (Crypto.Ecdsa.public_key key))
      rng
  in
  let server =
    Tls.Server.create
      ~config:
        {
          Tls.Config.env = attack_env;
          suites = [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ];
          issue_session_ids = false;
          session_cache = None;
          tickets = None;
          kex_cache = Tls.Kex_cache.create ~ecdhe:Tls.Kex_cache.Reuse_forever ();
          cert_chain = [ cert ];
          cert_key = key;
        }
      ~rng:(Crypto.Drbg.create ~seed:"x25519-attack-server")
  in
  let client =
    Tls.Client.create ~prefer_x25519:true
      ~config:
        {
          Tls.Config.cl_env = attack_env;
          offer_suites = [ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ];
          offer_ticket = false;
          root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert ca ];
          check_certs = false;
          evaluate_trust = false;
          verify_ske = true;
        }
      ~rng:(Crypto.Drbg.create ~seed:"x25519-attack-client") ()
  in
  match
    Tlsharm.Attack.victim_connection ~plaintext:"x25519 secret" client server ~now:100
      ~hostname:"x.example" ~offer:Tls.Client.Fresh
  with
  | Error e -> Alcotest.fail e
  | Ok recording -> (
      (* The handshake really used X25519: the captured CKE is a raw
         32-byte u-coordinate, not an uncompressed NIST point. *)
      (match recording.Tlsharm.Attack.capture.Tlsharm.Attack.client_kex_public with
      | Some pub ->
          Alcotest.(check int) "32-byte x25519 share" Crypto.X25519.key_len (String.length pub)
      | None -> Alcotest.fail "no ClientKeyExchange captured");
      Alcotest.(check bool)
        "cached x25519 value visible to the attacker" true
        (Tls.Kex_cache.current_x25519 (Tls.Server.config server).Tls.Config.kex_cache <> None);
      match Tlsharm.Attack.steal_kex_value_and_decrypt recording ~server ~env:attack_env with
      | Ok plain -> Alcotest.(check string) "x25519 theft decrypts" "x25519 secret" plain
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "core"
    [
      ( "study",
        [
          Alcotest.test_case "all experiments report" `Slow test_all_experiments_report;
          Alcotest.test_case "table1 shape" `Slow test_table1_shape;
          Alcotest.test_case "span invariants" `Slow test_study_invariants;
          Alcotest.test_case "vulnerability windows" `Slow test_vuln_windows;
          Alcotest.test_case "service groups" `Slow test_service_groups;
          Alcotest.test_case "mitigations monotone" `Slow test_mitigations_monotone;
          Alcotest.test_case "target analysis" `Slow test_target_analysis;
        ] );
      ( "posture",
        [ Alcotest.test_case "grades" `Slow test_posture_grades ] );
      ( "attacks",
        [
          Alcotest.test_case "succeed with shortcuts" `Quick test_attacks_succeed_with_shortcuts;
          Alcotest.test_case "fail without shortcuts" `Quick test_attacks_fail_without_shortcuts;
          Alcotest.test_case "dhe variant" `Quick test_attack_dhe_variant;
          Alcotest.test_case "x25519 variant" `Quick test_attack_x25519_variant;
        ] );
    ]
