(* Union-find over string keys with path compression and union by size.
   Two transitive-closure jobs share it: the analysis grows service
   groups from observed edges (if a's session resumes on b and b's on c,
   then a, b and c share state — Section 5.1), and the parallel campaign
   runner shards the world along the same server-state edges so no two
   workers ever touch one shared secret. It lives in the scanner library
   (the lowest layer that needs it); {!Analysis.Union_find} re-exports
   it. *)

type t = {
  parent : (string, string) Hashtbl.t;
  size : (string, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 1024; size = Hashtbl.create 1024 }

let add t x =
  if not (Hashtbl.mem t.parent x) then begin
    Hashtbl.replace t.parent x x;
    Hashtbl.replace t.size x 1
  end

let rec find t x =
  add t x;
  let p = Hashtbl.find t.parent x in
  if String.equal p x then x
  else begin
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if not (String.equal ra rb) then begin
    let sa = Hashtbl.find t.size ra and sb = Hashtbl.find t.size rb in
    let big, small = if sa >= sb then (ra, rb) else (rb, ra) in
    Hashtbl.replace t.parent small big;
    Hashtbl.replace t.size big (sa + sb)
  end

let connected t a b = String.equal (find t a) (find t b)

(* All groups as lists of members, largest first. *)
let groups t =
  let by_root = Hashtbl.create 256 in
  Hashtbl.iter
    (fun x _ ->
      let root = find t x in
      Hashtbl.replace by_root root (x :: Option.value ~default:[] (Hashtbl.find_opt by_root root)))
    t.parent;
  Hashtbl.fold (fun _ members acc -> members :: acc) by_root []
  |> List.sort (fun a b -> compare (List.length b) (List.length a))
