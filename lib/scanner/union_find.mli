(** Union-find over string keys (path compression, union by size), used
    to grow service groups transitively: if a's session resumes on b and
    b's on c, then a, b and c share state (Section 5.1). *)

type t

val create : unit -> t
val add : t -> string -> unit
val find : t -> string -> string
val union : t -> string -> string -> unit
val connected : t -> string -> string -> bool

val groups : t -> string list list
(** All groups (every added element appears exactly once), largest
    first. *)
