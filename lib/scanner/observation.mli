(** Typed observation records produced by the scans — the analog of the
    ZGrab output rows the paper's analyses consume — with a CSV
    round-trip for archiving. *)

type resumption = No_resumption | By_session_id | By_ticket

val resumption_to_string : resumption -> string
val resumption_of_string : string -> resumption option

(** One TLS connection attempt. *)
type conn = {
  time : int;  (** epoch seconds of the attempt *)
  domain : string;
  ok : bool;
  resumed : resumption;
  cipher : Tls.Types.cipher_suite option;
  session_id_set : bool;
  session_id : string;  (** hex; [""] if none *)
  trusted : bool;
  stek_id : string option;  (** hex STEK key name from the issued ticket *)
  ticket_hint : int option;
  dhe_value : string option;  (** hex server DHE public value *)
  ecdhe_value : string option;
  failure : Faults.Fault.t option;
      (** why the connection failed; [None] when [ok] *)
  attempts : int;  (** connection attempts this observation cost (>= 1) *)
  region : string;  (** scan vantage the observation was made from *)
}

val failed_conn :
  ?failure:Faults.Fault.t ->
  ?attempts:int ->
  ?region:string ->
  time:int ->
  domain:string ->
  unit ->
  conn
(** [failure] defaults to [Unknown], [attempts] to 1, [region] to
    {!Simnet.Region.default_name}. *)

val csv_header : string

val csv_header_v14 : string
(** Pre-region header (no region column); rows under it load with the
    default region. *)

val csv_header_legacy : string
(** Pre-fault-classification header (no failure/attempts/region
    columns); all three widths load, a missing failure column on a
    failed row maps to [Unknown]. *)

val to_csv_row : conn -> string
val of_csv_row : string -> conn option
val write_csv : string -> conn list -> unit
val read_csv : string -> (conn list, string) result
