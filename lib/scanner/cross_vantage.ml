(* Cross-regional scanning: probe the same domain-days from several
   vantage points and archive the per-region observation rows.

   The paper scanned from one vantage; this extension (after Alashwali
   et al.'s HTTPS-inconsistency measurements) builds one world per
   region — worlds are pure functions of [(config, region)], so every
   region serves the same population and differs only where a
   regionally-inconsistent operator applies a local override — and runs
   the same daily sweep schedule against each. Each vantage probes on
   its own DRBG streams (seeded by region name), so adding or removing
   a region never perturbs another region's observations.

   Regions are fully independent of one another, which makes the
   parallel path trivially jobs-invariant: workers compute whole
   regions and the results are assembled in the configured region
   order, so the archive is byte-identical at any [--jobs]. *)

type config = {
  base : Simnet.World.config;
      (* base world config; its [region] field is overridden per vantage *)
  regions : Simnet.Region.t list;
  days : int;
}

type t = {
  regions : Simnet.Region.t list;
  days : int;
  rows : Observation.conn list; (* region-major, then day, then sweep *)
}

let rows t = t.rows
let regions t = t.regions

(* The daily sweep schedule of {!Daily_scan}: the default sweep (all
   suites, tickets on) at 00:30 study time, the DHE-only sweep at 02:00.
   The DHE sweep is what makes weak-group misconfigurations observable —
   the default sweep almost always negotiates ECDHE. *)
let scan_region ~(base : Simnet.World.config) ~days region =
  let world = Simnet.World.create ~config:{ base with Simnet.World.region } () in
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  let default_probe = Probe.create ~seed:("vantage:" ^ region) world in
  let dhe_probe = Probe.dhe_only world ~seed:("vantage-dhe:" ^ region) in
  let domains = Simnet.World.domains world in
  let out = ref [] in
  for day = 0 to days - 1 do
    Simnet.Clock.set clock (start + (day * Simnet.Clock.day) + (30 * Simnet.Clock.minute));
    Array.iter
      (fun d ->
        if Simnet.World.in_list_on_day d ~day then begin
          let o, _ = Probe.connect default_probe ~domain:(Simnet.World.domain_name d) in
          out := o :: !out
        end)
      domains;
    Simnet.Clock.set clock (start + (day * Simnet.Clock.day) + (2 * Simnet.Clock.hour));
    Array.iter
      (fun d ->
        if Simnet.World.in_list_on_day d ~day then begin
          let o, _ = Probe.connect dhe_probe ~domain:(Simnet.World.domain_name d) in
          out := o :: !out
        end)
      domains
  done;
  Simnet.Clock.set clock (start + (days * Simnet.Clock.day));
  List.rev !out

let validate (config : config) =
  if config.days < 1 then invalid_arg "Cross_vantage.run: days must be >= 1";
  if config.regions = [] then invalid_arg "Cross_vantage.run: no regions";
  List.iter
    (fun r ->
      if not (Simnet.Region.is_valid r) then
        invalid_arg
          (Printf.sprintf "Cross_vantage.run: unknown region %S (known: %s)" r
             Simnet.Region.names))
    config.regions

let run ?(jobs = 1) (config : config) =
  validate config;
  let regions = Array.of_list config.regions in
  let n = Array.length regions in
  let slots = Array.make n [] in
  let fill i = slots.(i) <- scan_region ~base:config.base ~days:config.days regions.(i) in
  let workers = min (max jobs 1) n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      fill i
    done
  else
    (* Round-robin region assignment; each worker owns its slots, and
       region scans share no mutable state, so the assembled result is
       independent of scheduling. *)
    Array.init workers (fun k ->
        Domain.spawn (fun () ->
            let i = ref k in
            while !i < n do
              fill !i;
              i := !i + workers
            done))
    |> Array.iter Domain.join;
  {
    regions = config.regions;
    days = config.days;
    rows = List.concat (Array.to_list slots);
  }

let save t path = Observation.write_csv path t.rows
let load path = Observation.read_csv path
