(* Operator-sharded parallel campaign runner.

   The longitudinal campaign is embarrassingly parallel *between*
   clusters of domains that share no TLS secret state, and strictly
   sequential *within* such a cluster: two probes racing on one
   endpoint's session cache (or on one STEK manager's rotation clock)
   would both corrupt the simulation's memory-safety story and break
   determinism. So the world is cut along its shared-state edges first:

   - every HTTPS domain contributes its {!Simnet.World.domain_shard_keys}
     (endpoint identity — which subsumes session-cache, kex-cache and
     farm-pod sharing — plus the key-material identity of every STEK
     manager its farm uses);
   - keys are unioned through {!Union_find}, so domains connected
     transitively (a.com shares an endpoint with b.com, whose operator
     shares STEKs with c.com's) land in one connectivity component;
   - components are packed into shards of balanced *estimated probe
     cost* (longest-processing-time first-fit into ~[n/target] bins),
     not balanced member count: an HTTPS domain-day costs ~60x a
     no-HTTPS one, so count-balanced shards hide an extreme work
     imbalance that made the parallel runner slower than serial.

   Shard ids are assigned heaviest-first. Combined with the atomic
   fetch-and-add queue in [run] — idle workers keep claiming the next
   unstarted shard until the queue is dry — that yields an LPT
   work-stealing schedule: no worker ever sits idle while a shard is
   unstarted, and the heaviest shards start earliest, so a straggler
   cannot serialize the tail of the run.

   Each shard then runs the ordinary {!Daily_scan.scan_stream} loop with
   private probes on a private {!Simnet.Clock}. Two determinism
   properties fall out, and the test suite checks both:

   - shard composition and per-shard probe seeds depend only on the
     world and [target], never on the worker count, so a 1-worker and an
     8-worker run of the same world produce byte-identical series;
   - each shard's result lands in a slot owned by exactly one worker, so
     the merge (by rank, then name) needs no synchronization beyond
     [Domain.join].

   Note the parallel campaign is *not* byte-identical to the serial
   {!Daily_scan.run}: per-shard probes draw from per-shard DRBG streams
   (seeded by shard id), where the serial scan threads two probes through
   every domain. Both are valid campaigns over the same world; each is
   reproducible on its own terms. *)

type shard = {
  shard_id : int;
  members : Simnet.World.domain array; (* in world (rank) order *)
  weight : float; (* summed estimated probe cost of the members *)
  max_component : float; (* heaviest unsplittable component packed in *)
}

(* Per-domain probe cost estimate driving the packing. An HTTPS
   domain-day runs two full handshakes (key exchange, ticket mint,
   chain verification); a no-HTTPS domain-day is two refused connects.
   Measured on the bench worlds these differ by ~60x; the constant only
   needs the right order of magnitude for the bins to balance, not
   calibration. *)
let https_cost = 64.0
let estimated_cost d = if Simnet.World.domain_has_https d then https_cost else 1.0

(* Group domains into connectivity components via their shared-state
   keys, then pack components into ~[n/target] shards of balanced
   estimated cost: components sorted heaviest first (ties by lowest
   member index), each placed into the currently lightest bin (ties by
   lowest bin index). Wholly deterministic in the world alone —
   independent of any worker count — and the sort+first-fit gives the
   classic LPT bound: a bin exceeds 2x the mean weight only if it holds
   a single component heavier than the mean, which no packing could
   split. Bins are finally renumbered heaviest-first so the run queue
   drains them in LPT order. *)
let shards ?(target = 128) world =
  if target <= 0 then invalid_arg "Parallel_campaign.shards: target must be positive";
  let domains = Simnet.World.domains world in
  let n = Array.length domains in
  let uf = Union_find.create () in
  let keys =
    Array.map
      (fun d ->
        let ks = Simnet.World.domain_shard_keys world d in
        (match ks with
        | first :: rest -> List.iter (fun k -> Union_find.union uf first k) rest
        | [] -> ());
        ks)
      domains
  in
  (* Component representative per domain; no-HTTPS domains have no keys
     and are free agents packable anywhere. *)
  let repr i = match keys.(i) with [] -> None | k :: _ -> Some (Union_find.find uf k) in
  (* Bucket domain indices by component, keeping world order within each;
     keyless domains are singleton components. *)
  let comp_order = ref [] in
  let comp_members : (string, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  let singletons = ref [] in
  Array.iteri
    (fun i _ ->
      match repr i with
      | None -> singletons := i :: !singletons
      | Some r -> (
          match Hashtbl.find_opt comp_members r with
          | Some l -> l := i :: !l
          | None ->
              Hashtbl.add comp_members r (ref [ i ]);
              comp_order := r :: !comp_order))
    domains;
  let components =
    List.rev_map (fun r -> List.rev !(Hashtbl.find comp_members r)) !comp_order
    @ List.rev_map (fun i -> [ i ]) !singletons
  in
  let comps =
    List.map
      (fun c ->
        let w = List.fold_left (fun a i -> a +. estimated_cost domains.(i)) 0.0 c in
        (c, w, List.fold_left min max_int c))
      components
    |> Array.of_list
  in
  Array.sort
    (fun (_, wa, ia) (_, wb, ib) -> if wa <> wb then compare wb wa else compare ia ib)
    comps;
  let n_bins = if n = 0 then 0 else min (max 1 ((n + target - 1) / target)) (Array.length comps) in
  let bin_members = Array.make (max n_bins 1) [] in
  let bin_weight = Array.make (max n_bins 1) 0.0 in
  let bin_maxcomp = Array.make (max n_bins 1) 0.0 in
  Array.iter
    (fun (c, w, _) ->
      let best = ref 0 in
      for b = 1 to n_bins - 1 do
        if bin_weight.(b) < bin_weight.(!best) then best := b
      done;
      bin_members.(!best) <- List.rev_append c bin_members.(!best);
      bin_weight.(!best) <- bin_weight.(!best) +. w;
      if w > bin_maxcomp.(!best) then bin_maxcomp.(!best) <- w)
    comps;
  let order = Array.init n_bins Fun.id in
  let bin_min = Array.map (List.fold_left min max_int) bin_members in
  Array.sort
    (fun a b ->
      if bin_weight.(a) <> bin_weight.(b) then compare bin_weight.(b) bin_weight.(a)
      else compare bin_min.(a) bin_min.(b))
    order;
  Array.mapi
    (fun shard_id b ->
      let idxs = List.sort compare bin_members.(b) in
      {
        shard_id;
        members = Array.of_list (List.map (fun i -> domains.(i)) idxs);
        weight = bin_weight.(b);
        max_component = bin_maxcomp.(b);
      })
    order

let stream_name shard_id = Printf.sprintf "shard-%04d" shard_id

let run ?jobs ?progress ?injector ?retry ?funnel ?checkpoint ?sink ?(retain_rows = true)
    ?(supervise = Durable.Supervisor.default) ?chaos ?obs world ~days () =
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  let day0 = start / Simnet.Clock.day in
  let shard_arr = shards world in
  let n_shards = Array.length shard_arr in
  let jobs =
    let requested =
      match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
    in
    max 1 (min requested n_shards)
  in
  let results = Array.make n_shards [||] in
  (* Loss telemetry: one private funnel per shard (written only by the
     worker that owns the shard), absorbed into the caller's funnel
     after the join. The injector itself is shared — its decisions are
     pure hashes of (seed, endpoint, time, attempt), so concurrent
     queries from different workers are race-free and their answers
     independent of scheduling. *)
  let funnels = Array.init n_shards (fun _ -> Faults.Funnel.create ()) in
  (* Telemetry mirrors the funnel discipline: each shard attempt records
     into a private recorder (so a crashed attempt's partial counts die
     with it), and successful shards merge into the caller's recorder
     after the join, in shard order. Counters and histograms sum and
     gauges max — commutative and associative — so the merged registry
     is independent of worker count and scheduling. *)
  let recorders : Obs.Recorder.t option array = Array.make n_shards None in
  (* A shard abandoned after exhausting its supervised restarts degrades
     into ground truth minus measurements: its domains stay present on
     the days the list carries them, every probe-derived field is empty,
     and the funnel books two lost probes (default + DHE sweep) per
     present domain-day under [Worker_crash] — so a degraded campaign is
     visible in the §3-style loss table instead of silently thinner. *)
  let abandon (s : shard) =
    let degraded_day d day =
      {
        Daily_scan.day;
        present = Simnet.World.in_list_on_day d ~day;
        default_ok = false;
        stek_id = None;
        ticket_hint = None;
        ecdhe_value = None;
        dhe_ok = false;
        dhe_value = None;
      }
    in
    results.(s.shard_id) <-
      Array.map
        (fun d ->
          {
            Daily_scan.domain = Simnet.World.domain_name d;
            rank = Simnet.World.domain_rank d;
            weight = Simnet.World.domain_weight d;
            trusted = false;
            stable = Simnet.World.domain_stable d;
            days =
              (if retain_rows then Array.init days (degraded_day d) else [||]);
          })
        s.members;
    (* A degraded shard must still seal its row stream, or the streamed
       archive of an otherwise-successful campaign would be unloadable. *)
    Option.iter
      (fun sk ->
        let stream = Stream_sink.stream sk (stream_name s.shard_id) in
        let rows = Array.make (Array.length s.members) None in
        for day = 0 to days - 1 do
          Array.iteri
            (fun i d ->
              rows.(i) <-
                (if Simnet.World.in_list_on_day d ~day then Some (degraded_day d day)
                 else None))
            s.members;
          Daily_scan.stream_day stream ~day ~rows
        done;
        Daily_scan.stream_finish stream ~trusted:(fun _ -> false) ~domains:s.members)
      sink;
    let f = Faults.Funnel.create () in
    for day = 0 to days - 1 do
      Array.iter
        (fun d ->
          if Simnet.World.in_list_on_day d ~day then begin
            Faults.Funnel.record_failure f ~day:(day0 + day) ~attempts:0
              Faults.Fault.Worker_crash;
            Faults.Funnel.record_failure f ~day:(day0 + day) ~attempts:0
              Faults.Fault.Worker_crash
          end)
        s.members
    done;
    funnels.(s.shard_id) <- f
  in
  (* One supervised attempt at a shard. Private clock and probes: the
     shard replays the standard daily sweep schedule without touching the
     world clock or any state outside its connectivity component. Seeds
     derive from the shard id, so they are stable for a fixed world
     regardless of [jobs]. The funnel is fresh per attempt so a crashed
     attempt's partial counts are discarded with it.

     Only attempt 0 reads/writes the shard's checkpoint stream: an
     in-process retry runs against world state already dirtied by the
     crashed attempt, so its days would fail the replay byte-compare by
     construction. The snapshots already on disk stay valid for a
     process-level [resume], which starts from a clean world. *)
  let attempt_shard (s : shard) attempt =
    let clock = Simnet.Clock.create ~start () in
    let shard_funnel = Faults.Funnel.create () in
    let shard_obs =
      Option.map (fun o -> Obs.Recorder.create ~wall:(Obs.Recorder.wall_enabled o) ()) obs
    in
    let default_probe =
      Probe.create ~clock ?injector ?retry ~funnel:shard_funnel ?obs:shard_obs
        ~seed:(Printf.sprintf "daily-default:shard:%d" s.shard_id) world
    in
    let dhe_probe =
      Probe.dhe_only ~clock ?injector ?retry ~funnel:shard_funnel ?obs:shard_obs world
        ~seed:(Printf.sprintf "daily-dhe:shard:%d" s.shard_id)
    in
    let stream =
      if attempt = 0 then
        Option.map (fun store -> Durable.Checkpoint.stream store (stream_name s.shard_id)) checkpoint
      else None
    in
    (* The row stream, unlike the checkpoint stream, is opened on every
       attempt: opening truncates the spool, so a retry discards the
       crashed attempt's partial rows and re-emits its own. *)
    let sink_stream = Option.map (fun sk -> Stream_sink.stream sk (stream_name s.shard_id)) sink in
    let progress day =
      (match chaos with Some c -> c ~shard:s.shard_id ~attempt ~day | None -> ());
      match progress with Some p -> p ~shard:s.shard_id ~day | None -> ()
    in
    let series =
      (* The shard span covers the shard's whole campaign on its private
         clock — [days] virtual days of simulated duration, plus the
         shard's host-clock cost when wall timing is on. *)
      Obs.Recorder.span_opt shard_obs ~name:"campaign.shard"
        ~attrs:[ ("shard", string_of_int s.shard_id) ]
        ~now:(fun () -> Simnet.Clock.now clock)
        (fun () ->
          Daily_scan.scan_stream ?checkpoint:stream ?sink:sink_stream ~retain:retain_rows
            ?obs:shard_obs ~clock ~default_probe ~dhe_probe ~domains:s.members ~days ~progress
            ())
    in
    (series, shard_funnel, shard_obs)
  in
  let run_shard (s : shard) =
    let on_crash ~attempt e =
      Printf.eprintf "campaign: shard %d crashed on attempt %d: %s\n%!" s.shard_id attempt
        (Printexc.to_string e)
    in
    match Durable.Supervisor.supervised ~on_crash supervise ~attempt:(attempt_shard s) with
    | Ok (series, shard_funnel, shard_obs) ->
        results.(s.shard_id) <- series;
        funnels.(s.shard_id) <- shard_funnel;
        recorders.(s.shard_id) <- shard_obs
    | Error _ -> abandon s
  in
  (* Fixed worker pool over an atomic shard queue. Each slot of [results]
     is written by exactly one worker (the one that claimed that shard),
     and [Domain.join] publishes the writes before the merge reads them.
     With [jobs = 1] — including the [Domain.recommended_domain_count ()
     = 1] fallback — no domain is spawned and the main domain drains the
     queue sequentially. *)
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_shards then begin
        run_shard shard_arr.(i);
        loop ()
      end
    in
    loop ()
  in
  let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  (* Funnel merge in shard order: commutative sums, but a fixed order
     keeps even intermediate states reproducible. *)
  Option.iter (fun f -> Array.iter (Faults.Funnel.absorb f) funnels) funnel;
  Option.iter
    (fun o ->
      Obs.Recorder.gauge_max o "campaign.days" days;
      Array.iter (function Some r -> Obs.Recorder.merge o r | None -> ()) recorders)
    obs;
  (* The serial campaign leaves the world clock at the campaign's end;
     keep that contract so downstream experiments see the same time. *)
  Simnet.Clock.set clock (start + (days * Simnet.Clock.day));
  let series = Array.concat (Array.to_list results) in
  Array.sort
    (fun (a : Daily_scan.domain_series) b -> compare (a.rank, a.domain) (b.rank, b.domain))
    series;
  { Daily_scan.start_day = start / Simnet.Clock.day; n_days = days; series }
