(* Directory-backed streaming observation sink.

   A campaign archive normally materializes as one CSV written at the
   end of the run, which means every domain-day row lives in memory
   until then — at --domains 100000 that matrix dominates RSS. A stream
   sink inverts the flow: the scanner appends each day's rows the moment
   the day finishes, into one append-only spool per scan stream
   ("serial" for the serial runner, "shard-NNNN" for each parallel
   shard — the same stream names the checkpoint store uses), and nothing
   row-shaped is retained in memory.

   Layout:

     <dir>/manifest          Atomic_io frame, key=value lines
     <dir>/rows-serial       Durable.Spool of day blocks + trailer
     <dir>/rows-shard-0000   (parallel: one spool per shard)
     ...

   Each spool block is an opaque payload produced by the scanner
   (Daily_scan owns the row codec; this module only frames and files
   blocks). The last block of a finished stream is a trailer carrying
   per-domain facts that are only known at campaign end (the trust
   verdicts); a spool without its trailer or footer is an interrupted
   run and readers refuse it until a checkpoint resume completes it.

   Determinism contract: spools are truncated on open, and a checkpoint
   resume replays every completed day, so the streamed archive is
   byte-identical whether the run was interrupted or not, and — because
   stream names and day payloads depend only on the world and the shard
   partition — identical at any --jobs. *)

let manifest_file = "manifest"
let schema = "tlsharm-stream/1"

type t = { dir : string; rows : int Atomic.t }

type stream = {
  sink : t;
  spool : Durable.Spool.writer;
  mutable finished : bool;
}

let spool_path dir name = Filename.concat dir ("rows-" ^ name)

let encode_manifest kvs =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      if String.contains k '=' || String.contains k '\n' || String.contains v '\n' then
        invalid_arg "Stream_sink: manifest keys/values must be single-line, '='-free keys";
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    kvs;
  Buffer.contents b

let decode_manifest content =
  String.split_on_char '\n' content
  |> List.filter (fun l -> not (String.equal l ""))
  |> List.map (fun l ->
         match String.index_opt l '=' with
         | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
         | None -> (l, ""))

let create ~dir ~manifest =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith (dir ^ " exists and is not a directory");
    Durable.Atomic_io.write (Filename.concat dir manifest_file)
      (encode_manifest (("schema", schema) :: manifest));
    Ok { dir; rows = Atomic.make 0 }
  with
  | Failure e -> Error e
  | Sys_error e -> Error e

let dir t = t.dir

let stream t name =
  { sink = t; spool = Durable.Spool.create (spool_path t.dir name); finished = false }

let append_day stream ~rows payload =
  if stream.finished then invalid_arg "Stream_sink.append_day: stream already finished";
  Durable.Spool.add_block stream.spool payload;
  ignore (Atomic.fetch_and_add stream.sink.rows rows)

let finish stream ~trailer =
  if not stream.finished then begin
    Durable.Spool.add_block stream.spool trailer;
    Durable.Spool.close stream.spool;
    stream.finished <- true
  end

let rows_written t = Atomic.get t.rows

let manifest ~dir =
  match Durable.Atomic_io.read (Filename.concat dir manifest_file) with
  | Error e -> Error (Durable.Atomic_io.error_to_string ~what:"stream manifest" e)
  | Ok content -> (
      let kvs = decode_manifest content in
      match List.assoc_opt "schema" kvs with
      | Some s when String.equal s schema -> Ok kvs
      | Some s -> Error (Printf.sprintf "stream manifest: unsupported schema %S" s)
      | None -> Error "stream manifest: missing schema field")

let stream_names ~dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun f ->
             if String.length f > 5 && String.equal (String.sub f 0 5) "rows-" then
               Some (String.sub f 5 (String.length f - 5))
             else None)
      |> List.sort String.compare
      |> Result.ok

let read_stream ~dir name =
  match Durable.Spool.read (spool_path dir name) with
  | Error e -> Error e
  | Ok (_, false) ->
      Error
        (Printf.sprintf
           "stream %S is incomplete (campaign interrupted?) — resume it from its checkpoint \
            to finish the spool"
           name)
  | Ok ([], true) -> Error (Printf.sprintf "stream %S is empty" name)
  | Ok (blocks, true) ->
      (* The trailer is always the last block of a complete stream. *)
      let rec split acc = function
        | [ trailer ] -> (List.rev acc, trailer)
        | b :: rest -> split (b :: acc) rest
        | [] -> assert false
      in
      Ok (split [] blocks)
