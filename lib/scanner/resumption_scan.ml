(* The resumption-lifetime experiments of Sections 4.1 and 4.2
   (Figures 1 and 2): perform an initial handshake with every domain,
   attempt to resume one second later, then every five minutes until the
   server declines or 24 hours have passed.

   In ticket mode the scanner keeps offering the *first* ticket even if
   the server reissues, exactly as the paper does; in session-ID mode it
   keeps offering the original session. All domains advance in lockstep
   so the shared virtual clock moves exactly like the real experiment's
   wall clock. *)

type mode = Session_ids | Tickets

type domain_result = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;
  stable : bool; (* in the Top Million list every day *)
  https : bool; (* initial connection succeeded *)
  supports : bool; (* set a session ID / issued a ticket *)
  resumed_at_1s : bool;
  max_honored : int option; (* largest delay (seconds) that still resumed *)
  hint : int option; (* advertised ticket lifetime hint *)
}

type pending = {
  p_domain : string;
  p_rank : int;
  p_weight : float;
  p_trusted : bool;
  p_offer : Tls.Client.offer;
  mutable p_max : int option;
  mutable p_alive : bool;
}

let interval = 5 * Simnet.Clock.minute

let run probe ~mode ?(max_delay = 24 * Simnet.Clock.hour) ?(domains = None) () =
  let world = probe.Probe.world in
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  let targets =
    match domains with
    | Some l -> l
    | None -> Array.to_list (Simnet.World.domains world)
  in
  (* Initial handshakes. *)
  let initial =
    List.map
      (fun d ->
        let domain = Simnet.World.domain_name d in
        let obs, outcome = Probe.connect probe ~domain in
        (d, obs, Probe.resumable_of_outcome outcome))
      targets
  in
  (* Which domains support the mechanism, and with what offer. *)
  let make_result d (obs : Observation.conn) ~supports ~resumed_at_1s ~max_honored ~hint =
    {
      domain = Simnet.World.domain_name d;
      rank = Simnet.World.domain_rank d;
      weight = Simnet.World.domain_weight d;
      trusted = obs.Observation.trusted;
      stable = Simnet.World.domain_stable d;
      https = obs.Observation.ok;
      supports;
      resumed_at_1s;
      max_honored;
      hint;
    }
  in
  let pendings = ref [] in
  let finished = ref [] in
  List.iter
    (fun (d, (obs : Observation.conn), resumable) ->
      let supports, offer, hint =
        match mode with
        | Session_ids ->
            (obs.Observation.ok && obs.Observation.session_id_set, Probe.offer_session_id resumable, None)
        | Tickets ->
            ( obs.Observation.ok && obs.Observation.stek_id <> None,
              Probe.offer_ticket resumable,
              obs.Observation.ticket_hint )
      in
      match (supports, offer) with
      | true, Some offer ->
          pendings :=
            {
              p_domain = Simnet.World.domain_name d;
              p_rank = Simnet.World.domain_rank d;
              p_weight = Simnet.World.domain_weight d;
              p_trusted = obs.Observation.trusted;
              p_offer = offer;
              p_max = None;
              p_alive = true;
            }
            :: !pendings;
          finished :=
            (d, obs, hint) :: !finished (* result assembled at the end from pending state *)
      | _ ->
          finished := (d, obs, hint) :: !finished;
          ignore offer)
    initial;
  let pending_by_name = Hashtbl.create 1024 in
  List.iter (fun p -> Hashtbl.replace pending_by_name p.p_domain p) !pendings;
  (* One probe round at the current clock; [delay] is seconds since the
     initial handshake. Returns the still-alive sublist so late rounds
     are O(alive) — over 24 virtual hours that is 288 rounds, and most
     servers decline within the first few, so rescanning the full pending
     list (dead entries included) every 5 minutes dominated the walk.
     [List.filter] keeps the original iteration order, so the probe's RNG
     consumption matches the full-list sweep exactly. *)
  let probe_round alive delay =
    List.filter
      (fun p ->
        let obs, _ = Probe.connect probe ~domain:p.p_domain ~offer:p.p_offer in
        (match obs.Observation.resumed with
        | Observation.By_session_id when mode = Session_ids -> p.p_max <- Some delay
        | Observation.By_ticket when mode = Tickets -> p.p_max <- Some delay
        | _ ->
            (* A transient failure also ends the walk, matching the
               paper's methodology ("until the site failed to resume"). *)
            p.p_alive <- false);
        p.p_alive)
      alive
  in
  (* +1 second, then every five minutes. *)
  Simnet.Clock.advance clock 1;
  let alive = ref (probe_round !pendings 1) in
  let next = ref interval in
  while !next <= max_delay && !alive <> [] do
    Simnet.Clock.set clock (start + !next);
    alive := probe_round !alive !next;
    next := !next + interval
  done;
  List.rev_map
    (fun (d, obs, hint) ->
      match Hashtbl.find_opt pending_by_name (Simnet.World.domain_name d) with
      | None ->
          let supports =
            match mode with
            | Session_ids -> obs.Observation.ok && obs.Observation.session_id_set
            | Tickets -> obs.Observation.ok && obs.Observation.stek_id <> None
          in
          make_result d obs ~supports ~resumed_at_1s:false ~max_honored:None ~hint
      | Some p ->
          make_result d obs ~supports:true
            ~resumed_at_1s:(p.p_max <> None)
            ~max_honored:p.p_max ~hint)
    !finished
