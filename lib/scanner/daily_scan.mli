(** The longitudinal campaign of Sections 4.3-4.4: daily scans over nine
    weeks recording STEK identifiers and (EC)DHE server values — a
    default (all-suites, tickets-on) sweep and a DHE-only sweep per day.
    Domains absent from that day's list are skipped, so churn shows up in
    the data. Campaigns serialize to CSV (the scans.io analog). *)

type day_record = {
  day : int;  (** day index from campaign start *)
  present : bool;
  default_ok : bool;
  stek_id : string option;
  ticket_hint : int option;
  ecdhe_value : string option;
  dhe_ok : bool;
  dhe_value : string option;
}

type domain_series = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool;  (** ever presented a trusted chain *)
  stable : bool;
  days : day_record array;
}

type t = { start_day : int; n_days : int; series : domain_series array }

val run :
  ?injector:Faults.Injector.t ->
  ?retry:Faults.Retry.policy ->
  ?funnel:Faults.Funnel.t ->
  ?checkpoint:Durable.Checkpoint.t ->
  ?sink:Stream_sink.t ->
  ?retain_rows:bool ->
  ?obs:Obs.Recorder.t ->
  Simnet.World.t ->
  days:int ->
  ?progress:(int -> unit) ->
  unit ->
  t
(** Runs the campaign, advancing the world's clock day by day; leaves the
    clock at the campaign's end. [injector]/[retry] route every probe
    through the fault layer; [funnel] receives the per-day loss
    telemetry of both sweeps (recorded into a campaign-private funnel
    and absorbed at the end). [checkpoint] snapshots each completed day
    into the store's ["serial"] stream and resumes from the longest
    valid snapshot prefix — see {!scan_stream}. [sink] streams each
    day's rows into the sink's ["serial"] stream as the day completes;
    with [retain_rows:false] (only sensible alongside a sink) the
    observation matrix is never held in memory and the returned [t]
    carries per-domain metadata with empty [days] arrays — recover the
    rows with {!load_stream}. [obs] receives probe counters, [scan.day]
    spans and campaign gauges; it never perturbs the scan, so the
    archive is byte-identical with it absent. *)

val run_subset :
  ?obs:Obs.Recorder.t ->
  clock:Simnet.Clock.t ->
  default_probe:Probe.t ->
  dhe_probe:Probe.t ->
  domains:Simnet.World.domain array ->
  days:int ->
  ?progress:(int -> unit) ->
  unit ->
  domain_series array
(** The sequential inner loop of {!run}, parameterized so
    {!Parallel_campaign} can drive a connectivity-closed subset of
    domains on a shard-private clock. Both probes must read [clock]
    (create them with [?clock]); it is advanced through each scan day and
    left at the campaign's end. Equivalent to {!scan_stream} without a
    checkpoint stream. *)

val scan_stream :
  ?checkpoint:Durable.Checkpoint.stream ->
  ?sink:Stream_sink.stream ->
  ?retain:bool ->
  ?obs:Obs.Recorder.t ->
  clock:Simnet.Clock.t ->
  default_probe:Probe.t ->
  dhe_probe:Probe.t ->
  domains:Simnet.World.domain array ->
  days:int ->
  ?progress:(int -> unit) ->
  unit ->
  domain_series array
(** {!run_subset} with crash recovery and streaming. Both probes must
    share one funnel. With [checkpoint], every completed day is
    snapshotted (clock, probe DRBG states, trust cache, funnel, observed
    rows) into the stream. On entry, the longest valid snapshot prefix
    is loaded: a full prefix restores the result without probing; a
    partial one re-runs the scan from day 0, verifying each replayed day
    byte-for-byte against its snapshot (raising
    {!Durable.Checkpoint.Mismatch}) before scanning the remaining days
    fresh. Corrupt or truncated snapshots end the prefix — resume falls
    back to the last day that verifies.

    With [sink], each day's rows (scanned or checkpoint-restored — so
    resumed runs stream byte-identical spools) are appended as the day
    completes, and the stream's trailer is written at the end. With
    [retain ~ false] no [n * days] row matrix is allocated and the
    returned series have empty [days] arrays. *)

val csv_header : string

val save : t -> string -> unit
(** Writes the campaign CSV through an internal buffer (large campaigns
    are hundreds of thousands of rows); weights are formatted so they
    round-trip exactly through {!load}. *)

val load : string -> (t, string) result
(** [Error] on malformed rows, metadata declaring a non-positive
    [n_days], or rows whose day index falls outside the declared range —
    a file that contradicts its own metadata is reported, not silently
    repaired. *)

val stream_day : Stream_sink.stream -> day:int -> rows:day_record option array -> unit
(** Append one day's rows (member order; [None] = absent that day) to a
    stream. Exposed for {!Parallel_campaign}, whose abandoned-shard path
    must emit degraded rows without a probe in hand. *)

val stream_finish : Stream_sink.stream -> trusted:(string -> bool) -> domains:Simnet.World.domain array -> unit
(** Write the end-of-stream trailer ([trusted] is consulted per domain
    name) and seal the spool. *)

val load_stream : string -> (t, string) result
(** Reassemble a campaign from a {!Stream_sink} directory written by a
    streamed run. Series are sorted by (rank, domain) — the order both
    the serial and parallel runners produce — so {!save} on the result
    is byte-identical to {!save} on the same campaign run with rows
    retained in memory. An interrupted stream (spool without footer or
    trailer) is an [Error] naming the stream; finish it by resuming the
    campaign from its checkpoint. *)
