(* The longitudinal campaign of Sections 4.3 and 4.4: connect to every
   domain daily for nine weeks, recording the STEK identifier from the
   issued ticket and the server's (EC)DHE public values. Two sweeps per
   day, mirroring the paper's data sources:

   - the default sweep (all suites offered, ticket extension on) yields
     the STEK identifier, the lifetime hint and — because almost every
     server prefers ECDHE — the ECDHE server value (the paper's
     ECDHE-priority scans);
   - a DHE-only sweep (the paper used Censys' daily DHE scans) yields the
     DHE server value, or nothing for servers without DHE.

   Domains absent from that day's Top Million list are skipped, so list
   churn shows up in the data exactly as it did for the paper. *)

type day_record = {
  day : int; (* day index from study start *)
  present : bool; (* domain was in the list that day *)
  default_ok : bool;
  stek_id : string option;
  ticket_hint : int option;
  ecdhe_value : string option;
  dhe_ok : bool;
  dhe_value : string option;
}

type domain_series = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool; (* ever presented a trusted chain *)
  stable : bool; (* in the list every day *)
  days : day_record array;
}

type t = {
  start_day : int;
  n_days : int;
  series : domain_series array;
}

(* --- Persistence -----------------------------------------------------------
   Campaigns serialize to a flat CSV (one row per domain-day) so they can
   be archived and re-analyzed without re-running nine weeks of scans —
   the project's analog of the paper publishing its data on scans.io. *)

let csv_header =
  "domain,rank,weight,trusted,stable,day,present,default_ok,stek_id,ticket_hint,ecdhe_value,dhe_ok,dhe_value"

let opt_str = function None -> "" | Some s -> s

let day_row ~(series : domain_series) (r : day_record) =
  String.concat ","
    [
      series.domain;
      string_of_int series.rank;
      (* %.17g round-trips every float exactly; %.6f silently truncated
         Horvitz-Thompson weights like 142.857142857… and skewed every
         weighted tally recomputed from an archived campaign. *)
      Printf.sprintf "%.17g" series.weight;
      string_of_bool series.trusted;
      string_of_bool series.stable;
      string_of_int r.day;
      string_of_bool r.present;
      string_of_bool r.default_ok;
      opt_str r.stek_id;
      (match r.ticket_hint with None -> "" | Some h -> string_of_int h);
      opt_str r.ecdhe_value;
      string_of_bool r.dhe_ok;
      opt_str r.dhe_value;
    ]

(* Rows are batched through a [Buffer] and handed to the durable writer
   in ~1MB slabs: a 10k-domain, 63-day campaign is ~630k rows, and
   per-row write calls dominated save time on the seed. *)
let save_flush_threshold = 1 lsl 20

(* The archive is written atomically (temp + fsync + rename) and framed
   with a checksum footer, so a crash mid-save leaves the previous
   archive intact and a damaged file is detected — with a byte offset —
   at [load] time instead of silently skewing a re-analysis. *)
let save t path =
  Durable.Atomic_io.with_writer path (fun w ->
      let buf = Buffer.create (64 * 1024) in
      let flush () =
        Durable.Atomic_io.add w (Buffer.contents buf);
        Buffer.clear buf
      in
      Printf.bprintf buf "#tlsharm-campaign,start_day=%d,n_days=%d\n" t.start_day t.n_days;
      Buffer.add_string buf csv_header;
      Buffer.add_char buf '\n';
      Array.iter
        (fun series ->
          Array.iter
            (fun r ->
              Buffer.add_string buf (day_row ~series r);
              Buffer.add_char buf '\n';
              if Buffer.length buf >= save_flush_threshold then flush ())
            series.days)
        t.series;
      flush ())

(* Strip one trailing empty element left by a final newline; interior
   empty lines still reach the row parser and are reported as bad rows. *)
let content_lines content =
  match List.rev (String.split_on_char '\n' content) with
  | "" :: rest -> List.rev rest
  | _ as all -> List.rev all

let load path =
  let ( let* ) = Result.bind in
  (* [read_any]: durable archives are checksum-verified (truncation and
     bit flips become errors naming the damage), while pre-durability
     archives still load verbatim. *)
  let* content =
    Result.map_error
      (Durable.Atomic_io.error_to_string ~what:"campaign")
      (Durable.Atomic_io.read_any path)
  in
  let* meta, rows =
    match content_lines content with
    | [] -> Error "campaign: empty file"
    | meta :: rows -> Ok (meta, rows)
  in
  let* start_day, n_days =
    if String.length meta > 0 && meta.[0] = '#' then
      match String.split_on_char ',' meta with
      | [ _; sd; nd ] -> (
          let field s =
            match String.split_on_char '=' s with
            | [ _; v ] -> int_of_string_opt v
            | _ -> None
          in
          match (field sd, field nd) with
          | Some a, Some b when a >= 0 && b > 0 -> Ok (a, b)
          | Some _, Some b when b <= 0 ->
              Error (Printf.sprintf "campaign: invalid n_days=%d in metadata" b)
          | Some a, Some _ ->
              Error (Printf.sprintf "campaign: invalid start_day=%d in metadata" a)
          | _ -> Error "campaign: bad metadata line")
      | _ -> Error "campaign: bad metadata line"
    else Error "campaign: missing metadata line"
  in
  let by_domain : (string, domain_series) Hashtbl.t = Hashtbl.create 4096 in
  let order = ref [] in
  let parse_row line =
        match String.split_on_char ',' line with
        | [ domain; rank; weight; trusted; stable; day; present; ok; stek; hint; ecdhe; dhe_ok; dhe ]
          -> (
            let ( let* ) = Option.bind in
            let blank s = if s = "" then None else Some s in
            let row =
              let* rank = int_of_string_opt rank in
              let* weight = float_of_string_opt weight in
              let* trusted = bool_of_string_opt trusted in
              let* stable = bool_of_string_opt stable in
              let* day = int_of_string_opt day in
              let* present = bool_of_string_opt present in
              let* default_ok = bool_of_string_opt ok in
              let* dhe_ok = bool_of_string_opt dhe_ok in
              let hint = if hint = "" then None else int_of_string_opt hint in
              Some
                ( domain,
                  rank,
                  weight,
                  trusted,
                  stable,
                  {
                    day;
                    present;
                    default_ok;
                    stek_id = blank stek;
                    ticket_hint = hint;
                    ecdhe_value = blank ecdhe;
                    dhe_ok;
                    dhe_value = blank dhe;
                  } )
            in
            match row with None -> Error ("campaign: bad row: " ^ line) | Some r -> Ok r)
        | _ -> Error ("campaign: bad row: " ^ line)
      in
  let rec read_rows first = function
    | [] -> Ok ()
    | line :: rest when first && String.equal line csv_header -> read_rows false rest
    | line :: rest ->
        let* domain, rank, weight, trusted, stable, record = parse_row line in
        (* A day outside [0, n_days) means the file contradicts its
           own metadata; dropping the row silently (as earlier
           versions did) hides the corruption from the caller. *)
        let* () =
          if record.day >= 0 && record.day < n_days then Ok ()
          else
            Error
              (Printf.sprintf "campaign: day %d out of range [0,%d) in row: %s" record.day
                 n_days line)
        in
        (match Hashtbl.find_opt by_domain domain with
        | Some series -> series.days.(record.day) <- record
        | None ->
            let days =
              Array.init n_days (fun day ->
                  {
                    day;
                    present = false;
                    default_ok = false;
                    stek_id = None;
                    ticket_hint = None;
                    ecdhe_value = None;
                    dhe_ok = false;
                    dhe_value = None;
                  })
            in
            days.(record.day) <- record;
            Hashtbl.replace by_domain domain { domain; rank; weight; trusted; stable; days };
            order := domain :: !order);
        read_rows false rest
  in
  let* () = read_rows true rows in
  let series = List.rev !order |> List.map (Hashtbl.find by_domain) |> Array.of_list in
  Ok { start_day; n_days; series }

let blank_record day =
  {
    day;
    present = false;
    default_ok = false;
    stek_id = None;
    ticket_hint = None;
    ecdhe_value = None;
    dhe_ok = false;
    dhe_value = None;
  }

(* --- Checkpoint codec --------------------------------------------------------

   One snapshot per completed scan day per stream (a stream = the serial
   campaign, or one shard of the parallel one). A snapshot captures
   everything a resumed run must reproduce to stay byte-identical to an
   uninterrupted one: the virtual clock, both probes' DRBG positions,
   the default probe's trust cache, the stream's cumulative loss funnel,
   and that day's observed rows for every member domain.

   The codec is deterministic — equal state encodes to equal bytes —
   which is what lets resume *verify* replayed days by comparing the
   re-encoded snapshot against the recorded one, byte for byte. *)

module Ckpt = struct
  type snapshot = {
    s_day : int;
    s_clock : int;
    s_trust : (string * bool) list;
    s_funnel : Faults.Funnel.t;
    s_rows : day_record option array;
  }

  let drbg_line label drbg =
    let k, v = Crypto.Drbg.state drbg in
    Printf.sprintf "%s=%s:%s" label (Wire.Hex.encode k) (Wire.Hex.encode v)

  let opt_dash = function None -> "-" | Some s -> s

  (* The per-day values are exactly the persisted CSV columns, so the
     snapshot-restore path can rebuild the archive without scanning. *)
  let row_line = function
    | None -> "0"
    | Some r ->
        String.concat ","
          [
            "1";
            string_of_bool r.default_ok;
            opt_dash r.stek_id;
            (match r.ticket_hint with None -> "-" | Some h -> string_of_int h);
            opt_dash r.ecdhe_value;
            string_of_bool r.dhe_ok;
            opt_dash r.dhe_value;
          ]

  let encode ~day ~clock ~(default_probe : Probe.t) ~(dhe_probe : Probe.t) ~funnel
      ~(rows : day_record option array) =
    let b = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
    line "day=%d" day;
    line "clock=%d" (Simnet.Clock.now clock);
    line "%s" (drbg_line "drbg-default" (Tls.Client.rng default_probe.Probe.client));
    line "%s" (drbg_line "drbg-dhe" (Tls.Client.rng dhe_probe.Probe.client));
    let trust =
      Hashtbl.fold (fun d v acc -> (d, v) :: acc) default_probe.Probe.trust_cache []
      |> List.sort compare
    in
    line "trust=%d" (List.length trust);
    List.iter (fun (d, v) -> line "%s %b" d v) trust;
    let flines = Faults.Funnel.to_lines funnel in
    line "funnel=%d" (List.length flines);
    List.iter (fun l -> line "%s" l) flines;
    line "rows=%d" (Array.length rows);
    Array.iter (fun r -> line "%s" (row_line r)) rows;
    Buffer.contents b

  let parse_row ~day l =
    if l = "0" then Ok None
    else
      match String.split_on_char ',' l with
      | [ "1"; ok; stek; hint; ecdhe; dhe_ok; dhe ] -> (
          let undash s = if s = "-" then None else Some s in
          match (bool_of_string_opt ok, bool_of_string_opt dhe_ok) with
          | Some default_ok, Some dhe_ok -> (
              match if hint = "-" then Some None else Option.map Option.some (int_of_string_opt hint) with
              | Some ticket_hint ->
                  Ok
                    (Some
                       {
                         day;
                         present = true;
                         default_ok;
                         stek_id = undash stek;
                         ticket_hint;
                         ecdhe_value = undash ecdhe;
                         dhe_ok;
                         dhe_value = undash dhe;
                       })
              | None -> Error (Printf.sprintf "checkpoint: bad ticket hint in row %S" l))
          | _ -> Error (Printf.sprintf "checkpoint: bad row %S" l))
      | _ -> Error (Printf.sprintf "checkpoint: bad row %S" l)

  (* Strict decode: every section length must match, DRBG states must be
     64 valid hex bytes, and nothing may trail the last row. Any slack
     would let a damaged-but-checksum-valid file (or a file from a
     different world size) slip into the resume path. *)
  let decode ~members payload =
    let ( let* ) = Result.bind in
    let err fmt = Printf.ksprintf (fun s -> Error ("checkpoint: " ^ s)) fmt in
    let rest = ref (content_lines payload) in
    let next what =
      match !rest with
      | [] -> err "truncated payload (wanted %s)" what
      | l :: tl ->
          rest := tl;
          Ok l
    in
    let kv key =
      let* l = next key in
      match String.index_opt l '=' with
      | Some i when String.sub l 0 i = key ->
          Ok (String.sub l (i + 1) (String.length l - i - 1))
      | _ -> err "expected %s=, got %S" key l
    in
    let int_kv key =
      let* v = kv key in
      match int_of_string_opt v with Some n when n >= 0 -> Ok n | _ -> err "bad %s value %S" key v
    in
    let drbg_kv key =
      let* v = kv key in
      match String.index_opt v ':' with
      | Some i -> (
          let kh = String.sub v 0 i and vh = String.sub v (i + 1) (String.length v - i - 1) in
          match (Wire.Hex.decode_opt kh, Wire.Hex.decode_opt vh) with
          | Some k, Some vv when String.length k = 32 && String.length vv = 32 -> Ok (k, vv)
          | _ -> err "bad %s state" key)
      | None -> err "bad %s state" key
    in
    let rec times n f acc =
      if n = 0 then Ok (List.rev acc)
      else
        let* v = f () in
        times (n - 1) f (v :: acc)
    in
    let* s_day = int_kv "day" in
    let* s_clock = int_kv "clock" in
    let* _default_state = drbg_kv "drbg-default" in
    let* _dhe_state = drbg_kv "drbg-dhe" in
    let* n_trust = int_kv "trust" in
    let* s_trust =
      times n_trust
        (fun () ->
          let* l = next "trust entry" in
          match String.rindex_opt l ' ' with
          | Some i -> (
              match bool_of_string_opt (String.sub l (i + 1) (String.length l - i - 1)) with
              | Some v -> Ok (String.sub l 0 i, v)
              | None -> err "bad trust entry %S" l)
          | None -> err "bad trust entry %S" l)
        []
    in
    let* n_funnel = int_kv "funnel" in
    let* funnel_lines = times n_funnel (fun () -> next "funnel line") [] in
    let* s_funnel = Faults.Funnel.of_lines funnel_lines in
    let* n_rows = int_kv "rows" in
    let* () =
      if n_rows = members then Ok ()
      else err "snapshot covers %d domains, stream has %d" n_rows members
    in
    let* rows = times n_rows (fun () -> let* l = next "row" in parse_row ~day:s_day l) [] in
    let* () = match !rest with [] -> Ok () | l :: _ -> err "trailing data %S" l in
    Ok { s_day; s_clock; s_trust; s_funnel; s_rows = Array.of_list rows }
end

(* Build the final per-domain series from the (i, day) record matrix;
   [trusted] comes from the default probe's trust cache, which either
   the scan populated or the checkpoint-restore path refilled. When the
   scan ran without row retention (streaming sink only), [records] is
   [None] and the series carry their metadata with empty [days]: the
   rows live in the sink, not in memory. *)
let build_series ~(default_probe : Probe.t) ~(domains : Simnet.World.domain array) ~days records =
  Array.mapi
    (fun i d ->
      let days_arr =
        match records with
        | None -> [||]
        | Some m ->
            Array.init days (fun day ->
                match m.(i).(day) with Some r -> r | None -> blank_record day)
      in
      {
        domain = Simnet.World.domain_name d;
        rank = Simnet.World.domain_rank d;
        weight = Simnet.World.domain_weight d;
        trusted =
          Option.value ~default:false
            (Hashtbl.find_opt default_probe.Probe.trust_cache (Simnet.World.domain_name d));
        stable = Simnet.World.domain_stable d;
        days = days_arr;
      })
    domains

(* --- Streaming archive codec -------------------------------------------------

   The streamed representation of one scan stream: one spool block per
   day holding every member's row in member order (reusing the
   checkpoint row codec, so there is exactly one row grammar in the
   project), and a trailer block carrying the per-domain facts that are
   only known at campaign end — chiefly the trust verdicts. Member
   *order* is the contract: day blocks reference domains positionally,
   and the trailer names them, which keeps a 100k-domain day block free
   of 100k repeated domain/rank/weight prefixes. *)

let stream_day_payload ~day ~(rows : day_record option array) =
  let b = Buffer.create (16 * Array.length rows) in
  Printf.bprintf b "day=%d\nrows=%d\n" day (Array.length rows);
  Array.iter
    (fun r ->
      Buffer.add_string b (Ckpt.row_line r);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let stream_day s ~day ~rows =
  let present = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 rows in
  Stream_sink.append_day s ~rows:present (stream_day_payload ~day ~rows)

let emit_stream_day sink ~day ~rows =
  match sink with None -> () | Some s -> stream_day s ~day ~rows

let stream_finish s ~trusted ~(domains : Simnet.World.domain array) =
  let b = Buffer.create (32 * Array.length domains) in
  Printf.bprintf b "trailer\ndomains=%d\n" (Array.length domains);
  Array.iter
    (fun d ->
      let name = Simnet.World.domain_name d in
      Printf.bprintf b "%s,%d,%.17g,%b,%b\n" name (Simnet.World.domain_rank d)
        (Simnet.World.domain_weight d) (trusted name) (Simnet.World.domain_stable d))
    domains;
  Stream_sink.finish s ~trailer:(Buffer.contents b)

(* Scan [domains] for [days] days, driving [clock] (both probes must read
   it, and both must share one funnel). This is the sequential inner loop
   shared by the serial campaign ([run], over all domains on the world
   clock) and by each shard of {!Parallel_campaign} (a connectivity-closed
   subset on a private clock). The probe-call sequence for a fixed domain
   array is identical either way, which is what makes shard results
   independent of worker count.

   With [checkpoint], each completed day is snapshotted into the stream.
   On entry the stream's longest valid snapshot prefix decides the resume
   point — a corrupt or truncated newest snapshot simply shortens the
   prefix, falling back to the last day that verifies:

   - prefix = days: the whole scan is restored from snapshots (rows,
     trust cache, funnel) without probing; the clock jumps to the end.
   - prefix < days: the scan runs from day 0. Replayed days (< prefix)
     re-encode their snapshot and compare it byte-for-byte against the
     recorded one — any divergence (wrong world, wrong seed, code drift)
     raises {!Durable.Checkpoint.Mismatch} rather than silently archiving
     a run that is not the one the checkpoints belong to. Fresh days
     (>= prefix) write new snapshots.

   Replay re-executes completed days instead of deserializing the world
   mid-flight (endpoint RNGs, kex caches, session caches and STEK
   rotations make the world state surface enormous); determinism makes
   the re-execution exact, and the byte-compare proves it. *)
let scan_stream ?checkpoint ?sink ?(retain = true) ?obs ~clock ~default_probe ~dhe_probe
    ~(domains : Simnet.World.domain array) ~days ?(progress = fun _ -> ()) () =
  let start = Simnet.Clock.now clock in
  (* [scan.days] is a gauge (max-merge): every stream of one campaign
     scans the same day count, so a counter would multiply it by the
     shard count under parallel execution. *)
  if days > 0 then Obs.Recorder.gauge_max_opt obs "scan.days" days;
  let n = Array.length domains in
  let funnel = Probe.funnel default_probe in
  let decode_ok ~day payload =
    match Ckpt.decode ~members:n payload with Ok s -> s.Ckpt.s_day = day | Error _ -> false
  in
  let prefix =
    match checkpoint with
    | None -> 0
    | Some stream -> Durable.Checkpoint.valid_prefix ~decode:decode_ok stream ~days
  in
  let finish_sink () =
    let trusted name =
      Option.value ~default:false (Hashtbl.find_opt default_probe.Probe.trust_cache name)
    in
    Option.iter (fun s -> stream_finish s ~trusted ~domains) sink
  in
  if prefix >= days && days > 0 then begin
    (* Every day is on disk and verified: restore without scanning. *)
    let stream = Option.get checkpoint in
    let records = if retain then Some (Array.make_matrix n days None) else None in
    let restore_day day =
      match Durable.Checkpoint.read_day stream ~day with
      | Error e ->
          Durable.Checkpoint.mismatch "day %d unreadable during restore: %s" day
            (Durable.Atomic_io.error_to_string e)
      | Ok payload -> (
          match Ckpt.decode ~members:n payload with
          | Error e -> Durable.Checkpoint.mismatch "day %d: %s" day e
          | Ok s ->
              (match records with
              | Some m -> Array.iteri (fun i r -> m.(i).(day) <- r) s.Ckpt.s_rows
              | None -> ());
              emit_stream_day sink ~day ~rows:s.Ckpt.s_rows;
              s)
    in
    for day = 0 to days - 2 do
      ignore (restore_day day)
    done;
    let last = restore_day (days - 1) in
    (* The last snapshot carries the cumulative trust cache and funnel. *)
    List.iter
      (fun (d, v) -> Hashtbl.replace default_probe.Probe.trust_cache d v)
      last.Ckpt.s_trust;
    Faults.Funnel.absorb funnel last.Ckpt.s_funnel;
    Simnet.Clock.set clock (start + (days * Simnet.Clock.day));
    finish_sink ();
    build_series ~default_probe ~domains ~days records
  end
  else begin
  let records = if retain then Some (Array.make_matrix n days None) else None in
  (* Per-day scratch, reused across days so a long campaign's inner loop
     allocates nothing proportional to [n * days]: this day's rows (also
     the checkpoint payload source), the default sweep's observations,
     and the day's present-member index list. Presence was previously
     recomputed per sweep — twice per domain-day — and the second sweep
     walked every member; both sweeps now touch only present members. *)
  let rows : day_record option array = Array.make n None in
  let default_obs = Array.make n None in
  let present = Array.make (max n 1) 0 in
  for day = 0 to days - 1 do
    progress day;
    Array.fill rows 0 n None;
    Array.fill default_obs 0 n None;
    let n_present = ref 0 in
    Array.iteri
      (fun i d ->
        if Simnet.World.in_list_on_day d ~day then begin
          present.(!n_present) <- i;
          incr n_present
        end)
      domains;
    let n_present = !n_present in
    (* Default sweep at 00:30, DHE sweep at 02:00 local study time. The
       [scan.day] span covers exactly that 90-virtual-minute window; the
       clock is positioned before the span opens so its simulated
       duration is sweep-to-sweep, not midnight-to-midnight. *)
    Simnet.Clock.set clock (start + (day * Simnet.Clock.day) + (30 * Simnet.Clock.minute));
    Obs.Recorder.span_opt obs ~name:"scan.day"
      ~attrs:[ ("day", string_of_int day) ]
      ~now:(fun () -> Simnet.Clock.now clock)
      (fun () ->
    for p = 0 to n_present - 1 do
      let i = present.(p) in
      let o, _ =
        Probe.connect default_probe ~domain:(Simnet.World.domain_name domains.(i))
      in
      default_obs.(i) <- Some o
    done;
    Simnet.Clock.set clock (start + (day * Simnet.Clock.day) + (2 * Simnet.Clock.hour));
    for p = 0 to n_present - 1 do
      let i = present.(p) in
      Obs.Recorder.incr_opt obs "scan.domain_days";
      let dhe_obs, _ =
        Probe.connect dhe_probe ~domain:(Simnet.World.domain_name domains.(i))
      in
      let default_o = default_obs.(i) in
      rows.(i) <-
        Some
          {
            day;
            present = true;
            default_ok = (match default_o with Some o -> o.Observation.ok | None -> false);
            stek_id = Option.bind default_o (fun o -> o.Observation.stek_id);
            ticket_hint = Option.bind default_o (fun o -> o.Observation.ticket_hint);
            ecdhe_value = Option.bind default_o (fun o -> o.Observation.ecdhe_value);
            dhe_ok = dhe_obs.Observation.ok;
            dhe_value = dhe_obs.Observation.dhe_value;
          }
    done);
    (match checkpoint with
    | None -> ()
    | Some stream ->
        let payload = Ckpt.encode ~day ~clock ~default_probe ~dhe_probe ~funnel ~rows in
        if day < prefix then begin
          (* Replay verification: the re-run day must reproduce the
             recorded snapshot exactly, or the checkpoints belong to a
             different run than the one we are resuming. *)
          match Durable.Checkpoint.read_day stream ~day with
          | Ok recorded when String.equal recorded payload -> ()
          | Ok _ ->
              Durable.Checkpoint.mismatch
                "replayed day %d diverges from its checkpoint (different world, seed or code?)"
                day
          | Error _ ->
              (* Readable when the prefix was scanned, unreadable now:
                 replace it with the freshly recomputed snapshot. *)
              Durable.Checkpoint.write_day stream ~day payload
        end
        else Durable.Checkpoint.write_day stream ~day payload);
    (match records with
    | Some m ->
        for i = 0 to n - 1 do
          m.(i).(day) <- rows.(i)
        done
    | None -> ());
    emit_stream_day sink ~day ~rows
  done;
  (* Leave the clock at the end of the campaign. *)
  Simnet.Clock.set clock (start + (days * Simnet.Clock.day));
  finish_sink ();
  build_series ~default_probe ~domains ~days records
  end

let run_subset ?obs ~clock ~default_probe ~dhe_probe ~domains ~days ?progress () =
  scan_stream ?obs ~clock ~default_probe ~dhe_probe ~domains ~days ?progress ()

let run ?injector ?retry ?funnel ?checkpoint ?sink ?(retain_rows = true) ?obs world ~days
    ?progress () =
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  (* The campaign's probes share a campaign-private funnel that is
     absorbed into the caller's at the end (sums only, so the rendered
     totals are unchanged). Privacy matters for checkpointing: the
     snapshot must capture exactly the campaign's own telemetry, not
     whatever pre-campaign probes already recorded into a shared
     funnel. *)
  let campaign_funnel = Faults.Funnel.create () in
  let default_probe =
    Probe.create ?injector ?retry ~funnel:campaign_funnel ?obs ~seed:"daily-default" world
  in
  let dhe_probe =
    Probe.dhe_only ?injector ?retry ~funnel:campaign_funnel ?obs world ~seed:"daily-dhe"
  in
  let domains = Simnet.World.domains world in
  let checkpoint =
    Option.map (fun store -> Durable.Checkpoint.stream store "serial") checkpoint
  in
  let sink = Option.map (fun s -> Stream_sink.stream s "serial") sink in
  Obs.Recorder.gauge_max_opt obs "campaign.days" days;
  let series =
    scan_stream ?checkpoint ?sink ~retain:retain_rows ?obs ~clock ~default_probe ~dhe_probe
      ~domains ~days ?progress ()
  in
  Option.iter (fun f -> Faults.Funnel.absorb f campaign_funnel) funnel;
  { start_day = start / Simnet.Clock.day; n_days = days; series }

(* --- Streamed archive loader -------------------------------------------------

   Reassemble a campaign from a {!Stream_sink} directory: manifest for
   the day range, one spool per stream, trailer for per-domain metadata.
   The result is sorted by (rank, domain) — the same order both [run]
   (world order is rank order) and {!Parallel_campaign.run} produce — so
   [save] on a loaded streamed archive is byte-identical to [save] on
   the equivalent retained-in-memory campaign. *)

let load_stream dir =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error ("stream archive: " ^ s)) fmt in
  let* manifest = Stream_sink.manifest ~dir in
  let int_field key =
    match List.assoc_opt key manifest with
    | None -> err "manifest is missing %s" key
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> err "bad manifest field %s=%S" key v)
  in
  let* start_day = int_field "start_day" in
  let* n_days = int_field "n_days" in
  let* () = if n_days > 0 then Ok () else err "n_days must be positive" in
  let* names = Stream_sink.stream_names ~dir in
  let* () = if names = [] then err "no row streams in %s" dir else Ok () in
  let parse_trailer name trailer =
    match content_lines trailer with
    | "trailer" :: counted :: metas -> (
        match Scanf.sscanf_opt counted "domains=%d" Fun.id with
        | Some n when n = List.length metas ->
            let parse_meta l =
              match String.split_on_char ',' l with
              | [ domain; rank; weight; trusted; stable ] -> (
                  match
                    ( int_of_string_opt rank,
                      float_of_string_opt weight,
                      bool_of_string_opt trusted,
                      bool_of_string_opt stable )
                  with
                  | Some rank, Some weight, Some trusted, Some stable ->
                      Ok (domain, rank, weight, trusted, stable)
                  | _ -> err "stream %S: bad trailer entry %S" name l)
              | _ -> err "stream %S: bad trailer entry %S" name l
            in
            List.fold_left
              (fun acc l ->
                let* acc = acc in
                let* m = parse_meta l in
                Ok (m :: acc))
              (Ok []) metas
            |> Result.map List.rev
        | Some n -> err "stream %S: trailer declares %d domains, carries %d" name n (List.length metas)
        | None -> err "stream %S: bad trailer count line %S" name counted)
    | _ -> err "stream %S: malformed trailer" name
  in
  let parse_day_block name ~day ~members block =
    match content_lines block with
    | day_line :: rows_line :: rows -> (
        match
          (Scanf.sscanf_opt day_line "day=%d" Fun.id, Scanf.sscanf_opt rows_line "rows=%d" Fun.id)
        with
        | Some d, Some r when d = day && r = members && List.length rows = members ->
            List.fold_left
              (fun acc l ->
                let* acc = acc in
                let* row = Ckpt.parse_row ~day l in
                Ok (row :: acc))
              (Ok []) rows
            |> Result.map (fun l -> Array.of_list (List.rev l))
        | Some d, _ when d <> day -> err "stream %S: expected day %d, found day %d" name day d
        | _ -> err "stream %S: malformed day block header for day %d" name day
    )
    | _ -> err "stream %S: malformed day block for day %d" name day
  in
  let load_one name =
    let* blocks, trailer = Stream_sink.read_stream ~dir name in
    let* metas = parse_trailer name trailer in
    let members = List.length metas in
    let* () =
      if List.length blocks = n_days then Ok ()
      else err "stream %S holds %d day blocks, manifest says %d" name (List.length blocks) n_days
    in
    let records = Array.make_matrix members n_days None in
    let* () =
      List.fold_left
        (fun acc block ->
          let* day = acc in
          let* rows = parse_day_block name ~day ~members block in
          Array.iteri (fun i r -> records.(i).(day) <- r) rows;
          Ok (day + 1))
        (Ok 0) blocks
      |> Result.map ignore
    in
    List.mapi
      (fun i (domain, rank, weight, trusted, stable) ->
        {
          domain;
          rank;
          weight;
          trusted;
          stable;
          days =
            Array.init n_days (fun day ->
                match records.(i).(day) with Some r -> r | None -> blank_record day);
        })
      metas
    |> Result.ok
  in
  let* series_lists =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* s = load_one name in
        Ok (s :: acc))
      (Ok []) names
    |> Result.map List.rev
  in
  let series = Array.of_list (List.concat series_lists) in
  Array.sort (fun a b -> compare (a.rank, a.domain) (b.rank, b.domain)) series;
  Ok { start_day; n_days; series }
