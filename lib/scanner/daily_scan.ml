(* The longitudinal campaign of Sections 4.3 and 4.4: connect to every
   domain daily for nine weeks, recording the STEK identifier from the
   issued ticket and the server's (EC)DHE public values. Two sweeps per
   day, mirroring the paper's data sources:

   - the default sweep (all suites offered, ticket extension on) yields
     the STEK identifier, the lifetime hint and — because almost every
     server prefers ECDHE — the ECDHE server value (the paper's
     ECDHE-priority scans);
   - a DHE-only sweep (the paper used Censys' daily DHE scans) yields the
     DHE server value, or nothing for servers without DHE.

   Domains absent from that day's Top Million list are skipped, so list
   churn shows up in the data exactly as it did for the paper. *)

type day_record = {
  day : int; (* day index from study start *)
  present : bool; (* domain was in the list that day *)
  default_ok : bool;
  stek_id : string option;
  ticket_hint : int option;
  ecdhe_value : string option;
  dhe_ok : bool;
  dhe_value : string option;
}

type domain_series = {
  domain : string;
  rank : int;
  weight : float;
  trusted : bool; (* ever presented a trusted chain *)
  stable : bool; (* in the list every day *)
  days : day_record array;
}

type t = {
  start_day : int;
  n_days : int;
  series : domain_series array;
}

(* --- Persistence -----------------------------------------------------------
   Campaigns serialize to a flat CSV (one row per domain-day) so they can
   be archived and re-analyzed without re-running nine weeks of scans —
   the project's analog of the paper publishing its data on scans.io. *)

let csv_header =
  "domain,rank,weight,trusted,stable,day,present,default_ok,stek_id,ticket_hint,ecdhe_value,dhe_ok,dhe_value"

let opt_str = function None -> "" | Some s -> s

let day_row ~(series : domain_series) (r : day_record) =
  String.concat ","
    [
      series.domain;
      string_of_int series.rank;
      (* %.17g round-trips every float exactly; %.6f silently truncated
         Horvitz-Thompson weights like 142.857142857… and skewed every
         weighted tally recomputed from an archived campaign. *)
      Printf.sprintf "%.17g" series.weight;
      string_of_bool series.trusted;
      string_of_bool series.stable;
      string_of_int r.day;
      string_of_bool r.present;
      string_of_bool r.default_ok;
      opt_str r.stek_id;
      (match r.ticket_hint with None -> "" | Some h -> string_of_int h);
      opt_str r.ecdhe_value;
      string_of_bool r.dhe_ok;
      opt_str r.dhe_value;
    ]

(* Rows are batched through a [Buffer] and written in ~1MB slabs: a
   10k-domain, 63-day campaign is ~630k rows, and per-row [output_string]
   calls dominated save time on the seed. *)
let save_flush_threshold = 1 lsl 20

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create (64 * 1024) in
      let flush () =
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      in
      Printf.bprintf buf "#tlsharm-campaign,start_day=%d,n_days=%d\n" t.start_day t.n_days;
      Buffer.add_string buf csv_header;
      Buffer.add_char buf '\n';
      Array.iter
        (fun series ->
          Array.iter
            (fun r ->
              Buffer.add_string buf (day_row ~series r);
              Buffer.add_char buf '\n';
              if Buffer.length buf >= save_flush_threshold then flush ())
            series.days)
        t.series;
      flush ())

let load path =
  let ( let* ) = Result.bind in
  match open_in path with
  | exception Sys_error e -> Error ("campaign: " ^ e)
  | ic ->
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let* start_day, n_days =
        match input_line ic with
        | meta when String.length meta > 0 && meta.[0] = '#' -> (
            match String.split_on_char ',' meta with
            | [ _; sd; nd ] -> (
                let field s =
                  match String.split_on_char '=' s with
                  | [ _; v ] -> int_of_string_opt v
                  | _ -> None
                in
                match (field sd, field nd) with
                | Some a, Some b when a >= 0 && b > 0 -> Ok (a, b)
                | Some _, Some b when b <= 0 ->
                    Error (Printf.sprintf "campaign: invalid n_days=%d in metadata" b)
                | Some a, Some _ ->
                    Error (Printf.sprintf "campaign: invalid start_day=%d in metadata" a)
                | _ -> Error "campaign: bad metadata line")
            | _ -> Error "campaign: bad metadata line")
        | _ -> Error "campaign: missing metadata line"
        | exception End_of_file -> Error "campaign: empty file"
      in
      let by_domain : (string, domain_series) Hashtbl.t = Hashtbl.create 4096 in
      let order = ref [] in
      let parse_row line =
        match String.split_on_char ',' line with
        | [ domain; rank; weight; trusted; stable; day; present; ok; stek; hint; ecdhe; dhe_ok; dhe ]
          -> (
            let ( let* ) = Option.bind in
            let blank s = if s = "" then None else Some s in
            let row =
              let* rank = int_of_string_opt rank in
              let* weight = float_of_string_opt weight in
              let* trusted = bool_of_string_opt trusted in
              let* stable = bool_of_string_opt stable in
              let* day = int_of_string_opt day in
              let* present = bool_of_string_opt present in
              let* default_ok = bool_of_string_opt ok in
              let* dhe_ok = bool_of_string_opt dhe_ok in
              let hint = if hint = "" then None else int_of_string_opt hint in
              Some
                ( domain,
                  rank,
                  weight,
                  trusted,
                  stable,
                  {
                    day;
                    present;
                    default_ok;
                    stek_id = blank stek;
                    ticket_hint = hint;
                    ecdhe_value = blank ecdhe;
                    dhe_ok;
                    dhe_value = blank dhe;
                  } )
            in
            match row with None -> Error ("campaign: bad row: " ^ line) | Some r -> Ok r)
        | _ -> Error ("campaign: bad row: " ^ line)
      in
      let rec read_rows first =
        match input_line ic with
        | exception End_of_file -> Ok ()
        | line when first && String.equal line csv_header -> read_rows false
        | line ->
            let* domain, rank, weight, trusted, stable, record = parse_row line in
            (* A day outside [0, n_days) means the file contradicts its
               own metadata; dropping the row silently (as earlier
               versions did) hides the corruption from the caller. *)
            let* () =
              if record.day >= 0 && record.day < n_days then Ok ()
              else
                Error
                  (Printf.sprintf "campaign: day %d out of range [0,%d) in row: %s" record.day
                     n_days line)
            in
            (match Hashtbl.find_opt by_domain domain with
            | Some series -> series.days.(record.day) <- record
            | None ->
                let days =
                  Array.init n_days (fun day ->
                      {
                        day;
                        present = false;
                        default_ok = false;
                        stek_id = None;
                        ticket_hint = None;
                        ecdhe_value = None;
                        dhe_ok = false;
                        dhe_value = None;
                      })
                in
                days.(record.day) <- record;
                Hashtbl.replace by_domain domain { domain; rank; weight; trusted; stable; days };
                order := domain :: !order);
            read_rows false
      in
      let* () = read_rows true in
      let series =
        List.rev !order |> List.map (Hashtbl.find by_domain) |> Array.of_list
      in
      Ok { start_day; n_days; series })

(* Scan [domains] for [days] days, driving [clock] (both probes must read
   it). This is the sequential inner loop shared by the serial campaign
   ([run], over all domains on the world clock) and by each shard of
   {!Parallel_campaign} (a connectivity-closed subset on a private
   clock). The probe-call sequence for a fixed domain array is identical
   either way, which is what makes shard results independent of worker
   count. *)
let run_subset ~clock ~default_probe ~dhe_probe ~(domains : Simnet.World.domain array) ~days
    ?(progress = fun _ -> ()) () =
  let start = Simnet.Clock.now clock in
  let n = Array.length domains in
  let records = Array.make_matrix n days None in
  for day = 0 to days - 1 do
    progress day;
    (* Default sweep at 00:30, DHE sweep at 02:00 local study time. *)
    Simnet.Clock.set clock (start + (day * Simnet.Clock.day) + (30 * Simnet.Clock.minute));
    let default_obs = Array.make n None in
    Array.iteri
      (fun i d ->
        if Simnet.World.in_list_on_day d ~day then begin
          let obs, _ = Probe.connect default_probe ~domain:(Simnet.World.domain_name d) in
          default_obs.(i) <- Some obs
        end)
      domains;
    Simnet.Clock.set clock (start + (day * Simnet.Clock.day) + (2 * Simnet.Clock.hour));
    Array.iteri
      (fun i d ->
        if Simnet.World.in_list_on_day d ~day then begin
          let dhe_obs, _ = Probe.connect dhe_probe ~domain:(Simnet.World.domain_name d) in
          let default_o = default_obs.(i) in
          records.(i).(day) <-
            Some
              {
                day;
                present = true;
                default_ok =
                  (match default_o with Some o -> o.Observation.ok | None -> false);
                stek_id = Option.bind default_o (fun o -> o.Observation.stek_id);
                ticket_hint = Option.bind default_o (fun o -> o.Observation.ticket_hint);
                ecdhe_value = Option.bind default_o (fun o -> o.Observation.ecdhe_value);
                dhe_ok = dhe_obs.Observation.ok;
                dhe_value = dhe_obs.Observation.dhe_value;
              }
        end)
      domains
  done;
  (* Leave the clock at the end of the campaign. *)
  Simnet.Clock.set clock (start + (days * Simnet.Clock.day));
  Array.mapi
    (fun i d ->
      let days_arr =
        Array.init days (fun day ->
            match records.(i).(day) with
            | Some r -> r
            | None ->
                {
                  day;
                  present = false;
                  default_ok = false;
                  stek_id = None;
                  ticket_hint = None;
                  ecdhe_value = None;
                  dhe_ok = false;
                  dhe_value = None;
                })
      in
      {
        domain = Simnet.World.domain_name d;
        rank = Simnet.World.domain_rank d;
        weight = Simnet.World.domain_weight d;
        trusted =
          (* Cached by the default probe during the campaign. *)
          Option.value ~default:false
            (Hashtbl.find_opt default_probe.Probe.trust_cache (Simnet.World.domain_name d));
        stable = Simnet.World.domain_stable d;
        days = days_arr;
      })
    domains

let run ?injector ?retry ?funnel world ~days ?progress () =
  let clock = Simnet.World.clock world in
  let start = Simnet.Clock.now clock in
  (* Both probes record into the caller's funnel (serial run, single
     owner), so the campaign's §3-style loss table covers the default
     and the DHE sweeps together. *)
  let default_probe = Probe.create ?injector ?retry ?funnel ~seed:"daily-default" world in
  let dhe_probe = Probe.dhe_only ?injector ?retry ?funnel world ~seed:"daily-dhe" in
  let domains = Simnet.World.domains world in
  let series = run_subset ~clock ~default_probe ~dhe_probe ~domains ~days ?progress () in
  { start_day = start / Simnet.Clock.day; n_days = days; series }
