(* A probing client: one TLS connection attempt against the simulated
   Internet, distilled into an {!Observation.conn}.

   Bulk settings: chain validation runs once per domain through a cache
   (the certificate cannot change servers' minds mid-study more often
   than the scanner revisits, and the paper's analyses need one boolean
   per domain), and ServerKeyExchange signatures are trusted after the
   engine checked the handshake end-to-end in the test suite — both
   documented deviations from a paranoid client, made for sweep speed. *)

type t = {
  world : Simnet.World.t;
  client : Tls.Client.t;
  trust_cache : (string, bool) Hashtbl.t;
  env : Tls.Config.env;
  clock : Simnet.Clock.t;
      (* the clock this probe reads time from: the world clock for serial
         sweeps, a shard-private clock in a parallel campaign *)
  net : Faults.Net.t;
      (* fault injection + retry policy + funnel; without an injector
         this is the legacy single-attempt path *)
  obs : Obs.Recorder.t option;
      (* telemetry sink; [None] is the byte-identical legacy path *)
}

let create ?(offer_suites = Tls.Types.all_cipher_suites) ?(offer_ticket = true) ?clock ?injector
    ?retry ?funnel ?obs ~seed world =
  let env = Simnet.World.env world in
  let client =
    Tls.Client.create
      ~config:
        {
          Tls.Config.cl_env = env;
          offer_suites;
          offer_ticket;
          root_store = Simnet.World.root_store world;
          check_certs = false;
          evaluate_trust = false;
          verify_ske = false;
        }
      ~rng:(Crypto.Drbg.create ~seed:("probe:" ^ seed)) ()
  in
  let clock = Option.value clock ~default:(Simnet.World.clock world) in
  let net = Faults.Net.create ?injector ?policy:retry ?funnel () in
  { world; client; trust_cache = Hashtbl.create 256; env; clock; net; obs }

let funnel t = Faults.Net.funnel t.net

let dhe_only ?clock ?injector ?retry ?funnel ?obs world ~seed =
  create ~offer_suites:[ Tls.Types.DHE_ECDSA_AES128_SHA256 ] ~offer_ticket:false ?clock
    ?injector ?retry ?funnel ?obs ~seed world

let ecdhe_only ?clock ?injector ?retry ?funnel ?obs world ~seed =
  create ~offer_suites:[ Tls.Types.ECDHE_ECDSA_AES128_SHA256 ] ~offer_ticket:false ?clock
    ?injector ?retry ?funnel ?obs ~seed world

let evaluate_trust t ~domain ~chain ~now =
  match Hashtbl.find_opt t.trust_cache domain with
  | Some v -> v
  | None -> (
      (* Only a full-chain evaluation may populate the cache: a domain
         first seen through a resumed or failed connection carries no
         chain, and caching [false] for it would brand the domain
         untrusted for the rest of the study. *)
      match chain with
      | [] -> false
      | _ ->
          let v =
            Result.is_ok
              (Tls.Cert.validate ~curve:t.env.Tls.Config.pki_curve
                 ~store:(Simnet.World.root_store t.world) ~now ~hostname:domain chain)
          in
          Hashtbl.replace t.trust_cache domain v;
          v)

(* Classify the server's key-exchange value by the negotiated suite. *)
let kex_fields outcome =
  match (outcome.Tls.Engine.cipher, outcome.Tls.Engine.server_kex_public) with
  | Some suite, Some v -> (
      let hex = Wire.Hex.encode v in
      match Tls.Types.suite_kex suite with
      | Tls.Types.Dhe -> (Some hex, None)
      | Tls.Types.Ecdhe -> (None, Some hex)
      | Tls.Types.Static_ecdh -> (None, None))
  | _ -> (None, None)

let observe ?(attempts = 1) t ~domain (outcome : Tls.Engine.outcome) ~now =
  let dhe_value, ecdhe_value = kex_fields outcome in
  let resumed =
    match outcome.Tls.Engine.resumed with
    | `No -> Observation.No_resumption
    | `Via_session_id -> Observation.By_session_id
    | `Via_ticket -> Observation.By_ticket
  in
  let trusted =
    match outcome.Tls.Engine.cert_chain with
    | [] ->
        (* Resumptions carry no chain; reuse the cached evaluation. *)
        Option.value ~default:false (Hashtbl.find_opt t.trust_cache domain)
    | chain -> evaluate_trust t ~domain ~chain ~now
  in
  {
    Observation.time = now;
    domain;
    ok = outcome.Tls.Engine.ok;
    resumed;
    cipher = outcome.Tls.Engine.cipher;
    session_id_set = String.length outcome.Tls.Engine.session_id > 0;
    session_id = Wire.Hex.encode outcome.Tls.Engine.session_id;
    trusted;
    stek_id = Option.map Wire.Hex.encode outcome.Tls.Engine.stek_key_name;
    ticket_hint = Option.map fst outcome.Tls.Engine.new_ticket;
    dhe_value;
    ecdhe_value;
    failure = (if outcome.Tls.Engine.ok then None else Some Faults.Fault.Unknown);
    attempts;
    region = Simnet.World.region t.world;
  }

(* One probe operation; [offer] controls resumption. Routed through the
   fault layer: injected faults retry under the probe's policy (backoff
   on a local attempt clock — the scan clock never moves), while
   world-level errors are ground truth and final, classified into the
   observation instead of collapsed into one anonymous failure. Returns
   the observation and the raw outcome (which carries the session/ticket
   needed to build the next offer). *)
(* Histogram buckets for attempts-per-connection: the retry budget tops
   out well below 16, so the open bucket only catches policy changes. *)
let retry_bounds = [| 1; 2; 4; 8; 16 |]

(* Everything recorded here is schedule-determined — probe/phase counts,
   attempt totals (injector decisions are pure hashes of endpoint, time
   and attempt number), kex classification — so the merged registry is
   identical at any worker count. The recorder only reads the outcome;
   it never draws randomness or moves a clock, keeping the observation
   stream byte-identical with telemetry off. *)
let record_outcome t ~now ~offer result =
  match t.obs with
  | None -> ()
  | Some obs ->
      let phase =
        match offer with
        | Tls.Client.Fresh -> "fresh"
        | Tls.Client.Offer_session_id _ -> "session_id"
        | Tls.Client.Offer_ticket _ -> "ticket"
      in
      Obs.Recorder.incr obs "probe.connects";
      Obs.Recorder.event obs ~name:"probe.phase.connect" ~attrs:[ ("offer", phase) ] ~at:now ();
      let attempts = match result with Ok (_, n) | Error (_, n) -> n in
      Obs.Recorder.add obs "probe.attempts" attempts;
      Obs.Recorder.observe obs "probe.retry.attempts" ~bounds:retry_bounds attempts;
      (match result with
      | Error _ -> Obs.Recorder.incr obs "probe.failures"
      | Ok ((outcome : Tls.Engine.outcome), _) ->
          if outcome.Tls.Engine.ok then Obs.Recorder.incr obs "probe.successes"
          else Obs.Recorder.incr obs "probe.failures";
          (match outcome.Tls.Engine.resumed with
          | `No -> (
              Obs.Recorder.incr obs "probe.resumed.none";
              (* A full handshake ran a key exchange. *)
              match outcome.Tls.Engine.cipher with
              | None -> ()
              | Some suite ->
                  let kex =
                    match Tls.Types.suite_kex suite with
                    | Tls.Types.Dhe -> "dhe"
                    | Tls.Types.Ecdhe -> "ecdhe"
                    | Tls.Types.Static_ecdh -> "static_ecdh"
                  in
                  Obs.Recorder.incr obs ("probe.kex." ^ kex);
                  Obs.Recorder.event obs ~name:"probe.phase.kex" ~attrs:[ ("kex", kex) ] ~at:now
                    ())
          | `Via_session_id ->
              Obs.Recorder.incr obs "probe.resumed.session_id";
              Obs.Recorder.event obs ~name:"probe.phase.resume"
                ~attrs:[ ("via", "session_id") ] ~at:now ()
          | `Via_ticket ->
              Obs.Recorder.incr obs "probe.resumed.ticket";
              Obs.Recorder.event obs ~name:"probe.phase.resume" ~attrs:[ ("via", "ticket") ]
                ~at:now ());
          match outcome.Tls.Engine.new_ticket with
          | Some _ ->
              Obs.Recorder.incr obs "probe.tickets.issued";
              Obs.Recorder.event obs ~name:"probe.phase.ticket" ~at:now ()
          | None -> ())

let connect ?(offer = Tls.Client.Fresh) t ~domain =
  let now = Simnet.Clock.now t.clock in
  let result =
    Faults.Net.attempt t.net ~hostname:domain ~now ~connect:(fun () ->
        Simnet.World.connect ~clock:t.clock t.world ~client:t.client ~hostname:domain ~offer)
  in
  record_outcome t ~now ~offer result;
  match result with
  | Ok (outcome, attempts) -> (observe ~attempts t ~domain outcome ~now, Some outcome)
  | Error (failure, attempts) ->
      ( Observation.failed_conn ~failure ~attempts
          ~region:(Simnet.World.region t.world) ~time:now ~domain (),
        None )

(* The client-side state needed to attempt a resumption later. *)
type resumable = {
  session : Tls.Session.t option;
  ticket : (int * string) option;
}

let resumable_of_outcome = function
  | None -> { session = None; ticket = None }
  | Some (o : Tls.Engine.outcome) ->
      { session = o.Tls.Engine.session; ticket = o.Tls.Engine.new_ticket }

let offer_session_id r =
  match r.session with
  | Some s when Tls.Session.id s <> "" -> Some (Tls.Client.Offer_session_id s)
  | _ -> None

let offer_ticket r =
  match (r.ticket, r.session) with
  | Some (_, ticket), Some session -> Some (Tls.Client.Offer_ticket { ticket; session })
  | _ -> None
