(** Operator-sharded parallel campaign runner.

    Cuts the world into connectivity shards along its shared-TLS-state
    edges (endpoint identity and STEK key material, unioned through
    {!Union_find}), then runs the standard daily-scan loop over each
    shard with private probes and a private {!Simnet.Clock}, fanned over
    a fixed pool of [Domain.spawn] workers. Shard composition and
    per-shard seeds depend only on the world, never on the worker count,
    so results are byte-identical for any [jobs] — see the implementation
    header for the full argument (and for why the parallel campaign is
    deliberately {e not} byte-identical to the serial
    {!Daily_scan.run}). *)

type shard = {
  shard_id : int;
  members : Simnet.World.domain array;  (** in world (rank) order *)
  weight : float;  (** summed {!estimated_cost} of the members *)
  max_component : float;
      (** weight of the heaviest single connectivity component packed
          into this shard — the unsplittable lower bound on its size *)
}

val estimated_cost : Simnet.World.domain -> float
(** The per-domain probe-cost estimate the packing balances: an HTTPS
    domain-day (two full handshakes) is weighted ~60x a no-HTTPS one
    (two refused connects). *)

val shards : ?target:int -> Simnet.World.t -> shard array
(** The deterministic shard decomposition: connectivity components of
    {!Simnet.World.domain_shard_keys}, packed longest-processing-time
    first into [ceil (n / target)] (default [target = 256]) bins of
    balanced estimated cost, then numbered heaviest-first — the order
    the run queue drains them in. Components never split across shards;
    every world domain appears in exactly one shard; no shard exceeds
    twice the mean weight unless it holds a single component heavier
    than the mean. Depends only on the world and [target], never on a
    worker count. Raises [Invalid_argument] if [target <= 0]. *)

val run :
  ?jobs:int ->
  ?progress:(shard:int -> day:int -> unit) ->
  ?injector:Faults.Injector.t ->
  ?retry:Faults.Retry.policy ->
  ?funnel:Faults.Funnel.t ->
  ?checkpoint:Durable.Checkpoint.t ->
  ?sink:Stream_sink.t ->
  ?retain_rows:bool ->
  ?supervise:Durable.Supervisor.policy ->
  ?chaos:(shard:int -> attempt:int -> day:int -> unit) ->
  ?obs:Obs.Recorder.t ->
  Simnet.World.t ->
  days:int ->
  unit ->
  Daily_scan.t
(** Runs the campaign over all shards with [jobs] workers (default
    [Domain.recommended_domain_count ()], clamped to the shard count;
    [jobs <= 1] runs sequentially on the calling domain). Workers drain
    an atomic shard queue in heaviest-first order — work-stealing LPT
    scheduling, so adding workers never strands a straggler shard behind
    an idle pool. Leaves the world clock at the campaign's end, like the
    serial runner. [progress] is called from worker domains — keep it
    reentrant.

    [sink] gives every shard a row stream (["shard-0007"], truncated on
    each attempt) into which completed days are appended as they finish;
    with [retain_rows:false] no shard holds its observation matrix in
    memory and the returned series carry empty [days] arrays — recover
    the campaign with {!Daily_scan.load_stream}. Abandoned shards still
    seal their streams with degraded (probe-less) rows, so a streamed
    archive loads whenever the campaign itself completed.

    [injector] is shared across shards (its decisions are pure hashes,
    so sharing is race-free and worker-count invariant); each shard's
    probes record into a shard-private funnel, absorbed into [funnel]
    after the join in shard order — sums only, so totals are identical
    for any [jobs].

    [checkpoint] gives every shard a stream (["shard-0007"]) in the
    store; completed days snapshot per shard and a resumed run restores
    fully-checkpointed shards without scanning them (shards are
    state-isolated by construction, so skipping one cannot change
    another's results). [supervise] (default
    {!Durable.Supervisor.default}) bounds in-process restarts of a
    raising shard; on exhaustion the shard is abandoned — its domains
    keep their list-presence ground truth, probe-derived fields stay
    empty, and the funnel records two {!Faults.Fault.Worker_crash}
    losses per present domain-day. In-process retries (attempt > 0) run
    without checkpoints: the world state the crashed attempt dirtied
    would fail the replay verification by design. [chaos] is a test
    hook called at the start of every (shard, attempt, day); raising
    from it simulates a worker crash.

    [obs] receives telemetry through shard-private recorders merged
    after the join in shard order; the merge laws (counters sum, gauges
    max) make the merged metrics independent of [jobs]. A crashed
    attempt's recorder is discarded with its funnel; each attempt wraps
    its scan in a [campaign.shard] span. *)
