(** The cross-domain session-cache experiment of Section 5.1: attempt to
    resume domain a's session on domain b, sampling up to [per_side]
    neighbours by AS and by IP per domain; groups grow transitively in
    the analysis. Probing is harmless — servers fall back to a full
    handshake on an unknown ID. *)

type edge = { from_domain : string; to_domain : string }

type result = {
  participants : string list;  (** domains that resumed their own session *)
  edges : edge list;  (** a's session resumed on b *)
}

val run :
  ?injector:Faults.Injector.t ->
  ?retry:Faults.Retry.policy ->
  ?funnel:Faults.Funnel.t ->
  Simnet.World.t ->
  ?per_side:int ->
  ?domains:Simnet.World.domain list option ->
  unit ->
  result
