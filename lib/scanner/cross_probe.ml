(* The cross-domain state-sharing experiment of Section 5.1: try to
   resume domain [a]'s session on domain [b]. For tractability the paper
   probes, for each site, up to five other sites in its AS and up to five
   sites sharing its IP address, then grows groups transitively; this
   module reproduces that sampling and emits the observed edges. Servers
   simply fall back to a full handshake on an unknown ID, so the probing
   is harmless — exactly the paper's argument. *)

type edge = { from_domain : string; to_domain : string }

type result = {
  participants : string list; (* domains that resumed their own session *)
  edges : edge list; (* a's session resumed on b *)
}

let pick_neighbors rng ~self ~limit candidates =
  let others = List.filter (fun n -> not (String.equal n self)) candidates in
  let arr = Array.of_list others in
  Crypto.Drbg.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min limit (Array.length arr)))

let run ?injector ?retry ?funnel world ?(per_side = 5) ?(domains = None) () =
  let probe = Probe.create ?injector ?retry ?funnel ~seed:"cross-probe" world in
  let rng = Crypto.Drbg.create ~seed:"cross-probe-neighbors" in
  let clock = Simnet.World.clock world in
  let targets =
    match domains with
    | Some l -> l
    | None -> Array.to_list (Simnet.World.domains world)
  in
  let participants = ref [] in
  let edges = ref [] in
  List.iter
    (fun d ->
      let name = Simnet.World.domain_name d in
      let _, outcome = Probe.connect probe ~domain:name in
      let resumable = Probe.resumable_of_outcome outcome in
      match Probe.offer_session_id resumable with
      | None -> ()
      | Some offer ->
          (* Confirm the domain resumes its own sessions at +1s; only
             those can participate (the paper's 357k baseline). *)
          Simnet.Clock.advance clock 1;
          let self_obs, _ = Probe.connect probe ~domain:name ~offer in
          if self_obs.Observation.resumed = Observation.By_session_id then begin
            participants := name :: !participants;
            let asn_mates =
              pick_neighbors rng ~self:name ~limit:per_side
                (Simnet.World.domains_in_asn world (Simnet.World.domain_asn d))
            in
            let ip_mates =
              pick_neighbors rng ~self:name ~limit:per_side
                (Simnet.World.domains_on_ip world (Simnet.World.domain_ip d))
            in
            List.iter
              (fun mate ->
                let obs, _ = Probe.connect probe ~domain:mate ~offer in
                if obs.Observation.resumed = Observation.By_session_id then
                  edges := { from_domain = name; to_domain = mate } :: !edges)
              (List.sort_uniq compare (asn_mates @ ip_mates))
          end)
    targets;
  { participants = !participants; edges = !edges }
