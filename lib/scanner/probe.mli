(** A probing client: one TLS connection against the simulated Internet,
    distilled into an {!Observation.conn}. Bulk settings (cached trust
    evaluation, no per-connection SKE verification) are documented in the
    implementation. *)

type t = {
  world : Simnet.World.t;
  client : Tls.Client.t;
  trust_cache : (string, bool) Hashtbl.t;
  env : Tls.Config.env;
  clock : Simnet.Clock.t;
  net : Faults.Net.t;
  obs : Obs.Recorder.t option;
}

val create :
  ?offer_suites:Tls.Types.cipher_suite list ->
  ?offer_ticket:bool ->
  ?clock:Simnet.Clock.t ->
  ?injector:Faults.Injector.t ->
  ?retry:Faults.Retry.policy ->
  ?funnel:Faults.Funnel.t ->
  ?obs:Obs.Recorder.t ->
  seed:string ->
  Simnet.World.t ->
  t
(** [clock] defaults to the world clock; a parallel campaign gives each
    shard's probes a private clock instead. Without [injector] the probe
    makes exactly one attempt per connection (the legacy path);
    [funnel] shares loss telemetry across probes of one serial run.
    [obs] collects probe counters and handshake-phase spans; it only
    reads outcomes, so the observation stream is byte-identical with it
    absent. *)

val funnel : t -> Faults.Funnel.t

val dhe_only :
  ?clock:Simnet.Clock.t ->
  ?injector:Faults.Injector.t ->
  ?retry:Faults.Retry.policy ->
  ?funnel:Faults.Funnel.t ->
  ?obs:Obs.Recorder.t ->
  Simnet.World.t ->
  seed:string ->
  t

val ecdhe_only :
  ?clock:Simnet.Clock.t ->
  ?injector:Faults.Injector.t ->
  ?retry:Faults.Retry.policy ->
  ?funnel:Faults.Funnel.t ->
  ?obs:Obs.Recorder.t ->
  Simnet.World.t ->
  seed:string ->
  t

val evaluate_trust : t -> domain:string -> chain:Tls.Cert.t list -> now:int -> bool
(** Chain validation, cached per domain. Only a full-chain evaluation
    populates the cache; an empty chain (failed or resumed connection)
    evaluates untrusted without poisoning the cache. *)

val observe :
  ?attempts:int -> t -> domain:string -> Tls.Engine.outcome -> now:int -> Observation.conn

val connect :
  ?offer:Tls.Client.offer -> t -> domain:string -> Observation.conn * Tls.Engine.outcome option
(** One probe operation at the probe clock's current virtual time:
    injected faults retry under the probe's policy, world-level errors
    are final and classified into the observation. *)

(** {2 Resumption state} *)

type resumable = { session : Tls.Session.t option; ticket : (int * string) option }

val resumable_of_outcome : Tls.Engine.outcome option -> resumable
val offer_session_id : resumable -> Tls.Client.offer option
val offer_ticket : resumable -> Tls.Client.offer option
