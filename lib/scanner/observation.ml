(* Typed observation records produced by the scanning experiments — the
   analog of the ZGrab output rows the paper's analyses consume — plus a
   CSV round-trip so campaigns can be persisted and re-analyzed. *)

type resumption = No_resumption | By_session_id | By_ticket

let resumption_to_string = function
  | No_resumption -> "none"
  | By_session_id -> "id"
  | By_ticket -> "ticket"

let resumption_of_string = function
  | "none" -> Some No_resumption
  | "id" -> Some By_session_id
  | "ticket" -> Some By_ticket
  | _ -> None

(* One TLS connection attempt. Option fields are absent when the
   connection failed or the feature was not exercised. *)
type conn = {
  time : int; (* epoch seconds of the attempt *)
  domain : string;
  ok : bool;
  resumed : resumption;
  cipher : Tls.Types.cipher_suite option;
  session_id_set : bool; (* server put a session ID in ServerHello *)
  session_id : string; (* hex; "" if none *)
  trusted : bool; (* chain validates against the root store *)
  stek_id : string option; (* hex key name from the issued ticket *)
  ticket_hint : int option; (* advertised lifetime hint *)
  dhe_value : string option; (* hex server DHE public value *)
  ecdhe_value : string option; (* hex server ECDHE public point *)
  failure : Faults.Fault.t option; (* why the connection failed; None when ok *)
  attempts : int; (* connection attempts this observation cost (>= 1) *)
  region : string; (* scan vantage the observation was made from *)
}

let failed_conn ?(failure = Faults.Fault.Unknown) ?(attempts = 1)
    ?(region = Simnet.Region.default_name) ~time ~domain () =
  {
    time;
    domain;
    ok = false;
    resumed = No_resumption;
    cipher = None;
    session_id_set = false;
    session_id = "";
    trusted = false;
    stek_id = None;
    ticket_hint = None;
    dhe_value = None;
    ecdhe_value = None;
    failure = Some failure;
    attempts;
    region;
  }

(* --- CSV ---------------------------------------------------------------- *)

(* Pre-fault-classification archives end at ecdhe_value, pre-region
   archives at attempts; all three header widths load ({!of_csv_row}
   maps a missing failure column on a failed row to [Unknown] and a
   missing region column to the default vantage). *)
let csv_header_legacy =
  "time,domain,ok,resumed,cipher,session_id_set,session_id,trusted,stek_id,ticket_hint,dhe_value,ecdhe_value"

let csv_header_v14 = csv_header_legacy ^ ",failure,attempts"
let csv_header = csv_header_v14 ^ ",region"

let opt_str = function None -> "" | Some s -> s
let opt_int = function None -> "" | Some i -> string_of_int i

let to_csv_row c =
  String.concat ","
    [
      string_of_int c.time;
      c.domain;
      string_of_bool c.ok;
      resumption_to_string c.resumed;
      (match c.cipher with
      | None -> ""
      | Some s -> string_of_int (Tls.Types.suite_to_int s));
      string_of_bool c.session_id_set;
      c.session_id;
      string_of_bool c.trusted;
      opt_str c.stek_id;
      opt_int c.ticket_hint;
      opt_str c.dhe_value;
      opt_str c.ecdhe_value;
      (match c.failure with None -> "" | Some f -> Faults.Fault.to_string f);
      string_of_int c.attempts;
      c.region;
    ]

let of_csv_row row =
  let parse time domain ok resumed cipher id_set session_id trusted stek hint dhe ecdhe
      ~failure ~attempts ~region =
      let ( let* ) = Option.bind in
      let* time = int_of_string_opt time in
      let* ok = bool_of_string_opt ok in
      let* resumed = resumption_of_string resumed in
      let* id_set = bool_of_string_opt id_set in
      let* trusted = bool_of_string_opt trusted in
      let cipher =
        if cipher = "" then None
        else Option.bind (int_of_string_opt cipher) Tls.Types.suite_of_int
      in
      let blank_opt s = if s = "" then None else Some s in
      let* failure =
        match failure with
        | None -> Some (if ok then None else Some Faults.Fault.Unknown)
        | Some "" -> Some None
        | Some s ->
            (* Forward compat: archives written by a newer build may name
               causes this build doesn't know; load them as [Unknown]
               rather than rejecting the whole archive. *)
            Some
              (Some
                 (Option.value (Faults.Fault.of_string s)
                    ~default:Faults.Fault.Unknown))
      in
      let* attempts =
        match attempts with None -> Some 1 | Some s -> int_of_string_opt s
      in
      let region =
        match region with
        | None | Some "" -> Simnet.Region.default_name
        | Some r -> r
      in
      Some
        {
          time;
          domain;
          ok;
          resumed;
          cipher;
          session_id_set = id_set;
          session_id;
          trusted;
          stek_id = blank_opt stek;
          ticket_hint = (if hint = "" then None else int_of_string_opt hint);
          dhe_value = blank_opt dhe;
          ecdhe_value = blank_opt ecdhe;
          failure;
          attempts;
          region;
        }
  in
  match String.split_on_char ',' row with
  | [ time; domain; ok; resumed; cipher; id_set; session_id; trusted; stek; hint; dhe; ecdhe ] ->
      (* Legacy 12-column archive row. *)
      parse time domain ok resumed cipher id_set session_id trusted stek hint dhe ecdhe
        ~failure:None ~attempts:None ~region:None
  | [
      time; domain; ok; resumed; cipher; id_set; session_id; trusted; stek; hint; dhe; ecdhe;
      failure; attempts;
    ] ->
      (* Pre-region 14-column archive row. *)
      parse time domain ok resumed cipher id_set session_id trusted stek hint dhe ecdhe
        ~failure:(Some failure) ~attempts:(Some attempts) ~region:None
  | [
      time; domain; ok; resumed; cipher; id_set; session_id; trusted; stek; hint; dhe; ecdhe;
      failure; attempts; region;
    ] ->
      parse time domain ok resumed cipher id_set session_id trusted stek hint dhe ecdhe
        ~failure:(Some failure) ~attempts:(Some attempts) ~region:(Some region)
  | _ -> None

(* Atomic + checksummed like every archived artifact: a crash mid-write
   cannot leave a torn CSV, and [read_csv] detects damage at load. *)
let write_csv path conns =
  Durable.Atomic_io.with_writer path (fun w ->
      Durable.Atomic_io.add w csv_header;
      Durable.Atomic_io.add w "\n";
      List.iter
        (fun c ->
          Durable.Atomic_io.add w (to_csv_row c);
          Durable.Atomic_io.add w "\n")
        conns)

let read_csv path =
  match Durable.Atomic_io.read_any path with
  | Error e -> Error (Durable.Atomic_io.error_to_string ~what:"observations" e)
  | Ok content ->
      let lines =
        match List.rev (String.split_on_char '\n' content) with
        | "" :: rest -> List.rev rest
        | all -> List.rev all
      in
      let rec go acc first = function
        | [] -> Ok (List.rev acc)
        (* Campaign archives carry a `#tlsharm-campaign,...` metadata
           line (and future formats may add more); they are framing, not
           observations. *)
        | line :: rest when String.length line > 0 && line.[0] = '#' -> go acc first rest
        | line :: rest
          when first
               && (String.equal line csv_header
                  || String.equal line csv_header_v14
                  || String.equal line csv_header_legacy)
          ->
            go acc false rest
        | line :: rest -> (
            match of_csv_row line with
            | Some c -> go (c :: acc) false rest
            | None -> Error (Printf.sprintf "bad CSV row: %s" line))
      in
      go [] true lines
