(** Cross-regional scanning: the same domain-days probed from several
    vantage points (one world per region, per-vantage DRBG streams),
    after Alashwali et al.'s HTTPS-inconsistency measurements. Region
    scans are independent, so results are byte-identical at any job
    count. *)

type config = {
  base : Simnet.World.config;
      (** base world config; its [region] field is overridden per
          vantage *)
  regions : Simnet.Region.t list;
  days : int;
}

type t

val run : ?jobs:int -> config -> t
(** Raises [Invalid_argument] on an unknown region, an empty region
    list, or [days < 1]. [jobs] > 1 scans whole regions in parallel;
    the result is identical at any value. *)

val rows : t -> Observation.conn list
(** Region-major (configured order), then day, then sweep (default
    sweep before DHE-only sweep), then rank order — a deterministic
    total order. *)

val regions : t -> Simnet.Region.t list

val save : t -> string -> unit
(** Archive as an observation CSV (atomic + checksummed). *)

val load : string -> (Observation.conn list, string) result
(** Load an archived cross-vantage CSV; legacy archives without a
    region column load attributed to the default region. *)
