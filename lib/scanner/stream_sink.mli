(** Directory-backed streaming observation sink.

    Lets a campaign append each day's domain-day rows as the day
    completes — one {!Durable.Spool} per scan stream — instead of
    holding the full observation matrix in memory until a final CSV
    save. The payloads are opaque here: {!Daily_scan} owns the row
    codec (encoding day blocks, the end-of-stream trailer, and the
    loader that reassembles a campaign from a sink directory).

    Streamed archives obey the same two invariants as in-memory ones:
    byte-identical content at any [--jobs] (stream names and payloads
    depend only on the world and shard partition), and byte-identical
    content after a checkpoint resume (spools are truncated on open and
    every completed day is replayed into them). *)

type t
(** An open sink directory. *)

type stream
(** One append-only row stream within the sink ("serial", or one per
    parallel shard — mirroring checkpoint stream names). *)

val schema : string

val create : dir:string -> manifest:(string * string) list -> (t, string) result
(** Create [dir] if needed and (re)write its manifest. An existing
    directory is reused — its spools will be truncated as streams are
    opened, which is what makes a resumed run byte-identical to an
    uninterrupted one. *)

val dir : t -> string

val stream : t -> string -> stream
(** Open (truncating) the named row spool. *)

val append_day : stream -> rows:int -> string -> unit
(** Append one day-block payload; [rows] feeds {!rows_written}. *)

val finish : stream -> trailer:string -> unit
(** Append the end-of-stream trailer (per-domain facts only known at
    campaign end, e.g. trust verdicts) and seal the spool. Idempotent. *)

val rows_written : t -> int
(** Total rows appended across all streams (worker-domain safe). *)

val manifest : dir:string -> ((string * string) list, string) result

val stream_names : dir:string -> (string list, string) result
(** Stream names present in a sink directory, sorted. *)

val read_stream : dir:string -> string -> (string list * string, string) result
(** [read_stream ~dir name] returns [(day_blocks, trailer)] for a
    complete stream; an interrupted (footer-less or trailer-less) spool
    is an [Error] directing the operator to resume from the checkpoint
    rather than silently loading a partial archive. *)
