(* Behavioural profiles for simulated HTTPS deployments.

   This module is the calibration table of the reproduction: each
   distribution below is matched to a number reported in the paper
   (Table 1, Figures 1-5, and the prose of Sections 4 and 6) or to the
   documented defaults of the server software the paper names (Apache,
   Nginx, IIS). The long tail of one-domain operators is sampled from
   [sample_tail]; the handful of giant operators that dominate the
   sharing analyses (CloudFlare, Google, ...) are described separately in
   {!Operators}. All percentages quoted in comments are fractions of
   browser-trusted HTTPS domains unless stated otherwise. *)

module T = Tls.Types

type ticket = {
  hint : int; (* advertised lifetime hint, seconds; 0 = unspecified *)
  accept : int; (* how long tickets actually resume *)
  stek : Tls.Stek_manager.policy;
  reissue : bool;
}

(* Misconfiguration taxonomy, after the classic server-test checklist
   (LOGJAM-grade DH groups, static-key-exchange-only endpoints, stale
   cipher menus). Orthogonal to the crypto-shortcut axis: a site can
   rotate its STEK daily and still negotiate an export-grade DH group. *)
type weak_dh =
  | Export_grade (* LOGJAM-class export group *)
  | Legacy (* undersized but not export-grade *)

type misconfig = {
  weak_dh : weak_dh option; (* served DHE group is undersized *)
  static_only : bool; (* static key exchange only (no FS at all) *)
  stale_order : bool; (* prefers obsolete suites over modern ones *)
}

type t = {
  https : bool;
  trusted : bool; (* presents a browser-trusted chain *)
  suites : T.cipher_suite list; (* preference order *)
  issue_ids : bool; (* sets a session ID in ServerHello *)
  cache_lifetime : int option; (* None = never resumes by ID *)
  ticket : ticket option;
  dhe_policy : Tls.Kex_cache.policy;
  ecdhe_policy : Tls.Kex_cache.policy;
  restart_mean : int option; (* mean seconds between process restarts *)
  failure_rate : float; (* transient per-connection failure probability *)
  misconfig : misconfig;
}

let minute = 60
let hour = 3600
let day = 86_400

let well_configured = { weak_dh = None; static_only = false; stale_order = false }

(* One additive severity scale for combined-harm ranking: export-grade DH
   (actively exploitable key recovery) > no forward secrecy at all >
   merely undersized DH > a stale preference order. *)
let misconfig_severity m =
  (match m.weak_dh with Some Export_grade -> 4 | Some Legacy -> 2 | None -> 0)
  + (if m.static_only then 3 else 0)
  + if m.stale_order then 1 else 0

let misconfig_label m =
  let parts =
    (match m.weak_dh with
    | Some Export_grade -> [ "export-dh" ]
    | Some Legacy -> [ "legacy-dh" ]
    | None -> [])
    @ (if m.static_only then [ "static-only" ] else [])
    @ if m.stale_order then [ "stale-order" ] else []
  in
  match parts with [] -> "clean" | _ -> String.concat "+" parts

(* The worse of two configurations, used when a regional override
   degrades an already-imperfect base profile. *)
let misconfig_combine a b =
  {
    weak_dh =
      (match (a.weak_dh, b.weak_dh) with
      | Some Export_grade, _ | _, Some Export_grade -> Some Export_grade
      | Some Legacy, _ | _, Some Legacy -> Some Legacy
      | None, None -> None);
    static_only = a.static_only || b.static_only;
    stale_order = a.stale_order || b.stale_order;
  }

(* Rewrite a suite menu under a misconfiguration: static-only endpoints
   drop every forward-secret suite; a stale preference order serves the
   oldest suites first (DHE, then static, ECDHE last) without changing
   the supported set. *)
let misconfig_suites m suites =
  if suites = [] then []
  else if m.static_only then [ T.ECDH_ECDSA_AES128_SHA256 ]
  else if m.stale_order then
    let has s = List.mem s suites in
    List.filter has
      [ T.DHE_ECDSA_AES128_SHA256; T.ECDH_ECDSA_AES128_SHA256; T.ECDHE_ECDSA_AES128_SHA256 ]
  else suites

(* Base-profile misconfiguration rates, kept small enough that the
   Table 1 suite marginals stay inside the calibration tolerances:
   ~2.6% of sites serve an undersized DH group, ~0.6% are static-only,
   ~3% run a stale preference order. *)
let sample_misconfig rng =
  let weak_dh =
    Crypto.Drbg.weighted rng
      [ (0.974, None); (0.008, Some Export_grade); (0.018, Some Legacy) ]
  in
  let static_only = Crypto.Drbg.bool rng ~p:0.006 in
  let stale_order = Crypto.Drbg.bool rng ~p:0.03 in
  { weak_dh; static_only; stale_order }

(* A regional downgrade for the cross-vantage worlds: what an
   inconsistent operator serves from its weaker regions, combined with
   the base misconfiguration by {!misconfig_combine}. *)
let sample_downgrade rng =
  Crypto.Drbg.weighted rng
    [
      (0.40, { well_configured with weak_dh = Some Legacy });
      (0.15, { well_configured with weak_dh = Some Export_grade });
      (0.25, { well_configured with static_only = true });
      (0.20, { well_configured with stale_order = true });
    ]

let no_https =
  {
    https = false;
    trusted = false;
    suites = [];
    issue_ids = false;
    cache_lifetime = None;
    ticket = None;
    dhe_policy = Tls.Kex_cache.Fresh_always;
    ecdhe_policy = Tls.Kex_cache.Fresh_always;
    restart_mean = None;
    failure_rate = 0.;
    misconfig = well_configured;
  }

(* --- Conditional distributions for the long tail --------------------------- *)

(* Cipher-suite support. Table 1: of browser-trusted TLS domains, 89%
   complete ECDHE (390k/438k) and 59% offer DHE (252k/427k); Section 4.4:
   57% complete a DHE-only handshake. The remainder is static key
   exchange only. Weights below are the joint mix that realizes those
   marginals. *)
let sample_suites rng =
  Crypto.Drbg.weighted rng
    [
      (* ECDHE preferred, DHE fallback, static fallback: the common
         full-support configuration. *)
      (0.58, [ T.ECDHE_ECDSA_AES128_SHA256; T.DHE_ECDSA_AES128_SHA256; T.ECDH_ECDSA_AES128_SHA256 ]);
      (* ECDHE + static, no DHE (DHE disabled after Logjam guidance). *)
      (0.27, [ T.ECDHE_ECDSA_AES128_SHA256; T.ECDH_ECDSA_AES128_SHA256 ]);
      (* DHE-only forward secrecy (no ECC support). *)
      (0.05, [ T.DHE_ECDSA_AES128_SHA256; T.ECDH_ECDSA_AES128_SHA256 ]);
      (* No forward secrecy at all. *)
      (0.10, [ T.ECDH_ECDSA_AES128_SHA256 ]);
    ]

(* Session-ID cache lifetimes. Figure 1: of domains that resume at all,
   61% expire within 5 minutes (the Apache/Nginx default), 82% within an
   hour; a visible step at 10 hours matches the Microsoft IIS default;
   0.8% resume for 24 hours or more. 97% of domains set an ID but only
   83/97 ever resume (Nginx issues IDs with resumption off). *)
let sample_session_id rng =
  let issue_ids = Crypto.Drbg.bool rng ~p:0.97 in
  if not issue_ids then (false, None)
  else begin
    let resumes = Crypto.Drbg.bool rng ~p:(0.83 /. 0.97) in
    if not resumes then (true, None)
    else
      (* Weights must sum to 1.0: [Drbg.weighted] normalizes by the
         total, so a short table silently rescales every entry and the
         calibration comments stop matching the sampled marginals. *)
      let lifetime =
        Crypto.Drbg.weighted rng
          [
            (0.10, 3 * minute);
            (0.53, 5 * minute) (* Apache / Nginx default *);
            (0.04, 10 * minute);
            (0.07, 30 * minute);
            (0.09, 1 * hour);
            (0.04, 4 * hour);
            (0.09, 10 * hour) (* IIS default *);
            (0.02, 18 * hour);
            (0.014, 24 * hour);
            (0.006, 48 * hour);
          ]
      in
      (true, Some lifetime)
  end

(* STEK policies for ticket-issuing tail sites. Figure 3 (fractions of
   all trusted domains; tickets issued by 77%): 41% rotate the issuing
   STEK daily, 22% hold one for 7+ days, 10% for 30+ days. Most tail
   sites run Apache/Nginx with a process-lifetime random STEK, so the
   restart cadence *is* the rotation schedule; a minority load a static
   key file and never rotate. *)
let sample_stek rng =
  Crypto.Drbg.weighted rng
    [
      (* Modern deployments with real rotation. *)
      (0.28, `Rotate (day, 2 * hour));
      (0.05, `Rotate (12 * hour, 2 * hour));
      (* Process-lifetime STEKs; the paired value is the restart period. *)
      (0.20, `Per_process (1 * day));
      (0.13, `Per_process (3 * day));
      (0.18, `Per_process (10 * day));
      (0.06, `Per_process (45 * day));
      (* Static key file, synchronized across servers, never rotated. *)
      (0.10, `Static);
    ]

(* Ticket acceptance lifetimes. Figure 2: 67% under 5 minutes (the
   3-minute Apache/Nginx default), 76% within an hour; CloudFlare's 18h
   and Google's 28h arrive via the named operators, not this tail. The
   hint follows the accept time except for ~4% of issuers that leave it
   unspecified (hint 0), and a couple of outliers advertise 90 days. *)
let sample_ticket rng ~stek =
  let issues = Crypto.Drbg.bool rng ~p:0.70 in
  if not issues then None
  else begin
    let accept =
      Crypto.Drbg.weighted rng
        [
          (0.84, 3 * minute) (* Apache / Nginx default *);
          (0.04, 5 * minute);
          (0.02, 10 * minute);
          (0.02, 30 * minute);
          (0.04, 1 * hour);
          (0.015, 4 * hour);
          (0.015, 10 * hour);
          (0.01, 24 * hour);
        ]
    in
    let hint = if Crypto.Drbg.bool rng ~p:0.04 then 0 else accept in
    let policy =
      match stek with
      | `Rotate (period, window) ->
          Tls.Stek_manager.Rotate_every { period; accept_window = max window accept }
      | `Per_process _ -> Tls.Stek_manager.Per_process
      | `Static -> Tls.Stek_manager.Static
    in
    Some { hint; accept; stek = policy; reissue = true }
  end

(* Ephemeral-value reuse. Table 1 and Section 4.4:
   - DHE: 7.2% of DHE-capable domains repeat a value within a
     10-connection burst; 2.3% hold one for a day or more, 2.0% for 7+
     days, 0.9% for 30+ days (fractions of DHE-completing domains).
   - ECDHE: 15.5% repeat within a burst; 4.2% a day or more, 3.7% 7+,
     1.7% 30+ days. OpenSSL pre-2016 reused within a process by default,
     so [Reuse_forever] spans are clipped by the restart cadence. *)
(* Each kex sampler also states how the site's restart cadence should look
   for long-reuse spans to survive: [`No_pref] for fresh/TTL policies,
   [`Mean m] for process-lifetime reuse on a server restarted every ~m
   seconds, [`Never] for set-and-forget servers. *)
let sample_dhe_policy rng =
  Crypto.Drbg.weighted rng
    [
      (0.918, (Tls.Kex_cache.Fresh_always, `No_pref));
      (0.020, (Tls.Kex_cache.Reuse_for (1 * hour), `No_pref));
      (0.030, (Tls.Kex_cache.Reuse_for (12 * hour), `No_pref));
      (0.010, (Tls.Kex_cache.Reuse_forever, `Mean (2 * day)));
      (0.014, (Tls.Kex_cache.Reuse_forever, `Mean (14 * day)));
      (0.008, (Tls.Kex_cache.Reuse_forever, `Never));
    ]

let sample_ecdhe_policy rng =
  Crypto.Drbg.weighted rng
    [
      (0.836, (Tls.Kex_cache.Fresh_always, `No_pref));
      (0.060, (Tls.Kex_cache.Reuse_for (30 * minute), `No_pref));
      (0.055, (Tls.Kex_cache.Reuse_for (6 * hour), `No_pref));
      (0.015, (Tls.Kex_cache.Reuse_forever, `Mean (2 * day)));
      (0.022, (Tls.Kex_cache.Reuse_forever, `Mean (20 * day)));
      (0.012, (Tls.Kex_cache.Reuse_forever, `Never));
    ]

(* Draw one independent long-tail site. The HTTPS / trust gates follow the
   Table 1 funnel: ~66% of stable Top Million domains support HTTPS and
   ~60% of those present a browser-trusted chain (~45% overall incl. the big operators). *)
let sample_tail rng =
  if not (Crypto.Drbg.bool rng ~p:0.66) then no_https
  else begin
    let trusted = Crypto.Drbg.bool rng ~p:0.58 in
    let suites = sample_suites rng in
    let issue_ids, cache_lifetime = sample_session_id rng in
    let stek = sample_stek rng in
    let ticket = sample_ticket rng ~stek in
    let dhe_policy, dhe_pref = sample_dhe_policy rng in
    let ecdhe_policy, ecdhe_pref = sample_ecdhe_policy rng in
    let misconfig = sample_misconfig rng in
    (* A site that keeps one process-lifetime ephemeral value for weeks is
       by definition a server that is not restarted; that preference
       dominates. Otherwise the restart cadence comes from the STEK story
       (process-lifetime STEKs rotate exactly as often as the process
       restarts); sites with no per-process state restart rarely. *)
    let kex_pref =
      match (dhe_pref, ecdhe_pref) with
      | `Never, _ | _, `Never -> `Never
      | `Mean a, `Mean b -> `Mean (max a b)
      | `Mean a, `No_pref | `No_pref, `Mean a -> `Mean a
      | `No_pref, `No_pref -> `No_pref
    in
    let restart_mean =
      match kex_pref with
      | `Never -> None
      | `Mean m -> Some m
      | `No_pref -> (
          match stek with `Per_process mean -> Some mean | `Rotate _ | `Static -> Some (90 * day))
    in
    {
      https = true;
      trusted;
      suites;
      issue_ids;
      cache_lifetime;
      ticket;
      dhe_policy;
      ecdhe_policy;
      restart_mean;
      failure_rate = 0.01;
      misconfig;
    }
  end
