(* Construction of the simulated HTTPS Internet.

   The world stands in for the Alexa Top Million: a ranked population of
   domains, each served by an *endpoint* (an SSL terminator or terminator
   fleet) holding the mutable TLS secret state — session cache, STEK
   manager, ephemeral key-exchange cache. Endpoints may serve many domains
   (that is the state sharing of Section 5) and restart on schedules
   (which bounds per-process secrets). The population mixes:

   - the named giant operators of {!Operators} (CloudFlare, Google, ...),
   - the case-study domains of {!Notable} (yahoo.com, netflix.com, ...),
   - shared-hosting pods and independent long-tail sites drawn from the
     calibrated distributions in {!Profile}.

   Because simulating 10^6 servers is wasteful, the world *samples* the
   million: each sampled domain carries a weight (how many real domains it
   represents), ranks 1..1000 are sampled exhaustively (weight 1), and the
   analyses report weighted counts. The default scale keeps every
   behaviour class populated while a full 63-day campaign runs in
   seconds. *)

module T = Tls.Types

let universe = 1_000_000
let day = Clock.day

(* The longitudinal campaign begins this many days after world start (the
   point experiments of the study timeline run first); seeded case-study
   rotation schedules account for it so their measured spans match the
   paper's. *)
let case_study_lead_days = 3

type config = {
  seed : string;
  n_domains : int; (* sampled population size *)
  start_time : int; (* epoch seconds at which the study begins *)
  use_real_crypto : bool; (* Oakley-2 + P-256 instead of small groups *)
  stable_fraction : float; (* domains present in the list every day *)
  mx_google_fraction : float; (* domains whose MX points at Google (9.1%) *)
  region : Region.t; (* scan vantage; the default reproduces the paper *)
}

let default_config =
  {
    seed = "tlsharm";
    n_domains = 10_000;
    start_time = 1_456_876_800; (* March 2, 2016 - the paper's first scan day *)
    use_real_crypto = false;
    stable_fraction = 0.55;
    mx_google_fraction = 0.091;
    region = Region.default_name;
  }

(* --- Endpoints ---------------------------------------------------------------- *)

(* One server process in a farm. Processes have their own ephemeral-value
   caches and (when the STEK policy is per-process) their own STEK, and
   restart independently — which is what produces the scan jitter the
   paper describes (a load balancer without client affinity hands
   consecutive connections to different processes with different
   values). *)
type slot = {
  sl_index : int;
  sl_kex : Tls.Kex_cache.t;
  sl_stek : Tls.Stek_manager.t option;
  sl_servers : (string, Tls.Server.t) Hashtbl.t;
  mutable sl_next_restart : int option;
  mutable sl_scheduled : int list; (* ascending epoch seconds *)
  sl_rng : Crypto.Drbg.t;
}

type endpoint = {
  ep_id : int;
  ep_operator : string;
  ep_label : string;
  ep_asn : int;
  ep_ips : int array; (* candidate addresses; a domain maps to one *)
  ep_failure_rate : float;
  ep_session_cache : Tls.Session_cache.t option; (* shared across the farm *)
  ep_flush_cache_on_restart : bool;
  ep_restart_period : int option; (* jittered-periodic process restarts *)
  ep_slots : slot array;
  ep_rng : Crypto.Drbg.t;
}

(* How an endpoint's STEK is provisioned: one synchronized key (a key
   file or rotation infrastructure) across the whole farm, or a random
   per-process key in every slot. *)
type stek_spec =
  | Shared_stek of Tls.Stek_manager.t
  | Per_slot_stek of string (* derivation label *)

(* Per-endpoint behaviour shared by all its domains' servers. [b_env] is
   the TLS environment every server on the endpoint runs under — uniform
   per endpoint because the slot-shared {!Tls.Kex_cache} hands the same
   cached DHE keypair to every server on the slot, so two servers with
   different groups on one endpoint would serve incoherent values. *)
type behavior = {
  b_env : Tls.Config.env;
  b_suites : T.cipher_suite list;
  b_issue_ids : bool;
  b_ticket : (int * int * bool) option; (* hint, accept, reissue *)
}

type domain = {
  d_name : string;
  mutable d_rank : int;
  mutable d_weight : float;
  d_operator : string;
  d_endpoint : endpoint option;
  d_ip : int; (* the A record used when connecting *)
  d_trusted : bool;
  d_mx_google : bool;
  d_stable : bool;
  d_presence_p : float;
  d_misconfig : Profile.misconfig; (* effective at this world's region *)
}

type t = {
  config : config;
  env : Tls.Config.env;
  root_store : Tls.Cert.root_store;
  root_ca : Tls.Cert.authority;
  intermediate_ca : Tls.Cert.authority;
  rogue_ca : Tls.Cert.authority; (* issuer of untrusted chains *)
  clock : Clock.t;
  domains : domain array;
  by_name : (string, domain) Hashtbl.t;
  endpoints : endpoint list;
  by_asn : (int, string list) Hashtbl.t; (* ASN -> domain names *)
  by_ip : (int, string list) Hashtbl.t;
  operator_steks : (string, Tls.Stek_manager.t) Hashtbl.t;
  service_hosts : (string, endpoint) Hashtbl.t;
      (* non-web TLS endpoints (mail servers); section 7.2 probes these *)
}

let clock t = t.clock
let env t = t.env
let region t = t.config.region
let world_config t = t.config
let root_store t = t.root_store
let domains t = t.domains
let find_domain t name = Hashtbl.find_opt t.by_name name
let operator_stek t op = Hashtbl.find_opt t.operator_steks op

let domain_name d = d.d_name
let domain_rank d = d.d_rank
let domain_weight d = d.d_weight
let domain_operator d = d.d_operator
let domain_trusted d = d.d_trusted
let domain_has_https d = d.d_endpoint <> None
let domain_stable d = d.d_stable
let domain_mx_google d = d.d_mx_google
let domain_ip d = d.d_ip
let domain_asn d = match d.d_endpoint with Some ep -> ep.ep_asn | None -> 0
let domain_misconfig d = d.d_misconfig

(* --- Shard accessors ------------------------------------------------------------

   Identifiers of every shared-secret-state component a domain's
   connections can mutate. Two domains may be scanned concurrently iff
   the transitive closure of these keys keeps them apart:

   - ["ep:<id>"] — the endpoint: its session cache, per-slot ephemeral
     key-exchange caches, per-slot servers and the failure/affinity RNGs
     are all endpoint-scoped, so this one key subsumes the session-cache
     and operator-pod edges of Section 5;
   - ["stek:<id>"] — each slot's STEK manager, keyed by the identity of
     its key material: operator-scoped STEKs (CloudFlare) and the seeded
     cross-operator clusters (Jack Henry) span endpoints, which is
     exactly the cross-domain sharing that forbids independent scans.

   Domains without HTTPS touch no server state and return no keys. *)

let domain_shard_keys _t d =
  match d.d_endpoint with
  | None -> []
  | Some ep ->
      let keys = ref [ Printf.sprintf "ep:%d" ep.ep_id ] in
      Array.iter
        (fun slot ->
          match slot.sl_stek with
          | None -> ()
          | Some m -> keys := ("stek:" ^ Tls.Stek_manager.id m) :: !keys)
        ep.ep_slots;
      List.sort_uniq compare !keys

(* --- Builder ------------------------------------------------------------------- *)

type builder = {
  bc : config;
  benv : Tls.Config.env;
  brng : Crypto.Drbg.t;
  broot : Tls.Cert.authority;
  bintermediate : Tls.Cert.authority;
  brogue : Tls.Cert.authority;
  mutable bep_id : int;
  mutable bips : int;
  mutable bdomains : domain list;
  mutable bendpoints : endpoint list;
  bsteks : (string, Tls.Stek_manager.t) Hashtbl.t;
  bservice_hosts : (string, endpoint) Hashtbl.t;
}

let fresh_ip b =
  b.bips <- b.bips + 1;
  b.bips

(* --- Regional misconfiguration overrides ------------------------------------

   A non-default region's world differs from the default vantage only in
   the configurations of regionally-inconsistent operators. Every
   decision below is a hash of (seed, operator[, region]) or a dedicated
   DRBG seeded from them — never the sequential builder DRBG — so adding
   or changing overrides cannot shift any other draw: certificates,
   ranks, endpoints and secrets are byte-identical across regions. *)

let hash01 s =
  let h = Crypto.Sha256.digest s in
  float_of_int (Char.code h.[0] land 0x7f) /. 128.0

(* Calibrated to Alashwali et al.'s headline: a clear minority of
   domains serve different configs by region. ~10% of tail operators are
   inconsistent at all, and an inconsistent operator downgrades from
   about half of the non-default vantages. *)
let tail_inconsistent_p = 0.10
let region_downgrade_p = 0.5

let effective_misconfig (bc : config) ~operator ~note ~base =
  if String.equal bc.region Region.default_name then base
  else
    let inconsistent =
      match note with
      | `Inconsistent -> true
      | `Consistent -> false
      | `Tail ->
          hash01 (Printf.sprintf "region-eligible:%s:%s" bc.seed operator)
          < tail_inconsistent_p
    in
    if not inconsistent then base
    else if
      hash01 (Printf.sprintf "region-downgrade:%s:%s:%s" bc.seed bc.region operator)
      >= region_downgrade_p
    then base
    else
      let rng =
        Crypto.Drbg.create
          ~seed:(Printf.sprintf "%s:region:%s:%s" bc.seed bc.region operator)
      in
      Profile.misconfig_combine base (Profile.sample_downgrade rng)

(* The TLS environment a misconfiguration implies: an undersized DH
   group replaces the env default. Groups are derived from the world
   seed alone (not the operator), matching reality — weak deployments
   overwhelmingly share the same few export-grade groups, which is what
   made LOGJAM a mass attack. [Dh.generate] memoizes, so every weak
   endpoint shares one physical group object. *)
let misconfig_env b (m : Profile.misconfig) =
  match m.Profile.weak_dh with
  | None -> b.benv
  | Some grade ->
      let bits =
        match (b.bc.use_real_crypto, grade) with
        | false, Profile.Export_grade -> 24
        | false, Profile.Legacy -> 40
        | true, Profile.Export_grade -> 160
        | true, Profile.Legacy -> 256
      in
      { b.benv with Tls.Config.dh_group = Crypto.Dh.generate ~bits ~seed:b.bc.seed }

(* Restarts are jittered-periodic (period x 0.8..1.2), like cron-driven
   deployments: exponential gaps would make the *maximum* gap over nine
   weeks several times the mean and inflate every span statistic. *)
let next_restart_gap rng period =
  max 600 (int_of_float (float_of_int period *. (0.8 +. (0.4 *. Crypto.Drbg.float01 rng))))

let make_endpoint b ~operator ~label ~asn ~ip_count ~cache_lifetime ~stek ~dhe ~ecdhe
    ?(failure_rate = 0.01) ?(flush_on_restart = true) ?(n_slots = 1) ?restart_period
    ?(restart_days = []) () =
  b.bep_id <- b.bep_id + 1;
  let rng = Crypto.Drbg.fork b.brng ~label:(Printf.sprintf "ep:%s:%s:%d" operator label b.bep_id) in
  let slots =
    Array.init (max 1 n_slots) (fun i ->
        let sl_rng = Crypto.Drbg.fork rng ~label:(Printf.sprintf "slot%d" i) in
        let sl_stek =
          match stek with
          | None -> None
          | Some (Shared_stek m) -> Some m
          | Some (Per_slot_stek secret_label) ->
              Some
                (Tls.Stek_manager.create ~policy:Tls.Stek_manager.Per_process
                   ~secret:(Printf.sprintf "%s:%s/slot%d" b.bc.seed secret_label i)
                   ~now:b.bc.start_time)
        in
        let scheduled = List.sort compare restart_days in
        let sl_next_restart =
          (* Independent phase per process; when a fixed schedule exists,
             periodic restarts only begin after it is exhausted. *)
          if scheduled <> [] then None
          else
            Option.map
              (fun period -> b.bc.start_time + Crypto.Drbg.int_below sl_rng (max 1 period))
              restart_period
        in
        {
          sl_index = i;
          sl_kex = Tls.Kex_cache.create ~dhe ~ecdhe ();
          sl_stek;
          sl_servers = Hashtbl.create 8;
          sl_next_restart;
          sl_scheduled = scheduled;
          sl_rng;
        })
  in
  let ep =
    {
      ep_id = b.bep_id;
      ep_operator = operator;
      ep_label = label;
      ep_asn = asn;
      ep_ips = Array.init (max 1 ip_count) (fun _ -> fresh_ip b);
      ep_failure_rate = failure_rate;
      ep_session_cache =
        Option.map
          (fun lifetime -> Tls.Session_cache.create ~lifetime ~capacity:100_000)
          cache_lifetime;
      ep_flush_cache_on_restart = flush_on_restart;
      ep_restart_period = restart_period;
      ep_slots = slots;
      ep_rng = rng;
    }
  in
  b.bendpoints <- ep :: b.bendpoints;
  ep

(* Issue the certificate chain for one domain. Untrusted domains get a
   chain from the rogue CA (not in the root store) or an expired cert. *)
let issue_chain b ~hostname ~trusted =
  let curve = b.benv.Tls.Config.pki_curve in
  let rng = Crypto.Drbg.fork b.brng ~label:("cert:" ^ hostname) in
  let keypair = Crypto.Ecdsa.gen_keypair curve rng in
  let pub = Crypto.Ec.point_bytes curve (Crypto.Ecdsa.public_key keypair) in
  let not_before = b.bc.start_time - (180 * day) in
  let not_after = b.bc.start_time + (365 * day) in
  let serial = Crypto.Drbg.int_below rng 1_000_000_000 in
  let sans = [ "www." ^ hostname ] in
  if trusted then begin
    (* Most chains go through the intermediate, like real ones do. *)
    if Crypto.Drbg.bool rng ~p:0.8 then begin
      let leaf =
        Tls.Cert.issue b.bintermediate ~curve ~subject:hostname ~sans ~not_before ~not_after
          ~serial ~pub rng
      in
      ([ leaf; Tls.Cert.authority_cert b.bintermediate ], keypair)
    end
    else begin
      let leaf =
        Tls.Cert.issue b.broot ~curve ~subject:hostname ~sans ~not_before ~not_after ~serial ~pub
          rng
      in
      ([ leaf ], keypair)
    end
  end
  else if Crypto.Drbg.bool rng ~p:0.5 then begin
    (* Chain from an untrusted CA. *)
    let leaf =
      Tls.Cert.issue b.brogue ~curve ~subject:hostname ~sans ~not_before ~not_after ~serial ~pub
        rng
    in
    ([ leaf; Tls.Cert.authority_cert b.brogue ], keypair)
  end
  else begin
    (* Expired certificate from the real CA. *)
    let leaf =
      Tls.Cert.issue b.bintermediate ~curve ~subject:hostname ~sans ~not_before
        ~not_after:(b.bc.start_time - day) ~serial ~pub rng
    in
    ([ leaf; Tls.Cert.authority_cert b.bintermediate ], keypair)
  end

let add_domain b ~name ~rank ~weight ~operator ~endpoint ~behavior ?(misconfig = Profile.well_configured)
    ~trusted ~mx_google ~stable ~presence_p () =
  let ip =
    match endpoint with
    | None -> 0
    | Some ep ->
        let rng = Crypto.Drbg.fork b.brng ~label:("ip:" ^ name) in
        ep.ep_ips.(Crypto.Drbg.int_below rng (Array.length ep.ep_ips))
  in
  (match endpoint with
  | None -> ()
  | Some ep ->
      let chain, keypair = issue_chain b ~hostname:name ~trusted in
      Array.iter
        (fun slot ->
          let ticket_config =
            match (behavior.b_ticket, slot.sl_stek) with
            | Some (hint, accept, reissue), Some manager ->
                Some
                  {
                    Tls.Config.stek_manager = manager;
                    lifetime_hint = hint;
                    accept_lifetime = accept;
                    reissue_on_resumption = reissue;
                  }
            | _ -> None
          in
          let config =
            {
              Tls.Config.env = behavior.b_env;
              suites = behavior.b_suites;
              issue_session_ids = behavior.b_issue_ids;
              session_cache = ep.ep_session_cache;
              tickets = ticket_config;
              kex_cache = slot.sl_kex;
              cert_chain = chain;
              cert_key = keypair;
            }
          in
          let server =
            Tls.Server.create ~config
              ~rng:(Crypto.Drbg.fork b.brng ~label:(Printf.sprintf "srv:%s/%d" name slot.sl_index))
          in
          Hashtbl.replace slot.sl_servers name server)
        ep.ep_slots);
  b.bdomains <-
    {
      d_name = name;
      d_rank = rank;
      d_weight = weight;
      d_operator = operator;
      d_endpoint = endpoint;
      d_ip = ip;
      d_trusted = (match endpoint with Some _ -> trusted | None -> false);
      d_mx_google = mx_google;
      d_stable = stable;
      d_presence_p = presence_p;
      d_misconfig = (match endpoint with Some _ -> misconfig | None -> Profile.well_configured);
    }
    :: b.bdomains

(* STEK manager shared at the given scope, memoized by label. *)
let stek_manager b ~label ~policy =
  match Hashtbl.find_opt b.bsteks label with
  | Some m -> m
  | None ->
      let m = Tls.Stek_manager.create ~policy ~secret:(b.bc.seed ^ ":stek:" ^ label) ~now:b.bc.start_time in
      Hashtbl.replace b.bsteks label m;
      m

(* --- Population segments --------------------------------------------------------- *)

let presence_sample rng stable_fraction =
  if Crypto.Drbg.bool rng ~p:stable_fraction then (true, 1.0)
  else (false, 0.3 +. (0.67 *. Crypto.Drbg.float01 rng))

let mx_sample rng fraction = Crypto.Drbg.bool rng ~p:fraction

(* Named operators: create pods (endpoints), flagship domains, and sampled
   customer domains with the right weights. *)
let build_operators b ~scale =
  List.iter
    (fun (spec : Operators.spec) ->
      let rng = Crypto.Drbg.fork b.brng ~label:("op:" ^ spec.Operators.op_name) in
      let lead = b.bc.start_time + (case_study_lead_days * day) in
      let stek_of_scope pod_label =
        match spec.Operators.ticket with
        | None -> None
        | Some tc ->
            let label =
              match spec.Operators.stek_scope with
              | `Operator -> spec.Operators.op_name
              | `Pod -> spec.Operators.op_name ^ "/" ^ pod_label
            in
            (* Spec schedules are relative to campaign start. *)
            let policy =
              match tc.Operators.stek with
              | Tls.Stek_manager.Scheduled rel -> Tls.Stek_manager.Scheduled (List.map (fun s -> lead + s) rel)
              | p -> p
            in
            Some (stek_manager b ~label ~policy)
      in
      (* The giants are well-configured at the default vantage; the
         operators whose regional notes mark them inconsistent may serve
         a downgraded config from non-default regions. *)
      let misconfig =
        effective_misconfig b.bc ~operator:spec.Operators.op_name
          ~note:spec.Operators.regional_note ~base:Profile.well_configured
      in
      let behavior =
        {
          b_env = misconfig_env b misconfig;
          b_suites = Profile.misconfig_suites misconfig spec.Operators.suites;
          b_issue_ids = spec.Operators.issue_ids;
          b_ticket =
            Option.map
              (fun tc -> (tc.Operators.hint, tc.Operators.accept, tc.Operators.reissue))
              spec.Operators.ticket;
        }
      in
      let flagship_count = List.length spec.Operators.flagships in
      let customer_total = max 0 (spec.Operators.size - flagship_count) in
      let sampled = max 1 (int_of_float (Float.round (float_of_int customer_total *. scale))) in
      let weight = float_of_int customer_total /. float_of_int sampled in
      (* Build one endpoint per pod and apportion customers to pods. *)
      let pods =
        List.map
          (fun (pod : Operators.pod) ->
            let members =
              max 1 (int_of_float (Float.round (float_of_int sampled *. pod.Operators.pod_share)))
            in
            let ep =
              make_endpoint b ~operator:spec.Operators.op_name ~label:pod.Operators.pod_label
                ~asn:spec.Operators.asn
                ~ip_count:(min 16 (max 1 (members / 6)))
                ~cache_lifetime:pod.Operators.cache_lifetime
                ~stek:(Option.map (fun m -> Shared_stek m) (stek_of_scope pod.Operators.pod_label))
                ~dhe:spec.Operators.dhe_policy ~ecdhe:spec.Operators.ecdhe_policy
                ~failure_rate:0.005 ~flush_on_restart:false ~n_slots:4
                ?restart_period:
                  (match spec.Operators.restart_day with Some _ -> Some day | None -> None)
                ~restart_days:
                  (match spec.Operators.restart_day with
                  | Some d -> [ lead + (d * day) ]
                  | None -> [])
                ()
            in
            (ep, members))
          spec.Operators.pods
      in
      (* Flagship domains on the first pod. *)
      (match pods with
      | (first_pod, _) :: _ ->
          List.iter
            (fun (name, rank) ->
              add_domain b ~name ~rank ~weight:1.0 ~operator:spec.Operators.op_name
                ~endpoint:(Some first_pod) ~behavior ~misconfig ~trusted:true
                ~mx_google:(spec.Operators.op_name = "google")
                ~stable:true ~presence_p:1.0 ())
            spec.Operators.flagships
      | [] -> ());
      (* Sampled customer domains. *)
      let customer_index = ref 0 in
      List.iter
        (fun (ep, members) ->
          for _ = 1 to members do
            let name =
              Namegen.operator_domain ~operator:spec.Operators.op_name !customer_index
            in
            incr customer_index;
            let stable, presence_p = presence_sample rng b.bc.stable_fraction in
            add_domain b ~name ~rank:0 ~weight ~operator:spec.Operators.op_name
              ~endpoint:(Some ep) ~behavior ~misconfig ~trusted:true
              ~mx_google:(mx_sample rng b.bc.mx_google_fraction)
              ~stable ~presence_p ()
          done)
        pods)
    Operators.all

(* Mail front-ends for MX-providing operators: the same STEK manager
   serves SMTP/IMAPS, which is the section 7.2 cross-protocol finding. *)
let mx_host_of_operator op = Printf.sprintf "aspmx.%s-mail.example" op

let build_mail_hosts b =
  List.iter
    (fun (spec : Operators.spec) ->
      if spec.Operators.mx_provider then begin
        match (spec.Operators.ticket, Hashtbl.find_opt b.bsteks spec.Operators.op_name) with
        | Some tc, Some manager ->
            let host = mx_host_of_operator spec.Operators.op_name in
            let ep =
              make_endpoint b ~operator:spec.Operators.op_name ~label:"mail"
                ~asn:spec.Operators.asn ~ip_count:4 ~cache_lifetime:None
                ~stek:(Some (Shared_stek manager)) ~dhe:spec.Operators.dhe_policy
                ~ecdhe:spec.Operators.ecdhe_policy ~failure_rate:0.005
                ~flush_on_restart:false ~n_slots:4 ()
            in
            let chain, keypair = issue_chain b ~hostname:host ~trusted:true in
            Array.iter
              (fun slot ->
                let config =
                  {
                    Tls.Config.env = b.benv;
                    suites = spec.Operators.suites;
                    issue_session_ids = true;
                    session_cache = ep.ep_session_cache;
                    tickets =
                      Some
                        {
                          Tls.Config.stek_manager =
                            Option.get
                              (match slot.sl_stek with Some m -> Some m | None -> Some manager);
                          lifetime_hint = tc.Operators.hint;
                          accept_lifetime = tc.Operators.accept;
                          reissue_on_resumption = tc.Operators.reissue;
                        };
                    kex_cache = slot.sl_kex;
                    cert_chain = chain;
                    cert_key = keypair;
                  }
                in
                let server =
                  Tls.Server.create ~config
                    ~rng:
                      (Crypto.Drbg.fork b.brng
                         ~label:(Printf.sprintf "mail:%s/%d" host slot.sl_index))
                in
                Hashtbl.replace slot.sl_servers host server)
              ep.ep_slots;
            Hashtbl.replace b.bservice_hosts host ep
        | _ -> ()
      end)
    Operators.all

(* Case-study domains, each on its own endpoint (except shared STEKs). *)
let build_notables b =
  let hour = Clock.hour in
  List.iter
    (fun (n : Notable.t) ->
      let name = n.Notable.name in
      let lead = b.bc.start_time + (case_study_lead_days * day) in
      let stek_policy =
        match n.Notable.stek with
        | `Span d when d >= 63 -> Some Tls.Stek_manager.Static
        | `Span d -> Some (Tls.Stek_manager.Scheduled [ lead + (d * day) ])
        | `Daily ->
            Some (Tls.Stek_manager.Rotate_every { period = day; accept_window = 2 * hour })
        | `No_tickets -> None
      in
      let stek =
        match stek_policy with
        | None -> None
        | Some policy ->
            let label = Option.value n.Notable.shared_stek ~default:("notable:" ^ name) in
            Some (Shared_stek (stek_manager b ~label ~policy))
      in
      (* Seeded key-exchange reuse: the value lives until one scheduled
         rotation at the seeded span (counted from campaign start), after
         which daily restarts keep successor values short-lived — so the
         campaign's max (value, domain) span equals the seed. *)
      let dhe =
        match n.Notable.dhe_span with
        | Some _ -> Tls.Kex_cache.Reuse_forever
        | None -> Tls.Kex_cache.Fresh_always
      in
      let ecdhe =
        match n.Notable.ecdhe_span with
        | Some _ -> Tls.Kex_cache.Reuse_forever
        | None -> Tls.Kex_cache.Fresh_always
      in
      let restart_days =
        match Notable.kex_restart_day n with
        | Some d when d < 63 -> [ lead + (d * day) ]
        | Some _ | None -> []
      in
      let asn = 1000 + Hashtbl.hash name mod 60000 in
      let ep =
        make_endpoint b ~operator:("site:" ^ name) ~label:"main" ~asn ~ip_count:2
          ~cache_lifetime:(Some (5 * Clock.minute))
          ~stek ~dhe ~ecdhe ~failure_rate:0.005 ~flush_on_restart:false ~n_slots:2
          ?restart_period:(if restart_days = [] then None else Some day)
          ~restart_days ()
      in
      let suites =
        if n.Notable.supports_dhe then T.all_cipher_suites
        else [ T.ECDHE_ECDSA_AES128_SHA256; T.ECDH_ECDSA_AES128_SHA256 ]
      in
      let accept = Option.value n.Notable.hint_override ~default:hour in
      (* Case-study sites are single-site operations: what they serve,
         they serve from every vantage. *)
      let behavior =
        {
          b_env = b.benv;
          b_suites = suites;
          b_issue_ids = true;
          b_ticket = (if stek = None then None else Some (accept, accept, true));
        }
      in
      add_domain b ~name ~rank:n.Notable.rank ~weight:1.0 ~operator:("site:" ^ name)
        ~endpoint:(Some ep) ~behavior ~trusted:true ~mx_google:false ~stable:true ~presence_p:1.0
        ())
    Notable.all

(* The long tail: shared-hosting pods plus independent sites, drawn from
   the calibrated profile distributions. *)
let build_tail b ~count ~weight =
  let rng = Crypto.Drbg.fork b.brng ~label:"tail" in
  let hosting_asns = Array.init 60 (fun i -> 64_000 + i) in
  let solo_asns = Array.init 2_000 (fun i -> 3_000 + i) in
  (* A currently-filling shared-hosting pod, if any. *)
  let pod_slot = ref None in
  let endpoint_for_profile ~label ~asn ~ip_count ?(n_slots = 1) (p : Profile.t) =
    let stek =
      match p.Profile.ticket with
      | None -> None
      | Some tp -> (
          match tp.Profile.stek with
          | Tls.Stek_manager.Per_process -> Some (Per_slot_stek ("tail:" ^ label))
          | policy -> Some (Shared_stek (stek_manager b ~label:("tail:" ^ label) ~policy)))
    in
    make_endpoint b ~operator:label ~label:"main" ~asn ~ip_count ~n_slots
      ~cache_lifetime:p.Profile.cache_lifetime ~stek ~dhe:p.Profile.dhe_policy
      ~ecdhe:p.Profile.ecdhe_policy ~failure_rate:p.Profile.failure_rate
      ?restart_period:p.Profile.restart_mean ()
  in
  let behavior_of misconfig (p : Profile.t) =
    {
      b_env = misconfig_env b misconfig;
      b_suites = Profile.misconfig_suites misconfig p.Profile.suites;
      b_issue_ids = p.Profile.issue_ids;
      b_ticket =
        Option.map (fun tp -> (tp.Profile.hint, tp.Profile.accept, tp.Profile.reissue)) p.Profile.ticket;
    }
  in
  for i = 0 to count - 1 do
    let name = Namegen.domain i in
    let stable, presence_p = presence_sample rng b.bc.stable_fraction in
    let mx_google = mx_sample rng b.bc.mx_google_fraction in
    (* 15% of HTTPS tail sites live with shared-hosting providers whose
       terminators serve 50..1200 real domains; the sampled pod size is
       that target divided by the sampling weight, keeping weighted group
       sizes scale-invariant. *)
    let use_shared = Crypto.Drbg.bool rng ~p:0.15 in
    let profile, endpoint =
      if use_shared then begin
        match !pod_slot with
        | Some (profile, ep, remaining) when remaining > 0 ->
            pod_slot := Some (profile, ep, remaining - 1);
            (profile, if profile.Profile.https then Some ep else None)
        | _ ->
            let profile = Profile.sample_tail rng in
            if not profile.Profile.https then (profile, None)
            else begin
              let target_weighted =
                50.0 *. exp (Crypto.Drbg.float01 rng *. log (1200.0 /. 50.0))
              in
              let capacity = max 1 (int_of_float (Float.round (target_weighted /. weight))) in
              let asn = Crypto.Drbg.pick rng hosting_asns in
              let ep =
                endpoint_for_profile ~label:(Printf.sprintf "hosting%d" i) ~asn ~ip_count:2 profile
              in
              pod_slot := Some (profile, ep, capacity - 1);
              (profile, Some ep)
            end
      end
      else begin
        let profile = Profile.sample_tail rng in
        if not profile.Profile.https then (profile, None)
        else begin
          let asn = Crypto.Drbg.pick rng solo_asns in
          (* ~15% of independent sites run small load-balanced farms
             without client affinity. *)
          let n_slots =
            if Crypto.Drbg.bool rng ~p:0.15 then Crypto.Drbg.int_range rng 2 4 else 1
          in
          ( profile,
            Some
              (endpoint_for_profile
                 ~label:(Printf.sprintf "solo%d" i)
                 ~asn ~ip_count:1 ~n_slots profile) )
        end
      end
    in
    let operator = match endpoint with Some ep -> ep.ep_operator | None -> "tail" in
    (* The tail's base misconfiguration is part of its sampled profile
       (shared by every member of a hosting pod); the regional override
       is keyed on the operator label, so pod members stay coherent. *)
    let misconfig =
      match endpoint with
      | None -> Profile.well_configured
      | Some _ ->
          effective_misconfig b.bc ~operator ~note:`Tail ~base:profile.Profile.misconfig
    in
    add_domain b ~name ~rank:0 ~weight ~operator ~endpoint
      ~behavior:(behavior_of misconfig profile) ~misconfig ~trusted:profile.Profile.trusted
      ~mx_google ~stable ~presence_p ()
  done

(* --- Rank assignment --------------------------------------------------------------- *)

let assign_ranks b domains =
  let rng = Crypto.Drbg.fork b.brng ~label:"ranks" in
  let used = Hashtbl.create 1024 in
  Array.iter (fun d -> if d.d_rank > 0 then Hashtbl.replace used d.d_rank ()) domains;
  let unranked =
    Array.of_list (Array.to_list domains |> List.filter (fun d -> d.d_rank = 0))
  in
  Crypto.Drbg.shuffle rng unranked;
  (* Fill ranks 1..1000 exhaustively, then scatter the rest over
     1001..1M without collisions. *)
  let next_low = ref 1 in
  let advance_low () =
    while !next_low <= 1000 && Hashtbl.mem used !next_low do
      incr next_low
    done
  in
  advance_low ();
  Array.iter
    (fun d ->
      if !next_low <= 1000 then begin
        d.d_rank <- !next_low;
        Hashtbl.replace used !next_low ();
        advance_low ()
      end
      else begin
        let rec draw () =
          let r = 1001 + Crypto.Drbg.int_below rng (universe - 1000) in
          if Hashtbl.mem used r then draw () else r
        in
        let r = draw () in
        d.d_rank <- r;
        Hashtbl.replace used r ()
      end)
    unranked;
  (* Stratified sampling weights: ranks 1..1000 are enumerated
     exhaustively (weight 1); certainty samples (notables, flagships,
     built with weight 1) represent themselves; everything else splits
     the rest of the million evenly. This makes weighted counts estimate
     Top Million absolutes (Horvitz-Thompson). *)
  let certainty d = d.d_rank <= 1000 || d.d_weight = 1.0 in
  let n_tail = Array.fold_left (fun acc d -> if certainty d then acc else acc + 1) 0 domains in
  let certainty_mass =
    Array.fold_left (fun acc d -> if certainty d then acc +. 1.0 else acc) 0.0 domains
  in
  let w = (float_of_int universe -. certainty_mass) /. float_of_int (max 1 n_tail) in
  Array.iter (fun d -> d.d_weight <- (if certainty d then 1.0 else w)) domains

(* --- Assembly ------------------------------------------------------------------------ *)

let min_domains = 1500

let create ?(config = default_config) () =
  if config.n_domains < min_domains then
    invalid_arg (Printf.sprintf "World.create: need at least %d domains" min_domains);
  if not (Region.is_valid config.region) then
    invalid_arg
      (Printf.sprintf "World.create: unknown region %S (available: %s)" config.region
         Region.names);
  let env =
    if config.use_real_crypto then Tls.Config.real_env ()
    else Tls.Config.sim_env ~seed:config.seed ()
  in
  let rng = Crypto.Drbg.create ~seed:("world:" ^ config.seed) in
  let curve = env.Tls.Config.pki_curve in
  let ca_rng = Crypto.Drbg.fork rng ~label:"pki" in
  let not_before = max 0 (config.start_time - (3650 * day)) in
  let not_after = config.start_time + (3650 * day) in
  let root_ca =
    Tls.Cert.self_signed ~curve ~name:"SimTrust Root CA" ~not_before ~not_after ~serial:1 ca_rng
  in
  let intermediate_keypair = Crypto.Ecdsa.gen_keypair curve ca_rng in
  let intermediate_cert =
    Tls.Cert.issue root_ca ~curve ~subject:"SimTrust Issuing CA" ~is_ca:true ~not_before
      ~not_after ~serial:2
      ~pub:(Crypto.Ec.point_bytes curve (Crypto.Ecdsa.public_key intermediate_keypair))
      ca_rng
  in
  let intermediate_ca =
    Tls.Cert.authority_of ~cert:intermediate_cert ~keypair:intermediate_keypair
  in
  let rogue_ca =
    Tls.Cert.self_signed ~curve ~name:"Shady CA Inc" ~not_before ~not_after ~serial:3 ca_rng
  in
  let root_store = Tls.Cert.store_of_list [ Tls.Cert.authority_cert root_ca ] in
  let b =
    {
      bc = config;
      benv = env;
      brng = rng;
      broot = root_ca;
      bintermediate = intermediate_ca;
      brogue = rogue_ca;
      bep_id = 0;
      bips = 0;
      bdomains = [];
      bendpoints = [];
      bsteks = Hashtbl.create 64;
      bservice_hosts = Hashtbl.create 8;
    }
  in
  let scale = float_of_int config.n_domains /. float_of_int universe in
  build_operators b ~scale;
  build_mail_hosts b;
  build_notables b;
  let built = List.length b.bdomains in
  let tail_count = max 0 (config.n_domains - built) in
  (* Tail weight: whatever share of the universe is not represented by the
     named segments, spread over the tail samples. *)
  let represented =
    List.fold_left (fun acc d -> acc +. d.d_weight) 0.0 b.bdomains
  in
  let tail_weight = (float_of_int universe -. represented) /. float_of_int (max 1 tail_count) in
  build_tail b ~count:tail_count ~weight:tail_weight;
  let domains = Array.of_list (List.rev b.bdomains) in
  assign_ranks b domains;
  Array.sort (fun d1 d2 -> compare d1.d_rank d2.d_rank) domains;
  let by_name = Hashtbl.create (Array.length domains) in
  let by_asn = Hashtbl.create 1024 in
  let by_ip = Hashtbl.create 4096 in
  Array.iter
    (fun d ->
      Hashtbl.replace by_name d.d_name d;
      match d.d_endpoint with
      | None -> ()
      | Some ep ->
          Hashtbl.replace by_asn ep.ep_asn
            (d.d_name :: Option.value ~default:[] (Hashtbl.find_opt by_asn ep.ep_asn));
          Hashtbl.replace by_ip d.d_ip
            (d.d_name :: Option.value ~default:[] (Hashtbl.find_opt by_ip d.d_ip)))
    domains;
  {
    config;
    env;
    root_store;
    root_ca;
    intermediate_ca;
    rogue_ca;
    clock = Clock.create ~start:config.start_time ();
    domains;
    by_name;
    endpoints = List.rev b.bendpoints;
    by_asn;
    by_ip;
    operator_steks = b.bsteks;
    service_hosts = b.bservice_hosts;
  }

(* --- Presence (Alexa churn) ----------------------------------------------------------- *)

(* Deterministic membership of [name] in the list on [day]. *)
let in_list_on_day d ~day:day_index =
  d.d_stable
  ||
  let h = Crypto.Sha256.digest (Printf.sprintf "presence:%s:%d" d.d_name day_index) in
  float_of_int (Char.code h.[0] land 0x7f) /. 128.0 < d.d_presence_p

(* --- Process restarts ------------------------------------------------------------------ *)

(* Restart one process: its ephemeral cache and per-process STEK die;
   small deployments also lose their in-process session cache. *)
let do_restart ep slot ~at =
  Tls.Kex_cache.restart slot.sl_kex;
  Option.iter (fun m -> Tls.Stek_manager.restart m ~now:at) slot.sl_stek;
  if ep.ep_flush_cache_on_restart then
    Option.iter Tls.Session_cache.flush ep.ep_session_cache

let rec process_slot_restarts ep slot ~now =
  match slot.sl_scheduled with
  | at :: rest when at <= now ->
      slot.sl_scheduled <- rest;
      do_restart ep slot ~at;
      (* Once the fixed schedule is exhausted, periodic restarts begin. *)
      (match (rest, ep.ep_restart_period, slot.sl_next_restart) with
      | [], Some period, None -> slot.sl_next_restart <- Some (at + next_restart_gap slot.sl_rng period)
      | _ -> ());
      process_slot_restarts ep slot ~now
  | _ -> (
      match slot.sl_next_restart with
      | Some at when at <= now ->
          do_restart ep slot ~at;
          let period = Option.value ep.ep_restart_period ~default:(30 * day) in
          slot.sl_next_restart <- Some (at + next_restart_gap slot.sl_rng period);
          process_slot_restarts ep slot ~now
      | _ -> ())

let process_restarts ep ~now =
  Array.iter (fun slot -> process_slot_restarts ep slot ~now) ep.ep_slots

(* --- Connecting -------------------------------------------------------------------------- *)

type connect_error = No_such_domain | No_https | Connection_failed

(* Connect to a non-web TLS service host (a mail front-end). [clock]
   overrides the world clock; a parallel campaign shard reads time from
   its own clock while touching only its shard's endpoints. *)
let connect_service_host ?clock t ~client ~hostname ~offer =
  let now = Clock.now (Option.value clock ~default:t.clock) in
  match Hashtbl.find_opt t.service_hosts hostname with
  | None -> Error No_such_domain
  | Some ep ->
      process_restarts ep ~now;
      if Crypto.Drbg.bool ep.ep_rng ~p:ep.ep_failure_rate then Error Connection_failed
      else begin
        let slot = ep.ep_slots.(Crypto.Drbg.int_below ep.ep_rng (Array.length ep.ep_slots)) in
        match Hashtbl.find_opt slot.sl_servers hostname with
        | None -> Error No_https
        | Some server -> Ok (Tls.Engine.connect client server ~now ~hostname ~offer)
      end

(* MX resolution: the hostname a domain's mail is delivered to, if its
   provider runs TLS mail front-ends we model. *)
let mx_host _t d = if d.d_mx_google then Some (mx_host_of_operator "google") else None

let connect ?clock t ~client ~hostname ~offer =
  let now = Clock.now (Option.value clock ~default:t.clock) in
  match Hashtbl.find_opt t.by_name hostname with
  | None -> (
      match Hashtbl.find_opt t.service_hosts hostname with
      | Some _ -> connect_service_host ?clock t ~client ~hostname ~offer
      | None -> Error No_such_domain)
  | Some d -> (
      match d.d_endpoint with
      | None -> Error No_https
      | Some ep ->
          process_restarts ep ~now;
          if Crypto.Drbg.bool ep.ep_rng ~p:ep.ep_failure_rate then Error Connection_failed
          else begin
            (* No client affinity: the load balancer hands this connection
               to an arbitrary process of the farm. *)
            let slot = ep.ep_slots.(Crypto.Drbg.int_below ep.ep_rng (Array.length ep.ep_slots)) in
            match Hashtbl.find_opt slot.sl_servers hostname with
            | None -> Error No_https
            | Some server -> Ok (Tls.Engine.connect client server ~now ~hostname ~offer)
          end)

(* Endpoint identity for the fault layer: which terminator a hostname's
   connections land on, and who operates it (fault profiles are
   per-operator). Covers web domains and modeled service hosts; [None]
   for unknown names and HTTPS-less domains, which never reach an
   endpoint in [connect] either. *)
let endpoint_info t hostname =
  let of_ep ep = (ep.ep_id, ep.ep_operator) in
  match Hashtbl.find_opt t.by_name hostname with
  | Some d -> Option.map of_ep d.d_endpoint
  | None -> Option.map of_ep (Hashtbl.find_opt t.service_hosts hostname)

(* Neighbour queries used by the cross-domain probing experiments. *)
let domains_in_asn t asn = Option.value ~default:[] (Hashtbl.find_opt t.by_asn asn)
let domains_on_ip t ip = Option.value ~default:[] (Hashtbl.find_opt t.by_ip ip)

(* The analysis population of the paper: domains in the list every day
   that support HTTPS with a browser-trusted certificate. *)
let stable_trusted_https t =
  Array.to_list t.domains
  |> List.filter (fun d -> d.d_stable && d.d_trusted && d.d_endpoint <> None)

(* DNS: MX resolution for the section 7.2 analysis. *)
let mx_points_to_google d = d.d_mx_google
