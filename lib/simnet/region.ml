(* Named scan vantage points for the cross-regional worlds.

   The paper measured from one vantage; the cross-regional extension
   (after Alashwali et al.'s HTTPS-inconsistency study) probes the same
   population from several. A world is a pure function of
   [(config, region)]: the default region reproduces the paper's single
   vantage byte-for-byte, and every other region applies deterministic
   per-operator overrides on top of the same base profiles — so shard
   replicas and jobs-invariance carry over unchanged. *)

type t = string

(* The first region is the default vantage — the one the original study
   scanned from, and the one every legacy archive is attributed to. *)
let all : t list = [ "us-east"; "eu-west"; "ap-south"; "sa-east"; "af-north" ]
let default_name : t = "us-east"
let is_valid r = List.mem r all
let names = String.concat " " all

(* First [n] regions, for `--regions N`. *)
let take n =
  if n < 1 || n > List.length all then
    invalid_arg (Printf.sprintf "Region.take: want 1..%d regions (got %d)" (List.length all) n);
  List.filteri (fun i _ -> i < n) all
