(* The giant shared-infrastructure operators of the study. Each spec
   describes one real-world provider whose domains share TLS secret state:
   the session-cache groups of Table 5, the STEK groups of Table 6, the
   Diffie-Hellman groups of Table 7, and the rotation behaviour visualized
   in Figure 6 and analyzed in Sections 6-7.

   A [pod] is one shared-state unit — an SSL terminator (or synchronized
   terminator fleet): every domain in a pod shares that pod's session
   cache and key-exchange cache. STEKs are shared at either pod or
   operator scope ([stek_scope]): CloudFlare's two session-cache pods
   share a single operator-wide STEK, which is exactly why its Table 6
   group (62k domains) is bigger than its largest Table 5 group (30k).

   [size] is the provider's domain count in the real Top Million; the
   world builder samples members down to the simulation scale and assigns
   each member a sampling weight so weighted group sizes reproduce these
   numbers. *)

module T = Tls.Types

type pod = {
  pod_label : string;
  pod_share : float; (* share of the operator's domains in this pod *)
  cache_lifetime : int option; (* session-ID cache lifetime *)
}

type spec = {
  op_name : string;
  asn : int;
  size : int; (* domains in the real Top Million *)
  pods : pod list;
  issue_ids : bool;
  ticket : ticket option;
  stek_scope : [ `Operator | `Pod ];
  dhe_policy : Tls.Kex_cache.policy;
  ecdhe_policy : Tls.Kex_cache.policy;
  kex_scope : [ `Pod ]; (* ephemeral caches always live on the terminator *)
  suites : T.cipher_suite list;
  restart_day : int option; (* scheduled process restart (kills kex caches) *)
  flagships : (string * int) list; (* named domains with fixed ranks *)
  mx_provider : bool; (* other domains' MX records point here (Google) *)
  regional_note : [ `Consistent | `Inconsistent ];
      (* Cross-regional config consistency (Alashwali et al.): the
         centrally-managed giants serve one config everywhere
         ([`Consistent]); legacy hosting and regionally-operated edges
         are known to downgrade from some vantages ([`Inconsistent]). *)
}

and ticket = {
  hint : int;
  accept : int;
  stek : Tls.Stek_manager.policy;
  reissue : bool;
}

let minute = 60
let hour = 3600
let day = 86_400

let ecdhe_static = [ T.ECDHE_ECDSA_AES128_SHA256; T.ECDH_ECDSA_AES128_SHA256 ]
let full_suites = T.all_cipher_suites

let pod label share cache = { pod_label = label; pod_share = share; cache_lifetime = cache }

let default_spec =
  {
    op_name = "";
    asn = 0;
    size = 0;
    pods = [ pod "main" 1.0 (Some (5 * minute)) ];
    issue_ids = true;
    ticket = None;
    stek_scope = `Operator;
    dhe_policy = Tls.Kex_cache.Fresh_always;
    ecdhe_policy = Tls.Kex_cache.Fresh_always;
    kex_scope = `Pod;
    suites = ecdhe_static;
    restart_day = None;
    flagships = [];
    mx_provider = false;
    regional_note = `Consistent;
  }

let rotate ~period ~window = Tls.Stek_manager.Rotate_every { period; accept_window = window }

let all =
  [
    (* CloudFlare: the largest session-cache group (30,163 domains) and
       the largest STEK group (62,176). Tickets honored for 18 hours
       (the Figure 2 step at 18h covers 54,522 CloudFlare domains);
       custom STEK rotation keeps key lifetime under a day (Fig. 6). Two
       session-cache pods even within one /24 (Table 5). *)
    {
      default_spec with
      op_name = "cloudflare";
      asn = 13335;
      size = 62_176;
      pods =
        [ pod "cache1" 0.60 (Some (5 * minute)); pod "cache2" 0.40 (Some (5 * minute)) ];
      ticket =
        Some { hint = 18 * hour; accept = 18 * hour; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      stek_scope = `Operator;
    };
    (* Google / Alphabet: one STEK across essentially all properties
       (8,973 domains incl. Blogspot), rotated every 14 hours but
       accepted for 28 (section 7.2); session IDs honored for 24h+; the
       Blogspot session caches are the five longest-lived shared caches
       of Table 5 (4.5h to 24h). *)
    {
      default_spec with
      op_name = "google";
      asn = 15169;
      size = 8_973;
      pods =
        [
          pod "main" 0.52 (Some (30 * hour));
          pod "blogspot1" 0.10 (Some (24 * hour));
          pod "blogspot2" 0.09 (Some (18 * hour));
          pod "blogspot3" 0.09 (Some (12 * hour));
          pod "blogspot4" 0.08 (Some (8 * hour));
          pod "blogspot5" 0.07 (Some (16_200 (* 4.5 h *)));
          pod "ancillary" 0.05 (Some (5 * minute));
        ];
      ticket =
        Some
          {
            hint = 28 * hour;
            accept = 28 * hour;
            stek = rotate ~period:(14 * hour) ~window:(14 * hour);
            reissue = true;
          };
      stek_scope = `Operator;
      flagships =
        [
          ("google.com", 1);
          ("youtube.com", 2);
          ("google.co.in", 12);
          ("google.de", 15);
          ("blogspot.com", 18);
          ("gmail.com", 24);
          ("google.co.jp", 26);
          ("googleusercontent.com", 64);
          ("doubleclick.net", 120);
          ("google-analytics.com", 140);
        ];
      mx_provider = true;
    };
    (* Facebook: CDN honored session IDs for more than 24 hours
       (section 4.1); STEK rotated daily. *)
    {
      default_spec with
      op_name = "facebook";
      asn = 32934;
      size = 900;
      pods = [ pod "cdn" 1.0 (Some (26 * hour)) ];
      ticket =
        Some { hint = day; accept = day; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      flagships = [ ("facebook.com", 3); ("instagram.com", 17); ("fbcdn.net", 260) ];
    };
    (* Automattic (WordPress.com): two session-cache pods (Table 5:
       2,247 + 1,552) under one 4,182-domain STEK group (Table 6). *)
    {
      default_spec with
      op_name = "automattic";
      asn = 2635;
      size = 4_182;
      pods = [ pod "pool1" 0.55 (Some (1 * hour)); pod "pool2" 0.45 (Some (1 * hour)) ];
      ticket =
        Some { hint = 1 * hour; accept = 1 * hour; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      stek_scope = `Operator;
      flagships = [ ("wordpress.com", 33) ];
    };
    (* TMall: 3,305-domain STEK group that never rotated during the study
       (one of the large solid-red blocks of Figure 6). *)
    {
      default_spec with
      op_name = "tmall";
      asn = 37963;
      size = 3_305;
      pods = [ pod "main" 1.0 (Some (5 * minute)) ];
      ticket = Some { hint = 12 * hour; accept = 12 * hour; stek = Tls.Stek_manager.Static; reissue = true };
      flagships = [ ("tmall.hk", 2300) ];
    };
    (* Shopify: 593-domain session-cache group, 3,247-domain STEK group. *)
    {
      default_spec with
      op_name = "shopify";
      asn = 62679;
      size = 3_247;
      pods =
        [
          pod "cache-main" 0.18 (Some (30 * minute));
          pod "pool2" 0.28 (Some (10 * minute));
          pod "pool3" 0.28 (Some (10 * minute));
          pod "pool4" 0.26 (Some (10 * minute));
        ];
      ticket =
        Some { hint = 2 * hour; accept = 2 * hour; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      stek_scope = `Operator;
      flagships = [ ("shopify.com", 720) ];
    };
    (* GoDaddy shared hosting: 1,875-domain STEK group, slow rotation.
       Regionally-franchised legacy hosting fleet — configs drift by
       vantage. *)
    {
      default_spec with
      op_name = "godaddy";
      asn = 26496;
      size = 1_875;
      ticket =
        Some { hint = 5 * minute; accept = 5 * minute; stek = rotate ~period:(3 * day) ~window:(6 * hour); reissue = true };
      suites = full_suites;
      regional_note = `Inconsistent;
    };
    (* Amazon front-ends (ELB/CloudFront customers): 1,495-domain STEK
       group, daily rotation. *)
    {
      default_spec with
      op_name = "amazon";
      asn = 16509;
      size = 1_495;
      ticket =
        Some { hint = 1 * hour; accept = 1 * hour; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      flagships = [ ("amazon.com", 10) ];
    };
    (* Tumblr: three separate ~960-domain STEK groups (Table 6 #8-#10):
       STEKs are shared per pod, not operator-wide. *)
    {
      default_spec with
      op_name = "tumblr";
      asn = 36089;
      size = 2_890;
      pods =
        [
          pod "pool1" 0.34 (Some (10 * minute));
          pod "pool2" 0.33 (Some (10 * minute));
          pod "pool3" 0.33 (Some (10 * minute));
        ];
      ticket =
        Some { hint = 30 * minute; accept = 30 * minute; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      stek_scope = `Pod;
      flagships = [ ("tumblr.com", 37) ];
    };
    (* Fastly: issued tickets under the same STEK for the whole nine
       weeks (section 6.1), fronting foursquare.com, www.gov.uk and
       aclu.org among others. *)
    {
      default_spec with
      op_name = "fastly";
      asn = 54113;
      size = 950;
      pods = [ pod "edge" 1.0 (Some (5 * minute)) ];
      ticket = Some { hint = 1 * hour; accept = 1 * hour; stek = Tls.Stek_manager.Static; reissue = true };
      flagships = [ ("foursquare.com", 1900); ("www.gov.uk", 2600); ("aclu.org", 31_000) ];
    };
    (* Jack Henry & Associates: 79 bank and credit-union domains that
       issued tickets under one STEK for 59 days, then all rotated to a
       different - but still shared - key (section 6.1). *)
    {
      default_spec with
      op_name = "jackhenry";
      asn = 20340;
      size = 79;
      pods = [ pod "banking" 1.0 (Some (5 * minute)) ];
      ticket =
        Some { hint = 10 * minute; accept = 10 * minute; stek = Tls.Stek_manager.Scheduled [ 59 * day ]; reissue = true };
      suites = full_suites;
    };
    (* SquareSpace: the largest Diffie-Hellman service group (1,627
       domains sharing ephemeral values on shared terminators). *)
    {
      default_spec with
      op_name = "squarespace";
      asn = 53831;
      size = 1_627;
      ticket =
        Some { hint = 3 * minute; accept = 3 * minute; stek = rotate ~period:day ~window:(2 * hour); reissue = true };
      dhe_policy = Tls.Kex_cache.Reuse_for (12 * hour);
      ecdhe_policy = Tls.Kex_cache.Reuse_for (12 * hour);
      suites = full_suites;
    };
    (* LiveJournal: 1,330-domain DH group. *)
    {
      default_spec with
      op_name = "livejournal";
      asn = 26853;
      size = 1_330;
      dhe_policy = Tls.Kex_cache.Reuse_for day;
      ecdhe_policy = Tls.Kex_cache.Reuse_for day;
      suites = full_suites;
      flagships = [ ("livejournal.com", 160) ];
    };
    (* Jimdo: two hosting pods; one shared an ECDHE value for 19 days
       across ~180 domains, the other for 17 days (section 6.3; the
       single most-shared ECDHE value, 1,790 sightings on one IP). *)
    {
      default_spec with
      op_name = "jimdo-1";
      asn = 14618 (* hosted on EC2 *);
      size = 179;
      ecdhe_policy = Tls.Kex_cache.Reuse_forever;
      restart_day = Some 19;
    };
    {
      default_spec with
      op_name = "jimdo-2";
      asn = 14618;
      size = 178;
      ecdhe_policy = Tls.Kex_cache.Reuse_forever;
      restart_day = Some 17;
    };
    (* Distil Networks, Atypon, Affinity Internet, Line, Digital Insight,
       EdgeCast: the remaining Table 7 Diffie-Hellman groups. Affinity
       shared a single DHE value across its domains for 62 days. *)
    {
      default_spec with
      op_name = "distil";
      asn = 203959;
      size = 174;
      dhe_policy = Tls.Kex_cache.Reuse_for (6 * hour);
      ecdhe_policy = Tls.Kex_cache.Reuse_for (6 * hour);
      suites = full_suites;
    };
    {
      default_spec with
      op_name = "atypon";
      asn = 22753;
      size = 167;
      dhe_policy = Tls.Kex_cache.Reuse_for (12 * hour);
      suites = full_suites;
    };
    {
      default_spec with
      op_name = "affinity";
      asn = 7859;
      size = 146;
      dhe_policy = Tls.Kex_cache.Reuse_forever;
      restart_day = Some 62;
      suites = full_suites;
    };
    {
      default_spec with
      op_name = "line";
      asn = 38631;
      size = 114;
      dhe_policy = Tls.Kex_cache.Reuse_for (3 * hour);
      suites = full_suites;
      flagships = [ ("line.me", 340) ];
    };
    {
      default_spec with
      op_name = "digitalinsight";
      asn = 20060;
      size = 98;
      dhe_policy = Tls.Kex_cache.Reuse_for (8 * hour);
      suites = full_suites;
    };
    (* EdgeCast's regional PoPs ran heterogeneous terminator builds. *)
    {
      default_spec with
      op_name = "edgecast";
      asn = 15133;
      size = 75;
      dhe_policy = Tls.Kex_cache.Reuse_for (2 * hour);
      suites = full_suites;
      regional_note = `Inconsistent;
    };
    (* Hostway: the single most widely shared DHE value (137 domains,
       119 IPs, all in AS 20401). Shared-hosting edges differ per region
       like GoDaddy's. *)
    {
      default_spec with
      op_name = "hostway";
      asn = 20401;
      size = 137;
      dhe_policy = Tls.Kex_cache.Reuse_for (12 * hour);
      suites = full_suites;
      regional_note = `Inconsistent;
    };
  ]

let total_size = List.fold_left (fun acc s -> acc + s.size) 0 all
