(** The simulated HTTPS Internet: a sampled, ranked Top Million whose
    domains are served by endpoints (SSL terminators / small farms)
    holding the mutable TLS secret state the paper measures — session
    caches, STEK managers, ephemeral key-exchange caches — possibly
    shared across many domains. See the implementation header and
    DESIGN.md for the population model and sampling weights. *)

type config = {
  seed : string;
  n_domains : int;  (** sampled population size (min 1500) *)
  start_time : int;  (** epoch seconds at which the study begins *)
  use_real_crypto : bool;  (** Oakley-2 + P-256 instead of small groups *)
  stable_fraction : float;  (** domains present in the list every day *)
  mx_google_fraction : float;  (** domains whose MX points at Google *)
  region : Region.t;
      (** scan vantage point. A world is a pure function of
          [(config, region)]: the default region reproduces the paper's
          single-vantage world byte-for-byte, and any other region
          differs only in the configs of regionally-inconsistent
          operators (deterministic per-operator overrides). *)
}

val default_config : config
(** 10,000 domains, seed ["tlsharm"], starting March 2 2016 (the paper's
    first scan day), small crypto parameters, the default region. *)

val case_study_lead_days : int
(** Days between world start and the longitudinal campaign in the
    standard study timeline; seeded case-study schedules account for
    it. *)

type t
type domain
type endpoint

val min_domains : int
(** Smallest population the sampling model supports (1500); {!create}
    rejects smaller configs. CLI layers validate against this before
    building a world. *)

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] if [config.n_domains < min_domains]. *)

(** {2 Accessors} *)

val clock : t -> Clock.t
val env : t -> Tls.Config.env

val region : t -> Region.t
(** The vantage this world is observed from; stamped into every
    observation row the scanner produces against it. *)

val world_config : t -> config
val root_store : t -> Tls.Cert.root_store
val domains : t -> domain array
(** Sorted by rank. *)

val find_domain : t -> string -> domain option

val operator_stek : t -> string -> Tls.Stek_manager.t option
(** The shared STEK manager of a named operator (e.g. ["google"]), as an
    attacker who compromises that operator would hold it. *)

val domain_name : domain -> string
val domain_rank : domain -> int

val domain_weight : domain -> float
(** How many real Top Million domains this sample represents
    (Horvitz-Thompson weight; 1.0 for ranks 1..1000 and certainty
    samples). *)

val domain_operator : domain -> string
val domain_trusted : domain -> bool
val domain_has_https : domain -> bool
val domain_stable : domain -> bool
val domain_mx_google : domain -> bool
val mx_points_to_google : domain -> bool
val domain_ip : domain -> int
val domain_asn : domain -> int

val domain_misconfig : domain -> Profile.misconfig
(** Ground-truth misconfiguration effective at this world's region
    (base profile combined with any regional downgrade);
    {!Profile.well_configured} for HTTPS-less domains. *)

val in_list_on_day : domain -> day:int -> bool
(** Deterministic Alexa-churn membership. *)

val domain_shard_keys : t -> domain -> string list
(** Identifiers of the shared-secret-state components this domain's
    connections mutate (its endpoint — which subsumes the session-cache
    and pod edges — plus every STEK manager its farm uses, keyed by key
    material identity). Domains whose key sets are transitively connected
    must be scanned by the same worker; see
    {!Scanner.Parallel_campaign}. Empty for domains without HTTPS. *)

val domains_in_asn : t -> int -> string list
val domains_on_ip : t -> int -> string list
val stable_trusted_https : t -> domain list
(** The paper's analysis population: always-listed, browser-trusted,
    HTTPS. *)

(** {2 Connecting} *)

type connect_error = No_such_domain | No_https | Connection_failed

val connect :
  ?clock:Clock.t ->
  t ->
  client:Tls.Client.t ->
  hostname:string ->
  offer:Tls.Client.offer ->
  (Tls.Engine.outcome, connect_error) result
(** One connection at the current virtual time: resolves the domain (or
    a modeled service host, e.g. a mail front-end), applies due process
    restarts, picks a farm process (no client affinity), and runs the
    handshake. [clock] substitutes for the world clock — a parallel
    campaign shard advances its own clock while only ever connecting to
    the endpoints of its shard. *)

val endpoint_info : t -> string -> (int * string) option
(** [(endpoint id, operator)] serving a hostname (web domain or modeled
    service host), if any — the coordinates the fault-injection layer
    keys outage windows and per-operator fault rates on. [None] exactly
    when [connect] could never reach an endpoint for this name. *)

val mx_host : t -> domain -> string option
(** The TLS mail front-end a domain's MX points at, when its provider is
    modeled (Google); connecting to it exercises the same STEK as the
    provider's web properties — the section 7.2 cross-protocol
    sharing. *)

val connect_service_host :
  ?clock:Clock.t ->
  t ->
  client:Tls.Client.t ->
  hostname:string ->
  offer:Tls.Client.offer ->
  (Tls.Engine.outcome, connect_error) result
