(** A cursor over an immutable byte string, decoding the big-endian
    primitives that {!Writer} encodes. *)

exception Error of string
(** Raised on any malformed or truncated input. *)

type t

val of_string : ?pos:int -> ?len:int -> string -> t

(** Zero-copy cursor over a caller-owned buffer: the reader aliases
    the buffer's storage, so the buffer must not be mutated while the
    reader (or any {!sub} of it) is in use. Strings returned by {!take}
    and the vector decoders are copies and stay valid. *)
val of_bytes : ?pos:int -> ?len:int -> Bytes.t -> t

val remaining : t -> int
val is_empty : t -> bool
val position : t -> int

val u8 : t -> int
val u16 : t -> int
val u24 : t -> int
val u32 : t -> int
val u64 : t -> int

val take : t -> int -> string
(** [take t n] consumes and returns the next [n] bytes. *)

val take_rest : t -> string

val vec8 : t -> string
(** Opaque vector with a one-byte length prefix. *)

val vec16 : t -> string
val vec24 : t -> string

val sub : t -> int -> t
(** [sub t n] is a sub-reader confined to the next [n] bytes; the parent
    cursor advances past them. *)

val expect_end : t -> unit
(** Raises {!Error} if input remains. *)

val parse : string -> (t -> 'a) -> 'a
(** [parse data f] runs [f] over all of [data] and checks it was fully
    consumed. *)

val parse_result : string -> (t -> 'a) -> ('a, string) result
(** Exception-free variant of {!parse}. *)
