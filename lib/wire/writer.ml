(* A growable byte-string builder with big-endian primitives matching the
   TLS presentation language (RFC 5246 section 4). *)

type t = Buffer.t

let create ?(capacity = 64) () = Buffer.create capacity

let length t = Buffer.length t

let to_string t = Buffer.contents t

(* Drop the contents but keep the underlying storage, so one writer can
   frame many messages without reallocating. *)
let clear t = Buffer.clear t

let u8 t v =
  if v < 0 || v > 0xff then invalid_arg "Writer.u8: out of range";
  Buffer.add_char t (Char.chr v)

let u16 t v =
  if v < 0 || v > 0xffff then invalid_arg "Writer.u16: out of range";
  Buffer.add_char t (Char.chr (v lsr 8));
  Buffer.add_char t (Char.chr (v land 0xff))

let u24 t v =
  if v < 0 || v > 0xffffff then invalid_arg "Writer.u24: out of range";
  Buffer.add_char t (Char.chr (v lsr 16));
  Buffer.add_char t (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char t (Char.chr (v land 0xff))

let u32 t v =
  if v < 0 || v > 0xffffffff then invalid_arg "Writer.u32: out of range";
  u16 t (v lsr 16);
  u16 t (v land 0xffff)

let u64 t v =
  (* [v] is a non-negative OCaml int (63 bits); sufficient for the
     timestamps and lengths used here. *)
  if v < 0 then invalid_arg "Writer.u64: negative";
  u32 t ((v lsr 32) land 0xffffffff);
  u32 t (v land 0xffffffff)

let bytes t s = Buffer.add_string t s

(* Variable-length vectors: a length prefix of 1, 2 or 3 bytes followed by
   the body, as in the TLS presentation language. *)

let vec8 t s =
  if String.length s > 0xff then invalid_arg "Writer.vec8: too long";
  u8 t (String.length s);
  bytes t s

let vec16 t s =
  if String.length s > 0xffff then invalid_arg "Writer.vec16: too long";
  u16 t (String.length s);
  bytes t s

let vec24 t s =
  if String.length s > 0xffffff then invalid_arg "Writer.vec24: too long";
  u24 t (String.length s);
  bytes t s

let build f =
  let t = create () in
  f t;
  to_string t

(* Standalone encoders used when a single integer must become bytes. *)

let u16_string v = build (fun t -> u16 t v)
let u24_string v = build (fun t -> u24 t v)
let u32_string v = build (fun t -> u32 t v)
let u64_string v = build (fun t -> u64 t v)

(* Direct big-endian stores into preallocated buffers: the reuse-oriented
   counterparts of the streaming writers above. The record layer frames
   headers, nonces and MAC prefixes into per-connection scratch with
   these instead of building throwaway strings. Bounds are checked by
   [Bytes.set]. *)

let set_u8 b pos v =
  if v < 0 || v > 0xff then invalid_arg "Writer.set_u8: out of range";
  Bytes.set b pos (Char.chr v)

let set_u16 b pos v =
  if v < 0 || v > 0xffff then invalid_arg "Writer.set_u16: out of range";
  Bytes.set b pos (Char.chr (v lsr 8));
  Bytes.set b (pos + 1) (Char.chr (v land 0xff))

let set_u24 b pos v =
  if v < 0 || v > 0xffffff then invalid_arg "Writer.set_u24: out of range";
  Bytes.set b pos (Char.chr (v lsr 16));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (pos + 2) (Char.chr (v land 0xff))

let set_u32 b pos v =
  if v < 0 || v > 0xffffffff then invalid_arg "Writer.set_u32: out of range";
  set_u16 b pos (v lsr 16);
  set_u16 b (pos + 2) (v land 0xffff)

let set_u64 b pos v =
  if v < 0 then invalid_arg "Writer.set_u64: negative";
  set_u32 b pos ((v lsr 32) land 0xffffffff);
  set_u32 b (pos + 4) (v land 0xffffffff)
