(* A cursor over an immutable byte string, decoding the same big-endian
   primitives that {!Writer} encodes. All failures raise {!Error} with a
   description; TLS message parsers catch it at the message boundary. *)

exception Error of string

type t = { data : string; mutable pos : int; limit : int }

let of_string ?(pos = 0) ?len data =
  let limit =
    match len with None -> String.length data | Some l -> pos + l
  in
  if pos < 0 || limit > String.length data || pos > limit then
    raise (Error "Reader.of_string: bad bounds");
  { data; pos; limit }

(* Zero-copy cursor over a caller-owned buffer. The reader aliases the
   buffer's storage rather than copying it, so the caller must not mutate
   [buf] while the reader (or any [sub] of it) is still in use; strings
   returned by [take] are copies and stay valid. *)
let of_bytes ?pos ?len buf = of_string ?pos ?len (Bytes.unsafe_to_string buf)

let remaining t = t.limit - t.pos
let is_empty t = remaining t = 0
let position t = t.pos

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let need t n =
  if remaining t < n then
    fail "short read: need %d bytes, have %d" n (remaining t)

let u8 t =
  need t 1;
  let v = Char.code t.data.[t.pos] in
  t.pos <- t.pos + 1;
  v

let u16 t =
  let hi = u8 t in
  let lo = u8 t in
  (hi lsl 8) lor lo

let u24 t =
  let hi = u8 t in
  let rest = u16 t in
  (hi lsl 16) lor rest

let u32 t =
  let hi = u16 t in
  let lo = u16 t in
  (hi lsl 16) lor lo

let u64 t =
  let hi = u32 t in
  let lo = u32 t in
  (hi lsl 32) lor lo

let take t n =
  if n < 0 then fail "take: negative length";
  need t n;
  let s = String.sub t.data t.pos n in
  t.pos <- t.pos + n;
  s

let take_rest t = take t (remaining t)

let vec8 t = take t (u8 t)
let vec16 t = take t (u16 t)
let vec24 t = take t (u24 t)

let sub t n =
  (* A sub-reader confined to the next [n] bytes; the parent cursor is
     advanced past them. *)
  need t n;
  let r = { data = t.data; pos = t.pos; limit = t.pos + n } in
  t.pos <- t.pos + n;
  r

let expect_end t =
  if not (is_empty t) then fail "trailing garbage: %d bytes" (remaining t)

let parse data f =
  let t = of_string data in
  let v = f t in
  expect_end t;
  v

let parse_result data f =
  match parse data f with
  | v -> Ok v
  | exception Error msg -> Error msg
