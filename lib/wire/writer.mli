(** A growable byte-string builder with big-endian primitives matching the
    TLS presentation language (RFC 5246, section 4). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val to_string : t -> string

val clear : t -> unit
(** Drop the contents but keep the underlying storage, so one writer can
    frame many messages without reallocating. *)

val u8 : t -> int -> unit
val u16 : t -> int -> unit
val u24 : t -> int -> unit
val u32 : t -> int -> unit

val u64 : t -> int -> unit
(** Writes the low 63 bits of a non-negative OCaml int as 8 bytes. *)

val bytes : t -> string -> unit

val vec8 : t -> string -> unit
(** Opaque vector with a one-byte length prefix. *)

val vec16 : t -> string -> unit
(** Opaque vector with a two-byte length prefix. *)

val vec24 : t -> string -> unit
(** Opaque vector with a three-byte length prefix. *)

val build : (t -> unit) -> string
(** [build f] runs [f] on a fresh writer and returns the accumulated bytes. *)

val u16_string : int -> string
val u24_string : int -> string
val u32_string : int -> string
val u64_string : int -> string

(** {2 Direct stores into preallocated buffers}

    Big-endian counterparts of the streaming writers that encode at a
    fixed offset of a caller-owned [Bytes.t], for hot paths that reuse
    one scratch buffer across many messages. Range checks match the
    streaming variants; offsets are checked by [Bytes.set]. *)

val set_u8 : Bytes.t -> int -> int -> unit
val set_u16 : Bytes.t -> int -> int -> unit
val set_u24 : Bytes.t -> int -> int -> unit
val set_u32 : Bytes.t -> int -> int -> unit

val set_u64 : Bytes.t -> int -> int -> unit
(** Writes the low 63 bits of a non-negative OCaml int as 8 bytes. *)
