(** One entry point per table and figure of the paper's evaluation. Each
    function runs (or reuses) the needed experiments via {!Study} and
    returns formatted text with measured values next to the paper's. *)

val section3 : Study.t -> string
(** The data-collection funnel: always-listed population, ever-HTTPS,
    ever-trusted, participating shares. *)

val table1 : Study.t -> string
(** Support for forward secrecy and resumption. *)

val fig1 : Study.t -> string
(** Session-ID lifetime (resumption-delay walk + CDF). *)

val fig2 : Study.t -> string
(** Session-ticket lifetime, including lifetime-hint specifics. *)

val fig3 : Study.t -> string
(** STEK lifetime shares and CDF. *)

val fig4 : Study.t -> string
(** STEK lifetime by Alexa rank tier. *)

val table2 : Study.t -> string
(** Top domains with prolonged STEK reuse. *)

val table3 : Study.t -> string
(** Top domains with prolonged DHE reuse. *)

val table4 : Study.t -> string
(** Top domains with prolonged ECDHE reuse. *)

val fig5 : Study.t -> string
(** Ephemeral exchange value reuse shares and CDFs. *)

val table5 : Study.t -> string
(** Largest session-cache service groups. *)

val table6 : Study.t -> string
(** Largest STEK service groups. *)

val table7 : Study.t -> string
(** Largest Diffie-Hellman service groups. *)

val fig6 : Study.t -> string
(** STEK sharing x longevity (treemap data + mosaic). *)

val fig7 : Study.t -> string
(** Session-cache and Diffie-Hellman sharing x longevity. *)

val fig8 : Study.t -> string
(** Overall vulnerability windows (the headline result). *)

val all : Study.t -> string

val by_name : (string * (Study.t -> string)) list
(** [("t1", table1); ...; ("f8", fig8); ("funnel", ...)] — the ids the
    CLI and bench use; ["funnel"] renders the scanner's own per-day
    measurement-loss funnel under the configured fault profile. *)
