(** End-to-end orchestration of the nine-week measurement study: builds a
    world, runs every experiment in a paper-faithful order on the shared
    virtual clock (point experiments on days 0-2, the longitudinal
    campaign from day 3), and memoizes results so the per-table/figure
    entry points can be called in any order. *)

type config = {
  world_config : Simnet.World.config;
  campaign_days : int;  (** 63 in the paper *)
  jobs : int;
      (** worker domains for the longitudinal campaign; [> 1] runs it
          through {!Scanner.Parallel_campaign} (deterministic for any job
          count, but a different — per-shard — probe-seed schedule than
          the serial scan). Default 1. *)
  verbose : bool;  (** progress on stderr *)
  fault_profile : Faults.Profile.t;
      (** [Faults.Profile.none] (the default) disables injection
          entirely — no injector is built, probes make exactly one
          attempt, and every experiment output is byte-identical to the
          pre-fault scanner. *)
  retry : Faults.Retry.policy;
      (** probe retry policy; only consulted when faults are injected *)
  checkpoint : Durable.Checkpoint.t option;
      (** campaign crash-recovery store (default [None]): each completed
          campaign day is snapshotted and a re-created study resumes the
          campaign from the longest valid snapshot prefix. Pre-campaign
          point experiments re-run deterministically on resume. *)
  obs : Obs.Recorder.t option;
      (** telemetry sink (default [None]) shared by every experiment
          probe and the campaign runners. Recorders only read outcomes,
          so enabling one leaves every archive byte-identical. *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val of_world : ?config:config -> Simnet.World.t -> t
val world : t -> Simnet.World.t

val funnel : t -> Faults.Funnel.t
(** The shared measurement-loss telemetry every experiment probe records
    into. *)

val run_all : t -> unit
(** Force every experiment now (they otherwise run lazily on demand). *)

val funnel_report : t -> string
(** Forces all experiments, then renders the §3-style per-day loss
    funnel. *)

(** {2 Raw experiment results (memoized)} *)

val table1_bursts :
  t ->
  Scanner.Burst_scan.domain_result list
  * Scanner.Burst_scan.domain_result list
  * Scanner.Burst_scan.domain_result list
(** DHE-only, ECDHE-only and default (ticket) 10-connection bursts. *)

val fig1_results : t -> Scanner.Resumption_scan.domain_result list
val fig2_results : t -> Scanner.Resumption_scan.domain_result list
val cross_probe : t -> Scanner.Cross_probe.result
val stek_groups_scan : t -> Scanner.Burst_scan.domain_result list
val dh_groups_scan : t -> Scanner.Burst_scan.domain_result list
val campaign : t -> Scanner.Daily_scan.t

(** {2 Derived analyses} *)

val stek_spans : t -> Analysis.Lifetime.domain_spans list
val dhe_spans : t -> Analysis.Lifetime.domain_spans list
val ecdhe_spans : t -> Analysis.Lifetime.domain_spans list
val session_cache_groups : t -> Analysis.Service_groups.group list
val stek_service_groups : t -> Analysis.Service_groups.group list
val dh_service_groups : t -> Analysis.Service_groups.group list

val trusted_results :
  Scanner.Resumption_scan.domain_result list -> Scanner.Resumption_scan.domain_result list

val stable_trusted_results :
  Scanner.Resumption_scan.domain_result list -> Scanner.Resumption_scan.domain_result list

val vulnerability_components :
  t -> (string * int * float * Analysis.Vuln_window.components) list
(** Per-domain exposure components over the paper's analysis population
    (stable, browser-trusted domains). *)

val vulnerability_windows : t -> Analysis.Vuln_window.window list

val operator_harms : t -> Analysis.Vuln_report.operator_harm list
(** Operators ranked by combined harm: HT-weighted vulnerability-window
    days scaled by misconfiguration severity. Forces the study. *)

val vuln_report : t -> string
(** Rendered {!operator_harms} table. *)

(** {2 Axis ticks for the ASCII figures} *)

val ascii_hour_ticks : (float * string) list
val ascii_day_ticks : (float * string) list
val ascii_window_ticks : (float * string) list
