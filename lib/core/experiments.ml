(* One entry point per table and figure of the paper's evaluation. Each
   function runs (or reuses) the relevant experiments through {!Study},
   prints the measured rows/series next to the values the paper reports,
   and returns the formatted text. Absolute counts are weighted estimates
   of Top Million domains (see DESIGN.md on sampling weights); the
   reproduction targets are fractions, orderings and curve shapes, not
   absolute match. *)

module R = Analysis.Report
module St = Analysis.Stats
module L = Analysis.Lifetime
module SG = Analysis.Service_groups

let day = Simnet.Clock.day
let minute = Simnet.Clock.minute
let hour = Simnet.Clock.hour

(* --- Helpers ------------------------------------------------------------------ *)

let weighted_count results pred =
  List.fold_left
    (fun acc (r : Scanner.Burst_scan.domain_result) ->
      if pred r then acc +. r.Scanner.Burst_scan.weight else acc)
    0.0 results

let burst_trusted (r : Scanner.Burst_scan.domain_result) =
  r.Scanner.Burst_scan.trusted && r.Scanner.Burst_scan.successes > 0

(* --- Table 1 -------------------------------------------------------------------- *)

let table1 study =
  let r_dhe, r_ecdhe, r_ticket = Study.table1_bursts study in
  (* Trust is established by the default (all-suites) scan; the DHE-only
     and ECDHE-only scans cannot judge domains that refuse their offer,
     so every block shares the same browser-trusted denominator, as in
     the paper. *)
  let trusted_set = Hashtbl.create 4096 in
  List.iter
    (fun (r : Scanner.Burst_scan.domain_result) ->
      if burst_trusted r then Hashtbl.replace trusted_set r.Scanner.Burst_scan.domain ())
    r_ticket;
  let in_trusted (r : Scanner.Burst_scan.domain_result) =
    Hashtbl.mem trusted_set r.Scanner.Burst_scan.domain
  in
  let block name results ~support ~field (paper : string list) =
    let total = weighted_count results (fun _ -> true) in
    let trusted = weighted_count results in_trusted in
    let supports = weighted_count results (fun r -> in_trusted r && support r) in
    let repeat2, repeat_all =
      List.fold_left
        (fun (acc2, acc_all) (r : Scanner.Burst_scan.domain_result) ->
          if in_trusted r then begin
            let any2, all = Scanner.Burst_scan.repeats (Scanner.Burst_scan.result_values ~field r) in
            ( (acc2 +. if any2 then r.Scanner.Burst_scan.weight else 0.0),
              acc_all +. if all then r.Scanner.Burst_scan.weight else 0.0 )
          end
          else (acc2, acc_all))
        (0.0, 0.0) results
    in
    let rows =
      [
        [ name; "Alexa 1M domains (weighted)"; R.fmt_count total; List.nth paper 0 ];
        [ ""; "Browser-trusted TLS domains"; R.fmt_count trusted; List.nth paper 1 ];
        [ ""; "Support / issue"; R.fmt_count supports; List.nth paper 2 ];
        [ ""; ">= 2x same value"; R.fmt_count repeat2; List.nth paper 3 ];
        [ ""; "All same value"; R.fmt_count repeat_all; List.nth paper 4 ];
      ]
    in
    rows
  in
  let has_value ~field (r : Scanner.Burst_scan.domain_result) =
    Scanner.Burst_scan.result_values ~field r <> []
  in
  let rows =
    block "DHE" r_dhe
      ~support:(fun r -> r.Scanner.Burst_scan.successes > 0)
      ~field:`Dhe
      [ "957,116"; "427,313"; "252,340"; "18,113"; "12,461" ]
    @ block "ECDHE" r_ecdhe
        ~support:(fun r -> r.Scanner.Burst_scan.successes > 0)
        ~field:`Ecdhe
        [ "958,470"; "438,383"; "390,120"; "60,370"; "41,683" ]
    @ block "Tickets" r_ticket ~support:(has_value ~field:`Stek) ~field:`Stek
        [ "956,094"; "435,150"; "354,697"; "353,124"; "334,404" ]
  in
  R.section "Table 1: Support for Forward Secrecy and Resumption"
  ^ "\n"
  ^ R.table ~headers:[ "Scan"; "Metric"; "Measured (weighted)"; "Paper" ] ~rows
  ^ "\n"

(* --- Figures 1 and 2: resumption lifetimes ---------------------------------------- *)

let resumption_points results =
  List.filter_map
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      Option.map
        (fun h -> { St.value = float_of_int h; weight = r.Scanner.Resumption_scan.weight })
        r.Scanner.Resumption_scan.max_honored)
    results

let resumption_figure ~title ~support_label ~paper_lines study results =
  let trusted = Study.trusted_results results in
  let weight_of f =
    List.fold_left
      (fun acc (r : Scanner.Resumption_scan.domain_result) ->
        if f r then acc +. r.Scanner.Resumption_scan.weight else acc)
      0.0 trusted
  in
  let total = weight_of (fun _ -> true) in
  let supports = weight_of (fun r -> r.Scanner.Resumption_scan.supports) in
  let resumed_1s = weight_of (fun r -> r.Scanner.Resumption_scan.resumed_at_1s) in
  let points = resumption_points trusted in
  let resumer_frac limit = St.fraction points (fun v -> v <= limit) in
  let cdf = St.cdf points in
  ignore study;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (R.section title);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (R.table
       ~headers:[ "Metric"; "Measured"; "Paper" ]
       ~rows:
         [
           [ "Trusted HTTPS domains (weighted)"; R.fmt_count total; List.nth paper_lines 0 ];
           [ support_label; R.fmt_pct (supports /. total); List.nth paper_lines 1 ];
           [ "Resumed after 1 second"; R.fmt_pct (resumed_1s /. total); List.nth paper_lines 2 ];
           [ "Resumers honoring <= 5 min"; R.fmt_pct (resumer_frac 300.0); List.nth paper_lines 3 ];
           [ "Resumers honoring <= 1 hour"; R.fmt_pct (resumer_frac 3600.0); List.nth paper_lines 4 ];
           [
             "Resumers honoring >= 24 hours";
             R.fmt_pct (1.0 -. St.fraction points (fun v -> v < 86_399.0));
             List.nth paper_lines 5;
           ];
         ]);
  Buffer.add_string buf "\n\nCDF of max successful resumption delay (trusted resumers):\n";
  Buffer.add_string buf (R.ascii_cdf ~ticks:Study.ascii_hour_ticks cdf);
  Buffer.contents buf

let fig1 study =
  resumption_figure study
    (Study.fig1_results study)
    ~title:"Figure 1: Session ID Lifetime" ~support_label:"Set a session ID in ServerHello"
    ~paper_lines:[ "433,220"; "97%"; "83%"; "61%"; "82%"; "0.8%" ]

let fig2 study =
  let text =
    resumption_figure study
      (Study.fig2_results study)
      ~title:"Figure 2: Session Ticket Lifetime" ~support_label:"Issued a session ticket"
      ~paper_lines:[ "461,475"; "79%"; "76%"; "67%"; "76%"; "2%" ]
  in
  (* Lifetime-hint specifics the paper calls out. *)
  let trusted = Study.trusted_results (Study.fig2_results study) in
  let hinted =
    List.filter_map
      (fun (r : Scanner.Resumption_scan.domain_result) ->
        Option.map (fun h -> (r, h)) r.Scanner.Resumption_scan.hint)
      trusted
  in
  let total_issuers =
    List.fold_left (fun acc ((r : Scanner.Resumption_scan.domain_result), _) -> acc +. r.Scanner.Resumption_scan.weight) 0.0 hinted
  in
  let unspecified =
    List.fold_left
      (fun acc ((r : Scanner.Resumption_scan.domain_result), h) ->
        if h = 0 then acc +. r.Scanner.Resumption_scan.weight else acc)
      0.0 hinted
  in
  let extremes =
    List.filter (fun (_, h) -> h >= 10 * day) hinted
    |> List.map (fun ((r : Scanner.Resumption_scan.domain_result), h) ->
           Printf.sprintf "%s (%dd)" r.Scanner.Resumption_scan.domain (h / day))
  in
  (* "The indicated ticket lifetime closely follows the advertised
     lifetime hint": compare hint vs measured honored time. *)
  let agreement =
    let within = ref 0.0 and comparable = ref 0.0 in
    List.iter
      (fun ((r : Scanner.Resumption_scan.domain_result), h) ->
        match r.Scanner.Resumption_scan.max_honored with
        | Some honored when h > 0 ->
            comparable := !comparable +. r.Scanner.Resumption_scan.weight;
            (* Honored within one probe interval (5 min) of the hint. *)
            if abs (honored - h) <= 300 then within := !within +. r.Scanner.Resumption_scan.weight
        | _ -> ())
      hinted;
    if !comparable > 0.0 then !within /. !comparable else 0.0
  in
  text
  ^ Printf.sprintf
      "\n\nLifetime hints: %s of issuers leave the hint unspecified (paper: 14,663 domains).\n\
       Hints of 10+ days: %s (paper: fantabobworld.com and fantabobshow.com at 90 days).\n\
       Honored time within one probe interval of the hint: %s of hinted resumers\n\
       (paper: \"the indicated ticket lifetime closely follows the advertised hint\").\n"
      (R.fmt_pct (if total_issuers > 0.0 then unspecified /. total_issuers else 0.0))
      (match extremes with [] -> "none" | l -> String.concat ", " l)
      (R.fmt_pct agreement)

(* --- Figure 3: STEK lifetime -------------------------------------------------------- *)

let fig3 study =
  let spans = Study.stek_spans study in
  let s = L.summarize spans in
  let points = L.span_points spans in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (R.section "Figure 3: STEK Lifetime");
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (R.table
       ~headers:[ "Metric"; "Measured"; "Paper" ]
       ~rows:
         [
           [ "Stable trusted domains (weighted)"; R.fmt_count s.L.population; "291,643" ];
           [ "Never issued a ticket"; R.fmt_pct (s.L.never_observed /. s.L.population); "23%" ];
           [ "Different issuing STEK each day"; R.fmt_pct (s.L.changed_daily /. s.L.population); "41%" ];
           [ "Same STEK for 7+ days"; R.fmt_pct (s.L.span_7d_plus /. s.L.population); "22%" ];
           [ "Same STEK for 30+ days"; R.fmt_pct (s.L.span_30d_plus /. s.L.population); "10%" ];
         ]);
  Buffer.add_string buf "\n\nCDF of max STEK span (days, ticket issuers):\n";
  Buffer.add_string buf (R.ascii_cdf ~ticks:Study.ascii_day_ticks (St.cdf points));
  Buffer.contents buf

(* --- Figure 4: STEK lifetime by rank -------------------------------------------------- *)

let fig4 study =
  let spans = Study.stek_spans study in
  let tiers = Analysis.Rank_buckets.analyze spans in
  let rows =
    List.map
      (fun (t : Analysis.Rank_buckets.tier_summary) ->
        [
          t.Analysis.Rank_buckets.t.Analysis.Rank_buckets.label;
          string_of_int t.Analysis.Rank_buckets.sampled_issuers;
          R.fmt_count t.Analysis.Rank_buckets.issuers;
          R.fmt_pct t.Analysis.Rank_buckets.share_1d;
          R.fmt_pct t.Analysis.Rank_buckets.share_2_6d;
          R.fmt_pct t.Analysis.Rank_buckets.share_7_29d;
          R.fmt_pct t.Analysis.Rank_buckets.share_30d_plus;
          R.fmt_float t.Analysis.Rank_buckets.median_days;
        ])
      tiers
  in
  R.section "Figure 4: STEK Lifetime by Alexa Rank"
  ^ "\n"
  ^ R.table
      ~headers:[ "Tier"; "Sampled"; "Weighted"; "1d"; "2-6d"; "7-29d"; "30d+"; "Median (d)" ]
      ~rows
  ^ "\n\nPaper reference points: 56 ticket issuers in the Top 100 (12 of them holding a STEK\n\
     30+ days); issuers per tier: 494 (1K), 4,154 (10K), 37,224 (100K), 224,702 (1M).\n"

(* --- Tables 2-4: top prolonged reusers ------------------------------------------------- *)

let top_table ~title ~paper_note spans =
  let top = L.top_reusers ~min_days:7 ~limit:10 spans in
  let rows =
    List.map
      (fun (s : L.domain_spans) ->
        [ string_of_int s.L.rank; s.L.domain; string_of_int s.L.max_span_days ])
      top
  in
  R.section title ^ "\n"
  ^ R.table ~headers:[ "Rank"; "Domain"; "# Days" ] ~rows
  ^ "\n\n" ^ paper_note

let table2 study =
  top_table (Study.stek_spans study) ~title:"Table 2: Top Domains with Prolonged STEK Reuse"
    ~paper_note:
      "Paper top rows: yahoo.com (r5, 63d), qq.com (r19, 56d), taobao.com (r20, 63d),\n\
       pinterest.com (r21, 63d), yandex.ru (r28, 63d), netflix.com (r31, 54d), imgur.com\n\
       (r35, 63d), tmall.com (r41, 63d), fc2.com (r53, 18d), pornhub.com (r55, 29d).\n"

let table3 study =
  top_table (Study.dhe_spans study) ~title:"Table 3: Top Domains with Prolonged DHE Reuse"
    ~paper_note:
      "Paper top rows: netflix.com (r31, 59d), fc2.com (r53, 18d), ebay.in (r392, 7d),\n\
       ebay.it (r456, 8d), bleacherreport.com (r528, 24d), kayak.com (r580, 13d),\n\
       cbssports.com (r592, 60d), gamefaqs.com (r626, 12d), overstock.com (r633, 17d),\n\
       cookpad.com (r730, 63d).\n"

let table4 study =
  top_table (Study.ecdhe_spans study) ~title:"Table 4: Top Domains with Prolonged ECDHE Reuse"
    ~paper_note:
      "Paper top rows: netflix.com (r31, 59d), whatsapp.com (r74, 62d), vice.com (r158, 26d),\n\
       9gag.com (r221, 31d), liputan6.com (r322, 28d), paytm.com (r353, 27d),\n\
       playstation.com (r464, 11d), woot.com (r527, 62d), bleacherreport.com (r528, 24d),\n\
       leagueoflegends.com (r615, 27d).\n"

(* --- Figure 5: ephemeral value reuse --------------------------------------------------- *)

let fig5 study =
  let dhe = Study.dhe_spans study in
  let ecdhe = Study.ecdhe_spans study in
  let line name spans paper =
    let s = L.summarize spans in
    let connected = s.L.population -. s.L.never_observed in
    [
      name;
      R.fmt_count connected;
      R.fmt_pct (s.L.span_1d_plus /. connected);
      R.fmt_pct (s.L.span_7d_plus /. connected);
      R.fmt_pct (s.L.span_30d_plus /. connected);
      paper;
    ]
  in
  R.section "Figure 5: Ephemeral Exchange Value Reuse"
  ^ "\n"
  ^ R.table
      ~headers:[ "KEX"; "Connected (wt)"; ">=1d reuse"; ">=7d"; ">=30d"; "Paper (1d/7d/30d)" ]
      ~rows:
        [
          line "DHE" dhe "2.3% / 2.0% / 0.92%";
          line "ECDHE" ecdhe "4.2% / 3.7% / 1.7%";
        ]
  ^ "\n\nCDF of max server KEX value span (days, domains that completed the exchange):\n\n"
  ^ "DHE:\n"
  ^ R.ascii_cdf ~ticks:Study.ascii_day_ticks (St.cdf (L.span_points dhe))
  ^ "\nECDHE:\n"
  ^ R.ascii_cdf ~ticks:Study.ascii_day_ticks (St.cdf (L.span_points ecdhe))
  ^ "\n(Paper fractions above are per domain *completing* that key exchange; the paper's\n\
     Table 1 also reports within-burst repetition: 7.2% of DHE and 15.5% of ECDHE domains.)\n"

(* --- Tables 5-7: service groups --------------------------------------------------------- *)

let groups_table ~title ~paper_note ?population_weight groups =
  let summary = SG.summarize groups in
  let coverage =
    match population_weight with
    | Some w when w > 0.0 ->
        Printf.sprintf "Top-10 groups cover %s of the Top Million. "
          (R.fmt_pct (SG.top_coverage ~k:10 groups ~population_weight:w))
    | _ -> ""
  in
  let rows =
    List.filteri (fun i _ -> i < 10) groups
    |> List.map (fun (g : SG.group) ->
           [
             g.SG.label;
             R.fmt_count g.SG.weighted_size;
             string_of_int g.SG.sampled_size;
             (match g.SG.members with m :: _ -> m | [] -> "");
           ])
  in
  R.section title ^ "\n"
  ^ R.table ~headers:[ "Operator"; "Weighted size"; "Sampled"; "Example member" ] ~rows
  ^ Printf.sprintf "\n\nGroups: %d; singletons: %d (%s). %s" summary.SG.n_groups
      summary.SG.n_singletons
      (R.fmt_pct (float_of_int summary.SG.n_singletons /. float_of_int (max 1 summary.SG.n_groups)))
      coverage
  ^ paper_note

let population_weight study =
  Array.fold_left
    (fun acc d -> acc +. Simnet.World.domain_weight d)
    0.0
    (Simnet.World.domains (Study.world study))

let table5 study =
  groups_table
    (Study.session_cache_groups study)
    ~population_weight:(population_weight study)
    ~title:"Table 5: Largest Session Cache Service Groups"
    ~paper_note:
      "Paper: 212,491 groups, 86% singletons; largest: CloudFlare #1 (30,163), CloudFlare #2\n\
       (15,241), Automattic #1 (2,247), Automattic #2 (1,552), five Blogspot pools (561-849),\n\
       Shopify (593).\n"

let table6 study =
  groups_table (Study.stek_service_groups study)
    ~population_weight:(population_weight study)
    ~title:"Table 6: Largest STEK Service Groups"
    ~paper_note:
      "Paper: 170,634 groups, 83% singletons; largest: CloudFlare (62,176), Google (8,973),\n\
       Automattic (4,182), TMall (3,305), Shopify (3,247), GoDaddy (1,875), Amazon (1,495),\n\
       three Tumblr pools (~960 each).\n"

let table7 study =
  groups_table (Study.dh_service_groups study)
    ~population_weight:(population_weight study)
    ~title:"Table 7: Largest Diffie-Hellman Service Groups"
    ~paper_note:
      "Paper: 421,492 groups, 99% singletons; largest: SquareSpace (1,627), LiveJournal\n\
       (1,330), Jimdo #1/#2 (179/178), Distil (174), Atypon (167), Affinity (146), Line\n\
       (114), Digital Insight (98), EdgeCast (75).\n"

(* --- Figures 6-7: sharing x longevity ------------------------------------------------------ *)

let span_lookup spans =
  let tbl = Hashtbl.create 4096 in
  List.iter (fun (s : L.domain_spans) -> Hashtbl.replace tbl s.L.domain s.L.max_span_days) spans;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some d when d > 0 -> Some (float_of_int d)
    | _ -> None

let treemap_section ~title ~note groups longevity =
  let cells = Analysis.Treemap.cells ~longevity_days:longevity groups in
  let top =
    List.filteri (fun i _ -> i < 12) cells
    |> List.map (fun (c : Analysis.Treemap.cell) ->
           [
             c.Analysis.Treemap.label;
             R.fmt_count c.Analysis.Treemap.weighted_size;
             R.fmt_float c.Analysis.Treemap.median_longevity_days;
             Analysis.Treemap.class_label c.Analysis.Treemap.longevity;
           ])
  in
  R.section title ^ "\n"
  ^ R.table ~headers:[ "Group"; "Weighted size"; "Median longevity (d)"; "Class" ] ~rows:top
  ^ "\n\nMosaic (area ~ group size, glyph ~ longevity):\n"
  ^ Analysis.Treemap.render cells
  ^ "\n" ^ note

let fig6 study =
  let stek_longevity = span_lookup (Study.stek_spans study) in
  treemap_section (Study.stek_service_groups study) stek_longevity
    ~title:"Figure 6: STEK Sharing and Longevity"
    ~note:
      "\nPaper: CloudFlare and Google (20% of Top Million HTTPS) both rotate within a day;\n\
       TMall and Fastly (1,208 domains together) never rotated; the Jack Henry banking\n\
       cluster (79 domains) held one shared STEK for 59 days, then rotated to another.\n"

let fig7 study =
  (* Session caches: longevity = measured max honored resumption delay. *)
  let id_tbl = Hashtbl.create 4096 in
  List.iter
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      match r.Scanner.Resumption_scan.max_honored with
      | Some h -> Hashtbl.replace id_tbl r.Scanner.Resumption_scan.domain (float_of_int h /. 86_400.0)
      | None -> ())
    (Study.fig1_results study);
  let cache_longevity name = Hashtbl.find_opt id_tbl name in
  let dhe_lookup = span_lookup (Study.dhe_spans study) in
  let ecdhe_lookup = span_lookup (Study.ecdhe_spans study) in
  let dh_longevity name =
    match (dhe_lookup name, ecdhe_lookup name) with
    | Some a, Some b -> Some (Float.max a b)
    | (Some _ as v), None | None, (Some _ as v) -> v
    | None, None -> None
  in
  treemap_section
    (Study.session_cache_groups study)
    cache_longevity ~title:"Figure 7a: Session Cache Sharing and Longevity"
    ~note:
      "\nPaper: the ten largest shared caches cover 15% of Top Million domains with median\n\
       windows between 5 minutes and 24 hours; the five longest-lived all belong to Google\n\
       Blogspot (4.5h-24h).\n"
  ^ treemap_section (Study.dh_service_groups study) dh_longevity
      ~title:"Figure 7b: Diffie-Hellman Value Sharing and Longevity"
      ~note:
        "\nPaper: smaller groups than caches/STEKs, but Affinity Internet shared one DHE value\n\
         across 91 domains for 62 days and Jimdo shared ECDHE values for 19 and 17 days.\n"

(* --- Figure 8: combined vulnerability windows ----------------------------------------------- *)

let fig8 study =
  let windows = Study.vulnerability_windows study in
  let s = Analysis.Vuln_window.summarize windows in
  let cdf = St.cdf (Analysis.Vuln_window.cdf_points windows) in
  R.section "Figure 8: Overall Vulnerability Windows"
  ^ "\n"
  ^ R.table
      ~headers:[ "Metric"; "Measured"; "Paper" ]
      ~rows:
        [
          [ "Participating domains (weighted)"; R.fmt_count s.Analysis.Vuln_window.population; "288,252" ];
          [ "Window > 24 hours"; R.fmt_pct (s.Analysis.Vuln_window.over_24h /. s.Analysis.Vuln_window.population); "38%" ];
          [ "Window > 7 days"; R.fmt_pct (s.Analysis.Vuln_window.over_7d /. s.Analysis.Vuln_window.population); "22%" ];
          [ "Window > 30 days"; R.fmt_pct (s.Analysis.Vuln_window.over_30d /. s.Analysis.Vuln_window.population); "10%" ];
        ]
  ^ "\n\nCDF of maximum exposure window:\n"
  ^ R.ascii_cdf ~ticks:Study.ascii_window_ticks cdf

(* --- Section 3: the dataset funnel ------------------------------------------------------------ *)

(* The paper's data-collection statistics: how much of the Top Million is
   stable across the nine weeks, and how the analysis population funnels
   down from it (539,546 always-listed -> 68% ever HTTPS -> 54% ever
   browser-trusted -> 53% participating in some studied mechanism). *)
let section3 study =
  let world = Study.world study in
  let campaign = Study.campaign study in
  let fig1 = Study.fig1_results study and fig2 = Study.fig2_results study in
  let supports = Hashtbl.create 4096 in
  List.iter
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      if r.Scanner.Resumption_scan.supports then
        Hashtbl.replace supports r.Scanner.Resumption_scan.domain ())
    (fig1 @ fig2);
  let stable = ref 0.0 and ever_https = ref 0.0 and ever_trusted = ref 0.0 in
  let participated = ref 0.0 in
  Array.iter
    (fun (series : Scanner.Daily_scan.domain_series) ->
      if series.Scanner.Daily_scan.stable then begin
        let w = series.Scanner.Daily_scan.weight in
        stable := !stable +. w;
        let https =
          Array.exists
            (fun (r : Scanner.Daily_scan.day_record) ->
              r.Scanner.Daily_scan.default_ok || r.Scanner.Daily_scan.dhe_ok)
            series.Scanner.Daily_scan.days
        in
        if https then ever_https := !ever_https +. w;
        if https && series.Scanner.Daily_scan.trusted then begin
          ever_trusted := !ever_trusted +. w;
          let kex_or_ticket =
            Array.exists
              (fun (r : Scanner.Daily_scan.day_record) ->
                r.Scanner.Daily_scan.stek_id <> None
                || r.Scanner.Daily_scan.ecdhe_value <> None
                || r.Scanner.Daily_scan.dhe_value <> None)
              series.Scanner.Daily_scan.days
          in
          if kex_or_ticket || Hashtbl.mem supports series.Scanner.Daily_scan.domain then
            participated := !participated +. w
        end
      end)
    campaign.Scanner.Daily_scan.series;
  let total =
    Array.fold_left
      (fun acc d -> acc +. Simnet.World.domain_weight d)
      0.0 (Simnet.World.domains world)
  in
  let pct v = R.fmt_pct (v /. !stable) in
  R.section "Section 3: Data Collection (the analysis-population funnel)"
  ^ "
"
  ^ R.table
      ~headers:[ "Metric"; "Measured (weighted)"; "Paper" ]
      ~rows:
        [
          [ "Top Million represented"; R.fmt_count total; "1,000,000/day" ];
          [ "In the list all days"; R.fmt_count !stable; "539,546" ];
          [ "...ever supported HTTPS"; R.fmt_count !ever_https ^ " (" ^ pct !ever_https ^ ")"; "369,034 (68%)" ];
          [ "...ever browser-trusted"; R.fmt_count !ever_trusted ^ " (" ^ pct !ever_trusted ^ ")"; "291,643 (54%)" ];
          [
            "...issued a ticket, resumed, or did (EC)DHE";
            R.fmt_count !participated ^ " (" ^ pct !participated ^ ")";
            "288,252 (53%)";
          ];
        ]
  ^ "

(Measurements over multiple days are restricted to the always-listed population,
     as in the paper; churned-in/out domains appear in the daily lists but not here.)
"

(* --- Everything ------------------------------------------------------------------------------ *)

let all study =
  String.concat "\n"
    [
      section3 study;
      table1 study;
      fig1 study;
      fig2 study;
      fig3 study;
      fig4 study;
      table2 study;
      table3 study;
      table4 study;
      fig5 study;
      table5 study;
      table6 study;
      table7 study;
      fig6 study;
      fig7 study;
      fig8 study;
    ]

let by_name =
  [
    ("s3", section3);
    ("t1", table1);
    ("f1", fig1);
    ("f2", fig2);
    ("f3", fig3);
    ("f4", fig4);
    ("t2", table2);
    ("t3", table3);
    ("t4", table4);
    ("f5", fig5);
    ("t5", table5);
    ("t6", table6);
    ("t7", table7);
    ("f6", fig6);
    ("f7", fig7);
    ("f8", fig8);
    (* The live counterpart of the section-3 funnel: what the scanner
       itself lost, per day and per cause, under the configured fault
       profile (all-zero loss rows under the default [none] profile). *)
    ("funnel", Study.funnel_report);
  ]

let _ = (minute, hour)
