(* End-to-end orchestration of the nine-week measurement study: builds
   (or receives) a world, runs every experiment in a paper-faithful
   order on the shared virtual clock, and memoizes the results so the
   per-table/per-figure entry points can be called in any order.

   Timeline (virtual days):
     day 0        — Table 1 bursts: 10 connections in quick succession,
                    once per cipher-suite offer (DHE-only, ECDHE-only,
                    default-with-tickets);
     day 1        — Figure 1: session-ID resumption-delay walk (24 h);
     day 2        — Figure 2: session-ticket resumption-delay walk (24 h);
     day 3        — Table 5: cross-domain session-cache probing;
                  — Table 6: STEK-group scans (10 connections over 6 h);
                  — Table 7: DH-group scans (DHE-only and ECDHE-only,
                    10 connections over 5 h);
     days 4..4+N  — the daily longitudinal campaign (Figures 3-5,
                    Tables 2-4), N = 63 by default;
     afterwards   — Figure 8 assembly and the Section 7.2 target
                    analysis, which use the collected data. *)

type config = {
  world_config : Simnet.World.config;
  campaign_days : int;
  jobs : int; (* campaign worker domains; > 1 uses Parallel_campaign *)
  verbose : bool;
  fault_profile : Faults.Profile.t; (* [Profile.none] = legacy fault-free network *)
  retry : Faults.Retry.policy;
  checkpoint : Durable.Checkpoint.t option;
      (* campaign crash-recovery store; the pre-campaign point
         experiments are cheap relative to the nine-week campaign and
         re-run deterministically on resume *)
  obs : Obs.Recorder.t option;
      (* telemetry sink shared by every experiment probe and the
         campaign; [None] (the default) is the untouched legacy path *)
}

let default_config =
  {
    world_config = Simnet.World.default_config;
    campaign_days = 63;
    jobs = 1;
    verbose = false;
    (* [none] keeps every pre-fault experiment output byte-identical:
       no injector is built, probes make exactly one attempt. *)
    fault_profile = Faults.Profile.none;
    retry = Faults.Retry.default;
    checkpoint = None;
    obs = None;
  }

type t = {
  config : config;
  world : Simnet.World.t;
  mutable table1_bursts :
    (Scanner.Burst_scan.domain_result list
    * Scanner.Burst_scan.domain_result list
    * Scanner.Burst_scan.domain_result list)
    option; (* dhe, ecdhe, ticket *)
  mutable fig1_results : Scanner.Resumption_scan.domain_result list option;
  mutable fig2_results : Scanner.Resumption_scan.domain_result list option;
  mutable cross_probe : Scanner.Cross_probe.result option;
  mutable stek_groups_scan : Scanner.Burst_scan.domain_result list option;
  mutable dh_groups_scan : Scanner.Burst_scan.domain_result list option;
  mutable campaign : Scanner.Daily_scan.t option;
  injector : Faults.Injector.t option; (* None when the profile is [none] *)
  funnel : Faults.Funnel.t; (* shared loss telemetry across all experiments *)
}

let injector_of ~config world =
  if config.fault_profile.Faults.Profile.name = "none" then None
  else Some (Faults.Injector.create ~profile:config.fault_profile world)

let create ?(config = default_config) () =
  let world = Simnet.World.create ~config:config.world_config () in
  {
    config;
    world;
    table1_bursts = None;
    fig1_results = None;
    fig2_results = None;
    cross_probe = None;
    stek_groups_scan = None;
    dh_groups_scan = None;
    campaign = None;
    injector = injector_of ~config world;
    funnel = Faults.Funnel.create ();
  }

let of_world ?(config = default_config) world =
  {
    config;
    world;
    table1_bursts = None;
    fig1_results = None;
    fig2_results = None;
    cross_probe = None;
    stek_groups_scan = None;
    dh_groups_scan = None;
    campaign = None;
    injector = injector_of ~config world;
    funnel = Faults.Funnel.create ();
  }

let world t = t.world
let funnel t = t.funnel

(* Every serial experiment probe shares the study's injector, retry
   policy and funnel; with the default [none] profile these are all
   no-ops and the probes behave exactly as before. *)
let probe ?offer_suites ?offer_ticket t ~seed =
  Scanner.Probe.create ?offer_suites ?offer_ticket ?injector:t.injector ~retry:t.config.retry
    ~funnel:t.funnel ?obs:t.config.obs ~seed t.world

let dhe_probe_of t ~seed =
  Scanner.Probe.dhe_only ?injector:t.injector ~retry:t.config.retry ~funnel:t.funnel
    ?obs:t.config.obs t.world ~seed

let ecdhe_probe_of t ~seed =
  Scanner.Probe.ecdhe_only ?injector:t.injector ~retry:t.config.retry ~funnel:t.funnel
    ?obs:t.config.obs t.world ~seed

let log t fmt =
  if t.config.verbose then Format.eprintf (fmt ^^ "@.") else Format.ifprintf Format.err_formatter fmt

let minute = Simnet.Clock.minute

(* --- Experiment runners (memoized) ------------------------------------------ *)

let table1_bursts t =
  match t.table1_bursts with
  | Some r -> r
  | None ->
      log t "study: table 1 burst scans";
      let dhe = dhe_probe_of t ~seed:"t1-dhe" in
      let r_dhe = Scanner.Burst_scan.run dhe ~rounds:10 ~gap:30 () in
      let ecdhe = ecdhe_probe_of t ~seed:"t1-ecdhe" in
      let r_ecdhe = Scanner.Burst_scan.run ecdhe ~rounds:10 ~gap:30 () in
      let default = probe t ~seed:"t1-ticket" in
      let r_ticket = Scanner.Burst_scan.run default ~rounds:10 ~gap:30 () in
      let r = (r_dhe, r_ecdhe, r_ticket) in
      t.table1_bursts <- Some r;
      r

let fig1_results t =
  match t.fig1_results with
  | Some r -> r
  | None ->
      ignore (table1_bursts t);
      log t "study: figure 1 session-ID lifetime walk";
      let probe = probe ~offer_ticket:false t ~seed:"fig1" in
      let r = Scanner.Resumption_scan.run probe ~mode:Scanner.Resumption_scan.Session_ids () in
      t.fig1_results <- Some r;
      r

let fig2_results t =
  match t.fig2_results with
  | Some r -> r
  | None ->
      ignore (fig1_results t);
      log t "study: figure 2 session-ticket lifetime walk";
      let probe = probe t ~seed:"fig2" in
      let r = Scanner.Resumption_scan.run probe ~mode:Scanner.Resumption_scan.Tickets () in
      t.fig2_results <- Some r;
      r

let cross_probe t =
  match t.cross_probe with
  | Some r -> r
  | None ->
      ignore (fig2_results t);
      log t "study: table 5 cross-domain session-cache probing";
      let r =
        Scanner.Cross_probe.run ?injector:t.injector ~retry:t.config.retry ~funnel:t.funnel
          t.world ()
      in
      t.cross_probe <- Some r;
      r

let stek_groups_scan t =
  match t.stek_groups_scan with
  | Some r -> r
  | None ->
      ignore (cross_probe t);
      log t "study: table 6 STEK-group scans";
      let probe = probe t ~seed:"stek-groups" in
      (* 10 connections over a six-hour window, then one more 30 minutes
         later, like the paper's two-phase grouping. *)
      let r = Scanner.Burst_scan.run probe ~rounds:10 ~gap:(40 * minute) () in
      Simnet.Clock.advance (Simnet.World.clock t.world) (30 * minute);
      let extra = Scanner.Burst_scan.run probe ~rounds:1 ~gap:0 () in
      let merged =
        List.map2
          (fun (a : Scanner.Burst_scan.domain_result) (b : Scanner.Burst_scan.domain_result) ->
            { a with Scanner.Burst_scan.conns = a.Scanner.Burst_scan.conns @ b.Scanner.Burst_scan.conns })
          r extra
      in
      t.stek_groups_scan <- Some merged;
      merged

let dh_groups_scan t =
  match t.dh_groups_scan with
  | Some r -> r
  | None ->
      ignore (stek_groups_scan t);
      log t "study: table 7 Diffie-Hellman group scans";
      let dhe = dhe_probe_of t ~seed:"dh-groups" in
      let r_dhe = Scanner.Burst_scan.run dhe ~rounds:10 ~gap:(33 * minute) () in
      let ecdhe = ecdhe_probe_of t ~seed:"ecdh-groups" in
      let r_ecdhe = Scanner.Burst_scan.run ecdhe ~rounds:10 ~gap:(33 * minute) () in
      let merged =
        List.map2
          (fun (a : Scanner.Burst_scan.domain_result) (b : Scanner.Burst_scan.domain_result) ->
            { a with Scanner.Burst_scan.conns = a.Scanner.Burst_scan.conns @ b.Scanner.Burst_scan.conns })
          r_dhe r_ecdhe
      in
      t.dh_groups_scan <- Some merged;
      merged

let campaign t =
  match t.campaign with
  | Some r -> r
  | None ->
      ignore (dh_groups_scan t);
      (* Start the longitudinal campaign at the next day boundary. *)
      let clock = Simnet.World.clock t.world in
      let now = Simnet.Clock.now clock in
      Simnet.Clock.set clock ((now / Simnet.Clock.day * Simnet.Clock.day) + Simnet.Clock.day);
      let r =
        if t.config.jobs > 1 then begin
          log t "study: daily campaign (%d days, %d jobs)" t.config.campaign_days t.config.jobs;
          Scanner.Parallel_campaign.run ~jobs:t.config.jobs ?injector:t.injector
            ~retry:t.config.retry ~funnel:t.funnel ?checkpoint:t.config.checkpoint
            ?obs:t.config.obs t.world ~days:t.config.campaign_days ()
        end
        else begin
          log t "study: daily campaign (%d days)" t.config.campaign_days;
          Scanner.Daily_scan.run ?injector:t.injector ~retry:t.config.retry ~funnel:t.funnel
            ?checkpoint:t.config.checkpoint ?obs:t.config.obs t.world
            ~days:t.config.campaign_days
            ~progress:(fun day -> log t "study: campaign day %d" day)
            ()
        end
      in
      t.campaign <- Some r;
      r

(* Run everything in order. *)
let run_all t = ignore (campaign t)

let funnel_report t =
  run_all t;
  Analysis.Funnel_report.render
    ~title:
      (Printf.sprintf "Section 3 funnel: probes, retries and losses (fault profile: %s)"
         t.config.fault_profile.Faults.Profile.name)
    t.funnel

(* --- Derived analyses --------------------------------------------------------- *)

let stek_spans t = Analysis.Lifetime.analyze ~field:Analysis.Lifetime.Stek (campaign t)
let dhe_spans t = Analysis.Lifetime.analyze ~field:Analysis.Lifetime.Dhe (campaign t)
let ecdhe_spans t = Analysis.Lifetime.analyze ~field:Analysis.Lifetime.Ecdhe (campaign t)

let session_cache_groups t =
  Analysis.Service_groups.session_cache_groups ~world:t.world (cross_probe t)

let stek_service_groups t = Analysis.Service_groups.stek_groups ~world:t.world (stek_groups_scan t)
let dh_service_groups t = Analysis.Service_groups.dh_groups ~world:t.world (dh_groups_scan t)

(* Restrict resumption-scan results to the analysis population. *)
let trusted_results results =
  List.filter
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      r.Scanner.Resumption_scan.trusted && r.Scanner.Resumption_scan.https)
    results

(* The Figure 8 population is the paper's: domains in the list every day
   with a browser-trusted chain (291,643 in the paper); span analyses are
   already restricted the same way. *)
let stable_trusted_results results =
  List.filter
    (fun (r : Scanner.Resumption_scan.domain_result) ->
      r.Scanner.Resumption_scan.trusted && r.Scanner.Resumption_scan.https
      && r.Scanner.Resumption_scan.stable)
    results

let vulnerability_components t =
  Analysis.Vuln_window.assemble_components
    ~session_results:(stable_trusted_results (fig1_results t))
    ~ticket_results:(stable_trusted_results (fig2_results t))
    ~stek_spans:(stek_spans t) ~dhe_spans:(dhe_spans t) ~ecdhe_spans:(ecdhe_spans t)

let vulnerability_windows t =
  Analysis.Vuln_window.windows_of_components (vulnerability_components t)

let operator_harms t =
  Analysis.Vuln_report.rank_operators ~world:t.world ~windows:(vulnerability_windows t)

let vuln_report t = Analysis.Vuln_report.render_harm (operator_harms t)

let ascii_hour_ticks =
  [
    (60.0, "1m");
    (300.0, "5m");
    (1800.0, "30m");
    (3600.0, "1h");
    (14_400.0, "4h");
    (36_000.0, "10h");
    (64_800.0, "18h");
    (86_400.0, "24h");
  ]

let ascii_day_ticks =
  [
    (1.0, "1d");
    (2.0, "2d");
    (4.0, "4d");
    (7.0, "7d");
    (14.0, "14d");
    (21.0, "21d");
    (30.0, "30d");
    (45.0, "45d");
    (63.0, "63d");
  ]

let ascii_window_ticks =
  [
    (300.0, "5m");
    (3600.0, "1h");
    (86_400.0, "1d");
    (604_800.0, "7d");
    (2_592_000.0, "30d");
    (5_443_200.0, "63d");
  ]
