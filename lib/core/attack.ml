(* Concrete end-to-end demonstrations of the attacks whose *surface* the
   measurement study quantifies. Each demo plays the paper's threat
   model faithfully:

   1. a passive network observer records a victim's TLS handshake bytes
      and encrypted application records (our wiretap on the engine);
   2. at some later time the attacker obtains one piece of server-side
      secret state — a STEK, a cached ephemeral DH private value, or the
      session cache contents;
   3. from the recording plus that single secret, the session keys fall
      out and the recorded application data decrypts.

   Nothing here uses private client state: everything the attacker needs
   besides the stolen server secret is visible on the wire (client and
   server randoms, the ticket, the public key-exchange values). *)

module Msg = Tls.Handshake_msg

type capture = {
  mutable client_random : string;
  mutable server_random : string;
  mutable ticket : string option;
  mutable client_kex_public : string option;
  mutable server_session_id : string;
}

let empty_capture () =
  {
    client_random = "";
    server_random = "";
    ticket = None;
    client_kex_public = None;
    server_session_id = "";
  }

(* Parse the flight bytes the wiretap sees and squirrel away everything a
   passive observer learns. *)
let observe capture _direction bytes =
  match Msg.read_all bytes with
  | Error _ -> ()
  | Ok msgs ->
      List.iter
        (fun msg ->
          match msg with
          | Msg.Client_hello ch -> capture.client_random <- ch.Msg.ch_random
          | Msg.Server_hello sh ->
              capture.server_random <- sh.Msg.sh_random;
              capture.server_session_id <- sh.Msg.sh_session_id
          | Msg.New_session_ticket nst -> capture.ticket <- Some nst.Msg.nst_ticket
          | Msg.Client_key_exchange public -> capture.client_kex_public <- Some public
          | Msg.Certificate _ | Msg.Server_key_exchange _ | Msg.Server_hello_done
          | Msg.Finished _ ->
              ())
        msgs

(* A victim connection: handshake under the wiretap, then application
   data protected with the negotiated keys, recorded as ciphertext. *)
type recording = {
  capture : capture;
  outcome : Tls.Engine.outcome;
  encrypted_records : Tls.Record.t list; (* client -> server application data *)
  plaintext : string; (* what the victim actually sent (ground truth) *)
}

let victim_connection ?(plaintext = "POST /login user=alice&password=hunter2") client server
    ~now ~hostname ~offer =
  let capture = empty_capture () in
  let outcome =
    Tls.Engine.connect ~wiretap:(observe capture) client server ~now ~hostname ~offer
  in
  match outcome.Tls.Engine.session with
  | None -> Error "victim handshake failed"
  | Some session ->
      let keys =
        Tls.Record.derive_keys
          ~master:(Tls.Session.master_secret session)
          ~client_random:capture.client_random ~server_random:capture.server_random
      in
      let tx = Tls.Record.cipher_state keys.Tls.Record.client_write in
      let encrypted_records = Tls.Record.seal_application_data tx plaintext in
      Ok { capture; outcome; encrypted_records; plaintext }

(* Decrypt a recording given a recovered master secret: re-derive the key
   block exactly as the endpoints did. *)
let decrypt_with_master recording ~master =
  let keys =
    Tls.Record.derive_keys ~master ~client_random:recording.capture.client_random
      ~server_random:recording.capture.server_random
  in
  let rx = Tls.Record.cipher_state keys.Tls.Record.client_write in
  match Tls.Record.open_application_data rx recording.encrypted_records with
  | Ok plain -> Ok plain
  | Error a -> Error (Format.asprintf "decryption failed: %a" Tls.Types.pp_alert a)

(* --- Attack 1: stolen STEK (Section 6.1) ------------------------------------- *)

let steal_stek_and_decrypt recording ~server ~now =
  match recording.capture.ticket with
  | None -> Error "no ticket on the wire"
  | Some ticket -> (
      match (Tls.Server.config server).Tls.Config.tickets with
      | None -> Error "server has no ticket machinery to compromise"
      | Some tc -> (
          (* The compromise: read the STEK out of the server. *)
          let find_stek key_name =
            Tls.Stek_manager.find_for_decrypt tc.Tls.Config.stek_manager ~now key_name
          in
          match Tls.Ticket.decrypt_with_stolen_stek ~find_stek ticket with
          | Error e -> Error (Format.asprintf "%a" Tls.Ticket.pp_unseal_error e)
          | Ok session ->
              decrypt_with_master recording ~master:(Tls.Session.master_secret session)))

(* --- Attack 2: stolen ephemeral DH value (Section 6.3) ------------------------ *)

let steal_kex_value_and_decrypt recording ~server ~env =
  let kex_cache = (Tls.Server.config server).Tls.Config.kex_cache in
  match recording.capture.client_kex_public with
  | None -> Error "no ClientKeyExchange on the wire"
  | Some client_public -> (
      match recording.outcome.Tls.Engine.cipher with
      | Some suite -> (
          match Tls.Types.suite_kex suite with
          | Tls.Types.Ecdhe when String.length client_public = Crypto.X25519.key_len -> (
              (* NIST-curve ClientKeyExchanges carry an uncompressed point
                 (0x04 || X || Y, odd length); a 32-byte payload can only
                 be an X25519 share. *)
              match Tls.Kex_cache.current_x25519 kex_cache with
              | None -> Error "server holds no cached X25519 value (nothing to steal)"
              | Some stolen -> (
                  match Crypto.X25519.shared_secret stolen ~peer_pub:client_public with
                  | Error e -> Error e
                  | Ok pre_master ->
                      let master =
                        Crypto.Prf.master_secret ~pre_master
                          ~client_random:recording.capture.client_random
                          ~server_random:recording.capture.server_random
                      in
                      decrypt_with_master recording ~master))
          | Tls.Types.Ecdhe -> (
              match Tls.Kex_cache.current_ecdhe kex_cache with
              | None -> Error "server holds no cached ECDHE value (nothing to steal)"
              | Some stolen -> (
                  match Crypto.Ec.point_of_bytes env.Tls.Config.ecdhe_curve client_public with
                  | Error e -> Error e
                  | Ok client_point -> (
                      match Crypto.Ec.shared_secret stolen ~peer_pub:client_point with
                      | Error e -> Error e
                      | Ok pre_master ->
                          let master =
                            Crypto.Prf.master_secret ~pre_master
                              ~client_random:recording.capture.client_random
                              ~server_random:recording.capture.server_random
                          in
                          decrypt_with_master recording ~master)))
          | Tls.Types.Dhe -> (
              match Tls.Kex_cache.current_dhe kex_cache with
              | None -> Error "server holds no cached DHE value (nothing to steal)"
              | Some stolen -> (
                  match
                    Crypto.Dh.shared_secret stolen
                      ~peer_pub:(Crypto.Bignum.of_bytes_be client_public)
                  with
                  | Error e -> Error e
                  | Ok pre_master ->
                      let master =
                        Crypto.Prf.master_secret ~pre_master
                          ~client_random:recording.capture.client_random
                          ~server_random:recording.capture.server_random
                      in
                      decrypt_with_master recording ~master))
          | Tls.Types.Static_ecdh -> Error "static suite: steal the certificate key instead")
      | None -> Error "victim connection failed")

(* --- Attack 3: stolen session cache (Section 6.2) ------------------------------ *)

let steal_session_cache_and_decrypt recording ~server =
  match (Tls.Server.config server).Tls.Config.session_cache with
  | None -> Error "server keeps no session cache"
  | Some cache -> (
      let target_id = recording.capture.server_session_id in
      let sessions = Tls.Session_cache.dump cache in
      match
        List.find_opt (fun s -> String.equal (Tls.Session.id s) target_id) sessions
      with
      | None -> Error "victim session no longer in the cache"
      | Some session ->
          decrypt_with_master recording ~master:(Tls.Session.master_secret session))

(* --- Negative control: forward secrecy done right ------------------------------- *)

(* Against a server with no tickets, no cache and fresh ephemerals, the
   same attacker gets nothing: nothing on the server opens the recording. *)
let attempt_all recording ~server ~env ~now =
  [
    ("stolen STEK", steal_stek_and_decrypt recording ~server ~now);
    ("stolen DH value", steal_kex_value_and_decrypt recording ~server ~env);
    ("stolen session cache", steal_session_cache_and_decrypt recording ~server);
  ]
