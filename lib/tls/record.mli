(** The TLS record layer: framing plus symmetric protection
    (encrypt-then-MAC: AES-128-CTR with a per-record nonce, then
    HMAC-SHA256 over sequence number, header and ciphertext). The key
    block derives from the master secret per RFC 5246 section 6.3 — which
    is what makes the paper's attacks concrete: a recovered master secret
    re-derives these keys and decrypts recorded records. *)

type t

val header_len : int
val max_payload : int

val make : content_type:Types.content_type -> ?version:Types.version -> string -> t
val content_type : t -> Types.content_type
val payload : t -> string
val to_bytes : t -> string
val of_bytes : string -> (t, string) result
val read_all : string -> (t list, string) result

val encoded_len : t -> int
(** Length of the wire encoding: {!header_len} plus the payload. *)

val to_bytes_into : Bytes.t -> pos:int -> t -> int
(** Frame into a caller-owned buffer at [pos], returning the number of
    bytes written ({!encoded_len}); lets senders reuse one buffer across
    records. Raises [Invalid_argument] if the record does not fit. *)

val of_bytes_sub : Bytes.t -> pos:int -> len:int -> (t, string) result
(** Decode one record from [len] bytes of a reused receive buffer at
    [pos]. The framing is parsed zero-copy; the returned payload is a
    copy and survives the buffer's next refill. *)

(** {2 Connection protection} *)

val mac_len : int
val key_block_len : int

type direction_keys
type keys = { client_write : direction_keys; server_write : direction_keys }

val derive_keys : master:string -> client_random:string -> server_random:string -> keys

type cipher_state
(** Keys plus a sequence number for one direction. *)

val cipher_state : direction_keys -> cipher_state

val seal : cipher_state -> t -> t
(** Encrypt-then-MAC; advances the sequence number. *)

val open_ : cipher_state -> t -> (t, Types.alert) result
(** Verify and decrypt; rejects tampering and replay ({!Types.alert}
    [Bad_record_mac]). *)

val seal_application_data : cipher_state -> string -> t list
(** Chunk, protect and frame application bytes. *)

val open_application_data : cipher_state -> t list -> (string, Types.alert) result
