(* A byte-level connection driver: the same handshakes {!Engine} runs,
   carried over the record layer the way TLS frames them — handshake
   messages in Handshake records, a ChangeCipherSpec before each side's
   Finished, and the Finished records themselves encrypted under the
   freshly derived connection keys. A wiretap on this layer sees what a
   network observer sees: plaintext hellos, certificates, key-exchange
   values and NewSessionTickets (RFC 5077 sends the ticket before the
   server's CCS), and ciphertext Finished and application records.

   The bulk scanner uses {!Engine} directly (same messages, no framing
   overhead); this module exists for wire-level fidelity in examples,
   attack demonstrations and robustness tests, and for moving protected
   application data after the handshake. *)

module Msg = Handshake_msg

type established = {
  session : Session.t;
  new_ticket : (int * string) option;
  resumed : [ `No | `Via_session_id | `Via_ticket ];
  client_tx : Record.cipher_state; (* client -> server, held by the client *)
  client_rx : Record.cipher_state;
  server_tx : Record.cipher_state;
  server_rx : Record.cipher_state;
  wire_log : (Engine.direction * Record.t) list; (* oldest first *)
}

let handshake_record msgs =
  Record.make ~content_type:Types.Handshake_ct (String.concat "" (List.map Msg.to_bytes msgs))

let ccs_record () = Record.make ~content_type:Types.Change_cipher_spec "\x01"

(* Split a flight at a trailing Finished: everything before it travels in
   plaintext handshake records, the Finished in an encrypted one after a
   CCS. *)
let split_finished msgs =
  let rec go acc = function
    | [ Msg.Finished _ ] as fin -> (List.rev acc, fin)
    | m :: rest -> go (m :: acc) rest
    | [] -> (List.rev acc, [])
  in
  go [] msgs

(* A Finished with no keys to seal it under is a broken handshake state,
   not a programming error to crash on: an injected mid-handshake fault
   can legitimately strand a flight there, and a 63-day sweep must see a
   classified failure, not an exception. *)
let encode_flight ?tx msgs =
  let plain, fin = split_finished msgs in
  let records = if plain = [] then [] else [ handshake_record plain ] in
  match (fin, tx) with
  | [], _ -> Ok records
  | fin, Some tx -> Ok (records @ [ ccs_record (); Record.seal tx (handshake_record fin) ])
  | _ :: _, None -> Error "connection: Finished flight without derived keys"

(* Decode a received flight: plaintext handshake records plus, after a
   CCS, encrypted ones. [rx] may be lazy because the keys only exist once
   the plaintext part has been processed (full handshake, server side);
   forcing it yields [Error] — not an exception — when an encrypted
   record arrives before any keys were derived. *)
let decode_flight ?rx records =
  let buf = Buffer.create 256 in
  let rec go seen_ccs = function
    | [] -> Ok ()
    | r :: rest -> (
        match Record.content_type r with
        | Types.Change_cipher_spec -> go true rest
        | Types.Handshake_ct ->
            if seen_ccs then begin
              match rx with
              | None -> Error "encrypted record without keys"
              | Some rx -> (
                  match Lazy.force rx with
                  | Error e -> Error e
                  | Ok rx -> (
                      match Record.open_ rx r with
                      | Error a -> Error (Format.asprintf "record: %a" Types.pp_alert a)
                      | Ok plain ->
                          Buffer.add_string buf (Record.payload plain);
                          go seen_ccs rest))
            end
            else begin
              Buffer.add_string buf (Record.payload r);
              go seen_ccs rest
            end
        | Types.Alert_ct -> Error "peer sent an alert"
        | Types.Application_data -> Error "application data during handshake")
  in
  match go false records with Error e -> Error e | Ok () -> Msg.read_all (Buffer.contents buf)

let ( let* ) = Result.bind

let randoms_of msgs =
  let cr = ref "" and sr = ref "" in
  List.iter
    (fun m ->
      match m with
      | Msg.Client_hello ch -> cr := ch.Msg.ch_random
      | Msg.Server_hello sh -> sr := sh.Msg.sh_random
      | _ -> ())
    msgs;
  (!cr, !sr)

(* Run a complete wire-level exchange between a client and a server. *)
let establish client server ~now ~hostname ~offer =
  let log = ref [] in
  let transmit direction records =
    List.iter (fun r -> log := (direction, r) :: !log) records;
    records
  in
  let alert a = Format.asprintf "server alert: %a" Types.pp_alert a in
  let send direction ?tx msgs = Result.map (transmit direction) (encode_flight ?tx msgs) in
  (* Flight 1: ClientHello. *)
  let ch_msg, state = Client.hello client ~now ~hostname ~offer in
  let* flight1 = send Engine.Client_to_server [ ch_msg ] in
  let* msgs1 = decode_flight flight1 in
  let* ch_msg =
    match msgs1 with [ (Msg.Client_hello _ as m) ] -> Ok m | _ -> Error "bad first flight"
  in
  let client_random = match ch_msg with Msg.Client_hello ch -> ch.Msg.ch_random | _ -> "" in
  let* server_result =
    Result.map_error alert (Server.handle_client_hello server ~now ch_msg)
  in
  let finish ~master ~server_random k =
    let keys = Record.derive_keys ~master ~client_random ~server_random in
    k keys
  in
  match server_result with
  | Server.Resuming (flight, resuming, how) ->
      (* Abbreviated: the server's Finished is encrypted. *)
      let session = Server.resuming_session resuming in
      let _, server_random = randoms_of flight in
      finish ~master:(Session.master_secret session) ~server_random @@ fun keys ->
      let server_tx = Record.cipher_state keys.Record.server_write in
      let client_rx = Record.cipher_state keys.Record.server_write in
      let* flight2 = send Engine.Server_to_client ~tx:server_tx flight in
      let* msgs2 = decode_flight ~rx:(lazy (Ok client_rx)) flight2 in
      let* result = Client.handle_server_flight state msgs2 in
      (match result with
      | Client.Abbreviated { client_finished; session; new_ticket; session_id = _ } ->
          let client_tx = Record.cipher_state keys.Record.client_write in
          let server_rx = Record.cipher_state keys.Record.client_write in
          let* flight3 = send Engine.Client_to_server ~tx:client_tx [ client_finished ] in
          let* msgs3 = decode_flight ~rx:(lazy (Ok server_rx)) flight3 in
          let* fin = match msgs3 with [ m ] -> Ok m | _ -> Error "bad finished flight" in
          let* _ = Result.map_error alert (Server.handle_client_finished resuming fin) in
          Ok
            {
              session;
              new_ticket;
              resumed = (how :> [ `No | `Via_session_id | `Via_ticket ]);
              client_tx;
              client_rx;
              server_tx;
              server_rx;
              wire_log = List.rev !log;
            }
      | Client.Continue_full _ -> Error "client saw a full flight during resumption")
  | Server.Negotiating (flight, pending) ->
      (* Full handshake: server's first flight is all plaintext. *)
      let _, server_random = randoms_of flight in
      let* flight2 = send Engine.Server_to_client flight in
      let* msgs2 = decode_flight flight2 in
      let* result = Client.handle_server_flight state msgs2 in
      (match result with
      | Client.Abbreviated _ -> Error "client resumed during a full handshake"
      | Client.Continue_full { to_send; continuation; _ } ->
          let master = Client.continuation_master continuation in
          finish ~master ~server_random @@ fun keys ->
          let client_tx = Record.cipher_state keys.Record.client_write in
          let* flight3 = send Engine.Client_to_server ~tx:client_tx to_send in
          (* The server must learn the master from the plaintext CKE
             before it can open the encrypted Finished record. *)
          let server_keys = ref None in
          let rx =
            lazy
              (match !server_keys with
              | Some ks -> Ok ks
              | None -> Error "connection: encrypted record before key derivation")
          in
          let* msgs3 =
            (* Peek the CKE from the plaintext part to derive keys. *)
            let* plain_msgs =
              match flight3 with
              | plain :: _ when Record.content_type plain = Types.Handshake_ct ->
                  Msg.read_all (Record.payload plain)
              | _ -> Error "missing plaintext CKE record"
            in
            let* cke_public =
              match plain_msgs with
              | [ Msg.Client_key_exchange p ] -> Ok p
              | _ -> Error "expected exactly a ClientKeyExchange"
            in
            let* server_master =
              Result.map_error alert (Server.master_of_cke pending ~cke_public)
            in
            let ks =
              Record.derive_keys ~master:server_master ~client_random ~server_random
            in
            server_keys := Some (Record.cipher_state ks.Record.client_write);
            decode_flight ~rx flight3
          in
          let* closing, _server_session =
            Result.map_error alert (Server.handle_client_flight pending ~now msgs3)
          in
          let server_tx = Record.cipher_state keys.Record.server_write in
          let client_rx = Record.cipher_state keys.Record.server_write in
          let* flight4 = send Engine.Server_to_client ~tx:server_tx closing in
          let* msgs4 = decode_flight ~rx:(lazy (Ok client_rx)) flight4 in
          let* session, new_ticket = Client.finish_full continuation ~now msgs4 in
          let* server_rx = Lazy.force rx in
          Ok
            {
              session;
              new_ticket;
              resumed = `No;
              client_tx;
              client_rx;
              server_tx;
              server_rx;
              wire_log = List.rev !log;
            })

(* --- Post-handshake application data ------------------------------------------ *)

let send t ~from data =
  let tx = match from with `Client -> t.client_tx | `Server -> t.server_tx in
  Record.seal_application_data tx data

let recv t ~at records =
  let rx = match at with `Client -> t.client_rx | `Server -> t.server_rx in
  Record.open_application_data rx records
  |> Result.map_error (fun a -> Format.asprintf "%a" Types.pp_alert a)
