(* Ephemeral key-exchange value caching — the "(EC)DHE reuse" shortcut of
   Section 4.4. RFC 5246 says to generate a fresh exponent per handshake;
   OpenSSL before CVE-2016-0701 and Microsoft SChannel instead reused the
   server value (SSL_OP_SINGLE_DH_USE off), amortizing the modexp. While
   the cached private value exists, every handshake that used it can be
   retroactively decrypted.

   Like the session cache and the STEK manager, one instance may be shared
   across servers and domains (Section 5.3's Diffie-Hellman service
   groups). *)

type policy =
  | Fresh_always (* RFC-compliant: new value per handshake *)
  | Reuse_for of int (* keep the value for N seconds *)
  | Reuse_forever (* keep it for the life of the process *)

(* DHE and ECDHE reuse are configured independently: production stacks
   cached them separately (OpenSSL's SSL_OP_SINGLE_DH_USE vs
   SSL_OP_SINGLE_ECDH_USE) and the paper measures them separately. *)
type t = {
  dhe_policy : policy;
  ecdhe_policy : policy; (* also governs X25519 shares *)
  mutable dhe : (Crypto.Dh.keypair * int) option; (* keypair, created_at *)
  mutable ecdhe : (Crypto.Ec.keypair * int) option;
  mutable x25519 : (Crypto.X25519.keypair * int) option;
}

let create ?(dhe = Fresh_always) ?(ecdhe = Fresh_always) () =
  { dhe_policy = dhe; ecdhe_policy = ecdhe; dhe = None; ecdhe = None; x25519 = None }

let uniform ~policy = create ~dhe:policy ~ecdhe:policy ()

let dhe_policy t = t.dhe_policy
let ecdhe_policy t = t.ecdhe_policy

(* Simulated process restart: cached values die with the process. *)
let restart t =
  t.dhe <- None;
  t.ecdhe <- None;
  t.x25519 <- None

let stale policy ~now created_at =
  match policy with
  | Fresh_always -> true
  | Reuse_for ttl -> now - created_at >= ttl
  | Reuse_forever -> false

let dhe_keypair t ~now ~group rng =
  match t.dhe with
  | Some (kp, created_at) when not (stale t.dhe_policy ~now created_at) -> kp
  | Some _ | None ->
      let kp = Crypto.Dh.gen_keypair group rng in
      if t.dhe_policy <> Fresh_always then t.dhe <- Some (kp, now);
      kp

let ecdhe_keypair t ~now ~curve rng =
  match t.ecdhe with
  | Some (kp, created_at) when not (stale t.ecdhe_policy ~now created_at) -> kp
  | Some _ | None ->
      let kp = Crypto.Ec.gen_keypair curve rng in
      if t.ecdhe_policy <> Fresh_always then t.ecdhe <- Some (kp, now);
      kp

(* Compromise accessors: what an attacker who dumps the server process's
   memory obtains — the currently cached ephemeral private values. Used by
   the Attack demonstrations and the examples. *)
let current_dhe t = Option.map fst t.dhe
let current_ecdhe t = Option.map fst t.ecdhe
let current_x25519 t = Option.map fst t.x25519

let x25519_keypair t ~now rng =
  match t.x25519 with
  | Some (kp, created_at) when not (stale t.ecdhe_policy ~now created_at) -> kp
  | Some _ | None ->
      let kp = Crypto.X25519.gen_keypair rng in
      if t.ecdhe_policy <> Fresh_always then t.x25519 <- Some (kp, now);
      kp

(* Upper bound on how long one cached value lives (None = unbounded),
   feeding the Section 6.3 exposure analysis. *)
let policy_exposure_seconds = function
  | Fresh_always -> Some 0
  | Reuse_for ttl -> Some ttl
  | Reuse_forever -> None

let dhe_exposure_seconds t = policy_exposure_seconds t.dhe_policy
let ecdhe_exposure_seconds t = policy_exposure_seconds t.ecdhe_policy
