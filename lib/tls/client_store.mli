(** Client-side resumption state: the bounded session cache and ticket
    store a browser-like client carries between connections.

    Entries are keyed by an opaque {e scope} string chosen by the caller
    — the hostname for strict per-site resumption, or an operator-wide
    key when the client shares resumption state across hostnames (the
    Sy et al. cross-hostname axis). The store enforces the two client
    hygiene rules the traffic simulation measures:

    - {b lifetime}: a ticket is never offered past its advertised
      NewSessionTicket lifetime hint (optionally capped tighter by
      client policy), and a cached session ID is never offered past the
      client's session lifetime. Both are checked against the simulated
      clock at offer time; an entry is usable at exactly
      [stored_at + lifetime] and expired one second later.
    - {b bound}: at most [capacity] scopes are retained; storing into a
      full store evicts the least-recently-used scope. Memory is
      therefore O(capacity) regardless of how many sites a user visits
      over a campaign. *)

type t

val create :
  ?session_lifetime:int -> ?ticket_lifetime_cap:int -> capacity:int -> unit -> t
(** [session_lifetime] (default one day) bounds session-ID reuse — the
    protocol advertises no lifetime for IDs, so this is pure client
    policy. [ticket_lifetime_cap] (default 0 = honor the advertised
    hint) caps ticket reuse below the server's hint; the effective
    ticket lifetime is the minimum of the positive values among hint and
    cap. Raises [Invalid_argument] on non-positive capacity or negative
    lifetimes. *)

val capacity : t -> int

val size : t -> int
(** Live scopes currently held; always [<= capacity t]. *)

val evictions : t -> int
(** Scopes dropped to enforce the capacity bound since creation. *)

val expirations : t -> int
(** Entry components (tickets or cached sessions) dropped because their
    lifetime had passed at offer time. *)

val offer : t -> now:int -> scope:string -> Client.offer
(** The best resumption offer for [scope] at simulated time [now]:
    a live ticket if one is held, else a live cached session with a
    non-empty ID, else [Fresh]. Expired components are purged as a side
    effect, so the store never holds state it would refuse to offer. *)

val note :
  t ->
  now:int ->
  scope:string ->
  session:Session.t option ->
  ticket:(int * string) option ->
  unit
(** Record the outcome of a successful connection under [scope]:
    [session] is the connection's resulting session state (cached for
    session-ID resumption only when its ID is non-empty), [ticket] the
    issued NewSessionTicket as [(lifetime hint, ticket bytes)]. A [None]
    ticket leaves any previously stored (still live) ticket in place —
    RFC 5077 tickets are reusable until they expire. *)

val holds : t -> now:int -> scope:string -> bool
(** Whether {!offer} would return something other than [Fresh] for
    [scope] at [now] — without counting as a use for LRU purposes.
    Expired components are still purged. *)

val drop : t -> scope:string -> unit
(** Forget everything held for [scope]. *)
