(** STEK lifecycle management — the paper's key variable (Section 4.3):
    the rotation policy determines how long one stolen 64-byte secret
    decrypts recorded traffic. A manager is shared wherever a STEK is
    shared (one domain's fleet, or every domain behind a terminator —
    Section 5.2). *)

type policy =
  | Static  (** pregenerated key file, never rotated (Fastly, Yandex, ...) *)
  | Per_process
      (** random STEK at process start, dead at restart (Apache/Nginx
          without a key file): the restart cadence is the rotation *)
  | Rotate_every of { period : int; accept_window : int }
      (** real rotation infrastructure (Twitter, CloudFlare daily, Google
          every 14h); old keys still decrypt for [accept_window] *)
  | Scheduled of int list
      (** administrator-driven rotation at the given epoch seconds
          (ascending), e.g. the Jack Henry cluster's single rotation after
          59 days *)

type t

val create : policy:policy -> secret:string -> now:int -> t
val policy : t -> policy

val id : t -> string
(** Stable identity of the shared key material (the derivation root):
    managers with equal ids issue and accept the same STEKs. Used by the
    campaign sharder to keep co-keyed domains on one worker. *)

val restart : t -> now:int -> unit
(** Simulated process restart: a [Per_process] manager forgets its key;
    the other policies survive. *)

val issuing : t -> now:int -> Stek.t
(** The STEK currently used to seal new tickets. *)

val find_for_decrypt : t -> now:int -> string -> Stek.t option
(** Resolve a ticket's key name; under rotation, keys within the accept
    window remain valid after they stop issuing. *)

val current_period : t -> now:int -> int

val key_exposure_seconds : t -> int option
(** Upper bound on one key's lifetime ([None] = unbounded: static,
    per-process, or calendar-driven). *)
