(** The server-side session cache backing session-ID resumption
    (Section 4.1 of the paper). One instance may be shared by many
    servers and domains — the Section 5.1 state sharing. Entries expire
    [lifetime] seconds after storage; capacity is enforced FIFO. *)

type t

val create : lifetime:int -> capacity:int -> t
(** [lifetime = 0] disables caching (state dropped immediately). Raises
    [Invalid_argument] on negative lifetime or non-positive capacity. *)

val lifetime : t -> int
val size : t -> int

val queue_length : t -> int
(** Diagnostic: current length of the FIFO eviction queue, including
    not-yet-purged ghosts of removed entries. Bounded by twice the
    capacity regardless of campaign length. *)

val store : t -> now:int -> Session.t -> unit
(** Raises [Invalid_argument] on an empty session ID. *)

val lookup : t -> now:int -> string -> Session.t option
(** Expired entries are dropped lazily on access. *)

val remove : t -> string -> unit
val flush : t -> unit

val latest_expiry : t -> int
(** When the last currently cached secret dies (0 if empty). *)

val dump : t -> Session.t list
(** Compromise accessor: what an attacker reading the cache memory
    obtains. Used by the {!Tlsharm.Attack} demonstrations. *)
