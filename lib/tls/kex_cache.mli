(** Ephemeral key-exchange value caching — the "(EC)DHE reuse" shortcut
    of Section 4.4. RFC 5246 says fresh exponents per handshake; OpenSSL
    before CVE-2016-0701 and SChannel reused the server value. While the
    cached private value exists, every handshake that used it can be
    retroactively decrypted. One instance may be shared across domains
    (Section 5.3's Diffie-Hellman service groups). *)

type policy =
  | Fresh_always  (** RFC-compliant: new value per handshake *)
  | Reuse_for of int  (** keep the value for N seconds *)
  | Reuse_forever  (** keep it for the life of the process *)

type t

val create : ?dhe:policy -> ?ecdhe:policy -> unit -> t
(** DHE and ECDHE reuse are independent, as in production stacks
    (SSL_OP_SINGLE_DH_USE vs SSL_OP_SINGLE_ECDH_USE). Both default to
    {!Fresh_always}. *)

val uniform : policy:policy -> t
val dhe_policy : t -> policy
val ecdhe_policy : t -> policy

val restart : t -> unit
(** Simulated process restart: cached values die. *)

val dhe_keypair : t -> now:int -> group:Crypto.Dh.group -> Crypto.Drbg.t -> Crypto.Dh.keypair
val ecdhe_keypair : t -> now:int -> curve:Crypto.Ec.curve -> Crypto.Drbg.t -> Crypto.Ec.keypair

val x25519_keypair : t -> now:int -> Crypto.Drbg.t -> Crypto.X25519.keypair
(** X25519 shares follow the ECDHE reuse policy. *)

val current_dhe : t -> Crypto.Dh.keypair option
(** Compromise accessor: the cached private value an attacker dumping
    process memory obtains. Used by the {!Tlsharm.Attack} demos. *)

val current_ecdhe : t -> Crypto.Ec.keypair option

val current_x25519 : t -> Crypto.X25519.keypair option
(** Cached X25519 share (reused under the ECDHE policy) — without this
    the attack demos could not see an X25519 compromise at all. *)

val dhe_exposure_seconds : t -> int option
(** Upper bound on one cached value's lifetime; [None] = unbounded. *)

val ecdhe_exposure_seconds : t -> int option
