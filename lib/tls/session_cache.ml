(* The server-side session cache backing session-ID resumption.

   One cache instance may be shared by many servers and many domains
   (an SSL terminator); that sharing is what Section 5.1 of the paper
   measures. Entries expire after [lifetime] seconds — RFC 5246 suggests
   at most 24 hours, Apache defaults to 5 minutes, Nginx to 5 minutes
   when enabled, IIS to 10 hours — and the cache enforces a capacity
   bound with FIFO eviction like the fixed-size caches in production
   servers.

   The FIFO queue can hold "ghosts": ids whose entry was removed from the
   table by lazy expiry or [remove] (deleting from the middle of a queue
   is not O(1)). Ghost heads are purged during eviction, and a ghost
   counter triggers a full compaction before ghosts outnumber the
   capacity, so the queue length stays <= 2 x capacity over arbitrarily
   long campaigns instead of growing with every store ever made. *)

type entry = { session : Session.t; expires_at : int }

type t = {
  lifetime : int; (* seconds an entry is honored *)
  capacity : int;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t; (* FIFO eviction order; may contain ghosts *)
  mutable ghosts : int; (* queue ids no longer present in the table *)
}

let create ~lifetime ~capacity =
  if lifetime < 0 then invalid_arg "Session_cache.create: negative lifetime";
  if capacity <= 0 then invalid_arg "Session_cache.create: capacity must be positive";
  { lifetime; capacity; table = Hashtbl.create 64; order = Queue.create (); ghosts = 0 }

let lifetime t = t.lifetime
let size t = Hashtbl.length t.table
let queue_length t = Queue.length t.order

(* Rebuild the queue without ghosts, preserving FIFO order. Amortized
   O(1): it runs only after [capacity] removals have accumulated. *)
let compact t =
  let live = Queue.create () in
  Queue.iter (fun id -> if Hashtbl.mem t.table id then Queue.push id live) t.order;
  Queue.clear t.order;
  Queue.transfer live t.order;
  t.ghosts <- 0

let note_ghost t =
  t.ghosts <- t.ghosts + 1;
  if t.ghosts > t.capacity then compact t

(* Drop ghost heads so eviction only ever removes live entries. *)
let rec purge_stale_head t =
  match Queue.peek_opt t.order with
  | Some id when not (Hashtbl.mem t.table id) ->
      ignore (Queue.pop t.order);
      t.ghosts <- max 0 (t.ghosts - 1);
      purge_stale_head t
  | _ -> ()

let evict_if_full t =
  purge_stale_head t;
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let victim = Queue.pop t.order in
    Hashtbl.remove t.table victim;
    purge_stale_head t
  done

let store t ~now session =
  let id = Session.id session in
  if String.length id = 0 then invalid_arg "Session_cache.store: empty session ID";
  if t.lifetime = 0 then () (* caching disabled: state is dropped immediately *)
  else begin
    if not (Hashtbl.mem t.table id) then begin
      evict_if_full t;
      Queue.push id t.order
    end;
    Hashtbl.replace t.table id { session; expires_at = now + t.lifetime }
  end

let lookup t ~now id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some entry ->
      if now <= entry.expires_at then Some entry.session
      else begin
        (* Lazy expiry: the implementations the paper inspects also drop
           entries on access rather than with a timer. *)
        Hashtbl.remove t.table id;
        note_ghost t;
        None
      end

let remove t id =
  if Hashtbl.mem t.table id then begin
    Hashtbl.remove t.table id;
    note_ghost t
  end

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.ghosts <- 0

(* The earliest moment at which no currently cached secret remains alive:
   used by the analysis to reason about vulnerability windows. *)
let latest_expiry t = Hashtbl.fold (fun _ e acc -> max acc e.expires_at) t.table 0

(* Compromise accessor: everything an attacker who reads the cache memory
   obtains. Used by the Attack demonstrations. *)
let dump t = Hashtbl.fold (fun _ e acc -> e.session :: acc) t.table []
