(* Resumable TLS session state: what a server caches against a session ID
   and what a session ticket carries under the STEK. Holding this state
   beyond the connection is precisely the forward-secrecy erosion the
   paper measures, so the record also tracks when the state came into
   existence. *)

type t = {
  id : string; (* session ID; may be "" for ticket-only sessions *)
  master_secret : string;
  cipher_suite : Types.cipher_suite;
  established_at : int; (* epoch seconds of the original full handshake *)
}

let make ~id ~master_secret ~cipher_suite ~established_at =
  if String.length master_secret <> Crypto.Prf.master_secret_len then
    invalid_arg "Session.make: master secret must be 48 bytes";
  if String.length id > Types.session_id_max then invalid_arg "Session.make: session ID too long";
  { id; master_secret; cipher_suite; established_at }

let id t = t.id
let master_secret t = t.master_secret
let cipher_suite t = t.cipher_suite
let established_at t = t.established_at

let with_id t ~id = { t with id }

(* Wire form, used inside session tickets. *)
let write w t =
  Wire.Writer.vec8 w t.id;
  Wire.Writer.vec8 w t.master_secret;
  Wire.Writer.u16 w (Types.suite_to_int t.cipher_suite);
  Wire.Writer.u64 w t.established_at

let to_bytes t = Wire.Writer.build (fun w -> write w t)

(* Decoded state must satisfy the same invariants [make] enforces —
   ticket blobs are peer-influenced bytes, so violations are parse
   errors, not assertion failures. *)
let read r =
  let id = Wire.Reader.vec8 r in
  if String.length id > Types.session_id_max then
    raise (Wire.Reader.Error "session: session ID too long");
  let master_secret = Wire.Reader.vec8 r in
  if String.length master_secret <> Crypto.Prf.master_secret_len then
    raise (Wire.Reader.Error "session: master secret must be 48 bytes");
  let suite_code = Wire.Reader.u16 r in
  let established_at = Wire.Reader.u64 r in
  match Types.suite_of_int suite_code with
  | None -> raise (Wire.Reader.Error "session: unknown cipher suite")
  | Some cipher_suite -> { id; master_secret; cipher_suite; established_at }

let of_bytes s = Wire.Reader.parse_result s read

let equal a b =
  String.equal a.id b.id
  && String.equal a.master_secret b.master_secret
  && a.cipher_suite = b.cipher_suite
  && a.established_at = b.established_at
