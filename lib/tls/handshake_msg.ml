(* TLS handshake messages (RFC 5246 section 7.4 subset) and their wire
   codec: one-byte message type, three-byte length, then the body. The
   serialized messages are what the transcript hash (and thus the Finished
   verification) covers, so both engines treat these bytes as canonical. *)

type client_hello = {
  ch_version : Types.version;
  ch_random : string; (* 32 bytes *)
  ch_session_id : string; (* 0..32 bytes; non-empty offers ID resumption *)
  ch_cipher_suites : int list; (* raw code points, preserving unknown offers *)
  ch_extensions : Extension.t list;
}

type server_hello = {
  sh_version : Types.version;
  sh_random : string;
  sh_session_id : string;
  sh_cipher_suite : Types.cipher_suite;
  sh_extensions : Extension.t list;
}

(* ServerKeyExchange parameters. DHE carries the group explicitly like real
   TLS; ECDHE names the curve. *)
type ske_params =
  | Ske_dhe of { dh_p : string; dh_g : string; dh_ys : string }
  | Ske_ecdhe of { curve_id : int; point : string }

type server_key_exchange = { ske_params : ske_params; ske_signature : string }

type new_session_ticket = { nst_lifetime_hint : int; (* seconds *) nst_ticket : string }

type t =
  | Client_hello of client_hello
  | Server_hello of server_hello
  | Certificate of string list (* encoded certificates, leaf first *)
  | Server_key_exchange of server_key_exchange
  | Server_hello_done
  | Client_key_exchange of string (* client public value, kex-specific *)
  | New_session_ticket of new_session_ticket
  | Finished of string (* 12-byte verify_data *)

let type_code = function
  | Client_hello _ -> 1
  | Server_hello _ -> 2
  | New_session_ticket _ -> 4
  | Certificate _ -> 11
  | Server_key_exchange _ -> 12
  | Server_hello_done -> 14
  | Client_key_exchange _ -> 16
  | Finished _ -> 20

let message_name = function
  | Client_hello _ -> "ClientHello"
  | Server_hello _ -> "ServerHello"
  | New_session_ticket _ -> "NewSessionTicket"
  | Certificate _ -> "Certificate"
  | Server_key_exchange _ -> "ServerKeyExchange"
  | Server_hello_done -> "ServerHelloDone"
  | Client_key_exchange _ -> "ClientKeyExchange"
  | Finished _ -> "Finished"

(* --- Body encoders --------------------------------------------------------- *)

let write_body w = function
  | Client_hello ch ->
      Wire.Writer.u16 w (Types.version_to_int ch.ch_version);
      Wire.Writer.bytes w ch.ch_random;
      Wire.Writer.vec8 w ch.ch_session_id;
      Wire.Writer.vec16 w
        (Wire.Writer.build (fun w' -> List.iter (Wire.Writer.u16 w') ch.ch_cipher_suites));
      (* Legacy compression methods: null only. *)
      Wire.Writer.vec8 w "\x00";
      Extension.write_block w ch.ch_extensions
  | Server_hello sh ->
      Wire.Writer.u16 w (Types.version_to_int sh.sh_version);
      Wire.Writer.bytes w sh.sh_random;
      Wire.Writer.vec8 w sh.sh_session_id;
      Wire.Writer.u16 w (Types.suite_to_int sh.sh_cipher_suite);
      Wire.Writer.u8 w 0 (* null compression *);
      Extension.write_block w sh.sh_extensions
  | Certificate chain ->
      let body = Wire.Writer.build (fun w' -> List.iter (Wire.Writer.vec24 w') chain) in
      Wire.Writer.vec24 w body
  | Server_key_exchange { ske_params; ske_signature } ->
      (match ske_params with
      | Ske_dhe { dh_p; dh_g; dh_ys } ->
          Wire.Writer.u8 w 1;
          Wire.Writer.vec16 w dh_p;
          Wire.Writer.vec16 w dh_g;
          Wire.Writer.vec16 w dh_ys
      | Ske_ecdhe { curve_id; point } ->
          Wire.Writer.u8 w 2;
          Wire.Writer.u16 w curve_id;
          Wire.Writer.vec16 w point);
      Wire.Writer.vec16 w ske_signature
  | Server_hello_done -> ()
  | Client_key_exchange public -> Wire.Writer.vec16 w public
  | New_session_ticket { nst_lifetime_hint; nst_ticket } ->
      Wire.Writer.u32 w nst_lifetime_hint;
      Wire.Writer.vec16 w nst_ticket
  | Finished verify_data -> Wire.Writer.bytes w verify_data

let to_bytes msg =
  Wire.Writer.build (fun w ->
      Wire.Writer.u8 w (type_code msg);
      Wire.Writer.vec24 w (Wire.Writer.build (fun w' -> write_body w' msg)))

(* --- Body decoders --------------------------------------------------------- *)

let read_version r =
  match Types.version_of_int (Wire.Reader.u16 r) with
  | Some v -> v
  | None -> raise (Wire.Reader.Error "unsupported protocol version")

let read_client_hello r =
  let ch_version = read_version r in
  let ch_random = Wire.Reader.take r Types.random_len in
  let ch_session_id = Wire.Reader.vec8 r in
  if String.length ch_session_id > Types.session_id_max then
    raise (Wire.Reader.Error "session ID too long");
  let suites = Wire.Reader.sub r (Wire.Reader.u16 r) in
  let rec go acc =
    if Wire.Reader.is_empty suites then List.rev acc else go (Wire.Reader.u16 suites :: acc)
  in
  let ch_cipher_suites = go [] in
  let _compression = Wire.Reader.vec8 r in
  let ch_extensions = Extension.read_block r in
  Client_hello { ch_version; ch_random; ch_session_id; ch_cipher_suites; ch_extensions }

let read_server_hello r =
  let sh_version = read_version r in
  let sh_random = Wire.Reader.take r Types.random_len in
  let sh_session_id = Wire.Reader.vec8 r in
  if String.length sh_session_id > Types.session_id_max then
    raise (Wire.Reader.Error "session ID too long");
  let suite_code = Wire.Reader.u16 r in
  let sh_cipher_suite =
    match Types.suite_of_int suite_code with
    | Some s -> s
    | None -> raise (Wire.Reader.Error "unknown cipher suite in ServerHello")
  in
  let _compression = Wire.Reader.u8 r in
  let sh_extensions = Extension.read_block r in
  Server_hello { sh_version; sh_random; sh_session_id; sh_cipher_suite; sh_extensions }

let read_certificate r =
  let body = Wire.Reader.sub r (Wire.Reader.u24 r) in
  let rec go acc =
    if Wire.Reader.is_empty body then List.rev acc else go (Wire.Reader.vec24 body :: acc)
  in
  Certificate (go [])

let read_server_key_exchange r =
  let ske_params =
    match Wire.Reader.u8 r with
    | 1 ->
        let dh_p = Wire.Reader.vec16 r in
        let dh_g = Wire.Reader.vec16 r in
        let dh_ys = Wire.Reader.vec16 r in
        Ske_dhe { dh_p; dh_g; dh_ys }
    | 2 ->
        let curve_id = Wire.Reader.u16 r in
        let point = Wire.Reader.vec16 r in
        Ske_ecdhe { curve_id; point }
    | _ -> raise (Wire.Reader.Error "unknown ServerKeyExchange kind")
  in
  let ske_signature = Wire.Reader.vec16 r in
  Server_key_exchange { ske_params; ske_signature }

let read_new_session_ticket r =
  let nst_lifetime_hint = Wire.Reader.u32 r in
  let nst_ticket = Wire.Reader.vec16 r in
  New_session_ticket { nst_lifetime_hint; nst_ticket }

let read r =
  let code = Wire.Reader.u8 r in
  let body = Wire.Reader.sub r (Wire.Reader.u24 r) in
  let msg =
    match code with
    | 1 -> read_client_hello body
    | 2 -> read_server_hello body
    | 4 -> read_new_session_ticket body
    | 11 -> read_certificate body
    | 12 -> read_server_key_exchange body
    | 14 -> Server_hello_done
    | 16 -> Client_key_exchange (Wire.Reader.vec16 body)
    | 20 -> Finished (Wire.Reader.take body Types.verify_data_len)
    | n -> raise (Wire.Reader.Error (Printf.sprintf "unknown handshake type %d" n))
  in
  Wire.Reader.expect_end body;
  msg

let of_bytes s = Wire.Reader.parse_result s read

(* Parse a concatenated sequence of handshake messages (one flight). *)
let read_all s =
  Wire.Reader.parse_result s (fun r ->
      let rec go acc = if Wire.Reader.is_empty r then List.rev acc else go (read r :: acc) in
      go [])
