(* The client half of the handshake engine — in this project usually the
   *scanner*, so beyond completing handshakes it exposes everything the
   measurements need: the session ID the server assigned, the ticket and
   its STEK key name, the server's key-exchange public value, and the
   certificate chain with its trust evaluation. *)

module Msg = Handshake_msg

type t = { config : Config.client_config; rng : Crypto.Drbg.t; prefer_x25519 : bool }

let x25519_group_id = 29

let create ?(prefer_x25519 = false) ~config ~rng () = { config; rng; prefer_x25519 }
let rng t = t.rng

(* What the client offers for resumption. Ticket offers carry the cached
   session state (master secret) the client kept alongside the opaque
   ticket, as RFC 5077 requires. *)
type offer =
  | Fresh
  | Offer_session_id of Session.t
  | Offer_ticket of { ticket : string; session : Session.t }

type state = {
  s_client : t;
  s_transcript : Buffer.t;
  s_hostname : string;
  s_random : string;
  s_offer : offer;
  s_now : int;
}

let add transcript msg = Buffer.add_string transcript (Msg.to_bytes msg)
let transcript_hash transcript = Crypto.Sha256.digest (Buffer.contents transcript)

let hello t ~now ~hostname ~offer =
  let random = Crypto.Drbg.generate t.rng Types.random_len in
  let session_id = match offer with Offer_session_id s -> Session.id s | _ -> "" in
  let ticket_ext =
    if not t.config.Config.offer_ticket then []
    else
      match offer with
      | Offer_ticket { ticket; _ } -> [ Extension.Session_ticket ticket ]
      | Fresh | Offer_session_id _ -> [ Extension.Session_ticket "" ]
  in
  let groups =
    let env_id = t.config.Config.cl_env.Config.ecdhe_curve_id in
    if t.prefer_x25519 then [ x25519_group_id; env_id ] else [ env_id; x25519_group_id ]
  in
  let ch =
    Msg.Client_hello
      {
        ch_version = Types.TLS_1_2;
        ch_random = random;
        ch_session_id = session_id;
        ch_cipher_suites = List.map Types.suite_to_int t.config.Config.offer_suites;
        ch_extensions =
          Extension.Server_name hostname :: Extension.Supported_groups groups :: ticket_ext;
      }
  in
  let transcript = Buffer.create 1024 in
  add transcript ch;
  ( ch,
    {
      s_client = t;
      s_transcript = transcript;
      s_hostname = hostname;
      s_random = random;
      s_offer = offer;
      s_now = now;
    } )

(* --- Server flight processing ------------------------------------------------ *)

type full_continuation = {
  f_state : state;
  f_master : string;
  f_suite : Types.cipher_suite;
  f_session_id : string;
}

(* Accessor for wire-level drivers ({!Connection}): the master secret a
   full handshake will establish, needed to encrypt the Finished record
   mid-handshake. *)
let continuation_master cont = cont.f_master

(* The result of processing the server's first flight. For an abbreviated
   handshake the connection is essentially done (the caller forwards our
   Finished); for a full handshake the caller must forward
   [CKE; Finished] and then hand us the server's closing flight. *)
type flight_result =
  | Abbreviated of {
      client_finished : Msg.t;
      session : Session.t;
      new_ticket : (int * string) option; (* lifetime hint, ticket *)
      session_id : string;
    }
  | Continue_full of {
      to_send : Msg.t list;
      continuation : full_continuation;
      cert_chain : Cert.t list;
      trust : (Cert.t, Cert.validation_error) result;
      server_kex_public : string option;
      session_id : string;
    }

let verify_ske_signature t ~leaf ~client_random ~server_random (ske : Msg.server_key_exchange) =
  let env = t.config.Config.cl_env in
  let params_bytes = Server.ske_params_bytes ske.Msg.ske_params in
  let msg = client_random ^ server_random ^ params_bytes in
  match Crypto.Ec.point_of_bytes env.Config.pki_curve (Cert.public_key leaf) with
  | Error _ -> false
  | Ok pub -> (
      match Crypto.Ecdsa.signature_of_bytes env.Config.pki_curve ske.Msg.ske_signature with
      | Error _ -> false
      | Ok sg -> Crypto.Ecdsa.verify ~curve:env.Config.pki_curve ~pub ~msg sg)

(* Peer-supplied DH moduli are untrusted: an even or tiny p blows up the
   Montgomery setup, and a 65535-byte p turns one pow_mod into a
   shard-stalling time bomb. Real TLS stacks cap accepted moduli (e.g.
   OpenSSL's 10000-bit limit); we accept 16..4096 bits. *)
let max_peer_dh_bits = 4096
let min_peer_dh_bits = 16

(* Build a DH group from ServerKeyExchange parameters, reusing the cached
   environment group when the parameters match (the common case). *)
let group_of_ske_params t ~dh_p ~dh_g =
  let env_group = t.config.Config.cl_env.Config.dh_group in
  let p = Crypto.Bignum.of_bytes_be dh_p and g = Crypto.Bignum.of_bytes_be dh_g in
  if
    Crypto.Bignum.equal p (Crypto.Dh.group_p env_group)
    && Crypto.Bignum.equal g (Crypto.Dh.group_g env_group)
  then Ok env_group
  else begin
    let p_bits = Crypto.Bignum.num_bits p in
    if p_bits < min_peer_dh_bits || p_bits > max_peer_dh_bits then
      Error "dhe: peer modulus size out of bounds"
    else if Crypto.Bignum.is_even p then Error "dhe: peer modulus is even"
    else if
      Crypto.Bignum.compare g Crypto.Bignum.one <= 0 || Crypto.Bignum.compare g p >= 0
    then Error "dhe: peer generator out of range"
    else
      Ok
        (Crypto.Dh.make_group ~name:"peer-supplied" ~p ~g
           ~q_bits:(min (p_bits - 2) 256))
  end

(* Key exchange from the client side; returns the CKE public value, the
   premaster secret, and the server's public value (for reuse tracking). *)
let client_kex state ~leaf ~suite ~ske =
  let t = state.s_client in
  let env = t.config.Config.cl_env in
  match (Types.suite_kex suite, ske) with
  | Types.Dhe, Some Msg.{ ske_params = Ske_dhe { dh_p; dh_g; dh_ys }; _ } -> (
      match group_of_ske_params t ~dh_p ~dh_g with
      | Error e -> Error e
      | Ok group -> (
          let kp = Crypto.Dh.gen_keypair group t.rng in
          match Crypto.Dh.shared_secret kp ~peer_pub:(Crypto.Bignum.of_bytes_be dh_ys) with
          | Error e -> Error e
          | Ok z -> Ok (Crypto.Dh.public_bytes kp, z, Some dh_ys)))
  | Types.Ecdhe, Some Msg.{ ske_params = Ske_ecdhe { curve_id; point }; _ }
    when curve_id = x25519_group_id ->
      if String.length point <> Crypto.X25519.key_len then Error "x25519: bad server share"
      else begin
        let kp = Crypto.X25519.gen_keypair t.rng in
        match Crypto.X25519.shared_secret kp ~peer_pub:point with
        | Error e -> Error e
        | Ok z -> Ok (Crypto.X25519.public_bytes kp, z, Some point)
      end
  | Types.Ecdhe, Some Msg.{ ske_params = Ske_ecdhe { curve_id; point }; _ } ->
      if curve_id <> env.Config.ecdhe_curve_id then Error "ecdhe: unknown named curve"
      else begin
        match Crypto.Ec.point_of_bytes env.Config.ecdhe_curve point with
        | Error e -> Error e
        | Ok peer -> (
            let kp = Crypto.Ec.gen_keypair env.Config.ecdhe_curve t.rng in
            match Crypto.Ec.shared_secret kp ~peer_pub:peer with
            | Error e -> Error e
            | Ok z -> Ok (Crypto.Ec.public_bytes kp, z, Some point))
      end
  | Types.Static_ecdh, None -> (
      match Crypto.Ec.point_of_bytes env.Config.pki_curve (Cert.public_key leaf) with
      | Error e -> Error e
      | Ok peer -> (
          let kp = Crypto.Ec.gen_keypair env.Config.pki_curve t.rng in
          match Crypto.Ec.shared_secret kp ~peer_pub:peer with
          | Error e -> Error e
          | Ok z -> Ok (Crypto.Ec.public_bytes kp, z, None)))
  | _ -> Error "key exchange / flight mismatch"

let decode_certs chain_bytes =
  List.fold_right
    (fun bytes acc ->
      match (acc, Cert.of_bytes bytes) with
      | Error e, _ -> Error e
      | Ok certs, Ok c -> Ok (c :: certs)
      | Ok _, Error e -> Error e)
    chain_bytes (Ok [])

let offered_session state =
  match state.s_offer with
  | Offer_session_id s -> Some s
  | Offer_ticket { session; _ } -> Some session
  | Fresh -> None

(* Split an abbreviated first flight [SH; (NST); Finished]. *)
let handle_abbreviated state sh_msg (sh : Msg.server_hello) rest =
  match offered_session state with
  | None -> Error "server resumed a session we did not offer"
  | Some session -> (
      let nst, fin =
        match rest with
        | [ Msg.New_session_ticket nst; Msg.Finished f ] -> (Some nst, Some f)
        | [ Msg.Finished f ] -> (None, Some f)
        | _ -> (None, None)
      in
      match fin with
      | None -> Error "malformed abbreviated flight"
      | Some server_verify ->
          if sh.Msg.sh_cipher_suite <> Session.cipher_suite session then
            Error "resumption changed cipher suite"
          else begin
            let transcript = state.s_transcript in
            add transcript sh_msg;
            Option.iter (fun n -> add transcript (Msg.New_session_ticket n)) nst;
            let master = Session.master_secret session in
            let expected =
              Crypto.Prf.server_finished ~master ~handshake_hash:(transcript_hash transcript)
            in
            if not (Crypto.Hmac.equal_ct expected server_verify) then
              Error "server Finished verification failed"
            else begin
              add transcript (Msg.Finished server_verify);
              let client_fin =
                Msg.Finished
                  (Crypto.Prf.client_finished ~master ~handshake_hash:(transcript_hash transcript))
              in
              Ok
                (Abbreviated
                   {
                     client_finished = client_fin;
                     session;
                     new_ticket =
                       Option.map (fun n -> (n.Msg.nst_lifetime_hint, n.Msg.nst_ticket)) nst;
                     session_id = sh.Msg.sh_session_id;
                   })
            end
          end)

let handle_full state sh_msg (sh : Msg.server_hello) rest =
  let t = state.s_client in
  let cert_bytes, ske, rest_ok =
    match rest with
    | [ Msg.Certificate chain; Msg.Server_key_exchange ske; Msg.Server_hello_done ] ->
        (chain, Some Msg.{ ske_params = ske.ske_params; ske_signature = ske.ske_signature }, true)
    | [ Msg.Certificate chain; Msg.Server_hello_done ] -> (chain, None, true)
    | _ -> ([], None, false)
  in
  if not rest_ok then Error "malformed full-handshake flight"
  else begin
    match decode_certs cert_bytes with
    | Error e -> Error ("bad certificate encoding: " ^ e)
    | Ok chain -> (
        match chain with
        | [] -> Error "empty certificate chain"
        | leaf :: _ ->
            let env = t.config.Config.cl_env in
            let trust =
              if t.config.Config.evaluate_trust then
                Cert.validate ~curve:env.Config.pki_curve ~store:t.config.Config.root_store
                  ~now:state.s_now ~hostname:state.s_hostname chain
              else Error Cert.Not_evaluated
            in
            if t.config.Config.check_certs && Result.is_error trust then
              Error "untrusted certificate"
            else begin
              let sig_ok =
                (not t.config.Config.verify_ske)
                ||
                match ske with
                | None -> true
                | Some ske ->
                    verify_ske_signature t ~leaf ~client_random:state.s_random
                      ~server_random:sh.Msg.sh_random ske
              in
              if not sig_ok then Error "ServerKeyExchange signature invalid"
              else begin
                match client_kex state ~leaf ~suite:sh.Msg.sh_cipher_suite ~ske with
                | Error e -> Error e
                | Ok (cke_public, pre_master, server_kex_public) ->
                    let transcript = state.s_transcript in
                    add transcript sh_msg;
                    List.iter (add transcript) (List.map (fun m -> m) rest);
                    let cke = Msg.Client_key_exchange cke_public in
                    add transcript cke;
                    let master =
                      Crypto.Prf.master_secret ~pre_master ~client_random:state.s_random
                        ~server_random:sh.Msg.sh_random
                    in
                    let fin =
                      Msg.Finished
                        (Crypto.Prf.client_finished ~master
                           ~handshake_hash:(transcript_hash transcript))
                    in
                    add transcript fin;
                    Ok
                      (Continue_full
                         {
                           to_send = [ cke; fin ];
                           continuation =
                             {
                               f_state = state;
                               f_master = master;
                               f_suite = sh.Msg.sh_cipher_suite;
                               f_session_id = sh.Msg.sh_session_id;
                             };
                           cert_chain = chain;
                           trust;
                           server_kex_public;
                           session_id = sh.Msg.sh_session_id;
                         })
              end
            end)
  end

let handle_server_flight state msgs =
  match msgs with
  | Msg.Server_hello sh :: rest -> (
      let t = state.s_client in
      if sh.Msg.sh_version <> Types.TLS_1_2 then Error "bad server version"
      else if
        not
          (List.mem (Types.suite_to_int sh.Msg.sh_cipher_suite)
             (List.map Types.suite_to_int t.config.Config.offer_suites))
      then Error "server chose a suite we did not offer"
      else begin
        (* Resumption detection: the server echoes our non-empty session ID,
           or jumps straight to Finished (ticket resumption). *)
        let offered_id =
          match state.s_offer with Offer_session_id s -> Session.id s | _ -> ""
        in
        let is_abbreviated =
          (offered_id <> "" && String.equal sh.Msg.sh_session_id offered_id)
          || List.exists (function Msg.Finished _ -> true | _ -> false) rest
        in
        if is_abbreviated then handle_abbreviated state (Msg.Server_hello sh) sh rest
        else handle_full state (Msg.Server_hello sh) sh rest
      end)
  | _ -> Error "flight does not start with ServerHello"

(* Process the server's closing flight of a full handshake:
   [(NewSessionTicket); Finished]. Returns the established session plus
   any ticket. *)
let finish_full (cont : full_continuation) ~now msgs =
  let nst, fin =
    match msgs with
    | [ Msg.New_session_ticket nst; Msg.Finished f ] -> (Some nst, Some f)
    | [ Msg.Finished f ] -> (None, Some f)
    | _ -> (None, None)
  in
  match fin with
  | None -> Error "malformed server closing flight"
  | Some server_verify ->
      let transcript = cont.f_state.s_transcript in
      Option.iter (fun n -> add transcript (Msg.New_session_ticket n)) nst;
      let expected =
        Crypto.Prf.server_finished ~master:cont.f_master
          ~handshake_hash:(transcript_hash transcript)
      in
      if not (Crypto.Hmac.equal_ct expected server_verify) then
        Error "server Finished verification failed"
      else begin
        let session =
          Session.make ~id:cont.f_session_id ~master_secret:cont.f_master
            ~cipher_suite:cont.f_suite ~established_at:now
        in
        Ok (session, Option.map (fun n -> (n.Msg.nst_lifetime_hint, n.Msg.nst_ticket)) nst)
      end
