(* The TLS record layer: framing plus symmetric protection of application
   data.

   Protection is encrypt-then-MAC: AES-128-CTR with a per-record nonce
   derived from the write IV and the sequence number, then HMAC-SHA256
   over the sequence number, record header and ciphertext. The key block
   is derived from the master secret exactly as RFC 5246 section 6.3
   prescribes, which is what makes the paper's attacks concrete here: a
   recovered master secret (from a stolen STEK, a session cache, or a
   reused DH value) re-derives these keys and decrypts recorded records.
   See [Attack.decrypt_recorded_conversation] in the core library. *)


type t = { r_content_type : Types.content_type; r_version : Types.version; r_payload : string }

let header_len = 5
let max_payload = 16384

let make ~content_type ?(version = Types.TLS_1_2) payload =
  if String.length payload > max_payload then invalid_arg "Record.make: payload too large";
  { r_content_type = content_type; r_version = version; r_payload = payload }

let content_type r = r.r_content_type
let payload r = r.r_payload

let encoded_len r = header_len + String.length r.r_payload

let to_bytes_into buf ~pos r =
  let len = String.length r.r_payload in
  if len > 0xffff then invalid_arg "Record.to_bytes_into: payload too long";
  if pos < 0 || pos > Bytes.length buf - header_len - len then
    invalid_arg "Record.to_bytes_into: range out of bounds";
  Wire.Writer.set_u8 buf pos (Types.content_type_to_int r.r_content_type);
  Wire.Writer.set_u16 buf (pos + 1) (Types.version_to_int r.r_version);
  Wire.Writer.set_u16 buf (pos + 3) len;
  Bytes.blit_string r.r_payload 0 buf (pos + header_len) len;
  header_len + len

let to_bytes r =
  let buf = Bytes.create (encoded_len r) in
  ignore (to_bytes_into buf ~pos:0 r);
  Bytes.unsafe_to_string buf

let read r =
  let ct =
    match Types.content_type_of_int (Wire.Reader.u8 r) with
    | Some ct -> ct
    | None -> raise (Wire.Reader.Error "unknown content type")
  in
  let version =
    match Types.version_of_int (Wire.Reader.u16 r) with
    | Some v -> v
    | None -> raise (Wire.Reader.Error "unknown record version")
  in
  let payload = Wire.Reader.vec16 r in
  { r_content_type = ct; r_version = version; r_payload = payload }

let of_bytes s = Wire.Reader.parse_result s read

let read_all s =
  Wire.Reader.parse_result s (fun r ->
      let rec go acc = if Wire.Reader.is_empty r then List.rev acc else go (read r :: acc) in
      go [])

(* Decode straight out of a reused receive buffer; zero-copy on the
   framing side ({!Wire.Reader.of_bytes} aliases [buf]), with the payload
   copied out so the result outlives the buffer's next refill. *)
let of_bytes_sub buf ~pos ~len =
  match
    let r = Wire.Reader.of_bytes ~pos ~len buf in
    let v = read r in
    Wire.Reader.expect_end r;
    v
  with
  | v -> Ok v
  | exception Wire.Reader.Error msg -> Error msg

(* --- Connection protection ---------------------------------------------------- *)

let mac_key_len = 32
let enc_key_len = 16
let iv_len = 8
let mac_len = 32
let key_block_len = 2 * (mac_key_len + enc_key_len + iv_len)

type direction_keys = { mac_key : string; enc_key : Crypto.Aes.t; iv : string }

type keys = { client_write : direction_keys; server_write : direction_keys }

(* RFC 5246 section 6.3 partitioning order: client MAC, server MAC, client
   key, server key, client IV, server IV. *)
let derive_keys ~master ~client_random ~server_random =
  let block = Crypto.Prf.key_block ~master ~client_random ~server_random key_block_len in
  let off = ref 0 in
  let take n =
    let s = String.sub block !off n in
    off := !off + n;
    s
  in
  let client_mac = take mac_key_len in
  let server_mac = take mac_key_len in
  let client_key = take enc_key_len in
  let server_key = take enc_key_len in
  let client_iv = take iv_len in
  let server_iv = take iv_len in
  {
    client_write = { mac_key = client_mac; enc_key = Crypto.Aes.of_key client_key; iv = client_iv };
    server_write = { mac_key = server_mac; enc_key = Crypto.Aes.of_key server_key; iv = server_iv };
  }

type cipher_state = {
  keys : direction_keys;
  mutable seq : int;
  (* Scratch reused across records: the 8-byte CTR nonce and the 13-byte
     MAC prefix (sequence number plus record header), refilled in place
     for every record instead of rebuilt through Writer/concat. *)
  nonce_buf : Bytes.t;
  pre_buf : Bytes.t;
}

let cipher_state keys =
  { keys; seq = 0; nonce_buf = Bytes.create iv_len; pre_buf = Bytes.create (8 + header_len) }

(* Per-record nonce: write IV xor big-endian sequence number. *)
let record_nonce st =
  Wire.Writer.set_u64 st.nonce_buf 0 st.seq;
  let iv = st.keys.iv in
  for i = 0 to iv_len - 1 do
    Bytes.unsafe_set st.nonce_buf i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get st.nonce_buf i) lxor Char.code (String.unsafe_get iv i)))
  done;
  Bytes.to_string st.nonce_buf

(* MAC prefix: sequence number (8) || type (1) || version (2) || length (2),
   byte-identical to the seed's additional_data ^ header construction. *)
let mac_prefix st ~content_type ~version ~length =
  Wire.Writer.set_u64 st.pre_buf 0 st.seq;
  Wire.Writer.set_u8 st.pre_buf 8 (Types.content_type_to_int content_type);
  Wire.Writer.set_u16 st.pre_buf 9 (Types.version_to_int version);
  Wire.Writer.set_u16 st.pre_buf 11 length;
  Bytes.to_string st.pre_buf

(* Encrypt a plaintext record; advances the sequence number. *)
let seal st record =
  let nonce = record_nonce st in
  let ciphertext = Crypto.Block_mode.ctr_encrypt st.keys.enc_key ~nonce record.r_payload in
  let pre =
    mac_prefix st ~content_type:record.r_content_type ~version:record.r_version
      ~length:(String.length ciphertext)
  in
  let mac = Crypto.Hmac.sha256_parts ~key:st.keys.mac_key [ pre; ciphertext ] in
  st.seq <- st.seq + 1;
  { record with r_payload = ciphertext ^ mac }

(* Decrypt a protected record; advances the sequence number. *)
let open_ st record =
  let n = String.length record.r_payload in
  if n < mac_len then Error Types.Bad_record_mac
  else begin
    let ciphertext = String.sub record.r_payload 0 (n - mac_len) in
    let mac = String.sub record.r_payload (n - mac_len) mac_len in
    let pre =
      mac_prefix st ~content_type:record.r_content_type ~version:record.r_version
        ~length:(String.length ciphertext)
    in
    let expected = Crypto.Hmac.sha256_parts ~key:st.keys.mac_key [ pre; ciphertext ] in
    if not (Crypto.Hmac.equal_ct expected mac) then Error Types.Bad_record_mac
    else begin
      let nonce = record_nonce st in
      st.seq <- st.seq + 1;
      Ok { record with r_payload = Crypto.Block_mode.ctr_decrypt st.keys.enc_key ~nonce ciphertext }
    end
  end

(* Convenience: protect application bytes into wire records of bounded
   size, and the inverse given the peer's cipher state. *)
let seal_application_data st data =
  let rec chunks acc off =
    if off >= String.length data then List.rev acc
    else begin
      let len = min max_payload (String.length data - off) in
      chunks (String.sub data off len :: acc) (off + len)
    end
  in
  let pieces = if data = "" then [ "" ] else chunks [] 0 in
  List.map (fun piece -> seal st (make ~content_type:Types.Application_data piece)) pieces

let open_application_data st records =
  let rec go acc = function
    | [] -> Ok (String.concat "" (List.rev acc))
    | r :: rest -> (
        match open_ st r with
        | Error e -> Error e
        | Ok r -> go (payload r :: acc) rest)
  in
  go [] records
