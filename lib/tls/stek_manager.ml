(* STEK lifecycle management. The rotation policy is the paper's key
   variable (Section 4.3): it determines how long a single stolen 64-byte
   secret can decrypt recorded traffic.

   Policies mirror the deployments the paper observed:
   - [Static]          — a pregenerated key file, never rotated (Fastly,
                         Yandex, the Jack Henry banking cluster, ...).
   - [Per_process]     — random STEK at process start, lives until the
                         process restarts (Apache/Nginx without a key
                         file); the effective lifetime is the restart
                         cadence.
   - [Rotate_every]    — custom rotation infrastructure (Twitter,
                         CloudFlare daily, Google every 14h), with an
                         [accept_window] of old keys still honored for
                         ticket decryption after they stop issuing.

   Rotation is epoch-aligned and derives each period's key
   deterministically from a secret, which models fleet-wide synchronized
   rotation: every server sharing the secret agrees on the current STEK
   without coordination. A manager is shared wherever a STEK is shared —
   across the server farm of one domain or across every domain behind an
   SSL terminator (Section 5.2). *)

type policy =
  | Static
  | Per_process
  | Rotate_every of { period : int; accept_window : int }
  | Scheduled of int list
      (* Administrator-driven rotation at the given epoch seconds
         (ascending); used to seed case-study domains with the exact
         rotation days the paper observed, e.g. the Jack Henry banking
         cluster rotating once after 59 days. *)

type t = {
  policy : policy;
  secret : string; (* root secret for derivation *)
  mutable process_stek : Stek.t option; (* for Static / Per_process *)
  mutable process_started_at : int;
  origin : int; (* creation time: start of the first [Scheduled] interval *)
}

let create ~policy ~secret ~now =
  { policy; secret; process_stek = None; process_started_at = now; origin = now }

let policy t = t.policy

(* Stable identity of the shared key material: two managers with the same
   id derive the same STEKs. The campaign sharder keys on this. *)
let id t = t.secret

(* Simulate a server process restart: a [Per_process] manager forgets its
   STEK and generates a fresh one on next use; [Static] reloads the same
   key file, so nothing changes. *)
let restart t ~now =
  t.process_started_at <- now;
  match t.policy with
  | Per_process -> t.process_stek <- None
  | Static | Rotate_every _ | Scheduled _ -> ()

let process_key t ~label =
  match t.process_stek with
  | Some stek -> stek
  | None ->
      (* The key conceptually exists from the moment the process came up,
         not from whichever probe first touched it — stamp [created_at]
         with the process start so exposure windows measure from there. *)
      let stek =
        Stek.derive ~secret:(t.secret ^ label) ~period:t.process_started_at
          ~now:t.process_started_at
      in
      t.process_stek <- Some stek;
      stek

(* Index of the schedule interval containing [now]: 0 before the first
   boundary, k after the k-th. *)
let schedule_interval boundaries ~now =
  let rec go i = function
    | [] -> i
    | b :: rest -> if now < b then i else go (i + 1) rest
  in
  go 0 boundaries

let current_period t ~now =
  match t.policy with
  | Rotate_every { period; _ } -> now / period
  | Scheduled boundaries -> schedule_interval boundaries ~now
  | Static | Per_process -> 0

(* Start of schedule interval [k]: the (k-1)-th rotation boundary, or the
   manager's creation time before the first rotation. Mirrors how
   [Rotate_every] stamps keys with the start of their issue period rather
   than whatever probe time first touched them. *)
let scheduled_interval_start t boundaries k =
  if k = 0 then t.origin else List.nth boundaries (k - 1)

(* The STEK currently used to *issue* tickets. *)
let issuing t ~now =
  match t.policy with
  | Static -> process_key t ~label:":static"
  | Per_process -> process_key t ~label:Printf.(sprintf ":proc:%d" t.process_started_at)
  | Rotate_every { period; _ } ->
      Stek.derive ~secret:t.secret ~period:(now / period) ~now:(now / period * period)
  | Scheduled boundaries ->
      let k = schedule_interval boundaries ~now in
      Stek.derive ~secret:t.secret ~period:k ~now:(scheduled_interval_start t boundaries k)

(* Resolve a key name for ticket decryption. Under rotation, keys from the
   accept window remain valid after they stop issuing. *)
let find_for_decrypt t ~now key_name =
  match t.policy with
  | Static | Per_process ->
      let stek = issuing t ~now in
      if String.equal (Stek.key_name stek) key_name then Some stek else None
  | Scheduled boundaries ->
      (* Current and immediately previous administrative key both work. *)
      let current = schedule_interval boundaries ~now in
      let candidates =
        if current = 0 then [ current ] else [ current; current - 1 ]
      in
      List.find_map
        (fun period ->
          let candidate =
            Stek.derive ~secret:t.secret ~period
              ~now:(scheduled_interval_start t boundaries period)
          in
          if String.equal (Stek.key_name candidate) key_name then Some candidate else None)
        candidates
  | Rotate_every { period; accept_window } ->
      let current = now / period in
      let periods_back = (accept_window + period - 1) / period in
      let rec scan k =
        if k > periods_back then None
        else
          (* Stamp with the candidate's own period start, exactly as the
             issuing path did when it minted the key — a window key
             stamped with the *decrypt* time would claim a later birth
             than the ticket it protects. *)
          let candidate =
            Stek.derive ~secret:t.secret ~period:(current - k) ~now:((current - k) * period)
          in
          if String.equal (Stek.key_name candidate) key_name then Some candidate else scan (k + 1)
      in
      scan 0

(* How long a single STEK issued at [now] will exist somewhere in the
   deployment (issue period + acceptance tail); the per-mechanism
   vulnerability-window bound used by the Section 6 analysis. *)
let key_exposure_seconds t =
  match t.policy with
  | Static -> None (* unbounded: never rotated *)
  | Per_process -> None (* bounded only by the restart schedule, unknown here *)
  | Scheduled _ -> None (* bounded only by the administrator's calendar *)
  | Rotate_every { period; accept_window } -> Some (period + accept_window)
